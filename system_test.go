package nfvpredict

import (
	"strings"
	"testing"
	"time"
)

// smokeSystem runs the public-API end-to-end path once and shares it.
func smokeSystem(t *testing.T) *System {
	t.Helper()
	simCfg := SmallSimConfig()
	simCfg.NumVPEs = 5
	simCfg.Months = 3
	simCfg.UpdateMonth = -1
	trace, err := Simulate(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Variant = Customized
	cfg.LSTM.Hidden = []int{16}
	cfg.LSTM.Epochs = 2
	cfg.LSTM.OverSampleRounds = 1
	cfg.LSTM.MaxWindowsPerEpoch = 800
	cfg.KMax = 4
	sys, err := AnalyzeTrace(trace, simCfg.Start, simCfg.Months, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end in -short mode")
	}
	sys := smokeSystem(t)
	if sys.Result.Best.F <= 0 {
		t.Fatalf("no useful operating point: %+v", sys.Result.Best)
	}
	if len(sys.Result.Monthly) != 2 {
		t.Fatalf("monthly: %d", len(sys.Result.Monthly))
	}
	report := sys.Report()
	for _, want := range []string{"operating point", "monthly F-measure", "Figure 8", "Circuit", "ALL"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	fig8 := sys.FigureEight()
	if len(fig8) != 6 { // 5 causes + ALL
		t.Fatalf("figure 8 rows: %d", len(fig8))
	}
}

func TestSimulateValidation(t *testing.T) {
	bad := DefaultSimConfig()
	bad.NumVPEs = 0
	if _, err := Simulate(bad); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestSimulateDeterministicAtAPI(t *testing.T) {
	cfg := SmallSimConfig()
	cfg.Months = 1
	cfg.UpdateMonth = -1
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Messages) != len(b.Messages) || len(a.Tickets) != len(b.Tickets) {
		t.Fatal("API-level simulation not deterministic")
	}
}

func TestNewDatasetFromMessagesRoundTrip(t *testing.T) {
	cfg := SmallSimConfig()
	cfg.Months = 1
	cfg.UpdateMonth = -1
	cfg.NumVPEs = 3
	trace, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds1 := NewDataset(trace, cfg.Start, cfg.Months)
	ds2 := NewDatasetFromMessages(trace.Messages, trace.Tickets, trace.VPENames, cfg.Start, cfg.Months)
	if len(ds1.VPEs) != len(ds2.VPEs) || ds1.Tree.Len() != ds2.Tree.Len() {
		t.Fatal("dataset construction paths diverge")
	}
	for _, v := range ds1.VPEs {
		if len(ds1.Streams[v]) != len(ds2.Streams[v]) {
			t.Fatalf("stream lengths diverge for %s", v)
		}
	}
}

func TestDefaultConfigsAreUsable(t *testing.T) {
	if DefaultConfig().Variant != CustomizedAdaptive {
		t.Fatal("default variant should be the full system")
	}
	if DefaultLSTMConfig().MaxVocab < 2 {
		t.Fatal("default LSTM config degenerate")
	}
	if DefaultMonitorConfig().MinClusterSize != 2 {
		t.Fatal("monitor defaults should match §5.1")
	}
	if DefaultSimConfig().NumVPEs != 38 || DefaultSimConfig().Months != 18 {
		t.Fatal("default simulation should mirror the paper's scale")
	}
	if DefaultServerConfig().UDPAddr == "" {
		t.Fatal("server defaults should enable UDP")
	}
}

func TestTicketStoreReExport(t *testing.T) {
	cfg := SmallSimConfig()
	cfg.Months = 2
	cfg.UpdateMonth = -1
	trace, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := NewTicketStore(trace.Tickets)
	if st.Len() != len(trace.Tickets) {
		t.Fatal("store mismatch")
	}
	if len(st.MonthlyByCause(cfg.Start, cfg.End())) != 2 {
		t.Fatal("monthly breakdown wrong")
	}
}

func TestSignatureTreeReExport(t *testing.T) {
	tree := NewSignatureTree()
	tpl := tree.Learn("interface ge-0/0/1 down")
	if tpl.ID != 0 {
		t.Fatal("sigtree re-export broken")
	}
}

func TestPredictiveWindowSweepAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end in -short mode")
	}
	sys := smokeSystem(t)
	curves := PredictiveWindowSweep(sys.Dataset, sys.Result, sys.Config, []time.Duration{time.Hour, 24 * time.Hour})
	if len(curves) != 2 {
		t.Fatalf("curves: %d", len(curves))
	}
	if BestF(curves[24*time.Hour]).F <= 0 {
		t.Fatal("sweep produced empty curve")
	}
	if auc := AUCPR(curves[24*time.Hour]); auc < 0 {
		t.Fatalf("AUC: %v", auc)
	}
}
