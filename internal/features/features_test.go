package features

import (
	"math"
	"testing"
	"time"
)

var f0 = time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)

func ev(offset time.Duration, tpl int) Event { return Event{Time: f0.Add(offset), Template: tpl} }

func TestWindowize(t *testing.T) {
	events := []Event{
		ev(0, 1), ev(30*time.Second, 1), ev(5*time.Minute, 2),
		ev(25*time.Minute, 3), // skips windows 1 and 2
	}
	ws := Windowize(events, 10*time.Minute)
	if len(ws) != 2 {
		t.Fatalf("windows: %+v", ws)
	}
	if ws[0].N != 3 || ws[0].Counts[1] != 2 || ws[0].Counts[2] != 1 {
		t.Fatalf("window 0: %+v", ws[0])
	}
	if !ws[1].Start.Equal(f0.Add(20*time.Minute)) || ws[1].Counts[3] != 1 {
		t.Fatalf("window 1: %+v", ws[1])
	}
}

func TestWindowizeEmpty(t *testing.T) {
	if ws := Windowize(nil, time.Minute); len(ws) != 0 {
		t.Fatalf("empty events: %+v", ws)
	}
}

func TestWindowizePanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Windowize(nil, 0)
}

func fitVectorizer(t *testing.T, tfidf bool) (*Vectorizer, []Window) {
	t.Helper()
	train := []Window{
		{Start: f0, Counts: map[int]int{1: 5, 2: 1}, N: 6},
		{Start: f0.Add(time.Hour), Counts: map[int]int{1: 4, 3: 2}, N: 6},
		{Start: f0.Add(2 * time.Hour), Counts: map[int]int{1: 6}, N: 6},
	}
	v := NewVectorizer(tfidf)
	v.Fit(train)
	return v, train
}

func TestVectorizerDim(t *testing.T) {
	v, _ := fitVectorizer(t, true)
	// Templates 1,2,3 + unknown slot.
	if v.Dim() != 4 {
		t.Fatalf("Dim=%d", v.Dim())
	}
}

func TestTransformNormalized(t *testing.T) {
	v, train := fitVectorizer(t, true)
	for _, w := range train {
		x := v.Transform(w)
		if math.Abs(x.Norm2()-1) > 1e-9 {
			t.Fatalf("not unit norm: %v", x)
		}
	}
}

func TestIDFWeighting(t *testing.T) {
	v, _ := fitVectorizer(t, true)
	// Template 1 appears in every window (df=3), template 2 in one (df=1):
	// IDF of 2 must exceed IDF of 1, so a window with equal counts leans
	// toward the rarer template.
	w := Window{Start: f0, Counts: map[int]int{1: 3, 2: 3}, N: 6}
	x := v.Transform(w)
	slot1, slot2 := 0, 1 // sorted template ids 1,2,3
	if x[slot2] <= x[slot1] {
		t.Fatalf("rare template should out-weigh common: %v", x)
	}
}

func TestUnknownTemplateFoldsToLastSlot(t *testing.T) {
	v, _ := fitVectorizer(t, true)
	w := Window{Start: f0, Counts: map[int]int{999: 4}, N: 4}
	x := v.Transform(w)
	if x[v.Dim()-1] == 0 {
		t.Fatalf("unknown template lost: %v", x)
	}
	var rest float64
	for i := 0; i+1 < v.Dim(); i++ {
		rest += x[i]
	}
	if rest != 0 {
		t.Fatalf("unknown leaked into known slots: %v", x)
	}
}

func TestCountVectorizerUniformIDF(t *testing.T) {
	v, _ := fitVectorizer(t, false)
	w := Window{Start: f0, Counts: map[int]int{1: 2, 2: 2}, N: 4}
	x := v.Transform(w)
	if math.Abs(x[0]-x[1]) > 1e-12 {
		t.Fatalf("count mode should weight equally: %v", x)
	}
}

func TestTransformEmptyWindow(t *testing.T) {
	v, _ := fitVectorizer(t, true)
	x := v.Transform(Window{Start: f0, Counts: map[int]int{}, N: 0})
	if x.Norm2() != 0 {
		t.Fatalf("empty window should be zero: %v", x)
	}
}

func TestTransformBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVectorizer(true).Transform(Window{})
}

func TestTransformAll(t *testing.T) {
	v, train := fitVectorizer(t, true)
	xs := v.TransformAll(train)
	if len(xs) != len(train) {
		t.Fatalf("TransformAll length %d", len(xs))
	}
}

func TestVectorizerDeterministicSlots(t *testing.T) {
	// Fitting twice on the same data must produce identical transforms
	// (map iteration order must not leak into slot assignment).
	_, train := fitVectorizer(t, true)
	a := NewVectorizer(true)
	b := NewVectorizer(true)
	a.Fit(train)
	b.Fit(train)
	w := Window{Start: f0, Counts: map[int]int{1: 1, 2: 2, 3: 3}, N: 6}
	xa, xb := a.Transform(w), b.Transform(w)
	for i := range xa {
		if xa[i] != xb[i] {
			t.Fatalf("non-deterministic vectorizer: %v vs %v", xa, xb)
		}
	}
}
