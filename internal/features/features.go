// Package features engineers the fixed-length feature vectors required by
// the paper's baseline detectors: TF-IDF vectors over template counts in
// sliding time windows for the Autoencoder (Zhang et al. 2016, §5.2) and
// normalized count vectors for the one-class SVM. The LSTM path needs no
// feature engineering — that asymmetry is exactly the point the paper
// makes when the deep sequence model wins (§5.2).
package features

import (
	"math"
	"sort"
	"time"

	"nfvpredict/internal/mat"
)

// Event is a timestamped template observation (one syslog message after
// signature-tree extraction).
type Event struct {
	// Time is the message timestamp.
	Time time.Time
	// Template is the signature-tree template ID.
	Template int
}

// Window is one fixed-duration window's worth of template counts.
type Window struct {
	// Start is the window's first instant; windows cover
	// [Start, Start+Width).
	Start time.Time
	// Counts maps template ID → occurrences inside the window.
	Counts map[int]int
	// N is the total message count.
	N int
}

// Windowize buckets events into consecutive windows of the given width,
// skipping empty windows. Events must be sorted by time.
func Windowize(events []Event, width time.Duration) []Window {
	if width <= 0 {
		panic("features: window width must be positive")
	}
	var out []Window
	var cur *Window
	for _, e := range events {
		start := e.Time.Truncate(width)
		if cur == nil || !cur.Start.Equal(start) {
			out = append(out, Window{Start: start, Counts: make(map[int]int)})
			cur = &out[len(out)-1]
		}
		cur.Counts[e.Template]++
		cur.N++
	}
	return out
}

// Vectorizer converts windows into dense feature vectors. Fit on training
// windows, then Transform anything; the vocabulary and IDF weights are
// frozen at Fit time so that novel post-update templates fold into an
// explicit "unknown" slot rather than silently resizing the model input.
type Vectorizer struct {
	// UseTFIDF applies IDF weighting (the Autoencoder input of §5.2);
	// otherwise vectors are L2-normalized raw counts (OC-SVM input).
	UseTFIDF bool

	index map[int]int // template ID → slot
	idf   []float64   // per-slot IDF weight (1s when UseTFIDF is false)
	dim   int
}

// NewVectorizer returns an unfitted vectorizer.
func NewVectorizer(useTFIDF bool) *Vectorizer {
	return &Vectorizer{UseTFIDF: useTFIDF}
}

// Fit builds the vocabulary (all templates seen in train, in sorted order
// for determinism) plus one trailing unknown slot, and computes smoothed
// IDF weights idf(t) = ln((1+N)/(1+df(t))) + 1.
func (v *Vectorizer) Fit(train []Window) {
	df := map[int]int{}
	for _, w := range train {
		for tid := range w.Counts {
			df[tid]++
		}
	}
	ids := make([]int, 0, len(df))
	for tid := range df {
		ids = append(ids, tid)
	}
	sort.Ints(ids)
	v.index = make(map[int]int, len(ids))
	for slot, tid := range ids {
		v.index[tid] = slot
	}
	v.dim = len(ids) + 1 // trailing unknown slot
	v.idf = make([]float64, v.dim)
	n := float64(len(train))
	for tid, slot := range v.index {
		if v.UseTFIDF {
			v.idf[slot] = math.Log((1+n)/(1+float64(df[tid]))) + 1
		} else {
			v.idf[slot] = 1
		}
	}
	// Unknown templates are maximally surprising under TF-IDF.
	if v.UseTFIDF {
		v.idf[v.dim-1] = math.Log(1+n) + 1
	} else {
		v.idf[v.dim-1] = 1
	}
}

// Dim returns the output dimensionality (0 before Fit).
func (v *Vectorizer) Dim() int { return v.dim }

// Transform converts one window into an L2-normalized feature vector.
// It panics if the vectorizer has not been fitted.
func (v *Vectorizer) Transform(w Window) mat.Vector {
	if v.dim == 0 {
		panic("features: Transform before Fit")
	}
	x := mat.NewVector(v.dim)
	if w.N == 0 {
		return x
	}
	for tid, c := range w.Counts {
		slot, ok := v.index[tid]
		if !ok {
			slot = v.dim - 1
		}
		tf := float64(c) / float64(w.N)
		x[slot] += tf * v.idf[slot]
	}
	if n := x.Norm2(); n > 0 {
		x.ScaleInPlace(1 / n)
	}
	return x
}

// TransformAll converts a batch of windows.
func (v *Vectorizer) TransformAll(ws []Window) []mat.Vector {
	out := make([]mat.Vector, len(ws))
	for i, w := range ws {
		out[i] = v.Transform(w)
	}
	return out
}
