package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := Histogram{}
	h.Add(1)
	h.Add(1)
	h.Add(3)
	if h.Total() != 3 || h[1] != 2 || h[3] != 1 {
		t.Fatalf("histogram: %v", h)
	}
	other := Histogram{1: 1, 5: 4}
	h.Merge(other)
	if h[1] != 3 || h[5] != 4 {
		t.Fatalf("merge: %v", h)
	}
}

func TestCosineKnownValues(t *testing.T) {
	a := Histogram{0: 1, 1: 1}
	if c := Cosine(a, a); math.Abs(c-1) > 1e-12 {
		t.Fatalf("self cosine %v", c)
	}
	b := Histogram{2: 5}
	if c := Cosine(a, b); c != 0 {
		t.Fatalf("disjoint cosine %v", c)
	}
	if Cosine(Histogram{}, a) != 0 {
		t.Fatal("empty histogram should give 0")
	}
}

func TestCosineBoundsProperty(t *testing.T) {
	f := func(ka, kb []uint8, va, vb []uint8) bool {
		a, b := Histogram{}, Histogram{}
		for i := range ka {
			if i < len(va) {
				a[int(ka[i]%16)] += float64(va[i]%9) + 1
			}
		}
		for i := range kb {
			if i < len(vb) {
				b[int(kb[i]%16)] += float64(vb[i]%9) + 1
			}
		}
		c := Cosine(a, b)
		return c >= 0 && c <= 1+1e-9 && !math.IsNaN(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDense(t *testing.T) {
	h := Histogram{0: 1, 2: 3, 99: 4, -1: 7}
	v := h.Dense(4)
	// 99 folds into slot 3; -1 dropped; normalized to sum 1.
	if math.Abs(v.Sum()-1) > 1e-12 {
		t.Fatalf("not normalized: %v", v)
	}
	if v[0] != 1.0/8 || v[2] != 3.0/8 || v[3] != 4.0/8 {
		t.Fatalf("dense: %v", v)
	}
	empty := Histogram{}.Dense(4)
	if empty.Sum() != 0 {
		t.Fatal("empty histogram should stay zero")
	}
}

func TestSimilarityToAggregate(t *testing.T) {
	hists := map[string]Histogram{
		"a": {0: 100, 1: 100},
		"b": {0: 100, 1: 100},
		"c": {7: 10}, // outlier
	}
	sims := SimilarityToAggregate(hists)
	if sims["a"] < 0.9 || sims["b"] < 0.9 {
		t.Fatalf("majority vPEs should be close to aggregate: %v", sims)
	}
	if sims["c"] > 0.5 {
		t.Fatalf("outlier should be far from aggregate: %v", sims)
	}
}

func TestQuantiles(t *testing.T) {
	q := Quantiles([]float64{4, 1, 3, 2, 5})
	want := [5]float64{1, 2, 3, 4, 5}
	if q != want {
		t.Fatalf("quantiles %v want %v", q, want)
	}
	if Quantiles(nil) != [5]float64{} {
		t.Fatal("empty quantiles should be zero")
	}
}

// synthetic role histograms: k-means must recover the planted partition.
func plantedHists(roles, perRole int, seed int64) (map[string]Histogram, map[string]int) {
	rng := rand.New(rand.NewSource(seed))
	hists := map[string]Histogram{}
	truth := map[string]int{}
	for r := 0; r < roles; r++ {
		for i := 0; i < perRole; i++ {
			name := string(rune('a'+r)) + string(rune('0'+i))
			h := Histogram{}
			// Shared core templates 0-4.
			for tid := 0; tid < 5; tid++ {
				h[tid] = 50 + rng.Float64()*10
			}
			// Role-specific templates 10r..10r+4 dominate.
			for tid := 0; tid < 5; tid++ {
				h[10*(r+1)+tid] = 200 + rng.Float64()*50
			}
			hists[name] = h
			truth[name] = r
		}
	}
	return hists, truth
}

func agreesWithTruth(res *Result, truth map[string]int) bool {
	// Clustering is correct iff same-truth pairs share clusters and
	// different-truth pairs do not.
	keys := make([]string, 0, len(truth))
	for k := range truth {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			same := truth[keys[i]] == truth[keys[j]]
			got := res.Assign[keys[i]] == res.Assign[keys[j]]
			if same != got {
				return false
			}
		}
	}
	return true
}

func TestKMeansRecoversPlantedClusters(t *testing.T) {
	hists, truth := plantedHists(4, 6, 1)
	res := KMeans(hists, 4, 64, 42)
	if !agreesWithTruth(res, truth) {
		t.Fatalf("k-means failed to recover planted partition: %v", res.Assign)
	}
}

func TestSelectKFindsPlantedK(t *testing.T) {
	hists, truth := plantedHists(4, 6, 2)
	res, err := SelectK(hists, 2, 8, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 {
		t.Fatalf("SelectK chose K=%d, want 4 (score %v)", res.K, res.Score)
	}
	if !agreesWithTruth(res, truth) {
		t.Fatal("selected clustering does not match planted partition")
	}
}

func TestSelectKInvalidRange(t *testing.T) {
	hists, _ := plantedHists(2, 2, 3)
	if _, err := SelectK(hists, 0, 3, 16, 1); err == nil {
		t.Fatal("kMin=0 should error")
	}
	if _, err := SelectK(hists, 3, 2, 16, 1); err == nil {
		t.Fatal("kMax<kMin should error")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	hists, _ := plantedHists(3, 5, 4)
	a := KMeans(hists, 3, 64, 9)
	b := KMeans(hists, 3, 64, 9)
	for k := range a.Assign {
		if a.Assign[k] != b.Assign[k] {
			t.Fatal("k-means not deterministic for fixed seed")
		}
	}
}

func TestKMeansClampsK(t *testing.T) {
	hists := map[string]Histogram{"a": {0: 1}, "b": {1: 1}}
	res := KMeans(hists, 10, 8, 1)
	if res.K != 2 {
		t.Fatalf("K should clamp to point count: %d", res.K)
	}
}

func TestKMeansPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KMeans(map[string]Histogram{"a": {0: 1}}, 0, 8, 1)
}

func TestKMeansSingleCluster(t *testing.T) {
	hists, _ := plantedHists(1, 5, 5)
	res := KMeans(hists, 1, 32, 1)
	for _, c := range res.Assign {
		if c != 0 {
			t.Fatal("single cluster must assign all to 0")
		}
	}
}

func TestResultMembers(t *testing.T) {
	res := &Result{K: 2, Assign: map[string]int{"b": 0, "a": 0, "c": 1}}
	m := res.Members(0)
	if len(m) != 2 || m[0] != "a" || m[1] != "b" {
		t.Fatalf("Members: %v", m)
	}
	if len(res.Members(5)) != 0 {
		t.Fatal("missing cluster should be empty")
	}
}

func TestDriftDetector(t *testing.T) {
	d := NewDriftDetector()
	stable := Histogram{0: 100, 1: 50, 2: 25}
	if sim, drift := d.Observe(stable); sim != 1 || drift {
		t.Fatalf("first observation: sim=%v drift=%v", sim, drift)
	}
	// Nearly identical next month: no drift.
	stable2 := Histogram{0: 98, 1: 52, 2: 27}
	if sim, drift := d.Observe(stable2); drift || sim < 0.9 {
		t.Fatalf("stable month flagged: sim=%v drift=%v", sim, drift)
	}
	// Disjoint distribution: drift.
	shifted := Histogram{10: 80, 11: 40}
	if sim, drift := d.Observe(shifted); !drift || sim > 0.4 {
		t.Fatalf("update month not flagged: sim=%v drift=%v", sim, drift)
	}
	// Post-update months are stable again.
	if _, drift := d.Observe(Histogram{10: 85, 11: 42}); drift {
		t.Fatal("post-update stability flagged as drift")
	}
}

func BenchmarkKMeans38VPEs(b *testing.B) {
	hists, _ := plantedHists(4, 10, 1) // 40 ≈ the paper's 38
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(hists, 4, 128, 1)
	}
}
