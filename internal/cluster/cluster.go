// Package cluster groups vPEs by the similarity of their syslog template
// distributions, implementing §4.3 of the paper: K-means over normalized
// template histograms, with K chosen by a modularity-style score. vPEs in
// one cluster share an LSTM model trained on their pooled syslog, cutting
// the per-model data-collection latency from ~3 months to ~1 month (§5.2).
//
// It also provides the cosine-similarity analytics behind Figure 3 (each
// vPE's distribution vs the fleet aggregate) and the month-over-month
// drift detection of §3.3 (cosine drop below ~0.4 signals a system update
// that obsoletes trained models).
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nfvpredict/internal/mat"
)

// Histogram is a sparse template-frequency histogram: template ID → count.
type Histogram map[int]float64

// Add increments the count for template id.
func (h Histogram) Add(id int) { h[id]++ }

// Total returns the sum of all counts.
func (h Histogram) Total() float64 {
	var s float64
	for _, v := range h {
		s += v
	}
	return s
}

// Merge adds other's counts into h.
func (h Histogram) Merge(other Histogram) {
	for k, v := range other {
		h[k] += v
	}
}

// Cosine returns the cosine similarity of two histograms.
func Cosine(a, b Histogram) float64 {
	var dot, na, nb float64
	for k, v := range a {
		na += v * v
		if w, ok := b[k]; ok {
			dot += v * w
		}
	}
	for _, w := range b {
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Dense converts h to a normalized dense vector over [0, dim) template
// IDs; IDs ≥ dim are folded into the last slot.
func (h Histogram) Dense(dim int) mat.Vector {
	v := mat.NewVector(dim)
	for k, c := range h {
		if k < 0 {
			continue
		}
		if k >= dim {
			k = dim - 1
		}
		v[k] += c
	}
	if t := v.Sum(); t > 0 {
		v.ScaleInPlace(1 / t)
	}
	return v
}

// SimilarityToAggregate computes, for each named histogram, the cosine
// similarity between it and the aggregate of all histograms — the Figure 3
// quantity. Results are keyed by the input keys.
func SimilarityToAggregate(hists map[string]Histogram) map[string]float64 {
	agg := Histogram{}
	for _, h := range hists {
		agg.Merge(h)
	}
	out := make(map[string]float64, len(hists))
	for k, h := range hists {
		out[k] = Cosine(h, agg)
	}
	return out
}

// Quantiles returns the (0, 0.25, 0.5, 0.75, 1) quantiles of xs, the five
// values plotted per vPE in Figure 3.
func Quantiles(xs []float64) [5]float64 {
	var out [5]float64
	if len(xs) == 0 {
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	qs := [5]float64{0, 0.25, 0.5, 0.75, 1}
	for i, q := range qs {
		idx := int(q * float64(len(sorted)-1))
		out[i] = sorted[idx]
	}
	return out
}

// Result is a clustering outcome.
type Result struct {
	// K is the number of clusters.
	K int
	// Assign maps each input key to its cluster in [0, K).
	Assign map[string]int
	// Score is the modularity-style quality score used to select K.
	Score float64
}

// Members returns the keys in cluster c, sorted.
func (r *Result) Members(c int) []string {
	var out []string
	for k, ci := range r.Assign {
		if ci == c {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// KMeans clusters the histograms into k groups using cosine-based K-means
// (spherical K-means) with k-means++ seeding. It is deterministic for a
// given seed. It panics if k < 1; if k exceeds the number of points it is
// clamped.
func KMeans(hists map[string]Histogram, k int, dim int, seed int64) *Result {
	if k < 1 {
		panic("cluster: k must be ≥ 1")
	}
	keys := make([]string, 0, len(hists))
	for key := range hists {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	if k > len(keys) {
		k = len(keys)
	}
	if k == 0 {
		return &Result{K: 0, Assign: map[string]int{}}
	}
	points := make([]mat.Vector, len(keys))
	for i, key := range keys {
		points[i] = hists[key].Dense(dim)
		normalize(points[i])
	}
	rng := rand.New(rand.NewSource(seed))

	// k-means++ seeding in cosine space (distance = 1 − cosine).
	centers := make([]mat.Vector, 0, k)
	centers = append(centers, points[rng.Intn(len(points))].Clone())
	for len(centers) < k {
		d2 := make([]float64, len(points))
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centers {
				if d := 1 - p.Dot(c); d < best {
					best = d
				}
			}
			d2[i] = best * best
			total += d2[i]
		}
		if total == 0 {
			centers = append(centers, points[rng.Intn(len(points))].Clone())
			continue
		}
		u := rng.Float64() * total
		idx := 0
		for acc := 0.0; idx < len(points); idx++ {
			acc += d2[idx]
			if acc >= u {
				break
			}
		}
		if idx >= len(points) {
			idx = len(points) - 1
		}
		centers = append(centers, points[idx].Clone())
	}

	assign := make([]int, len(points))
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, p := range points {
			best, bestSim := 0, -2.0
			for ci, c := range centers {
				if sim := p.Dot(c); sim > bestSim {
					best, bestSim = ci, sim
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centers as normalized means.
		for ci := range centers {
			sum := mat.NewVector(dim)
			n := 0
			for i, p := range points {
				if assign[i] == ci {
					sum.AddInPlace(p)
					n++
				}
			}
			if n > 0 {
				normalize(sum)
				centers[ci] = sum
			}
		}
		if !changed {
			break
		}
	}

	res := &Result{K: k, Assign: make(map[string]int, len(keys))}
	for i, key := range keys {
		res.Assign[key] = assign[i]
	}
	res.Score = modularityScore(points, assign, k)
	return res
}

// SelectK runs KMeans for every k in [kMin, kMax] and returns the result
// with the best modularity-style score — the paper's "choose the number
// of groups K based on the modularity" (§4.3), which yielded K=4 for its
// 38-vPE fleet.
func SelectK(hists map[string]Histogram, kMin, kMax, dim int, seed int64) (*Result, error) {
	if kMin < 1 || kMax < kMin {
		return nil, fmt.Errorf("cluster: invalid K range [%d, %d]", kMin, kMax)
	}
	var best *Result
	for k := kMin; k <= kMax; k++ {
		r := KMeans(hists, k, dim, seed)
		if best == nil || r.Score > best.Score {
			best = r
		}
	}
	return best, nil
}

// modularityScore is Newman modularity on a centered cosine-similarity
// graph: edge weights are w_ij = max(0, cos_ij − mean off-diagonal cos),
// and Q = (1/2m) Σ_ij [w_ij − s_i s_j / 2m] δ(c_i, c_j) over ordered
// pairs (diagonal null-model terms included, w_ii = 0). Centering is the
// usual adaptation of modularity to similarity graphs: syslog histograms
// share so much common chatter that the raw cosine graph is nearly
// complete, where no partition can beat the null model. Putting the whole
// graph in one community scores exactly 0, so real structure must beat
// the null model for K > 1 to win — the property the paper's "choose K
// based on the modularity" rule (§4.3) relies on.
func modularityScore(points []mat.Vector, assign []int, k int) float64 {
	n := len(points)
	if n == 0 || k <= 0 {
		return 0
	}
	raw := func(i, j int) float64 { return points[i].Dot(points[j]) }
	var mean float64
	if n > 1 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += raw(i, j)
			}
		}
		mean = s / float64(n*(n-1)/2)
	}
	sim := func(i, j int) float64 {
		s := raw(i, j) - mean
		if s < 0 {
			return 0
		}
		return s
	}
	strength := make([]float64, n)
	var total float64 // m = total edge weight
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := sim(i, j)
			strength[i] += w
			strength[j] += w
			total += w
		}
	}
	if total == 0 {
		return 0
	}
	m2 := 2 * total
	var q float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if assign[i] != assign[j] {
				continue
			}
			var w float64
			if i != j {
				w = sim(i, j)
			}
			q += w - strength[i]*strength[j]/m2
		}
	}
	return q / m2
}

func normalize(v mat.Vector) {
	n := v.Norm2()
	if n > 0 {
		v.ScaleInPlace(1 / n)
	}
}

// DriftDetector tracks month-over-month cosine similarity of a histogram
// stream and reports when the distribution shifts abruptly (the paper's
// system-update signal: similarity "always above 0.8" normally, dropping
// "below 0.4" on an update, §3.3).
type DriftDetector struct {
	// Threshold is the similarity below which drift is reported.
	Threshold float64
	prev      Histogram
}

// NewDriftDetector returns a detector with the paper's 0.4 threshold.
func NewDriftDetector() *DriftDetector { return &DriftDetector{Threshold: 0.4} }

// Observe feeds the next period's histogram and reports (similarity to the
// previous period, drifted?). The first observation reports (1, false).
func (d *DriftDetector) Observe(h Histogram) (float64, bool) {
	if d.prev == nil {
		d.prev = h
		return 1, false
	}
	sim := Cosine(d.prev, h)
	d.prev = h
	return sim, sim < d.Threshold
}
