// Package lifecycle closes the paper's adaptation loop online. Offline,
// the pipeline retrains monthly and reaches for transfer learning after a
// disruptive software update (§4.3–§4.4); lifecycle runs the same loop
// inside the monitor process. A Manager spools recent normal scored
// windows per cluster (fault-burst traffic excluded), watches the live
// template distribution for drift against the training-time distribution
// (§3.3's update signature: month-over-month cosine similarity collapsing),
// fine-tunes a *candidate* detector in the background when drift or a
// schedule demands it — transfer adaptation with frozen bottom layers when
// the drift is disruptive, a plain incremental update otherwise — and
// shadow-evaluates the candidate by replaying held-out spooled traffic
// through both models. Promotion is gated on the candidate's false-alarm
// rate fitting a budget, goes through the monitor's SwapModel lockAll path
// (no message ever scores against a half-swapped model), and keeps the
// previous generation for one-step rollback.
package lifecycle

import (
	"errors"
	"fmt"
	"log"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nfvpredict/internal/bundle"
	"nfvpredict/internal/cluster"
	"nfvpredict/internal/detect"
	"nfvpredict/internal/faultinject"
	"nfvpredict/internal/features"
	"nfvpredict/internal/ingest"
	"nfvpredict/internal/obs"
	"nfvpredict/internal/resilience"
)

// Config parameterizes a lifecycle Manager.
type Config struct {
	// Interval is the cycle period; each cycle checks drift and, when
	// triggered, adapts and gates a candidate. <= 0 disables the timer —
	// cycles then run only via TriggerCycle (tests, admin).
	Interval time.Duration
	// GateBudget is the promotion gate: a candidate is promoted only if
	// its false-alarm rate on held-out spooled normal windows is <= this.
	GateBudget float64
	// WindowLen is the number of events per spooled window.
	WindowLen int
	// SpoolPerCluster bounds the completed windows retained per cluster.
	SpoolPerCluster int
	// MinWindows is the spool floor below which a cluster never adapts
	// (too little data to fine-tune or gate on).
	MinWindows int
	// DriftThreshold triggers adaptation when the live-vs-training cosine
	// similarity falls below it (mirrors pipeline.Config.DriftThreshold).
	DriftThreshold float64
	// DisruptiveThreshold selects the adaptation mode: cosine below it
	// means the update rewrote the template distribution (§3.3 observes
	// >0.8 collapsing to <0.4), so the candidate uses transfer adaptation
	// (Adapt: vocabulary extension + frozen bottom layers) instead of a
	// plain incremental update.
	DisruptiveThreshold float64
	// MinDriftEvents is the live-histogram mass required before the drift
	// comparison is trusted (a near-empty histogram is all noise).
	MinDriftEvents int
	// AdaptEveryCycles schedules a fine-tune every N cycles even without
	// drift (the paper's monthly incremental update, §4.3); 0 disables
	// scheduled adaptation (drift-triggered only).
	AdaptEveryCycles int
	// HoldoutFraction is the share of spooled windows held out from
	// candidate training and used for the shadow gate.
	HoldoutFraction float64
	// AutoPromote promotes gate-passing candidates immediately. When
	// false, candidates that pass are retained as pending and promoted
	// only via ForcePromote (the POST /models/promote endpoint).
	AutoPromote bool
	// BreakerThreshold is how many consecutive failed cycles (panic,
	// injected fault, or a cluster adaptation error) open the adaptation
	// circuit breaker; while open, timer cycles are skipped until the
	// cooldown admits a half-open probe. Forced cycles (TriggerCycle(true),
	// POST /models/adapt) bypass the breaker — they are the operator's
	// probe. Default 3.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before probing
	// again. Default 1 minute.
	BreakerCooldown time.Duration
	// Faults, when set, registers the lifecycle's chaos fault points
	// (lifecycle.cycle, spool.write, spool.read) in this registry.
	Faults *faultinject.Registry
	// Metrics, when set, receives the lifecycle_* instrument family and
	// the candidate detectors' candidate_lstm_* training metrics.
	Metrics *obs.Registry
	// Tracer, when set, emits one adaptation span per executed cycle
	// (skipped cycles excluded), so a serving-latency tail can be
	// attributed to an adaptation cycle holding the swap locks.
	Tracer *obs.Tracer
	// Log, when set, receives one line per lifecycle decision.
	Log *log.Logger
	// Clock stamps generations and cycle results; nil means time.Now.
	Clock func() time.Time
}

// DefaultConfig returns the serving-scale defaults.
func DefaultConfig() Config {
	return Config{
		Interval:            10 * time.Minute,
		GateBudget:          0.02,
		WindowLen:           32,
		SpoolPerCluster:     256,
		MinWindows:          24,
		DriftThreshold:      0.7,
		DisruptiveThreshold: 0.4,
		MinDriftEvents:      128,
		HoldoutFraction:     0.25,
		AutoPromote:         true,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.WindowLen < 2 {
		c.WindowLen = d.WindowLen
	}
	if c.SpoolPerCluster <= 0 {
		c.SpoolPerCluster = d.SpoolPerCluster
	}
	if c.MinWindows <= 0 {
		c.MinWindows = d.MinWindows
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = d.DriftThreshold
	}
	if c.DisruptiveThreshold <= 0 {
		c.DisruptiveThreshold = d.DisruptiveThreshold
	}
	if c.MinDriftEvents <= 0 {
		c.MinDriftEvents = d.MinDriftEvents
	}
	if c.HoldoutFraction <= 0 || c.HoldoutFraction >= 1 {
		c.HoldoutFraction = d.HoldoutFraction
	}
	if c.GateBudget < 0 {
		c.GateBudget = d.GateBudget
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Minute
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// ModelSet is one deployable model generation: what the monitor serves,
// and what a promotion atomically replaces.
type ModelSet struct {
	// Detectors holds one detector per cluster.
	Detectors []*detect.LSTMDetector
	// Assign maps hosts to cluster indices (unmapped hosts fall back to
	// cluster 0, matching bundle semantics).
	Assign map[string]int
	// Threshold is the serving anomaly threshold, also used by the gate.
	Threshold float64
	// TrainHist, when present, is the training-time template distribution
	// per cluster — the drift reference. Absent, the lifecycle captures a
	// live baseline from the first full cycle.
	TrainHist []cluster.Histogram
}

// ModelSetFromBundle adapts a loaded deployment bundle.
func ModelSetFromBundle(b *bundle.Bundle) *ModelSet {
	ms := &ModelSet{
		Detectors: append([]*detect.LSTMDetector(nil), b.Detectors...),
		Assign:    b.Assign,
		Threshold: b.Threshold,
	}
	for _, h := range b.TrainHist {
		ms.TrainHist = append(ms.TrainHist, cluster.Histogram(h))
	}
	return ms
}

// Resolver returns the host→detector function in the form
// ingest.NewMonitorWithResolver and Monitor.SwapModel expect.
func (ms *ModelSet) Resolver() func(host string) *detect.LSTMDetector {
	return func(host string) *detect.LSTMDetector {
		if len(ms.Detectors) == 0 {
			return nil
		}
		ci, ok := ms.Assign[host]
		if !ok || ci < 0 || ci >= len(ms.Detectors) {
			ci = 0
		}
		return ms.Detectors[ci]
	}
}

// ClusterOf returns the host→cluster function for monitor trace identity
// (-1 for unmapped hosts, matching MonitorConfig.ClusterOf semantics).
func (ms *ModelSet) ClusterOf() func(host string) int {
	return func(host string) int {
		if ci, ok := ms.Assign[host]; ok {
			return ci
		}
		return -1
	}
}

// clone returns a copy sharing everything but the Detectors slice, the
// promotion primitive: replace one cluster's detector without mutating the
// generation still referenced as "previous".
func (ms *ModelSet) clone() *ModelSet {
	out := *ms
	out.Detectors = append([]*detect.LSTMDetector(nil), ms.Detectors...)
	return &out
}

// Generation is one entry in the lifecycle's audit log: every adaptation
// attempt, promotion, rejection, rollback, and reload.
type Generation struct {
	ID   int       `json:"id"`
	Time time.Time `json:"time"`
	// Cluster is the cluster the record concerns, or -1 for whole-set
	// events (rollback, reload, forced promotion).
	Cluster int `json:"cluster"`
	// Reason is what initiated the cycle or event: "drift", "scheduled",
	// "forced", "rollback", "reload".
	Reason string `json:"reason"`
	// Mode is the adaptation mode used, "adapt" (transfer) or "update"
	// (incremental); empty for non-adaptation records.
	Mode string `json:"mode,omitempty"`
	// DriftCos is the live-vs-reference cosine similarity at decision
	// time (NaN serialized as -1 when unknown).
	DriftCos float64 `json:"drift_cos"`
	// CandidateFAR and StaleFAR are the shadow false-alarm rates of the
	// candidate and the then-serving detector on the held-out windows.
	CandidateFAR float64 `json:"candidate_far"`
	StaleFAR     float64 `json:"stale_far"`
	// GatePassed reports whether CandidateFAR fit the budget.
	GatePassed bool `json:"gate_passed"`
	// Promoted reports whether this record changed the serving set.
	Promoted bool `json:"promoted"`
	// Fingerprint identifies the candidate detector's weights.
	Fingerprint uint64 `json:"fingerprint,omitempty"`
}

// ClusterCycle is one cluster's outcome within a cycle.
type ClusterCycle struct {
	Cluster      int
	Windows      int     // clean windows spooled at cycle time
	Quarantined  int     // burst-containing windows held in quarantine
	DriftCos     float64 // NaN when not computed
	Drifted      bool
	Disruptive   bool
	Adapted      bool
	Mode         string
	CandidateFAR float64
	StaleFAR     float64
	GatePassed   bool
	Err          error
}

// CycleResult summarizes one lifecycle cycle.
type CycleResult struct {
	Time     time.Time
	Forced   bool
	Aborted  bool // serving set changed mid-cycle; candidates discarded
	Promoted bool
	// Skipped reports a cycle that never ran its body — learning shed or
	// breaker open; SkipReason says which.
	Skipped    bool
	SkipReason string
	// Panicked reports a cycle whose body panicked (recovered; counts as a
	// breaker failure).
	Panicked bool
	Clusters []ClusterCycle
}

// Manager runs the online lifecycle. Construct with New, feed it scored
// traffic by installing Observe as the monitor's OnScored hook, Attach the
// monitor, then Start the cycle timer (or drive cycles explicitly with
// TriggerCycle).
type Manager struct {
	cfg Config
	reg *obs.Registry

	// spools is swapped wholesale on reload; Observe only ever touches
	// the spoolSet and its per-cluster mutexes, never mu — it runs under
	// a monitor shard lock, and mu is held around SwapModel (which takes
	// every shard lock), so taking mu here would deadlock.
	spools atomic.Pointer[spoolSet]

	// mu guards the generation state below.
	mu         sync.Mutex
	mon        *ingest.Monitor
	serving    *ModelSet
	prev       *ModelSet
	pending    map[int]*detect.LSTMDetector
	refs       []cluster.Histogram
	gens       []Generation
	genSeq     int
	generation int
	cycleNum   int

	// cycleMu serializes cycles (timer ticks, TriggerCycle, admin).
	cycleMu sync.Mutex

	// breaker circuit-breaks the adaptation cycle: consecutive failed
	// cycles open it, timer cycles are then skipped for the cooldown, one
	// probe runs half-open. shedLearning pauses spooling and timer cycles
	// wholesale (the degradation controller's lever under overload or
	// durable-I/O pressure).
	breaker      *resilience.Breaker
	shedLearning atomic.Bool

	// Chaos fault points; nil (never firing) without cfg.Faults.
	fpCycle  *faultinject.Point
	fpSpoolW *faultinject.Point
	fpSpoolR *faultinject.Point

	lifeMu  sync.Mutex
	running bool
	stopCh  chan struct{}
	wg      sync.WaitGroup

	cyclesC      *obs.Counter
	adaptsC      *obs.Counter
	promosC      *obs.Counter
	rejectsC     *obs.Counter
	rollbacksC   *obs.Counter
	driftC       *obs.Counter
	quarC        *obs.Counter
	skippedC     *obs.Counter
	panicsC      *obs.Counter
	breakerOpens *obs.Counter
	spoolQuarC   *obs.Counter
	breakerGauge *obs.Gauge
	adaptSeconds *obs.Histogram
	gateDelta    *obs.Histogram
	genGauge     *obs.Gauge
	spoolGauges  []*obs.Gauge
	driftGauges  []*obs.Gauge
}

// New builds a Manager serving ms. Wire m.Observe into the monitor's
// MonitorConfig.OnScored before constructing the monitor, then call
// Attach.
func New(cfg Config, ms *ModelSet) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:     cfg,
		serving: ms,
		pending: make(map[int]*detect.LSTMDetector),
		refs:    refsFrom(ms),
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m.reg = reg
	s := reg.Scope("lifecycle_")
	m.cyclesC = s.Counter("cycles_total", "Lifecycle cycles run (timer + forced).")
	m.adaptsC = s.Counter("adaptations_total", "Candidate fine-tunes started (adapt + update modes).")
	m.promosC = s.Counter("promotions_total", "Candidates promoted to serving.")
	m.rejectsC = s.Counter("rejections_total", "Candidates rejected by the false-alarm gate.")
	m.rollbacksC = s.Counter("rollbacks_total", "One-step rollbacks to the previous generation.")
	m.driftC = s.Counter("drift_total", "Cycles in which a cluster's live distribution read as drifted.")
	m.quarC = s.Counter("windows_quarantined_total", "Completed windows quarantined for containing burst (fault-proximate) traffic.")
	m.adaptSeconds = s.Histogram("adapt_seconds", "Wall time of one candidate fine-tune (training only).",
		obs.ExpBuckets(0.01, 4, 10))
	m.gateDelta = s.Histogram("gate_delta", "Candidate minus stale false-alarm rate at the gate (negative = candidate better).",
		obs.LinearBuckets(-0.5, 0.05, 21))
	m.genGauge = s.Gauge("generation", "Monotonic serving-model generation number.")
	m.skippedC = s.Counter("cycles_skipped_total", "Cycles skipped because learning was shed or the breaker was open.")
	m.panicsC = s.Counter("cycle_panics_total", "Adaptation cycles that panicked (recovered; breaker failure).")
	m.breakerOpens = s.Counter("breaker_opens_total", "Times the adaptation circuit breaker opened.")
	m.spoolQuarC = s.Counter("spool_quarantines_total", "Corrupt spool files quarantined at restore (cold start taken instead).")
	m.breakerGauge = s.Gauge("breaker_state", "Adaptation breaker state (0 closed, 1 open, 2 half-open).")
	m.breaker = &resilience.Breaker{Threshold: cfg.BreakerThreshold, Cooldown: cfg.BreakerCooldown}
	if cfg.Faults != nil {
		m.fpCycle = cfg.Faults.Point("lifecycle.cycle",
			"At the top of an adaptation cycle: error/panic failures feed the circuit breaker.")
		m.fpSpoolW = cfg.Faults.Point("spool.write",
			"Inside the atomic spool write: disk-full/torn failures that must never cost the previous spool.")
		m.fpSpoolR = cfg.Faults.Point("spool.read",
			"Before a spool restore: error/slow failures drill the retry-or-cold-start path.")
	}
	m.buildClusterInstruments(len(ms.Detectors))
	m.spools.Store(newSpoolSet(len(ms.Detectors), cfg.WindowLen, cfg.SpoolPerCluster))
	return m
}

func refsFrom(ms *ModelSet) []cluster.Histogram {
	refs := make([]cluster.Histogram, len(ms.Detectors))
	copy(refs, ms.TrainHist)
	return refs
}

func (m *Manager) buildClusterInstruments(n int) {
	m.spoolGauges = make([]*obs.Gauge, n)
	m.driftGauges = make([]*obs.Gauge, n)
	for i := 0; i < n; i++ {
		ci := strconv.Itoa(i)
		m.spoolGauges[i] = m.reg.Gauge(obs.LabelName("lifecycle_spool_windows", "cluster", ci),
			"Completed normal windows spooled for this cluster.")
		m.driftGauges[i] = m.reg.Gauge(obs.LabelName("lifecycle_drift_cosine", "cluster", ci),
			"Live-vs-training template-distribution cosine similarity at the last cycle.")
	}
}

// Attach hands the Manager the monitor it promotes into. Separate from New
// because construction is circular: the monitor needs Observe at build
// time, the Manager needs the monitor for SwapModel.
func (m *Manager) Attach(mon *ingest.Monitor) {
	m.mu.Lock()
	m.mon = mon
	m.mu.Unlock()
}

// Observe is the ingest.MonitorConfig.OnScored hook. It runs under the
// host's shard lock: O(1), spool-local, and it must never call back into
// the Monitor or take m.mu.
func (m *Manager) Observe(host string, ci int, ev features.Event, score float64, anomalous, burst bool) {
	if m.shedLearning.Load() {
		return
	}
	ss := m.spools.Load()
	if ss == nil || len(ss.clusters) == 0 {
		return
	}
	if ci < 0 || ci >= len(ss.clusters) {
		ci = 0
	}
	ss.clusters[ci].observe(host, ev, burst)
}

// Start launches the cycle timer; no-op when Interval <= 0 or already
// running.
func (m *Manager) Start() {
	if m.cfg.Interval <= 0 {
		return
	}
	m.lifeMu.Lock()
	defer m.lifeMu.Unlock()
	if m.running {
		return
	}
	m.running = true
	m.stopCh = make(chan struct{})
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(m.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.runCycle(false)
			case <-m.stopCh:
				return
			}
		}
	}()
}

// Stop halts the cycle timer and waits for an in-flight cycle to finish.
func (m *Manager) Stop() {
	m.lifeMu.Lock()
	if !m.running {
		m.lifeMu.Unlock()
		return
	}
	m.running = false
	close(m.stopCh)
	m.lifeMu.Unlock()
	m.wg.Wait()
	m.cycleMu.Lock() // barrier: a timer-fired cycle may still be draining
	m.cycleMu.Unlock()
}

// TriggerCycle runs one cycle synchronously. force makes every cluster
// with enough spooled windows adapt regardless of drift or schedule — the
// admin/test lever.
func (m *Manager) TriggerCycle(force bool) CycleResult {
	return m.runCycle(force)
}

func (m *Manager) runCycle(force bool) CycleResult {
	m.cycleMu.Lock()
	defer m.cycleMu.Unlock()

	// Degradation and breaker gates. Forced cycles bypass both: an
	// operator's TriggerCycle(true) is itself the breaker probe.
	if !force {
		if m.shedLearning.Load() {
			m.skippedC.Inc()
			return CycleResult{Time: m.cfg.Clock(), Skipped: true, SkipReason: "shed-learning"}
		}
		if !m.breaker.Allow() {
			m.skippedC.Inc()
			m.breakerGauge.SetInt(int(m.breaker.State()))
			return CycleResult{Time: m.cfg.Clock(), Skipped: true, SkipReason: "breaker-open"}
		}
	}
	m.cyclesC.Inc()
	var spanStart time.Time
	if m.cfg.Tracer != nil {
		spanStart = time.Now()
	}
	res, err := m.cycleBody(force)
	if m.cfg.Tracer != nil {
		id := m.cfg.Tracer.MintID()
		m.cfg.Tracer.Emit(obs.Span{
			TraceID: id,
			Kind:    obs.KindAdaptation,
			Time:    spanStart,
			Sampled: true,
			TotalNS: int64(time.Since(spanStart)),
		})
	}
	if err != nil {
		m.breaker.Failure()
		m.logf("lifecycle: cycle failed: %v", err)
	} else {
		m.breaker.Success()
	}
	st := m.breaker.Status()
	m.breakerGauge.SetInt(int(st.State))
	m.breakerOpens.Store(st.Opens)
	return res
}

// cycleBody is one adaptation cycle. It returns a non-nil error — a
// breaker failure — when the cycle panicked (recovered here), the
// lifecycle.cycle fault point fired, or any cluster's fine-tune errored.
// Caller holds cycleMu.
func (m *Manager) cycleBody(force bool) (res CycleResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.panicsC.Inc()
			res.Panicked = true
			err = fmt.Errorf("lifecycle: cycle panic (recovered): %v", r)
		}
	}()
	if ferr := m.fpCycle.Fire(); ferr != nil {
		res.Time = m.cfg.Clock()
		res.Forced = force
		return res, fmt.Errorf("lifecycle: cycle: %w", ferr)
	}

	m.mu.Lock()
	serving := m.serving
	cycle := m.cycleNum
	m.cycleNum++
	refs := append([]cluster.Histogram(nil), m.refs...)
	// Snapshot the per-cluster gauge slices: SetServing (hot reload) rebuilds
	// them under mu while this loop runs outside it.
	spoolGauges, driftGauges := m.spoolGauges, m.driftGauges
	m.mu.Unlock()

	res = CycleResult{Time: m.cfg.Clock(), Forced: force}
	ss := m.spools.Load()
	scheduled := m.cfg.AdaptEveryCycles > 0 && cycle > 0 && cycle%m.cfg.AdaptEveryCycles == 0

	type outcome struct {
		cc        ClusterCycle
		candidate *detect.LSTMDetector
		liveHist  cluster.Histogram
		baseline  bool // liveHist captured as a new drift baseline only
	}
	var outs []outcome
	var quarSum uint64

	for ci, cs := range ss.clusters {
		clean, quar, hist := cs.snapshot(true)
		quarSum += cs.quarantinedTotal()
		if ci < len(spoolGauges) {
			spoolGauges[ci].SetInt(len(clean))
		}
		cc := ClusterCycle{Cluster: ci, Windows: len(clean), Quarantined: len(quar), DriftCos: math.NaN()}
		var ref cluster.Histogram
		if ci < len(refs) {
			ref = refs[ci]
		}
		enoughLive := hist.Total() >= float64(m.cfg.MinDriftEvents)
		baseline := false
		if ref == nil {
			if enoughLive {
				// No training-time distribution shipped with the model:
				// adopt the first full live histogram as the baseline and
				// judge drift from the next cycle on. Forced and scheduled
				// adaptation still proceed below — only the drift signal
				// has nothing to compare against yet.
				baseline = true
				m.logf("lifecycle: cluster %d captured live drift baseline (%d events)", ci, int(hist.Total()))
			}
		} else if enoughLive {
			cc.DriftCos = cluster.Cosine(hist, ref)
			cc.Drifted = cc.DriftCos < m.cfg.DriftThreshold
			cc.Disruptive = cc.DriftCos < m.cfg.DisruptiveThreshold
			if ci < len(driftGauges) {
				driftGauges[ci].Set(cc.DriftCos)
			}
			if cc.Drifted {
				m.driftC.Inc()
				m.logf("lifecycle: cluster %d drifted (cosine %.3f < %.3f, disruptive=%v)",
					ci, cc.DriftCos, m.cfg.DriftThreshold, cc.Disruptive)
			}
		}

		// The adaptation pool: clean windows always; quarantined windows
		// only when the drift signal (or a forced cycle) attributes their
		// bursts to a distribution shift rather than a fault. Without
		// drift, quarantined traffic is presumed fault-proximate and never
		// trains anything.
		pool := clean
		if (force || cc.Drifted) && len(quar) > 0 {
			pool = append(append([][]features.Event{}, clean...), quar...)
		}
		trigger := force || cc.Drifted || scheduled
		if !trigger || len(pool) < m.cfg.MinWindows || ci >= len(serving.Detectors) {
			outs = append(outs, outcome{cc: cc, liveHist: hist, baseline: baseline})
			continue
		}

		// Fine-tune a candidate in the clear: the clone shares no mutable
		// state with the serving detector, so scoring continues unharmed.
		train, holdout := splitHoldout(pool, m.cfg.HoldoutFraction)
		stale := serving.Detectors[ci]
		cand := stale.Clone()
		cand.SetMetrics(m.cfg.Metrics, "candidate_")
		cc.Mode = "update"
		if cc.Disruptive {
			cc.Mode = "adapt"
		}
		start := m.adaptSeconds.Start()
		var err error
		if cc.Mode == "adapt" {
			err = cand.Adapt(train)
		} else {
			err = cand.Update(train)
		}
		m.adaptSeconds.ObserveDuration(start)
		m.adaptsC.Inc()
		if err != nil {
			cc.Err = err
			m.logf("lifecycle: cluster %d %s failed: %v", ci, cc.Mode, err)
			outs = append(outs, outcome{cc: cc, liveHist: hist, baseline: baseline})
			continue
		}
		cc.Adapted = true
		cc.CandidateFAR = falseAlarmRate(cand, holdout, serving.Threshold)
		cc.StaleFAR = falseAlarmRate(stale, holdout, serving.Threshold)
		m.gateDelta.Observe(cc.CandidateFAR - cc.StaleFAR)
		cc.GatePassed = cc.CandidateFAR <= m.cfg.GateBudget
		m.logf("lifecycle: cluster %d %s candidate FAR %.4f (stale %.4f, budget %.4f) gate=%v",
			ci, cc.Mode, cc.CandidateFAR, cc.StaleFAR, m.cfg.GateBudget, cc.GatePassed)
		outs = append(outs, outcome{cc: cc, candidate: cand, liveHist: hist, baseline: baseline})
	}
	m.quarC.Store(quarSum)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.serving != serving {
		// A reload replaced the serving set mid-cycle; the candidates were
		// trained against a stale lineage. Drop everything.
		res.Aborted = true
		for _, o := range outs {
			res.Clusters = append(res.Clusters, o.cc)
		}
		return res, nil
	}
	reason := "drift"
	if scheduled {
		reason = "scheduled"
	}
	if force {
		reason = "forced"
	}
	var next *ModelSet
	for _, o := range outs {
		res.Clusters = append(res.Clusters, o.cc)
		if o.baseline {
			m.refs[o.cc.Cluster] = o.liveHist
		}
		if !o.cc.Adapted {
			continue
		}
		gen := Generation{
			Time:         res.Time,
			Cluster:      o.cc.Cluster,
			Reason:       reason,
			Mode:         o.cc.Mode,
			DriftCos:     o.cc.DriftCos,
			CandidateFAR: o.cc.CandidateFAR,
			StaleFAR:     o.cc.StaleFAR,
			GatePassed:   o.cc.GatePassed,
			Fingerprint:  o.candidate.Fingerprint(),
		}
		switch {
		case o.cc.GatePassed && m.cfg.AutoPromote:
			if next == nil {
				next = serving.clone()
			}
			next.Detectors[o.cc.Cluster] = o.candidate
			// The distribution we just adapted to is the new normal;
			// re-referencing it stops the drift signal from re-firing
			// every cycle against the pre-update histogram.
			m.refs[o.cc.Cluster] = o.liveHist
			delete(m.pending, o.cc.Cluster)
			gen.Promoted = true
		case o.cc.GatePassed:
			// Gate passed but auto-promotion is off: hold for the
			// operator (POST /models/promote).
			m.pending[o.cc.Cluster] = o.candidate
		default:
			m.rejectsC.Inc()
			// Retain the rejected candidate so an operator who disagrees
			// with the gate can still force it.
			m.pending[o.cc.Cluster] = o.candidate
		}
		m.recordLocked(gen)
	}
	if next != nil {
		m.promoteLocked(next, reason)
		res.Promoted = true
	}
	for _, cc := range res.Clusters {
		if cc.Err != nil {
			return res, fmt.Errorf("lifecycle: cluster %d %s: %w", cc.Cluster, cc.Mode, cc.Err)
		}
	}
	return res, nil
}

// applyPrecisionLocked re-packs every detector of an incoming serving set
// to the monitor's configured precision before it starts serving, so a
// promotion or rollback can never put an unpacked (or stale-packed) model
// behind a quantized monitor. Detectors re-pack from their float64 master
// weights; at PrecisionF64 the per-detector call only clears, so the f64
// deployment pays nothing. Caller holds m.mu; the monitor shard locks are
// NOT held yet (SetPrecision is an atomic engine store, safe against
// concurrent scorers).
func (m *Manager) applyPrecisionLocked(ms *ModelSet) {
	if m.mon == nil || ms == nil {
		return
	}
	p := m.mon.Precision()
	for _, d := range ms.Detectors {
		if d != nil {
			d.SetPrecision(p)
		}
	}
}

// promoteLocked installs next as the serving set, keeping the old one for
// rollback, and swaps the monitor atomically (SwapModel holds every shard
// lock, so no message scores against a half-swapped model). The current
// tree is kept: candidates were trained in the serving template space.
// Caller holds m.mu.
func (m *Manager) promoteLocked(next *ModelSet, reason string) {
	m.prev = m.serving
	m.serving = next
	m.generation++
	if m.mon != nil {
		m.applyPrecisionLocked(next)
		m.mon.SwapModel(m.mon.Tree(), next.Resolver(), next.Threshold)
		m.mon.SetClusterOf(next.ClusterOf())
	}
	m.promosC.Inc()
	m.genGauge.SetInt(m.generation)
	m.logf("lifecycle: promoted generation %d (%s)", m.generation, reason)
}

// ForcePromote promotes all pending candidates (gate-failed or held by
// AutoPromote=false) as one new generation, bypassing the gate — the
// operator override behind POST /models/promote.
func (m *Manager) ForcePromote() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.pending) == 0 {
		return errors.New("lifecycle: no pending candidates to promote")
	}
	next := m.serving.clone()
	var fp uint64
	for ci, cand := range m.pending {
		if ci < len(next.Detectors) {
			next.Detectors[ci] = cand
			fp = cand.Fingerprint()
		}
	}
	m.pending = make(map[int]*detect.LSTMDetector)
	m.promoteLocked(next, "forced")
	m.recordLocked(Generation{
		Time: m.cfg.Clock(), Cluster: -1, Reason: "forced",
		DriftCos: math.NaN(), Promoted: true, Fingerprint: fp,
	})
	return nil
}

// Rollback restores the previous generation (one step). Calling it twice
// toggles back.
func (m *Manager) Rollback() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.prev == nil {
		return errors.New("lifecycle: no previous generation to roll back to")
	}
	cur := m.serving
	m.serving, m.prev = m.prev, cur
	m.generation++
	if m.mon != nil {
		m.applyPrecisionLocked(m.serving)
		m.mon.SwapModel(m.mon.Tree(), m.serving.Resolver(), m.serving.Threshold)
		m.mon.SetClusterOf(m.serving.ClusterOf())
	}
	m.rollbacksC.Inc()
	m.genGauge.SetInt(m.generation)
	m.recordLocked(Generation{
		Time: m.cfg.Clock(), Cluster: -1, Reason: "rollback",
		DriftCos: math.NaN(), Promoted: true,
	})
	m.logf("lifecycle: rolled back to previous generation (now %d)", m.generation)
	return nil
}

// SetServing replaces the serving set after an external reload (SIGHUP
// bundle reload in nfvmonitor). The caller has already swapped the
// monitor; SetServing realigns lifecycle state: spools are rebuilt (the
// new bundle's tree is a different template lineage), drift references
// reset from the new set, and pending/previous generations are dropped
// (they belong to the old lineage).
func (m *Manager) SetServing(ms *ModelSet) {
	m.mu.Lock()
	m.applyPrecisionLocked(ms)
	m.serving = ms
	m.prev = nil
	m.pending = make(map[int]*detect.LSTMDetector)
	m.refs = refsFrom(ms)
	m.generation++
	m.genGauge.SetInt(m.generation)
	m.buildClusterInstruments(len(ms.Detectors))
	m.recordLocked(Generation{
		Time: m.cfg.Clock(), Cluster: -1, Reason: "reload",
		DriftCos: math.NaN(), Promoted: true,
	})
	m.mu.Unlock()
	m.spools.Store(newSpoolSet(len(ms.Detectors), m.cfg.WindowLen, m.cfg.SpoolPerCluster))
}

// BreakerStatus reports the adaptation circuit breaker's state.
func (m *Manager) BreakerStatus() resilience.BreakerStatus {
	return m.breaker.Status()
}

// SetShedLearning toggles shed-learning mode: spooling stops (Observe
// returns immediately) and timer cycles are skipped. The degradation
// controller's lever — scoring continues untouched.
func (m *Manager) SetShedLearning(v bool, reason string) {
	if m.shedLearning.Swap(v) != v {
		if v {
			m.logf("lifecycle: shedding learning (%s)", reason)
		} else {
			m.logf("lifecycle: learning resumed (%s)", reason)
		}
	}
}

// ShedLearning reports whether learning is currently shed.
func (m *Manager) ShedLearning() bool { return m.shedLearning.Load() }

// Serving returns the current serving set (treat as read-only).
func (m *Manager) Serving() *ModelSet {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.serving
}

// Generation returns the monotonic serving-generation number.
func (m *Manager) Generation() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.generation
}

// Generations returns a copy of the audit log, oldest first.
func (m *Manager) Generations() []Generation {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Generation(nil), m.gens...)
}

// maxGenerations bounds the audit log; older entries roll off.
const maxGenerations = 256

// recordLocked appends one audit entry. Caller holds m.mu. An unknown
// drift cosine (NaN, which JSON cannot carry) is stored as -1.
func (m *Manager) recordLocked(g Generation) {
	if math.IsNaN(g.DriftCos) {
		g.DriftCos = -1
	}
	m.genSeq++
	g.ID = m.genSeq
	m.gens = append(m.gens, g)
	if len(m.gens) > maxGenerations {
		m.gens = m.gens[len(m.gens)-maxGenerations:]
	}
}

// Status is the lifecycle summary surfaced on /statusz.
type Status struct {
	Generation   int                      `json:"generation"`
	Cycles       int                      `json:"cycles"`
	Pending      []int                    `json:"pending_clusters"`
	SpoolWindows []int                    `json:"spool_windows"`
	CanRollback  bool                     `json:"can_rollback"`
	Breaker      resilience.BreakerStatus `json:"breaker"`
	ShedLearning bool                     `json:"shed_learning"`
}

// Status reports the lifecycle's current shape.
func (m *Manager) Status() Status {
	m.mu.Lock()
	st := Status{
		Generation:   m.generation,
		Cycles:       m.cycleNum,
		CanRollback:  m.prev != nil,
		Breaker:      m.breaker.Status(),
		ShedLearning: m.shedLearning.Load(),
	}
	for ci := range m.pending {
		st.Pending = append(st.Pending, ci)
	}
	m.mu.Unlock()
	sortInts(st.Pending)
	ss := m.spools.Load()
	for _, cs := range ss.clusters {
		st.SpoolWindows = append(st.SpoolWindows, cs.depth())
	}
	return st
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Log != nil {
		m.cfg.Log.Printf(format, args...)
	}
}
