package lifecycle

import (
	"testing"
	"time"

	"nfvpredict/internal/logfmt"
)

// TestLifecycleSoakSmoke is the CI soak: the full serving stack runs
// asynchronously — sharded monitor workers draining an enqueue stream,
// the lifecycle timer firing scheduled adaptation cycles — while traffic
// keeps flowing, and at least one candidate must train, pass the gate,
// and promote without a race (run under -race by make ci) or a deadlock.
func TestLifecycleSoakSmoke(t *testing.T) {
	ms, tree := testModelSet(t)
	lcfg := testLifecycleConfig()
	lcfg.Interval = 20 * time.Millisecond
	lcfg.AdaptEveryCycles = 1 // every timer tick attempts an adaptation
	lm, mon := buildStack(t, lcfg, ms, tree)

	mon.Start()
	lm.Start()

	// Feed through the async enqueue path while cycles fire underneath.
	at := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	deadline := time.Now().Add(10 * time.Second)
	i := 0
	for lm.Generation() == 0 && time.Now().Before(deadline) {
		for j := 0; j < 50; j++ {
			mon.Enqueue(logfmt.Message{Time: at, Host: "vpe01", Tag: "rpd", Text: normalTexts[i%len(normalTexts)]})
			at = at.Add(30 * time.Second)
			i++
		}
		time.Sleep(5 * time.Millisecond)
	}

	lm.Stop()
	mon.Stop()

	if lm.Generation() == 0 {
		t.Fatalf("no promotion within the soak deadline: status %+v", lm.Status())
	}
	if got := mon.Stats().ModelSwaps; got == 0 {
		t.Fatal("promotion reported but the monitor never swapped")
	}
	if msgs, _ := mon.Counters(); msgs == 0 {
		t.Fatal("monitor processed no messages")
	}
	// The stack still scores after shutdown-restart of the async machinery.
	mon.Start()
	mon.Enqueue(logfmt.Message{Time: at, Host: "vpe01", Tag: "rpd", Text: normalTexts[0]})
	mon.Stop()
}

// BenchmarkAdaptationCycle measures one full forced lifecycle cycle at
// unit scale: spool snapshot, candidate clone, incremental fine-tune on
// the spooled windows, shadow gate on the holdout, and promotion through
// the monitor's SwapModel path.
func BenchmarkAdaptationCycle(b *testing.B) {
	ms, tree := testModelSet(b)
	lm, mon := buildStack(b, testLifecycleConfig(), ms, tree)
	feedNormal(mon, "vpe01", 200, time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := lm.TriggerCycle(true)
		if !res.Promoted {
			b.Fatalf("cycle %d did not promote: %+v", i, res)
		}
	}
}
