package lifecycle

import (
	"sync"

	"nfvpredict/internal/cluster"
	"nfvpredict/internal/features"
)

// building is one host's in-progress window: events accumulate until the
// window length is reached, then the window joins the clean ring — or the
// quarantine ring if any event in it sat in a warning-sized anomaly burst
// (the §5.1 rule, the runtime proxy for "this traffic is near a fault").
// Isolated anomalies stay in clean windows: after a software update the
// stale model flags much of the *new normal* as anomalous, and excluding
// every flagged event would starve the spool of exactly the data
// adaptation needs (§4.3).
//
// Quarantined windows are not discarded, because a §5.1 burst has two
// indistinguishable causes at score time: a genuine fault, or the stale
// model's false-alarm storm on post-update traffic. The drift signal
// arbitrates at cycle time — when the live distribution has shifted,
// quarantined windows are the new normal and join the adaptation pool;
// without drift they are presumed fault traffic and never train anything.
type building struct {
	events []features.Event
	dirty  bool
}

// maxBuildingFactor bounds each cluster's in-progress window map at
// maxBuildingFactor × SpoolPerCluster hosts, so a sender spoofing hostnames
// cannot grow the spool without bound; hosts past the cap are ignored until
// existing windows complete.
const maxBuildingFactor = 4

// clusterSpool is one cluster's bounded reservoir of recent normal windows
// plus its live template histogram. Its mutex is only ever taken on its
// own: observe runs under a monitor shard lock and must not acquire
// anything else, and the cycle path copies data out before doing any slow
// work.
type clusterSpool struct {
	mu          sync.Mutex
	windowLen   int
	building    map[string]*building
	ring        [][]features.Event // clean windows
	next        int
	count       int
	qring       [][]features.Event // quarantined (burst-containing) windows
	qnext       int
	qcount      int
	hist        cluster.Histogram
	events      uint64
	quarantined uint64
}

func newClusterSpool(windowLen, perCluster int) *clusterSpool {
	return &clusterSpool{
		windowLen: windowLen,
		building:  make(map[string]*building),
		ring:      make([][]features.Event, perCluster),
		qring:     make([][]features.Event, perCluster),
		hist:      make(cluster.Histogram),
	}
}

// observe folds one scored message into the spool. O(1); runs under the
// host's shard lock via Manager.Observe.
func (cs *clusterSpool) observe(host string, ev features.Event, burst bool) {
	cs.mu.Lock()
	cs.events++
	// The drift histogram counts every event, bursts included, mirroring
	// §3.3's full-syslog month-over-month measurement. Post-update traffic
	// is heavily bursty under the stale model (new templates cluster into
	// warnings), so excluding bursts here would bias the live distribution
	// toward the old templates and mask exactly the drift this histogram
	// exists to detect. An incident can skew one cycle's histogram into a
	// spurious drift trigger, but a trigger only starts an adaptation —
	// the false-alarm gate (trained on burst-free windows) still decides
	// what serves.
	cs.hist.Add(ev.Template)
	b := cs.building[host]
	if b == nil {
		if len(cs.building) >= maxBuildingFactor*len(cs.ring) {
			cs.mu.Unlock()
			return
		}
		b = &building{events: make([]features.Event, 0, cs.windowLen)}
		cs.building[host] = b
	}
	if burst {
		b.dirty = true
	}
	b.events = append(b.events, ev)
	if len(b.events) >= cs.windowLen {
		delete(cs.building, host)
		if b.dirty {
			cs.quarantined++
			cs.qring[cs.qnext] = b.events
			cs.qnext = (cs.qnext + 1) % len(cs.qring)
			if cs.qcount < len(cs.qring) {
				cs.qcount++
			}
		} else {
			cs.ring[cs.next] = b.events
			cs.next = (cs.next + 1) % len(cs.ring)
			if cs.count < len(cs.ring) {
				cs.count++
			}
		}
	}
	cs.mu.Unlock()
}

func ringCopy(ring [][]features.Event, next, count int) [][]features.Event {
	out := make([][]features.Event, 0, count)
	start := next - count
	if start < 0 {
		start += len(ring)
	}
	for i := 0; i < count; i++ {
		out = append(out, ring[(start+i)%len(ring)])
	}
	return out
}

// snapshot copies out the completed clean and quarantined windows (oldest
// first) and the live histogram. The window slices themselves are
// immutable once completed, so they are shared, not deep-copied. resetHist
// starts a fresh histogram for the next cycle (each cycle judges drift on
// the traffic since the last).
func (cs *clusterSpool) snapshot(resetHist bool) (clean, quarantined [][]features.Event, hist cluster.Histogram) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	clean = ringCopy(cs.ring, cs.next, cs.count)
	quarantined = ringCopy(cs.qring, cs.qnext, cs.qcount)
	hist = make(cluster.Histogram, len(cs.hist))
	for k, v := range cs.hist {
		hist[k] = v
	}
	if resetHist {
		cs.hist = make(cluster.Histogram)
	}
	return clean, quarantined, hist
}

// depth reports how many completed clean windows the spool currently holds.
func (cs *clusterSpool) depth() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.count
}

// quarantinedTotal reports the cumulative count of windows quarantined.
func (cs *clusterSpool) quarantinedTotal() uint64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.quarantined
}

// seed refills the rings and histogram from a persisted snapshot (restart
// resume). Partial windows were not persisted; hosts start cold.
func (cs *clusterSpool) seed(clean, quarantined [][]features.Event, hist cluster.Histogram) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for _, w := range clean {
		if len(w) == 0 {
			continue
		}
		cs.ring[cs.next] = w
		cs.next = (cs.next + 1) % len(cs.ring)
		if cs.count < len(cs.ring) {
			cs.count++
		}
	}
	for _, w := range quarantined {
		if len(w) == 0 {
			continue
		}
		cs.qring[cs.qnext] = w
		cs.qnext = (cs.qnext + 1) % len(cs.qring)
		if cs.qcount < len(cs.qring) {
			cs.qcount++
		}
	}
	for k, v := range hist {
		cs.hist[k] += v
	}
}

// spoolSet is the set of per-cluster spools serving one model generation's
// template lineage. It is held in an atomic pointer on the Manager and
// replaced wholesale when a reload changes the template space, so the
// Observe hot path never takes a Manager-wide lock.
type spoolSet struct {
	clusters []*clusterSpool
}

func newSpoolSet(n, windowLen, perCluster int) *spoolSet {
	ss := &spoolSet{clusters: make([]*clusterSpool, n)}
	for i := range ss.clusters {
		ss.clusters[i] = newClusterSpool(windowLen, perCluster)
	}
	return ss
}
