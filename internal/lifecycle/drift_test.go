package lifecycle

import (
	"math"
	"sort"
	"testing"
	"time"

	"nfvpredict/internal/cluster"
	"nfvpredict/internal/detect"
	"nfvpredict/internal/features"
	"nfvpredict/internal/ingest"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/nfvsim"
	"nfvpredict/internal/sigtree"
)

// simModelSet trains a single-cluster serving set on the first two months
// of a simulated trace and returns the post-cut messages for live replay.
// Faults, glitches, maintenance, and core incidents are disabled so the
// trace is pure normal traffic — with update=true the only regime change
// is the month-2 software update rolling out to the whole fleet (§3.3).
func simModelSet(t testing.TB, update bool) (*ModelSet, *sigtree.Tree, []logfmt.Message) {
	if h, ok := t.(interface{ Helper() }); ok {
		h.Helper()
	}
	cfg := nfvsim.TestConfig()
	cfg.GlitchesPerDay = 0
	cfg.CoreIncidentsPerMonth = 0
	cfg.MeanFaultGapHours = 1e7
	cfg.MaintenanceEvery = 1e6 * time.Hour
	cfg.UpdateFraction = 1
	if !update {
		cfg.UpdateMonth = -1
	}
	d, err := nfvsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := d.Generate()
	if err != nil {
		t.Fatal(err)
	}

	cut := cfg.Start.AddDate(0, 2, 0)
	tree := sigtree.New()
	streams := make(map[string][]features.Event)
	hist := make(cluster.Histogram)
	var post []logfmt.Message
	for _, msg := range tr.Messages {
		if msg.Time.Before(cut) {
			tpl := tree.Learn(msg.Text)
			streams[msg.Host] = append(streams[msg.Host], features.Event{Time: msg.Time, Template: tpl.ID})
			hist.Add(tpl.ID)
		} else {
			post = append(post, msg)
		}
	}

	hosts := make([]string, 0, len(streams))
	for h := range streams {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	assign := make(map[string]int, len(hosts))
	var trainStreams [][]features.Event
	for _, h := range hosts {
		assign[h] = 0
		trainStreams = append(trainStreams, streams[h])
	}

	lcfg := detect.DefaultLSTMConfig()
	lcfg.Hidden = []int{16}
	lcfg.MaxVocab = 48
	lcfg.Epochs = 3
	lcfg.OverSampleRounds = 0
	det := detect.NewLSTMDetector(lcfg)
	if err := det.Train(trainStreams); err != nil {
		t.Fatal(err)
	}
	var scored []detect.ScoredEvent
	for _, h := range hosts {
		scored = append(scored, det.Score(h, streams[h])...)
	}
	ms := &ModelSet{
		Detectors: []*detect.LSTMDetector{det},
		Assign:    assign,
		Threshold: detect.ScoreQuantile(scored, 0.99),
		TrainHist: []cluster.Histogram{hist},
	}
	return ms, tree, post
}

// simLifecycleConfig is the serving config the sim tests share.
func simLifecycleConfig() Config {
	return Config{
		GateBudget:          0.05,
		WindowLen:           32,
		SpoolPerCluster:     512,
		MinWindows:          24,
		DriftThreshold:      0.7,
		DisruptiveThreshold: 0.7, // any detected drift uses transfer adaptation
		MinDriftEvents:      200,
		HoldoutFraction:     0.25,
		AutoPromote:         true,
	}
}

func replay(mon *ingest.Monitor, msgs []logfmt.Message) {
	for _, m := range msgs {
		mon.HandleMessage(m)
	}
}

// TestDriftStableStream: without a software update, two further months of
// the same traffic do NOT read as drift, and no adaptation triggers.
func TestDriftStableStream(t *testing.T) {
	ms, tree, post := simModelSet(t, false)
	lm, mon := buildStack(t, simLifecycleConfig(), ms, tree)
	replay(mon, post)
	res := lm.TriggerCycle(false)
	cc := res.Clusters[0]
	if math.IsNaN(cc.DriftCos) {
		t.Fatalf("drift was not evaluated: %+v", cc)
	}
	if cc.Drifted {
		t.Fatalf("stable stream read as drifted (cosine %.3f)", cc.DriftCos)
	}
	if cc.Adapted || res.Promoted {
		t.Fatalf("stable stream triggered adaptation: %+v", cc)
	}
}

// TestAdaptationRecoversFromUpdate is the acceptance scenario: the month-2
// software update shifts the fleet's template distribution (§3.3), the
// live drift signal fires, the lifecycle fine-tunes a candidate by
// transfer adaptation, and the candidate's false-alarm rate on held-out
// post-update traffic recovers to within the gate budget while the stale
// model's does not (§4.3, Figure 7's adapted-vs-baseline gap) — so the
// candidate is promoted.
func TestAdaptationRecoversFromUpdate(t *testing.T) {
	ms, tree, post := simModelSet(t, true)
	lcfg := simLifecycleConfig()
	lm, mon := buildStack(t, lcfg, ms, tree)
	replay(mon, post)
	res := lm.TriggerCycle(false)
	cc := res.Clusters[0]
	if !cc.Drifted {
		t.Fatalf("software update did not trip the drift signal (cosine %.3f): %+v", cc.DriftCos, cc)
	}
	if cc.Mode != "adapt" {
		t.Fatalf("disruptive drift should use transfer adaptation, got %q", cc.Mode)
	}
	if !cc.Adapted {
		t.Fatalf("drifted cluster did not adapt: %+v", cc)
	}
	if cc.StaleFAR <= lcfg.GateBudget {
		t.Fatalf("stale model unexpectedly fits the budget (FAR %.4f <= %.4f) — the scenario is vacuous",
			cc.StaleFAR, lcfg.GateBudget)
	}
	if cc.CandidateFAR > lcfg.GateBudget {
		t.Fatalf("adapted model did not recover: FAR %.4f > budget %.4f (stale %.4f)",
			cc.CandidateFAR, lcfg.GateBudget, cc.StaleFAR)
	}
	if !cc.GatePassed || !res.Promoted {
		t.Fatalf("recovered candidate was not promoted: %+v", cc)
	}
	if got := mon.Stats().ModelSwaps; got != 1 {
		t.Fatalf("ModelSwaps = %d, want 1", got)
	}
	// The post-update distribution became the new drift reference: an
	// immediately following cycle over fresh post-update traffic must not
	// re-fire the drift signal against the pre-update histogram.
	replay(mon, post[:len(post)/4])
	res2 := lm.TriggerCycle(false)
	if res2.Clusters[0].Drifted {
		t.Fatalf("drift re-fired against a stale reference after promotion: %+v", res2.Clusters[0])
	}
}
