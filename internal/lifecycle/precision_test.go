package lifecycle

import (
	"testing"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/ingest"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/sigtree"
)

// buildStackPrec is buildStack with a quantized serving precision: the
// monitor is configured for it and the initial serving set is packed, the
// way nfvmonitor -precision wires a deployment.
func buildStackPrec(t testing.TB, lcfg Config, ms *ModelSet, tree *sigtree.Tree, p detect.Precision) (*Manager, *ingest.Monitor) {
	lm := New(lcfg, ms)
	mcfg := ingest.DefaultMonitorConfig()
	mcfg.Threshold = ms.Threshold
	mcfg.ClusterOf = ms.ClusterOf()
	mcfg.OnScored = lm.Observe
	mcfg.Precision = p
	for _, d := range ms.Detectors {
		d.SetPrecision(p)
	}
	mon := ingest.NewMonitorWithResolver(mcfg, tree, ms.Resolver(), nil)
	lm.Attach(mon)
	return lm, mon
}

// TestPromotionRepacksQuantized pins the promotion/rollback invariant of
// the quantized serving path: every generation that reaches the monitor
// is freshly packed to the monitor's precision — a candidate fine-tuned
// from f64 weights cannot serve unpacked, and a rollback cannot revive a
// stale engine (both re-pack from the float64 master on the way in).
func TestPromotionRepacksQuantized(t *testing.T) {
	ms, tree := testModelSet(t)
	lm, mon := buildStackPrec(t, testLifecycleConfig(), ms, tree, detect.PrecisionF32)
	if ms.Detectors[0].PackedBytes() == 0 {
		t.Fatal("initial serving set not packed")
	}
	feedNormal(mon, "vpe01", 200, time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC))

	res := lm.TriggerCycle(true)
	if !res.Promoted {
		t.Fatalf("cycle did not promote: %+v", res)
	}
	cand := lm.Serving().Detectors[0]
	if cand.Fingerprint() == ms.Detectors[0].Fingerprint() {
		t.Fatal("promotion did not change the serving detector")
	}
	if cand.Precision() != detect.PrecisionF32 || cand.PackedBytes() == 0 {
		t.Fatalf("promoted candidate not packed: %v %d", cand.Precision(), cand.PackedBytes())
	}
	if got := cand.Model().Precision(); got != detect.PrecisionF32 {
		t.Fatalf("promoted engine precision = %v, want f32", got)
	}

	if err := lm.Rollback(); err != nil {
		t.Fatal(err)
	}
	back := lm.Serving().Detectors[0]
	if back.PackedBytes() == 0 || back.Model().Precision() != detect.PrecisionF32 {
		t.Fatalf("rollback generation not re-packed: %d %v", back.PackedBytes(), back.Model().Precision())
	}
	// The monitor still scores through the quantized engine post-rollback.
	before, _ := mon.Counters()
	feedNormal(mon, "vpe01", 20, time.Date(2018, 3, 2, 0, 0, 0, 0, time.UTC))
	if after, _ := mon.Counters(); after != before+20 {
		t.Fatalf("monitor stopped scoring after rollback: %d -> %d", before, after)
	}
}

// TestLifecycleSoakQuantized is the quantized twin of the CI soak: the
// async serving stack (sharded workers, lifecycle timer, batched
// inference) runs with the f32 engine active end to end — under -race in
// make ci, this is what proves the atomic engine swap on promotion is
// safe against concurrent scorers.
func TestLifecycleSoakQuantized(t *testing.T) {
	ms, tree := testModelSet(t)
	lcfg := testLifecycleConfig()
	lcfg.Interval = 20 * time.Millisecond
	lcfg.AdaptEveryCycles = 1
	lm, mon := buildStackPrec(t, lcfg, ms, tree, detect.PrecisionF32)

	mon.Start()
	lm.Start()

	at := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	deadline := time.Now().Add(10 * time.Second)
	i := 0
	for lm.Generation() == 0 && time.Now().Before(deadline) {
		for j := 0; j < 50; j++ {
			mon.Enqueue(logfmt.Message{Time: at, Host: "vpe01", Tag: "rpd", Text: normalTexts[i%len(normalTexts)]})
			at = at.Add(30 * time.Second)
			i++
		}
		time.Sleep(5 * time.Millisecond)
	}

	lm.Stop()
	mon.Stop()

	if lm.Generation() == 0 {
		t.Fatalf("no promotion within the soak deadline: status %+v", lm.Status())
	}
	d := lm.Serving().Detectors[0]
	if d.PackedBytes() == 0 || d.Model().Precision() != detect.PrecisionF32 {
		t.Fatalf("serving generation lost its packed engine: %d %v", d.PackedBytes(), d.Model().Precision())
	}
	if msgs, _ := mon.Counters(); msgs == 0 {
		t.Fatal("monitor processed no messages")
	}
}
