package lifecycle

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"nfvpredict/internal/atomicfile"
	"nfvpredict/internal/cluster"
	"nfvpredict/internal/features"
	"nfvpredict/internal/wireframe"
)

// Spool file framing. The spool records template IDs, which are only
// meaningful against the exact signature-tree lineage that produced them,
// so the file carries the tree fingerprint and Load discards the spool on
// any mismatch — a cold spool is always safe, a misinterpreted one is not.
const (
	// SpoolMagic identifies a framed lifecycle spool file.
	SpoolMagic = "NFVS"
	// SpoolVersion is the current spool format version.
	SpoolVersion uint32 = 1
)

// spoolWire is the gob payload of a spool file.
type spoolWire struct {
	// TreeFP is the serving tree's fingerprint at save time.
	TreeFP uint64
	// Clusters holds each cluster's completed windows and live histogram.
	// In-progress (building) windows are not persisted; hosts resume cold.
	Clusters []spoolClusterWire
	// Refs are the drift reference histograms, persisted so a baseline
	// captured live (when the bundle shipped no TrainHist) survives a
	// restart instead of re-arming a spurious first-cycle capture.
	Refs []cluster.Histogram
}

type spoolClusterWire struct {
	Windows    [][]features.Event
	Quarantine [][]features.Event
	Hist       cluster.Histogram
}

// SaveSpool persists the spool (and drift references) to path atomically,
// stamped with the attached monitor's current tree fingerprint. Call it
// alongside the monitor checkpoint so the two artifacts agree on lineage.
// A "" path is a no-op.
func (m *Manager) SaveSpool(path string) error {
	if path == "" {
		return nil
	}
	m.mu.Lock()
	mon := m.mon
	refs := append([]cluster.Histogram(nil), m.refs...)
	m.mu.Unlock()
	if mon == nil {
		return fmt.Errorf("lifecycle: no monitor attached; cannot stamp spool lineage")
	}
	wf := spoolWire{TreeFP: mon.TreeFingerprint(), Refs: refs}
	ss := m.spools.Load()
	for _, cs := range ss.clusters {
		clean, quar, hist := cs.snapshot(false)
		wf.Clusters = append(wf.Clusters, spoolClusterWire{Windows: clean, Quarantine: quar, Hist: hist})
	}
	return atomicfile.Write(path, func(w io.Writer) error {
		var payload bytes.Buffer
		if err := gob.NewEncoder(&payload).Encode(&wf); err != nil {
			return fmt.Errorf("lifecycle: encoding spool: %w", err)
		}
		return wireframe.Encode(w, SpoolMagic, SpoolVersion, payload.Bytes())
	})
}

// LoadSpool restores a spool saved by SaveSpool. A missing file is a clean
// cold start (nil error). A fingerprint mismatch — the tree lineage moved
// since the spool was written — discards the spool and starts cold, also
// nil: stale template IDs must never seed an adaptation. Corrupt framing
// is an error.
func (m *Manager) LoadSpool(path string) error {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	payload, framed, err := wireframe.Decode(data, SpoolMagic, SpoolVersion)
	if err != nil {
		return fmt.Errorf("lifecycle: spool %s: %w", path, err)
	}
	if !framed {
		return fmt.Errorf("lifecycle: spool %s: not a spool file", path)
	}
	var wf spoolWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wf); err != nil {
		return fmt.Errorf("lifecycle: spool %s: decoding: %w", path, err)
	}
	m.mu.Lock()
	mon := m.mon
	m.mu.Unlock()
	if mon == nil {
		return fmt.Errorf("lifecycle: no monitor attached; cannot verify spool lineage")
	}
	if fp := mon.TreeFingerprint(); fp != wf.TreeFP {
		m.logf("lifecycle: spool %s discarded: tree fingerprint %x != %x (lineage moved)", path, wf.TreeFP, fp)
		return nil
	}
	ss := m.spools.Load()
	for ci, cw := range wf.Clusters {
		if ci >= len(ss.clusters) {
			break
		}
		ss.clusters[ci].seed(cw.Windows, cw.Quarantine, cw.Hist)
	}
	m.mu.Lock()
	for ci, ref := range wf.Refs {
		if ci < len(m.refs) && m.refs[ci] == nil && len(ref) > 0 {
			m.refs[ci] = ref
		}
	}
	m.mu.Unlock()
	return nil
}
