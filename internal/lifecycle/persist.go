package lifecycle

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"nfvpredict/internal/atomicfile"
	"nfvpredict/internal/cluster"
	"nfvpredict/internal/features"
	"nfvpredict/internal/resilience"
	"nfvpredict/internal/wireframe"
)

// Spool file framing. The spool records template IDs, which are only
// meaningful against the exact signature-tree lineage that produced them,
// so the file carries the tree fingerprint and Load discards the spool on
// any mismatch — a cold spool is always safe, a misinterpreted one is not.
const (
	// SpoolMagic identifies a framed lifecycle spool file.
	SpoolMagic = "NFVS"
	// SpoolVersion is the current spool format version.
	SpoolVersion uint32 = 1
)

// spoolWire is the gob payload of a spool file.
type spoolWire struct {
	// TreeFP is the serving tree's fingerprint at save time.
	TreeFP uint64
	// Clusters holds each cluster's completed windows and live histogram.
	// In-progress (building) windows are not persisted; hosts resume cold.
	Clusters []spoolClusterWire
	// Refs are the drift reference histograms, persisted so a baseline
	// captured live (when the bundle shipped no TrainHist) survives a
	// restart instead of re-arming a spurious first-cycle capture.
	Refs []cluster.Histogram
}

type spoolClusterWire struct {
	Windows    [][]features.Event
	Quarantine [][]features.Event
	Hist       cluster.Histogram
}

// SaveSpool persists the spool (and drift references) to path atomically,
// stamped with the attached monitor's current tree fingerprint. Call it
// alongside the monitor checkpoint so the two artifacts agree on lineage.
// A "" path is a no-op.
func (m *Manager) SaveSpool(path string) error {
	if path == "" {
		return nil
	}
	m.mu.Lock()
	mon := m.mon
	refs := append([]cluster.Histogram(nil), m.refs...)
	m.mu.Unlock()
	if mon == nil {
		return fmt.Errorf("lifecycle: no monitor attached; cannot stamp spool lineage")
	}
	wf := spoolWire{TreeFP: mon.TreeFingerprint(), Refs: refs}
	ss := m.spools.Load()
	for _, cs := range ss.clusters {
		clean, quar, hist := cs.snapshot(false)
		wf.Clusters = append(wf.Clusters, spoolClusterWire{Windows: clean, Quarantine: quar, Hist: hist})
	}
	return atomicfile.Write(path, func(w io.Writer) error {
		// The spool.write fault point injects disk-full/torn failures inside
		// the atomic-write window: the temp file is discarded and the
		// previous spool generation survives.
		w = m.fpSpoolW.Writer(w)
		var payload bytes.Buffer
		if err := gob.NewEncoder(&payload).Encode(&wf); err != nil {
			return fmt.Errorf("lifecycle: encoding spool: %w", err)
		}
		return wireframe.Encode(w, SpoolMagic, SpoolVersion, payload.Bytes())
	})
}

// LoadSpool restores a spool saved by SaveSpool. A missing file is a clean
// cold start (nil error). A fingerprint mismatch — the tree lineage moved
// since the spool was written — discards the spool and starts cold, also
// nil: stale template IDs must never seed an adaptation. A torn, truncated,
// or bit-flipped spool is quarantined (renamed *.corrupt, preserving the
// evidence) and the manager cold-starts, also nil — corrupt durable state
// must never take the process down. Only I/O errors (including injected
// spool.read faults, which the caller may retry) are returned.
func (m *Manager) LoadSpool(path string) error {
	if path == "" {
		return nil
	}
	if err := m.fpSpoolR.Fire(); err != nil {
		return fmt.Errorf("lifecycle: spool %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	payload, framed, err := wireframe.Decode(data, SpoolMagic, SpoolVersion)
	if err != nil {
		return m.quarantineSpool(path, err)
	}
	if !framed {
		return m.quarantineSpool(path, fmt.Errorf("not a spool file"))
	}
	var wf spoolWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wf); err != nil {
		return m.quarantineSpool(path, fmt.Errorf("decoding: %w", err))
	}
	m.mu.Lock()
	mon := m.mon
	m.mu.Unlock()
	if mon == nil {
		return fmt.Errorf("lifecycle: no monitor attached; cannot verify spool lineage")
	}
	if fp := mon.TreeFingerprint(); fp != wf.TreeFP {
		m.logf("lifecycle: spool %s discarded: tree fingerprint %x != %x (lineage moved)", path, wf.TreeFP, fp)
		return nil
	}
	ss := m.spools.Load()
	for ci, cw := range wf.Clusters {
		if ci >= len(ss.clusters) {
			break
		}
		ss.clusters[ci].seed(cw.Windows, cw.Quarantine, cw.Hist)
	}
	m.mu.Lock()
	for ci, ref := range wf.Refs {
		if ci < len(m.refs) && m.refs[ci] == nil && len(ref) > 0 {
			m.refs[ci] = ref
		}
	}
	m.mu.Unlock()
	return nil
}

// quarantineSpool sets a corrupt spool aside (path → path.corrupt) so the
// next save starts clean and the evidence survives for inspection, then
// reports a cold start (nil). A failed rename is returned — leaving the
// corrupt file in place would re-fail every restart.
func (m *Manager) quarantineSpool(path string, cause error) error {
	qpath, qerr := resilience.Quarantine(path)
	if qerr != nil {
		return fmt.Errorf("lifecycle: spool %s: %v (and quarantine failed: %w)", path, cause, qerr)
	}
	m.spoolQuarC.Inc()
	m.logf("lifecycle: spool %s corrupt (%v); quarantined to %s, starting cold", path, cause, qpath)
	return nil
}
