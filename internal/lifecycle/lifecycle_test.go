package lifecycle

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/features"
	"nfvpredict/internal/ingest"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/sigtree"
)

var normalTexts = []string{
	"bgp keepalive exchanged with peer 10.0.0.1 hold 90",
	"interface statistics poll completed for ge-0/0/1 in 12 ms",
	"fpc 0 cpu utilization 20 percent memory 40 percent",
	"ntp clock synchronized to 10.9.9.9 stratum 2 offset 120 us",
}

// testModelSet trains a single-cluster serving set on a cyclic corpus
// (mirrors the ingest test fixture: threshold 4 cleanly separates this
// traffic from unseen messages).
func testModelSet(t testing.TB) (*ModelSet, *sigtree.Tree) {
	if h, ok := t.(interface{ Helper() }); ok {
		h.Helper()
	}
	tree := sigtree.New()
	var stream []features.Event
	base := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 1200; i++ {
		tpl := tree.Learn(normalTexts[i%len(normalTexts)])
		stream = append(stream, features.Event{Time: base.Add(time.Duration(i) * 30 * time.Second), Template: tpl.ID})
	}
	cfg := detect.DefaultLSTMConfig()
	cfg.Hidden = []int{16}
	cfg.MaxVocab = 16
	cfg.Epochs = 6
	cfg.OverSampleRounds = 0
	det := detect.NewLSTMDetector(cfg)
	if err := det.Train([][]features.Event{stream}); err != nil {
		t.Fatal(err)
	}
	ms := &ModelSet{
		Detectors: []*detect.LSTMDetector{det},
		Assign:    map[string]int{"vpe01": 0},
		Threshold: 4,
	}
	return ms, tree
}

// buildStack wires a Manager and a Monitor together the way nfvmonitor
// does: manager first (the monitor config needs Observe), then Attach.
func buildStack(t testing.TB, lcfg Config, ms *ModelSet, tree *sigtree.Tree) (*Manager, *ingest.Monitor) {
	lm := New(lcfg, ms)
	mcfg := ingest.DefaultMonitorConfig()
	mcfg.Threshold = ms.Threshold
	mcfg.ClusterOf = ms.ClusterOf()
	mcfg.OnScored = lm.Observe
	mon := ingest.NewMonitorWithResolver(mcfg, tree, ms.Resolver(), nil)
	lm.Attach(mon)
	return lm, mon
}

func feedNormal(mon *ingest.Monitor, host string, n int, at time.Time) time.Time {
	for i := 0; i < n; i++ {
		mon.HandleMessage(logfmt.Message{
			Time: at, Host: host, Tag: "rpd",
			Text: normalTexts[i%len(normalTexts)],
		})
		at = at.Add(30 * time.Second)
	}
	return at
}

// feedNoisy feeds mostly-cyclic traffic with pseudo-randomly injected
// off-pattern messages, paced at 61s so no two anomalies ever fall inside
// the §5.1 one-minute cluster window (every window stays clean). The
// injections are unpredictable by construction, so no amount of candidate
// fine-tuning can score this traffic confidently — the deterministic way
// to keep a shadow false-alarm rate strictly positive for gate tests.
func feedNoisy(mon *ingest.Monitor, host string, n int, at time.Time) time.Time {
	state := uint32(9001)
	for i := 0; i < n; i++ {
		state = state*1664525 + 1013904223
		text := normalTexts[i%len(normalTexts)]
		if state%5 == 0 {
			text = fmt.Sprintf("unexpected transient event code %d on module %d", state%977, state%13)
		}
		mon.HandleMessage(logfmt.Message{Time: at, Host: host, Tag: "rpd", Text: text})
		at = at.Add(61 * time.Second)
	}
	return at
}

// testLifecycleConfig is a small, fast config for unit tests: tiny
// windows, no timer, no drift machinery in the way.
func testLifecycleConfig() Config {
	return Config{
		GateBudget:      1, // always pass; tests override to exercise the gate
		WindowLen:       8,
		SpoolPerCluster: 64,
		MinWindows:      4,
		HoldoutFraction: 0.25,
		AutoPromote:     true,
		MinDriftEvents:  1 << 30, // drift bookkeeping off; cycles are forced
	}
}

// TestPromotionEndToEnd: a gated candidate is promoted atomically while
// traffic keeps flowing (run under -race: scoring goroutines hammer the
// monitor through the swap).
func TestPromotionEndToEnd(t *testing.T) {
	ms, tree := testModelSet(t)
	lm, mon := buildStack(t, testLifecycleConfig(), ms, tree)
	origFP := ms.Detectors[0].Fingerprint()

	at := feedNormal(mon, "vpe01", 200, time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC))

	// Hammer the monitor from the side while the cycle trains, gates, and
	// swaps, so -race sees promotion interleaved with scoring.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ts := at.Add(time.Duration(g) * time.Hour)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				mon.HandleMessage(logfmt.Message{Time: ts, Host: "vpe01", Tag: "rpd", Text: normalTexts[i%len(normalTexts)]})
				ts = ts.Add(30 * time.Second)
			}
		}(g)
	}

	res := lm.TriggerCycle(true)
	close(stop)
	wg.Wait()

	if !res.Promoted || len(res.Clusters) != 1 {
		t.Fatalf("cycle result: %+v", res)
	}
	cc := res.Clusters[0]
	if !cc.Adapted || !cc.GatePassed || cc.Mode != "update" {
		t.Fatalf("cluster cycle: %+v", cc)
	}
	if lm.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", lm.Generation())
	}
	if got := mon.Stats().ModelSwaps; got != 1 {
		t.Fatalf("ModelSwaps = %d, want 1", got)
	}
	newFP := lm.Serving().Detectors[0].Fingerprint()
	if newFP == origFP {
		t.Fatal("promotion did not change the serving detector")
	}
	// The monitor still scores after the swap (streams were reset, model
	// is the candidate).
	feedNormal(mon, "vpe01", 20, at.Add(24*time.Hour))
	if msgs, _ := mon.Counters(); msgs == 0 {
		t.Fatal("monitor stopped counting after promotion")
	}
	gens := lm.Generations()
	if len(gens) != 1 || !gens[0].Promoted || gens[0].Fingerprint != newFP {
		t.Fatalf("audit log: %+v", gens)
	}
}

// TestGateRejectsBadCandidate: with an impossible budget the candidate is
// rejected, the serving model is untouched, and the candidate is retained
// as pending; ForcePromote overrides; Rollback restores the original.
func TestGateRejectsBadCandidate(t *testing.T) {
	ms, tree := testModelSet(t)
	// An absurdly low threshold makes every scored event a false alarm,
	// so candidate FAR ≈ 1 and any positive budget below that rejects.
	ms.Threshold = 0.05
	lcfg := testLifecycleConfig()
	lcfg.GateBudget = 1e-9
	lm, mon := buildStack(t, lcfg, ms, tree)
	origFP := ms.Detectors[0].Fingerprint()

	feedNoisy(mon, "vpe01", 200, time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC))
	res := lm.TriggerCycle(true)
	if res.Promoted {
		t.Fatalf("gate-failing candidate was promoted: %+v", res)
	}
	cc := res.Clusters[0]
	if !cc.Adapted || cc.GatePassed || cc.CandidateFAR <= lcfg.GateBudget {
		t.Fatalf("cluster cycle: %+v", cc)
	}
	if got := mon.Stats().ModelSwaps; got != 0 {
		t.Fatalf("rejected candidate caused %d swaps", got)
	}
	if fp := lm.Serving().Detectors[0].Fingerprint(); fp != origFP {
		t.Fatal("rejected candidate mutated the serving set")
	}
	st := lm.Status()
	if len(st.Pending) != 1 || st.Pending[0] != 0 {
		t.Fatalf("pending: %+v", st)
	}

	// Operator override: forced promotion installs the pending candidate.
	if err := lm.ForcePromote(); err != nil {
		t.Fatal(err)
	}
	if got := mon.Stats().ModelSwaps; got != 1 {
		t.Fatalf("ModelSwaps after ForcePromote = %d", got)
	}
	forcedFP := lm.Serving().Detectors[0].Fingerprint()
	if forcedFP == origFP {
		t.Fatal("ForcePromote did not install the candidate")
	}

	// One-step rollback restores the prior generation.
	if err := lm.Rollback(); err != nil {
		t.Fatal(err)
	}
	if fp := lm.Serving().Detectors[0].Fingerprint(); fp != origFP {
		t.Fatal("rollback did not restore the previous generation")
	}
	if got := mon.Stats().ModelSwaps; got != 2 {
		t.Fatalf("ModelSwaps after rollback = %d", got)
	}
	// Nothing left to promote, and a second rollback just toggles back.
	if err := lm.ForcePromote(); err == nil {
		t.Fatal("ForcePromote with no pending candidates must fail")
	}
	if err := lm.Rollback(); err != nil {
		t.Fatal(err)
	}
	if fp := lm.Serving().Detectors[0].Fingerprint(); fp != forcedFP {
		t.Fatal("rollback toggle did not return to the forced candidate")
	}
}

// TestMinWindowsFloor: a forced cycle with too little spooled data adapts
// nothing.
func TestMinWindowsFloor(t *testing.T) {
	ms, tree := testModelSet(t)
	lcfg := testLifecycleConfig()
	lcfg.MinWindows = 1000
	lm, mon := buildStack(t, lcfg, ms, tree)
	feedNormal(mon, "vpe01", 100, time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC))
	res := lm.TriggerCycle(true)
	if res.Promoted || res.Clusters[0].Adapted {
		t.Fatalf("adapted below the MinWindows floor: %+v", res)
	}
}

// TestAdminEndpoints drives the /models surface end to end.
func TestAdminEndpoints(t *testing.T) {
	ms, tree := testModelSet(t)
	ms.Threshold = 0.05 // force gate rejection so promote has work to do
	lcfg := testLifecycleConfig()
	lcfg.GateBudget = 1e-9
	lm, mon := buildStack(t, lcfg, ms, tree)
	feedNoisy(mon, "vpe01", 200, time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC))

	srv := httptest.NewServer(lm.Handler())
	defer srv.Close()

	// No pending candidates yet: promote and rollback conflict.
	for _, ep := range []string{"/models/promote", "/models/rollback"} {
		resp, err := http.Post(srv.URL+ep, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("POST %s before any cycle: %d", ep, resp.StatusCode)
		}
	}

	// Force a cycle over HTTP; the candidate fails the gate.
	resp, err := http.Post(srv.URL+"/models/adapt", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var view modelsView
	get := func() {
		resp, err := http.Get(srv.URL + "/models")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		view = modelsView{}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	}
	get()
	if len(view.Pending) != 1 || view.Generation != 0 || len(view.Clusters) != 1 {
		t.Fatalf("GET /models after rejected cycle: %+v", view)
	}
	if len(view.Generations) == 0 || view.Generations[0].GatePassed {
		t.Fatalf("audit log: %+v", view.Generations)
	}

	if resp, err = http.Post(srv.URL+"/models/promote", "", nil); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /models/promote: %d", resp.StatusCode)
	}
	get()
	if view.Generation != 1 || len(view.Pending) != 0 || !view.CanRollback {
		t.Fatalf("GET /models after promote: %+v", view)
	}

	if resp, err = http.Post(srv.URL+"/models/rollback", "", nil); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /models/rollback: %d", resp.StatusCode)
	}
	get()
	if view.Generation != 2 {
		t.Fatalf("GET /models after rollback: %+v", view)
	}

	// GET on action endpoints is not allowed.
	resp, err = http.Get(srv.URL + "/models/promote")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /models/promote: %d", resp.StatusCode)
	}
}

// TestSpoolPersistRoundTrip: the spool survives a restart when the tree
// lineage is unchanged, and is discarded when it moved.
func TestSpoolPersistRoundTrip(t *testing.T) {
	ms, tree := testModelSet(t)
	lcfg := testLifecycleConfig()
	lm, mon := buildStack(t, lcfg, ms, tree)
	feedNormal(mon, "vpe01", 100, time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC))
	depth := lm.Status().SpoolWindows[0]
	if depth == 0 {
		t.Fatal("no windows spooled")
	}
	path := filepath.Join(t.TempDir(), "spool.nfvs")
	if err := lm.SaveSpool(path); err != nil {
		t.Fatal(err)
	}

	// Same lineage: the spool resumes.
	lm2, _ := buildStack(t, lcfg, ms, tree)
	if err := lm2.LoadSpool(path); err != nil {
		t.Fatal(err)
	}
	if got := lm2.Status().SpoolWindows[0]; got != depth {
		t.Fatalf("restored %d windows, want %d", got, depth)
	}

	// Lineage moved (the tree learned a new template): discard.
	tree.Learn("a template the spool never saw before now")
	lm3, _ := buildStack(t, lcfg, ms, tree)
	if err := lm3.LoadSpool(path); err != nil {
		t.Fatal(err)
	}
	if got := lm3.Status().SpoolWindows[0]; got != 0 {
		t.Fatalf("stale-lineage spool was accepted: %d windows", got)
	}

	// A missing file is a clean cold start.
	if err := lm3.LoadSpool(filepath.Join(t.TempDir(), "absent.nfvs")); err != nil {
		t.Fatal(err)
	}
}

// TestBurstWindowsQuarantined: windows containing burst (fault) traffic
// land in the quarantine ring, not the clean spool; isolated anomalies
// stay in clean windows.
func TestBurstWindowsQuarantined(t *testing.T) {
	ms, tree := testModelSet(t)
	lcfg := testLifecycleConfig()
	lm, mon := buildStack(t, lcfg, ms, tree)
	at := feedNormal(mon, "vpe01", 64, time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC))
	clean := lm.Status().SpoolWindows[0]
	if clean == 0 {
		t.Fatal("no clean windows spooled")
	}
	// A §5.1 burst: ≥2 anomalies inside a minute. The window holding them
	// must be quarantined at completion.
	for i := 0; i < 3; i++ {
		mon.HandleMessage(logfmt.Message{Time: at, Host: "vpe01", Tag: "rpd",
			Text: "invalid response from peer chassis-control session 42 retries 3"})
		at = at.Add(15 * time.Second)
	}
	feedNormal(mon, "vpe01", lcfg.WindowLen, at.Add(time.Hour))
	ss := lm.spools.Load()
	cleanWins, quar, _ := ss.clusters[0].snapshot(false)
	if len(quar) == 0 {
		t.Fatal("burst window was not quarantined")
	}
	if len(cleanWins) != clean {
		t.Fatalf("burst window leaked into the clean spool: %d clean windows, want %d", len(cleanWins), clean)
	}
}
