package lifecycle

import (
	"nfvpredict/internal/detect"
	"nfvpredict/internal/features"
)

// falseAlarmRate replays held-out normal windows through det and returns
// the fraction of events scored above thr — the shadow-evaluation metric
// the promotion gate budgets. The first event of each window is excluded:
// Score pins it to 0 (no context yet), so counting it would dilute the
// rate by exactly one guaranteed pass per window.
//
// The windows come from the spool, which already excludes burst (fault)
// traffic, so every alarm here is a false alarm by construction.
func falseAlarmRate(det *detect.LSTMDetector, wins [][]features.Event, thr float64) float64 {
	var above, total int
	for _, w := range wins {
		for i, s := range det.Score("shadow", w) {
			if i == 0 {
				continue
			}
			total++
			if s.Score > thr {
				above++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(above) / float64(total)
}

// splitHoldout partitions spooled windows into training and held-out sets
// for the shadow gate. Every k-th window is held out (k ≈ 1/frac), so the
// holdout interleaves with training in time rather than being the newest
// tail — a tail-only holdout would judge the candidate on traffic from a
// regime the training set barely saw.
func splitHoldout(wins [][]features.Event, frac float64) (train, holdout [][]features.Event) {
	if frac <= 0 || frac >= 1 {
		frac = 0.25
	}
	k := int(1/frac + 0.5)
	if k < 2 {
		k = 2
	}
	for i, w := range wins {
		if i%k == k-1 {
			holdout = append(holdout, w)
		} else {
			train = append(train, w)
		}
	}
	if len(train) == 0 {
		return wins, nil
	}
	return train, holdout
}
