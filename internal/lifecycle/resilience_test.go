package lifecycle

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"nfvpredict/internal/faultinject"
)

// TestBreakerOpensAndRecovers drives the adaptation breaker through its full
// arc with injected cycle failures: consecutive failures open it, timer-style
// cycles are then skipped, a forced cycle still runs (the operator probe),
// and after the cooldown a clean half-open probe closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	ms, tree := testModelSet(t)
	reg := faultinject.NewRegistry()
	lcfg := testLifecycleConfig()
	lcfg.Faults = reg
	lcfg.BreakerThreshold = 2
	lcfg.BreakerCooldown = time.Millisecond
	lm, _ := buildStack(t, lcfg, ms, tree)

	if err := reg.Arm("lifecycle.cycle", faultinject.Arming{Mode: faultinject.ModeError}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if res := lm.TriggerCycle(false); res.Skipped {
			t.Fatalf("cycle %d skipped before breaker opened: %+v", i, res)
		}
	}
	if st := lm.Status(); st.Breaker.StateName != "open" {
		t.Fatalf("breaker after %d failures = %q, want open", 2, st.Breaker.StateName)
	}

	// Open breaker: an unforced cycle is skipped without running the body.
	res := lm.TriggerCycle(false)
	if !res.Skipped || res.SkipReason != "breaker-open" {
		t.Fatalf("open-breaker cycle = %+v, want skipped breaker-open", res)
	}
	if got := lm.skippedC.Value(); got != 1 {
		t.Fatalf("skipped counter = %d, want 1", got)
	}

	// A forced cycle bypasses the breaker — and, still faulted, fails.
	if res := lm.TriggerCycle(true); res.Skipped {
		t.Fatalf("forced cycle skipped: %+v", res)
	}

	// Fault cleared + cooldown elapsed: the half-open probe closes it.
	reg.Disarm("lifecycle.cycle")
	time.Sleep(5 * time.Millisecond)
	if res := lm.TriggerCycle(false); res.Skipped {
		t.Fatalf("probe cycle skipped: %+v", res)
	}
	st := lm.Status()
	if st.Breaker.StateName != "closed" {
		t.Fatalf("breaker after clean probe = %q, want closed", st.Breaker.StateName)
	}
	if st.Breaker.Opens < 1 {
		t.Fatalf("breaker opens = %d, want >= 1", st.Breaker.Opens)
	}
}

// TestCyclePanicFeedsBreaker pins that a panicking cycle is recovered,
// counted, and treated as a breaker failure — the process never dies to an
// adaptation bug.
func TestCyclePanicFeedsBreaker(t *testing.T) {
	ms, tree := testModelSet(t)
	reg := faultinject.NewRegistry()
	lcfg := testLifecycleConfig()
	lcfg.Faults = reg
	lcfg.BreakerThreshold = 1
	lm, _ := buildStack(t, lcfg, ms, tree)

	if err := reg.Arm("lifecycle.cycle", faultinject.Arming{Mode: faultinject.ModePanic, Count: 1}); err != nil {
		t.Fatal(err)
	}
	res := lm.TriggerCycle(false)
	if !res.Panicked {
		t.Fatalf("cycle result = %+v, want Panicked", res)
	}
	if got := lm.panicsC.Value(); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
	if st := lm.Status(); st.Breaker.StateName != "open" {
		t.Fatalf("breaker after panic (threshold 1) = %q, want open", st.Breaker.StateName)
	}
}

// TestShedLearningMode pins the shed-learning degradation lever: spooling
// and timer cycles stop, scoring state is untouched, and lifting the mode
// resumes both.
func TestShedLearningMode(t *testing.T) {
	ms, tree := testModelSet(t)
	lm, mon := buildStack(t, testLifecycleConfig(), ms, tree)

	lm.SetShedLearning(true, "test overload")
	if !lm.ShedLearning() {
		t.Fatal("shed-learning not set")
	}
	feedNormal(mon, "vpe01", 100, time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC))
	if st := lm.Status(); st.SpoolWindows[0] != 0 {
		t.Fatalf("spooled %d windows while shedding learning", st.SpoolWindows[0])
	}
	res := lm.TriggerCycle(false)
	if !res.Skipped || res.SkipReason != "shed-learning" {
		t.Fatalf("shed cycle = %+v, want skipped shed-learning", res)
	}
	if !lm.Status().ShedLearning {
		t.Fatal("status does not report shed-learning")
	}

	lm.SetShedLearning(false, "recovered")
	feedNormal(mon, "vpe01", 100, time.Date(2018, 3, 2, 0, 0, 0, 0, time.UTC))
	if st := lm.Status(); st.SpoolWindows[0] == 0 {
		t.Fatal("spooling did not resume after shed-learning lifted")
	}
	if res := lm.TriggerCycle(false); res.Skipped {
		t.Fatalf("post-recovery cycle skipped: %+v", res)
	}
}

// TestSpoolCorruptQuarantine pins satellite #4: a truncated (torn) spool is
// quarantined — renamed aside with the evidence preserved — and the manager
// cold-starts instead of failing the process.
func TestSpoolCorruptQuarantine(t *testing.T) {
	ms, tree := testModelSet(t)
	lcfg := testLifecycleConfig()
	lm, mon := buildStack(t, lcfg, ms, tree)
	feedNormal(mon, "vpe01", 100, time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC))
	path := filepath.Join(t.TempDir(), "spool.nfvs")
	if err := lm.SaveSpool(path); err != nil {
		t.Fatal(err)
	}

	// Tear the file: keep the header, drop the tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	lm2, _ := buildStack(t, lcfg, ms, tree)
	if err := lm2.LoadSpool(path); err != nil {
		t.Fatalf("corrupt spool load = %v, want nil (cold start)", err)
	}
	if got := lm2.spoolQuarC.Value(); got != 1 {
		t.Fatalf("quarantine counter = %d, want 1", got)
	}
	if st := lm2.Status(); st.SpoolWindows[0] != 0 {
		t.Fatalf("cold start expected, got %d windows", st.SpoolWindows[0])
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantined evidence missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt spool still in place: %v", err)
	}

	// The path is clear: the next save and load round-trip cleanly.
	feedNormal(mon, "vpe01", 100, time.Date(2018, 3, 2, 0, 0, 0, 0, time.UTC))
	if err := lm.SaveSpool(path); err != nil {
		t.Fatal(err)
	}
	lm3, _ := buildStack(t, lcfg, ms, tree)
	if err := lm3.LoadSpool(path); err != nil {
		t.Fatal(err)
	}
	if st := lm3.Status(); st.SpoolWindows[0] == 0 {
		t.Fatal("post-quarantine spool did not restore")
	}
}

// TestSpoolTornWriteKeepsPrevious pins the atomic-write guarantee under an
// injected torn write: the save fails, but the previous spool generation is
// untouched and still restores.
func TestSpoolTornWriteKeepsPrevious(t *testing.T) {
	ms, tree := testModelSet(t)
	reg := faultinject.NewRegistry()
	lcfg := testLifecycleConfig()
	lcfg.Faults = reg
	lm, mon := buildStack(t, lcfg, ms, tree)
	feedNormal(mon, "vpe01", 100, time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC))
	path := filepath.Join(t.TempDir(), "spool.nfvs")
	if err := lm.SaveSpool(path); err != nil {
		t.Fatal(err)
	}
	want := lm.Status().SpoolWindows[0]

	if err := reg.Arm("spool.write", faultinject.Arming{Mode: faultinject.ModeTorn, Bytes: 16, Count: 1}); err != nil {
		t.Fatal(err)
	}
	if err := lm.SaveSpool(path); err == nil {
		t.Fatal("torn save reported success")
	}

	lm2, _ := buildStack(t, lcfg, ms, tree)
	if err := lm2.LoadSpool(path); err != nil {
		t.Fatalf("previous spool unreadable after torn save: %v", err)
	}
	if got := lm2.Status().SpoolWindows[0]; got != want {
		t.Fatalf("restored %d windows, want previous generation's %d", got, want)
	}
}

// TestReloadRacesAdaptation is satellite #3: a hot reload (monitor swap +
// SetServing, the SIGHUP path) racing in-flight forced cycles, spool saves,
// and live scoring traffic. Run under -race; the invariant beyond
// race-freedom is that cycles against the replaced lineage abort rather than
// promote.
func TestReloadRacesAdaptation(t *testing.T) {
	ms, tree := testModelSet(t)
	lcfg := testLifecycleConfig()
	lm, mon := buildStack(t, lcfg, ms, tree)
	feedNormal(mon, "vpe01", 200, time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC))
	spool := filepath.Join(t.TempDir(), "spool.nfvs")

	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // live traffic
		defer wg.Done()
		at := time.Date(2018, 3, 5, 0, 0, 0, 0, time.UTC)
		for {
			select {
			case <-stop:
				return
			default:
				at = feedNormal(mon, "vpe01", 8, at)
			}
		}
	}()

	wg.Add(1)
	go func() { // adaptation cycles
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				lm.TriggerCycle(true)
			}
		}
	}()

	wg.Add(1)
	go func() { // spool persistence
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				lm.SaveSpool(spool)
			}
		}
	}()

	// Hot reloads: swap the monitor, then realign the lifecycle — the order
	// nfvmonitor uses on SIGHUP.
	for i := 0; i < 6; i++ {
		next := lm.Serving().clone()
		mon.SwapModel(mon.Tree(), next.Resolver(), next.Threshold)
		mon.SetClusterOf(next.ClusterOf())
		lm.SetServing(next)
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// The audit log records every reload; generation moved at least 6 times.
	if gen := lm.Generation(); gen < 6 {
		t.Fatalf("generation = %d, want >= 6", gen)
	}
	// And a final cycle on the settled state still works.
	if res := lm.TriggerCycle(true); res.Aborted {
		t.Fatalf("settled cycle aborted: %+v", res)
	}
}
