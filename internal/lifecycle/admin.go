package lifecycle

import (
	"encoding/json"
	"net/http"

	"nfvpredict/internal/resilience"
)

// modelsView is the GET /models response.
type modelsView struct {
	Generation  int           `json:"generation"`
	Threshold   float64       `json:"threshold"`
	Clusters    []clusterView `json:"clusters"`
	Pending     []int         `json:"pending_clusters"`
	CanRollback bool          `json:"can_rollback"`
	Generations []Generation  `json:"generations"`
	Spool       []int         `json:"spool_windows"`
	// Breaker is the adaptation circuit breaker: while open, timer cycles
	// are skipped (POST /models/adapt still forces one — the operator probe).
	Breaker resilience.BreakerStatus `json:"breaker"`
	// ShedLearning reports the degradation controller's learning-shed state.
	ShedLearning bool `json:"shed_learning"`
}

type clusterView struct {
	Cluster     int    `json:"cluster"`
	Fingerprint uint64 `json:"fingerprint"`
}

// Handler returns the lifecycle admin surface, meant to be mounted at
// /models on the monitor's admin mux:
//
//	GET  /models          — serving generation, per-cluster fingerprints,
//	                        pending candidates, audit log
//	POST /models/promote  — promote pending candidates, bypassing the gate
//	                        (409 when none are pending)
//	POST /models/rollback — one-step rollback to the previous generation
//	                        (409 when there is none)
//	POST /models/adapt    — force one adaptation cycle now (returns its
//	                        CycleResult)
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/models", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		m.mu.Lock()
		view := modelsView{
			Generation:  m.generation,
			Threshold:   m.serving.Threshold,
			CanRollback: m.prev != nil,
			Generations: append([]Generation(nil), m.gens...),
		}
		for ci, d := range m.serving.Detectors {
			view.Clusters = append(view.Clusters, clusterView{Cluster: ci, Fingerprint: d.Fingerprint()})
		}
		for ci := range m.pending {
			view.Pending = append(view.Pending, ci)
		}
		m.mu.Unlock()
		view.Breaker = m.breaker.Status()
		view.ShedLearning = m.shedLearning.Load()
		sortInts(view.Pending)
		ss := m.spools.Load()
		for _, cs := range ss.clusters {
			view.Spool = append(view.Spool, cs.depth())
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(view)
	})
	mux.HandleFunc("/models/promote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if err := m.ForcePromote(); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"promoted": true, "generation": m.Generation()})
	})
	mux.HandleFunc("/models/rollback", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if err := m.Rollback(); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"rolled_back": true, "generation": m.Generation()})
	})
	mux.HandleFunc("/models/adapt", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		res := m.TriggerCycle(true)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"promoted": res.Promoted,
			"aborted":  res.Aborted,
			"clusters": len(res.Clusters),
		})
	})
	return mux
}
