package svm

import (
	"math"
	"math/rand"
	"testing"

	"nfvpredict/internal/mat"
)

func clusterData(n int, seed int64) []mat.Vector {
	rng := rand.New(rand.NewSource(seed))
	centers := []mat.Vector{{1, 0, 0, 1}, {0, 1, 1, 0}}
	var out []mat.Vector
	for i := 0; i < n; i++ {
		c := centers[i%2]
		x := make(mat.Vector, 4)
		for j := range x {
			x[j] = c[j] + rng.NormFloat64()*0.08
		}
		out = append(out, x)
	}
	return out
}

func TestTrainValidation(t *testing.T) {
	xs := clusterData(10, 1)
	if _, err := Train(nil, DefaultConfig()); err == nil {
		t.Fatal("empty training set should error")
	}
	bad := DefaultConfig()
	bad.Nu = 0
	if _, err := Train(xs, bad); err == nil {
		t.Fatal("Nu=0 should error")
	}
	bad = DefaultConfig()
	bad.Nu = 1.5
	if _, err := Train(xs, bad); err == nil {
		t.Fatal("Nu>1 should error")
	}
	bad = DefaultConfig()
	bad.Gamma = -1
	if _, err := Train(xs, bad); err == nil {
		t.Fatal("negative gamma should error")
	}
}

func TestSeparatesNovelPoints(t *testing.T) {
	train := clusterData(120, 2)
	m, err := Train(train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// In-distribution points score low.
	test := clusterData(40, 3)
	var inScores []float64
	for _, x := range test {
		inScores = append(inScores, m.Score(x))
	}
	// Far-away point scores high.
	novel := mat.Vector{-1, -1, -1, -1}
	novelScore := m.Score(novel)
	var worstIn float64 = math.Inf(-1)
	for _, s := range inScores {
		if s > worstIn {
			worstIn = s
		}
	}
	if novelScore <= worstIn {
		t.Fatalf("novel score %v not above worst in-dist score %v", novelScore, worstIn)
	}
	// Most in-distribution points should be inside the boundary.
	inside := 0
	for _, s := range inScores {
		if s <= 0 {
			inside++
		}
	}
	if float64(inside)/float64(len(inScores)) < 0.7 {
		t.Fatalf("only %d/%d in-distribution points inside boundary", inside, len(inScores))
	}
}

func TestNuControlsOutlierFraction(t *testing.T) {
	train := clusterData(150, 4)
	cfg := DefaultConfig()
	cfg.Nu = 0.2
	m, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	outliers := 0
	for _, x := range train {
		if m.Decision(x) < -1e-9 {
			outliers++
		}
	}
	frac := float64(outliers) / float64(len(train))
	// ν upper-bounds the training outlier fraction (allow solver slack).
	if frac > cfg.Nu+0.12 {
		t.Fatalf("training outlier fraction %.2f far exceeds nu=%.2f", frac, cfg.Nu)
	}
	if m.NumSupport() == 0 {
		t.Fatal("no support vectors")
	}
}

func TestAlphaConstraintsRespected(t *testing.T) {
	train := clusterData(60, 5)
	cfg := DefaultConfig()
	cfg.Nu = 0.3
	m, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := 1 / (cfg.Nu * float64(len(train)))
	var sum float64
	for _, a := range m.alpha {
		if a < 0 || a > c+1e-9 {
			t.Fatalf("alpha %v outside [0, %v]", a, c)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("alphas sum to %v, want 1", sum)
	}
}

func TestDeterministicTraining(t *testing.T) {
	train := clusterData(80, 6)
	a, err := Train(train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := mat.Vector{0.5, 0.5, 0.5, 0.5}
	if math.Abs(a.Score(x)-b.Score(x)) > 1e-12 {
		t.Fatal("training not deterministic for fixed seed")
	}
}

func TestScoreIsNegDecision(t *testing.T) {
	train := clusterData(50, 7)
	m, err := Train(train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := mat.Vector{1, 1, 0, 0}
	if math.Abs(m.Score(x)+m.Decision(x)) > 1e-12 {
		t.Fatal("Score must be -Decision")
	}
}

func TestRBFKernel(t *testing.T) {
	a := mat.Vector{1, 0}
	if rbf(a, a, 2) != 1 {
		t.Fatal("k(x,x) must be 1")
	}
	b := mat.Vector{0, 1}
	want := math.Exp(-2 * 2.0)
	if math.Abs(rbf(a, b, 2)-want) > 1e-12 {
		t.Fatalf("rbf=%v want %v", rbf(a, b, 2), want)
	}
}

func TestRBFDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rbf(mat.Vector{1}, mat.Vector{1, 2}, 1)
}

func TestSinglePointTraining(t *testing.T) {
	m, err := Train([]mat.Vector{{1, 2, 3}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Score(mat.Vector{1, 2, 3}) > m.Score(mat.Vector{9, 9, 9}) {
		t.Fatal("training point should score lower than a distant point")
	}
}

func BenchmarkTrain200(b *testing.B) {
	train := clusterData(200, 1)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(train, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScore(b *testing.B) {
	train := clusterData(200, 1)
	m, err := Train(train, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	x := mat.Vector{0.3, 0.3, 0.7, 0.7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score(x)
	}
}
