// Package svm implements the one-class support vector machine baseline
// the paper compares against (§5.2, citing Wang et al. 2004): a shallow
// model of normal syslog feature vectors with an RBF kernel, trained by a
// simplified SMO solver on the standard one-class dual
//
//	min ½ αᵀQα   s.t.  0 ≤ αᵢ ≤ 1/(νn),  Σαᵢ = 1,
//
// where Q is the kernel Gram matrix. A new window is anomalous when its
// decision value f(x) = Σ αᵢ k(xᵢ, x) − ρ is negative; the anomaly score
// ρ − f grows with distance from the learned support region.
package svm

import (
	"fmt"
	"math"
	"math/rand"

	"nfvpredict/internal/mat"
)

// Config parameterizes training.
type Config struct {
	// Nu is the one-class ν parameter: an upper bound on the training
	// outlier fraction and lower bound on the support-vector fraction.
	Nu float64
	// Gamma is the RBF kernel width k(x,y) = exp(−γ‖x−y‖²).
	Gamma float64
	// Iters is the number of SMO pair optimizations.
	Iters int
	// Seed drives pair selection.
	Seed int64
}

// DefaultConfig returns reasonable defaults for unit-norm TF windows.
func DefaultConfig() Config {
	return Config{Nu: 0.1, Gamma: 2.0, Iters: 4000, Seed: 1}
}

// Model is a trained one-class SVM.
type Model struct {
	cfg     Config
	support []mat.Vector // support vectors (αᵢ > 0)
	alpha   []float64    // matching coefficients
	rho     float64
}

// Train fits a one-class SVM on the given (normal) training vectors.
func Train(xs []mat.Vector, cfg Config) (*Model, error) {
	n := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("svm: no training data")
	}
	if cfg.Nu <= 0 || cfg.Nu > 1 {
		return nil, fmt.Errorf("svm: Nu must be in (0,1], got %v", cfg.Nu)
	}
	if cfg.Gamma <= 0 {
		return nil, fmt.Errorf("svm: Gamma must be positive, got %v", cfg.Gamma)
	}
	c := 1 / (cfg.Nu * float64(n))

	// Precompute the Gram matrix; baseline training sets are subsampled
	// upstream, so n is small (hundreds).
	gram := make([][]float64, n)
	for i := range gram {
		gram[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			k := rbf(xs[i], xs[j], cfg.Gamma)
			gram[i][j], gram[j][i] = k, k
		}
	}

	// Feasible start: α uniform over the first ⌈1/c⌉ points.
	alpha := make([]float64, n)
	remaining := 1.0
	for i := 0; i < n && remaining > 0; i++ {
		a := math.Min(c, remaining)
		alpha[i] = a
		remaining -= a
	}

	// Cache g_i = (Qα)_i for cheap pair updates.
	g := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * gram[i][j]
			}
		}
		g[i] = s
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	iters := cfg.Iters
	if iters <= 0 {
		iters = 2000
	}
	for it := 0; it < iters; it++ {
		// Working pair: the most violating pair in a random probe set,
		// a cheap stand-in for full WSS heuristics.
		i := pickExtreme(rng, alpha, g, c, n, true)
		j := pickExtreme(rng, alpha, g, c, n, false)
		if i == j || i < 0 || j < 0 {
			continue
		}
		// Minimize over αᵢ + αⱼ = const: δ applied as αᵢ += δ, αⱼ −= δ.
		denom := gram[i][i] + gram[j][j] - 2*gram[i][j]
		if denom <= 1e-12 {
			continue
		}
		delta := (g[j] - g[i]) / denom
		// Box constraints.
		if delta > 0 {
			delta = math.Min(delta, math.Min(c-alpha[i], alpha[j]))
		} else {
			delta = math.Max(delta, math.Max(-alpha[i], alpha[j]-c))
		}
		if delta == 0 {
			continue
		}
		alpha[i] += delta
		alpha[j] -= delta
		for k := 0; k < n; k++ {
			g[k] += delta * (gram[k][i] - gram[k][j])
		}
	}

	// ρ = average decision value over margin support vectors (0<α<C),
	// falling back to all support vectors.
	var rho float64
	var cnt int
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 && alpha[i] < c-1e-8 {
			rho += g[i]
			cnt++
		}
	}
	if cnt == 0 {
		for i := 0; i < n; i++ {
			if alpha[i] > 1e-8 {
				rho += g[i]
				cnt++
			}
		}
	}
	if cnt > 0 {
		rho /= float64(cnt)
	}

	m := &Model{cfg: cfg, rho: rho}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 {
			m.support = append(m.support, xs[i].Clone())
			m.alpha = append(m.alpha, alpha[i])
		}
	}
	return m, nil
}

// pickExtreme probes a random subset and returns the index whose gradient
// is extreme among those that can still move in the needed direction.
func pickExtreme(rng *rand.Rand, alpha, g []float64, c float64, n int, wantLow bool) int {
	const probes = 24
	best := -1
	var bestG float64
	for p := 0; p < probes; p++ {
		i := rng.Intn(n)
		if wantLow {
			// Candidate to increase α: needs headroom.
			if alpha[i] >= c-1e-12 {
				continue
			}
			if best < 0 || g[i] < bestG {
				best, bestG = i, g[i]
			}
		} else {
			// Candidate to decrease α: needs mass.
			if alpha[i] <= 1e-12 {
				continue
			}
			if best < 0 || g[i] > bestG {
				best, bestG = i, g[i]
			}
		}
	}
	return best
}

// NumSupport returns the number of support vectors.
func (m *Model) NumSupport() int { return len(m.support) }

// Decision returns f(x) = Σ αᵢ k(xᵢ, x) − ρ; negative means anomalous.
func (m *Model) Decision(x mat.Vector) float64 {
	var s float64
	for i, sv := range m.support {
		s += m.alpha[i] * rbf(sv, x, m.cfg.Gamma)
	}
	return s - m.rho
}

// Score returns the anomaly score ρ − Σ αᵢ k(xᵢ, x): higher is more
// anomalous, and 0 is the natural decision boundary.
func (m *Model) Score(x mat.Vector) float64 { return -m.Decision(x) }

// rbf computes exp(−γ‖a−b‖²).
func rbf(a, b mat.Vector, gamma float64) float64 {
	if len(a) != len(b) {
		panic("svm: dimension mismatch")
	}
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-gamma * d2)
}
