package eval

import (
	"sort"
	"time"
)

// TicketLead is one detected ticket's lead-time record: how far ahead of
// the report the earliest mapped warning arrived. Positive LeadMinutes
// means the warning preceded the report (a true early warning); negative
// means the first mapped warning came during the infected period.
type TicketLead struct {
	TicketID    int       `json:"ticket_id"`
	VPE         string    `json:"vpe"`
	Cause       string    `json:"cause"`
	Report      time.Time `json:"report"`
	LeadMinutes float64   `json:"lead_minutes"`
	Warnings    int       `json:"warnings"`
}

// Summary is the JSON-serializable evaluation summary: the warning/FAR
// operating numbers plus per-ticket lead times. It is the single shape
// both the scenario harness's assertions and cmd/figures consume, so the
// two never re-derive (and never disagree on) the same quantities.
type Summary struct {
	// Tickets is the recall-eligible ticket population;
	// DetectedTickets how many of them had at least one mapped warning.
	Tickets         int `json:"tickets"`
	DetectedTickets int `json:"detected_tickets"`
	// Warnings = MappedWarnings + FalseAlarms (each warning counted once).
	Warnings       int `json:"warnings"`
	MappedWarnings int `json:"mapped_warnings"`
	FalseAlarms    int `json:"false_alarms"`
	MultiMapped    int `json:"multi_mapped"`
	// The §5.2 operating measures.
	Precision         float64 `json:"precision"`
	Recall            float64 `json:"recall"`
	F                 float64 `json:"f_measure"`
	FalseAlarmsPerDay float64 `json:"false_alarms_per_day"`
	SpanHours         float64 `json:"span_hours"`
	// EarlyTickets counts detected tickets whose earliest warning
	// preceded the report; MeanLeadMinutes averages their leads.
	EarlyTickets    int     `json:"early_tickets"`
	EarlyRate       float64 `json:"early_rate"`
	MeanLeadMinutes float64 `json:"mean_lead_minutes"`
	// Leads lists every detected ticket (eligible or not), sorted by
	// report time then ID for deterministic output.
	Leads []TicketLead `json:"leads"`
}

// Summary condenses the outcome into its JSON form.
func (o *Outcome) Summary() Summary {
	m := o.Metrics()
	s := Summary{
		Tickets:           o.Tickets,
		DetectedTickets:   o.EligibleHits,
		Warnings:          o.MappedWarnings + o.FalseAlarms,
		MappedWarnings:    o.MappedWarnings,
		FalseAlarms:       o.FalseAlarms,
		MultiMapped:       o.MultiMapped,
		Precision:         m.Precision,
		Recall:            m.Recall,
		F:                 m.F,
		FalseAlarmsPerDay: m.FalseAlarmsPerDay,
		SpanHours:         o.Span.Hours(),
	}
	for _, hit := range o.Hits {
		lead := -hit.EarliestOffset.Minutes() // positive = early
		s.Leads = append(s.Leads, TicketLead{
			TicketID:    hit.Ticket.ID,
			VPE:         hit.Ticket.VPE,
			Cause:       hit.Ticket.Cause.String(),
			Report:      hit.Ticket.Report,
			LeadMinutes: lead,
			Warnings:    hit.Warnings,
		})
		if lead > 0 {
			s.EarlyTickets++
			s.MeanLeadMinutes += lead
		}
	}
	sort.Slice(s.Leads, func(i, j int) bool {
		if !s.Leads[i].Report.Equal(s.Leads[j].Report) {
			return s.Leads[i].Report.Before(s.Leads[j].Report)
		}
		return s.Leads[i].TicketID < s.Leads[j].TicketID
	})
	if s.EarlyTickets > 0 {
		s.MeanLeadMinutes /= float64(s.EarlyTickets)
	}
	if s.Tickets > 0 {
		s.EarlyRate = float64(s.EarlyTickets) / float64(s.Tickets)
	}
	return s
}
