package eval

import (
	"math"
	"testing"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/ticket"
)

var e0 = time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)

func tk(id int, vpe string, cause ticket.RootCause, reportOff, dur time.Duration) ticket.Ticket {
	return ticket.Ticket{
		ID: id, VPE: vpe, Cause: cause,
		Report: e0.Add(reportOff), Repair: e0.Add(reportOff + dur),
		DuplicateOf: -1,
	}
}

func warn(vpe string, off time.Duration) detect.Warning {
	return detect.Warning{VPE: vpe, Time: e0.Add(off), Size: 2}
}

func TestMapWarningsBasic(t *testing.T) {
	tickets := []ticket.Ticket{
		tk(0, "a", ticket.Circuit, 48*time.Hour, 2*time.Hour),
	}
	cfg := DefaultConfig()
	warnings := []detect.Warning{
		warn("a", 48*time.Hour-10*time.Minute), // early warning
		warn("a", 48*time.Hour+30*time.Minute), // error (infected period)
		warn("a", 10*time.Hour),                // false alarm (outside 24h window)
		warn("b", 48*time.Hour),                // false alarm (wrong vPE)
	}
	o := MapWarnings(warnings, tickets, cfg, e0, e0.Add(96*time.Hour))
	if o.Tickets != 1 || len(o.Hits) != 1 {
		t.Fatalf("outcome: %+v", o)
	}
	if o.MappedWarnings != 2 || o.FalseAlarms != 2 {
		t.Fatalf("mapping counts: %+v", o)
	}
	hit := o.Hits[0]
	if hit.Warnings != 2 {
		t.Fatalf("hit warnings: %+v", hit)
	}
	if hit.EarliestOffset != -10*time.Minute {
		t.Fatalf("earliest offset: %v", hit.EarliestOffset)
	}
}

func TestMapWarningsBoundaries(t *testing.T) {
	tickets := []ticket.Ticket{tk(0, "a", ticket.Circuit, 30*time.Hour, time.Hour)}
	cfg := DefaultConfig()
	// Exactly at predictive-period start: mapped.
	o := MapWarnings([]detect.Warning{warn("a", 6*time.Hour)}, tickets, cfg, time.Time{}, time.Time{})
	if len(o.Hits) != 1 {
		t.Fatal("warning at window start should map")
	}
	// Exactly at repair finish: mapped.
	o = MapWarnings([]detect.Warning{warn("a", 31*time.Hour)}, tickets, cfg, time.Time{}, time.Time{})
	if len(o.Hits) != 1 {
		t.Fatal("warning at repair finish should map")
	}
	// One second past repair: false alarm.
	o = MapWarnings([]detect.Warning{warn("a", 31*time.Hour+time.Second)}, tickets, cfg, time.Time{}, time.Time{})
	if len(o.Hits) != 0 || o.FalseAlarms != 1 {
		t.Fatal("warning after repair should not map")
	}
}

func TestMapWarningsTimeRangeFilter(t *testing.T) {
	tickets := []ticket.Ticket{
		tk(0, "a", ticket.Circuit, 10*time.Hour, time.Hour),
		tk(1, "a", ticket.Circuit, 200*time.Hour, time.Hour),
	}
	warnings := []detect.Warning{warn("a", 10*time.Hour), warn("a", 200*time.Hour)}
	o := MapWarnings(warnings, tickets, DefaultConfig(), e0, e0.Add(100*time.Hour))
	if o.Tickets != 1 || len(o.Hits) != 1 || o.MappedWarnings != 1 {
		t.Fatalf("range filter: %+v", o)
	}
}

func TestOneWarningMapsToOverlappingTickets(t *testing.T) {
	// Two tickets on the same vPE with overlapping windows: a warning in
	// the overlap maps to both but counts once for precision.
	tickets := []ticket.Ticket{
		tk(0, "a", ticket.Circuit, 24*time.Hour, 6*time.Hour),
		tk(1, "a", ticket.Duplicate, 26*time.Hour, 2*time.Hour),
	}
	o := MapWarnings([]detect.Warning{warn("a", 25*time.Hour)}, tickets, DefaultConfig(), time.Time{}, time.Time{})
	if len(o.Hits) != 2 {
		t.Fatalf("expected both tickets hit: %+v", o.Hits)
	}
	if o.MappedWarnings != 1 {
		t.Fatalf("warning double-counted: %+v", o)
	}
}

func TestMetrics(t *testing.T) {
	o := &Outcome{
		Hits:           map[int]*TicketHit{0: {}, 1: {}},
		Tickets:        4,
		EligibleHits:   2,
		MappedWarnings: 6,
		FalseAlarms:    2,
		Span:           48 * time.Hour,
	}
	m := o.Metrics()
	if math.Abs(m.Precision-0.75) > 1e-12 {
		t.Fatalf("precision %v", m.Precision)
	}
	if math.Abs(m.Recall-0.5) > 1e-12 {
		t.Fatalf("recall %v", m.Recall)
	}
	wantF := 2 * 0.75 * 0.5 / 1.25
	if math.Abs(m.F-wantF) > 1e-12 {
		t.Fatalf("F %v want %v", m.F, wantF)
	}
	if math.Abs(m.FalseAlarmsPerDay-1) > 1e-12 {
		t.Fatalf("false alarms/day %v", m.FalseAlarmsPerDay)
	}
}

func TestMetricsEmpty(t *testing.T) {
	m := (&Outcome{Hits: map[int]*TicketHit{}}).Metrics()
	if m.Precision != 0 || m.Recall != 0 || m.F != 0 {
		t.Fatalf("empty metrics: %+v", m)
	}
}

func TestPRCurveMonotonicBehaviour(t *testing.T) {
	// Construct scores: events near the ticket get high scores, noise
	// gets low scores. Sweeping thresholds must trade precision/recall.
	tickets := []ticket.Ticket{tk(0, "a", ticket.Circuit, 24*time.Hour, 2*time.Hour)}
	var events []detect.ScoredEvent
	// Signal: cluster of high scores just before the report.
	for i := 0; i < 3; i++ {
		events = append(events, detect.ScoredEvent{
			Time: e0.Add(24*time.Hour - 10*time.Minute + time.Duration(i)*20*time.Second),
			VPE:  "a", Score: 10,
		})
	}
	// Noise: pairs of mid-score events far from the ticket.
	for i := 0; i < 5; i++ {
		base := e0.Add(time.Duration(100+i*100) * time.Hour)
		events = append(events,
			detect.ScoredEvent{Time: base, VPE: "a", Score: 5},
			detect.ScoredEvent{Time: base.Add(30 * time.Second), VPE: "a", Score: 5},
		)
	}
	curve := PRCurve(events, tickets, []float64{4, 7}, DefaultConfig(), time.Time{}, time.Time{})
	if len(curve) != 2 {
		t.Fatalf("curve: %+v", curve)
	}
	low, high := curve[0], curve[1]
	if low.Recall != 1 || high.Recall != 1 {
		t.Fatalf("both thresholds should recall the ticket: %+v", curve)
	}
	if low.Precision >= high.Precision {
		t.Fatalf("higher threshold should have higher precision: %+v", curve)
	}
	if high.Precision != 1 {
		t.Fatalf("high threshold should be exact: %+v", high)
	}
	best := BestF(curve)
	if best.Threshold != 7 {
		t.Fatalf("BestF picked %+v", best)
	}
}

func TestAUCPR(t *testing.T) {
	curve := []PRPoint{
		{Metrics: Metrics{Precision: 1, Recall: 0}},
		{Metrics: Metrics{Precision: 1, Recall: 0.5}},
		{Metrics: Metrics{Precision: 0.5, Recall: 1}},
	}
	auc := AUCPR(curve)
	want := 1*0.5 + 0.75*0.5
	if math.Abs(auc-want) > 1e-12 {
		t.Fatalf("AUC %v want %v", auc, want)
	}
	if AUCPR(nil) != 0 || AUCPR(curve[:1]) != 0 {
		t.Fatal("degenerate AUC should be 0")
	}
}

func TestDetectionByType(t *testing.T) {
	tickets := []ticket.Ticket{
		tk(0, "a", ticket.Circuit, 24*time.Hour, time.Hour),   // detected 20 min early
		tk(1, "a", ticket.Circuit, 100*time.Hour, time.Hour),  // detected 3 min early
		tk(2, "b", ticket.Cable, 50*time.Hour, time.Hour),     // detected 10 min late
		tk(3, "b", ticket.Hardware, 150*time.Hour, time.Hour), // undetected
		tk(4, "a", ticket.Maintenance, 80*time.Hour, time.Hour),
	}
	warnings := []detect.Warning{
		warn("a", 24*time.Hour-20*time.Minute),
		warn("a", 100*time.Hour-3*time.Minute),
		warn("b", 50*time.Hour+10*time.Minute),
	}
	o := MapWarnings(warnings, tickets, DefaultConfig(), time.Time{}, time.Time{})
	tds := DetectionByType(o, tickets, time.Time{}, time.Time{})
	byCause := map[ticket.RootCause]TypeDetection{}
	var all TypeDetection
	for _, td := range tds {
		if td.All {
			all = td
		} else {
			byCause[td.Cause] = td
		}
	}
	cir := byCause[ticket.Circuit]
	if cir.Tickets != 2 {
		t.Fatalf("circuit tickets: %+v", cir)
	}
	// Ticket 0 at -20min counts for every bucket; ticket 1 at -3min only
	// from the "0min" bucket on.
	if cir.Rates[0] != 0.5 || cir.Rates[1] != 0.5 || cir.Rates[2] != 1 || cir.Rates[4] != 1 {
		t.Fatalf("circuit rates: %+v", cir.Rates)
	}
	cab := byCause[ticket.Cable]
	if cab.Rates[2] != 0 || cab.Rates[3] != 0 || cab.Rates[4] != 1 {
		t.Fatalf("cable rates: %+v", cab.Rates)
	}
	hw := byCause[ticket.Hardware]
	if hw.Rates[4] != 0 {
		t.Fatalf("hardware rates: %+v", hw.Rates)
	}
	// Aggregate excludes maintenance: 4 tickets, 3 detected by +15min.
	if all.Tickets != 4 {
		t.Fatalf("aggregate population: %+v", all)
	}
	if math.Abs(all.Rates[4]-0.75) > 1e-12 {
		t.Fatalf("aggregate +15min rate: %+v", all.Rates)
	}
}

func TestLeadBucketLabels(t *testing.T) {
	if LeadBucketNames[0] != "-15min" || LeadBucketNames[4] != "+15min" {
		t.Fatalf("labels: %v", LeadBucketNames)
	}
	if LeadOffsets[2] != 0 {
		t.Fatalf("offsets: %v", LeadOffsets)
	}
}

func TestMultiMappedCount(t *testing.T) {
	tickets := []ticket.Ticket{
		tk(0, "a", ticket.Circuit, 24*time.Hour, 6*time.Hour),
		tk(1, "a", ticket.Duplicate, 26*time.Hour, 2*time.Hour),
		tk(2, "b", ticket.Circuit, 100*time.Hour, time.Hour),
	}
	warnings := []detect.Warning{
		warn("a", 25*time.Hour),  // overlaps both "a" tickets
		warn("b", 100*time.Hour), // maps to one
	}
	o := MapWarnings(warnings, tickets, DefaultConfig(), time.Time{}, time.Time{})
	if o.MultiMapped != 1 {
		t.Fatalf("MultiMapped=%d want 1", o.MultiMapped)
	}
	if o.MappedWarnings != 2 {
		t.Fatalf("MappedWarnings=%d", o.MappedWarnings)
	}
}
