package eval

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/ticket"
)

func TestSummary(t *testing.T) {
	base := time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)
	tickets := []ticket.Ticket{
		{ID: 0, VPE: "vpe00", Cause: ticket.Circuit, Report: base.Add(10 * time.Hour), Repair: base.Add(12 * time.Hour), DuplicateOf: -1},
		{ID: 1, VPE: "vpe01", Cause: ticket.Hardware, Report: base.Add(40 * time.Hour), Repair: base.Add(50 * time.Hour), DuplicateOf: -1},
		{ID: 2, VPE: "vpe02", Cause: ticket.Software, Report: base.Add(80 * time.Hour), Repair: base.Add(81 * time.Hour), DuplicateOf: -1},
	}
	warnings := []detect.Warning{
		// 20 min before ticket 0's report: an early warning.
		{VPE: "vpe00", Time: base.Add(10*time.Hour - 20*time.Minute), Size: 3},
		// Inside ticket 1's infected period: detected, not early.
		{VPE: "vpe01", Time: base.Add(42 * time.Hour), Size: 2},
		// Maps to nothing: false alarm.
		{VPE: "vpe03", Time: base.Add(60 * time.Hour), Size: 2},
	}
	out := MapWarnings(warnings, tickets, DefaultConfig(), base, base.Add(96*time.Hour))
	s := out.Summary()

	if s.Tickets != 3 || s.DetectedTickets != 2 {
		t.Fatalf("tickets %d detected %d, want 3/2", s.Tickets, s.DetectedTickets)
	}
	if s.Warnings != 3 || s.MappedWarnings != 2 || s.FalseAlarms != 1 {
		t.Fatalf("warnings %d mapped %d false %d, want 3/2/1", s.Warnings, s.MappedWarnings, s.FalseAlarms)
	}
	if s.EarlyTickets != 1 {
		t.Fatalf("early tickets %d, want 1", s.EarlyTickets)
	}
	if math.Abs(s.MeanLeadMinutes-20) > 0.01 {
		t.Fatalf("mean lead %.2f min, want 20", s.MeanLeadMinutes)
	}
	if len(s.Leads) != 2 {
		t.Fatalf("leads %d, want 2", len(s.Leads))
	}
	if s.Leads[0].TicketID != 0 || s.Leads[1].TicketID != 1 {
		t.Fatalf("leads not sorted by report: %+v", s.Leads)
	}
	if s.Leads[0].LeadMinutes < 19.9 || s.Leads[0].LeadMinutes > 20.1 {
		t.Fatalf("lead minutes %.2f, want ~20", s.Leads[0].LeadMinutes)
	}
	m := out.Metrics()
	if s.Precision != m.Precision || s.Recall != m.Recall || s.F != m.F || s.FalseAlarmsPerDay != m.FalseAlarmsPerDay {
		t.Fatalf("summary metrics diverge from Metrics(): %+v vs %+v", s, m)
	}

	// The summary must round-trip through JSON (the -json report path).
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Summary
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.DetectedTickets != s.DetectedTickets || len(back.Leads) != len(s.Leads) {
		t.Fatalf("JSON round-trip lost data: %+v", back)
	}
}
