// Package eval maps detected anomalies to trouble tickets and computes the
// paper's evaluation quantities. The mapping semantics follow Figure 4:
// each ticket owns a predictive period (a window before its report time)
// and an infected period (report → repair finish); a warning inside either
// maps to the ticket (an early warning or an error respectively), and a
// warning mapping to no ticket is a false alarm. From the mapping come
// precision / recall / F-measure, the precision-recall curves of Figures
// 5-6, the monthly F-measure series of Figure 7, the per-root-cause
// lead-time detection rates of Figure 8, and the false-alarms-per-day
// operating number of §5.2.
package eval

import (
	"math"
	"sort"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/ticket"
)

// Config sets the mapping parameters.
type Config struct {
	// PredictivePeriod is the window before ticket report time in which
	// an anomaly counts as an early warning. The paper tried 1 hour to
	// 2 days and found performance converges at 1 day (§5.1).
	PredictivePeriod time.Duration
	// ClusterWindow and MinClusterSize configure warning clustering
	// (§5.1: report a warning on ≥2 anomalies within a minute).
	ClusterWindow  time.Duration
	MinClusterSize int
	// IncludeMaintenance counts Maintenance tickets in the recall
	// denominator. Default false: maintenance is pre-scheduled and
	// "predictable" (§3.2), and Figure 8 evaluates only the other five
	// categories. Warnings inside maintenance windows still map (they
	// are real log activity, not false alarms) either way.
	IncludeMaintenance bool
}

// DefaultConfig returns the paper's operating parameters.
func DefaultConfig() Config {
	return Config{
		PredictivePeriod: 24 * time.Hour,
		ClusterWindow:    detect.DefaultClusterWindow,
		MinClusterSize:   detect.DefaultMinClusterSize,
	}
}

// TicketHit records the warnings mapped to one ticket.
type TicketHit struct {
	// Ticket is the ticket.
	Ticket ticket.Ticket
	// EarliestOffset is the earliest mapped warning's time minus the
	// ticket report time (negative = early warning).
	EarliestOffset time.Duration
	// Warnings is the number of warnings mapped to the ticket.
	Warnings int
}

// Outcome is the result of mapping warnings onto tickets.
type Outcome struct {
	// Hits maps ticket ID → hit record for every detected ticket.
	Hits map[int]*TicketHit
	// Tickets is the recall-eligible ticket count (maintenance excluded
	// unless Config.IncludeMaintenance).
	Tickets int
	// EligibleHits is the number of recall-eligible tickets detected.
	EligibleHits int
	// MappedWarnings and FalseAlarms partition the warning set; one
	// warning can map to several tickets but is counted once.
	MappedWarnings int
	FalseAlarms    int
	// MultiMapped counts warnings that mapped to two or more tickets —
	// the paper's Q4: whether one anomaly cluster can serve as a warning
	// signature for a group of near-term tickets ("this has never
	// happened, mostly because tickets are rare and well-separated").
	MultiMapped int
	// Span is the evaluated time range (for false alarms per day).
	Span time.Duration
}

// MapWarnings maps warnings onto tickets per the Figure 4 semantics.
// Tickets and warnings outside [from, to) are ignored; pass zero times to
// evaluate everything.
func MapWarnings(warnings []detect.Warning, tickets []ticket.Ticket, cfg Config, from, to time.Time) *Outcome {
	out := &Outcome{Hits: make(map[int]*TicketHit)}
	eligible := func(tk *ticket.Ticket) bool {
		return cfg.IncludeMaintenance || tk.Cause != ticket.Maintenance
	}
	var kept []ticket.Ticket
	for _, tk := range tickets {
		if !inRange(tk.Report, from, to) {
			continue
		}
		kept = append(kept, tk)
		if eligible(&tk) {
			out.Tickets++
		}
	}
	if !from.IsZero() && !to.IsZero() {
		out.Span = to.Sub(from)
	} else if len(warnings) > 1 {
		out.Span = warnings[len(warnings)-1].Time.Sub(warnings[0].Time)
	}

	// Index tickets per vPE, sorted by report time, for interval lookup.
	byVPE := make(map[string][]ticket.Ticket)
	for _, tk := range kept {
		byVPE[tk.VPE] = append(byVPE[tk.VPE], tk)
	}
	for _, ts := range byVPE {
		sort.Slice(ts, func(i, j int) bool { return ts[i].Report.Before(ts[j].Report) })
	}

	for _, w := range warnings {
		if !inRange(w.Time, from, to) {
			continue
		}
		mapped := false
		mapCount := 0
		for i := range byVPE[w.VPE] {
			tk := &byVPE[w.VPE][i]
			winStart := tk.Report.Add(-cfg.PredictivePeriod)
			if w.Time.Before(winStart) || w.Time.After(tk.Repair) {
				continue
			}
			mapped = true
			mapCount++
			offset := w.Time.Sub(tk.Report)
			hit := out.Hits[tk.ID]
			if hit == nil {
				hit = &TicketHit{Ticket: *tk, EarliestOffset: offset}
				out.Hits[tk.ID] = hit
				if eligible(tk) {
					out.EligibleHits++
				}
			} else if offset < hit.EarliestOffset {
				hit.EarliestOffset = offset
			}
			hit.Warnings++
		}
		if mapped {
			out.MappedWarnings++
			if mapCount > 1 {
				out.MultiMapped++
			}
		} else {
			out.FalseAlarms++
		}
	}
	return out
}

func inRange(t, from, to time.Time) bool {
	if !from.IsZero() && t.Before(from) {
		return false
	}
	if !to.IsZero() && !t.Before(to) {
		return false
	}
	return true
}

// Metrics are the three standard anomaly-detection measures (§5.2) plus
// the false-alarm rate.
type Metrics struct {
	Precision, Recall, F float64
	// FalseAlarmsPerDay is false alarms normalized by the span.
	FalseAlarmsPerDay float64
}

// Metrics computes precision / recall / F-measure from the outcome.
// Precision is the fraction of warnings mapped to a ticket; recall the
// fraction of tickets with at least one mapped warning.
func (o *Outcome) Metrics() Metrics {
	var m Metrics
	totalWarnings := o.MappedWarnings + o.FalseAlarms
	if totalWarnings > 0 {
		m.Precision = float64(o.MappedWarnings) / float64(totalWarnings)
	}
	if o.Tickets > 0 {
		m.Recall = float64(o.EligibleHits) / float64(o.Tickets)
	}
	if m.Precision+m.Recall > 0 {
		m.F = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	if days := o.Span.Hours() / 24; days > 0 {
		m.FalseAlarmsPerDay = float64(o.FalseAlarms) / days
	}
	return m
}

// PRPoint is one operating point of a precision-recall curve.
type PRPoint struct {
	Threshold float64
	Metrics
}

// PRCurve sweeps thresholds over the scored events, producing the
// precision-recall curve of Figures 5 and 6. Each threshold converts
// scores → anomalies → clustered warnings → ticket mapping.
func PRCurve(events []detect.ScoredEvent, tickets []ticket.Ticket, thresholds []float64, cfg Config, from, to time.Time) []PRPoint {
	out := make([]PRPoint, 0, len(thresholds))
	for _, thr := range thresholds {
		anoms := detect.Threshold(events, thr)
		warns := detect.ClusterWarnings(anoms, cfg.ClusterWindow, cfg.MinClusterSize)
		o := MapWarnings(warns, tickets, cfg, from, to)
		out = append(out, PRPoint{Threshold: thr, Metrics: o.Metrics()})
	}
	return out
}

// BestF returns the curve point with the highest F-measure — the paper's
// operating-point selection rule (§5.2).
func BestF(curve []PRPoint) PRPoint {
	var best PRPoint
	for _, p := range curve {
		if p.F > best.F {
			best = p
		}
	}
	return best
}

// AUCPR returns the area under the precision-recall curve by trapezoidal
// integration over recall (points are sorted by recall internally).
func AUCPR(curve []PRPoint) float64 {
	if len(curve) < 2 {
		return 0
	}
	pts := make([]PRPoint, len(curve))
	copy(pts, curve)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Recall < pts[j].Recall })
	var auc float64
	for i := 1; i < len(pts); i++ {
		dr := pts[i].Recall - pts[i-1].Recall
		auc += dr * (pts[i].Precision + pts[i-1].Precision) / 2
	}
	return math.Abs(auc)
}

// LeadOffsets are the Figure 8 x-axis buckets: cumulative detection by
// "at least 15 min before", "at least 5 min before", "before report",
// "within 5 min after", "within 15 min after".
var LeadOffsets = [5]time.Duration{
	-15 * time.Minute,
	-5 * time.Minute,
	0,
	5 * time.Minute,
	15 * time.Minute,
}

// LeadBucketNames labels the five offsets as in Figure 8.
var LeadBucketNames = [5]string{"-15min", "-5min", "0min", "+5min", "+15min"}

// TypeDetection is one Figure 8 group: per-cause cumulative detection
// rates at the five lead offsets.
type TypeDetection struct {
	// Cause is the root cause; nil aggregate rows use AllCauses.
	Cause ticket.RootCause
	// All marks the aggregate row over every evaluated cause.
	All bool
	// Tickets is the ticket population size.
	Tickets int
	// Rates[i] is the fraction of tickets whose earliest mapped warning
	// offset is ≤ LeadOffsets[i].
	Rates [5]float64
}

// DetectionByType computes the Figure 8 data: for each non-maintenance
// root cause, the cumulative fraction of tickets detected by each lead
// offset. Maintenance is excluded as in the paper's figure.
func DetectionByType(o *Outcome, tickets []ticket.Ticket, from, to time.Time) []TypeDetection {
	causes := []ticket.RootCause{ticket.Cable, ticket.Circuit, ticket.Hardware, ticket.Software, ticket.Duplicate}
	var out []TypeDetection
	var aggregate TypeDetection
	aggregate.All = true
	var aggCounts [5]int
	for _, cause := range causes {
		td := TypeDetection{Cause: cause}
		var counts [5]int
		for _, tk := range tickets {
			if tk.Cause != cause || !inRange(tk.Report, from, to) {
				continue
			}
			td.Tickets++
			aggregate.Tickets++
			hit := o.Hits[tk.ID]
			if hit == nil {
				continue
			}
			for i, off := range LeadOffsets {
				if hit.EarliestOffset <= off {
					counts[i]++
					aggCounts[i]++
				}
			}
		}
		if td.Tickets > 0 {
			for i := range td.Rates {
				td.Rates[i] = float64(counts[i]) / float64(td.Tickets)
			}
		}
		out = append(out, td)
	}
	if aggregate.Tickets > 0 {
		for i := range aggregate.Rates {
			aggregate.Rates[i] = float64(aggCounts[i]) / float64(aggregate.Tickets)
		}
	}
	out = append(out, aggregate)
	return out
}
