// Package wireframe implements the common on-disk framing used by the
// runtime's persistent artifacts (model bundles, monitor checkpoints): a
// 4-byte magic, a little-endian format version, the payload length, the
// payload itself, and a CRC32 (IEEE) trailer over the payload. The frame
// lets loaders reject truncated or bit-flipped files with a descriptive
// error before any byte of the payload is trusted.
package wireframe

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// headerLen is magic (4) + version (4) + payload length (8).
const headerLen = 4 + 4 + 8

// Encode writes one framed payload to w.
func Encode(w io.Writer, magic string, version uint32, payload []byte) error {
	if len(magic) != 4 {
		return fmt.Errorf("wireframe: magic must be 4 bytes, got %q", magic)
	}
	header := make([]byte, headerLen)
	copy(header, magic)
	binary.LittleEndian.PutUint32(header[4:], version)
	binary.LittleEndian.PutUint64(header[8:], uint64(len(payload)))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("wireframe: writing header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wireframe: writing payload: %w", err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(crc[:]); err != nil {
		return fmt.Errorf("wireframe: writing checksum: %w", err)
	}
	return nil
}

// Decode validates the frame around data and returns the payload. When data
// does not begin with magic it returns (nil, false, nil): the caller decides
// whether unframed input is a legacy format or an error. Framed input with
// an unknown version, a truncated payload, or a checksum mismatch yields a
// descriptive error.
func Decode(data []byte, magic string, version uint32) (payload []byte, framed bool, err error) {
	if len(magic) != 4 {
		return nil, false, fmt.Errorf("wireframe: magic must be 4 bytes, got %q", magic)
	}
	if len(data) < 4 || string(data[:4]) != magic {
		return nil, false, nil
	}
	if len(data) < headerLen+4 {
		return nil, true, fmt.Errorf("wireframe: truncated: %d bytes is too short for the frame header", len(data))
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != version {
		return nil, true, fmt.Errorf("wireframe: unsupported format version %d (this build reads version %d)", v, version)
	}
	plen := binary.LittleEndian.Uint64(data[8:])
	if uint64(len(data)-headerLen-4) != plen {
		return nil, true, fmt.Errorf("wireframe: truncated or padded: header promises %d payload bytes, file carries %d",
			plen, len(data)-headerLen-4)
	}
	payload = data[headerLen : headerLen+int(plen)]
	want := binary.LittleEndian.Uint32(data[headerLen+int(plen):])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, true, fmt.Errorf("wireframe: checksum mismatch (want %08x, got %08x): file is corrupt", want, got)
	}
	return payload, true, nil
}
