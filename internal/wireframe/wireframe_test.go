package wireframe

import (
	"bytes"
	"strings"
	"testing"

	"nfvpredict/internal/faultinject"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("the payload bytes")
	if err := Encode(&buf, "TEST", 3, payload); err != nil {
		t.Fatal(err)
	}
	got, framed, err := Decode(buf.Bytes(), "TEST", 3)
	if err != nil || !framed {
		t.Fatalf("decode: framed=%v err=%v", framed, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload: %q", got)
	}
}

func TestDecodeUnframed(t *testing.T) {
	payload, framed, err := Decode([]byte("not framed data"), "TEST", 1)
	if err != nil || framed || payload != nil {
		t.Fatalf("unframed input must be (nil,false,nil): %q %v %v", payload, framed, err)
	}
}

func TestDecodeCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, "TEST", 1, bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	for cut := 5; cut < len(full); cut += 17 {
		if _, _, err := Decode(full[:cut], "TEST", 1); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	flipped := append([]byte(nil), full...)
	faultinject.FlipBit(flipped, (16+50)*8)
	if _, _, err := Decode(flipped, "TEST", 1); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("bit flip: %v", err)
	}
	if _, _, err := Decode(full, "TEST", 2); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch: %v", err)
	}
}

func TestBadMagicLength(t *testing.T) {
	if err := Encode(&bytes.Buffer{}, "TOOLONG", 1, nil); err == nil {
		t.Fatal("magic must be 4 bytes")
	}
	if _, _, err := Decode(nil, "TOOLONG", 1); err == nil {
		t.Fatal("magic must be 4 bytes")
	}
}
