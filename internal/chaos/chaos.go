// Package chaos is the resilience soak harness: it replays a deterministic
// traffic scenario through the full serving stack twice — once fault-free
// and synchronous (the reference), once asynchronous with the supervised
// shard workers, the lifecycle, and a scripted schedule of injected faults
// (disk-full checkpoints, torn spool writes, slow and panicking scoring,
// worker-loop panics, failing adaptation cycles, a skewed watchdog clock) —
// and then compares the two runs' warning output.
//
// The invariants it enforces are the PR-7 acceptance criteria: the monitor
// never exits, no checkpoint generation is ever lost (every save attempt is
// followed by a restore of whatever is on disk, whose message counter must
// be monotone), the adaptation breaker opens under injected cycle failures
// and recovers after the cooldown, and the chaos run's per-host warning
// counts diverge from the reference by at most DivergenceBound — faults may
// cost the batches that were in flight when a worker died, never the stream.
//
// Run from `make chaos` (short, race-enabled, part of `make ci`) and
// `make chaos-full` (the long soak, CHAOS_SOAK=full).
package chaos

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/faultinject"
	"nfvpredict/internal/features"
	"nfvpredict/internal/ingest"
	"nfvpredict/internal/lifecycle"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/resilience"
	"nfvpredict/internal/sigtree"
)

// DivergenceBound is the documented ceiling on warning divergence between
// the chaos run and the fault-free reference: the per-host symmetric
// difference of warning counts over the reference total. Faults are allowed
// to cost the few batches that were dequeued when a scoring panic fired
// (at most MaxBatch messages each, well under one warning burst per
// incident); anything above the bound means fault handling is eating the
// stream itself.
const DivergenceBound = 0.2

// Config parameterizes a soak. The zero value is the short CI soak.
type Config struct {
	// Shards is the chaos monitor's shard count (default 4; the reference
	// run always uses 1 so its warning order is deterministic).
	Shards int
	// Hosts is the number of simulated vPE routers (default 4).
	Hosts int
	// Rounds repeats the whole fault schedule (default 1; the full soak
	// runs several).
	Rounds int
	// Dir is where checkpoint/spool artifacts live; "" uses a temp dir
	// that is removed when Run returns.
	Dir string
	// Log, when set, receives one line per fault-schedule step.
	Log *log.Logger
}

// Report is what a soak measured.
type Report struct {
	// Messages is the chaos monitor's processed-message count.
	Messages uint64
	// RefWarnings and ChaosWarnings are total warning counts per run.
	RefWarnings   int
	ChaosWarnings int
	// WarnDivergence is the per-host symmetric difference of warning
	// counts over the reference total (see DivergenceBound).
	WarnDivergence float64
	// FaultsFired maps fault-point name → injected-failure count; the
	// DistinctFaults summary counts the nonzero entries.
	FaultsFired    map[string]uint64
	DistinctFaults int
	// CheckpointSaves counts successful checkpoint writes;
	// CheckpointRetries counts failed attempts absorbed by the retrier.
	CheckpointSaves   uint64
	CheckpointRetries uint64
	// SpoolSaves / SpoolRetries are the same for the lifecycle spool.
	SpoolSaves   uint64
	SpoolRetries uint64
	// BreakerOpens counts adaptation-breaker openings; BreakerRecovered
	// reports that the breaker was closed again by a clean probe.
	BreakerOpens     uint64
	BreakerRecovered bool
	// Supervision counters from the chaos monitor.
	WorkerRestarts uint64
	WatchdogKicks  uint64
	ShardPanics    uint64
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Hosts <= 0 {
		c.Hosts = 4
	}
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log.Printf(format, args...)
	}
}

// normalTexts is the cyclic healthy corpus (mirrors the training fixture
// used across the ingest and lifecycle tests).
var normalTexts = []string{
	"bgp keepalive exchanged with peer 10.0.0.1 hold 90",
	"interface statistics poll completed for ge-0/0/1 in 12 ms",
	"fpc 0 cpu utilization 20 percent memory 40 percent",
	"ntp clock synchronized to 10.9.9.9 stratum 2 offset 120 us",
}

// buildTree grows a signature tree over the training corpus. Called once
// per run so the reference and chaos monitors each own an identical but
// independent tree (template IDs are deterministic in Learn order).
func buildTree() (*sigtree.Tree, []features.Event) {
	tree := sigtree.New()
	var stream []features.Event
	base := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 1200; i++ {
		tpl := tree.Learn(normalTexts[i%len(normalTexts)])
		stream = append(stream, features.Event{Time: base.Add(time.Duration(i) * 30 * time.Second), Template: tpl.ID})
	}
	return tree, stream
}

// trainModelSet trains the single-cluster serving set both runs score with.
func trainModelSet(hosts int) (*lifecycle.ModelSet, error) {
	_, stream := buildTree()
	cfg := detect.DefaultLSTMConfig()
	cfg.Hidden = []int{16}
	cfg.MaxVocab = 16
	cfg.Epochs = 6
	cfg.OverSampleRounds = 0
	det := detect.NewLSTMDetector(cfg)
	if err := det.Train([][]features.Event{stream}); err != nil {
		return nil, fmt.Errorf("chaos: training: %w", err)
	}
	assign := make(map[string]int, hosts)
	for h := 0; h < hosts; h++ {
		assign[hostName(h)] = 0
	}
	return &lifecycle.ModelSet{
		Detectors: []*detect.LSTMDetector{det},
		Assign:    assign,
		Threshold: 4,
	}, nil
}

func hostName(h int) string { return fmt.Sprintf("vpe%02d", h+1) }

// segment is one fault-schedule step's worth of traffic: per host, normal
// cyclic messages with one six-message anomaly burst in the middle (2s
// spacing, so §5.1 clusters it into exactly one warning per host).
type segment struct {
	msgs []logfmt.Message
}

// script builds the deterministic message schedule: segsPerRound segments
// per round, each with per-host time cursors advancing 30s per normal
// message. The same script feeds both runs.
func script(cfg Config, segsPerRound int) []segment {
	cursors := make([]time.Time, cfg.Hosts)
	base := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)
	for h := range cursors {
		cursors[h] = base.Add(time.Duration(h) * time.Second)
	}
	var segs []segment
	burstID := 0
	for r := 0; r < cfg.Rounds; r++ {
		for s := 0; s < segsPerRound; s++ {
			var seg segment
			for h := 0; h < cfg.Hosts; h++ {
				host := hostName(h)
				emitNormal := func(n int) {
					for i := 0; i < n; i++ {
						seg.msgs = append(seg.msgs, logfmt.Message{
							Time: cursors[h], Host: host, Tag: "rpd",
							Text: normalTexts[(r+s+i)%len(normalTexts)],
						})
						cursors[h] = cursors[h].Add(30 * time.Second)
					}
				}
				emitNormal(20)
				burstID++
				for i := 0; i < 6; i++ {
					seg.msgs = append(seg.msgs, logfmt.Message{
						Time: cursors[h], Host: host, Tag: "chassisd",
						Text: fmt.Sprintf("unexpected fabric drop alarm code %d on plane %d", burstID*7+i, i),
					})
					cursors[h] = cursors[h].Add(2 * time.Second)
				}
				emitNormal(10)
			}
			segs = append(segs, seg)
		}
	}
	return segs
}

// refRun replays every segment synchronously through a single-shard,
// fault-free monitor and returns per-host warning counts.
func refRun(ms *lifecycle.ModelSet, segs []segment) map[string]int {
	tree, _ := buildTree()
	mcfg := ingest.DefaultMonitorConfig()
	mcfg.Threshold = ms.Threshold
	mcfg.Shards = 1
	mcfg.ClusterOf = ms.ClusterOf()
	mon := ingest.NewMonitorWithResolver(mcfg, tree, ms.Resolver(), nil)
	for _, seg := range segs {
		for _, msg := range seg.msgs {
			mon.HandleMessage(msg)
		}
	}
	return warningCounts(mon)
}

func warningCounts(mon *ingest.Monitor) map[string]int {
	counts := make(map[string]int)
	for _, w := range mon.Warnings() {
		counts[w.VPE]++
	}
	return counts
}

// Run executes one soak and returns its report. A non-nil error means an
// acceptance invariant the harness itself enforces (checkpoint restore,
// queue drain, breaker recovery) was violated — divergence and fault
// counts are the caller's to judge against the thresholds in Report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "nfv-chaos-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	ms, err := trainModelSet(cfg.Hosts)
	if err != nil {
		return nil, err
	}

	// Each fault phase arms points, then feeds one traffic segment and
	// waits for the stack to settle.
	phases := []string{
		"baseline", "checkpoint-disk-full", "spool-torn", "score-slow",
		"score-panic", "worker-panic", "breaker", "clock-skew", "shed-learning",
	}
	segs := script(cfg, len(phases))
	refCounts := refRun(ms, segs)

	// Chaos stack: supervised sharded monitor + lifecycle, both wired to a
	// private fault registry.
	reg := faultinject.NewRegistry()
	tree, _ := buildTree()
	lcfg := lifecycle.DefaultConfig()
	lcfg.Interval = 0 // cycles driven explicitly by the schedule
	lcfg.GateBudget = 1
	lcfg.MinDriftEvents = 1 << 30
	lcfg.BreakerThreshold = 2
	lcfg.BreakerCooldown = 50 * time.Millisecond
	lcfg.Faults = reg
	lcfg.Log = cfg.Log
	lm := lifecycle.New(lcfg, ms)
	mcfg := ingest.DefaultMonitorConfig()
	mcfg.Threshold = ms.Threshold
	mcfg.Shards = cfg.Shards
	mcfg.Watchdog = 50 * time.Millisecond
	mcfg.Faults = reg
	mcfg.ClusterOf = ms.ClusterOf()
	mcfg.OnScored = lm.Observe
	mon := ingest.NewMonitorWithResolver(mcfg, tree, ms.Resolver(), nil)
	lm.Attach(mon)
	mon.Start()
	defer mon.Stop()

	rep := &Report{FaultsFired: make(map[string]uint64)}
	ckptPath := filepath.Join(dir, "monitor.nfvc")
	spoolPath := filepath.Join(dir, "lifecycle.nfvs")
	retryPol := resilience.RetryPolicy{Attempts: 5, Base: time.Millisecond, Max: 20 * time.Millisecond, Seed: 1}
	var lastRestored uint64

	// checkpoint saves with retry, then proves the on-disk generation is
	// restorable and its message counter never went backwards — the
	// "no checkpoint generation lost" invariant.
	checkpoint := func() error {
		before := pointFired(reg, "checkpoint.write")
		if err := resilience.Retry(nil, retryPol, func() error {
			return mon.CheckpointFile(ckptPath)
		}); err != nil {
			return fmt.Errorf("chaos: checkpoint exhausted retries: %w", err)
		}
		rep.CheckpointSaves++
		rep.CheckpointRetries += pointFired(reg, "checkpoint.write") - before
		rcfg := ingest.DefaultMonitorConfig()
		rcfg.Threshold = ms.Threshold
		rcfg.ClusterOf = ms.ClusterOf()
		restored, err := ingest.RestoreMonitorFile(ckptPath, rcfg, ms.Resolver(), nil)
		if err != nil {
			return fmt.Errorf("chaos: checkpoint on disk unrestorable: %w", err)
		}
		msgs, _ := restored.Counters()
		if msgs < lastRestored {
			return fmt.Errorf("chaos: checkpoint went backwards: restored %d after %d", msgs, lastRestored)
		}
		lastRestored = msgs
		return nil
	}
	saveSpool := func() error {
		before := pointFired(reg, "spool.write")
		if err := resilience.Retry(nil, retryPol, func() error {
			return lm.SaveSpool(spoolPath)
		}); err != nil {
			return fmt.Errorf("chaos: spool save exhausted retries: %w", err)
		}
		rep.SpoolSaves++
		rep.SpoolRetries += pointFired(reg, "spool.write") - before
		return nil
	}
	feed := func(seg segment) error {
		for _, msg := range seg.msgs {
			for !mon.Enqueue(msg) {
				time.Sleep(100 * time.Microsecond)
			}
		}
		return drain(mon)
	}

	for i, seg := range segs {
		phase := phases[i%len(phases)]
		cfg.logf("chaos: phase %d/%d: %s", i+1, len(segs), phase)
		var armErr error
		switch phase {
		case "checkpoint-disk-full":
			armErr = reg.Arm("checkpoint.write", faultinject.Arming{Mode: faultinject.ModeDiskFull, Count: 2})
		case "spool-torn":
			armErr = reg.Arm("spool.write", faultinject.Arming{Mode: faultinject.ModeTorn, Bytes: 16, Count: 1})
		case "score-slow":
			armErr = reg.Arm("shard.score", faultinject.Arming{Mode: faultinject.ModeSlow, Delay: 400 * time.Millisecond, Count: 1})
		case "score-panic":
			armErr = reg.Arm("shard.score", faultinject.Arming{Mode: faultinject.ModePanic, Count: 1})
		case "worker-panic":
			armErr = reg.Arm("shard.worker", faultinject.Arming{Mode: faultinject.ModePanic, Count: 2})
		case "clock-skew":
			armErr = reg.Arm("heartbeat.skew", faultinject.Arming{Mode: faultinject.ModeSkew, Skew: time.Hour, Count: 2})
		case "shed-learning":
			lm.SetShedLearning(true, "chaos drill")
		}
		if armErr != nil {
			return nil, armErr
		}
		if err := feed(seg); err != nil {
			return nil, err
		}
		switch phase {
		case "breaker":
			if err := breakerArc(reg, lm, rep); err != nil {
				return nil, err
			}
		case "clock-skew":
			reg.Disarm("heartbeat.skew")
		case "shed-learning":
			if res := lm.TriggerCycle(false); !res.Skipped || res.SkipReason != "shed-learning" {
				return nil, fmt.Errorf("chaos: shed-learning did not skip the cycle: %+v", res)
			}
			lm.SetShedLearning(false, "chaos drill over")
		}
		if err := checkpoint(); err != nil {
			return nil, err
		}
		if err := saveSpool(); err != nil {
			return nil, err
		}
	}

	st := mon.Stats()
	rep.Messages = st.Messages
	rep.WorkerRestarts = st.WorkerRestarts
	rep.WatchdogKicks = st.WatchdogKicks
	rep.ShardPanics = st.ShardPanics
	for _, ps := range reg.Snapshot() {
		if ps.Fired > 0 {
			rep.FaultsFired[ps.Name] = ps.Fired
			rep.DistinctFaults++
		}
	}
	rep.BreakerOpens = lm.Status().Breaker.Opens

	chaosCounts := warningCounts(mon)
	var refTotal, diff int
	seen := make(map[string]bool)
	for h, n := range refCounts {
		refTotal += n
		rep.RefWarnings += n
		d := n - chaosCounts[h]
		if d < 0 {
			d = -d
		}
		diff += d
		seen[h] = true
	}
	for h, n := range chaosCounts {
		rep.ChaosWarnings += n
		if !seen[h] {
			diff += n
		}
	}
	if refTotal > 0 {
		rep.WarnDivergence = float64(diff) / float64(refTotal)
	}
	cfg.logf("chaos: done: %d msgs, %d/%d warnings, divergence %.3f, faults %v",
		rep.Messages, rep.ChaosWarnings, rep.RefWarnings, rep.WarnDivergence, rep.FaultsFired)
	return rep, nil
}

// breakerArc drives the adaptation breaker through open → skip → probe →
// closed using injected cycle failures.
func breakerArc(reg *faultinject.Registry, lm *lifecycle.Manager, rep *Report) error {
	if err := reg.Arm("lifecycle.cycle", faultinject.Arming{Mode: faultinject.ModeError}); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if res := lm.TriggerCycle(false); res.Skipped {
			return fmt.Errorf("chaos: cycle skipped before breaker opened: %+v", res)
		}
	}
	if st := lm.Status(); st.Breaker.StateName != "open" {
		return fmt.Errorf("chaos: breaker did not open: %+v", st.Breaker)
	}
	if res := lm.TriggerCycle(false); !res.Skipped || res.SkipReason != "breaker-open" {
		return fmt.Errorf("chaos: open breaker admitted a cycle: %+v", res)
	}
	reg.Disarm("lifecycle.cycle")
	time.Sleep(60 * time.Millisecond) // past the 50ms cooldown
	if res := lm.TriggerCycle(false); res.Skipped {
		return fmt.Errorf("chaos: half-open probe skipped: %+v", res)
	}
	if st := lm.Status(); st.Breaker.StateName != "closed" {
		return fmt.Errorf("chaos: breaker did not recover: %+v", st.Breaker)
	}
	rep.BreakerRecovered = true
	return nil
}

// drain waits until every shard queue is empty and the processed-message
// counter has been stable for a few polls — the stack has settled. Faults
// can wedge a worker for hundreds of ms (the slow-injection phase), so the
// deadline is generous; hitting it means a worker died unsupervised.
func drain(mon *ingest.Monitor) error {
	deadline := time.Now().Add(30 * time.Second)
	stable := 0
	var last uint64
	for time.Now().Before(deadline) {
		msgs, _ := mon.Counters()
		if mon.QueueFrac() == 0 && msgs == last {
			stable++
			if stable >= 3 {
				return nil
			}
		} else {
			stable = 0
		}
		last = msgs
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("chaos: queues never drained: stats %+v", mon.Stats())
}

// pointFired reads one fault point's injected-failure count.
func pointFired(reg *faultinject.Registry, name string) uint64 {
	for _, ps := range reg.Snapshot() {
		if ps.Name == name {
			return ps.Fired
		}
	}
	return 0
}
