package chaos

import (
	"log"
	"os"
	"testing"
)

// TestChaosSoakShort is the CI soak (`make chaos`, race-enabled): one full
// pass of the fault schedule over the seed scenario, asserting every PR-7
// acceptance invariant.
func TestChaosSoakShort(t *testing.T) {
	rep := runSoak(t, Config{})
	checkReport(t, rep)
}

// TestChaosSoakFull is the long soak (`make chaos-full`): several rounds of
// the schedule. Gated behind CHAOS_SOAK=full so `go test ./...` stays fast.
func TestChaosSoakFull(t *testing.T) {
	if os.Getenv("CHAOS_SOAK") != "full" {
		t.Skip("set CHAOS_SOAK=full to run the full soak")
	}
	rep := runSoak(t, Config{Rounds: 4, Hosts: 6, Shards: 8})
	checkReport(t, rep)
}

func runSoak(t *testing.T, cfg Config) *Report {
	t.Helper()
	cfg.Dir = t.TempDir()
	if testing.Verbose() {
		cfg.Log = log.New(os.Stderr, "", log.Ltime)
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func checkReport(t *testing.T, rep *Report) {
	t.Helper()
	t.Logf("report: %+v", rep)
	if rep.DistinctFaults < 5 {
		t.Errorf("distinct fault types injected = %d (%v), want >= 5", rep.DistinctFaults, rep.FaultsFired)
	}
	if rep.BreakerOpens < 1 || !rep.BreakerRecovered {
		t.Errorf("breaker arc incomplete: opens=%d recovered=%v", rep.BreakerOpens, rep.BreakerRecovered)
	}
	if rep.CheckpointRetries < 1 {
		t.Errorf("no checkpoint write ever failed-and-retried (disk-full injection missed)")
	}
	if rep.SpoolRetries < 1 {
		t.Errorf("no spool write ever failed-and-retried (torn injection missed)")
	}
	if rep.WorkerRestarts < 1 {
		t.Errorf("no supervised worker restart observed")
	}
	if rep.WatchdogKicks < 1 {
		t.Errorf("no watchdog kick observed")
	}
	if rep.RefWarnings == 0 {
		t.Fatal("reference run produced no warnings; scenario is broken")
	}
	if rep.WarnDivergence > DivergenceBound {
		t.Errorf("warning divergence %.3f exceeds bound %.2f (ref %d, chaos %d)",
			rep.WarnDivergence, DivergenceBound, rep.RefWarnings, rep.ChaosWarnings)
	}
}

// BenchmarkChaosSoak exports the soak's counters into BENCH_serving.json
// (via `make bench-json` → cmd/benchjson, which keeps custom units in the
// "extra" map): injected faults, checkpoint saves, breaker opens, and the
// warning divergence of the chaos run.
func BenchmarkChaosSoak(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Run(Config{Dir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		var faults uint64
		for _, n := range rep.FaultsFired {
			faults += n
		}
		b.ReportMetric(float64(faults), "faults_injected")
		b.ReportMetric(float64(rep.CheckpointSaves), "ckpt_saves")
		b.ReportMetric(float64(rep.BreakerOpens), "breaker_opens")
		b.ReportMetric(rep.WarnDivergence, "warn_divergence")
	}
}
