// Package figures regenerates every figure and in-text result of the
// paper's evaluation from the simulated deployment, printing the same
// rows/series the paper plots. It is shared by cmd/figures and the root
// benchmark harness (bench_test.go), so `go test -bench` and the CLI
// produce identical tables. See DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured values.
package figures

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"nfvpredict/internal/cluster"
	"nfvpredict/internal/detect"
	"nfvpredict/internal/eval"
	"nfvpredict/internal/nfvsim"
	"nfvpredict/internal/pipeline"
	"nfvpredict/internal/ticket"
)

// StatsSimConfig is the fleet used for the measurement-study figures
// (1a, 1b, 2, 3, update shift, vPE-vs-pPE volume): the paper's full scale.
func StatsSimConfig() nfvsim.Config {
	cfg := nfvsim.DefaultConfig()
	cfg.NumPPEs = 8
	return cfg
}

// ModelSimConfig is the fleet used for the model figures (5-8 and the
// §5.2 reductions): smaller than the paper's deployment so the pure-Go
// LSTM walk-forward completes in benchmark time, but long enough to hold
// several pre-update months, the update, and the recovery.
func ModelSimConfig() nfvsim.Config {
	cfg := nfvsim.DefaultConfig()
	cfg.NumVPEs = 10
	cfg.NumPPEs = 0
	cfg.Months = 12
	cfg.BaseRatePerHour = 1.2
	cfg.MeanFaultGapHours = 250
	cfg.UpdateMonth = 9
	return cfg
}

// ReductionSimConfig is the fleet for the §5.2 training-overhead
// experiments: the update sits early enough to leave three months of
// post-update data for the scratch-retrain arms.
func ReductionSimConfig() nfvsim.Config {
	cfg := ModelSimConfig()
	cfg.Months = 9
	cfg.UpdateMonth = 4
	// The recovery experiment isolates the update effect: the whole
	// fleet updates, as in the §5.2 micro-benchmark framing.
	cfg.UpdateFraction = 1.0
	return cfg
}

// ModelPipelineConfig sizes the pipeline for the model figures.
func ModelPipelineConfig() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.LSTM.Hidden = []int{24, 24}
	cfg.LSTM.MaxVocab = 96
	cfg.LSTM.Epochs = 2
	cfg.LSTM.MaxWindowsPerEpoch = 2500
	cfg.KMax = 6
	return cfg
}

// Fig1a prints the monthly root-cause mix (Figure 1a) and returns the
// per-month breakdowns.
func Fig1a(w io.Writer, tr *nfvsim.Trace, start time.Time, months int) []ticket.MonthlyBreakdown {
	st := ticket.NewStore(tr.Tickets)
	rows := st.MonthlyByCause(start, start.AddDate(0, months, 0))
	fmt.Fprintf(w, "# Figure 1(a): percent of ticket types over time (monthly)\n")
	fmt.Fprintf(w, "%-8s %6s", "month", "total")
	for _, c := range ticket.Causes {
		fmt.Fprintf(w, " %12s", c)
	}
	fmt.Fprintln(w)
	for _, mb := range rows {
		fmt.Fprintf(w, "%-8s %6d", mb.Month.Format("2006-01"), mb.Total)
		for _, c := range ticket.Causes {
			pct := 0.0
			if mb.Total > 0 {
				pct = 100 * float64(mb.Counts[c]) / float64(mb.Total)
			}
			fmt.Fprintf(w, " %11.1f%%", pct)
		}
		fmt.Fprintln(w)
	}
	return rows
}

// Fig1b prints the inter-arrival CDF of non-duplicated tickets (Figure
// 1b) and returns (CDF values, the paper's three checkpoints).
func Fig1b(w io.Writer, tr *nfvsim.Trace) (cdf []float64, checkpoints [3]float64) {
	st := ticket.NewStore(tr.Tickets)
	gaps := st.InterArrivals()
	grid := []time.Duration{
		40 * time.Minute, time.Hour, 3 * time.Hour, 10 * time.Hour,
		30 * time.Hour, 100 * time.Hour, 300 * time.Hour, 1000 * time.Hour,
		3000 * time.Hour, 10000 * time.Hour,
	}
	cdf = ticket.CDF(gaps, grid)
	fmt.Fprintf(w, "# Figure 1(b): CDF of non-duplicated ticket inter-arrival time (n=%d)\n", len(gaps))
	fmt.Fprintf(w, "%-12s %8s\n", "hours", "CDF")
	for i, g := range grid {
		fmt.Fprintf(w, "%-12.1f %8.3f\n", g.Hours(), cdf[i])
	}
	// Paper checkpoints: none under 40 min, 80% beyond 10 h, 25% beyond
	// 1000 h.
	checkpoints[0] = cdf[0]     // ≤ 40 min
	checkpoints[1] = 1 - cdf[3] // > 10 h
	checkpoints[2] = 1 - cdf[7] // > 1000 h
	fmt.Fprintf(w, "under 40min: %.3f (paper ~0)   over 10h: %.3f (paper ~0.80)   over 1000h: %.3f (paper ~0.25)\n",
		checkpoints[0], checkpoints[1], checkpoints[2])
	return cdf, checkpoints
}

// Fig2 prints the ticket-occurrence scatter summary (Figure 2): per-vPE
// volumes (skew) and the most fleet-wide time bins (core incidents).
func Fig2(w io.Writer, tr *nfvsim.Trace, start time.Time, months int) (cells int, maxBinVPEs int) {
	st := ticket.NewStore(tr.Tickets)
	cellsList, perBin := st.OccurrenceMatrix(start, start.AddDate(0, months, 0), 24*time.Hour)
	perVPE := map[string]int{}
	for _, c := range cellsList {
		perVPE[c.VPE]++
	}
	type vc struct {
		v string
		n int
	}
	var vols []vc
	for v, n := range perVPE {
		vols = append(vols, vc{v, n})
	}
	sort.Slice(vols, func(i, j int) bool { return vols[i].n > vols[j].n })
	fmt.Fprintf(w, "# Figure 2: non-maintenance tickets across time and vPEs\n")
	fmt.Fprintf(w, "occupied (vPE, day) cells: %d\n", len(cellsList))
	fmt.Fprintf(w, "busiest vPEs (ticket-days): ")
	for i, v := range vols {
		if i >= 5 {
			break
		}
		fmt.Fprintf(w, "%s=%d ", v.v, v.n)
	}
	fmt.Fprintln(w)
	for _, n := range perBin {
		if n > maxBinVPEs {
			maxBinVPEs = n
		}
	}
	fmt.Fprintf(w, "max vPEs sharing one day bin (core-router incidents): %d of %d\n", maxBinVPEs, len(tr.VPENames))
	return len(cellsList), maxBinVPEs
}

// Fig3 prints the cosine-similarity quantiles of each vPE's monthly
// template distribution versus the fleet aggregate (Figure 3), sorted by
// median similarity, and returns the per-vPE medians.
func Fig3(w io.Writer, ds *pipeline.Dataset) map[string]float64 {
	// Per-vPE, per-month similarity to the aggregate of that month.
	monthly := make(map[string][]float64)
	for m := 0; m < ds.Months; m++ {
		hists := make(map[string]cluster.Histogram, len(ds.VPEs))
		for _, v := range ds.VPEs {
			hists[v] = ds.MonthHistogram(v, m)
		}
		sims := cluster.SimilarityToAggregate(hists)
		for v, s := range sims {
			monthly[v] = append(monthly[v], s)
		}
	}
	type row struct {
		v string
		q [5]float64
	}
	rows := make([]row, 0, len(monthly))
	medians := make(map[string]float64, len(monthly))
	for v, sims := range monthly {
		q := cluster.Quantiles(sims)
		rows = append(rows, row{v, q})
		medians[v] = q[2]
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].q[2] < rows[j].q[2] })
	fmt.Fprintf(w, "# Figure 3: cosine similarity of syslog distribution, vPE vs aggregate\n")
	fmt.Fprintf(w, "%-8s %6s %6s %6s %6s %6s\n", "vPE", "min", "p25", "p50", "p75", "max")
	var above08, below05 int
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %6.2f %6.2f %6.2f %6.2f %6.2f\n", r.v, r.q[0], r.q[1], r.q[2], r.q[3], r.q[4])
		if r.q[2] > 0.8 {
			above08++
		}
		if r.q[2] < 0.5 {
			below05++
		}
	}
	fmt.Fprintf(w, "vPEs with median similarity >0.8: %d/%d (paper ~1/3)   <0.5: %d (paper: 5)\n",
		above08, len(rows), below05)
	return medians
}

// UpdateShift prints the month-over-month cosine series around the system
// update (§3.3) for updated vPEs and returns (pre-update min, pure
// pre-vs-post value) averaged over updated vPEs. The pure comparison uses
// the months just before and just after the rollout month, because the
// rollout month itself is a pre/post mixture that dilutes the drop.
func UpdateShift(w io.Writer, ds *pipeline.Dataset, tr *nfvsim.Trace, updateMonth int) (preMin, pureShift float64) {
	fmt.Fprintf(w, "# §3.3: month-over-month cosine similarity around the system update\n")
	preMin = 1
	var atSum, pureSum float64
	var atN, pureN int
	for _, v := range ds.VPEs {
		if _, updated := tr.UpdateTimes[v]; !updated {
			continue
		}
		for m := 1; m < ds.Months; m++ {
			sim := cluster.Cosine(ds.MonthHistogram(v, m-1), ds.MonthHistogram(v, m))
			if m <= updateMonth-1 && sim < preMin {
				preMin = sim
			}
			if m == updateMonth || m == updateMonth+1 {
				atSum += sim
				atN++
			}
		}
		if updateMonth >= 1 && updateMonth+1 < ds.Months {
			pureSum += cluster.Cosine(ds.MonthHistogram(v, updateMonth-1), ds.MonthHistogram(v, updateMonth+1))
			pureN++
		}
	}
	atUpdate := 0.0
	if atN > 0 {
		atUpdate = atSum / float64(atN)
	}
	if pureN > 0 {
		pureShift = pureSum / float64(pureN)
	}
	fmt.Fprintf(w, "pre-update month-over-month cosine (min across updated vPEs): %.2f (paper: always >0.8)\n", preMin)
	fmt.Fprintf(w, "around-update month-over-month cosine (mean, mixed months): %.2f\n", atUpdate)
	fmt.Fprintf(w, "pure pre-vs-post cosine (month %d vs %d, mean): %.2f (paper: drops <0.4)\n", updateMonth-1, updateMonth+1, pureShift)
	return preMin, pureShift
}

// Volume prints the vPE-vs-pPE log-volume comparison (§2) and returns the
// vPE volume reduction fraction.
func Volume(w io.Writer, tr *nfvsim.Trace) float64 {
	var vpe, ppe int
	for i := range tr.Messages {
		h := tr.Messages[i].Host
		if len(h) > 0 && h[0] == 'p' {
			ppe++
		} else {
			vpe++
		}
	}
	perVPE := float64(vpe) / float64(max(1, len(tr.VPENames)))
	perPPE := float64(ppe) / float64(max(1, len(tr.PPENames)))
	reduction := 0.0
	if perPPE > 0 {
		reduction = 1 - perVPE/perPPE
	}
	fmt.Fprintf(w, "# §2: vPE vs pPE syslog volume\n")
	fmt.Fprintf(w, "messages per vPE: %.0f   per pPE: %.0f   vPE reduction: %.0f%% (paper: 77%%)\n",
		perVPE, perPPE, 100*reduction)
	return reduction
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Summary runs the operating-point pipeline once and emits the
// evaluator's JSON summary (warnings, FAR, per-ticket lead times) — the
// same eval.Summary shape the scenario harness asserts against, so
// figures output and scenario reports can never disagree on a number.
func Summary(w io.Writer, ds *pipeline.Dataset, cfg pipeline.Config) (*eval.Summary, error) {
	res, err := pipeline.Run(ds, cfg)
	if err != nil {
		return nil, err
	}
	s := res.Outcome.Summary()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Fig5 runs the full LSTM system once and prints PRCs for 1 h / 1 day /
// 2 day predictive windows (Figure 5), returning best-F per window.
func Fig5(w io.Writer, ds *pipeline.Dataset, cfg pipeline.Config) (map[time.Duration]eval.PRPoint, error) {
	res, err := pipeline.Run(ds, cfg)
	if err != nil {
		return nil, err
	}
	windows := []time.Duration{time.Hour, 24 * time.Hour, 48 * time.Hour}
	curves := pipeline.PredictiveWindowSweep(ds, res, cfg, windows)
	fmt.Fprintf(w, "# Figure 5: PRC for different predictive windows\n")
	best := make(map[time.Duration]eval.PRPoint, len(windows))
	for _, win := range windows {
		curve := curves[win]
		b := eval.BestF(curve)
		best[win] = b
		fmt.Fprintf(w, "window %-5s best: P=%.2f R=%.2f F=%.2f fa/day=%.2f\n",
			win, b.Precision, b.Recall, b.F, b.FalseAlarmsPerDay)
		for _, p := range curve {
			fmt.Fprintf(w, "  thr=%8.3f  P=%.3f R=%.3f F=%.3f\n", p.Threshold, p.Precision, p.Recall, p.F)
		}
	}
	fmt.Fprintf(w, "paper: converges at 1 day; operating point P=0.80 R=0.81, 0.6 false alarms/day\n")
	return best, nil
}

// Fig6 runs the three methods with identical customization+adaptation and
// prints their PRCs (Figure 6), returning best-F per method.
func Fig6(w io.Writer, ds *pipeline.Dataset, cfg pipeline.Config) (map[pipeline.Method]eval.PRPoint, error) {
	fmt.Fprintf(w, "# Figure 6: anomaly detection performance of different approaches\n")
	out := make(map[pipeline.Method]eval.PRPoint, 3)
	for _, m := range []pipeline.Method{pipeline.MethodLSTM, pipeline.MethodAutoencoder, pipeline.MethodOCSVM} {
		c := cfg
		c.Method = m
		res, err := pipeline.Run(ds, c)
		if err != nil {
			return nil, fmt.Errorf("figures: %s run: %w", m, err)
		}
		out[m] = res.Best
		fmt.Fprintf(w, "%-12s best: P=%.2f R=%.2f F=%.2f AUC-PR=%.2f\n",
			m, res.Best.Precision, res.Best.Recall, res.Best.F, eval.AUCPR(res.Curve))
		for _, p := range res.Curve {
			fmt.Fprintf(w, "  thr=%8.3f  P=%.3f R=%.3f\n", p.Threshold, p.Precision, p.Recall)
		}
	}
	fmt.Fprintf(w, "paper: LSTM (P≈0.82) > Autoencoder (P≈0.77) >> one-class SVM\n")
	return out, nil
}

// Fig7 runs the three system variants and prints the monthly F-measure
// series (Figure 7), returning the per-variant series.
func Fig7(w io.Writer, ds *pipeline.Dataset, cfg pipeline.Config) (map[pipeline.Variant][]pipeline.MonthMetrics, error) {
	fmt.Fprintf(w, "# Figure 7: effectiveness of customization and adaptation (monthly F)\n")
	out := make(map[pipeline.Variant][]pipeline.MonthMetrics, 3)
	variants := []pipeline.Variant{pipeline.Baseline, pipeline.Customized, pipeline.CustomizedAdaptive}
	for _, v := range variants {
		c := cfg
		c.Variant = v
		res, err := pipeline.Run(ds, c)
		if err != nil {
			return nil, fmt.Errorf("figures: variant %v run: %w", v, err)
		}
		out[v] = res.Monthly
	}
	fmt.Fprintf(w, "%-8s", "month")
	for _, v := range variants {
		fmt.Fprintf(w, " %18s", v)
	}
	fmt.Fprintln(w)
	for i := range out[pipeline.Baseline] {
		fmt.Fprintf(w, "%-8s", out[pipeline.Baseline][i].Month.Format("2006-01"))
		for _, v := range variants {
			mm := out[v][i]
			marker := " "
			if mm.Adapted {
				marker = "*"
			}
			fmt.Fprintf(w, "            F=%.2f%s", mm.Best.F, marker)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(* = transfer-learning adaptation active; paper: cust+adapt recovers within ~1 week of the update)\n")
	return out, nil
}

// Fig8 runs the full system and prints the per-root-cause lead-time
// detection rates (Figure 8), returning the table.
func Fig8(w io.Writer, ds *pipeline.Dataset, cfg pipeline.Config) ([]eval.TypeDetection, error) {
	res, err := pipeline.Run(ds, cfg)
	if err != nil {
		return nil, err
	}
	tds := eval.DetectionByType(res.Outcome, ds.Tickets, ds.MonthStart(1), ds.MonthStart(ds.Months))
	fmt.Fprintf(w, "# Figure 8: anomaly detection for different types of tickets\n")
	fmt.Fprintf(w, "%-10s %8s", "type", "tickets")
	for _, name := range eval.LeadBucketNames {
		fmt.Fprintf(w, " %7s", name)
	}
	fmt.Fprintln(w)
	for _, td := range tds {
		label := td.Cause.String()
		if td.All {
			label = "ALL"
		}
		fmt.Fprintf(w, "%-10s %8d", label, td.Tickets)
		for _, r := range td.Rates {
			fmt.Fprintf(w, " %7.2f", r)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "paper @0min: Circuit 0.74 > Software 0.55 > Cable 0.40 > Hardware 0.28; ALL @+15min ~0.80\n")
	return tds, nil
}

// Reduction prints the §5.2 training-data reductions (clustering and
// transfer learning) and returns both row sets.
func Reduction(w io.Writer, ds *pipeline.Dataset, cfg pipeline.Config, evalMonth, updateMonth int) (clusterRows, adaptRows []pipeline.ExperimentRow, err error) {
	clusterRows, err = pipeline.TrainingDataSweep(ds, cfg, evalMonth)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(w, "# §5.2: reducing training overhead — clustering (3 months → 1 month)\n")
	for _, r := range clusterRows {
		fmt.Fprintf(w, "%-22s trainEvents=%-7d F=%.2f P=%.2f R=%.2f\n",
			r.Label, r.TrainEvents, r.Best.F, r.Best.Precision, r.Best.Recall)
	}
	adaptRows, err = pipeline.AdaptRecoverySweep(ds, cfg, updateMonth)
	if err != nil {
		return clusterRows, nil, err
	}
	fmt.Fprintf(w, "# §5.2: reducing training overhead — transfer learning (3 months → 1 week)\n")
	for _, r := range adaptRows {
		fmt.Fprintf(w, "%-22s trainEvents=%-7d F=%.2f P=%.2f R=%.2f\n",
			r.Label, r.TrainEvents, r.Best.F, r.Best.Precision, r.Best.Recall)
	}
	return clusterRows, adaptRows, nil
}

// WarningClusterStats reports the §5.1 observation that per-ticket
// anomalies cluster tightly: the mean within-cluster gap of warnings
// mapped to tickets.
func WarningClusterStats(w io.Writer, res *pipeline.Result) (meanSize float64) {
	var sizes, n int
	anoms := detect.Threshold(res.Events, res.Best.Threshold)
	warns := detect.ClusterWarnings(anoms, detect.DefaultClusterWindow, detect.DefaultMinClusterSize)
	for _, wn := range warns {
		sizes += wn.Size
		n++
	}
	if n > 0 {
		meanSize = float64(sizes) / float64(n)
	}
	fmt.Fprintf(w, "# §5.1: warning clusters: %d warnings, mean anomalies per cluster %.1f (rule: ≥2 within 1 min)\n",
		n, meanSize)
	return meanSize
}
