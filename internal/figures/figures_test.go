package figures

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"nfvpredict/internal/nfvsim"
	"nfvpredict/internal/pipeline"
	"nfvpredict/internal/ticket"
)

// tinyEnv builds a minimal dataset that exercises every figure path fast.
func tinyEnv(t *testing.T) (*nfvsim.Trace, *pipeline.Dataset, nfvsim.Config, pipeline.Config) {
	t.Helper()
	cfg := nfvsim.TestConfig()
	cfg.NumVPEs = 5
	cfg.Months = 4
	cfg.NumPPEs = 2
	cfg.UpdateMonth = 2
	cfg.MeanFaultGapHours = 250
	d, err := nfvsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := d.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ds := pipeline.BuildDataset(tr, cfg.Start, cfg.Months)
	pcfg := ModelPipelineConfig()
	pcfg.LSTM.Hidden = []int{14}
	pcfg.LSTM.Epochs = 1
	pcfg.LSTM.OverSampleRounds = 0
	pcfg.LSTM.MaxWindowsPerEpoch = 400
	pcfg.AE.Epochs = 2
	pcfg.OCSVM.Iters = 800
	pcfg.SweepPoints = 12
	return tr, ds, cfg, pcfg
}

func TestStatsFiguresSmoke(t *testing.T) {
	tr, ds, cfg, _ := tinyEnv(t)
	var buf bytes.Buffer

	rows := Fig1a(&buf, tr, cfg.Start, cfg.Months)
	if len(rows) != cfg.Months || !strings.Contains(buf.String(), "Maintenance") {
		t.Fatalf("Fig1a: %d rows\n%s", len(rows), buf.String())
	}

	buf.Reset()
	cdf, cps := Fig1b(&buf, tr)
	if len(cdf) == 0 || cps[1] < 0 || !strings.Contains(buf.String(), "CDF") {
		t.Fatalf("Fig1b: %v %v", cdf, cps)
	}

	buf.Reset()
	cells, maxBin := Fig2(&buf, tr, cfg.Start, cfg.Months)
	if cells == 0 || maxBin < 1 {
		t.Fatalf("Fig2: cells=%d maxBin=%d", cells, maxBin)
	}

	buf.Reset()
	medians := Fig3(&buf, ds)
	if len(medians) != cfg.NumVPEs {
		t.Fatalf("Fig3: %v", medians)
	}
	for v, m := range medians {
		if m < 0 || m > 1 {
			t.Fatalf("Fig3 median out of range: %s=%v", v, m)
		}
	}

	buf.Reset()
	preMin, pure := UpdateShift(&buf, ds, tr, cfg.UpdateMonth)
	if preMin <= pure {
		t.Fatalf("update shift should drop: pre-min %.2f vs pure %.2f", preMin, pure)
	}

	buf.Reset()
	reduction := Volume(&buf, tr)
	if reduction < 0.4 || reduction > 0.95 {
		t.Fatalf("volume reduction %.2f", reduction)
	}
}

func TestModelFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("model figures in -short mode")
	}
	_, ds, cfg, pcfg := tinyEnv(t)

	best, err := Fig5(io.Discard, ds, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(best) != 3 || best[24*time.Hour].F <= 0 {
		t.Fatalf("Fig5: %+v", best)
	}

	series, err := Fig7(io.Discard, ds, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("Fig7 variants: %d", len(series))
	}
	for v, mms := range series {
		if len(mms) != ds.Months-1 {
			t.Fatalf("Fig7 %v: %d months", v, len(mms))
		}
	}

	tds, err := Fig8(io.Discard, ds, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tds) != 6 {
		t.Fatalf("Fig8 rows: %d", len(tds))
	}
	for _, td := range tds {
		for i := 1; i < len(td.Rates); i++ {
			if td.Rates[i] < td.Rates[i-1] {
				t.Fatalf("Fig8 rates must be cumulative: %+v", td)
			}
		}
	}
	_ = cfg
}

func TestFig6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("model figures in -short mode")
	}
	_, ds, _, pcfg := tinyEnv(t)
	best, err := Fig6(io.Discard, ds, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(best) != 3 {
		t.Fatalf("Fig6: %+v", best)
	}
	for m, b := range best {
		if b.F < 0 || b.F > 1 {
			t.Fatalf("Fig6 %s: F=%v", m, b.F)
		}
	}
}

// The stable-period system (no software update) must reach a strong
// operating point — the regression guard for the paper's P=0.80/R=0.81.
func TestStablePeriodOperatingPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("full model run in -short mode")
	}
	cfg := ModelSimConfig()
	cfg.Months = 6
	cfg.UpdateMonth = -1
	d, err := nfvsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := d.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ds := pipeline.BuildDataset(tr, cfg.Start, cfg.Months)
	best, err := Fig5(io.Discard, ds, ModelPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := best[24*time.Hour]
	t.Logf("stable-period operating point: P=%.2f R=%.2f F=%.2f fa/day=%.2f (paper: 0.80/0.81, 0.6)",
		b.Precision, b.Recall, b.F, b.FalseAlarmsPerDay)
	if b.F < 0.7 {
		t.Errorf("stable-period F=%.2f below regression floor 0.70", b.F)
	}
	if b.Precision < 0.55 || b.Recall < 0.7 {
		t.Errorf("stable-period operating point too weak: P=%.2f R=%.2f", b.Precision, b.Recall)
	}
}

func TestReductionSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("reduction sweep in -short mode")
	}
	cfg := nfvsim.TestConfig()
	cfg.NumVPEs = 6
	cfg.Months = 7
	cfg.UpdateMonth = 3
	cfg.MeanFaultGapHours = 220
	d, err := nfvsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := d.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ds := pipeline.BuildDataset(tr, cfg.Start, cfg.Months)
	pcfg := ModelPipelineConfig()
	pcfg.LSTM.Hidden = []int{14}
	pcfg.LSTM.Epochs = 1
	pcfg.LSTM.OverSampleRounds = 0
	pcfg.LSTM.MaxWindowsPerEpoch = 400
	clusterRows, adaptRows, err := Reduction(io.Discard, ds, pcfg, cfg.UpdateMonth, cfg.UpdateMonth)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusterRows) != 4 || len(adaptRows) != 5 {
		t.Fatalf("rows: %d %d", len(clusterRows), len(adaptRows))
	}
}

func TestConfigsAreReasonable(t *testing.T) {
	s := StatsSimConfig()
	if s.NumVPEs != 38 || s.Months != 18 || s.NumPPEs == 0 {
		t.Fatalf("stats config should mirror the paper with a pPE fleet: %+v", s)
	}
	m := ModelSimConfig()
	if m.UpdateMonth < 2 || m.UpdateMonth >= m.Months-2 {
		t.Fatalf("model config must leave room before and after the update: %+v", m)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = ticket.Circuit
}
