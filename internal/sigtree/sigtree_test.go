package sigtree

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := map[string][]string{
		"interface ge-0/0/1 down":       {"interface", "ge-0/0/1", "down"},
		"a,b=c [d] (e) \"f\"; g":        {"a", "b", "c", "d", "e", "f", "g"},
		"   spaced\tout\nlines ":        {"spaced", "out", "lines"},
		"":                              nil,
		"BGP peer 10.0.0.1: state Idle": {"BGP", "peer", "10.0.0.1", "state", "Idle"},
	}
	for in, want := range cases {
		got := Tokenize(in)
		if len(got) != len(want) {
			t.Fatalf("Tokenize(%q)=%v want %v", in, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Tokenize(%q)=%v want %v", in, got, want)
			}
		}
	}
}

func TestIsVariableToken(t *testing.T) {
	variables := []string{
		"10.0.0.1", "192.168.255.254", "2001:db8::1", "fe80::1",
		"ge-0/0/1", "xe-1/2/3.100", "12:30:01", "12345", "99",
		"0x1f", "45C", "00:1b:44:11:3a:b7", "4/8",
	}
	for _, tok := range variables {
		if !IsVariableToken(tok) {
			t.Errorf("IsVariableToken(%q)=false, want true", tok)
		}
	}
	structural := []string{
		"interface", "down", "BGP", "peer", "state", "Idle", "error",
		"chassis-control", "kernel", "daemon", "face", "dead", "up",
	}
	for _, tok := range structural {
		if IsVariableToken(tok) {
			t.Errorf("IsVariableToken(%q)=true, want false", tok)
		}
	}
}

func TestLearnAssignsStableIDs(t *testing.T) {
	tr := New()
	a := tr.Learn("interface ge-0/0/1 down")
	b := tr.Learn("BGP peer 10.0.0.1 state change")
	a2 := tr.Learn("interface xe-2/0/0 down")
	if a.ID != 0 || b.ID != 1 {
		t.Fatalf("IDs not assigned in order: %d %d", a.ID, b.ID)
	}
	if a2.ID != a.ID {
		t.Fatalf("same-shape messages got different templates: %d vs %d", a2.ID, a.ID)
	}
	if a.Count != 2 {
		t.Fatalf("count not incremented: %d", a.Count)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len=%d want 2", tr.Len())
	}
}

func TestVariableFieldsBecomeWildcards(t *testing.T) {
	tr := New()
	tpl := tr.Learn("interface ge-0/0/1 down")
	if tpl.Tokens[1] != Wildcard {
		t.Fatalf("interface name should be masked: %v", tpl.Tokens)
	}
	if tpl.Tokens[0] != "interface" || tpl.Tokens[2] != "down" {
		t.Fatalf("structure tokens must survive: %v", tpl.Tokens)
	}
	if tpl.String() != "interface * down" {
		t.Fatalf("String()=%q", tpl.String())
	}
}

func TestMergeGeneralizesDisagreeingPositions(t *testing.T) {
	tr := New(WithSimThreshold(0.6))
	tr.Learn("service restart requested by operator alice")
	tpl := tr.Learn("service restart requested by operator bob")
	if tpl.Tokens[5] != Wildcard {
		t.Fatalf("operator name should generalize to wildcard: %v", tpl.Tokens)
	}
	if tr.Len() != 1 {
		t.Fatalf("messages should share one template, got %d", tr.Len())
	}
}

func TestDissimilarMessagesGetDistinctTemplates(t *testing.T) {
	tr := New()
	tr.Learn("BGP session established with peer")
	tr.Learn("fan tray removed from slot now")
	if tr.Len() != 2 {
		t.Fatalf("unrelated messages merged: %d templates", tr.Len())
	}
}

func TestDifferentLengthsNeverMerge(t *testing.T) {
	tr := New()
	a := tr.Learn("link up")
	b := tr.Learn("link up on port")
	if a.ID == b.ID {
		t.Fatal("different token counts must not share a template")
	}
}

func TestMatchDoesNotLearn(t *testing.T) {
	tr := New()
	tr.Learn("interface ge-0/0/1 down")
	tpl, ok := tr.Match("interface xe-9/9/9 down")
	if !ok || tpl.ID != 0 {
		t.Fatalf("Match failed: %v %v", tpl, ok)
	}
	if tpl.Count != 1 {
		t.Fatalf("Match must not increment count: %d", tpl.Count)
	}
	if _, ok := tr.Match("completely novel message here"); ok {
		t.Fatal("Match invented a template")
	}
	if tr.Len() != 1 {
		t.Fatal("Match must not create templates")
	}
}

func TestWildcardLeadRebucketing(t *testing.T) {
	tr := New(WithSimThreshold(0.6))
	// Force the lead token to generalize.
	tr.Learn("alpha common tail here xx")
	tr.Learn("beta common tail here xx")
	// Now a third lead must still find the generalized template.
	tpl := tr.Learn("gamma common tail here xx")
	if tr.Len() != 1 {
		t.Fatalf("expected single generalized template, got %d", tr.Len())
	}
	if tpl.Tokens[0] != Wildcard {
		t.Fatalf("lead should be wildcard: %v", tpl.Tokens)
	}
}

func TestMaxTemplatesOverflow(t *testing.T) {
	tr := New(WithMaxTemplates(3))
	tr.Learn("aaa bbb ccc")
	tr.Learn("ddd eee fff ggg")
	tr.Learn("hhh iii")
	over1 := tr.Learn("jjj kkk lll mmm nnn")
	over2 := tr.Learn("ooo ppp qqq rrr sss ttt")
	if over1.ID != over2.ID {
		t.Fatalf("overflow messages must share the catch-all template: %d vs %d", over1.ID, over2.ID)
	}
	if over1.Count != 2 {
		t.Fatalf("overflow count=%d want 2", over1.Count)
	}
	if tr.Len() != 4 { // 3 + overflow
		t.Fatalf("Len=%d want 4", tr.Len())
	}
}

func TestEmptyMessage(t *testing.T) {
	tr := New()
	tpl := tr.Learn("")
	if tpl == nil || len(tpl.Tokens) != 1 || tpl.Tokens[0] != Wildcard {
		t.Fatalf("empty message should map to wildcard template: %+v", tpl)
	}
	tpl2 := tr.Learn("   ")
	if tpl2.ID != tpl.ID {
		t.Fatal("whitespace-only should share the empty template")
	}
}

func TestTemplateByID(t *testing.T) {
	tr := New()
	tr.Learn("one two three")
	if tr.TemplateByID(0) == nil {
		t.Fatal("TemplateByID(0) nil")
	}
	if tr.TemplateByID(-1) != nil || tr.TemplateByID(99) != nil {
		t.Fatal("out-of-range IDs must return nil")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := New(WithSimThreshold(0.7), WithMaxTemplates(100))
	msgs := []string{
		"interface ge-0/0/1 down",
		"interface xe-1/0/0 down",
		"BGP peer 10.0.0.1 state Idle",
		"chassis fan 3 failed",
	}
	for _, m := range msgs {
		tr.Learn(m)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != tr.Len() {
		t.Fatalf("Len mismatch: %d vs %d", loaded.Len(), tr.Len())
	}
	// The loaded tree must match the same messages to the same IDs.
	for _, m := range msgs {
		want, ok1 := tr.Match(m)
		got, ok2 := loaded.Match(m)
		if ok1 != ok2 || (ok1 && want.ID != got.ID) {
			t.Fatalf("Match(%q) diverged after reload", m)
		}
	}
}

func TestLoadCorrupt(t *testing.T) {
	if _, err := Load(strings.NewReader("not gob")); err == nil {
		t.Fatal("expected error")
	}
}

// Learning the same message twice must be idempotent on template shape.
func TestLearnIdempotent(t *testing.T) {
	f := func(words []string) bool {
		if len(words) == 0 || len(words) > 10 {
			return true
		}
		var clean []string
		for _, w := range words {
			w = strings.Map(func(r rune) rune {
				if r >= 'a' && r <= 'z' {
					return r
				}
				return -1
			}, strings.ToLower(w))
			if w != "" {
				clean = append(clean, w)
			}
		}
		msg := strings.Join(clean, " ")
		tr := New()
		a := tr.Learn(msg)
		b := tr.Learn(msg)
		return a.ID == b.ID && b.Count == 2 && tr.Len() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Counts must sum to the number of Learn calls.
func TestCountConservation(t *testing.T) {
	tr := New()
	n := 0
	for i := 0; i < 50; i++ {
		tr.Learn(fmt.Sprintf("event number %d on port ge-0/0/%d", i, i%4))
		n++
	}
	var total int
	for _, tpl := range tr.Templates() {
		total += tpl.Count
	}
	if total != n {
		t.Fatalf("count conservation violated: %d vs %d", total, n)
	}
}

// Realistic router syslog corpus: the tree must produce far fewer
// templates than messages and match formatted variants consistently.
func TestRouterCorpusCompression(t *testing.T) {
	tr := New()
	var msgs []string
	for i := 0; i < 300; i++ {
		msgs = append(msgs,
			fmt.Sprintf("SNMP_TRAP_LINK_DOWN ifIndex %d ifAdminStatus up ifOperStatus down snmp-interface ge-0/0/%d", 500+i, i%8),
			fmt.Sprintf("bgp_read_v4_update peer 10.1.%d.%d NOTIFICATION received", i%256, (i*7)%256),
			fmt.Sprintf("CHASSISD_SNMP_TRAP fan %d status check", i%6),
			fmt.Sprintf("kernel temperature sensor reads %dC on fpc %d", 30+i%40, i%4),
		)
	}
	for _, m := range msgs {
		tr.Learn(m)
	}
	if tr.Len() > 12 {
		t.Fatalf("template explosion: %d templates for 4 message families", tr.Len())
	}
	// All four families must be distinguishable.
	ids := map[int]bool{}
	for _, m := range msgs[:4] {
		tpl, ok := tr.Match(m)
		if !ok {
			t.Fatalf("unmatched message %q", m)
		}
		ids[tpl.ID] = true
	}
	if len(ids) != 4 {
		t.Fatalf("families collapsed: %d distinct IDs", len(ids))
	}
}

func BenchmarkLearn(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Learn(fmt.Sprintf("SNMP_TRAP_LINK_DOWN ifIndex %d ifOperStatus down interface ge-0/0/%d", i%1000, i%8))
	}
}

func BenchmarkMatch(b *testing.B) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Learn(fmt.Sprintf("family %d message with port ge-0/0/%d and count %d", i%10, i%8, i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Match("family 3 message with port ge-0/0/5 and count 77")
	}
}
