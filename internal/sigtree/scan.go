package sigtree

// TokenBuf is per-worker scratch for the interned prepare path: the symbol
// output slice and the lowercase byte buffer both grow once and are reused
// across messages. A TokenBuf must not be shared between goroutines; the
// tree itself may be (prepare only touches the lock-free symbol table).
type TokenBuf struct {
	syms []uint32
	low  []byte
}

// PrepareSyms is the interned counterpart of PrepareTokens: it tokenizes,
// masks, ASCII-lowercases, and interns msg in one pass over the raw bytes,
// with no per-token copies — structural tokens are looked up in the symbol
// table straight from a reusable lowercase buffer. The returned slice is
// tb's scratch, valid until the next PrepareSyms/AppendSyms call on tb.
//
// ok=false means the symbol table is full and some token could not be
// interned; the caller must fall back to PrepareTokens+LearnTokens, which
// implement identical semantics over strings.
func (t *Tree) PrepareSyms(msg string, tb *TokenBuf) ([]uint32, bool) {
	syms, ok := t.AppendSyms(tb.syms[:0], msg, tb)
	tb.syms = syms[:0:cap(syms)]
	return syms, ok
}

// AppendSyms appends msg's prepared symbols to dst and returns the grown
// slice — the arena form of PrepareSyms for callers batching many messages
// into one backing array (offsets into dst stay valid across growth). On
// ok=false dst is returned truncated to its original length.
func (t *Tree) AppendSyms(dst []uint32, msg string, tb *TokenBuf) ([]uint32, bool) {
	n0 := len(dst)
	n := len(msg)
	i := 0
	for i < n {
		for i < n && isSepByte(msg[i]) {
			i++
		}
		if i >= n {
			break
		}
		j := i
		for j < n && !isSepByte(msg[j]) {
			j++
		}
		// Trailing "word:" colons are separators; interior colons (IPv6,
		// MACs, hh:mm:ss, interface unit specs) stay in the token.
		end := j
		for end > i && msg[end-1] == ':' {
			end--
		}
		if end > i {
			tok := msg[i:end]
			var id uint32
			if IsVariableToken(tok) {
				id = wildcardID
			} else {
				tb.low = appendLowerASCII(tb.low[:0], tok)
				var ok bool
				id, ok = t.syms.intern(tb.low)
				if !ok {
					return dst[:n0], false
				}
			}
			dst = append(dst, id)
		}
		i = j
	}
	if len(dst) == n0 {
		// Canonical empty form, mirroring PrepareTokens.
		dst = append(dst, wildcardID)
	}
	return dst, true
}

// isSepByte reports whether b splits tokens. Colons are handled by the
// trailing-strip rule in the scanners, not here. All separators are ASCII,
// so byte-wise scanning slices multi-byte UTF-8 runes correctly.
func isSepByte(b byte) bool {
	switch b {
	case ' ', '\t', '\n', '\r', ',', '=', '[', ']', '(', ')', '"', ';':
		return true
	}
	return false
}

// appendLowerASCII appends s to dst with ASCII letters lowercased. The
// reference path (maskTokens) applies the same ASCII-only fold, so the two
// paths agree byte-for-byte on every input, not just the ASCII corpus.
func appendLowerASCII(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}

// lowerASCII is appendLowerASCII for the string path: it returns s itself
// when nothing folds, so already-lowercase tokens cost no copy.
func lowerASCII(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			b := make([]byte, len(s))
			copy(b, s)
			for j := i; j < len(b); j++ {
				if b[j] >= 'A' && b[j] <= 'Z' {
					b[j] += 'a' - 'A'
				}
			}
			return string(b)
		}
	}
	return s
}
