// Package sigtree extracts message templates (signatures) from raw,
// free-form syslog text, implementing the signature-tree approach of Qiu
// et al., "What happened in my network: mining network events from router
// syslogs" (IMC 2010), which the paper uses to turn unstructured vPE
// syslogs into the structured (template, inter-arrival) tuples its LSTM
// consumes (§4.2).
//
// The extractor works in two stages, mirroring the signature tree:
//
//  1. Tokenization with variable-field masking: tokens that look like
//     values rather than message structure — numbers, IP addresses,
//     hex strings, interface names, quoted strings — are replaced by a
//     wildcard before tree insertion.
//  2. Bucketing and similarity merge: messages are bucketed by token
//     count (the coarse first-level split of the signature tree), then
//     merged into the best-matching existing signature when the fraction
//     of equal tokens meets a threshold; positions that disagree become
//     wildcards.
//
// Templates receive stable small-integer IDs in discovery order, which
// downstream models use directly as class indices.
//
// Two equivalent front ends feed the tree. The string path
// (PrepareTokens+LearnTokens) is the reference: plain []string tokens,
// position-wise string comparison. The interned path
// (PrepareSyms+LearnSyms) is the serving hot path: tokens are interned
// into a per-tree symbol table (symtab.go) by a byte-oriented scanner
// (scan.go) that never copies per token, and matching compares uint32
// symbol IDs. Every template carries both representations, kept in sync
// by construction, so either path may be used on the same tree and
// serialization (Save/Load, Fingerprint) always sees strings — the wire
// format is byte-identical to the pre-interning one.
package sigtree

import (
	"encoding/gob"
	"fmt"
	"io"
	"strings"
)

// Wildcard is the placeholder token for variable fields in a template.
const Wildcard = "*"

// Template is one learned log signature.
type Template struct {
	// ID is the stable small-integer identifier, assigned in discovery
	// order starting at 0.
	ID int
	// Tokens is the token sequence with Wildcard at variable positions.
	Tokens []string
	// Count is the number of messages matched to this template so far.
	Count int

	// syms mirrors Tokens as interned symbol IDs (wildcardID at masked
	// positions, invalidSym where the table was full at creation). It is
	// unexported, so gob serialization — and therefore checkpoint and
	// bundle bytes — is unchanged by its existence.
	syms []uint32
}

// String renders the template with wildcards, e.g. "interface * down".
func (t *Template) String() string { return strings.Join(t.Tokens, " ") }

// Tree learns and matches log templates. Learning is not safe for
// concurrent use; callers that share a Tree across goroutines must
// synchronize Learn/LearnTokens/LearnSyms/Match. PrepareSyms/AppendSyms
// are the exception: they touch only the lock-free symbol table and may
// run concurrently with each other and with learning.
type Tree struct {
	// SimThreshold is the minimum fraction of token positions that must
	// match an existing signature for a message to merge into it.
	simThreshold float64
	// MaxTemplates caps the number of distinct templates; once reached,
	// unmatched messages map to the overflow template.
	maxTemplates int

	templates []*Template
	// buckets groups template indices by token count for candidate
	// lookup; within a bucket the best similarity match wins. Token
	// count is the coarse split the signature tree's first level makes.
	buckets map[int][]int
	// overflow is the catch-all template ID once maxTemplates is hit,
	// or -1 if not yet allocated.
	overflow int

	// syms interns token strings to the uint32 IDs the hot path compares.
	syms symTab
}

// Option configures a Tree.
type Option func(*Tree)

// WithSimThreshold sets the merge similarity threshold (default 0.6).
func WithSimThreshold(th float64) Option {
	return func(t *Tree) { t.simThreshold = th }
}

// WithMaxTemplates caps the number of distinct templates (default 1024).
func WithMaxTemplates(n int) Option {
	return func(t *Tree) { t.maxTemplates = n }
}

// New returns an empty signature tree.
func New(opts ...Option) *Tree {
	t := &Tree{
		simThreshold: 0.6,
		maxTemplates: 1024,
		buckets:      make(map[int][]int),
		overflow:     -1,
	}
	t.syms.init()
	for _, o := range opts {
		o(t)
	}
	return t
}

// Len returns the number of learned templates.
func (t *Tree) Len() int { return len(t.templates) }

// Templates returns the learned templates in ID order. The returned slice
// and its elements are owned by the tree; callers must not mutate them.
func (t *Tree) Templates() []*Template { return t.templates }

// TemplateByID returns the template with the given ID, or nil.
func (t *Tree) TemplateByID(id int) *Template {
	if id < 0 || id >= len(t.templates) {
		return nil
	}
	return t.templates[id]
}

// SymCount returns the number of interned token symbols (wildcard
// included) — an observability hook for the hot path's vocabulary size.
func (t *Tree) SymCount() int { return t.syms.size() }

// Learn matches msg against the tree, creating or refining a template as
// needed, increments its count, and returns it.
func (t *Tree) Learn(msg string) *Template {
	return t.LearnTokens(PrepareTokens(msg))
}

// PrepareTokens tokenizes and masks msg into the canonical form LearnTokens
// consumes. It is a pure function of msg, so concurrent shard workers run
// it outside the tree lock — tokenization is the expensive half of Learn —
// and only the match/merge step needs serialization. PrepareSyms is the
// allocation-free interned equivalent.
func PrepareTokens(msg string) []string {
	tokens := maskTokens(Tokenize(msg))
	if len(tokens) == 0 {
		tokens = []string{Wildcard}
	}
	return tokens
}

// LearnTokens is Learn over tokens already prepared with PrepareTokens.
// Like every learning method it requires external synchronization; the
// caller must not mutate tokens afterwards (a new template takes
// ownership).
func (t *Tree) LearnTokens(tokens []string) *Template {
	if idx, merge := t.findBestTokens(tokens); idx >= 0 {
		tpl := t.templates[idx]
		if merge {
			mergeIntoTokens(tpl, tokens)
		}
		tpl.Count++
		return tpl
	}
	if len(t.templates) >= t.maxTemplates {
		return t.overflowTemplate()
	}
	syms := make([]uint32, len(tokens))
	for i, tok := range tokens {
		id, ok := t.syms.internString(tok)
		if !ok {
			id = invalidSym
		}
		syms[i] = id
	}
	tpl := &Template{ID: len(t.templates), Tokens: tokens, Count: 1, syms: syms}
	t.templates = append(t.templates, tpl)
	t.buckets[len(tokens)] = append(t.buckets[len(tokens)], tpl.ID)
	return tpl
}

// LearnSyms is LearnTokens over symbols prepared with PrepareSyms — the
// integer-compare hot path. It allocates only when the tree grows a new
// template (the symbols are copied then, so the caller's scratch slice
// stays reusable). Requires the same external synchronization as
// LearnTokens; PrepareSyms itself does not.
func (t *Tree) LearnSyms(syms []uint32) *Template {
	if idx, merge := t.findBestSyms(syms); idx >= 0 {
		tpl := t.templates[idx]
		if merge {
			mergeIntoSyms(t, tpl, syms)
		}
		tpl.Count++
		return tpl
	}
	if len(t.templates) >= t.maxTemplates {
		return t.overflowTemplate()
	}
	ss := make([]uint32, len(syms))
	copy(ss, syms)
	tokens := make([]string, len(syms))
	for i, id := range syms {
		tokens[i] = t.syms.str(id)
	}
	tpl := &Template{ID: len(t.templates), Tokens: tokens, Count: 1, syms: ss}
	t.templates = append(t.templates, tpl)
	t.buckets[len(syms)] = append(t.buckets[len(syms)], tpl.ID)
	return tpl
}

// Match finds the template for msg without learning. The boolean is false
// when no existing template is similar enough.
func (t *Tree) Match(msg string) (*Template, bool) {
	tokens := maskTokens(Tokenize(msg))
	if len(tokens) == 0 {
		tokens = []string{Wildcard}
	}
	if idx, _ := t.findBestTokens(tokens); idx >= 0 {
		return t.templates[idx], true
	}
	return nil, false
}

// findBestTokens returns the index of the best-matching template and
// whether the match requires a merge (some positions disagree), or
// (-1, false). String comparison — the reference path.
func (t *Tree) findBestTokens(tokens []string) (int, bool) {
	bestIdx, bestSim := -1, 0.0
	for _, idx := range t.buckets[len(tokens)] {
		sim := similarity(t.templates[idx].Tokens, tokens)
		if sim > bestSim {
			bestSim, bestIdx = sim, idx
		}
	}
	if bestIdx >= 0 && bestSim >= t.simThreshold {
		return bestIdx, bestSim < 1
	}
	return -1, false
}

// findBestSyms is findBestTokens on interned symbols. Symbol equality is
// string equality (interning is injective; invalidSym positions match
// nothing, see invalidSym), so both paths pick the same template.
func (t *Tree) findBestSyms(syms []uint32) (int, bool) {
	bestIdx, bestSim := -1, 0.0
	for _, idx := range t.buckets[len(syms)] {
		sim := symSimilarity(t.templates[idx].syms, syms)
		if sim > bestSim {
			bestSim, bestIdx = sim, idx
		}
	}
	if bestIdx >= 0 && bestSim >= t.simThreshold {
		return bestIdx, bestSim < 1
	}
	return -1, false
}

// overflowTemplate lazily allocates the catch-all "other" template.
func (t *Tree) overflowTemplate() *Template {
	if t.overflow >= 0 {
		tpl := t.templates[t.overflow]
		tpl.Count++
		return tpl
	}
	tpl := &Template{ID: len(t.templates), Tokens: []string{Wildcard}, Count: 1, syms: []uint32{wildcardID}}
	t.templates = append(t.templates, tpl)
	t.overflow = tpl.ID
	return tpl
}

// similarity is the fraction of positions where the two token slices agree
// exactly (wildcard matches only wildcard). Counting template wildcards as
// automatic agreement would let heavily merged templates match everything
// and decay into all-wildcard attractors; because variable fields are
// masked before comparison, instances of one family are token-identical
// and still score 1.0 against their template.
func similarity(a, b []string) float64 {
	if len(a) != len(b) {
		return 0
	}
	if len(a) == 0 {
		return 1
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// symSimilarity is similarity over symbol IDs: one integer compare per
// position instead of a length check plus memcmp.
func symSimilarity(a, b []uint32) float64 {
	if len(a) != len(b) {
		return 0
	}
	if len(a) == 0 {
		return 1
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] && a[i] != invalidSym {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// mergeIntoTokens rewrites tpl so disagreeing positions become wildcards,
// in both representations.
func mergeIntoTokens(tpl *Template, tokens []string) {
	for i := range tpl.Tokens {
		if tpl.Tokens[i] != tokens[i] {
			tpl.Tokens[i] = Wildcard
			tpl.syms[i] = wildcardID
		}
	}
}

// mergeIntoSyms is mergeIntoTokens on the symbol path.
func mergeIntoSyms(t *Tree, tpl *Template, syms []uint32) {
	for i := range tpl.syms {
		if tpl.syms[i] != syms[i] || tpl.syms[i] == invalidSym {
			tpl.syms[i] = wildcardID
			tpl.Tokens[i] = Wildcard
		}
	}
}

// Tokenize splits a raw log message into tokens on whitespace, additionally
// separating common punctuation that glues fields to structure (commas,
// equals, brackets, quotes). Colons are kept inside tokens — IPv6
// addresses, MAC addresses, timestamps, interface unit specs like
// "ge-0/0/1:0" survive as single tokens — but trailing colons ("word:",
// "10.0.0.1:") are stripped as separators. Tokens are substrings of msg;
// no per-token copies are made.
func Tokenize(msg string) []string {
	var out []string
	n := len(msg)
	i := 0
	for i < n {
		for i < n && isSepByte(msg[i]) {
			i++
		}
		if i >= n {
			break
		}
		j := i
		for j < n && !isSepByte(msg[j]) {
			j++
		}
		end := j
		for end > i && msg[end-1] == ':' {
			end--
		}
		if end > i {
			out = append(out, msg[i:end])
		}
		i = j
	}
	return out
}

// maskTokens replaces variable-looking tokens with the wildcard and
// ASCII-lowercases the rest — the same fold the interned scanner applies,
// so the two paths produce identical token sequences on every input.
func maskTokens(tokens []string) []string {
	out := make([]string, len(tokens))
	for i, tok := range tokens {
		if IsVariableToken(tok) {
			out[i] = Wildcard
		} else {
			out[i] = lowerASCII(tok)
		}
	}
	return out
}

// IsVariableToken reports whether tok looks like a value rather than log
// structure: pure numbers, hex strings, IPv4/IPv6 addresses, interface
// names with unit numbers, durations, percentages.
func IsVariableToken(tok string) bool {
	if tok == "" {
		return false
	}
	digits, hexish, letters, dots, slashes, colons, dashes := 0, 0, 0, 0, 0, 0, 0
	for _, r := range tok {
		switch {
		case r >= '0' && r <= '9':
			digits++
			hexish++
		case (r >= 'a' && r <= 'f') || (r >= 'A' && r <= 'F'):
			letters++
			hexish++
		case (r >= 'g' && r <= 'z') || (r >= 'G' && r <= 'Z'):
			letters++
		case r == '.':
			dots++
		case r == '/':
			slashes++
		case r == ':':
			colons++
		case r == '-':
			dashes++
		case r == '%' || r == '+':
			// counts as neither
		default:
			letters++
		}
	}
	if digits == 0 {
		// Pure-hex words like "dead" or "face" stay structural; only
		// digit-bearing tokens can be variables, except long hex with
		// colons (MAC addresses).
		return colons >= 2 && hexish >= 6 && letters == hexish-digits
	}
	// Any token containing digits plus field punctuation is a value:
	// 10.0.0.1, ge-0/0/1, 2001:db8::1, 12:30:01.
	if dots > 0 || slashes > 0 || colons > 0 {
		return true
	}
	// Digit-dominated tokens (counters, PIDs, temperatures like 45C).
	return digits >= letters || (dashes > 0 && digits > 0)
}

// Fingerprint returns an FNV-1a hash over the tree's exact template set —
// every template's ID, token sequence, and match count. Two trees
// fingerprint equal iff they would assign identical template IDs to
// identical inputs and have seen the same history, so artifacts that
// record template IDs (the lifecycle spool) can detect at load time that
// they were written against this very tree and not some other lineage.
// The fingerprint changes as the tree learns (growth and wildcard merges
// both count), matching the tree's not-concurrency-safe contract: compute
// it under whatever lock guards Learn. Symbol IDs are deliberately
// excluded: they depend on intern order, which concurrent preparation
// does not make deterministic — token strings are the identity.
func (t *Tree) Fingerprint() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * 1099511628211
			v >>= 8
		}
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
		h = (h ^ 0xff) * 1099511628211 // terminator so "ab","c" ≠ "a","bc"
	}
	for _, tpl := range t.templates {
		mix(uint64(tpl.ID))
		mix(uint64(tpl.Count))
		for _, tok := range tpl.Tokens {
			mixStr(tok)
		}
	}
	mix(uint64(int64(t.overflow)))
	return h
}

// treeSnapshot is the gob wire form of a Tree. Template's symbol mirror is
// unexported and thus invisible to gob: the bytes Save writes are
// byte-identical to the pre-interning format, which the checkpoint and
// bundle formats require.
type treeSnapshot struct {
	SimThreshold float64
	MaxTemplates int
	Templates    []Template
	Overflow     int
}

// Save serializes the tree to w using gob.
func (t *Tree) Save(w io.Writer) error {
	snap := treeSnapshot{
		SimThreshold: t.simThreshold,
		MaxTemplates: t.maxTemplates,
		Overflow:     t.overflow,
	}
	for _, tpl := range t.templates {
		snap.Templates = append(snap.Templates, *tpl)
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("sigtree: encoding tree: %w", err)
	}
	return nil
}

// Load reconstructs a tree saved with Save, re-interning every template
// token into a fresh symbol table (symbol IDs are per-process; only the
// strings are wire format).
func Load(r io.Reader) (*Tree, error) {
	var snap treeSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("sigtree: decoding tree: %w", err)
	}
	t := New(WithSimThreshold(snap.SimThreshold), WithMaxTemplates(snap.MaxTemplates))
	t.overflow = snap.Overflow
	for i := range snap.Templates {
		cp := snap.Templates[i]
		cp.syms = make([]uint32, len(cp.Tokens))
		for j, tok := range cp.Tokens {
			id, ok := t.syms.internString(tok)
			if !ok {
				id = invalidSym
			}
			cp.syms[j] = id
		}
		t.templates = append(t.templates, &cp)
		t.buckets[len(cp.Tokens)] = append(t.buckets[len(cp.Tokens)], cp.ID)
	}
	return t, nil
}
