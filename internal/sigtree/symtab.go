package sigtree

import (
	"sync"
	"sync/atomic"
)

// wildcardID is the reserved symbol ID of Wildcard; the table is seeded
// with it so masked positions compare as a single integer everywhere.
const wildcardID uint32 = 0

// invalidSym marks a template position whose token could not be interned
// (the table hit symLimit). It is never produced for message tokens — the
// prepare path reports failure instead and the caller falls back to the
// string path — so on the symbol path an invalidSym position simply never
// matches, which is correct: a message token equal to that string would
// itself have failed to intern.
const invalidSym = ^uint32(0)

// symLimit caps the symbol table. Structural vocabulary is small (variable
// fields are masked before interning), so the cap exists only to bound
// memory against adversarial input; past it the tree keeps working on the
// legacy string path. A var only so the full-table fallback is testable
// without a million interns; nothing outside tests may write it.
var symLimit = 1 << 20

// symSnap is one published generation of the symbol table. Readers load it
// with a single atomic pointer read and then use plain map/slice lookups.
// ids may lag the authoritative table by a bounded fraction (see publish
// thresholds); strs is always current to its length — generations share
// the backing array, and an element is written exactly once, before any
// snapshot whose length covers it is published.
type symSnap struct {
	ids  map[string]uint32
	strs []string
}

// symTab is an append-only string⇄uint32 intern table with a lock-free
// read path. Lookups cost one atomic load plus one map access (the
// map[string]uint32 lookup with a []byte key compiles to zero-copy).
// Misses fall into a mutex slow path over the authoritative map; the
// published map is refreshed (an O(vocab) copy) only when the stale
// fraction crosses 1/4, so intern cost stays amortized O(1) per token all
// the way to symLimit instead of going quadratic near it.
type symTab struct {
	mu sync.Mutex
	// auth is the authoritative token→ID map; strs its inverse. Both are
	// guarded by mu (strs additionally feeds snapshots: append-only, and
	// published lengths never cover unwritten elements).
	auth map[string]uint32
	strs []string
	// pending counts tokens interned since the last ids publish;
	// staleHits counts lock-path lookups that the published map missed.
	// Either crossing 1/4 of the vocabulary triggers a republish.
	pending   int
	staleHits int

	snap atomic.Pointer[symSnap]
}

// init seeds the table with the wildcard at ID 0.
func (st *symTab) init() {
	st.auth = map[string]uint32{Wildcard: wildcardID}
	st.strs = []string{Wildcard}
	st.publishLocked()
}

// publishLocked copies the authoritative map into a fresh snapshot.
// Caller holds mu (or is init's single-threaded constructor).
func (st *symTab) publishLocked() {
	ids := make(map[string]uint32, len(st.auth))
	for k, v := range st.auth {
		ids[k] = v
	}
	st.snap.Store(&symSnap{ids: ids, strs: st.strs})
	st.pending, st.staleHits = 0, 0
}

// intern returns the ID for the token bytes, adding it to the table when
// new. ok=false means the table is full; the caller must fall back to the
// string path for this message.
func (st *symTab) intern(tok []byte) (uint32, bool) {
	s := st.snap.Load()
	if id, ok := s.ids[string(tok)]; ok { // zero-copy map key conversion
		return id, true
	}
	if len(s.strs) >= symLimit && len(s.ids) == len(s.strs) {
		// Full AND the published map is complete, so the miss is real;
		// skip the mutex. (Stale published maps must still fall through —
		// the token may be interned but unpublished.)
		return 0, false
	}
	return st.slowIntern(string(tok))
}

// internString is intern for callers that already hold a string.
func (st *symTab) internString(tok string) (uint32, bool) {
	s := st.snap.Load()
	if id, ok := s.ids[tok]; ok {
		return id, true
	}
	if len(s.strs) >= symLimit && len(s.ids) == len(s.strs) {
		return 0, false
	}
	return st.slowIntern(tok)
}

// slowIntern consults the authoritative map under the mutex and appends
// genuinely new tokens. Republish policy: a fresh ids map is published
// when pending inserts or stale hits reach 64 + vocab/4, which amortizes
// the O(vocab) copy to O(1) per slow-path visit and bounds how long a
// recently interned token keeps paying the mutex.
func (st *symTab) slowIntern(tok string) (uint32, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if id, ok := st.auth[tok]; ok {
		st.staleHits++
		if st.staleHits >= 64+len(st.auth)>>2 {
			st.publishLocked()
		}
		return id, true
	}
	if len(st.strs) >= symLimit {
		// Terminal state: publish the complete map once so future misses
		// short-circuit without the mutex.
		if len(st.snap.Load().ids) != len(st.strs) {
			st.publishLocked()
		}
		return 0, false
	}
	id := uint32(len(st.strs))
	st.auth[tok] = id
	st.strs = append(st.strs, tok)
	st.pending++
	if st.pending >= 64+len(st.auth)>>2 {
		st.publishLocked()
	} else {
		// Publish the longer strs so str() resolves the new ID at once;
		// the ids map stays stale until the threshold trips.
		cur := st.snap.Load()
		st.snap.Store(&symSnap{ids: cur.ids, strs: st.strs})
	}
	return id, true
}

// str resolves an ID back to its string. Every ID handed out by intern is
// covered by the snapshot published before intern returned, so the bounds
// check only guards invalidSym placeholders.
func (st *symTab) str(id uint32) string {
	s := st.snap.Load()
	if int(id) < len(s.strs) {
		return s.strs[id]
	}
	return Wildcard
}

// size returns the number of interned symbols (wildcard included).
func (st *symTab) size() int {
	return len(st.snap.Load().strs)
}
