package sigtree

import (
	"bytes"
	"testing"
)

// TestFingerprintIdentity: identically grown trees fingerprint equal, and
// the fingerprint survives a Save/Load round trip (the checkpoint path the
// lifecycle spool validates against).
func TestFingerprintIdentity(t *testing.T) {
	grow := func() *Tree {
		tr := New()
		tr.Learn("interface ge-0/0/1 down")
		tr.Learn("interface ge-0/0/2 down")
		tr.Learn("bgp peer 10.0.0.1 established")
		return tr
	}
	a, b := grow(), grow()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identically grown trees fingerprint differently")
	}

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint changed across Save/Load")
	}
}

// TestFingerprintTracksLearning: growth, repeat matches (count bumps), and
// wildcard merges all move the fingerprint — any divergence in history
// means spooled template IDs may not be interpretable.
func TestFingerprintTracksLearning(t *testing.T) {
	tr := New()
	tr.Learn("ntp clock synchronized stratum 2")
	f0 := tr.Fingerprint()
	tr.Learn("fpc 0 cpu utilization 20 percent")
	f1 := tr.Fingerprint()
	if f0 == f1 {
		t.Fatal("new template did not change fingerprint")
	}
	tr.Learn("ntp clock synchronized stratum 2") // same template, count++
	if tr.Fingerprint() == f1 {
		t.Fatal("match count did not change fingerprint")
	}
}
