package sigtree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// internCorpus is a realistic mixed corpus: router syslog families with
// variable fields, colon-bearing tokens (IPv6, MACs, timestamps, interface
// unit specs), trailing "word:" separators, and punctuation glue.
func internCorpus() []string {
	var msgs []string
	for i := 0; i < 200; i++ {
		msgs = append(msgs,
			fmt.Sprintf("SNMP_TRAP_LINK_DOWN ifIndex %d ifOperStatus down interface ge-0/0/%d", 500+i, i%8),
			fmt.Sprintf("bgp peer 10.1.%d.%d: state change to Idle", i%256, (i*7)%256),
			fmt.Sprintf("mac learned 00:1b:44:11:3a:%02x on ge-0/0/%d:0", i%256, i%4),
			fmt.Sprintf("neighbor 2001:db8::%x expired at 12:30:%02d", i%16, i%60),
			fmt.Sprintf("kernel temperature sensor reads %dC on fpc %d", 30+i%40, i%4),
			"Error: chassis fan tray removed",
		)
	}
	return msgs
}

// resolveSyms maps prepared symbols back to strings through the tree's
// table, the form comparable against PrepareTokens output.
func resolveSyms(t *Tree, syms []uint32) []string {
	out := make([]string, len(syms))
	for i, id := range syms {
		out[i] = t.syms.str(id)
	}
	return out
}

func TestColonTokenization(t *testing.T) {
	cases := map[string][]string{
		// Interior colons survive (the documented behavior the old
		// implementation contradicted).
		"neighbor 2001:db8::1 down":      {"neighbor", "2001:db8::1", "down"},
		"mac 00:1b:44:11:3a:b7 learned":  {"mac", "00:1b:44:11:3a:b7", "learned"},
		"poll at 12:30:01 done":          {"poll", "at", "12:30:01", "done"},
		"interface ge-0/0/1:0 flapped":   {"interface", "ge-0/0/1:0", "flapped"},
		// Trailing colons are separators, however many.
		"rpd: session closed":  {"rpd", "session", "closed"},
		"weird:: double colon": {"weird", "double", "colon"},
		"::":                   nil,
		"a:":                   {"a"},
	}
	for in, want := range cases {
		got := Tokenize(in)
		if len(got) != len(want) {
			t.Fatalf("Tokenize(%q)=%v want %v", in, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Tokenize(%q)=%v want %v", in, got, want)
			}
		}
	}
}

// The interned scanner and the reference string path must produce the same
// masked token sequence for every input.
func TestPrepareSymsEquivalence(t *testing.T) {
	tr := New()
	var tb TokenBuf
	inputs := append(internCorpus(),
		"", "   ", "::", ":x:", "x:",
		"unicode schnittstelle zwölf down",
		"mixed ÜPPER case TOKENS Here",
		string([]byte{0xff, 0xfe, ' ', 'o', 'k'}), // invalid UTF-8
		"spaced\tout\nlines\r",
		"a,b=c [d] (e) \"f\"; g",
	)
	for _, msg := range inputs {
		want := PrepareTokens(msg)
		syms, ok := tr.PrepareSyms(msg, &tb)
		if !ok {
			t.Fatalf("PrepareSyms(%q) reported a full table", msg)
		}
		got := resolveSyms(tr, syms)
		if len(got) != len(want) {
			t.Fatalf("PrepareSyms(%q)=%v want %v", msg, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("PrepareSyms(%q)=%v want %v", msg, got, want)
			}
		}
	}
}

// FuzzScannerEquivalence drives the byte-oriented scanner and the legacy
// string path with arbitrary bytes: identical masked token sequences, and
// identical template IDs once learned.
func FuzzScannerEquivalence(f *testing.F) {
	for _, s := range internCorpus()[:24] {
		f.Add(s)
	}
	f.Add("")
	f.Add("x: y:: z:::")
	f.Add("2001:db8::1 00:11:22:33:44:55 12:30:01")
	f.Add("ÜNÏCODE zwölf µs")
	f.Add(string([]byte{0x80, 0xc3, 0x28, 0xff}))
	f.Fuzz(func(t *testing.T, msg string) {
		want := PrepareTokens(msg)
		tr := New()
		var tb TokenBuf
		syms, ok := tr.PrepareSyms(msg, &tb)
		if !ok {
			t.Skip("symbol table full") // unreachable with a fresh tree
		}
		got := resolveSyms(tr, syms)
		if len(got) != len(want) {
			t.Fatalf("scanner %v != reference %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("scanner %v != reference %v", got, want)
			}
		}
		// Same message learned through both paths lands on one template.
		a := tr.LearnSyms(syms)
		b := tr.LearnTokens(PrepareTokens(msg))
		if a.ID != b.ID || b.Count != 2 {
			t.Fatalf("paths diverged: LearnSyms ID %d, LearnTokens ID %d count %d", a.ID, b.ID, b.Count)
		}
	})
}

// Learning a shuffled corpus through LearnSyms must grow a tree
// fingerprint-identical to one grown through LearnTokens: same template
// IDs, same token sequences, same counts, message by message.
func TestLearnSymsEquivalentToLearnTokens(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	msgs := internCorpus()
	rng.Shuffle(len(msgs), func(i, j int) { msgs[i], msgs[j] = msgs[j], msgs[i] })

	ref := New()
	interned := New()
	var tb TokenBuf
	for i, msg := range msgs {
		a := ref.LearnTokens(PrepareTokens(msg))
		syms, ok := interned.PrepareSyms(msg, &tb)
		if !ok {
			t.Fatalf("PrepareSyms(%q) reported a full table", msg)
		}
		b := interned.LearnSyms(syms)
		if a.ID != b.ID {
			t.Fatalf("msg %d %q: template ID %d (strings) vs %d (syms)", i, msg, a.ID, b.ID)
		}
		if ref.Fingerprint() != interned.Fingerprint() {
			t.Fatalf("msg %d %q: fingerprints diverged", i, msg)
		}
	}
	if ref.Len() != interned.Len() {
		t.Fatalf("template counts diverged: %d vs %d", ref.Len(), interned.Len())
	}
}

// Mixing both learning paths on one tree must behave like either alone:
// the dual template representation stays in sync through merges.
func TestMixedPathLearning(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	msgs := internCorpus()
	ref := New()
	mixed := New()
	var tb TokenBuf
	for _, msg := range msgs {
		a := ref.LearnTokens(PrepareTokens(msg))
		var b *Template
		if rng.Intn(2) == 0 {
			syms, ok := mixed.PrepareSyms(msg, &tb)
			if !ok {
				t.Fatalf("full table on %q", msg)
			}
			b = mixed.LearnSyms(syms)
		} else {
			b = mixed.LearnTokens(PrepareTokens(msg))
		}
		if a.ID != b.ID {
			t.Fatalf("%q: ID %d vs %d", msg, a.ID, b.ID)
		}
	}
	if ref.Fingerprint() != mixed.Fingerprint() {
		t.Fatal("mixed-path tree diverged from reference")
	}
}

// Save/Load round-trips the symbol mirror: a loaded tree must serve the
// interned path and agree with the original on template IDs.
func TestLoadRebuildsSymbols(t *testing.T) {
	tr := New()
	for _, msg := range internCorpus() {
		tr.Learn(msg)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var tb TokenBuf
	for _, msg := range internCorpus()[:50] {
		want, ok := tr.Match(msg)
		if !ok {
			t.Fatalf("original tree lost %q", msg)
		}
		syms, ok := loaded.PrepareSyms(msg, &tb)
		if !ok {
			t.Fatalf("loaded tree's table full on %q", msg)
		}
		got := loaded.LearnSyms(syms)
		if got.ID != want.ID {
			t.Fatalf("%q: loaded LearnSyms ID %d, original %d", msg, got.ID, want.ID)
		}
	}
}

// A full symbol table must degrade to the string path, not corrupt
// matching: PrepareSyms reports !ok for un-internable tokens and the
// fallback LearnTokens keeps template identity consistent.
func TestSymTabFullFallback(t *testing.T) {
	old := symLimit
	symLimit = 8
	defer func() { symLimit = old }()

	tr := New()
	var tb TokenBuf
	// Fill the table: 7 structural tokens + wildcard = 8.
	if _, ok := tr.PrepareSyms("one two three four five six seven", &tb); !ok {
		t.Fatal("table filled before the limit")
	}
	if n := tr.SymCount(); n != 8 {
		t.Fatalf("SymCount=%d want 8", n)
	}
	// A fresh structural token cannot intern.
	if _, ok := tr.PrepareSyms("eight", &tb); ok {
		t.Fatal("PrepareSyms must fail once the table is full")
	}
	// Variable tokens and interned tokens still prepare fine.
	if syms, ok := tr.PrepareSyms("one 12345 seven", &tb); !ok || len(syms) != 3 {
		t.Fatalf("interned+masked prepare failed: %v %v", syms, ok)
	}
	// The string fallback learns the un-internable message; re-learning it
	// through either entry point maps to the same template.
	a := tr.LearnTokens(PrepareTokens("eight nine ten"))
	b := tr.Learn("eight nine ten")
	if a.ID != b.ID || b.Count != 2 {
		t.Fatalf("fallback template identity broken: %d vs %d (count %d)", a.ID, b.ID, b.Count)
	}
	// An internable message must not merge into the invalidSym positions.
	c := tr.Learn("one 99 seven")
	if c.ID == a.ID {
		t.Fatal("internable message merged into un-internable template")
	}
}

// Concurrent interning: many goroutines hammer the slow path with fresh
// tokens while others replay a hot vocabulary through the lock-free path.
// Every observed (token → ID) binding must be globally consistent. Run
// under -race via make test-race.
func TestInternConcurrentRace(t *testing.T) {
	tr := New()
	const workers = 8
	const iters = 400
	var wg sync.WaitGroup
	bindings := make([]map[string]uint32, workers)
	for w := 0; w < workers; w++ {
		bindings[w] = make(map[string]uint32)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var tb TokenBuf
			for i := 0; i < iters; i++ {
				var msg string
				if w%2 == 0 {
					// Fresh vocabulary: slow-path interning. Some tokens
					// collide across goroutines on purpose.
					msg = fmt.Sprintf("fresh%d stream%d shared%d", w, i, i%32)
				} else {
					// Hot vocabulary: lock-free reads.
					msg = "link flap detected on backbone"
				}
				syms, ok := tr.PrepareSyms(msg, &tb)
				if !ok {
					t.Error("table unexpectedly full")
					return
				}
				toks := PrepareTokens(msg)
				for j, id := range syms {
					if id == wildcardID {
						continue
					}
					if prev, seen := bindings[w][toks[j]]; seen && prev != id {
						t.Errorf("token %q bound to %d and %d", toks[j], prev, id)
						return
					}
					bindings[w][toks[j]] = id
				}
			}
		}(w)
	}
	wg.Wait()
	// Cross-goroutine consistency: merge all observed bindings.
	merged := make(map[string]uint32)
	for _, m := range bindings {
		for tok, id := range m {
			if prev, seen := merged[tok]; seen && prev != id {
				t.Fatalf("token %q bound to %d and %d across goroutines", tok, prev, id)
			}
			merged[tok] = id
		}
	}
	// And against the table itself.
	for tok, id := range merged {
		if got := tr.syms.str(id); got != tok {
			t.Fatalf("str(%d)=%q want %q", id, got, tok)
		}
	}
}

// --- old-vs-interned micro-benchmarks (tracked in BENCH_serving.json) ---

const benchLine = "SNMP_TRAP_LINK_DOWN ifIndex 531 ifOperStatus down interface ge-0/0/5"

// BenchmarkPrepareTokens is the legacy string tokenize+mask path.
func BenchmarkPrepareTokens(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PrepareTokens(benchLine)
	}
}

// BenchmarkPrepareTokensInterned is the byte-oriented interning scanner.
func BenchmarkPrepareTokensInterned(b *testing.B) {
	tr := New()
	var tb TokenBuf
	tr.PrepareSyms(benchLine, &tb) // warm the table
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.PrepareSyms(benchLine, &tb)
	}
}

// benchTree grows a tree with a realistic template population.
func benchTree(b *testing.B) *Tree {
	b.Helper()
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Learn(fmt.Sprintf("family %d message with port ge-0/0/%d and count %d", i%10, i%8, i))
	}
	return tr
}

// BenchmarkSigtreeMatch is tokenize+match via position-wise string compares.
func BenchmarkSigtreeMatch(b *testing.B) {
	tr := benchTree(b)
	toks := PrepareTokens("family 3 message with port ge-0/0/5 and count 77")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.LearnTokens(toks)
	}
}

// BenchmarkSigtreeMatchInterned is the same match on uint32 symbol IDs.
func BenchmarkSigtreeMatchInterned(b *testing.B) {
	tr := benchTree(b)
	var tb TokenBuf
	syms, ok := tr.PrepareSyms("family 3 message with port ge-0/0/5 and count 77", &tb)
	if !ok {
		b.Fatal("table full")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.LearnSyms(syms)
	}
}
