package nfvsim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"nfvpredict/internal/sigtree"
	"nfvpredict/internal/ticket"
)

func genTest(t *testing.T, mutate func(*Config)) *Trace {
	t.Helper()
	cfg := TestConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := d.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumVPEs = 0 },
		func(c *Config) { c.Months = 0 },
		func(c *Config) { c.BaseRatePerHour = 0 },
		func(c *Config) { c.RoleCount = 0 },
		func(c *Config) { c.Start = time.Time{} },
		func(c *Config) { c.MeanFaultGapHours = -1 },
		func(c *Config) { c.UpdateMonth = 99 },
		func(c *Config) { c.UpdateFraction = 1.5 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("default config should validate: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genTest(t, nil)
	b := genTest(t, nil)
	if len(a.Messages) != len(b.Messages) || len(a.Tickets) != len(b.Tickets) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", len(a.Messages), len(a.Tickets), len(b.Messages), len(b.Tickets))
	}
	for i := range a.Messages {
		if a.Messages[i] != b.Messages[i] {
			t.Fatalf("message %d differs", i)
		}
	}
	for i := range a.Tickets {
		if a.Tickets[i] != b.Tickets[i] {
			t.Fatalf("ticket %d differs: %+v vs %+v", i, a.Tickets[i], b.Tickets[i])
		}
	}
	// Repeated Generate on the same deployment must also be identical.
	cfg := TestConfig()
	d, _ := New(cfg)
	t1, _ := d.Generate()
	t2, _ := d.Generate()
	if len(t1.Messages) != len(t2.Messages) {
		t.Fatal("Generate is not repeatable on one deployment")
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a := genTest(t, nil)
	b := genTest(t, func(c *Config) { c.Seed = 99 })
	if len(a.Messages) == len(b.Messages) && len(a.Tickets) == len(b.Tickets) {
		same := true
		for i := range a.Messages {
			if a.Messages[i] != b.Messages[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestMessagesSortedAndInHorizon(t *testing.T) {
	tr := genTest(t, nil)
	cfg := TestConfig()
	if len(tr.Messages) == 0 {
		t.Fatal("no messages generated")
	}
	for i := 1; i < len(tr.Messages); i++ {
		if tr.Messages[i].Time.Before(tr.Messages[i-1].Time) {
			t.Fatalf("messages not sorted at %d", i)
		}
	}
	// Normal traffic is bounded by the horizon; episode traffic may spill
	// past End by at most the longest infected period (48h hardware).
	slack := 48 * time.Hour
	for _, m := range tr.Messages {
		if m.Time.Before(cfg.Start.Add(-time.Hour)) || m.Time.After(cfg.End().Add(slack)) {
			t.Fatalf("message far outside horizon: %v", m.Time)
		}
	}
}

func TestFleetComposition(t *testing.T) {
	tr := genTest(t, nil)
	if len(tr.VPENames) != 6 {
		t.Fatalf("VPENames: %v", tr.VPENames)
	}
	hosts := map[string]bool{}
	for _, m := range tr.Messages {
		hosts[m.Host] = true
	}
	for _, name := range tr.VPENames {
		if !hosts[name] {
			t.Errorf("vPE %s emitted no messages", name)
		}
		if _, ok := tr.RoleOf[name]; !ok {
			t.Errorf("vPE %s has no role", name)
		}
	}
}

func TestTicketsSortedWithResolvedDuplicates(t *testing.T) {
	tr := genTest(t, nil)
	if len(tr.Tickets) == 0 {
		t.Fatal("no tickets generated")
	}
	byID := map[int]ticket.Ticket{}
	for i, tk := range tr.Tickets {
		if i > 0 && tk.Report.Before(tr.Tickets[i-1].Report) {
			t.Fatal("tickets not sorted")
		}
		if tk.ID != i {
			t.Fatalf("ticket IDs not dense: %d at %d", tk.ID, i)
		}
		byID[tk.ID] = tk
	}
	var dups int
	for _, tk := range tr.Tickets {
		if tk.Cause == ticket.Duplicate {
			dups++
			orig, ok := byID[tk.DuplicateOf]
			if !ok {
				t.Fatalf("duplicate %d references missing ticket %d", tk.ID, tk.DuplicateOf)
			}
			if orig.Cause == ticket.Duplicate {
				t.Fatalf("duplicate %d references another duplicate", tk.ID)
			}
			if orig.VPE != tk.VPE {
				t.Fatalf("duplicate %d on %s references ticket on %s", tk.ID, tk.VPE, orig.VPE)
			}
			if tk.Report.Before(orig.Report) {
				t.Fatalf("duplicate %d reported before original", tk.ID)
			}
		} else if tk.DuplicateOf != -1 {
			t.Fatalf("non-duplicate %d has DuplicateOf=%d", tk.ID, tk.DuplicateOf)
		}
		if !tk.Repair.After(tk.Report) {
			t.Fatalf("ticket %d has non-positive duration", tk.ID)
		}
	}
	if dups == 0 {
		t.Fatal("expected some duplicate tickets")
	}
}

// The ticket mix must be maintenance-dominated with DUP and Circuit the
// next contributors (Figure 1a).
func TestTicketMixShape(t *testing.T) {
	tr := genTest(t, func(c *Config) {
		c.NumVPEs = 12
		c.Months = 6
		// Production-like rates: maintenance dominance is a property of
		// the default calibration, not of the fault-heavy test config.
		c.MeanFaultGapHours = DefaultConfig().MeanFaultGapHours
		c.MaintenanceEvery = DefaultConfig().MaintenanceEvery
	})
	counts := tr.TicketStore().CountByCause()
	if counts[ticket.Maintenance] <= counts[ticket.Circuit] || counts[ticket.Maintenance] <= counts[ticket.Duplicate] {
		t.Fatalf("maintenance should dominate: %v", counts)
	}
	for _, c := range []ticket.RootCause{ticket.Circuit, ticket.Cable, ticket.Hardware, ticket.Software, ticket.Duplicate} {
		if counts[c] == 0 {
			t.Errorf("no %v tickets generated", c)
		}
	}
	if counts[ticket.Circuit] <= counts[ticket.Hardware] {
		t.Errorf("circuit should outnumber hardware: %v", counts)
	}
}

// Inter-arrival of non-duplicated tickets must be heavy-tailed in the
// direction of Figure 1(b).
func TestInterArrivalHeavyTail(t *testing.T) {
	tr := genTest(t, func(c *Config) { c.NumVPEs = 16; c.Months = 12; c.Seed = 3 })
	gaps := tr.TicketStore().InterArrivals()
	if len(gaps) < 50 {
		t.Fatalf("too few gaps for shape check: %d", len(gaps))
	}
	var under40m, over10h int
	for _, g := range gaps {
		if g < 40*time.Minute {
			under40m++
		}
		if g > 10*time.Hour {
			over10h++
		}
	}
	if frac := float64(under40m) / float64(len(gaps)); frac > 0.1 {
		t.Errorf("%.0f%% of gaps under 40 min; paper says none", frac*100)
	}
	if frac := float64(over10h) / float64(len(gaps)); frac < 0.5 {
		t.Errorf("only %.0f%% of gaps over 10h; paper says ~80%%", frac*100)
	}
}

func TestOmenPrecedesTicketPerCalibration(t *testing.T) {
	// With a large fleet, the fraction of Circuit tickets preceded by an
	// omen burst should approximate pOmen=0.74.
	tr := genTest(t, func(c *Config) { c.NumVPEs = 24; c.Months = 12; c.MeanFaultGapHours = 150; c.UpdateMonth = -1 })
	byVPE := tr.ByVPE()
	isOmen := func(text string) bool {
		return containsAny(text, []string{"BGP_UNUSABLE_ASPATH", "crc errors increasing", "hold-down timer armed"})
	}
	var circuits, withOmen int
	for _, tk := range tr.Tickets {
		if tk.Cause != ticket.Circuit {
			continue
		}
		circuits++
		found := false
		for _, m := range byVPE[tk.VPE] {
			if m.Time.After(tk.Report.Add(-45*time.Minute)) && m.Time.Before(tk.Report) && isOmen(m.Text) {
				found = true
				break
			}
		}
		if found {
			withOmen++
		}
	}
	if circuits < 30 {
		t.Fatalf("too few circuit tickets: %d", circuits)
	}
	frac := float64(withOmen) / float64(circuits)
	if frac < 0.60 || frac > 0.88 {
		t.Errorf("circuit omen fraction %.2f, want ≈0.74", frac)
	}
}

func containsAny(s string, subs []string) bool {
	for _, sub := range subs {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

// Updated vPEs must change their template distribution at the update
// (month-over-month cosine drop, §3.3). Checked at the family-name level
// using the signature tree.
func TestUpdateShiftsDistribution(t *testing.T) {
	tr := genTest(t, func(c *Config) {
		c.NumVPEs = 4
		c.Months = 4
		c.UpdateMonth = 2
		c.UpdateFraction = 1.0
		c.MeanFaultGapHours = 1e7 // suppress faults: isolate the update effect
		c.CoreIncidentsPerMonth = 0
		c.MaintenanceEvery = 1e6 * time.Hour
	})
	if len(tr.UpdateTimes) != 4 {
		t.Fatalf("expected all vPEs updated, got %d", len(tr.UpdateTimes))
	}
	cfg := TestConfig()
	tree := sigtree.New()
	// Template histograms for month 1 (pre) and month 3 (post).
	preStart, preEnd := cfg.Start.AddDate(0, 1, 0), cfg.Start.AddDate(0, 2, 0)
	postStart, postEnd := cfg.Start.AddDate(0, 3, 0), cfg.Start.AddDate(0, 4, 0)
	pre := map[int]float64{}
	post := map[int]float64{}
	for _, m := range tr.Messages {
		tpl := tree.Learn(m.Text)
		switch {
		case !m.Time.Before(preStart) && m.Time.Before(preEnd):
			pre[tpl.ID]++
		case !m.Time.Before(postStart) && m.Time.Before(postEnd):
			post[tpl.ID]++
		}
	}
	sim := histCosine(pre, post)
	if sim > 0.6 {
		t.Errorf("pre/post update cosine %.2f, want a clear drop (<0.6)", sim)
	}
}

func histCosine(a, b map[int]float64) float64 {
	var dot, na, nb float64
	for k, v := range a {
		na += v * v
		if w, ok := b[k]; ok {
			dot += v * w
		}
	}
	for _, w := range b {
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// pPEs must out-log vPEs by roughly the configured multiplier: the paper
// reports vPE syslogs are ~77% smaller (§2).
func TestPPEVolumeMultiplier(t *testing.T) {
	tr := genTest(t, func(c *Config) {
		c.NumVPEs = 4
		c.NumPPEs = 4
		c.Months = 2
		c.MeanFaultGapHours = 1e7
		c.CoreIncidentsPerMonth = 0
		c.MaintenanceEvery = 1e6 * time.Hour
		c.UpdateMonth = -1
	})
	var vpeCount, ppeCount int
	physSeen := false
	for _, m := range tr.Messages {
		if m.Host[0] == 'v' {
			vpeCount++
		} else {
			ppeCount++
			if containsAny(m.Text, []string{"fan tray", "temperature sensor", "power supply", "optics monitor", "fabric plane", "linecard"}) {
				physSeen = true
			}
		}
	}
	if !physSeen {
		t.Fatal("pPEs emitted no physical-layer messages")
	}
	ratio := float64(ppeCount) / float64(vpeCount)
	if ratio < 2.5 || ratio > 7 {
		t.Errorf("pPE/vPE volume ratio %.2f, want ≈4.3", ratio)
	}
	reduction := 1 - float64(vpeCount)/float64(ppeCount)
	if reduction < 0.6 || reduction > 0.9 {
		t.Errorf("vPE volume reduction %.2f, want ≈0.77", reduction)
	}
}

func TestCoreIncidentsHitManyVPEs(t *testing.T) {
	tr := genTest(t, func(c *Config) {
		c.NumVPEs = 20
		c.Months = 6
		c.CoreIncidentsPerMonth = 0.5
		c.MeanFaultGapHours = 1e7
		c.MaintenanceEvery = 1e6 * time.Hour
		c.UpdateMonth = -1
		c.DupProb = 0
	})
	// All tickets now come from core incidents; they must cluster in time
	// across many vPEs.
	_, perBin := tr.TicketStore().OccurrenceMatrix(TestConfig().Start, TestConfig().Start.AddDate(0, 6, 0), time.Hour)
	maxVPEs := 0
	for _, n := range perBin {
		if n > maxVPEs {
			maxVPEs = n
		}
	}
	if maxVPEs < 8 {
		t.Errorf("core incidents should hit many vPEs in one bin, max %d", maxVPEs)
	}
}

func TestRolesProduceDistinctDistributions(t *testing.T) {
	// vPEs of different roles must have less similar template histograms
	// than vPEs of the same role.
	cfg := TestConfig()
	cfg.NumVPEs = 12
	cfg.Months = 2
	cfg.MeanFaultGapHours = 1e7
	cfg.CoreIncidentsPerMonth = 0
	cfg.MaintenanceEvery = 1e6 * time.Hour
	cfg.UpdateMonth = -1
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := d.Generate()
	if err != nil {
		t.Fatal(err)
	}
	tree := sigtree.New()
	hist := map[string]map[int]float64{}
	for _, m := range tr.Messages {
		tpl := tree.Learn(m.Text)
		if hist[m.Host] == nil {
			hist[m.Host] = map[int]float64{}
		}
		hist[m.Host][tpl.ID]++
	}
	var sameRole, crossRole []float64
	names := tr.VPENames
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			sim := histCosine(hist[names[i]], hist[names[j]])
			if tr.RoleOf[names[i]] == tr.RoleOf[names[j]] {
				sameRole = append(sameRole, sim)
			} else {
				crossRole = append(crossRole, sim)
			}
		}
	}
	if len(sameRole) == 0 || len(crossRole) == 0 {
		t.Skip("role assignment degenerate for this seed")
	}
	if mean(sameRole) <= mean(crossRole)+0.05 {
		t.Errorf("same-role similarity %.3f not clearly above cross-role %.3f", mean(sameRole), mean(crossRole))
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestDrawFaultGapShape(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	n := 20000
	var under10h, over1000h int
	var sum float64
	for i := 0; i < n; i++ {
		g := drawFaultGap(r, 833)
		if g < 40*time.Minute {
			t.Fatalf("gap below 40 minutes: %v", g)
		}
		if g <= 10*time.Hour {
			under10h++
		}
		if g > 1000*time.Hour {
			over1000h++
		}
		sum += g.Hours()
	}
	// Mixture weights: 8% short, 60% mid, 32% heavy tail (>1000h).
	if f := float64(under10h) / float64(n); f < 0.05 || f > 0.12 {
		t.Errorf("fraction ≤10h = %.3f, want ≈0.08", f)
	}
	if f := float64(over1000h) / float64(n); f < 0.26 || f > 0.38 {
		t.Errorf("fraction >1000h = %.3f, want ≈0.32", f)
	}
	// The unscaled mixture mean is ~833h, so meanHours is honored.
	if m := sum / float64(n); m < 700 || m > 980 {
		t.Errorf("mean gap %.0fh, want ≈833h", m)
	}
}

func TestPoisson(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var sum int
	n := 5000
	for i := 0; i < n; i++ {
		sum += poisson(r, 3)
	}
	m := float64(sum) / float64(n)
	if m < 2.8 || m > 3.2 {
		t.Errorf("poisson mean %.2f, want ≈3", m)
	}
	if poisson(r, 0) != 0 || poisson(r, -1) != 0 {
		t.Error("non-positive mean should give 0")
	}
}

func TestFamilyCatalogIntegrity(t *testing.T) {
	fams := Library()
	names := map[string]bool{}
	r := rand.New(rand.NewSource(1))
	for _, f := range fams {
		if names[f.Name] {
			t.Errorf("duplicate family name %q", f.Name)
		}
		names[f.Name] = true
		if f.Render == nil {
			t.Fatalf("family %q has no renderer", f.Name)
		}
		if f.Render(r) == "" {
			t.Errorf("family %q renders empty text", f.Name)
		}
	}
	for _, c := range []ticket.RootCause{ticket.Circuit, ticket.Cable, ticket.Hardware, ticket.Software} {
		if len(FamiliesByCause(fams, ClassOmen, c)) == 0 {
			t.Errorf("no omen families for %v", c)
		}
	}
	if len(FamiliesByClass(fams, ClassNormal)) < 20 {
		t.Error("need a rich normal catalog")
	}
	if len(FamiliesByClass(fams, ClassPostUpdate)) < 4 {
		t.Error("need post-update families")
	}
}

// Families must map to distinct signature-tree templates: the sigtree is
// how the pipeline recovers the simulator's family structure.
func TestFamiliesSeparableBySigtree(t *testing.T) {
	fams := Library()
	tree := sigtree.New()
	r := rand.New(rand.NewSource(7))
	famToTpl := map[string]int{}
	// Learn 30 instances of each family.
	for round := 0; round < 30; round++ {
		for _, f := range fams {
			tpl := tree.Learn(f.Render(r))
			if round == 29 {
				famToTpl[f.Name] = tpl.ID
			}
		}
	}
	// Distinct families must not all collapse together; allow a small
	// number of collisions but require ≥90% separation.
	used := map[int]int{}
	for _, id := range famToTpl {
		used[id]++
	}
	collisions := 0
	for _, n := range used {
		if n > 1 {
			collisions += n - 1
		}
	}
	if float64(collisions) > 0.1*float64(len(fams)) {
		t.Errorf("%d/%d families collide in the signature tree", collisions, len(fams))
	}
	// And each family must map stably to one template.
	for _, f := range fams {
		tpl1, ok1 := tree.Match(f.Render(r))
		tpl2, ok2 := tree.Match(f.Render(r))
		if !ok1 || !ok2 || tpl1.ID != tpl2.ID {
			t.Errorf("family %q does not match stably", f.Name)
		}
	}
}

func BenchmarkGenerateSmallFleet(b *testing.B) {
	cfg := TestConfig()
	for i := 0; i < b.N; i++ {
		d, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

// Glitch bursts must appear at roughly the configured rate, in clusters
// of 2-3 messages seconds apart, drawn from omen/rare families.
func TestGlitchGeneration(t *testing.T) {
	quiet := genTest(t, func(c *Config) {
		c.NumVPEs = 4
		c.Months = 2
		c.MeanFaultGapHours = 1e7
		c.CoreIncidentsPerMonth = 0
		c.MaintenanceEvery = 1e6 * time.Hour
		c.UpdateMonth = -1
		c.GlitchesPerDay = 0
	})
	noisy := genTest(t, func(c *Config) {
		c.NumVPEs = 4
		c.Months = 2
		c.MeanFaultGapHours = 1e7
		c.CoreIncidentsPerMonth = 0
		c.MaintenanceEvery = 1e6 * time.Hour
		c.UpdateMonth = -1
		c.GlitchesPerDay = 0.5
	})
	countOmenish := func(tr *Trace) int {
		n := 0
		for i := range tr.Messages {
			if containsAny(tr.Messages[i].Text, []string{
				"BGP_UNUSABLE_ASPATH", "crc errors increasing", "hold-down timer",
				"optical rx power", "sfp diagnostics", "parity error", "voltage rail",
				"chassis-control", "memory watermark", "scheduler slip",
			}) {
				n++
			}
		}
		return n
	}
	if countOmenish(quiet) != 0 {
		t.Fatalf("no-glitch trace contains %d omen-family messages", countOmenish(quiet))
	}
	got := countOmenish(noisy)
	// 4 vPEs × ~60 days × 0.5/day × ~2.5 msgs/burst ≈ 300.
	if got < 120 || got > 600 {
		t.Fatalf("glitch volume %d outside expected range", got)
	}
}
