// Package nfvsim simulates the NFV deployment the paper measured: a fleet
// of virtualized provider-edge routers (vPEs) emitting syslog and trouble
// tickets over an 18-month horizon. It substitutes for the proprietary
// tier-1 ISP dataset (see DESIGN.md §2) while preserving the phenomena the
// paper's method must cope with:
//
//   - structured normal syslog (motif sequences over message templates)
//     with per-role and per-vPE diversity (§3.3, Figure 3);
//   - rare fault episodes per root cause whose omen messages precede the
//     trouble-ticket report time with the per-cause probabilities and lead
//     times of Figure 8;
//   - heavy-tailed ticket inter-arrival (Figure 1b), maintenance-dominated
//     ticket mix (Figure 1a), duplicate-ticket bursts, and rare fleet-wide
//     core-router incidents (Figure 2);
//   - a mid-trace system update that abruptly changes syslog distributions
//     (§3.3) and obsoletes models trained before it (Figure 7);
//   - an optional physical-PE fleet whose extra physical-layer logging
//     reproduces the "vPE logs are 77% smaller" observation (§2).
package nfvsim

import (
	"fmt"
	"math/rand"

	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/ticket"
)

// Class categorizes a template family by its role in the simulation.
type Class int

// Template family classes.
const (
	// ClassNormal families appear during normal operation.
	ClassNormal Class = iota
	// ClassRare families are normal but infrequent — the "minority
	// patterns" whose false alarms the paper's over-sampling fixes (§4.2).
	ClassRare
	// ClassOmen families precede a ticket of the associated cause —
	// the early-warning signal the paper hunts for.
	ClassOmen
	// ClassError families appear during the infected period of a ticket.
	ClassError
	// ClassMaintenance families appear around maintenance windows.
	ClassMaintenance
	// ClassPhysical families appear only on physical PEs (optics, fans,
	// environmental), giving pPEs their extra log volume.
	ClassPhysical
	// ClassPostUpdate families appear only after the system update,
	// shifting syslog distributions.
	ClassPostUpdate
)

// Family is one syslog message family: a fixed textual structure with
// variable fields, corresponding 1:1 with a signature-tree template.
type Family struct {
	// Name identifies the family.
	Name string
	// Class is the family's simulation role.
	Class Class
	// Cause associates omen/error families with a ticket root cause.
	Cause ticket.RootCause
	// Tag is the emitting daemon.
	Tag string
	// Facility and Severity set the syslog PRI.
	Facility logfmt.Facility
	Severity logfmt.Severity
	// Render produces the message text with fresh variable fields.
	Render func(r *rand.Rand) string
}

func iface(r *rand.Rand) string {
	kinds := []string{"ge", "xe", "et"}
	return fmt.Sprintf("%s-%d/%d/%d", kinds[r.Intn(len(kinds))], r.Intn(2), r.Intn(4), r.Intn(8))
}

func ipv4(r *rand.Rand) string {
	return fmt.Sprintf("10.%d.%d.%d", r.Intn(256), r.Intn(256), 1+r.Intn(254))
}

// Library returns the full template-family catalog. The catalog is fixed;
// per-role subsets are chosen by buildRoles.
func Library() []Family {
	var fams []Family
	add := func(f Family) { fams = append(fams, f) }

	// --- Normal control-plane and data-plane chatter -------------------
	add(Family{Name: "bgp_keepalive", Class: ClassNormal, Tag: "rpd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("bgp_process_keepalive peer %s AS %d holdtime refreshed", ipv4(r), 64500+r.Intn(100))
		}})
	add(Family{Name: "bgp_update_recv", Class: ClassNormal, Tag: "rpd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("bgp_read_v4_update peer %s received %d prefixes", ipv4(r), 1+r.Intn(400))
		}})
	add(Family{Name: "ospf_hello", Class: ClassNormal, Tag: "rpd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("OSPF hello from neighbor %s on %s processed", ipv4(r), iface(r))
		}})
	add(Family{Name: "ldp_session_keep", Class: ClassNormal, Tag: "rpd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("LDP session %s keepalive exchanged label space %d", ipv4(r), r.Intn(8))
		}})
	add(Family{Name: "snmp_get", Class: ClassNormal, Tag: "snmpd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("SNMP_GET_REQUEST from manager %s oid ifHCInOctets.%d", ipv4(r), r.Intn(512))
		}})
	add(Family{Name: "ifmib_poll", Class: ClassNormal, Tag: "mib2d", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("interface statistics poll completed for %s in %d ms", iface(r), 1+r.Intn(90))
		}})
	add(Family{Name: "fpc_telemetry", Class: ClassNormal, Tag: "chassisd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("fpc %d cpu utilization %d percent memory %d percent", r.Intn(4), 5+r.Intn(60), 20+r.Intn(50))
		}})
	add(Family{Name: "re_telemetry", Class: ClassNormal, Tag: "chassisd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("routing engine load average %d.%02d tasks %d", r.Intn(3), r.Intn(100), 100+r.Intn(200))
		}})
	add(Family{Name: "vm_heartbeat", Class: ClassNormal, Tag: "vmmd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("hypervisor heartbeat acknowledged seq %d latency %d us", r.Intn(100000), 50+r.Intn(900))
		}})
	add(Family{Name: "vnf_health", Class: ClassNormal, Tag: "vnfmgr", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("vnf health probe ok instance vpe-fwd-%d rtt %d us", r.Intn(4), 100+r.Intn(2000))
		}})
	add(Family{Name: "arp_learn", Class: ClassNormal, Tag: "kernel", Facility: logfmt.FacKernel, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("arp entry learned %s on %s", ipv4(r), iface(r))
		}})
	add(Family{Name: "fib_update", Class: ClassNormal, Tag: "kernel", Facility: logfmt.FacKernel, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("fib download complete %d routes changed table inet.%d", 1+r.Intn(5000), r.Intn(4))
		}})
	add(Family{Name: "cos_stats", Class: ClassNormal, Tag: "cosd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("cos queue stats exported %s queue %d drops %d", iface(r), r.Intn(8), r.Intn(10))
		}})
	add(Family{Name: "lacp_status", Class: ClassNormal, Tag: "lacpd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("lacp aggregate ae%d member %s collecting distributing", r.Intn(8), iface(r))
		}})
	add(Family{Name: "sshd_login", Class: ClassNormal, Tag: "sshd", Facility: logfmt.FacAuth, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("accepted publickey for netops from %s port %d", ipv4(r), 20000+r.Intn(40000))
		}})
	add(Family{Name: "cli_command", Class: ClassNormal, Tag: "mgd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("UI_CMDLINE_READ_LINE user netops command show interfaces %s", iface(r))
		}})
	add(Family{Name: "bfd_session", Class: ClassNormal, Tag: "bfdd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("bfd session %s state up interval %d ms multiplier 3", ipv4(r), 100+100*r.Intn(3))
		}})
	add(Family{Name: "isis_adjacency", Class: ClassNormal, Tag: "rpd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("isis adjacency refresh level 2 neighbor %s snpa %d", ipv4(r), r.Intn(1000))
		}})
	add(Family{Name: "pfe_stats", Class: ClassNormal, Tag: "pfed", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("pfe traffic statistics slot %d pps %d exported", r.Intn(4), r.Intn(900000))
		}})
	add(Family{Name: "ntp_sync", Class: ClassNormal, Tag: "ntpd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("ntp clock synchronized to %s stratum 2 offset %d us", ipv4(r), r.Intn(4000))
		}})
	add(Family{Name: "dhcp_relay", Class: ClassNormal, Tag: "jdhcpd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("dhcp relay forwarded discover on %s to server %s", iface(r), ipv4(r))
		}})
	add(Family{Name: "mpls_lsp", Class: ClassNormal, Tag: "rpd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("mpls lsp reoptimized to %s metric %d hops %d", ipv4(r), 10+r.Intn(100), 2+r.Intn(6))
		}})
	add(Family{Name: "firewall_counter", Class: ClassNormal, Tag: "dfwd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("firewall filter edge-protect term %d matched %d packets", r.Intn(16), r.Intn(100000))
		}})
	add(Family{Name: "vrrp_advert", Class: ClassNormal, Tag: "vrrpd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("vrrp group %d master advertisement on %s priority %d", r.Intn(16), iface(r), 100+r.Intn(150))
		}})

	// --- Rare-but-normal minority patterns -----------------------------
	add(Family{Name: "rare_license_audit", Class: ClassRare, Tag: "mgd", Facility: logfmt.FacDaemon, Severity: logfmt.Notice,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("license usage audit completed features %d compliant", 3+r.Intn(9))
		}})
	add(Family{Name: "rare_cert_renew", Class: ClassRare, Tag: "pkid", Facility: logfmt.FacDaemon, Severity: logfmt.Notice,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("local certificate renewal scheduled in %d days", 1+r.Intn(30))
		}})
	add(Family{Name: "rare_storage_gc", Class: ClassRare, Tag: "mgd", Facility: logfmt.FacDaemon, Severity: logfmt.Notice,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("log storage cleanup reclaimed %d megabytes", 10+r.Intn(500))
		}})
	add(Family{Name: "rare_redundancy_check", Class: ClassRare, Tag: "chassisd", Facility: logfmt.FacDaemon, Severity: logfmt.Notice,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("redundancy audit passed groups %d switchover ready", 1+r.Intn(4))
		}})

	// --- Omens per root cause ------------------------------------------
	add(Family{Name: "omen_circuit_flap", Class: ClassOmen, Cause: ticket.Circuit, Tag: "rpd", Facility: logfmt.FacDaemon, Severity: logfmt.Warning,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("BGP_UNUSABLE_ASPATH bgp reject path from peer %s flap count %d", ipv4(r), 2+r.Intn(20))
		}})
	add(Family{Name: "omen_circuit_crc", Class: ClassOmen, Cause: ticket.Circuit, Tag: "kernel", Facility: logfmt.FacKernel, Severity: logfmt.Warning,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("crc errors increasing on %s framing errors %d", iface(r), 10+r.Intn(400))
		}})
	add(Family{Name: "omen_circuit_holddown", Class: ClassOmen, Cause: ticket.Circuit, Tag: "rpd", Facility: logfmt.FacDaemon, Severity: logfmt.Warning,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("interface %s hold-down timer armed transitions %d", iface(r), 2+r.Intn(9))
		}})
	add(Family{Name: "omen_cable_light", Class: ClassOmen, Cause: ticket.Cable, Tag: "chassisd", Facility: logfmt.FacDaemon, Severity: logfmt.Warning,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("optical rx power low on %s dbm -%d.%d", iface(r), 20+r.Intn(10), r.Intn(10))
		}})
	add(Family{Name: "omen_cable_sfp", Class: ClassOmen, Cause: ticket.Cable, Tag: "chassisd", Facility: logfmt.FacDaemon, Severity: logfmt.Warning,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("sfp diagnostics warning lane %d bias current abnormal", r.Intn(4))
		}})
	add(Family{Name: "omen_hw_parity", Class: ClassOmen, Cause: ticket.Hardware, Tag: "chassisd", Facility: logfmt.FacDaemon, Severity: logfmt.Warning,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("parity error corrected fpc %d asic %d count %d", r.Intn(4), r.Intn(4), 1+r.Intn(12))
		}})
	add(Family{Name: "omen_hw_voltage", Class: ClassOmen, Cause: ticket.Hardware, Tag: "chassisd", Facility: logfmt.FacDaemon, Severity: logfmt.Warning,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("voltage rail deviation slot %d sensor %d millivolts", r.Intn(4), 2900+r.Intn(400))
		}})
	add(Family{Name: "omen_sw_chassis_peer", Class: ClassOmen, Cause: ticket.Software, Tag: "vnfmgr", Facility: logfmt.FacDaemon, Severity: logfmt.Error,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("invalid response from peer chassis-control session %d retries %d", r.Intn(64), 1+r.Intn(5))
		}})
	add(Family{Name: "omen_sw_memleak", Class: ClassOmen, Cause: ticket.Software, Tag: "rpd", Facility: logfmt.FacDaemon, Severity: logfmt.Warning,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("task memory watermark exceeded rss %d megabytes growth %d", 800+r.Intn(2000), 1+r.Intn(40))
		}})
	add(Family{Name: "omen_sw_sched", Class: ClassOmen, Cause: ticket.Software, Tag: "kernel", Facility: logfmt.FacKernel, Severity: logfmt.Warning,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("scheduler slip detected %d ms thread rpd-main", 100+r.Intn(4000))
		}})

	// --- Infected-period errors per root cause -------------------------
	add(Family{Name: "err_circuit_down", Class: ClassError, Cause: ticket.Circuit, Tag: "rpd", Facility: logfmt.FacDaemon, Severity: logfmt.Error,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("SNMP_TRAP_LINK_DOWN ifIndex %d interface %s circuit down", 500+r.Intn(200), iface(r))
		}})
	add(Family{Name: "err_circuit_bgp_idle", Class: ClassError, Cause: ticket.Circuit, Tag: "rpd", Facility: logfmt.FacDaemon, Severity: logfmt.Error,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("bgp peer %s state change established to idle code %d", ipv4(r), 1+r.Intn(6))
		}})
	add(Family{Name: "err_cable_los", Class: ClassError, Cause: ticket.Cable, Tag: "chassisd", Facility: logfmt.FacDaemon, Severity: logfmt.Error,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("loss of signal on %s transceiver lane %d", iface(r), r.Intn(4))
		}})
	add(Family{Name: "err_hw_fpc_crash", Class: ClassError, Cause: ticket.Hardware, Tag: "chassisd", Facility: logfmt.FacDaemon, Severity: logfmt.Critical,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("fpc %d major errors detected offline requested core %d", r.Intn(4), r.Intn(100000))
		}})
	add(Family{Name: "err_sw_daemon_restart", Class: ClassError, Cause: ticket.Software, Tag: "init", Facility: logfmt.FacDaemon, Severity: logfmt.Critical,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("process rpd pid %d terminated signal %d restarting", 1000+r.Intn(60000), 6+r.Intn(6))
		}})
	add(Family{Name: "err_generic_protocol", Class: ClassError, Cause: ticket.Duplicate, Tag: "rpd", Facility: logfmt.FacDaemon, Severity: logfmt.Error,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("protocol timeout waiting for peer %s retry %d backoff", ipv4(r), 1+r.Intn(8))
		}})

	// --- Maintenance ----------------------------------------------------
	add(Family{Name: "maint_config_commit", Class: ClassMaintenance, Cause: ticket.Maintenance, Tag: "mgd", Facility: logfmt.FacDaemon, Severity: logfmt.Notice,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("UI_COMMIT user netops commit confirmed rollback pending %d", r.Intn(10))
		}})
	add(Family{Name: "maint_package_add", Class: ClassMaintenance, Cause: ticket.Maintenance, Tag: "mgd", Facility: logfmt.FacDaemon, Severity: logfmt.Notice,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("package staged build %d.%dR%d validated", 17+r.Intn(3), 1+r.Intn(4), 1+r.Intn(3))
		}})
	add(Family{Name: "maint_graceful_switch", Class: ClassMaintenance, Cause: ticket.Maintenance, Tag: "chassisd", Facility: logfmt.FacDaemon, Severity: logfmt.Notice,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("graceful routing engine switchover step %d of %d complete", 1+r.Intn(5), 5)
		}})

	// --- Physical-layer families (pPE only) ----------------------------
	add(Family{Name: "phys_fan_rpm", Class: ClassPhysical, Tag: "chassisd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("fan tray %d rpm %d within nominal range", r.Intn(4), 3000+r.Intn(4000))
		}})
	add(Family{Name: "phys_temp_sensor", Class: ClassPhysical, Tag: "chassisd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("temperature sensor zone %d reads %d celsius", r.Intn(8), 25+r.Intn(35))
		}})
	add(Family{Name: "phys_psu_status", Class: ClassPhysical, Tag: "chassisd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("power supply %d output %d watts nominal", r.Intn(4), 400+r.Intn(800))
		}})
	add(Family{Name: "phys_optics_dbm", Class: ClassPhysical, Tag: "chassisd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("optics monitor %s tx %d.%d dbm rx ok", iface(r), r.Intn(4), r.Intn(10))
		}})
	add(Family{Name: "phys_fabric_healing", Class: ClassPhysical, Tag: "sfc", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("fabric plane %d healing check passed cells %d", r.Intn(8), r.Intn(100000))
		}})
	add(Family{Name: "phys_linecard_env", Class: ClassPhysical, Tag: "chassisd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("linecard %d environmental sweep humidity %d percent", r.Intn(8), 20+r.Intn(40))
		}})

	// --- Post-update families (appear only after the system update) ----
	add(Family{Name: "upd_telemetry_stream", Class: ClassPostUpdate, Tag: "telemetryd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("grpc telemetry stream exported %d sensors seq %d", 4+r.Intn(40), r.Intn(1000000))
		}})
	add(Family{Name: "upd_flow_agent", Class: ClassPostUpdate, Tag: "flowd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("ipfix export flushed %d flows to collector %s", r.Intn(5000), ipv4(r))
		}})
	add(Family{Name: "upd_policy_engine", Class: ClassPostUpdate, Tag: "pfed", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("policy engine v2 evaluated %d rules in %d us", 10+r.Intn(200), 100+r.Intn(5000))
		}})
	add(Family{Name: "upd_container_probe", Class: ClassPostUpdate, Tag: "vnfmgr", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("container liveness probe passed pod vpe-ctrl-%d restarts %d", r.Intn(8), r.Intn(3))
		}})
	add(Family{Name: "upd_sync_daemon", Class: ClassPostUpdate, Tag: "syncd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("state sync cycle committed %d objects generation %d", r.Intn(900), r.Intn(100000))
		}})
	add(Family{Name: "upd_analytics", Class: ClassPostUpdate, Tag: "telemetryd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("analytics pipeline heartbeat lag %d ms shards %d", r.Intn(400), 1+r.Intn(16))
		}})

	// v2 variants of common chatter: a software update rewrites existing
	// daemons' message formats, so post-update vPEs swap much of their
	// core distribution for these (the §3.3 cosine collapse).
	add(Family{Name: "upd_bgp_v2", Class: ClassPostUpdate, Tag: "rpd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("BGP2 session heartbeat peer %s epoch %d state steady", ipv4(r), r.Intn(100000))
		}})
	add(Family{Name: "upd_ifmib_v2", Class: ClassPostUpdate, Tag: "mib2d", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("ifmib bulk snapshot emitted port %s counters %d", iface(r), r.Intn(64))
		}})
	add(Family{Name: "upd_chassis_v2", Class: ClassPostUpdate, Tag: "chassisd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("chassis health digest generation %d score %d of 100", r.Intn(100000), 70+r.Intn(30))
		}})
	add(Family{Name: "upd_snmp_v2", Class: ClassPostUpdate, Tag: "snmpd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("snmp agentx subtree refresh handled %d oids in %d us", r.Intn(400), 100+r.Intn(9000))
		}})
	add(Family{Name: "upd_arp_v2", Class: ClassPostUpdate, Tag: "kernel", Facility: logfmt.FacKernel, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("neighbor cache reconciled %d entries table bridge.%d", r.Intn(3000), r.Intn(4))
		}})
	add(Family{Name: "upd_lacp_v2", Class: ClassPostUpdate, Tag: "lacpd", Facility: logfmt.FacDaemon, Severity: logfmt.Info,
		Render: func(r *rand.Rand) string {
			return fmt.Sprintf("lag telemetry bundle ae%d members healthy %d degraded %d", r.Intn(8), 1+r.Intn(4), r.Intn(2))
		}})

	return fams
}

// FamiliesByClass returns the indices of all families with the given class.
func FamiliesByClass(fams []Family, c Class) []int {
	var out []int
	for i, f := range fams {
		if f.Class == c {
			out = append(out, i)
		}
	}
	return out
}

// FamiliesByCause returns the indices of families with the given class and
// root cause (for omen/error families).
func FamiliesByCause(fams []Family, c Class, cause ticket.RootCause) []int {
	var out []int
	for i, f := range fams {
		if f.Class == c && f.Cause == cause {
			out = append(out, i)
		}
	}
	return out
}
