package nfvsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/ticket"
)

// Config parameterizes a simulated deployment. The zero value is not
// usable; start from DefaultConfig or TestConfig.
type Config struct {
	// Seed drives all randomness; equal seeds give identical traces.
	Seed int64
	// NumVPEs is the virtualized PE fleet size (the paper's was 38).
	NumVPEs int
	// NumPPEs adds a physical-PE comparison fleet that emits additional
	// physical-layer logging (for the §2 volume comparison). pPEs produce
	// logs only, no tickets.
	NumPPEs int
	// Start is the first instant of the trace.
	Start time.Time
	// Months is the horizon length (the paper's was 18).
	Months int
	// BaseRatePerHour is the mean normal syslog rate per vPE.
	BaseRatePerHour float64
	// RoleCount is the number of vPE role archetypes; the paper's fleet
	// clustered into 4 groups (§4.3).
	RoleCount int
	// MeanFaultGapHours parameterizes the heavy-tailed inter-fault gap
	// mixture; see drawFaultGap. Smaller means more faults.
	MeanFaultGapHours float64
	// MaintenanceEvery is the mean gap between maintenance windows.
	// Windows are rare but each produces several tickets, so maintenance
	// dominates ticket counts (Figure 1a) while per-vPE non-duplicated
	// inter-arrival keeps its heavy >1000 h tail (Figure 1b).
	MaintenanceEvery time.Duration
	// DupProb is the probability a fault ticket spawns duplicate tickets.
	DupProb float64
	// CoreIncidentsPerMonth is the rate of fleet-wide core-router
	// incidents that hit many vPEs in the same interval (Figure 2).
	CoreIncidentsPerMonth float64
	// UpdateMonth is the 0-based month index when the system update
	// starts rolling out; -1 disables the update.
	UpdateMonth int
	// UpdateFraction is the fraction of vPEs that receive the update.
	UpdateFraction float64
	// PPERateMultiplier scales pPE log volume relative to a vPE; 4.3
	// reproduces "vPE syslogs have 77% less volume than pPE syslogs".
	PPERateMultiplier float64
	// GlitchesPerDay is the per-vPE rate of benign anomaly bursts —
	// transient flaps and sensor excursions that look exactly like fault
	// omens but lead to no ticket. They are what keeps the operating
	// point's precision below 1 (the paper lands at P≈0.80 with 0.6
	// false alarms/day, §5.2).
	GlitchesPerDay float64
	// Injections appends scenario-driven events (timed fault episodes,
	// ticket storms, benign bursts) on top of the background schedule.
	// Each injection renders from its own seeded RNG, so the base trace
	// is byte-identical with or without it — the scenario harness's
	// reproducibility contract.
	Injections []Injection
}

// DefaultConfig mirrors the paper's deployment scale: 38 vPEs over 18
// months starting October 2016, with the system update rolling out around
// month 14 (late 2017).
func DefaultConfig() Config {
	return Config{
		Seed:                  1,
		NumVPEs:               38,
		NumPPEs:               0,
		Start:                 time.Date(2016, 10, 1, 0, 0, 0, 0, time.UTC),
		Months:                18,
		BaseRatePerHour:       1.5,
		RoleCount:             4,
		MeanFaultGapHours:     1400,
		MaintenanceEvery:      60 * 24 * time.Hour,
		DupProb:               0.3,
		CoreIncidentsPerMonth: 0.12,
		UpdateMonth:           14,
		UpdateFraction:        0.8,
		PPERateMultiplier:     4.3,
		GlitchesPerDay:        0.08,
	}
}

// TestConfig is a small, fast configuration for unit tests: a handful of
// vPEs over a few months with elevated fault rates so every code path is
// exercised cheaply.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.NumVPEs = 6
	cfg.Months = 4
	cfg.BaseRatePerHour = 1.2
	cfg.MeanFaultGapHours = 250
	cfg.MaintenanceEvery = 35 * 24 * time.Hour
	cfg.UpdateMonth = 2
	return cfg
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.NumVPEs <= 0:
		return fmt.Errorf("nfvsim: NumVPEs must be positive, got %d", c.NumVPEs)
	case c.Months <= 0:
		return fmt.Errorf("nfvsim: Months must be positive, got %d", c.Months)
	case c.BaseRatePerHour <= 0:
		return fmt.Errorf("nfvsim: BaseRatePerHour must be positive, got %v", c.BaseRatePerHour)
	case c.RoleCount <= 0:
		return fmt.Errorf("nfvsim: RoleCount must be positive, got %d", c.RoleCount)
	case c.Start.IsZero():
		return fmt.Errorf("nfvsim: Start must be set")
	case c.MeanFaultGapHours <= 0:
		return fmt.Errorf("nfvsim: MeanFaultGapHours must be positive, got %v", c.MeanFaultGapHours)
	case c.UpdateMonth >= c.Months:
		return fmt.Errorf("nfvsim: UpdateMonth %d outside horizon of %d months", c.UpdateMonth, c.Months)
	case c.UpdateFraction < 0 || c.UpdateFraction > 1:
		return fmt.Errorf("nfvsim: UpdateFraction must be in [0,1], got %v", c.UpdateFraction)
	}
	return c.validateInjections()
}

// End returns the first instant after the trace horizon.
func (c *Config) End() time.Time { return c.Start.AddDate(0, c.Months, 0) }

// Trace is a generated deployment history.
type Trace struct {
	// Messages holds every syslog message, vPEs and pPEs interleaved,
	// sorted by time.
	Messages []logfmt.Message
	// Tickets holds every trouble ticket, sorted by report time.
	Tickets []ticket.Ticket
	// VPENames lists the vPE hostnames ("vpe00"…).
	VPENames []string
	// PPENames lists the pPE hostnames ("ppe00"…), if any.
	PPENames []string
	// UpdateTimes maps each updated vPE to the instant its system update
	// took effect (used by tests and the oracle-adaptation ablation; the
	// pipeline itself detects updates from distribution shift).
	UpdateTimes map[string]time.Time
	// RoleOf maps each vPE to its role archetype index — the ground
	// truth the clustering stage should rediscover.
	RoleOf map[string]int
}

// ByVPE returns messages grouped per host, each group sorted by time.
func (t *Trace) ByVPE() map[string][]logfmt.Message {
	out := make(map[string][]logfmt.Message)
	for _, m := range t.Messages {
		out[m.Host] = append(out[m.Host], m)
	}
	return out
}

// TicketStore wraps the tickets in a ticket.Store.
func (t *Trace) TicketStore() *ticket.Store { return ticket.NewStore(t.Tickets) }

// Deployment is a configured simulator.
type Deployment struct {
	cfg   Config
	fams  []Family
	roles []*role
	vpes  []*vpeState
	ppes  []*vpeState
}

// vpeState is the per-router simulation state.
type vpeState struct {
	name       string
	roleIdx    int
	rng        *rand.Rand
	rateMult   float64 // volume multiplier
	faultMult  float64 // ticket-volume multiplier (skews Figure 2)
	physical   bool
	updated    bool
	updateTime time.Time
	// privRole, when non-nil, overrides the shared archetype: outlier
	// vPEs with unusual server roles/configurations whose syslog barely
	// resembles the fleet aggregate (Figure 3's "5 vPEs below 0.5").
	privRole *role
}

// New builds a deployment from cfg.
func New(cfg Config) (*Deployment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Deployment{cfg: cfg, fams: Library()}
	d.roles = buildRoles(d.fams, cfg.RoleCount, cfg.Seed)
	root := rand.New(rand.NewSource(cfg.Seed))

	// Role populations are skewed (40/30/20/10-ish) so the aggregate
	// syslog distribution is dominated by the big roles, giving the
	// Figure 3 cosine-similarity spread.
	for i := 0; i < cfg.NumVPEs; i++ {
		v := &vpeState{
			name:      fmt.Sprintf("vpe%02d", i),
			roleIdx:   pickRole(root, cfg.RoleCount),
			rng:       rand.New(rand.NewSource(cfg.Seed + 1000 + int64(i))),
			rateMult:  0.75 + root.Float64()*0.6,
			faultMult: lognormalish(root, 0.75),
		}
		// ~1 in 8 vPEs is an outlier with a private role: its syslog
		// distribution sits far from the fleet aggregate (Figure 3's
		// handful of vPEs below 0.5 cosine similarity).
		if root.Float64() < 0.125 {
			v.privRole = buildPrivateRole(d.fams, cfg.Seed+7777*int64(i+1))
			v.roleIdx = -1
		}
		d.vpes = append(d.vpes, v)
	}
	// Update rollout: a contiguous two-week window inside UpdateMonth.
	if cfg.UpdateMonth >= 0 {
		updStart := cfg.Start.AddDate(0, cfg.UpdateMonth, 0)
		for _, v := range d.vpes {
			if root.Float64() < cfg.UpdateFraction {
				v.updated = true
				v.updateTime = updStart.Add(time.Duration(root.Float64() * float64(14*24*time.Hour)))
			}
		}
	}
	for i := 0; i < cfg.NumPPEs; i++ {
		p := &vpeState{
			name:     fmt.Sprintf("ppe%02d", i),
			roleIdx:  pickRole(root, cfg.RoleCount),
			rng:      rand.New(rand.NewSource(cfg.Seed + 5000 + int64(i))),
			rateMult: (0.75 + root.Float64()*0.6) * cfg.PPERateMultiplier,
			physical: true,
		}
		d.ppes = append(d.ppes, p)
	}
	return d, nil
}

// pickRole assigns roles with a skewed population: role 0 is the most
// common archetype, the last role the rarest.
func pickRole(r *rand.Rand, roleCount int) int {
	u := r.Float64()
	acc := 0.0
	for i := 0; i < roleCount; i++ {
		share := roleShare(i, roleCount)
		acc += share
		if u < acc {
			return i
		}
	}
	return roleCount - 1
}

func roleShare(i, n int) float64 {
	// Mild decay (1/sqrt) normalized over n roles: the biggest archetype
	// holds ~36% of a 4-role fleet, so the fleet aggregate is a blend no
	// single role dominates — which keeps most vPEs' cosine similarity
	// to the aggregate below the paper's 0.8 line (Figure 3).
	var total float64
	for j := 0; j < n; j++ {
		total += 1 / math.Sqrt(float64(j+1))
	}
	return (1 / math.Sqrt(float64(i+1))) / total
}

// lognormalish returns exp(N(0, sigma)), a skewed positive multiplier.
func lognormalish(r *rand.Rand, sigma float64) float64 {
	x := r.NormFloat64() * sigma
	if x > 2.5 {
		x = 2.5
	}
	if x < -1.5 {
		x = -1.5
	}
	return math.Exp(x)
}

// Generate produces the full trace. It is deterministic: calling it again
// on the same deployment (or on a fresh deployment with the same Config)
// yields an identical trace.
func (d *Deployment) Generate() (*Trace, error) {
	// Re-seed per-router RNGs so repeated Generate calls are identical.
	for i, v := range d.vpes {
		v.rng = rand.New(rand.NewSource(d.cfg.Seed + 1000 + int64(i)))
	}
	for i, p := range d.ppes {
		p.rng = rand.New(rand.NewSource(d.cfg.Seed + 5000 + int64(i)))
	}
	tr := &Trace{
		UpdateTimes: make(map[string]time.Time),
		RoleOf:      make(map[string]int),
	}
	var allTickets []episodeTicket
	for _, v := range d.vpes {
		tr.VPENames = append(tr.VPENames, v.name)
		tr.RoleOf[v.name] = v.roleIdx
		if v.updated {
			tr.UpdateTimes[v.name] = v.updateTime
		}
	}
	for _, p := range d.ppes {
		tr.PPENames = append(tr.PPENames, p.name)
	}

	// 1. Schedule fault episodes and maintenance per vPE.
	episodes := d.scheduleEpisodes()

	// 2. Fleet-wide core incidents, then scenario-driven injections
	// (rendered from private RNGs; see Injection).
	episodes = append(episodes, d.scheduleCoreIncidents()...)
	episodes = append(episodes, d.scheduleInjections()...)

	// 3. Render episode syslog + tickets.
	var msgs []logfmt.Message
	for i := range episodes {
		ep := &episodes[i]
		msgs = append(msgs, d.renderEpisode(ep)...)
		allTickets = append(allTickets, ep.tickets...)
	}

	// 4. Normal traffic plus benign glitch bursts per router.
	for _, v := range d.vpes {
		msgs = append(msgs, d.generateNormal(v)...)
		msgs = append(msgs, d.generateGlitches(v)...)
	}
	for _, p := range d.ppes {
		msgs = append(msgs, d.generateNormal(p)...)
	}

	// 5. Sort and finalize.
	sort.Slice(msgs, func(i, j int) bool {
		if !msgs[i].Time.Equal(msgs[j].Time) {
			return msgs[i].Time.Before(msgs[j].Time)
		}
		if msgs[i].Host != msgs[j].Host {
			return msgs[i].Host < msgs[j].Host
		}
		return msgs[i].Text < msgs[j].Text
	})
	tr.Messages = msgs

	sort.Slice(allTickets, func(i, j int) bool { return allTickets[i].t.Report.Before(allTickets[j].t.Report) })
	idByKey := make(map[int]int) // episode-local key → final ticket ID
	for i := range allTickets {
		et := &allTickets[i]
		et.t.ID = i
		if et.key >= 0 {
			idByKey[et.key] = i
		}
	}
	for i := range allTickets {
		et := &allTickets[i]
		if et.dupOfKey >= 0 {
			et.t.DuplicateOf = idByKey[et.dupOfKey]
		} else {
			et.t.DuplicateOf = -1
		}
		tr.Tickets = append(tr.Tickets, et.t)
	}
	return tr, nil
}
