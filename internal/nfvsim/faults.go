package nfvsim

import (
	"math"
	"math/rand"
	"time"

	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/ticket"
)

// episode is one fault or maintenance event on one vPE, with the tickets
// it produces (original plus duplicates).
type episode struct {
	vpe     *vpeState
	cause   ticket.RootCause
	report  time.Time // ticket report time R
	repair  time.Time // repair finish
	tickets []episodeTicket
	// rng, when non-nil, renders this episode from a private stream
	// instead of the vPE's (scenario injections: the base trace must not
	// shift when an injection is added).
	rng *rand.Rand
	// burst > 0 marks a ticketless omen burst of that many messages at
	// report time (InjectBurst) — no error burst, no infected period.
	burst int
}

// episodeTicket carries a ticket plus simulator-local linkage keys used to
// resolve DuplicateOf IDs after the global sort.
type episodeTicket struct {
	t        ticket.Ticket
	key      int // simulator-local unique key, or -1
	dupOfKey int // key of the original ticket, or -1
}

// causeCalibration encodes the Figure 8 shape per root cause.
type causeCalibration struct {
	// pOmen is the probability the episode emits an omen burst before
	// the ticket report (Fig 8 "0 min": Circuit .74, Software .55,
	// Cable .40, Hardware .28).
	pOmen float64
	// pLead15 is the probability an omen burst leads the report by at
	// least 15 minutes (Q3: Circuit .36, Cable .39, Hardware .38).
	pLead15 float64
	// pError is the probability of an error burst within 15 minutes
	// after the report (Q2: ~80% of tickets show anomalies by +15 min).
	pError float64
	// minDur and maxDur bound the ticket (infected-period) duration.
	minDur, maxDur time.Duration
}

// calibration maps each cause to its Figure 8 parameters.
var calibration = map[ticket.RootCause]causeCalibration{
	ticket.Circuit:     {pOmen: 0.74, pLead15: 0.36, pError: 0.85, minDur: 1 * time.Hour, maxDur: 6 * time.Hour},
	ticket.Software:    {pOmen: 0.55, pLead15: 0.30, pError: 0.85, minDur: 30 * time.Minute, maxDur: 4 * time.Hour},
	ticket.Cable:       {pOmen: 0.40, pLead15: 0.39, pError: 0.80, minDur: 2 * time.Hour, maxDur: 12 * time.Hour},
	ticket.Hardware:    {pOmen: 0.28, pLead15: 0.38, pError: 0.80, minDur: 4 * time.Hour, maxDur: 48 * time.Hour},
	ticket.Duplicate:   {pOmen: 0.30, pLead15: 0.30, pError: 0.85, minDur: 30 * time.Minute, maxDur: 3 * time.Hour},
	ticket.Maintenance: {pOmen: 0.0, pLead15: 0.0, pError: 0.95, minDur: 1 * time.Hour, maxDur: 3 * time.Hour},
}

// faultCauseWeights sets the relative mix of non-maintenance root causes
// (Figure 1a: Circuit is the largest non-maintenance, non-duplicate
// contributor).
var faultCauseWeights = []struct {
	cause  ticket.RootCause
	weight float64
}{
	{ticket.Circuit, 0.42},
	{ticket.Software, 0.22},
	{ticket.Cable, 0.20},
	{ticket.Hardware, 0.16},
}

func pickCause(r *rand.Rand) ticket.RootCause {
	u := r.Float64()
	acc := 0.0
	for _, cw := range faultCauseWeights {
		acc += cw.weight
		if u < acc {
			return cw.cause
		}
	}
	return faultCauseWeights[len(faultCauseWeights)-1].cause
}

// drawFaultGap draws a per-vPE gap between consecutive faults from a
// three-component mixture that, merged with the maintenance schedule and
// follow-up faults, reproduces the Figure 1(b) shape: every gap exceeds
// 40 minutes, ~20%% of observed gaps fall below 10 hours, ~25%% exceed
// 1000 hours.
func drawFaultGap(r *rand.Rand, meanHours float64) time.Duration {
	scale := meanHours / 833 // 833 h is the mixture's unscaled mean
	u := r.Float64()
	var hours float64
	switch {
	case u < 0.08:
		hours = 0.67 + r.Float64()*(10-0.67) // (40 min, 10 h]
	case u < 0.68:
		// Log-uniform on (10h, 1000h].
		hours = 10 * expf(r.Float64()*ln100)
	default:
		hours = 1000 * (1 + r.ExpFloat64()*1.2)
	}
	hours *= scale
	// Clamp far below the int64-nanosecond ceiling; 100 years exceeds any
	// simulation horizon while keeping the Duration conversion exact.
	const maxHours = 100 * 365 * 24
	if hours > maxHours {
		hours = maxHours
	}
	return time.Duration(hours * float64(time.Hour))
}

const ln100 = 4.605170185988092

func expf(x float64) float64 { return math.Exp(x) }

// scheduleEpisodes builds the maintenance and fault schedules for every
// vPE, including duplicate tickets that trail unresolved faults.
func (d *Deployment) scheduleEpisodes() []episode {
	cfg := &d.cfg
	var eps []episode
	keyCounter := 0
	nextKey := func() int { keyCounter++; return keyCounter - 1 }

	for _, v := range d.vpes {
		r := v.rng
		// Maintenance: rare windows at night, each producing a clump of
		// 2-4 tickets spaced 45 min - 2.5 h apart. Clumping keeps
		// maintenance the dominant ticket category (Figure 1a) without
		// destroying the >1000 h tail of per-vPE non-duplicated
		// inter-arrival gaps (Figure 1b).
		t := cfg.Start.Add(time.Duration(r.Float64() * float64(cfg.MaintenanceEvery)))
		for t.Before(cfg.End()) {
			at := time.Date(t.Year(), t.Month(), t.Day(), 1+r.Intn(4), r.Intn(60), 0, 0, t.Location())
			clump := 1
			if r.Float64() < 0.35 {
				clump = 2
			}
			if r.Float64() < 0.08 {
				clump = 3
			}
			for k := 0; k < clump; k++ {
				cal := calibration[ticket.Maintenance]
				dur := cal.minDur + time.Duration(r.Float64()*float64(cal.maxDur-cal.minDur))
				ep := episode{vpe: v, cause: ticket.Maintenance, report: at, repair: at.Add(dur)}
				ep.tickets = []episodeTicket{{
					t:        ticket.Ticket{VPE: v.name, Cause: ticket.Maintenance, Report: at, Repair: at.Add(dur)},
					key:      nextKey(),
					dupOfKey: -1,
				}}
				if at.After(cfg.Start) && at.Before(cfg.End()) {
					eps = append(eps, ep)
				}
				at = at.Add(45*time.Minute + time.Duration(r.Float64()*float64(105*time.Minute)))
			}
			t = t.Add(time.Duration((0.7 + 0.6*r.Float64()) * float64(cfg.MaintenanceEvery)))
		}

		// Faults: heavy-tailed gaps scaled by the vPE's fault multiplier.
		// A quarter of faults trigger a follow-up incident (a different
		// root cause) a few hours later — the multi-ticket incidents that
		// put ~20%% of Figure 1(b)'s gap mass under 10 hours.
		ft := cfg.Start.Add(drawFaultGap(r, cfg.MeanFaultGapHours/v.faultMult))
		for ft.Before(cfg.End()) {
			cause := pickCause(r)
			eps = append(eps, d.makeFaultEpisode(v, cause, ft, nextKey, r))
			if r.Float64() < 0.25 {
				follow := ft.Add(time.Hour + time.Duration(r.Float64()*float64(7*time.Hour)))
				if follow.Before(cfg.End()) {
					eps = append(eps, d.makeFaultEpisode(v, pickCause(r), follow, nextKey, r))
				}
			}
			ft = ft.Add(drawFaultGap(r, cfg.MeanFaultGapHours/v.faultMult))
		}
	}
	return eps
}

// makeFaultEpisode builds one fault episode plus any duplicate tickets.
func (d *Deployment) makeFaultEpisode(v *vpeState, cause ticket.RootCause, report time.Time, nextKey func() int, r *rand.Rand) episode {
	cal := calibration[cause]
	dur := cal.minDur + time.Duration(r.Float64()*float64(cal.maxDur-cal.minDur))
	repair := report.Add(dur)
	ep := episode{vpe: v, cause: cause, report: report, repair: repair}
	origKey := nextKey()
	ep.tickets = []episodeTicket{{
		t:        ticket.Ticket{VPE: v.name, Cause: cause, Report: report, Repair: repair},
		key:      origKey,
		dupOfKey: -1,
	}}
	// Duplicates trail the original in a burst while it stays unresolved.
	if r.Float64() < d.cfg.DupProb {
		n := 1 + r.Intn(2)
		dt := report
		for k := 0; k < n; k++ {
			dt = dt.Add(time.Duration(10+r.Intn(40)) * time.Minute)
			if !dt.Before(repair) {
				break
			}
			dcal := calibration[ticket.Duplicate]
			ddur := dcal.minDur + time.Duration(r.Float64()*float64(dcal.maxDur-dcal.minDur))
			drep := dt.Add(ddur)
			if drep.After(repair) {
				drep = repair
			}
			ep.tickets = append(ep.tickets, episodeTicket{
				t:        ticket.Ticket{VPE: v.name, Cause: ticket.Duplicate, Report: dt, Repair: drep},
				key:      nextKey(),
				dupOfKey: origKey,
			})
		}
	}
	return ep
}

// scheduleCoreIncidents creates rare fleet-wide events: a core-router
// problem disrupts most vPEs in the same interval (the vertical bars of
// Figure 2).
func (d *Deployment) scheduleCoreIncidents() []episode {
	cfg := &d.cfg
	r := rand.New(rand.NewSource(cfg.Seed + 424242))
	horizon := cfg.End().Sub(cfg.Start)
	expected := cfg.CoreIncidentsPerMonth * float64(cfg.Months)
	n := poisson(r, expected)
	var eps []episode
	keyBase := 1 << 20 // disjoint from per-vPE keys
	for i := 0; i < n; i++ {
		at := cfg.Start.Add(time.Duration(r.Float64() * float64(horizon)))
		share := 0.5 + r.Float64()*0.3
		for _, v := range d.vpes {
			if r.Float64() > share {
				continue
			}
			report := at.Add(time.Duration(r.Intn(40)) * time.Minute)
			cal := calibration[ticket.Circuit]
			dur := cal.minDur + time.Duration(r.Float64()*float64(cal.maxDur-cal.minDur))
			key := keyBase
			keyBase++
			eps = append(eps, episode{
				vpe: v, cause: ticket.Circuit, report: report, repair: report.Add(dur),
				tickets: []episodeTicket{{
					t:        ticket.Ticket{VPE: v.name, Cause: ticket.Circuit, Report: report, Repair: report.Add(dur)},
					key:      key,
					dupOfKey: -1,
				}},
			})
		}
	}
	return eps
}

// poisson draws a Poisson variate by inversion (small means only).
func poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := expf(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// renderEpisode emits the syslog footprint of an episode: an optional
// omen burst ahead of the report (Fig 8 lead-time structure), an error
// burst shortly after the report, and scattered errors through the
// infected period. Burst messages arrive seconds apart, matching the
// paper's observation that per-ticket anomalies cluster within a minute
// (§5.1), which is what makes the ≥2-anomaly warning rule effective.
func (d *Deployment) renderEpisode(ep *episode) []logfmt.Message {
	v := ep.vpe
	r := v.rng
	if ep.rng != nil {
		r = ep.rng
	}
	cal := calibration[ep.cause]
	var msgs []logfmt.Message

	if ep.burst > 0 {
		// Ticketless injected burst: omen-family messages seconds apart,
		// exactly the footprint of a benign flap.
		fams := FamiliesByCause(d.fams, ClassOmen, ep.cause)
		if len(fams) == 0 {
			fams = FamiliesByClass(d.fams, ClassOmen)
		}
		t := ep.report
		for k := 0; k < ep.burst; k++ {
			fi := fams[r.Intn(len(fams))]
			msgs = append(msgs, d.renderWith(v, r, fi, t))
			t = t.Add(time.Duration(5+r.Intn(30)) * time.Second)
		}
		return msgs
	}

	if ep.cause == ticket.Maintenance {
		// Maintenance windows log config/package activity from slightly
		// before the ticket through the window.
		maintFams := FamiliesByClass(d.fams, ClassMaintenance)
		t := ep.report.Add(-time.Duration(r.Intn(10)) * time.Minute)
		for t.Before(ep.repair) {
			fi := maintFams[r.Intn(len(maintFams))]
			msgs = append(msgs, d.renderWith(v, r, fi, t))
			t = t.Add(time.Duration(2+r.Intn(10)) * time.Minute)
		}
		return msgs
	}

	omenFams := FamiliesByCause(d.fams, ClassOmen, ep.cause)
	if ep.cause == ticket.Duplicate {
		// Duplicates inherit the generic protocol-trouble signature.
		omenFams = FamiliesByCause(d.fams, ClassOmen, ticket.Software)
	}
	errFams := FamiliesByCause(d.fams, ClassError, ep.cause)
	if len(errFams) == 0 {
		errFams = FamiliesByCause(d.fams, ClassError, ticket.Duplicate)
	}

	// Omen burst before the report.
	if len(omenFams) > 0 && r.Float64() < cal.pOmen {
		var lead time.Duration
		if r.Float64() < cal.pLead15 {
			lead = 15*time.Minute + time.Duration(r.Float64()*float64(25*time.Minute))
		} else {
			lead = 3*time.Minute + time.Duration(r.Float64()*float64(9*time.Minute))
		}
		burstLen := 2 + poisson(r, 2)
		t := ep.report.Add(-lead)
		for k := 0; k < burstLen; k++ {
			fi := omenFams[r.Intn(len(omenFams))]
			msgs = append(msgs, d.renderWith(v, r, fi, t))
			t = t.Add(time.Duration(5+r.Intn(40)) * time.Second)
		}
	}

	// Error burst shortly after the report.
	if len(errFams) > 0 && r.Float64() < cal.pError {
		t := ep.report.Add(time.Duration(r.Float64() * float64(8*time.Minute)))
		burstLen := 3 + poisson(r, 3)
		for k := 0; k < burstLen; k++ {
			fi := errFams[r.Intn(len(errFams))]
			msgs = append(msgs, d.renderWith(v, r, fi, t))
			t = t.Add(time.Duration(2+r.Intn(30)) * time.Second)
		}
	}

	// Scattered errors through the infected period.
	t := ep.report.Add(time.Duration(15+r.Intn(30)) * time.Minute)
	for t.Before(ep.repair) {
		if len(errFams) > 0 && r.Float64() < 0.7 {
			fi := errFams[r.Intn(len(errFams))]
			msgs = append(msgs, d.renderWith(v, r, fi, t))
		}
		t = t.Add(time.Duration(20+r.Intn(60)) * time.Minute)
	}
	return msgs
}

// generateGlitches emits benign anomaly bursts: short clusters of omen or
// rare-family messages with no associated ticket. They are drawn from the
// same families as real omens, so no detector can separate them from true
// early warnings — they bound achievable precision exactly as unexplained
// anomalies do in the paper's production data.
func (d *Deployment) generateGlitches(v *vpeState) []logfmt.Message {
	cfg := &d.cfg
	if cfg.GlitchesPerDay <= 0 {
		return nil
	}
	r := v.rng
	omens := FamiliesByClass(d.fams, ClassOmen)
	rares := FamiliesByClass(d.fams, ClassRare)
	meanGap := time.Duration(float64(24*time.Hour) / cfg.GlitchesPerDay)
	var msgs []logfmt.Message
	t := cfg.Start.Add(expDur(r, meanGap))
	for t.Before(cfg.End()) {
		burst := 2 + r.Intn(2)
		at := t
		var fi int
		if r.Float64() < 0.75 {
			fi = omens[r.Intn(len(omens))]
		} else {
			fi = rares[r.Intn(len(rares))]
		}
		for k := 0; k < burst; k++ {
			msgs = append(msgs, d.render(v, fi, at))
			at = at.Add(time.Duration(10+r.Intn(35)) * time.Second)
		}
		t = t.Add(expDur(r, meanGap))
	}
	return msgs
}
