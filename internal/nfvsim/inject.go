package nfvsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"nfvpredict/internal/ticket"
)

// InjectionKind selects what a scenario-driven injection produces.
type InjectionKind int

const (
	// InjectFault produces a full fault episode on each target vPE: a
	// ticket (plus optional duplicates) with the cause's calibrated omen
	// and error bursts around the report time.
	InjectFault InjectionKind = iota
	// InjectBurst produces a ticketless anomaly burst — omen-family
	// messages with no associated ticket, the shape of a benign flap or
	// an unexplained glitch.
	InjectBurst
)

// String names the kind for error messages and reports.
func (k InjectionKind) String() string {
	switch k {
	case InjectFault:
		return "fault"
	case InjectBurst:
		return "burst"
	default:
		return fmt.Sprintf("InjectionKind(%d)", int(k))
	}
}

// Injection is one scheduled scenario event. Injections are rendered from
// a private per-injection RNG stream, so adding or removing one never
// perturbs the base trace: the same Config minus its Injections generates
// byte-identical background traffic.
type Injection struct {
	// At is the first occurrence time (trace time).
	At time.Time
	// Kind selects fault episodes or ticketless bursts.
	Kind InjectionKind
	// Cause is the fault root cause (InjectFault: one of Circuit,
	// Software, Cable, Hardware; InjectBurst: the omen family to draw
	// from, defaulting to Software's generic protocol trouble).
	Cause ticket.RootCause
	// VPEs lists explicit target hostnames. Empty means select by
	// Fraction instead.
	VPEs []string
	// Fraction selects ceil(Fraction×fleet) targets deterministically
	// when VPEs is empty; 0 targets a single vPE.
	Fraction float64
	// Duration overrides the infected-period length (InjectFault);
	// 0 draws from the cause's calibration.
	Duration time.Duration
	// Duplicates appends this many duplicate tickets per injected fault.
	Duplicates int
	// Messages is the burst length (InjectBurst); 0 means 3.
	Messages int
	// Repeat replays the injection this many times (0 and 1 both mean
	// once) — a flapping vPE is one burst injection with Repeat high.
	Repeat int
	// Every is the gap between repeats; 0 means 1 hour.
	Every time.Duration
}

// validateInjections checks every injection against the fleet.
func (c *Config) validateInjections() error {
	valid := make(map[string]bool, c.NumVPEs)
	for i := 0; i < c.NumVPEs; i++ {
		valid[fmt.Sprintf("vpe%02d", i)] = true
	}
	for i := range c.Injections {
		inj := &c.Injections[i]
		switch {
		case inj.At.IsZero():
			return fmt.Errorf("nfvsim: injection %d: At must be set", i)
		case inj.Kind != InjectFault && inj.Kind != InjectBurst:
			return fmt.Errorf("nfvsim: injection %d: unknown kind %d", i, int(inj.Kind))
		case inj.Fraction < 0 || inj.Fraction > 1:
			return fmt.Errorf("nfvsim: injection %d: Fraction must be in [0,1], got %v", i, inj.Fraction)
		case inj.Duplicates < 0:
			return fmt.Errorf("nfvsim: injection %d: Duplicates must be ≥ 0", i)
		case inj.Repeat < 0:
			return fmt.Errorf("nfvsim: injection %d: Repeat must be ≥ 0", i)
		}
		if inj.Kind == InjectFault {
			switch inj.Cause {
			case ticket.Circuit, ticket.Software, ticket.Cable, ticket.Hardware:
			default:
				return fmt.Errorf("nfvsim: injection %d: fault cause must be Circuit/Software/Cable/Hardware, got %s", i, inj.Cause)
			}
		}
		for _, name := range inj.VPEs {
			if !valid[name] {
				return fmt.Errorf("nfvsim: injection %d: unknown vPE %q (fleet has %d vPEs)", i, name, c.NumVPEs)
			}
		}
	}
	return nil
}

// scheduleInjections turns Config.Injections into episodes. Each injection
// owns a seeded RNG derived from (Seed, index), and every episode carries
// that RNG so rendering never touches the per-vPE streams.
func (d *Deployment) scheduleInjections() []episode {
	cfg := &d.cfg
	if len(cfg.Injections) == 0 {
		return nil
	}
	byName := make(map[string]*vpeState, len(d.vpes))
	for _, v := range d.vpes {
		byName[v.name] = v
	}
	keyCounter := 1 << 28 // disjoint from per-vPE and core-incident keys
	nextKey := func() int { keyCounter++; return keyCounter - 1 }

	var eps []episode
	for i := range cfg.Injections {
		inj := &cfg.Injections[i]
		r := rand.New(rand.NewSource(cfg.Seed + 868686 + 999983*int64(i)))
		targets := d.injectionTargets(inj, byName, r)
		repeat := inj.Repeat
		if repeat < 1 {
			repeat = 1
		}
		every := inj.Every
		if every <= 0 {
			every = time.Hour
		}
		for rep := 0; rep < repeat; rep++ {
			base := inj.At.Add(time.Duration(rep) * every)
			for _, v := range targets {
				// Per-target jitter: a fleet-wide event is a cluster of
				// reports over tens of minutes, not a single instant.
				at := base
				if len(targets) > 1 {
					at = at.Add(time.Duration(r.Intn(30)) * time.Minute)
				}
				if !at.After(cfg.Start) || !at.Before(cfg.End()) {
					continue
				}
				switch inj.Kind {
				case InjectFault:
					eps = append(eps, d.makeInjectedFault(v, inj, at, nextKey, r))
				case InjectBurst:
					n := inj.Messages
					if n < 2 {
						n = 3
					}
					cause := inj.Cause
					if cause == ticket.Maintenance || cause == ticket.Duplicate {
						cause = ticket.Software
					}
					eps = append(eps, episode{vpe: v, cause: cause, report: at, repair: at, burst: n, rng: r})
				}
			}
		}
	}
	return eps
}

// injectionTargets resolves an injection's target set: explicit names, or
// a deterministic Fraction-sized sample of the fleet.
func (d *Deployment) injectionTargets(inj *Injection, byName map[string]*vpeState, r *rand.Rand) []*vpeState {
	if len(inj.VPEs) > 0 {
		out := make([]*vpeState, 0, len(inj.VPEs))
		for _, name := range inj.VPEs {
			if v := byName[name]; v != nil {
				out = append(out, v)
			}
		}
		return out
	}
	n := int(math.Ceil(inj.Fraction * float64(len(d.vpes))))
	if n < 1 {
		n = 1
	}
	if n > len(d.vpes) {
		n = len(d.vpes)
	}
	idx := r.Perm(len(d.vpes))[:n]
	sort.Ints(idx)
	out := make([]*vpeState, 0, n)
	for _, i := range idx {
		out = append(out, d.vpes[i])
	}
	return out
}

// makeInjectedFault builds a fault episode with explicit duration and
// duplicate-count control, rendered from the injection's private RNG.
func (d *Deployment) makeInjectedFault(v *vpeState, inj *Injection, report time.Time, nextKey func() int, r *rand.Rand) episode {
	cal := calibration[inj.Cause]
	dur := inj.Duration
	if dur <= 0 {
		dur = cal.minDur + time.Duration(r.Float64()*float64(cal.maxDur-cal.minDur))
	}
	repair := report.Add(dur)
	ep := episode{vpe: v, cause: inj.Cause, report: report, repair: repair, rng: r}
	origKey := nextKey()
	ep.tickets = []episodeTicket{{
		t:        ticket.Ticket{VPE: v.name, Cause: inj.Cause, Report: report, Repair: repair},
		key:      origKey,
		dupOfKey: -1,
	}}
	// Duplicates spread through the infected period while the original
	// stays unresolved — a duplicate-ticket storm when Duplicates is high.
	for k := 0; k < inj.Duplicates; k++ {
		frac := float64(k+1) / float64(inj.Duplicates+1)
		dt := report.Add(time.Duration(frac*float64(dur)) + time.Duration(r.Intn(5))*time.Minute)
		if !dt.Before(repair) {
			dt = repair.Add(-time.Minute)
		}
		if !dt.After(report) {
			continue
		}
		dcal := calibration[ticket.Duplicate]
		ddur := dcal.minDur + time.Duration(r.Float64()*float64(dcal.maxDur-dcal.minDur))
		drep := dt.Add(ddur)
		if drep.After(repair) {
			drep = repair
		}
		ep.tickets = append(ep.tickets, episodeTicket{
			t:        ticket.Ticket{VPE: v.name, Cause: ticket.Duplicate, Report: dt, Repair: drep},
			key:      nextKey(),
			dupOfKey: origKey,
		})
	}
	return ep
}
