package nfvsim

import (
	"math"
	"math/rand"
	"time"

	"nfvpredict/internal/logfmt"
)

// role is a vPE archetype: a weighted family subset plus a motif catalog.
// Motifs are short fixed sequences of families (a poll cycle, a login
// audit trail, a telemetry sweep) that give normal syslog the sequential
// structure the LSTM exploits (§4.2: "vPE syslogs display sequential
// patterns").
type role struct {
	idx int
	// pre and post are the motif catalogs before and after the system
	// update; non-updated vPEs use pre for the whole trace.
	pre, post *motifSet
}

// motifSet is a weighted catalog of motifs over family indices.
type motifSet struct {
	motifs  [][]int   // sequences of family indices
	weights []float64 // normalized selection probabilities
}

// pick selects a motif index by weight.
func (ms *motifSet) pick(r *rand.Rand) []int {
	u := r.Float64()
	acc := 0.0
	for i, w := range ms.weights {
		acc += w
		if u < acc {
			return ms.motifs[i]
		}
	}
	return ms.motifs[len(ms.motifs)-1]
}

// familySet returns the distinct families used by the catalog.
func (ms *motifSet) familySet() map[int]bool {
	out := make(map[int]bool)
	for _, m := range ms.motifs {
		for _, f := range m {
			out[f] = true
		}
	}
	return out
}

// buildRoles constructs roleCount archetypes over the family library.
// Each role shares a common core of families with every other role but
// weights role-specific families heavily, producing the partial-overlap
// structure behind Figure 3 (only ~1/3 of vPEs closely match the fleet
// aggregate) while keeping K-means able to recover the archetypes.
func buildRoles(fams []Family, roleCount int, seed int64) []*role {
	normal := FamiliesByClass(fams, ClassNormal)
	rare := FamiliesByClass(fams, ClassRare)
	postUpd := FamiliesByClass(fams, ClassPostUpdate)

	roles := make([]*role, roleCount)
	for ri := 0; ri < roleCount; ri++ {
		rng := rand.New(rand.NewSource(seed + 77*int64(ri+1)))
		// Core families shared by all roles: the first third of the
		// normal catalog. Role-specific: a deterministic, role-dependent
		// slice of the remainder.
		core := normal[:len(normal)/3]
		rest := normal[len(normal)/3:]
		span := len(rest) / roleCount
		if span < 2 {
			span = 2
		}
		lo := (ri * span) % len(rest)
		var specific []int
		for k := 0; k < span+3 && k < len(rest); k++ {
			specific = append(specific, rest[(lo+k)%len(rest)])
		}
		roleRare := []int{rare[ri%len(rare)], rare[(ri+1)%len(rare)]}

		pre := buildMotifs(rng, core, specific, roleRare)
		addAmbiguousStems(pre, rng, core, specific)

		// Post-update catalog: the software update rewrites both the
		// role-specific families and half the shared core chatter (its
		// daemons emit v2 formats), collapsing the month-over-month
		// cosine similarity as in §3.3.
		rng2 := rand.New(rand.NewSource(seed + 991*int64(ri+1)))
		replaced := make([]int, len(specific))
		copy(replaced, specific)
		for k := 0; k < len(replaced) && k < len(postUpd); k++ {
			if k%2 == 0 || k < 3 {
				replaced[k] = postUpd[(ri+k)%len(postUpd)]
			}
		}
		coreV2 := make([]int, len(core))
		copy(coreV2, core)
		for k := 0; k < len(coreV2); k += 2 {
			coreV2[k] = postUpd[(ri+k+3)%len(postUpd)]
		}
		post := buildMotifs(rng2, coreV2, replaced, roleRare)
		addAmbiguousStems(post, rng2, coreV2, replaced)

		roles[ri] = &role{idx: ri, pre: pre, post: post}
	}
	return roles
}

// buildMotifs assembles a motif catalog: frequent motifs over core and
// specific families with Zipf-like weights, plus two rare "minority
// pattern" motifs (§4.2) built around the role's rare families.
func buildMotifs(rng *rand.Rand, core, specific, rare []int) *motifSet {
	const frequentMotifs = 12
	ms := &motifSet{}
	pool := append(append([]int{}, core...), specific...)
	for i := 0; i < frequentMotifs; i++ {
		length := 2 + rng.Intn(4)
		motif := make([]int, length)
		for j := range motif {
			// Bias toward role-specific families for diversity.
			if rng.Float64() < 0.68 && len(specific) > 0 {
				motif[j] = specific[rng.Intn(len(specific))]
			} else {
				motif[j] = pool[rng.Intn(len(pool))]
			}
		}
		ms.motifs = append(ms.motifs, motif)
	}
	// Minority motifs: rare family followed by a couple of common ones.
	for _, rf := range rare {
		motif := []int{rf, core[rng.Intn(len(core))]}
		ms.motifs = append(ms.motifs, motif)
	}
	// Zipf-ish weights for frequent motifs; tiny fixed mass for minority.
	const minorityMass = 0.02
	var z float64
	for i := 0; i < frequentMotifs; i++ {
		z += 1 / float64(i+1)
	}
	for i := 0; i < frequentMotifs; i++ {
		ms.weights = append(ms.weights, (1-minorityMass)*(1/float64(i+1))/z)
	}
	for range rare {
		ms.weights = append(ms.weights, minorityMass/float64(len(rare)))
	}
	return ms
}

// addAmbiguousStems prepends high-weight motifs that share the same
// two-template stem across ALL roles but complete with role-specific
// templates. A single fleet-wide model faces irreducible ambiguity at the
// stem (it cannot know which role's continuation follows), while a
// per-cluster model is sharp — this is what makes the paper's
// customization gain (Figure 7: "vPE cust" above "Baseline") show up in
// the simulation rather than being absorbed by model capacity.
func addAmbiguousStems(ms *motifSet, rng *rand.Rand, core, specific []int) {
	if len(core) < 4 || len(specific) == 0 {
		return
	}
	stems := [][2]int{{core[0], core[1]}, {core[2], core[3]}, {core[1], core[2]}}
	const stemMass = 0.25 // sizable share: stems are everyday traffic
	// Scale existing weights down to make room.
	for i := range ms.weights {
		ms.weights[i] *= 1 - stemMass
	}
	for si, stem := range stems {
		motif := []int{stem[0], stem[1]}
		compLen := 1 + rng.Intn(2)
		for k := 0; k < compLen; k++ {
			motif = append(motif, specific[rng.Intn(len(specific))])
		}
		ms.motifs = append(ms.motifs, motif)
		ms.weights = append(ms.weights, stemMass/float64(len(stems)))
		_ = si
	}
}

// buildPrivateRole constructs an outlier archetype: heavy weight on an
// unusual slice of the normal catalog with its own motif structure, and a
// post-update variant like every other role.
func buildPrivateRole(fams []Family, seed int64) *role {
	normal := FamiliesByClass(fams, ClassNormal)
	rare := FamiliesByClass(fams, ClassRare)
	postUpd := FamiliesByClass(fams, ClassPostUpdate)
	rng := rand.New(rand.NewSource(seed))
	// The outlier's "specific" pool is a random half of the catalog,
	// including families the shared roles barely use; no shared core, so
	// its aggregate similarity stays low.
	var specific []int
	for _, f := range normal {
		if rng.Float64() < 0.4 {
			specific = append(specific, f)
		}
	}
	if len(specific) < 4 {
		specific = normal[:4]
	}
	tiny := specific[:2]
	roleRare := []int{rare[rng.Intn(len(rare))]}
	pre := buildMotifs(rng, tiny, specific, roleRare)
	replaced := make([]int, len(specific))
	copy(replaced, specific)
	for k := 0; k < len(replaced) && k < len(postUpd); k++ {
		replaced[k] = postUpd[(k*3)%len(postUpd)]
	}
	post := buildMotifs(rng, tiny, replaced, roleRare)
	return &role{idx: -1, pre: pre, post: post}
}

// catalogAt returns the motif catalog in force for v at time t.
func (d *Deployment) catalogAt(v *vpeState, t time.Time) *motifSet {
	r := v.privRole
	if r == nil {
		r = d.roles[v.roleIdx%len(d.roles)]
	}
	if v.updated && !t.Before(v.updateTime) {
		return r.post
	}
	return r.pre
}

// diurnal returns a smooth day-shaped rate multiplier in [0.7, 1.3]:
// routers log more during business hours.
func diurnal(t time.Time) float64 {
	h := float64(t.Hour()) + float64(t.Minute())/60
	// Peak at 14:00, trough at 02:00.
	return 1 + 0.3*sin2pi((h-8)/24)
}

func sin2pi(x float64) float64 { return math.Sin(2 * math.Pi * x) }

// generateNormal produces v's normal (non-episode) syslog across the
// horizon: motif after motif, short intra-motif gaps, exponential
// inter-motif gaps tuned to the configured base rate, diurnally modulated.
// pPEs additionally interleave physical-layer families, multiplying their
// volume (§2's vPE-vs-pPE comparison).
func (d *Deployment) generateNormal(v *vpeState) []logfmt.Message {
	cfg := &d.cfg
	end := cfg.End()
	physFams := FamiliesByClass(d.fams, ClassPhysical)

	rate := cfg.BaseRatePerHour * v.rateMult // messages per hour
	meanPerMotif := 3.5
	physShare := 0.0
	if v.physical {
		// A pPE's extra volume is physical-layer chatter: with rate
		// multiplied by PPERateMultiplier, the non-physical share stays
		// comparable to a vPE's.
		physShare = 1 - 1/cfg.PPERateMultiplier
	}
	motifsPerHour := rate * (1 - physShare) / meanPerMotif
	if motifsPerHour <= 0 {
		return nil
	}
	meanMotifGap := time.Duration(float64(time.Hour) / motifsPerHour)

	var msgs []logfmt.Message
	t := cfg.Start.Add(time.Duration(v.rng.Float64() * float64(meanMotifGap)))
	nextPhys := cfg.Start
	if v.physical {
		physRate := rate * physShare
		nextPhys = cfg.Start.Add(expDur(v.rng, time.Duration(float64(time.Hour)/physRate)))
	}
	for t.Before(end) {
		// Interleave physical-layer singletons up to the current time.
		if v.physical {
			physRate := rate * physShare
			for nextPhys.Before(t) {
				fi := physFams[v.rng.Intn(len(physFams))]
				msgs = append(msgs, d.render(v, fi, nextPhys))
				nextPhys = nextPhys.Add(expDur(v.rng, time.Duration(float64(time.Hour)/physRate)))
			}
		}
		motif := d.catalogAt(v, t).pick(v.rng)
		mt := t
		for _, fi := range motif {
			if !mt.Before(end) {
				break
			}
			msgs = append(msgs, d.render(v, fi, mt))
			mt = mt.Add(time.Duration(1+v.rng.Intn(20)) * time.Second)
		}
		gap := expDur(v.rng, meanMotifGap)
		t = t.Add(time.Duration(float64(gap) / diurnal(t)))
	}
	return msgs
}

// render instantiates one message of family fi at time t from the vPE's
// own RNG stream.
func (d *Deployment) render(v *vpeState, fi int, t time.Time) logfmt.Message {
	return d.renderWith(v, v.rng, fi, t)
}

// renderWith is render with an explicit RNG: injected episodes pass their
// private stream so text rendering never advances the vPE's.
func (d *Deployment) renderWith(v *vpeState, r *rand.Rand, fi int, t time.Time) logfmt.Message {
	f := &d.fams[fi]
	return logfmt.Message{
		Time:     t,
		Host:     v.name,
		Facility: f.Facility,
		Severity: f.Severity,
		Tag:      f.Tag,
		Text:     f.Render(r),
	}
}

// expDur draws an exponential duration with the given mean.
func expDur(r *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(r.ExpFloat64() * float64(mean))
}
