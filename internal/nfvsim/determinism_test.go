package nfvsim

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/ticket"
)

// encodeTrace renders a trace to bytes: every message in JSONL wire form
// plus every ticket field — the byte-level identity the scenario runner's
// reproducibility contract rests on.
func encodeTrace(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := logfmt.NewWriter(&buf)
	for i := range tr.Messages {
		if err := w.Write(&tr.Messages[i]); err != nil {
			t.Fatalf("encoding message: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for _, tk := range tr.Tickets {
		fmt.Fprintf(&buf, "%d|%s|%s|%s|%s|%d\n",
			tk.ID, tk.VPE, tk.Cause,
			tk.Report.Format(time.RFC3339Nano), tk.Repair.Format(time.RFC3339Nano),
			tk.DuplicateOf)
	}
	return buf.Bytes()
}

func generateBytes(t *testing.T, cfg Config) []byte {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tr, err := d.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return encodeTrace(t, tr)
}

// TestDeterministicTrace is the determinism regression test: the same
// Config (same seed) must produce byte-identical rendered traces and
// ticket stores across two independent runs — once for the base
// configuration and once with scenario injections enabled.
func TestDeterministicTrace(t *testing.T) {
	base := TestConfig()
	base.Seed = 99

	withInj := base
	withInj.Injections = []Injection{
		{At: base.Start.Add(200 * time.Hour), Kind: InjectFault, Cause: ticket.Circuit, Fraction: 0.5, Duration: 2 * time.Hour},
		{At: base.Start.Add(400 * time.Hour), Kind: InjectBurst, VPEs: []string{"vpe01"}, Messages: 5, Repeat: 3, Every: 2 * time.Hour},
		{At: base.Start.Add(600 * time.Hour), Kind: InjectFault, Cause: ticket.Hardware, VPEs: []string{"vpe03"}, Duplicates: 3, Duration: 24 * time.Hour},
	}

	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"base", base},
		{"injected", withInj},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := generateBytes(t, tc.cfg)
			b := generateBytes(t, tc.cfg)
			if !bytes.Equal(a, b) {
				t.Fatalf("two runs of the same config diverged (%d vs %d bytes)", len(a), len(b))
			}
		})
	}
}

// TestInjectionsLeaveBaseTraceUnchanged proves the private-RNG contract:
// adding injections only adds messages and tickets — every base message
// and base ticket is still present, bit for bit.
func TestInjectionsLeaveBaseTraceUnchanged(t *testing.T) {
	cfg := TestConfig()
	cfg.Seed = 7
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseTr, err := d.Generate()
	if err != nil {
		t.Fatal(err)
	}

	inj := cfg
	inj.Injections = []Injection{
		{At: cfg.Start.Add(300 * time.Hour), Kind: InjectFault, Cause: ticket.Software, Fraction: 0.4},
		{At: cfg.Start.Add(500 * time.Hour), Kind: InjectBurst, Fraction: 0.3, Messages: 4},
	}
	d2, err := New(inj)
	if err != nil {
		t.Fatal(err)
	}
	injTr, err := d2.Generate()
	if err != nil {
		t.Fatal(err)
	}

	if len(injTr.Messages) <= len(baseTr.Messages) {
		t.Fatalf("injections added no messages: %d vs %d", len(injTr.Messages), len(baseTr.Messages))
	}
	if len(injTr.Tickets) <= len(baseTr.Tickets) {
		t.Fatalf("injections added no tickets: %d vs %d", len(injTr.Tickets), len(baseTr.Tickets))
	}

	key := func(m *logfmt.Message) string {
		return m.Time.Format(time.RFC3339Nano) + "|" + m.Host + "|" + m.Text
	}
	have := make(map[string]int, len(injTr.Messages))
	for i := range injTr.Messages {
		have[key(&injTr.Messages[i])]++
	}
	for i := range baseTr.Messages {
		k := key(&baseTr.Messages[i])
		if have[k] == 0 {
			t.Fatalf("base message missing from injected trace: %s", k)
		}
		have[k]--
	}

	tkey := func(tk *ticket.Ticket) string {
		return fmt.Sprintf("%s|%s|%s|%s", tk.VPE, tk.Cause, tk.Report.Format(time.RFC3339Nano), tk.Repair.Format(time.RFC3339Nano))
	}
	haveT := make(map[string]int, len(injTr.Tickets))
	for i := range injTr.Tickets {
		haveT[tkey(&injTr.Tickets[i])]++
	}
	for i := range baseTr.Tickets {
		k := tkey(&baseTr.Tickets[i])
		if haveT[k] == 0 {
			t.Fatalf("base ticket missing from injected trace: %s", k)
		}
		haveT[k]--
	}
}
