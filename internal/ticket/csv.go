package ticket

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvHeader is the on-disk column layout used by WriteCSV/ReadCSV.
var csvHeader = []string{"id", "vpe", "cause", "report", "repair", "duplicate_of"}

// WriteCSV writes tickets as CSV with a header row, timestamps in RFC 3339.
func WriteCSV(w io.Writer, tickets []Ticket) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("ticket: writing CSV header: %w", err)
	}
	for _, tk := range tickets {
		rec := []string{
			strconv.Itoa(tk.ID),
			tk.VPE,
			tk.Cause.String(),
			tk.Report.Format(time.RFC3339Nano),
			tk.Repair.Format(time.RFC3339Nano),
			strconv.Itoa(tk.DuplicateOf),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("ticket: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("ticket: flushing CSV: %w", err)
	}
	return nil
}

// ReadCSV parses tickets written by WriteCSV.
func ReadCSV(r io.Reader) ([]Ticket, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("ticket: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	start := 0
	if len(rows[0]) > 0 && rows[0][0] == "id" {
		start = 1 // skip header
	}
	var out []Ticket
	for i := start; i < len(rows); i++ {
		row := rows[i]
		if len(row) != len(csvHeader) {
			return nil, fmt.Errorf("ticket: CSV row %d has %d fields, want %d", i, len(row), len(csvHeader))
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("ticket: CSV row %d id: %w", i, err)
		}
		cause, err := parseCause(row[2])
		if err != nil {
			return nil, fmt.Errorf("ticket: CSV row %d: %w", i, err)
		}
		report, err := time.Parse(time.RFC3339Nano, row[3])
		if err != nil {
			return nil, fmt.Errorf("ticket: CSV row %d report: %w", i, err)
		}
		repair, err := time.Parse(time.RFC3339Nano, row[4])
		if err != nil {
			return nil, fmt.Errorf("ticket: CSV row %d repair: %w", i, err)
		}
		dup, err := strconv.Atoi(row[5])
		if err != nil {
			return nil, fmt.Errorf("ticket: CSV row %d duplicate_of: %w", i, err)
		}
		out = append(out, Ticket{ID: id, VPE: row[1], Cause: cause, Report: report, Repair: repair, DuplicateOf: dup})
	}
	return out, nil
}

// parseCause inverts RootCause.String.
func parseCause(s string) (RootCause, error) {
	for _, c := range Causes {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown root cause %q", s)
}
