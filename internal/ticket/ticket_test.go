package ticket

import (
	"testing"
	"time"
)

var t0 = time.Date(2016, 10, 1, 0, 0, 0, 0, time.UTC)

func mk(id int, vpe string, cause RootCause, offset, dur time.Duration) Ticket {
	return Ticket{
		ID:          id,
		VPE:         vpe,
		Cause:       cause,
		Report:      t0.Add(offset),
		Repair:      t0.Add(offset + dur),
		DuplicateOf: -1,
	}
}

func TestRootCauseString(t *testing.T) {
	want := map[RootCause]string{
		Maintenance: "Maintenance", Circuit: "Circuit", Cable: "Cable",
		Hardware: "Hardware", Software: "Software", Duplicate: "DUP",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%d.String()=%q want %q", c, c.String(), s)
		}
	}
	if RootCause(99).String() != "RootCause(99)" {
		t.Fatal("unknown cause formatting")
	}
}

func TestStoreSortsByReport(t *testing.T) {
	s := NewStore([]Ticket{
		mk(2, "a", Circuit, 10*time.Hour, time.Hour),
		mk(1, "a", Cable, 1*time.Hour, time.Hour),
	})
	all := s.All()
	if all[0].ID != 1 || all[1].ID != 2 {
		t.Fatalf("not sorted: %+v", all)
	}
	if s.Len() != 2 {
		t.Fatalf("Len=%d", s.Len())
	}
}

func TestStoreImmutableToInput(t *testing.T) {
	in := []Ticket{mk(1, "a", Circuit, time.Hour, time.Hour)}
	s := NewStore(in)
	in[0].VPE = "mutated"
	if s.All()[0].VPE != "a" {
		t.Fatal("store aliased caller slice")
	}
}

func TestForVPEAndBetween(t *testing.T) {
	s := NewStore([]Ticket{
		mk(1, "a", Circuit, 1*time.Hour, time.Hour),
		mk(2, "b", Circuit, 2*time.Hour, time.Hour),
		mk(3, "a", Software, 30*time.Hour, time.Hour),
	})
	if got := s.ForVPE("a"); len(got) != 2 || got[0].ID != 1 || got[1].ID != 3 {
		t.Fatalf("ForVPE: %+v", got)
	}
	got := s.Between(t0, t0.Add(24*time.Hour))
	if len(got) != 2 {
		t.Fatalf("Between: %+v", got)
	}
	// Boundary: from inclusive, to exclusive.
	got = s.Between(t0.Add(time.Hour), t0.Add(2*time.Hour))
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("Between boundaries: %+v", got)
	}
}

func TestNonDuplicatedAndCounts(t *testing.T) {
	s := NewStore([]Ticket{
		mk(1, "a", Circuit, time.Hour, time.Hour),
		mk(2, "a", Duplicate, 2*time.Hour, time.Hour),
		mk(3, "a", Maintenance, 3*time.Hour, time.Hour),
	})
	if got := s.NonDuplicated(); len(got) != 2 {
		t.Fatalf("NonDuplicated: %+v", got)
	}
	counts := s.CountByCause()
	if counts[Circuit] != 1 || counts[Duplicate] != 1 || counts[Maintenance] != 1 || counts[Cable] != 0 {
		t.Fatalf("CountByCause: %v", counts)
	}
}

func TestMonthlyByCause(t *testing.T) {
	s := NewStore([]Ticket{
		mk(1, "a", Circuit, 24*time.Hour, time.Hour),     // Oct 2016
		mk(2, "a", Maintenance, 24*time.Hour, time.Hour), // Oct 2016
		mk(3, "a", Software, 32*24*time.Hour, time.Hour), // Nov 2016
	})
	months := s.MonthlyByCause(t0, t0.AddDate(0, 2, 0))
	if len(months) != 2 {
		t.Fatalf("months: %d", len(months))
	}
	if months[0].Counts[Circuit] != 1 || months[0].Counts[Maintenance] != 1 || months[0].Total != 2 {
		t.Fatalf("month 0: %+v", months[0])
	}
	if months[1].Counts[Software] != 1 || months[1].Total != 1 {
		t.Fatalf("month 1: %+v", months[1])
	}
}

func TestInterArrivalsExcludesDuplicatesAndCrossVPE(t *testing.T) {
	s := NewStore([]Ticket{
		mk(1, "a", Circuit, 0, time.Hour),
		mk(2, "b", Circuit, 30*time.Minute, time.Hour), // different vPE: no gap
		mk(3, "a", Duplicate, 1*time.Hour, time.Hour),  // excluded
		mk(4, "a", Software, 10*time.Hour, time.Hour),  // gap 10h vs ticket 1
	})
	gaps := s.InterArrivals()
	if len(gaps) != 1 || gaps[0] != 10*time.Hour {
		t.Fatalf("gaps: %v", gaps)
	}
}

func TestCDF(t *testing.T) {
	samples := []time.Duration{1 * time.Hour, 2 * time.Hour, 3 * time.Hour, 4 * time.Hour}
	at := []time.Duration{30 * time.Minute, 2 * time.Hour, 10 * time.Hour}
	cdf := CDF(samples, at)
	if cdf[0] != 0 || cdf[1] != 0.5 || cdf[2] != 1 {
		t.Fatalf("CDF: %v", cdf)
	}
	if got := CDF(nil, at); got[0] != 0 || got[2] != 0 {
		t.Fatalf("empty CDF: %v", got)
	}
}

func TestQuantile(t *testing.T) {
	samples := []time.Duration{4, 1, 3, 2} // sorted: 1 2 3 4
	if Quantile(samples, 0) != 1 || Quantile(samples, 1) != 4 {
		t.Fatal("extremes wrong")
	}
	if Quantile(samples, 0.5) != 3 { // nearest-rank idx=2
		t.Fatalf("median=%v", Quantile(samples, 0.5))
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
}

func TestOccurrenceMatrix(t *testing.T) {
	day := 24 * time.Hour
	s := NewStore([]Ticket{
		mk(1, "busy", Circuit, 0, time.Hour),
		mk(2, "busy", Software, 2*day, time.Hour),
		mk(3, "busy", Circuit, 2*day+time.Hour, time.Hour), // same bin as #2
		mk(4, "quiet", Circuit, 2*day+2*time.Hour, time.Hour),
		mk(5, "quiet", Maintenance, 5*day, time.Hour), // excluded
	})
	cells, perBin := s.OccurrenceMatrix(t0, t0.Add(30*day), day)
	if len(cells) != 3 { // busy@0, busy@2d (dedup), quiet@2d
		t.Fatalf("cells: %+v", cells)
	}
	// busy has 3 non-maintenance tickets, quiet has 1 → quiet index 0.
	for _, c := range cells {
		if c.VPE == "quiet" && c.VPEIndex != 0 {
			t.Fatalf("quiet should sort first: %+v", c)
		}
		if c.VPE == "busy" && c.VPEIndex != 1 {
			t.Fatalf("busy should sort last: %+v", c)
		}
	}
	if perBin[t0.Add(2*day)] != 2 {
		t.Fatalf("perBin: %v", perBin)
	}
}

func TestDuplicateBurstStats(t *testing.T) {
	s := NewStore([]Ticket{
		mk(1, "a", Circuit, 0, time.Hour),
		mk(2, "a", Duplicate, 10*time.Minute, time.Hour), // bursty (10m after #1)
		mk(3, "a", Duplicate, 20*time.Minute, time.Hour), // bursty (10m after #2)
		mk(4, "a", Duplicate, 50*time.Hour, time.Hour),   // not bursty
	})
	bursty, total := s.DuplicateBurstStats(time.Hour)
	if total != 3 || bursty != 2 {
		t.Fatalf("bursty=%d total=%d", bursty, total)
	}
}

func TestTicketDuration(t *testing.T) {
	tk := mk(1, "a", Circuit, 0, 90*time.Minute)
	if tk.Duration() != 90*time.Minute {
		t.Fatalf("Duration=%v", tk.Duration())
	}
}
