// Package ticket models network trouble tickets — the approximate ground
// truth the paper evaluates against (§2, §3.2) — and the analytics behind
// its Figures 1 and 2: monthly root-cause breakdowns, inter-arrival
// distributions of non-duplicated tickets, and the per-vPE × time
// occurrence matrix.
package ticket

import (
	"fmt"
	"sort"
	"time"
)

// RootCause is a ticket's root-cause category (§2 of the paper).
type RootCause int

// The six root-cause categories of the paper's ticket feed.
const (
	// Maintenance covers expected or scheduled network actions.
	Maintenance RootCause = iota
	// Circuit means the connection between two devices is down.
	Circuit
	// Cable is a cable disconnection (environmental or human).
	Cable
	// Hardware is a failure of chassis cards or their components.
	Hardware
	// Software is a failure due to software issues.
	Software
	// Duplicate is a follow-up ticket for an unresolved original.
	Duplicate

	// NumCauses is the number of root-cause categories.
	NumCauses = int(Duplicate) + 1
)

// Causes lists all root causes in canonical order.
var Causes = [NumCauses]RootCause{Maintenance, Circuit, Cable, Hardware, Software, Duplicate}

// String returns the category name used in the paper's figures.
func (c RootCause) String() string {
	switch c {
	case Maintenance:
		return "Maintenance"
	case Circuit:
		return "Circuit"
	case Cable:
		return "Cable"
	case Hardware:
		return "Hardware"
	case Software:
		return "Software"
	case Duplicate:
		return "DUP"
	default:
		return fmt.Sprintf("RootCause(%d)", int(c))
	}
}

// Ticket is one trouble ticket. Report is the ticket report time — at or
// after the first symptom, delayed by the ticket-processing flow (§2) —
// and Repair the repair-finish time.
type Ticket struct {
	// ID is a unique ticket identifier.
	ID int
	// VPE names the affected router.
	VPE string
	// Cause is the root-cause category.
	Cause RootCause
	// Report is the ticket report time.
	Report time.Time
	// Repair is the repair-finish time; the [Report, Repair] span is the
	// paper's "infected period".
	Repair time.Time
	// DuplicateOf holds the original ticket's ID for Duplicate tickets,
	// -1 otherwise.
	DuplicateOf int
}

// Duration returns the ticket duration (infected-period length).
func (t *Ticket) Duration() time.Duration { return t.Repair.Sub(t.Report) }

// Store is an immutable, report-time-ordered collection of tickets.
type Store struct {
	tickets []Ticket
}

// NewStore copies ts into a store sorted by report time.
func NewStore(ts []Ticket) *Store {
	cp := make([]Ticket, len(ts))
	copy(cp, ts)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Report.Before(cp[j].Report) })
	return &Store{tickets: cp}
}

// All returns the tickets in report-time order. Callers must not mutate
// the returned slice.
func (s *Store) All() []Ticket { return s.tickets }

// Len returns the number of tickets.
func (s *Store) Len() int { return len(s.tickets) }

// ForVPE returns the tickets of one vPE in report-time order.
func (s *Store) ForVPE(vpe string) []Ticket {
	var out []Ticket
	for _, t := range s.tickets {
		if t.VPE == vpe {
			out = append(out, t)
		}
	}
	return out
}

// Between returns tickets with Report in [from, to).
func (s *Store) Between(from, to time.Time) []Ticket {
	var out []Ticket
	for _, t := range s.tickets {
		if !t.Report.Before(from) && t.Report.Before(to) {
			out = append(out, t)
		}
	}
	return out
}

// NonDuplicated returns all tickets whose cause is not Duplicate.
func (s *Store) NonDuplicated() []Ticket {
	var out []Ticket
	for _, t := range s.tickets {
		if t.Cause != Duplicate {
			out = append(out, t)
		}
	}
	return out
}

// CountByCause returns ticket counts per root cause.
func (s *Store) CountByCause() [NumCauses]int {
	var out [NumCauses]int
	for _, t := range s.tickets {
		out[t.Cause]++
	}
	return out
}

// MonthlyBreakdown is one month's ticket mix (Figure 1a).
type MonthlyBreakdown struct {
	// Month is the first instant of the month.
	Month time.Time
	// Counts holds per-cause ticket counts.
	Counts [NumCauses]int
	// Total is the month's ticket count.
	Total int
}

// MonthlyByCause computes per-month root-cause counts over [from, to),
// reproducing the data behind Figure 1(a).
func (s *Store) MonthlyByCause(from, to time.Time) []MonthlyBreakdown {
	var out []MonthlyBreakdown
	for cur := startOfMonth(from); cur.Before(to); cur = cur.AddDate(0, 1, 0) {
		next := cur.AddDate(0, 1, 0)
		mb := MonthlyBreakdown{Month: cur}
		for _, t := range s.Between(cur, next) {
			mb.Counts[t.Cause]++
			mb.Total++
		}
		out = append(out, mb)
	}
	return out
}

// InterArrivals returns per-vPE inter-arrival gaps between consecutive
// non-duplicated tickets, the Figure 1(b) population.
func (s *Store) InterArrivals() []time.Duration {
	last := make(map[string]time.Time)
	var out []time.Duration
	for _, t := range s.tickets {
		if t.Cause == Duplicate {
			continue
		}
		if prev, ok := last[t.VPE]; ok {
			out = append(out, t.Report.Sub(prev))
		}
		last[t.VPE] = t.Report
	}
	return out
}

// CDF returns the empirical CDF of durations evaluated at the given
// points: fraction of samples ≤ each point.
func CDF(samples []time.Duration, at []time.Duration) []float64 {
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]float64, len(at))
	if len(sorted) == 0 {
		return out
	}
	for i, p := range at {
		idx := sort.Search(len(sorted), func(j int) bool { return sorted[j] > p })
		out[i] = float64(idx) / float64(len(sorted))
	}
	return out
}

// Quantile returns the q-quantile (0..1) of samples by nearest-rank.
func Quantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// OccurrenceCell marks that a vPE had ≥1 non-maintenance ticket in a time
// bin — one point of the Figure 2 scatter.
type OccurrenceCell struct {
	// VPEIndex is the row, with vPEs sorted by ascending ticket volume.
	VPEIndex int
	// VPE is the router name.
	VPE string
	// Bin is the start of the time bin.
	Bin time.Time
}

// OccurrenceMatrix reproduces Figure 2: non-maintenance tickets binned by
// binWidth across [from, to), with vPE rows sorted by total ticket count.
// It also returns, per bin, how many distinct vPEs had tickets — the
// fleet-wide (core-router) incidents show up as bins touching many vPEs.
func (s *Store) OccurrenceMatrix(from, to time.Time, binWidth time.Duration) ([]OccurrenceCell, map[time.Time]int) {
	counts := make(map[string]int)
	for _, t := range s.tickets {
		if t.Cause != Maintenance {
			counts[t.VPE]++
		}
	}
	vpes := make([]string, 0, len(counts))
	for v := range counts {
		vpes = append(vpes, v)
	}
	sort.Slice(vpes, func(i, j int) bool {
		if counts[vpes[i]] != counts[vpes[j]] {
			return counts[vpes[i]] < counts[vpes[j]]
		}
		return vpes[i] < vpes[j]
	})
	index := make(map[string]int, len(vpes))
	for i, v := range vpes {
		index[v] = i
	}
	seen := make(map[string]map[time.Time]bool)
	perBin := make(map[time.Time]int)
	var cells []OccurrenceCell
	for _, t := range s.tickets {
		if t.Cause == Maintenance || t.Report.Before(from) || !t.Report.Before(to) {
			continue
		}
		bin := from.Add(t.Report.Sub(from).Truncate(binWidth))
		if seen[t.VPE] == nil {
			seen[t.VPE] = make(map[time.Time]bool)
		}
		if seen[t.VPE][bin] {
			continue
		}
		seen[t.VPE][bin] = true
		perBin[bin]++
		cells = append(cells, OccurrenceCell{VPEIndex: index[t.VPE], VPE: t.VPE, Bin: bin})
	}
	return cells, perBin
}

// DuplicateBurstStats summarizes how duplicated tickets cluster in time:
// the paper observes they "often arrive in bursts" (§3.2). A duplicate is
// "bursty" when it follows its predecessor on the same vPE within window.
func (s *Store) DuplicateBurstStats(window time.Duration) (bursty, total int) {
	last := make(map[string]time.Time)
	for _, t := range s.tickets {
		if t.Cause != Duplicate {
			last[t.VPE] = t.Report
			continue
		}
		total++
		if prev, ok := last[t.VPE]; ok && t.Report.Sub(prev) <= window {
			bursty++
		}
		last[t.VPE] = t.Report
	}
	return bursty, total
}

func startOfMonth(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, t.Location())
}
