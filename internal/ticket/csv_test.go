package ticket

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	in := []Ticket{
		mk(0, "vpe00", Circuit, time.Hour, 2*time.Hour),
		mk(1, "vpe01", Maintenance, 48*time.Hour, time.Hour),
		{ID: 2, VPE: "vpe00", Cause: Duplicate, Report: t0.Add(3 * time.Hour), Repair: t0.Add(4 * time.Hour), DuplicateOf: 0},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d tickets", len(out))
	}
	for i := range in {
		if out[i].ID != in[i].ID || out[i].VPE != in[i].VPE || out[i].Cause != in[i].Cause ||
			!out[i].Report.Equal(in[i].Report) || !out[i].Repair.Equal(in[i].Repair) ||
			out[i].DuplicateOf != in[i].DuplicateOf {
			t.Fatalf("ticket %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
	}
}

func TestReadCSVEmpty(t *testing.T) {
	out, err := ReadCSV(strings.NewReader(""))
	if err != nil || out != nil {
		t.Fatalf("empty: %v %v", out, err)
	}
}

func TestReadCSVHeaderOnly(t *testing.T) {
	out, err := ReadCSV(strings.NewReader("id,vpe,cause,report,repair,duplicate_of\n"))
	if err != nil || len(out) != 0 {
		t.Fatalf("header only: %v %v", out, err)
	}
}

func TestReadCSVMalformed(t *testing.T) {
	bad := []string{
		"id,vpe,cause,report,repair,duplicate_of\nx,v,Circuit,2017-01-01T00:00:00Z,2017-01-01T01:00:00Z,-1\n",  // bad id
		"id,vpe,cause,report,repair,duplicate_of\n1,v,Nonsense,2017-01-01T00:00:00Z,2017-01-01T01:00:00Z,-1\n", // bad cause
		"id,vpe,cause,report,repair,duplicate_of\n1,v,Circuit,notatime,2017-01-01T01:00:00Z,-1\n",              // bad report
		"id,vpe,cause,report,repair,duplicate_of\n1,v,Circuit,2017-01-01T00:00:00Z,notatime,-1\n",              // bad repair
		"id,vpe,cause,report,repair,duplicate_of\n1,v,Circuit,2017-01-01T00:00:00Z,2017-01-01T01:00:00Z,zzz\n", // bad dup
	}
	for i, s := range bad {
		if _, err := ReadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestParseCauseAll(t *testing.T) {
	for _, c := range Causes {
		got, err := parseCause(c.String())
		if err != nil || got != c {
			t.Fatalf("parseCause(%q)=%v,%v", c.String(), got, err)
		}
	}
	if _, err := parseCause("bogus"); err == nil {
		t.Fatal("bogus cause should fail")
	}
}
