package faultinject

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ErrDiskFull is the injected error for the disk-full fault mode. It wraps
// ErrInjected so errors.Is(err, ErrInjected) still identifies it as
// synthetic.
var ErrDiskFull = fmt.Errorf("%w: no space left on device", ErrInjected)

// Mode names a fault behavior a Point can be armed with.
type Mode string

const (
	// ModeOff disarms the point.
	ModeOff Mode = "off"
	// ModeError makes Fire return an error (Arming.Err or ErrInjected).
	ModeError Mode = "error"
	// ModeDiskFull makes Fire / wrapped writers fail with ErrDiskFull.
	ModeDiskFull Mode = "disk-full"
	// ModeTorn makes a wrapped writer pass Arming.Bytes through, then fail
	// — a torn write at a byte offset, not an operation boundary.
	ModeTorn Mode = "torn"
	// ModePanic makes Fire panic, exercising recover paths.
	ModePanic Mode = "panic"
	// ModeSlow makes Fire sleep Arming.Delay before succeeding — a wedged
	// disk or GC stall, the food of watchdogs.
	ModeSlow Mode = "slow"
	// ModeSkew makes Skew report Arming.Skew — a clock-skewed heartbeat
	// that fools liveness math without touching real clocks.
	ModeSkew Mode = "skew"
)

var validModes = map[Mode]bool{
	ModeOff: true, ModeError: true, ModeDiskFull: true, ModeTorn: true,
	ModePanic: true, ModeSlow: true, ModeSkew: true,
}

// Arming is one activation of a fault point.
type Arming struct {
	// Mode selects the behavior.
	Mode Mode `json:"mode"`
	// Count is how many firings before the point auto-disarms; 0 means
	// "until explicitly disarmed".
	Count int64 `json:"count,omitempty"`
	// Delay is the ModeSlow stall.
	Delay time.Duration `json:"delay,omitempty"`
	// Bytes is the ModeTorn pass-through prefix.
	Bytes int64 `json:"bytes,omitempty"`
	// Skew is the ModeSkew clock offset.
	Skew time.Duration `json:"skew,omitempty"`
	// Err overrides the injected error for ModeError.
	Err error `json:"-"`
}

// arming is the armed state held behind an atomic pointer so the hot path
// (Fire on every message) is one pointer load when disarmed.
type arming struct {
	Arming
	remaining atomic.Int64 // counts down when Count > 0
}

// Point is one named place in the runtime where a fault can be injected.
// Production code calls Fire() (or wraps a writer / reads Skew) at the
// point; a disarmed point costs an atomic pointer load. Tests and the
// /chaos admin endpoint arm it at runtime.
type Point struct {
	name  string
	desc  string
	armed atomic.Pointer[arming]
	hits  atomic.Uint64 // total evaluations
	fired atomic.Uint64 // evaluations that injected
}

// Name returns the point's registry name.
func (p *Point) Name() string { return p.name }

// Hits returns how many times the point has been evaluated.
func (p *Point) Hits() uint64 {
	if p == nil {
		return 0
	}
	return p.hits.Load()
}

// Fired returns how many faults the point has injected.
func (p *Point) Fired() uint64 {
	if p == nil {
		return 0
	}
	return p.fired.Load()
}

// take consumes one firing from the armed state, handling Count-limited
// armings (auto-disarm on exhaustion). It returns nil when the point is
// disarmed or exhausted.
func (p *Point) take() *arming {
	a := p.armed.Load()
	if a == nil || a.Mode == ModeOff {
		return nil
	}
	if a.Count > 0 {
		if a.remaining.Add(-1) < 0 {
			// Exhausted; retire the arming (best effort — a racing Arm wins).
			p.armed.CompareAndSwap(a, nil)
			return nil
		}
	}
	p.fired.Add(1)
	return a
}

// Fire evaluates the point: nil when disarmed, an injected error for the
// error-like modes, a panic for ModePanic, a delayed nil for ModeSlow.
// ModeTorn behaves as ModeError at a bare Fire site (tearing needs a
// writer); ModeSkew never fails a Fire site. A nil Point never fires, so
// production paths can hold a nil point when no chaos registry is wired.
func (p *Point) Fire() error {
	if p == nil {
		return nil
	}
	p.hits.Add(1)
	a := p.take()
	if a == nil {
		return nil
	}
	switch a.Mode {
	case ModePanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s", p.name))
	case ModeSlow:
		if a.Delay > 0 {
			time.Sleep(a.Delay)
		}
		return nil
	case ModeSkew:
		return nil
	case ModeDiskFull:
		return ErrDiskFull
	default: // ModeError, ModeTorn
		if a.Err != nil {
			return a.Err
		}
		return ErrInjected
	}
}

// Skew returns the injected clock offset when armed with ModeSkew, else 0.
// It consumes a firing like Fire does. A nil Point reports no skew.
func (p *Point) Skew() time.Duration {
	if p == nil {
		return 0
	}
	p.hits.Add(1)
	a := p.armed.Load()
	if a == nil || a.Mode != ModeSkew {
		return 0
	}
	if a = p.take(); a == nil {
		return 0
	}
	return a.Skew
}

// tornWriter passes prefix bytes through then fails every write.
type tornWriter struct {
	w      io.Writer
	budget int64
	err    error
}

func (t *tornWriter) Write(b []byte) (int, error) {
	if t.budget <= 0 {
		return 0, t.err
	}
	allowed := int64(len(b))
	torn := false
	if allowed > t.budget {
		allowed, torn = t.budget, true
	}
	n, err := t.w.Write(b[:allowed])
	t.budget -= int64(n)
	if err == nil && torn {
		err = t.err
	}
	if err == nil && n < len(b) {
		err = io.ErrShortWrite
	}
	return n, err
}

type errWriter struct{ err error }

func (e errWriter) Write(b []byte) (int, error) { return 0, e.err }

type slowWriter struct {
	w     io.Writer
	delay time.Duration
}

func (s *slowWriter) Write(b []byte) (int, error) {
	if s.delay > 0 {
		time.Sleep(s.delay)
		s.delay = 0 // stall once per wrapped stream, not per chunk
	}
	return s.w.Write(b)
}

// Writer wraps w according to the point's current arming: torn writes tear
// at Arming.Bytes, disk-full fails immediately, slow stalls the first
// chunk, error modes fail every write. A disarmed (or nil) point returns w
// unchanged. The arming is consumed once per wrapped stream.
func (p *Point) Writer(w io.Writer) io.Writer {
	if p == nil {
		return w
	}
	p.hits.Add(1)
	a := p.take()
	if a == nil {
		return w
	}
	switch a.Mode {
	case ModeTorn:
		return &tornWriter{w: w, budget: a.Bytes, err: ErrInjected}
	case ModeDiskFull:
		return errWriter{err: ErrDiskFull}
	case ModeSlow:
		return &slowWriter{w: w, delay: a.Delay}
	case ModePanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s", p.name))
	case ModeSkew:
		return w
	default:
		err := a.Err
		if err == nil {
			err = ErrInjected
		}
		return errWriter{err: err}
	}
}

// Registry is a named set of fault points. Production code registers its
// points at init or construction; tests and the /chaos endpoint arm them.
// The zero value is unusable; use NewRegistry or the package Default.
type Registry struct {
	mu     sync.Mutex
	points map[string]*Point
}

// Default is the process-wide registry; the runtime's built-in fault
// points live here so the /chaos endpoint and tests see the same set.
var Default = NewRegistry()

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{points: make(map[string]*Point)}
}

// Point returns the named point, registering it (with desc) on first use.
// Registration is idempotent: the first description wins, later calls with
// the same name return the existing point.
func (r *Registry) Point(name, desc string) *Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.points[name]; ok {
		if p.desc == "" {
			p.desc = desc
		}
		return p
	}
	p := &Point{name: name, desc: desc}
	r.points[name] = p
	return p
}

// Arm activates the named point (registering it if needed, so a test can
// arm before the production path first evaluates it).
func (r *Registry) Arm(name string, a Arming) error {
	if !validModes[a.Mode] {
		return fmt.Errorf("faultinject: unknown mode %q", a.Mode)
	}
	p := r.Point(name, "")
	if a.Mode == ModeOff {
		p.armed.Store(nil)
		return nil
	}
	st := &arming{Arming: a}
	st.remaining.Store(a.Count)
	p.armed.Store(st)
	return nil
}

// Disarm deactivates the named point; unknown names are a no-op.
func (r *Registry) Disarm(name string) {
	r.mu.Lock()
	p := r.points[name]
	r.mu.Unlock()
	if p != nil {
		p.armed.Store(nil)
	}
}

// DisarmAll deactivates every point.
func (r *Registry) DisarmAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range r.points {
		p.armed.Store(nil)
	}
}

// PointStatus is one point's snapshot for the /chaos endpoint.
type PointStatus struct {
	Name  string  `json:"name"`
	Desc  string  `json:"desc,omitempty"`
	Armed *Arming `json:"armed,omitempty"`
	Hits  uint64  `json:"hits"`
	Fired uint64  `json:"fired"`
}

// Snapshot returns every point's status, sorted by name.
func (r *Registry) Snapshot() []PointStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PointStatus, 0, len(r.points))
	for _, p := range r.points {
		st := PointStatus{Name: p.name, Desc: p.desc, Hits: p.hits.Load(), Fired: p.fired.Load()}
		if a := p.armed.Load(); a != nil && a.Mode != ModeOff {
			cp := a.Arming
			st.Armed = &cp
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Handler serves the chaos admin surface:
//
//	GET  /          — JSON snapshot of every point
//	POST /arm?point=NAME&mode=MODE[&count=N][&delay=DUR][&bytes=N][&skew=DUR]
//	POST /disarm[?point=NAME] — disarm one point, or all when omitted
//
// Mount it behind an admin-only listener; arming faults in production is a
// deliberately sharp tool (that is the point of a chaos drill).
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Points []PointStatus `json:"points"`
		}{r.Snapshot()})
	})
	mux.HandleFunc("/arm", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		q := req.URL.Query()
		name := q.Get("point")
		if name == "" {
			http.Error(w, "point parameter required", http.StatusBadRequest)
			return
		}
		a := Arming{Mode: Mode(q.Get("mode"))}
		var err error
		if v := q.Get("count"); v != "" {
			if a.Count, err = strconv.ParseInt(v, 10, 64); err != nil {
				http.Error(w, "bad count: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		if v := q.Get("bytes"); v != "" {
			if a.Bytes, err = strconv.ParseInt(v, 10, 64); err != nil {
				http.Error(w, "bad bytes: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		if v := q.Get("delay"); v != "" {
			if a.Delay, err = time.ParseDuration(v); err != nil {
				http.Error(w, "bad delay: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		if v := q.Get("skew"); v != "" {
			if a.Skew, err = time.ParseDuration(v); err != nil {
				http.Error(w, "bad skew: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		if err := r.Arm(name, a); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "armed %s mode=%s\n", name, a.Mode)
	})
	mux.HandleFunc("/disarm", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		if name := req.URL.Query().Get("point"); name != "" {
			r.Disarm(name)
			fmt.Fprintf(w, "disarmed %s\n", name)
			return
		}
		r.DisarmAll()
		fmt.Fprintln(w, "disarmed all points")
	})
	return mux
}
