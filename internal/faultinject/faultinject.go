// Package faultinject provides deterministic fault-injection wrappers for
// io.Reader, io.Writer, and net.Conn, used by robustness tests to prove the
// runtime survives torn writes, truncated reads, bit-flipped files, and
// mid-frame disconnects. Every failure schedule is deterministic — either an
// explicit list of failing operations/byte offsets or a seeded PRNG — so a
// failing test reproduces exactly.
package faultinject

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
)

// ErrInjected is the error returned by injected faults unless the plan
// overrides it.
var ErrInjected = errors.New("faultinject: injected fault")

// Plan is a deterministic failure schedule shared by one or more wrappers.
// The zero value never fails; configure it with the With/Fail options. A
// Plan is safe for concurrent use, and its operation/byte counters are
// global across all wrappers sharing it.
type Plan struct {
	mu        sync.Mutex
	rng       *rand.Rand
	prob      float64
	failOps   map[int]struct{}
	byteLimit int64 // fail once this many bytes have passed; <0 disables
	err       error

	op       int
	bytes    int64
	injected int
}

// Option configures a Plan.
type Option func(*Plan)

// WithSeededFailures makes each operation fail independently with
// probability prob, driven by a PRNG seeded with seed (deterministic for a
// fixed seed and call sequence).
func WithSeededFailures(seed int64, prob float64) Option {
	return func(p *Plan) {
		p.rng = rand.New(rand.NewSource(seed))
		p.prob = prob
	}
}

// FailAtOps fails the given zero-based operation indices (Read/Write calls
// counted together across all wrappers sharing the plan).
func FailAtOps(ops ...int) Option {
	return func(p *Plan) {
		if p.failOps == nil {
			p.failOps = make(map[int]struct{}, len(ops))
		}
		for _, o := range ops {
			p.failOps[o] = struct{}{}
		}
	}
}

// FailAfterBytes lets n bytes through in total, then fails every subsequent
// operation; the failing operation transfers the remaining budget first, so
// a write fault produces a torn (partial) write rather than a clean cut at
// an operation boundary.
func FailAfterBytes(n int64) Option {
	return func(p *Plan) { p.byteLimit = n }
}

// WithError replaces ErrInjected as the injected error.
func WithError(err error) Option {
	return func(p *Plan) { p.err = err }
}

// NewPlan builds a failure schedule from the options.
func NewPlan(opts ...Option) *Plan {
	p := &Plan{byteLimit: -1}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Injected returns how many faults the plan has injected so far.
func (p *Plan) Injected() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

// admit decides the fate of one operation wanting to transfer n bytes: it
// returns how many bytes may proceed and the injected error, if any. The
// byte counter advances by the admitted amount.
func (p *Plan) admit(n int) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	op := p.op
	p.op++
	fail := false
	if _, ok := p.failOps[op]; ok {
		fail = true
	}
	if !fail && p.rng != nil && p.rng.Float64() < p.prob {
		fail = true
	}
	allowed := n
	if fail {
		// Operation faults consume nothing; only byte-budget faults admit
		// a partial prefix (the torn-write case below).
		allowed = 0
	}
	if p.byteLimit >= 0 {
		if remain := p.byteLimit - p.bytes; int64(allowed) > remain {
			if remain < 0 {
				remain = 0
			}
			allowed = int(remain)
			fail = true
		}
	}
	p.bytes += int64(allowed)
	if !fail {
		return allowed, nil
	}
	p.injected++
	err := p.err
	if err == nil {
		err = ErrInjected
	}
	return allowed, err
}

// Reader wraps an io.Reader with a failure plan. A faulted Read may return
// a partial count alongside the error (as io.Reader permits).
type Reader struct {
	R    io.Reader
	Plan *Plan
}

// NewReader wraps r with plan.
func NewReader(r io.Reader, plan *Plan) *Reader { return &Reader{R: r, Plan: plan} }

func (r *Reader) Read(b []byte) (int, error) {
	allowed, ferr := r.Plan.admit(len(b))
	var n int
	var err error
	if allowed > 0 {
		n, err = r.R.Read(b[:allowed])
	}
	if err == nil && ferr != nil {
		err = ferr
	}
	return n, err
}

// Writer wraps an io.Writer with a failure plan. A byte-budget fault writes
// the admitted prefix through before failing — a torn write.
type Writer struct {
	W    io.Writer
	Plan *Plan
}

// NewWriter wraps w with plan.
func NewWriter(w io.Writer, plan *Plan) *Writer { return &Writer{W: w, Plan: plan} }

func (w *Writer) Write(b []byte) (int, error) {
	allowed, ferr := w.Plan.admit(len(b))
	n := 0
	var err error
	if allowed > 0 {
		n, err = w.W.Write(b[:allowed])
	}
	if err == nil && ferr != nil {
		err = ferr
	}
	if err == nil && n < len(b) {
		err = io.ErrShortWrite
	}
	return n, err
}

// Conn wraps a net.Conn with independent read and write plans; either may
// be nil for a pass-through direction. When CloseOnFault is set, an
// injected fault also closes the underlying connection — simulating a peer
// that dies mid-frame rather than one that reports an error and lingers.
type Conn struct {
	net.Conn
	ReadPlan, WritePlan *Plan
	CloseOnFault        bool
}

func (c *Conn) Read(b []byte) (int, error) {
	if c.ReadPlan == nil {
		return c.Conn.Read(b)
	}
	allowed, ferr := c.ReadPlan.admit(len(b))
	var n int
	var err error
	if allowed > 0 {
		n, err = c.Conn.Read(b[:allowed])
	}
	if err == nil && ferr != nil {
		err = ferr
		if c.CloseOnFault {
			c.Conn.Close()
		}
	}
	return n, err
}

func (c *Conn) Write(b []byte) (int, error) {
	if c.WritePlan == nil {
		return c.Conn.Write(b)
	}
	allowed, ferr := c.WritePlan.admit(len(b))
	var n int
	var err error
	if allowed > 0 {
		n, err = c.Conn.Write(b[:allowed])
	}
	if err == nil && ferr != nil {
		err = ferr
		if c.CloseOnFault {
			c.Conn.Close()
		}
	}
	return n, err
}

// FlipBit flips one bit in b (bit counted LSB-first from the start), the
// canonical corruption for checksum tests. It panics when bit is out of
// range, matching slice-index semantics.
func FlipBit(b []byte, bit int) {
	b[bit/8] ^= 1 << (bit % 8)
}
