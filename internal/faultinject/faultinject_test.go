package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFailAtOps(t *testing.T) {
	p := NewPlan(FailAtOps(1))
	r := NewReader(strings.NewReader("abcdef"), p)
	buf := make([]byte, 3)
	if n, err := r.Read(buf); err != nil || n != 3 {
		t.Fatalf("op 0 should pass: n=%d err=%v", n, err)
	}
	if _, err := r.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 1 should fail, got %v", err)
	}
	if n, err := r.Read(buf); err != nil || n != 3 {
		t.Fatalf("op 2 should pass: n=%d err=%v", n, err)
	}
	if p.Injected() != 1 {
		t.Fatalf("injected count: %d", p.Injected())
	}
}

func TestFailAfterBytesTornWrite(t *testing.T) {
	var sink bytes.Buffer
	p := NewPlan(FailAfterBytes(5))
	w := NewWriter(&sink, p)
	n, err := w.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("expected injected error, got %v", err)
	}
	if n != 5 || sink.String() != "01234" {
		t.Fatalf("torn write should deliver exactly the budget: n=%d wrote %q", n, sink.String())
	}
	// Every subsequent write fails with nothing admitted.
	if n, err := w.Write([]byte("x")); n != 0 || err == nil {
		t.Fatalf("post-budget write: n=%d err=%v", n, err)
	}
}

func TestSeededFailuresDeterministic(t *testing.T) {
	run := func() []int {
		p := NewPlan(WithSeededFailures(42, 0.3))
		r := NewReader(strings.NewReader(strings.Repeat("a", 1000)), p)
		var failed []int
		buf := make([]byte, 10)
		for i := 0; i < 50; i++ {
			if _, err := r.Read(buf); err != nil {
				failed = append(failed, i)
			}
		}
		return failed
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("prob 0.3 over 50 ops should inject at least one fault")
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic schedule: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic schedule: %v vs %v", a, b)
		}
	}
}

func TestWithError(t *testing.T) {
	custom := errors.New("boom")
	p := NewPlan(FailAtOps(0), WithError(custom))
	r := NewReader(strings.NewReader("abc"), p)
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, custom) {
		t.Fatalf("custom error not propagated: %v", err)
	}
}

func TestReaderPartialThenFail(t *testing.T) {
	// Byte budget mid-read: the admitted prefix is returned with the error
	// arriving on the next call (allowed==0 path).
	p := NewPlan(FailAfterBytes(4))
	r := NewReader(strings.NewReader("abcdefgh"), p)
	buf := make([]byte, 8)
	n, err := r.Read(buf)
	if n != 4 {
		t.Fatalf("expected 4 bytes admitted, got %d (err=%v)", n, err)
	}
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("reads past the budget must fail")
	}
}

func TestFlipBit(t *testing.T) {
	b := []byte{0x00, 0xFF}
	FlipBit(b, 0)
	FlipBit(b, 15)
	if b[0] != 0x01 || b[1] != 0x7F {
		t.Fatalf("flip: %x", b)
	}
	FlipBit(b, 0)
	FlipBit(b, 15)
	if b[0] != 0x00 || b[1] != 0xFF {
		t.Fatalf("double flip must restore: %x", b)
	}
}
