package faultinject

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestPointFireModes(t *testing.T) {
	r := NewRegistry()
	p := r.Point("test.fire", "fire modes")

	if err := p.Fire(); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}

	if err := r.Arm("test.fire", Arming{Mode: ModeError}); err != nil {
		t.Fatal(err)
	}
	if err := p.Fire(); !errors.Is(err, ErrInjected) {
		t.Fatalf("error mode => %v, want ErrInjected", err)
	}

	if err := r.Arm("test.fire", Arming{Mode: ModeDiskFull}); err != nil {
		t.Fatal(err)
	}
	err := p.Fire()
	if !errors.Is(err, ErrDiskFull) || !errors.Is(err, ErrInjected) {
		t.Fatalf("disk-full mode => %v, want ErrDiskFull wrapping ErrInjected", err)
	}

	custom := errors.New("custom failure")
	if err := r.Arm("test.fire", Arming{Mode: ModeError, Err: custom}); err != nil {
		t.Fatal(err)
	}
	if err := p.Fire(); !errors.Is(err, custom) {
		t.Fatalf("custom error mode => %v", err)
	}

	r.Disarm("test.fire")
	if err := p.Fire(); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if p.Fired() != 3 {
		t.Fatalf("fired = %d, want 3", p.Fired())
	}
}

func TestPointPanicMode(t *testing.T) {
	r := NewRegistry()
	p := r.Point("test.panic", "")
	if err := r.Arm("test.panic", Arming{Mode: ModePanic, Count: 1}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			rec := recover()
			if rec == nil || !strings.Contains(rec.(string), "test.panic") {
				t.Fatalf("recover = %v, want injected panic naming the point", rec)
			}
		}()
		p.Fire()
	}()
	// Count 1 exhausted → next Fire is clean.
	if err := p.Fire(); err != nil {
		t.Fatalf("exhausted panic point still fires: %v", err)
	}
}

func TestPointCountAutoDisarms(t *testing.T) {
	r := NewRegistry()
	p := r.Point("test.count", "")
	if err := r.Arm("test.count", Arming{Mode: ModeError, Count: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := p.Fire(); err == nil {
			t.Fatalf("armed firing %d returned nil", i)
		}
	}
	for i := 0; i < 3; i++ {
		if err := p.Fire(); err != nil {
			t.Fatalf("exhausted point fired on extra call %d: %v", i, err)
		}
	}
	if got := p.Fired(); got != 2 {
		t.Fatalf("fired = %d, want exactly Count=2", got)
	}
}

func TestPointSlowMode(t *testing.T) {
	r := NewRegistry()
	p := r.Point("test.slow", "")
	if err := r.Arm("test.slow", Arming{Mode: ModeSlow, Delay: 20 * time.Millisecond, Count: 1}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := p.Fire(); err != nil {
		t.Fatalf("slow mode errored: %v", err)
	}
	if took := time.Since(start); took < 20*time.Millisecond {
		t.Fatalf("slow mode returned in %v, want >= 20ms", took)
	}
}

func TestPointSkew(t *testing.T) {
	r := NewRegistry()
	p := r.Point("test.skew", "")
	if s := p.Skew(); s != 0 {
		t.Fatalf("disarmed skew = %v", s)
	}
	if err := r.Arm("test.skew", Arming{Mode: ModeSkew, Skew: 45 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if s := p.Skew(); s != 45*time.Second {
		t.Fatalf("skew = %v, want 45s", s)
	}
	// Skew arming does not make Fire fail.
	if err := p.Fire(); err != nil {
		t.Fatalf("skew-armed Fire errored: %v", err)
	}
}

func TestPointWriterTorn(t *testing.T) {
	r := NewRegistry()
	p := r.Point("test.torn", "")
	if err := r.Arm("test.torn", Arming{Mode: ModeTorn, Bytes: 5, Count: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := p.Writer(&buf)
	n, err := w.Write([]byte("hello world"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write = (%d, %v), want (5, ErrInjected)", n, err)
	}
	if buf.String() != "hello" {
		t.Fatalf("torn prefix = %q, want %q", buf.String(), "hello")
	}
	// Arming consumed: next wrap is a pass-through.
	var buf2 bytes.Buffer
	w2 := p.Writer(&buf2)
	if n, err := w2.Write([]byte("clean")); n != 5 || err != nil {
		t.Fatalf("post-exhaustion write = (%d, %v)", n, err)
	}
}

func TestPointWriterDiskFull(t *testing.T) {
	r := NewRegistry()
	p := r.Point("test.df", "")
	if err := r.Arm("test.df", Arming{Mode: ModeDiskFull}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := p.Writer(&buf)
	if n, err := w.Write([]byte("data")); n != 0 || !errors.Is(err, ErrDiskFull) {
		t.Fatalf("disk-full write = (%d, %v)", n, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("disk-full wrote %d bytes through", buf.Len())
	}
}

func TestRegistryArmValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm("x", Arming{Mode: "explode"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	// Arm registers unseen points so tests can arm before production code runs.
	if err := r.Arm("later", Arming{Mode: ModeError}); err != nil {
		t.Fatal(err)
	}
	if err := r.Point("later", "registered by production after arming").Fire(); err == nil {
		t.Fatal("pre-armed point did not fire")
	}
}

func TestChaosHandler(t *testing.T) {
	r := NewRegistry()
	r.Point("ckpt.write", "checkpoint write path")
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	post := func(path string, wantCode int) string {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		if resp.StatusCode != wantCode {
			t.Fatalf("POST %s = %d (%s), want %d", path, resp.StatusCode, b.String(), wantCode)
		}
		return b.String()
	}

	post("/arm?point=ckpt.write&mode=torn&bytes=8&count=2", 200)
	post("/arm?point=ckpt.write&mode=bogus", 400)
	post("/arm?point=", 400)

	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Points []PointStatus `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Points) != 1 || snap.Points[0].Name != "ckpt.write" {
		t.Fatalf("snapshot = %+v", snap.Points)
	}
	if snap.Points[0].Armed == nil || snap.Points[0].Armed.Mode != ModeTorn || snap.Points[0].Armed.Bytes != 8 {
		t.Fatalf("armed view = %+v", snap.Points[0].Armed)
	}

	post("/disarm?point=ckpt.write", 200)
	if err := r.Point("ckpt.write", "").Fire(); err != nil {
		t.Fatalf("disarmed via handler but still fires: %v", err)
	}

	// GET on /arm is rejected.
	getResp, err := srv.Client().Get(srv.URL + "/arm?point=x&mode=error")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != 405 {
		t.Fatalf("GET /arm = %d, want 405", getResp.StatusCode)
	}
}
