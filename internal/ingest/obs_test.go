package ingest

import (
	"bytes"
	"testing"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/obs"
)

// TestMonitorDecisionTrace injects a synthetic anomaly into a monitor with
// tracing enabled and checks the resulting trace explains the verdict: the
// flagged template, the score vs. threshold that produced it, the
// per-window log-probabilities of the preceding context, and the
// cluster/model identity.
func TestMonitorDecisionTrace(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	reg := obs.NewRegistry()
	ring := obs.NewTraceRing(16)
	mcfg := DefaultMonitorConfig()
	mcfg.Threshold = 4
	mcfg.Metrics = reg
	mcfg.Traces = ring
	mcfg.TraceWindow = 4
	mcfg.ClusterOf = func(host string) int { return 3 }
	mon := NewMonitor(mcfg, tree, det, nil)

	normal := []string{
		"bgp keepalive exchanged with peer 10.0.0.2 hold 90",
		"interface statistics poll completed for ge-0/0/2 in 9 ms",
		"fpc 1 cpu utilization 30 percent memory 45 percent",
		"ntp clock synchronized to 10.9.9.9 stratum 2 offset 80 us",
	}
	mk := func(text string, at time.Time) logfmt.Message {
		return logfmt.Message{Time: at, Host: "vpe07", Tag: "rpd", Text: text}
	}
	at := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 80; i++ {
		mon.HandleMessage(mk(normal[i%len(normal)], at))
		at = at.Add(30 * time.Second)
	}
	if ring.Total() != 0 {
		t.Fatalf("traces during normal traffic: %+v", ring.Recent(0))
	}

	mon.HandleMessage(mk("invalid response from peer chassis-control session 42 retries 3", at))
	traces := ring.Recent(0)
	if len(traces) != 1 {
		t.Fatalf("expected one trace, got %d", len(traces))
	}
	tr := traces[0]
	if tr.Host != "vpe07" || tr.Cluster != 3 || tr.Model != "lstm" {
		t.Fatalf("trace identity: %+v", tr)
	}
	if tr.Threshold != 4 || tr.Score <= tr.Threshold {
		t.Fatalf("trace score/threshold: score=%v threshold=%v", tr.Score, tr.Threshold)
	}
	if len(tr.Window) != 4 {
		t.Fatalf("trace window length = %d, want 4", len(tr.Window))
	}
	// The window ends with the flagged message itself: its log-prob is the
	// negated score, its template the flagged template.
	last := tr.Window[len(tr.Window)-1]
	if last.Template != tr.Template || last.LogProb != -tr.Score {
		t.Fatalf("window tail does not match verdict: %+v vs %+v", last, tr)
	}
	// The context steps are the well-predicted normal messages.
	for _, step := range tr.Window[:len(tr.Window)-1] {
		if -step.LogProb > tr.Threshold {
			t.Fatalf("context step scored above threshold: %+v", step)
		}
	}
	if tr.ClusterSize != 1 || tr.Warning {
		t.Fatalf("first anomaly should open a cluster of 1: %+v", tr)
	}

	// Two more anomalies within the window: the warning-tipping verdict is
	// marked on its trace.
	for i := 0; i < 2; i++ {
		at = at.Add(15 * time.Second)
		mon.HandleMessage(mk("invalid response from peer chassis-control session 42 retries 3", at))
	}
	var tipped *obs.Trace
	for _, cand := range ring.Recent(0) {
		if cand.Warning {
			c := cand
			tipped = &c
		}
	}
	if tipped == nil || tipped.ClusterSize != mcfg.MinClusterSize {
		t.Fatalf("warning-tipping verdict not marked in traces: %+v", ring.Recent(0))
	}

	// The registry exports the same numbers Stats() reports — one set of
	// counters, two views.
	st := mon.Stats()
	snap := reg.Snapshot()
	if snap.Counters["monitor_messages_total"] != st.Messages ||
		snap.Counters["monitor_anomalies_total"] != st.Anomalies ||
		snap.Counters["monitor_warnings_total"] != st.Warnings {
		t.Fatalf("registry/Stats divergence: %+v vs %+v", snap.Counters, st)
	}
	if st.Anomalies != 3 || st.Warnings != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if snap.Histograms["monitor_score"].Count != st.Messages {
		t.Fatalf("score histogram count %d, messages %d",
			snap.Histograms["monitor_score"].Count, st.Messages)
	}
	if snap.Histograms["monitor_handle_seconds"].Count != st.Messages {
		t.Fatalf("handle histogram count %d, messages %d",
			snap.Histograms["monitor_handle_seconds"].Count, st.Messages)
	}
}

// TestServerStatsOnRegistry checks the server counters are thin views over
// the registry, so /metrics and Stats() cannot drift.
func TestServerStatsOnRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := DefaultServerConfig()
	cfg.Metrics = reg
	srv, err := NewServer(cfg, func(logfmt.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	srv.enqueue([]byte(sampleLine(1)))
	srv.enqueue([]byte("not syslog at all"))
	st := srv.Stats()
	if st.Received != 1 || st.Malformed != 1 {
		t.Fatalf("stats: %+v", st)
	}
	snap := reg.Snapshot()
	if snap.Counters["ingest_received_total"] != st.Received ||
		snap.Counters["ingest_malformed_total"] != st.Malformed {
		t.Fatalf("registry/Stats divergence: %+v vs %+v", snap.Counters, st)
	}
}

// TestMonitorTraceWindowSurvivesCheckpoint ensures a restored monitor keeps
// tracing: restored hosts get fresh context rings sized by the restoring
// config.
func TestMonitorTraceWindowSurvivesCheckpoint(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	mcfg := DefaultMonitorConfig()
	mcfg.Threshold = 4
	mcfg.Traces = obs.NewTraceRing(8)
	mon := NewMonitor(mcfg, tree, det, nil)
	mk := func(text string, at time.Time) logfmt.Message {
		return logfmt.Message{Time: at, Host: "vpe07", Tag: "rpd", Text: text}
	}
	at := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 40; i++ {
		mon.HandleMessage(mk("bgp keepalive exchanged with peer 10.0.0.2 hold 90", at))
		at = at.Add(30 * time.Second)
	}

	var buf bytes.Buffer
	if err := mon.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	ring2 := obs.NewTraceRing(8)
	rcfg := mcfg
	rcfg.Traces = ring2
	restored, err := RestoreMonitor(bytes.NewReader(buf.Bytes()), rcfg, func(string) *detect.LSTMDetector { return det }, nil)
	if err != nil {
		t.Fatal(err)
	}
	restored.HandleMessage(mk("invalid response from peer chassis-control session 42 retries 3", at))
	traces := ring2.Recent(0)
	if len(traces) != 1 || len(traces[0].Window) == 0 {
		t.Fatalf("restored monitor did not trace: %+v", traces)
	}
}
