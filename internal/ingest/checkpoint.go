package ingest

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"nfvpredict/internal/atomicfile"
	"nfvpredict/internal/detect"
	"nfvpredict/internal/faultinject"
	"nfvpredict/internal/obs"
	"nfvpredict/internal/sigtree"
	"nfvpredict/internal/wireframe"
)

// Checkpoint framing constants (see internal/wireframe for the layout).
const (
	// CheckpointMagic identifies a monitor checkpoint file.
	CheckpointMagic = "NFVC"
	// CheckpointVersion is the current checkpoint format version.
	CheckpointVersion uint32 = 1
)

// hostWire is one host's checkpointed state: the LSTM stream snapshot and
// the in-progress anomaly cluster.
type hostWire struct {
	Host        string
	Stream      detect.StreamSnapshot
	HasCluster  bool
	First, Last time.Time
	Size        int
	Reported    bool
}

// checkpointWire is the gob payload of a checkpoint. Hosts are stored in
// LRU order, least recently seen first, so a restored monitor evicts in
// exactly the order the original would have — a requirement for the
// kill-and-restore bit-identity guarantee.
type checkpointWire struct {
	Tree     []byte
	Hosts    []hostWire
	Warnings []detect.Warning
	Messages uint64
	Anoms    uint64
	Evicted  uint64
	Swaps    uint64
	SavedAt  time.Time
}

// Checkpoint snapshots the monitor's full online state — the grown
// signature tree, every host's recurrent scoring stream, in-progress
// anomaly clusters, warning history, and counters — so a restarted monitor
// resumes scoring mid-stream instead of cold. The snapshot is taken with
// every shard mutex held (a consistent cut across shards); encoding
// happens outside the locks.
//
// Hosts are emitted in global least-recently-seen order (each host carries
// a recency stamp, Monitor.seq), so the bytes a single-caller monitor
// checkpoints are identical at any shard count — and identical to the
// historical single-shard format.
func (m *Monitor) Checkpoint(w io.Writer) error {
	start := m.ckptSeconds.Start()
	var spanStart time.Time
	if m.cfg.Tracer != nil {
		spanStart = time.Now()
	}
	var wf checkpointWire
	type stamped struct {
		hw  hostWire
		seq uint64
	}
	m.lockAll()
	m.treeMu.Lock()
	var tb bytes.Buffer
	err := m.tree.Save(&tb)
	m.treeMu.Unlock()
	if err != nil {
		m.unlockAll()
		return fmt.Errorf("checkpoint: saving tree: %w", err)
	}
	wf.Tree = tb.Bytes()
	var hosts []stamped
	for _, sh := range m.shards {
		for el := sh.lru.Back(); el != nil; el = el.Prev() {
			hs := el.Value.(*hostState)
			hw := hostWire{Host: hs.host, Stream: hs.stream.Snapshot()}
			if cs := hs.cluster; cs != nil {
				hw.HasCluster = true
				hw.First, hw.Last = cs.first, cs.last
				hw.Size, hw.Reported = cs.size, cs.reported
			}
			hosts = append(hosts, stamped{hw, hs.seq})
		}
	}
	m.warnMu.Lock()
	wf.Warnings = append([]detect.Warning(nil), m.warnings...)
	m.warnMu.Unlock()
	wf.Messages, wf.Anoms = m.messages.Value(), m.anoms.Value()
	wf.Evicted, wf.Swaps = m.evicted.Value(), m.swaps.Value()
	m.unlockAll()

	sort.Slice(hosts, func(i, j int) bool { return hosts[i].seq < hosts[j].seq })
	wf.Hosts = make([]hostWire, len(hosts))
	for i, h := range hosts {
		wf.Hosts[i] = h.hw
	}
	wf.SavedAt = m.now()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&wf); err != nil {
		return fmt.Errorf("checkpoint: encoding: %w", err)
	}
	if err := wireframe.Encode(w, CheckpointMagic, CheckpointVersion, payload.Bytes()); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	m.ckptSeconds.ObserveDuration(start)
	m.ckptSaves.Inc()
	if m.cfg.Tracer != nil {
		// Checkpoints hold every shard lock; a span makes their cost
		// visible next to the decision latencies they stall. MintID, not
		// Accept: a checkpoint is not an accepted message and must not
		// consume a sampling slot.
		id := m.cfg.Tracer.MintID()
		total := int64(time.Since(spanStart))
		m.cfg.Tracer.Emit(obs.Span{
			TraceID: id,
			Kind:    obs.KindCheckpoint,
			Time:    spanStart,
			Sampled: true,
			TotalNS: total,
			Stages:  obs.StageDurations{CheckpointNS: total},
		})
	}
	return nil
}

// RestoreMonitor rebuilds a monitor from a checkpoint written by
// Checkpoint. The detector resolver and callbacks are not part of the
// snapshot and must be supplied again; hosts whose detector has a different
// architecture than at checkpoint time produce a descriptive error (the
// caller should fall back to a cold start — typically after a model swap).
// Hosts whose resolver now returns nil are dropped silently, matching what
// HandleMessage would do with their next message.
func RestoreMonitor(r io.Reader, cfg MonitorConfig, resolve func(host string) *detect.LSTMDetector, onWarning func(detect.Warning)) (*Monitor, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading: %w", err)
	}
	payload, framed, err := wireframe.Decode(data, CheckpointMagic, CheckpointVersion)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if !framed {
		return nil, fmt.Errorf("checkpoint: not a checkpoint file (missing %q magic)", CheckpointMagic)
	}
	var wf checkpointWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wf); err != nil {
		return nil, fmt.Errorf("checkpoint: decoding: %w", err)
	}
	tree, err := sigtree.Load(bytes.NewReader(wf.Tree))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: loading tree: %w", err)
	}
	m := NewMonitorWithResolver(cfg, tree, resolve, onWarning)
	// Hosts arrive least recent first; PushFront in order (with fresh
	// ascending seq stamps) rebuilds each shard's LRU and the global
	// recency order. The host hash is stable, so a checkpoint written at
	// one shard count restores onto any other.
	for _, hw := range wf.Hosts {
		det := resolve(hw.Host)
		if det == nil {
			continue
		}
		st, err := det.RestoreStream(hw.Stream)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: host %q: %w", hw.Host, err)
		}
		hs := &hostState{host: hw.Host, model: det.Name(), stream: st, seq: m.seq.Add(1)}
		if m.cfg.Traces != nil {
			hs.recent = make([]obs.TraceStep, m.cfg.TraceWindow)
		}
		if hw.HasCluster {
			hs.cluster = &clusterState{first: hw.First, last: hw.Last, size: hw.Size, reported: hw.Reported}
		}
		sh := m.shards[m.shardFor(hw.Host)]
		sh.hosts[hw.Host] = sh.lru.PushFront(hs)
		m.hostCount.Add(1)
	}
	m.warnings = wf.Warnings
	m.messages.Store(wf.Messages)
	m.anoms.Store(wf.Anoms)
	m.warningsC.Store(uint64(len(wf.Warnings)))
	m.evicted.Store(wf.Evicted)
	m.swaps.Store(wf.Swaps)
	m.activeHosts.SetInt(int(m.hostCount.Load()))
	return m, nil
}

// CheckpointFile writes the checkpoint to path atomically (temp file +
// fsync + rename): a crash mid-checkpoint leaves the previous checkpoint
// intact, never a torn file. The checkpoint.write fault point (when a
// fault registry is wired) injects disk-full/torn/slow failures inside
// the atomic-write window — the write fails, the temp file is discarded,
// and the previous checkpoint generation survives untouched.
func (m *Monitor) CheckpointFile(path string) error {
	var fp *faultinject.Point
	if m.cfg.Faults != nil {
		fp = m.cfg.Faults.Point("checkpoint.write",
			"Inside the atomic checkpoint write: disk-full/torn/slow failures that must never cost the previous generation.")
	}
	return atomicfile.Write(path, func(w io.Writer) error {
		return m.Checkpoint(fp.Writer(w))
	})
}

// RestoreMonitorFile restores a monitor from the checkpoint at path.
func RestoreMonitorFile(path string, cfg MonitorConfig, resolve func(host string) *detect.LSTMDetector, onWarning func(detect.Warning)) (*Monitor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return RestoreMonitor(f, cfg, resolve, onWarning)
}
