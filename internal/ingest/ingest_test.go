package ingest

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/faultinject"
	"nfvpredict/internal/features"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/sigtree"
)

// collector gathers sink messages thread-safely and supports waiting.
type collector struct {
	mu   sync.Mutex
	msgs []logfmt.Message
}

func (c *collector) sink(m logfmt.Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func (c *collector) waitFor(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.count() >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d messages, have %d", n, c.count())
}

func startServer(t *testing.T) (*Server, *collector) {
	t.Helper()
	col := &collector{}
	srv, err := NewServer(DefaultServerConfig(), col.sink)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(context.Background())
	t.Cleanup(srv.Close)
	return srv, col
}

func sampleLine(i int) string {
	m := logfmt.Message{
		Time:     time.Date(2018, 2, 3, 4, 5, i%60, 0, time.UTC),
		Host:     "vpe01",
		Facility: logfmt.FacDaemon,
		Severity: logfmt.Warning,
		Tag:      "rpd",
		Text:     fmt.Sprintf("bgp peer 10.0.0.%d state change", i%250+1),
	}
	return m.Format3164()
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(DefaultServerConfig(), nil); err == nil {
		t.Fatal("nil sink should error")
	}
	if _, err := NewServer(ServerConfig{}, func(logfmt.Message) {}); err == nil {
		t.Fatal("no listeners should error")
	}
}

func TestUDPIngestion(t *testing.T) {
	srv, col := startServer(t)
	conn, err := net.Dial("udp", srv.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 10; i++ {
		if _, err := fmt.Fprint(conn, sampleLine(i)); err != nil {
			t.Fatal(err)
		}
	}
	col.waitFor(t, 10)
	if col.msgs[0].Host != "vpe01" || col.msgs[0].Tag != "rpd" {
		t.Fatalf("parsed message wrong: %+v", col.msgs[0])
	}
	if col.msgs[0].Time.Year() != 2018 {
		t.Fatalf("year not applied: %v", col.msgs[0].Time)
	}
	if st := srv.Stats(); st.Received != 10 || st.Malformed != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestUDPMalformed(t *testing.T) {
	srv, col := startServer(t)
	conn, err := net.Dial("udp", srv.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprint(conn, "this is not syslog")
	fmt.Fprint(conn, sampleLine(1))
	col.waitFor(t, 1)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Stats().Malformed == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := srv.Stats(); st.Malformed != 1 || st.Received != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestTCPLFFraming(t *testing.T) {
	srv, col := startServer(t)
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		if _, err := fmt.Fprintf(conn, "%s\n", sampleLine(i)); err != nil {
			t.Fatal(err)
		}
	}
	col.waitFor(t, 5)
}

func TestTCPOctetCounting(t *testing.T) {
	srv, col := startServer(t)
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		line := sampleLine(i)
		if _, err := fmt.Fprintf(conn, "%d %s", len(line), line); err != nil {
			t.Fatal(err)
		}
	}
	col.waitFor(t, 5)
}

func TestTCPMultipleConnections(t *testing.T) {
	srv, col := startServer(t)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", srv.TCPAddr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			for i := 0; i < 25; i++ {
				fmt.Fprintf(conn, "%s\n", sampleLine(c*25+i))
			}
		}(c)
	}
	wg.Wait()
	col.waitFor(t, 100)
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t)
	srv.Close()
	srv.Close() // must not panic or deadlock
}

func TestContextCancelStopsServer(t *testing.T) {
	col := &collector{}
	srv, err := NewServer(DefaultServerConfig(), col.sink)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv.Start(ctx)
	cancel()
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not stop after context cancel")
	}
}

// trainMonitorDetector builds a sigtree+detector pair on a cyclic message
// corpus resembling the simulator's normal traffic.
func trainMonitorDetector(t testing.TB) (*sigtree.Tree, *detect.LSTMDetector) {
	t.Helper()
	tree := sigtree.New()
	texts := []string{
		"bgp keepalive exchanged with peer 10.0.0.1 hold 90",
		"interface statistics poll completed for ge-0/0/1 in 12 ms",
		"fpc 0 cpu utilization 20 percent memory 40 percent",
		"ntp clock synchronized to 10.9.9.9 stratum 2 offset 120 us",
	}
	var stream []features.Event
	base := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 1200; i++ {
		tpl := tree.Learn(texts[i%len(texts)])
		stream = append(stream, features.Event{Time: base.Add(time.Duration(i) * 30 * time.Second), Template: tpl.ID})
	}
	cfg := detect.DefaultLSTMConfig()
	cfg.Hidden = []int{16}
	cfg.MaxVocab = 16
	cfg.Epochs = 6
	cfg.OverSampleRounds = 0
	det := detect.NewLSTMDetector(cfg)
	if err := det.Train([][]features.Event{stream}); err != nil {
		t.Fatal(err)
	}
	return tree, det
}

func TestMonitorEmitsWarningOnAnomalyBurst(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	var fired []detect.Warning
	mcfg := DefaultMonitorConfig()
	mcfg.Threshold = 4
	mon := NewMonitor(mcfg, tree, det, func(w detect.Warning) { fired = append(fired, w) })

	base := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	normal := []string{
		"bgp keepalive exchanged with peer 10.0.0.2 hold 90",
		"interface statistics poll completed for ge-0/0/2 in 9 ms",
		"fpc 1 cpu utilization 30 percent memory 45 percent",
		"ntp clock synchronized to 10.9.9.9 stratum 2 offset 80 us",
	}
	mk := func(text string, at time.Time) logfmt.Message {
		return logfmt.Message{Time: at, Host: "vpe07", Facility: logfmt.FacDaemon, Severity: logfmt.Info, Tag: "rpd", Text: text}
	}
	// Warm-up with normal traffic: no warnings expected.
	at := base
	for i := 0; i < 120; i++ {
		mon.HandleMessage(mk(normal[i%len(normal)], at))
		at = at.Add(30 * time.Second)
	}
	if len(fired) != 0 {
		t.Fatalf("warnings during normal traffic: %+v", fired)
	}
	// Anomaly burst: three never-seen messages within a minute.
	for i := 0; i < 3; i++ {
		mon.HandleMessage(mk("invalid response from peer chassis-control session 42 retries 3", at))
		at = at.Add(15 * time.Second)
	}
	if len(fired) != 1 {
		t.Fatalf("expected exactly one warning, got %+v", fired)
	}
	if fired[0].VPE != "vpe07" || fired[0].Size < 2 {
		t.Fatalf("warning: %+v", fired[0])
	}
	if got := mon.Warnings(); len(got) != 1 {
		t.Fatalf("Warnings(): %+v", got)
	}
	msgs, anoms := mon.Counters()
	if msgs != 123 || anoms < 2 {
		t.Fatalf("counters: msgs=%d anoms=%d", msgs, anoms)
	}
}

func TestMonitorIsolatedAnomalyNoWarning(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	var fired []detect.Warning
	mcfg := DefaultMonitorConfig()
	mcfg.Threshold = 4
	mon := NewMonitor(mcfg, tree, det, func(w detect.Warning) { fired = append(fired, w) })
	base := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	mk := func(text string, at time.Time) logfmt.Message {
		return logfmt.Message{Time: at, Host: "vpe07", Tag: "rpd", Text: text}
	}
	normal := []string{
		"bgp keepalive exchanged with peer 10.0.0.2 hold 90",
		"interface statistics poll completed for ge-0/0/2 in 9 ms",
		"fpc 1 cpu utilization 30 percent memory 45 percent",
		"ntp clock synchronized to 10.9.9.9 stratum 2 offset 80 us",
	}
	at := base
	for i := 0; i < 60; i++ {
		mon.HandleMessage(mk(normal[i%len(normal)], at))
		at = at.Add(30 * time.Second)
	}
	// One isolated anomaly, then 10 minutes of quiet, then another.
	mon.HandleMessage(mk("totally unexpected kernel catastrophe message here", at))
	at = at.Add(10 * time.Minute)
	mon.HandleMessage(mk("another single unexpected kernel event occurred now", at))
	if len(fired) != 0 {
		t.Fatalf("isolated anomalies must not warn (§5.1 rule): %+v", fired)
	}
}

// End-to-end: syslog over UDP through the server into the monitor.
func TestServerToMonitorEndToEnd(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	warned := make(chan detect.Warning, 4)
	mcfg := DefaultMonitorConfig()
	mcfg.Threshold = 4
	mon := NewMonitor(mcfg, tree, det, func(w detect.Warning) { warned <- w })

	cfg := DefaultServerConfig()
	cfg.Year = 2018
	srv, err := NewServer(cfg, mon.HandleMessage)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(context.Background())
	defer srv.Close()

	conn, err := net.Dial("udp", srv.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	base := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	send := func(text string, at time.Time) {
		m := logfmt.Message{Time: at, Host: "vpe03", Facility: logfmt.FacDaemon, Severity: logfmt.Info, Tag: "rpd", Text: text}
		fmt.Fprint(conn, m.Format3164())
	}
	at := base
	for i := 0; i < 80; i++ {
		send("bgp keepalive exchanged with peer 10.0.0.5 hold 90", at)
		at = at.Add(30 * time.Second)
	}
	for i := 0; i < 3; i++ {
		send("invalid response from peer chassis-control session 7 retries 2", at)
		at = at.Add(10 * time.Second)
	}
	select {
	case w := <-warned:
		if w.VPE != "vpe03" {
			t.Fatalf("warning from wrong vPE: %+v", w)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no warning arrived end-to-end")
	}
}

// TestServingPathAllocGate is the serving-path allocation contract: after
// warm-up (host state created, templates learned, symbols interned, shard
// scratch grown), HandleMessage averages at most 2 allocs per message.
// The interned tokenize path actually runs at 0; the slack tolerates rare
// amortized events (symbol-table republish, cluster-state turnover)
// without flaking.
func TestServingPathAllocGate(t *testing.T) {
	mon, msg := spanBenchMonitor(t, false)
	for i := 0; i < 200; i++ {
		msg.Time = msg.Time.Add(time.Second)
		mon.HandleMessage(msg)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		msg.Time = msg.Time.Add(time.Second)
		mon.HandleMessage(msg)
	})
	if allocs > 2 {
		t.Fatalf("HandleMessage allocates %.2f/op after warm-up, gate is 2", allocs)
	}
}

func BenchmarkMonitorHandleMessage(b *testing.B) {
	tree := sigtree.New()
	texts := []string{
		"bgp keepalive exchanged with peer 10.0.0.1 hold 90",
		"interface statistics poll completed for ge-0/0/1 in 12 ms",
	}
	var stream []features.Event
	base := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 400; i++ {
		tpl := tree.Learn(texts[i%2])
		stream = append(stream, features.Event{Time: base.Add(time.Duration(i) * time.Second), Template: tpl.ID})
	}
	cfg := detect.DefaultLSTMConfig()
	cfg.Hidden = []int{16}
	cfg.MaxVocab = 8
	cfg.Epochs = 1
	det := detect.NewLSTMDetector(cfg)
	if err := det.Train([][]features.Event{stream}); err != nil {
		b.Fatal(err)
	}
	mon := NewMonitor(DefaultMonitorConfig(), tree, det, nil)
	msg := logfmt.Message{Time: base, Host: "vpe00", Tag: "rpd", Text: texts[0]}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.Time = msg.Time.Add(time.Second)
		mon.HandleMessage(msg)
	}
}

func TestTCPOctetCountOversizeFrame(t *testing.T) {
	srv, col := startServer(t)
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Oversize frame length: the connection must be dropped as malformed
	// without crashing the server.
	fmt.Fprintf(conn, "999999 junk")
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Stats().Malformed >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Stats().Malformed == 0 {
		t.Fatal("oversize frame not counted as malformed")
	}
	// The server still accepts new connections afterwards.
	conn2, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	fmt.Fprintf(conn2, "%s\n", sampleLine(1))
	col.waitFor(t, 1)
}

func TestTCPMixedFramingOnOneConnection(t *testing.T) {
	srv, col := startServer(t)
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// RFC 6587 allows either; our server decides per frame by first byte.
	a := sampleLine(1)
	fmt.Fprintf(conn, "%d %s", len(a), a) // octet counted
	fmt.Fprintf(conn, "%s\n", sampleLine(2))
	b := sampleLine(3)
	fmt.Fprintf(conn, "%d %s", len(b), b)
	col.waitFor(t, 3)
	_ = srv
}

// TestSinkPanicRecovered proves panic isolation: a sink that panics on a
// poison message loses that message only; ingestion continues and the panic
// is counted.
func TestSinkPanicRecovered(t *testing.T) {
	col := &collector{}
	sink := func(m logfmt.Message) {
		if strings.Contains(m.Text, "poison") {
			panic("sink exploded")
		}
		col.sink(m)
	}
	srv, err := NewServer(DefaultServerConfig(), sink)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(context.Background())
	t.Cleanup(srv.Close)

	conn, err := net.Dial("udp", srv.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	poison := logfmt.Message{
		Time: time.Date(2018, 2, 3, 4, 5, 6, 0, time.UTC),
		Host: "vpe01", Facility: logfmt.FacDaemon, Severity: logfmt.Warning,
		Tag: "rpd", Text: "poison message that kills the sink",
	}
	fmt.Fprint(conn, sampleLine(0))
	fmt.Fprint(conn, poison.Format3164())
	fmt.Fprint(conn, sampleLine(1))
	col.waitFor(t, 2)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && srv.Stats().SinkPanics == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	st := srv.Stats()
	if st.SinkPanics != 1 {
		t.Fatalf("sink panics: %+v", st)
	}
	if st.Received != 3 {
		t.Fatalf("server must keep receiving after a panic: %+v", st)
	}
}

// TestUDPOversizedDatagram sends a datagram larger than the reader buffer
// can hold; it must be counted (as malformed once truncated parsing fails)
// without wedging the reader.
func TestUDPOversizedDatagram(t *testing.T) {
	srv, col := startServer(t)
	conn, err := net.Dial("udp", srv.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// ~65k of junk: at the UDP payload ceiling. Depending on the platform
	// the send may fail locally; either way the server must stay alive.
	junk := bytes.Repeat([]byte("x"), 65000)
	_, _ = conn.Write(junk)
	fmt.Fprint(conn, sampleLine(5))
	col.waitFor(t, 1)
	if st := srv.Stats(); st.Received != 1 {
		t.Fatalf("stats after oversized datagram: %+v", st)
	}
}

// TestTCPEmptyAndMalformedOctetFrames covers the frame-length edge cases:
// "0 " (empty frame), leading-zero lengths, and junk after digits. Each is
// malformed but must not kill the connection — later well-formed frames on
// the same connection still arrive.
func TestTCPEmptyAndMalformedOctetFrames(t *testing.T) {
	srv, col := startServer(t)
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Malformed: empty octet frame. Resyncs at the next LF.
	fmt.Fprint(conn, "0 \n")
	// Malformed: leading-zero length. Resyncs at the next LF.
	fmt.Fprint(conn, "007 bond\n")
	// Malformed: absurdly long digit run. Resyncs at the next LF.
	fmt.Fprintf(conn, "%s\n", strings.Repeat("9", 40))
	// Well-formed frame on the same connection: must still be delivered.
	line := sampleLine(9)
	fmt.Fprintf(conn, "%d %s", len(line), line)
	col.waitFor(t, 1)
	st := srv.Stats()
	if st.Malformed < 3 {
		t.Fatalf("expected >=3 malformed frames, got %+v", st)
	}
	if st.Received != 1 {
		t.Fatalf("resync failed, good frame lost: %+v", st)
	}
}

// TestTCPOversizeOctetFrameResync: a parseable but oversize length skips
// exactly that many bytes and the connection keeps working.
func TestTCPOversizeOctetFrameResync(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.MaxLine = 128
	col := &collector{}
	srv, err := NewServer(cfg, col.sink)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(context.Background())
	t.Cleanup(srv.Close)
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// 300 > MaxLine: the server must discard exactly 300 bytes then resume.
	fmt.Fprintf(conn, "300 %s", strings.Repeat("j", 300))
	line := sampleLine(3)
	fmt.Fprintf(conn, "%d %s", len(line), line)
	col.waitFor(t, 1)
	if st := srv.Stats(); st.Malformed != 1 || st.Received != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestQueueOverflowDropAccounting blocks the sink, floods the queue past
// capacity, and checks every excess message is counted as dropped.
func TestQueueOverflowDropAccounting(t *testing.T) {
	release := make(chan struct{})
	var delivered atomic.Uint64
	cfg := DefaultServerConfig()
	cfg.QueueSize = 8
	srv, err := NewServer(cfg, func(logfmt.Message) {
		<-release
		delivered.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(context.Background())
	defer srv.Close()
	conn, err := net.Dial("udp", srv.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const total = 200
	for i := 0; i < total; i++ {
		fmt.Fprint(conn, sampleLine(i))
	}
	// Wait until the accounting has seen every datagram.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := srv.Stats()
		if st.Received+st.Dropped+st.Malformed == total {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := srv.Stats()
	if st.Received+st.Dropped != total || st.Dropped == 0 {
		t.Fatalf("drop accounting: %+v (want received+dropped=%d with drops)", st, total)
	}
	close(release)
	srv.Close()
	if got := delivered.Load(); got != st.Received {
		t.Fatalf("delivered %d, received %d: drained messages lost", got, st.Received)
	}
}

// TestCloseDuringInFlightTCPFrame opens a frame, sends only part of it, and
// closes the server: Close must interrupt the blocked handler rather than
// deadlock.
func TestCloseDuringInFlightTCPFrame(t *testing.T) {
	srv, _ := startServer(t)
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Promise 100 bytes, deliver 10, then go silent.
	fmt.Fprint(conn, "100 0123456789")
	time.Sleep(50 * time.Millisecond) // let serveTCP block in ReadFull
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked on an in-flight TCP frame")
	}
}

// TestTCPPeerDiesMidFrame uses the fault-injection conn: the peer's write
// side fails (and closes) partway through a frame. The server must count
// nothing received for the torn frame and keep accepting other peers.
func TestTCPPeerDiesMidFrame(t *testing.T) {
	srv, col := startServer(t)
	raw, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	line := sampleLine(0)
	frame := fmt.Sprintf("%d %s", len(line), line)
	plan := faultinject.NewPlan(faultinject.FailAfterBytes(int64(len(frame) / 2)))
	fc := &faultinject.Conn{Conn: raw, WritePlan: plan, CloseOnFault: true}
	if _, err := fc.Write([]byte(frame)); err == nil {
		t.Fatal("expected injected write fault")
	}
	// A second, healthy peer still gets through.
	conn2, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	fmt.Fprintf(conn2, "%s\n", sampleLine(1))
	col.waitFor(t, 1)
	if st := srv.Stats(); st.Received != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
