package ingest

import (
	"fmt"
	"testing"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/logfmt"
)

// calibrationTraffic drives one monitor through a deterministic mixed
// scenario — steady normal traffic on several hosts with two anomaly
// bursts and one isolated anomaly — and returns the emitted warnings.
// The stream mirrors the seed scenarios the figures pipeline scores: the
// warning rule should fire exactly on the bursts and nowhere else.
func calibrationTraffic(mon *Monitor) []detect.Warning {
	normal := []string{
		"bgp keepalive exchanged with peer 10.0.0.2 hold 90",
		"interface statistics poll completed for ge-0/0/2 in 9 ms",
		"fpc 1 cpu utilization 30 percent memory 45 percent",
		"ntp clock synchronized to 10.9.9.9 stratum 2 offset 80 us",
	}
	hosts := []string{"vpe01", "vpe02", "vpe03"}
	seen := map[string]int{} // per-host position in the training cycle
	at := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	step := func(host string) {
		mon.HandleMessage(logfmt.Message{Time: at, Host: host, Tag: "rpd",
			Text: normal[seen[host]%len(normal)]})
		seen[host]++
		at = at.Add(10 * time.Second)
	}
	anom := func(host, text string, gap time.Duration) {
		mon.HandleMessage(logfmt.Message{Time: at, Host: host, Tag: "rpd", Text: text})
		at = at.Add(gap)
	}
	// Interleaved normal traffic: each host sees the training template
	// cycle in order at the training cadence (3 hosts × 10 s = 30 s gaps).
	for i := 0; i < 360; i++ {
		step(hosts[i%len(hosts)])
	}
	// Burst 1: three never-seen messages within a minute on vpe02.
	for i := 0; i < 3; i++ {
		anom("vpe02", "invalid response from peer chassis-control session 42 retries 3", 15*time.Second)
	}
	for i := 0; i < 120; i++ {
		step(hosts[i%len(hosts)])
	}
	// Isolated anomaly on vpe03: must not warn (§5.1 rule).
	anom("vpe03", "totally unexpected kernel catastrophe message here", 10*time.Minute)
	for i := 0; i < 120; i++ {
		step(hosts[i%len(hosts)])
	}
	// Burst 2: a different fault signature on vpe01.
	for i := 0; i < 4; i++ {
		anom("vpe01", "fpc 1 major errors detected on pfe complex asic 2", 12*time.Second)
	}
	return mon.Warnings()
}

// monitorAt builds a monitor over a freshly trained detector serving at
// the given precision. trainMonitorDetector is deterministic, so every
// call yields identical trees and weights — the only difference between
// two monitors is the serving engine.
func monitorAt(t *testing.T, p detect.Precision) *Monitor {
	t.Helper()
	tree, det := trainMonitorDetector(t)
	mcfg := DefaultMonitorConfig()
	mcfg.Threshold = 4
	mcfg.Precision = p
	mon := NewMonitor(mcfg, tree, det, nil)
	if det.Precision() != p {
		t.Fatalf("NewMonitor did not apply precision %v (got %v)", p, det.Precision())
	}
	return mon
}

// TestQuantF32WarningParity is the f32 calibration gate: the quantized
// serving path must reproduce the f64 warning sequence exactly on the
// seed scenario — same warnings, same hosts, same cluster sizes, same
// first-anomaly times — and the per-message anomaly verdict count must
// match too (scores sit nats away from the threshold on both sides, so
// the ~1e-3 f32 drift cannot flip a verdict).
func TestQuantF32WarningParity(t *testing.T) {
	ref := monitorAt(t, detect.PrecisionF64)
	q := monitorAt(t, detect.PrecisionF32)
	wRef := calibrationTraffic(ref)
	wQ := calibrationTraffic(q)
	if len(wRef) != 2 {
		t.Fatalf("f64 reference emitted %d warnings, want 2 (scenario drift?): %+v", len(wRef), wRef)
	}
	if fmt.Sprintf("%+v", wRef) != fmt.Sprintf("%+v", wQ) {
		t.Fatalf("f32 warning sequence diverged:\n f64: %+v\n f32: %+v", wRef, wQ)
	}
	mRef, aRef := ref.Counters()
	mQ, aQ := q.Counters()
	if mRef != mQ || aRef != aQ {
		t.Fatalf("verdict counters diverged: f64 msgs=%d anoms=%d, f32 msgs=%d anoms=%d", mRef, aRef, mQ, aQ)
	}
}

// TestQuantInt8FARDelta is the int8 calibration gate: on the same seed
// scenario, the int8 engine's false-alarm rate (anomaly verdicts per
// scored message) may differ from the f64 reference by at most the
// promotion-gate budget (0.02), and the warning count must match.
func TestQuantInt8FARDelta(t *testing.T) {
	ref := monitorAt(t, detect.PrecisionF64)
	q := monitorAt(t, detect.PrecisionInt8)
	wRef := calibrationTraffic(ref)
	wQ := calibrationTraffic(q)
	if len(wQ) != len(wRef) {
		t.Fatalf("int8 warning count %d != f64 %d:\n f64: %+v\n int8: %+v", len(wQ), len(wRef), wRef, wQ)
	}
	mRef, aRef := ref.Counters()
	mQ, aQ := q.Counters()
	if mRef != mQ {
		t.Fatalf("message counts diverged: %d vs %d", mRef, mQ)
	}
	farRef := float64(aRef) / float64(mRef)
	farQ := float64(aQ) / float64(mQ)
	delta := farQ - farRef
	if delta < 0 {
		delta = -delta
	}
	const gateBudget = 0.02 // lifecycle promotion-gate FAR budget
	if delta > gateBudget {
		t.Fatalf("int8 FAR delta %.4f exceeds gate budget %.2f (f64 %.4f, int8 %.4f)",
			delta, gateBudget, farRef, farQ)
	}
	t.Logf("FAR f64=%.4f int8=%.4f delta=%.4f", farRef, farQ, delta)
}
