package ingest

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nfvpredict/internal/atomicfile"
	"nfvpredict/internal/detect"
	"nfvpredict/internal/faultinject"
	"nfvpredict/internal/features"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/sigtree"
)

// monitorTraffic builds a deterministic message sequence: mostly normal
// cyclic traffic across several hosts with an anomaly burst per host near
// the end.
func monitorTraffic(hosts []string, n int) []logfmt.Message {
	normal := []string{
		"bgp keepalive exchanged with peer 10.0.0.2 hold 90",
		"interface statistics poll completed for ge-0/0/2 in 9 ms",
		"fpc 1 cpu utilization 30 percent memory 45 percent",
		"ntp clock synchronized to 10.9.9.9 stratum 2 offset 80 us",
	}
	var out []logfmt.Message
	at := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		for _, h := range hosts {
			out = append(out, logfmt.Message{
				Time: at, Host: h, Tag: "rpd",
				Text: normal[i%len(normal)],
			})
		}
		at = at.Add(30 * time.Second)
	}
	for _, h := range hosts {
		for i := 0; i < 3; i++ {
			out = append(out, logfmt.Message{
				Time: at, Host: h, Tag: "rpd",
				Text: fmt.Sprintf("invalid response from peer chassis-control session %d retries 3", i),
			})
			at = at.Add(10 * time.Second)
		}
	}
	return out
}

// TestCheckpointKillAndRestore is the tentpole acceptance test: feed half
// the traffic, checkpoint, "kill" the monitor, restore a new one, feed the
// other half to both — warnings and counters must match bit for bit.
func TestCheckpointKillAndRestore(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	resolve := func(string) *detect.LSTMDetector { return det }
	mcfg := DefaultMonitorConfig()
	mcfg.Threshold = 4

	msgs := monitorTraffic([]string{"vpe01", "vpe02", "vpe03"}, 60)
	cut := len(msgs) / 2

	// Uninterrupted run.
	ref := NewMonitorWithResolver(mcfg, cloneTree(t, tree), resolve, nil)
	for _, m := range msgs {
		ref.HandleMessage(m)
	}

	// Interrupted run: checkpoint at the cut, restore, replay the tail.
	mon := NewMonitorWithResolver(mcfg, cloneTree(t, tree), resolve, nil)
	for _, m := range msgs[:cut] {
		mon.HandleMessage(m)
	}
	var ckpt bytes.Buffer
	if err := mon.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreMonitor(bytes.NewReader(ckpt.Bytes()), mcfg, resolve, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs[cut:] {
		restored.HandleMessage(m)
	}

	a, b := ref.Stats(), restored.Stats()
	if a.Messages != b.Messages || a.Anomalies != b.Anomalies || a.Warnings != b.Warnings {
		t.Fatalf("restored run diverged: ref=%+v restored=%+v", a, b)
	}
	wa, wb := ref.Warnings(), restored.Warnings()
	if len(wa) == 0 {
		t.Fatal("test traffic produced no warnings; burst not anomalous enough")
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("warning %d differs: %+v vs %+v", i, wa[i], wb[i])
		}
	}
	if b.Messages != uint64(len(msgs)) {
		t.Fatalf("restored counters lost history: %d of %d", b.Messages, len(msgs))
	}
}

// cloneTree round-trips a tree through its serializer so the reference and
// interrupted runs grow independent trees from the same starting point.
func cloneTree(t testing.TB, tr *sigtree.Tree) *sigtree.Tree {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := sigtree.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// trainMonitorDetectorWidth trains the standard test detector but with a
// different hidden width, to model an architecture change across a reload.
func trainMonitorDetectorWidth(t *testing.T, hidden int) (*sigtree.Tree, *detect.LSTMDetector) {
	t.Helper()
	tree := sigtree.New()
	var stream []features.Event
	base := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	texts := []string{
		"bgp keepalive exchanged with peer 10.0.0.1 hold 90",
		"interface statistics poll completed for ge-0/0/1 in 12 ms",
	}
	for i := 0; i < 400; i++ {
		tpl := tree.Learn(texts[i%len(texts)])
		stream = append(stream, features.Event{Time: base.Add(time.Duration(i) * 30 * time.Second), Template: tpl.ID})
	}
	cfg := detect.DefaultLSTMConfig()
	cfg.Hidden = []int{hidden}
	cfg.MaxVocab = 16
	cfg.Epochs = 1
	cfg.OverSampleRounds = 0
	det := detect.NewLSTMDetector(cfg)
	if err := det.Train([][]features.Event{stream}); err != nil {
		t.Fatal(err)
	}
	return tree, det
}

// TestCheckpointFileTornWrite simulates a crash mid-checkpoint: the atomic
// writer must leave the previous checkpoint readable.
func TestCheckpointFileTornWrite(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	resolve := func(string) *detect.LSTMDetector { return det }
	mcfg := DefaultMonitorConfig()
	mcfg.Threshold = 4
	mon := NewMonitorWithResolver(mcfg, tree, resolve, nil)
	for _, m := range monitorTraffic([]string{"vpe01"}, 30) {
		mon.HandleMessage(m)
	}

	path := filepath.Join(t.TempDir(), "monitor.ckpt")
	if err := mon.CheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Torn write of a later checkpoint: inject a fault partway through.
	plan := faultinject.NewPlan(faultinject.FailAfterBytes(int64(len(good) / 3)))
	err = atomicfile.Write(path, func(w io.Writer) error {
		return mon.Checkpoint(faultinject.NewWriter(w, plan))
	})
	if err == nil {
		t.Fatal("torn checkpoint write should error")
	}
	after, rerr := os.ReadFile(path)
	if rerr != nil || !bytes.Equal(after, good) {
		t.Fatal("torn write damaged the previous checkpoint")
	}
	if _, err := RestoreMonitorFile(path, mcfg, resolve, nil); err != nil {
		t.Fatalf("previous checkpoint no longer restores: %v", err)
	}
}

// TestRestoreRejectsCorruptCheckpoint covers truncated and bit-flipped
// checkpoint files.
func TestRestoreRejectsCorruptCheckpoint(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	resolve := func(string) *detect.LSTMDetector { return det }
	mcfg := DefaultMonitorConfig()
	mon := NewMonitorWithResolver(mcfg, tree, resolve, nil)
	for _, m := range monitorTraffic([]string{"vpe01", "vpe02"}, 20) {
		mon.HandleMessage(m)
	}
	var buf bytes.Buffer
	if err := mon.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	for _, cut := range []int{0, 8, len(full) / 2, len(full) - 1} {
		if _, err := RestoreMonitor(bytes.NewReader(full[:cut]), mcfg, resolve, nil); err == nil {
			t.Fatalf("truncation at %d not rejected", cut)
		}
	}
	flipped := append([]byte(nil), full...)
	faultinject.FlipBit(flipped, (len(flipped)/2)*8)
	_, err := RestoreMonitor(bytes.NewReader(flipped), mcfg, resolve, nil)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("bit flip: %v", err)
	}
	if _, err := RestoreMonitor(strings.NewReader("junk that is not a checkpoint"), mcfg, resolve, nil); err == nil {
		t.Fatal("junk input not rejected")
	}
}

// TestRestoreShapeMismatchFailsLoudly replays a checkpoint against a
// detector with different layer widths — the post-hot-reload case — and
// expects a descriptive error rather than silent garbage.
func TestRestoreShapeMismatchFailsLoudly(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	mcfg := DefaultMonitorConfig()
	mon := NewMonitorWithResolver(mcfg, tree, func(string) *detect.LSTMDetector { return det }, nil)
	for _, m := range monitorTraffic([]string{"vpe01"}, 20) {
		mon.HandleMessage(m)
	}
	var buf bytes.Buffer
	if err := mon.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	_, other := trainMonitorDetectorWidth(t, 24)
	_, err := RestoreMonitor(&buf, mcfg, func(string) *detect.LSTMDetector { return other }, nil)
	if err == nil {
		t.Fatal("architecture mismatch must fail restore")
	}
}

// TestMonitorLRUEviction floods the monitor with more spoofed hostnames
// than MaxHosts allows and verifies memory stays bounded.
func TestMonitorLRUEviction(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	mcfg := DefaultMonitorConfig()
	mcfg.MaxHosts = 8
	mon := NewMonitorWithResolver(mcfg, tree, func(string) *detect.LSTMDetector { return det }, nil)
	at := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		mon.HandleMessage(logfmt.Message{
			Time: at, Host: fmt.Sprintf("spoofed-%03d", i), Tag: "rpd",
			Text: "bgp keepalive exchanged with peer 10.0.0.2 hold 90",
		})
		at = at.Add(time.Second)
	}
	st := mon.Stats()
	if st.ActiveHosts != 8 {
		t.Fatalf("active hosts %d, cap 8", st.ActiveHosts)
	}
	if st.EvictedHosts != 92 {
		t.Fatalf("evicted %d, want 92", st.EvictedHosts)
	}
	// The most recent hosts survive; the oldest are gone.
	newest := mon.hasHost("spoofed-099")
	oldest := mon.hasHost("spoofed-000")
	if !newest || oldest {
		t.Fatalf("LRU kept wrong hosts: newest=%v oldest=%v", newest, oldest)
	}
}

// TestSwapModelHotReload verifies a model swap keeps history, resets
// streams, and applies the new threshold.
func TestSwapModelHotReload(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	mcfg := DefaultMonitorConfig()
	mcfg.Threshold = 4
	mon := NewMonitorWithResolver(mcfg, tree, func(string) *detect.LSTMDetector { return det }, nil)
	msgs := monitorTraffic([]string{"vpe01", "vpe02"}, 40)
	for _, m := range msgs {
		mon.HandleMessage(m)
	}
	before := mon.Stats()
	if before.Warnings == 0 {
		t.Fatal("expected warnings before swap")
	}

	tree2, det2 := trainMonitorDetector(t)
	mon.SwapModel(tree2, func(string) *detect.LSTMDetector { return det2 }, 5)
	after := mon.Stats()
	if after.ModelSwaps != 1 || after.ActiveHosts != 0 {
		t.Fatalf("swap state: %+v", after)
	}
	if after.Warnings != before.Warnings || after.Messages != before.Messages {
		t.Fatalf("swap must keep history: before=%+v after=%+v", before, after)
	}
	// The monitor keeps scoring against the new model.
	for _, m := range msgs {
		mon.HandleMessage(m)
	}
	if st := mon.Stats(); st.Messages != before.Messages*2 {
		t.Fatalf("post-swap ingestion: %+v", st)
	}
}
