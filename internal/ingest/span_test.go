package ingest

import (
	"bytes"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/features"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/obs"
	"nfvpredict/internal/sigtree"
)

// spanMonitorConfig wires a full tracing+SLO observability stack into a
// monitor config: sample-everything tracer, a generous latency SLO, and a
// registry for exemplar inspection.
func spanMonitorConfig(t *testing.T, sampleM int) (MonitorConfig, *obs.Registry, *obs.SpanRing, *obs.SLO) {
	t.Helper()
	reg := obs.NewRegistry()
	ring := obs.NewSpanRing(1024)
	n := 1
	if sampleM <= 0 {
		n, sampleM = 0, 1
	}
	tracer := obs.NewTracer(ring, n, sampleM)
	tracer.Export(reg)
	lat := obs.NewSLO(obs.SLOConfig{Name: "accept_verdict_latency", Target: 0.99})
	mcfg := DefaultMonitorConfig()
	mcfg.Threshold = 4
	mcfg.Metrics = reg
	mcfg.Tracer = tracer
	mcfg.LatencySLO = lat
	mcfg.LatencyBound = 5 * time.Second
	return mcfg, reg, ring, lat
}

// TestMonitorDecisionSpansSync drives the synchronous path with
// sample-everything tracing and checks the acceptance criteria end to end:
// every message gets a decision span, sampled stage durations sum to the
// span total within 10%, the warning verdict's span is marked, the handle
// histogram carries an exemplar whose trace ID resolves in the span ring,
// and the latency SLO saw every verdict.
func TestMonitorDecisionSpansSync(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	resolve := func(string) *detect.LSTMDetector { return det }
	mcfg, reg, ring, lat := spanMonitorConfig(t, 1)
	mon := NewMonitorWithResolver(mcfg, tree, resolve, nil)

	msgs := monitorTraffic([]string{"vpe01", "vpe02"}, 40)
	for _, m := range msgs {
		mon.HandleMessage(m)
	}

	spans := ring.Recent(0)
	if len(spans) != len(msgs) {
		t.Fatalf("spans = %d, want one per message (%d)", len(spans), len(msgs))
	}
	var sumStages, sumTotal int64
	for _, s := range spans {
		if s.Kind != obs.KindDecision || !s.Sampled || s.TraceID == 0 {
			t.Fatalf("span shape: %+v", s)
		}
		if s.Host != "vpe01" && s.Host != "vpe02" {
			t.Fatalf("span host: %+v", s)
		}
		if s.TotalNS <= 0 || s.Stages.Sum() <= 0 {
			t.Fatalf("span clocks never ran: %+v", s)
		}
		if s.Stages.Sum() > s.TotalNS {
			t.Fatalf("stages exceed total: sum=%d total=%d", s.Stages.Sum(), s.TotalNS)
		}
		// Sync path: no decode/queue-wait/batch stages beyond lock wait.
		if s.Stages.DecodeNS != 0 || s.Stages.BatchNS != 0 || s.Stages.CheckpointNS != 0 {
			t.Fatalf("sync span carries async stages: %+v", s.Stages)
		}
		sumStages += s.Stages.Sum()
		sumTotal += s.TotalNS
	}
	// The stage decomposition must cover the accept→verdict latency: in
	// aggregate the named stages account for at least 90% of total span
	// time (the remainder is the unclocked slack between stage boundaries).
	if sumStages < sumTotal*9/10 {
		t.Fatalf("stages cover %d of %d ns (%.1f%%), want >= 90%%",
			sumStages, sumTotal, 100*float64(sumStages)/float64(sumTotal))
	}

	// The warning-tipping verdicts are marked on their spans.
	warned := ring.Query(obs.SpanQuery{WarningsOnly: true})
	if len(warned) == 0 {
		t.Fatal("no warning spans after anomaly bursts")
	}
	for _, s := range warned {
		if !s.Anomalous || !s.Warning || s.Score <= 4 {
			t.Fatalf("warning span verdict: %+v", s)
		}
	}

	// At least one histogram bucket exposes an exemplar, and its trace ID
	// resolves to a span in the ring — the /metrics → /spans link.
	checked := false
	for _, name := range []string{"monitor_handle_seconds", "monitor_score"} {
		h := reg.Histogram(name, "", nil)
		for _, e := range h.Exemplars() {
			if e == nil {
				continue
			}
			checked = true
			if got := ring.Query(obs.SpanQuery{TraceID: e.TraceID}); len(got) != 1 {
				t.Fatalf("exemplar trace %v resolves to %d spans", e.TraceID, len(got))
			}
		}
	}
	if !checked {
		t.Fatal("no exemplar landed on any histogram")
	}
	// The exemplar suffix shows up in the OpenMetrics exposition — and
	// only there: the 0.0.4 text parser has no exemplar syntax, so the
	// plain exposition must stay free of mid-line '#'.
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `# {trace_id="`) {
		t.Fatal("OpenMetrics exposition carries no exemplar suffix")
	}
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `# {trace_id="`) {
		t.Fatal("0.0.4 exposition leaked an exemplar suffix")
	}

	// Every verdict hit the latency SLO (generous bound: all good).
	st := lat.Status()
	if st.Fast.Good != uint64(len(msgs)) || st.Fast.Bad != 0 {
		t.Fatalf("latency SLO saw %d good / %d bad, want %d / 0",
			st.Fast.Good, st.Fast.Bad, len(msgs))
	}
}

// TestMonitorWarningAlwaysSpanned pins always-sample-on-warning: with
// sampling off (n=0), routine verdicts emit no spans but every warning
// still gets one, carrying the total latency without a stage breakdown.
func TestMonitorWarningAlwaysSpanned(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	resolve := func(string) *detect.LSTMDetector { return det }
	mcfg, _, ring, _ := spanMonitorConfig(t, 0)
	mon := NewMonitorWithResolver(mcfg, tree, resolve, nil)

	for _, m := range monitorTraffic([]string{"vpe01"}, 40) {
		mon.HandleMessage(m)
	}
	if mon.Stats().Warnings == 0 {
		t.Fatal("traffic produced no warnings")
	}
	spans := ring.Recent(0)
	if len(spans) == 0 {
		t.Fatal("warnings emitted no spans with sampling off")
	}
	for _, s := range spans {
		if !s.Warning || s.Sampled {
			t.Fatalf("unsampled ring should hold only warning spans: %+v", s)
		}
		if s.TotalNS <= 0 {
			t.Fatalf("warning span without total: %+v", s)
		}
		if s.Stages.Sum() != 0 {
			t.Fatalf("unsampled span carries stages: %+v", s.Stages)
		}
	}
}

// TestAsyncShardedSpans drives the batched async path with pre-minted
// trace contexts (as the ingest server would) and checks the span stream:
// one span per message, batch-path stages filled, stage sums within the
// coverage bound of totals, and scoring results identical to an untraced
// run (tracing must not perturb verdicts).
func TestAsyncShardedSpans(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	resolve := func(string) *detect.LSTMDetector { return det }
	msgs := monitorTraffic([]string{"vpe01", "vpe02", "vpe03", "vpe04"}, 40)

	refCfg := DefaultMonitorConfig()
	refCfg.Threshold = 4
	ref := NewMonitorWithResolver(refCfg, cloneTree(t, tree), resolve, nil)
	for _, m := range msgs {
		ref.HandleMessage(m)
	}

	mcfg, _, ring, lat := spanMonitorConfig(t, 1)
	mcfg.Shards = 2
	mcfg.MaxBatch = 8
	async := NewMonitorWithResolver(mcfg, cloneTree(t, tree), resolve, nil)
	async.Start()
	tracer := mcfg.Tracer
	for _, m := range msgs {
		id, sampled := tracer.Accept()
		m.Trace = logfmt.TraceCtx{ID: uint64(id), Sampled: sampled, Accept: time.Now()}
		for !async.Enqueue(m) {
			time.Sleep(time.Millisecond)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && async.Stats().Messages < uint64(len(msgs)) {
		time.Sleep(2 * time.Millisecond)
	}
	async.Stop()

	ra, aa := ref.Stats(), async.Stats()
	if aa.Messages != uint64(len(msgs)) || ra.Anomalies != aa.Anomalies || ra.Warnings != aa.Warnings {
		t.Fatalf("traced async run diverged: ref=%+v async=%+v", ra, aa)
	}
	spans := ring.Recent(0)
	if len(spans) != len(msgs) {
		t.Fatalf("spans = %d, want %d", len(spans), len(msgs))
	}
	var sumStages, sumTotal int64
	batchStages := false
	for _, s := range spans {
		if !s.Sampled || s.TotalNS <= 0 {
			t.Fatalf("async span shape: %+v", s)
		}
		if s.Stages.Sum() > s.TotalNS {
			t.Fatalf("stages exceed total: %+v", s)
		}
		if s.Stages.QueueNS <= 0 {
			t.Fatalf("async span without queue wait: %+v", s.Stages)
		}
		if s.Stages.BatchNS > 0 {
			batchStages = true
		}
		sumStages += s.Stages.Sum()
		sumTotal += s.TotalNS
	}
	if sumStages < sumTotal*9/10 {
		t.Fatalf("stages cover %d of %d ns, want >= 90%%", sumStages, sumTotal)
	}
	_ = batchStages // waves beyond the first carry BatchNS; single-wave batches legitimately may not
	if st := lat.Status(); st.Fast.Good+st.Fast.Bad != uint64(len(msgs)) {
		t.Fatalf("latency SLO saw %d events, want %d", st.Fast.Good+st.Fast.Bad, len(msgs))
	}
}

// TestServerDropSLOAndTraceStamp drives the server's accept boundary: a
// stopped monitor's full shard queue turns refusals into bad SLO events
// (flipping the drop objective's fast window), admissions into good ones,
// and every accepted message gets a trace context with its decode stage
// attributed.
func TestServerDropSLOAndTraceStamp(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	ring := obs.NewSpanRing(16)
	tracer := obs.NewTracer(ring, 1, 1)
	mcfg := DefaultMonitorConfig()
	mcfg.Shards = 1
	mcfg.ShardQueue = 4
	mcfg.Tracer = tracer
	mon := NewMonitorWithResolver(mcfg, tree, func(string) *detect.LSTMDetector { return det }, nil)
	// Workers intentionally not started: the queue can only fill.

	drops := obs.NewSLO(obs.SLOConfig{Name: "shard_drop_ratio", Target: 0.99})
	cfg := DefaultServerConfig()
	cfg.Sharded = mon
	cfg.Tracer = tracer
	cfg.DropSLO = drops
	srv, err := NewServer(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for i := 0; i < 10; i++ {
		srv.enqueue([]byte(sampleLine(i)))
	}
	st := drops.Status()
	if st.Fast.Good != 4 || st.Fast.Bad != 6 {
		t.Fatalf("drop SLO saw %d good / %d bad, want 4 / 6", st.Fast.Good, st.Fast.Bad)
	}
	// 60% bad over a 1% budget: far past the fast-burn threshold.
	if !drops.FastBurning() {
		t.Fatalf("drop burst did not flip the fast window: %+v", st.Fast)
	}

	// The queued messages carry stamped trace contexts; score one and the
	// span's decode stage is the listener-side parse time.
	mon.Start()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && mon.Stats().Messages < 4 {
		time.Sleep(2 * time.Millisecond)
	}
	mon.Stop()
	spans := ring.Recent(0)
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4 admitted messages", len(spans))
	}
	for _, s := range spans {
		if !s.Sampled || s.Stages.DecodeNS <= 0 || s.Stages.QueueNS <= 0 {
			t.Fatalf("server-stamped span lacks decode/queue stages: %+v", s.Stages)
		}
	}
}

// TestCheckpointSpan checks the checkpoint path emits its maintenance span.
func TestCheckpointSpan(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	resolve := func(string) *detect.LSTMDetector { return det }
	mcfg, _, ring, _ := spanMonitorConfig(t, 1)
	mon := NewMonitorWithResolver(mcfg, tree, resolve, nil)
	for _, m := range monitorTraffic([]string{"vpe01"}, 10) {
		mon.HandleMessage(m)
	}
	var buf bytes.Buffer
	if err := mon.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	cks := ring.Query(obs.SpanQuery{Kind: obs.KindCheckpoint})
	if len(cks) != 1 {
		t.Fatalf("checkpoint spans = %d", len(cks))
	}
	s := cks[0]
	if !s.Sampled || s.TotalNS <= 0 || s.Stages.CheckpointNS != s.TotalNS {
		t.Fatalf("checkpoint span: %+v", s)
	}
}

// spanBenchMonitor builds the BenchmarkMonitorHandleMessage fixture (same
// tiny corpus and config), optionally with the production tracing stack
// attached: a 1-in-16 tracer and the latency SLO, the exact per-message
// cost -span-sample 16 adds in nfvmonitor.
func spanBenchMonitor(tb testing.TB, traced bool) (*Monitor, logfmt.Message) {
	tb.Helper()
	tree := sigtree.New()
	texts := []string{
		"bgp keepalive exchanged with peer 10.0.0.1 hold 90",
		"interface statistics poll completed for ge-0/0/1 in 12 ms",
	}
	base := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	var stream []features.Event
	for i := 0; i < 400; i++ {
		tpl := tree.Learn(texts[i%2])
		stream = append(stream, features.Event{Time: base.Add(time.Duration(i) * time.Second), Template: tpl.ID})
	}
	cfg := detect.DefaultLSTMConfig()
	cfg.Hidden = []int{16}
	cfg.MaxVocab = 8
	cfg.Epochs = 1
	det := detect.NewLSTMDetector(cfg)
	if err := det.Train([][]features.Event{stream}); err != nil {
		tb.Fatal(err)
	}
	mcfg := DefaultMonitorConfig()
	if traced {
		mcfg.Tracer = obs.NewTracer(obs.NewSpanRing(512), 1, 16)
		mcfg.LatencySLO = obs.NewSLO(obs.SLOConfig{Name: "accept_verdict_latency"})
		mcfg.LatencyBound = DefaultLatencyBound
	}
	mon := NewMonitor(mcfg, tree, det, nil)
	return mon, logfmt.Message{Time: base, Host: "vpe00", Tag: "rpd", Text: texts[0]}
}

// BenchmarkMonitorHandleMessageSpans is the traced twin of
// BenchmarkMonitorHandleMessage: the delta between the two is the span
// instrumentation's per-message overhead at the default 1-in-16 sampling
// rate (trace mint + accept clock read + SLO record on every message,
// stage clocks on the sampled sixteenth). TestSpanOverhead gates the
// ratio at 5%.
func BenchmarkMonitorHandleMessageSpans(b *testing.B) {
	mon, msg := spanBenchMonitor(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.Time = msg.Time.Add(time.Second)
		mon.HandleMessage(msg)
	}
}

// TestSpanOverhead is the tracing-overhead gate: span instrumentation may
// cost at most 5% on the serving hot path. It reruns both HandleMessage
// benchmarks in-process, alternating base/traced rounds so CPU-frequency
// drift over the run hits both variants equally, and compares the best
// round of each (min ns/op filters scheduler noise). Benchmark-grade
// timing needs a quiet machine, so the gate only arms under
// NFV_SPAN_GATE=1 — `make ci` sets it.
func TestSpanOverhead(t *testing.T) {
	if os.Getenv("NFV_SPAN_GATE") != "1" {
		t.Skip("set NFV_SPAN_GATE=1 to run the span-overhead gate")
	}
	measure := func(traced bool) float64 {
		mon, msg := spanBenchMonitor(t, traced)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				msg.Time = msg.Time.Add(time.Second)
				mon.HandleMessage(msg)
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	base, spans := math.MaxFloat64, math.MaxFloat64
	for round := 0; round < 4; round++ {
		base = math.Min(base, measure(false))
		spans = math.Min(spans, measure(true))
	}
	ratio := spans / base
	t.Logf("base %.0f ns/op, spans %.0f ns/op, overhead %.2f%%", base, spans, 100*(ratio-1))
	if ratio > 1.05 {
		t.Fatalf("span instrumentation costs %.2f%% (> 5%%): base %.0f ns/op, spans %.0f ns/op",
			100*(ratio-1), base, spans)
	}
}

// TestConcurrentMetricsScrapeDuringScoring hammers /metrics rendering in
// both expositions (WriteOpenMetrics walks every histogram's exemplar
// pointers) while shard workers score traced traffic — the -race gate
// for the exemplar and span plumbing on the hot path.
func TestConcurrentMetricsScrapeDuringScoring(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	resolve := func(string) *detect.LSTMDetector { return det }
	mcfg, reg, ring, _ := spanMonitorConfig(t, 2)
	mcfg.Shards = 2
	mcfg.MaxBatch = 8
	mon := NewMonitorWithResolver(mcfg, tree, resolve, nil)
	mon.Start()

	msgs := monitorTraffic([]string{"vpe01", "vpe02", "vpe03"}, 30)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
			buf.Reset()
			if err := reg.WriteOpenMetrics(&buf); err != nil {
				t.Error(err)
				return
			}
			ring.Recent(16)
			mon.Stats()
		}
	}()
	tracer := mcfg.Tracer
	for _, m := range msgs {
		id, sampled := tracer.Accept()
		m.Trace = logfmt.TraceCtx{ID: uint64(id), Sampled: sampled, Accept: time.Now()}
		for !mon.Enqueue(m) {
			time.Sleep(time.Millisecond)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && mon.Stats().Messages < uint64(len(msgs)) {
		time.Sleep(2 * time.Millisecond)
	}
	close(done)
	wg.Wait()
	mon.Stop()
	if mon.Stats().Messages != uint64(len(msgs)) {
		t.Fatalf("scored %d of %d under concurrent scrape", mon.Stats().Messages, len(msgs))
	}
}
