package ingest

import (
	"sync"
	"testing"
	"time"

	"nfvpredict/internal/features"
	"nfvpredict/internal/logfmt"
)

// scoredRec is one OnScored callback, recorded for assertions.
type scoredRec struct {
	host      string
	cluster   int
	ev        features.Event
	score     float64
	anomalous bool
	burst     bool
}

type scoredLog struct {
	mu   sync.Mutex
	recs []scoredRec
}

func (l *scoredLog) hook(host string, cluster int, ev features.Event, score float64, anomalous, burst bool) {
	l.mu.Lock()
	l.recs = append(l.recs, scoredRec{host, cluster, ev, score, anomalous, burst})
	l.mu.Unlock()
}

func (l *scoredLog) snapshot() []scoredRec {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]scoredRec(nil), l.recs...)
}

// TestOnScoredHook drives the synchronous path: every scored message
// reaches the hook with its cluster, normal messages arrive with
// anomalous=false, an isolated anomaly with burst=false, and a
// warning-sized burst flips burst=true from the event that completes it.
func TestOnScoredHook(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	var log scoredLog
	mcfg := DefaultMonitorConfig()
	mcfg.Threshold = 4
	mcfg.ClusterOf = func(host string) int {
		if host == "vpe07" {
			return 1
		}
		return -1
	}
	mcfg.OnScored = log.hook
	mon := NewMonitor(mcfg, tree, det, nil)

	normal := []string{
		"bgp keepalive exchanged with peer 10.0.0.2 hold 90",
		"interface statistics poll completed for ge-0/0/2 in 9 ms",
		"fpc 1 cpu utilization 30 percent memory 45 percent",
		"ntp clock synchronized to 10.9.9.9 stratum 2 offset 80 us",
	}
	mk := func(host, text string, at time.Time) logfmt.Message {
		return logfmt.Message{Time: at, Host: host, Tag: "rpd", Text: text}
	}
	at := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 40; i++ {
		mon.HandleMessage(mk("vpe07", normal[i%len(normal)], at))
		at = at.Add(30 * time.Second)
	}
	recs := log.snapshot()
	if len(recs) != 40 {
		t.Fatalf("hook fired %d times for 40 messages", len(recs))
	}
	for i, r := range recs {
		if r.host != "vpe07" || r.cluster != 1 {
			t.Fatalf("rec %d identity: %+v", i, r)
		}
		if i > 0 && r.anomalous {
			t.Fatalf("normal warm traffic flagged anomalous: %+v", r)
		}
		if r.ev.Template < 0 || r.ev.Time.IsZero() {
			t.Fatalf("rec %d event not populated: %+v", i, r)
		}
	}

	// Isolated anomaly: anomalous=true, burst=false.
	mon.HandleMessage(mk("vpe07", "totally unexpected kernel catastrophe message here", at))
	at = at.Add(10 * time.Minute)
	recs = log.snapshot()
	last := recs[len(recs)-1]
	if !last.anomalous || last.burst {
		t.Fatalf("isolated anomaly: %+v", last)
	}

	// Burst: the ≥2-within-a-minute warning rule flips burst=true.
	for i := 0; i < 3; i++ {
		mon.HandleMessage(mk("vpe07", "invalid response from peer chassis-control session 42 retries 3", at))
		at = at.Add(15 * time.Second)
	}
	recs = log.snapshot()
	tail := recs[len(recs)-3:]
	if tail[0].burst {
		t.Fatalf("first anomaly of a cluster must not be a burst yet: %+v", tail[0])
	}
	if !tail[1].burst || !tail[2].burst {
		t.Fatalf("burst flag missing once the cluster reached warning size: %+v", tail)
	}

	// Unmapped hosts clamp to cluster 0.
	mon.HandleMessage(mk("vpe99", normal[0], at))
	recs = log.snapshot()
	if last = recs[len(recs)-1]; last.host != "vpe99" || last.cluster != 0 {
		t.Fatalf("unmapped host cluster: %+v", last)
	}
}

// TestOnScoredHookBatchedPath: the async Enqueue/Start path (batched
// inference) reaches the same hook for every message.
func TestOnScoredHookBatchedPath(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	var log scoredLog
	mcfg := DefaultMonitorConfig()
	mcfg.Threshold = 4
	mcfg.Shards = 4
	mcfg.OnScored = log.hook
	mon := NewMonitor(mcfg, tree, det, nil)

	normal := []string{
		"bgp keepalive exchanged with peer 10.0.0.2 hold 90",
		"interface statistics poll completed for ge-0/0/2 in 9 ms",
	}
	at := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	const hosts, per = 8, 25
	for i := 0; i < hosts*per; i++ {
		host := "vpe" + string(rune('a'+i%hosts))
		if !mon.Enqueue(logfmt.Message{Time: at, Host: host, Tag: "rpd", Text: normal[i%len(normal)]}) {
			t.Fatal("enqueue refused")
		}
		at = at.Add(time.Second)
	}
	mon.Start()
	mon.Stop()
	if got := len(log.snapshot()); got != hosts*per {
		t.Fatalf("hook fired %d times for %d batched messages", got, hosts*per)
	}
}
