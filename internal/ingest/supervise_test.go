package ingest

import (
	"testing"
	"time"

	"nfvpredict/internal/faultinject"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/resilience"
)

// superviseMonitor builds an async monitor wired to a private fault
// registry, trained on the shared corpus.
func superviseMonitor(t *testing.T, shards int, watchdog time.Duration) (*Monitor, *faultinject.Registry) {
	t.Helper()
	tree, det := trainMonitorDetector(t)
	reg := faultinject.NewRegistry()
	cfg := DefaultMonitorConfig()
	cfg.Threshold = 4
	cfg.Shards = shards
	cfg.Watchdog = watchdog
	cfg.Faults = reg
	return NewMonitor(cfg, tree, det, nil), reg
}

func superviseMsg(host, text string, at time.Time) logfmt.Message {
	return logfmt.Message{Time: at, Host: host, Facility: logfmt.FacDaemon, Severity: logfmt.Info, Tag: "rpd", Text: text}
}

// feedUntil enqueues messages (retrying full queues) until cond holds or
// the deadline lapses.
func feedUntil(t *testing.T, mon *Monitor, cond func() bool, deadline time.Duration) {
	t.Helper()
	base := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)
	texts := []string{
		"bgp keepalive exchanged with peer 10.0.0.1 hold 90",
		"interface statistics poll completed for ge-0/0/1 in 12 ms",
	}
	limit := time.After(deadline)
	for i := 0; ; i++ {
		if cond() {
			return
		}
		select {
		case <-limit:
			t.Fatalf("condition not reached; stats %+v", mon.Stats())
		default:
		}
		msg := superviseMsg("vpe01", texts[i%len(texts)], base.Add(time.Duration(i)*10*time.Second))
		if !mon.Enqueue(msg) {
			time.Sleep(time.Millisecond)
		}
	}
}

// TestSupervisedWorkerRecoversFromPanic injects a worker-loop panic and a
// scoring panic and checks the workers restart and keep scoring — the
// monitor never stops consuming.
func TestSupervisedWorkerRecoversFromPanic(t *testing.T) {
	mon, faults := superviseMonitor(t, 1, 0)
	mon.Start()
	defer mon.Stop()

	// Two worker-loop panics (before dequeue: no message loss), then clean.
	if err := faults.Arm("shard.worker", faultinject.Arming{Mode: faultinject.ModePanic, Count: 2}); err != nil {
		t.Fatal(err)
	}
	feedUntil(t, mon, func() bool { return mon.Stats().WorkerRestarts >= 2 }, 10*time.Second)

	// A scoring panic after dequeue: the batch is lost but counted, and
	// processing continues.
	before := mon.Stats().Messages
	if err := faults.Arm("shard.score", faultinject.Arming{Mode: faultinject.ModePanic, Count: 1}); err != nil {
		t.Fatal(err)
	}
	feedUntil(t, mon, func() bool {
		st := mon.Stats()
		return st.ShardPanics >= 1 && st.Messages > before
	}, 10*time.Second)
	if st := mon.Stats(); st.WorkerRestarts < 3 {
		t.Fatalf("scoring panic did not restart the worker: %+v", st)
	}
}

// TestWatchdogKicksStuckWorker wedges a worker with an injected slow batch
// and checks the watchdog abandons it: a replacement worker drains the
// queue while the stuck one is still sleeping.
func TestWatchdogKicksStuckWorker(t *testing.T) {
	mon, faults := superviseMonitor(t, 1, 50*time.Millisecond)
	mon.Start()
	defer mon.Stop()

	// First batch wedges for 2s — far past the 50ms watchdog deadline.
	if err := faults.Arm("shard.score", faultinject.Arming{Mode: faultinject.ModeSlow, Delay: 2 * time.Second, Count: 1}); err != nil {
		t.Fatal(err)
	}
	feedUntil(t, mon, func() bool {
		st := mon.Stats()
		return st.WatchdogKicks >= 1 && st.Messages >= 4
	}, 10*time.Second)
}

// TestWatchdogClockSkewFault injects a skewed watchdog clock and checks a
// healthy-but-idle-looking worker is kicked — the chaos drill for the
// watchdog machinery itself — and that the kick is harmless.
func TestWatchdogClockSkewFault(t *testing.T) {
	mon, faults := superviseMonitor(t, 1, 50*time.Millisecond)
	mon.Start()
	defer mon.Stop()
	if err := faults.Arm("heartbeat.skew", faultinject.Arming{Mode: faultinject.ModeSkew, Skew: time.Hour}); err != nil {
		t.Fatal(err)
	}
	// Keep the queue non-empty so the skewed age check applies.
	feedUntil(t, mon, func() bool { return mon.Stats().WatchdogKicks >= 1 }, 10*time.Second)
	faults.Disarm("heartbeat.skew")
	// The monitor still consumes after the spurious kick.
	before := mon.Stats().Messages
	feedUntil(t, mon, func() bool { return mon.Stats().Messages > before+8 }, 10*time.Second)
}

// TestShedScoringMode pins the shed-scoring contract: messages are counted
// and templates learned, but nothing is scored until the mode lifts.
func TestShedScoringMode(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	cfg := DefaultMonitorConfig()
	cfg.Threshold = 4
	mon := NewMonitor(cfg, tree, det, nil)

	base := time.Date(2018, 5, 2, 0, 0, 0, 0, time.UTC)
	mon.SetDegrade(resilience.ModeShedScoring)
	if got := mon.DegradeMode(); got != resilience.ModeShedScoring {
		t.Fatalf("mode = %v", got)
	}
	tplsBefore := tree.Len()
	for i := 0; i < 8; i++ {
		mon.HandleMessage(superviseMsg("vpe09", "never seen template while shedding scores", base.Add(time.Duration(i)*time.Second)))
	}
	st := mon.Stats()
	if st.Messages != 8 || st.ShedMessages != 8 {
		t.Fatalf("shed accounting: %+v", st)
	}
	if st.Anomalies != 0 {
		t.Fatalf("scored while shedding: %+v", st)
	}
	if mon.hasHost("vpe09") {
		t.Fatal("host state created while shedding scoring")
	}
	if tree.Len() <= tplsBefore {
		t.Fatal("template learning stopped while shedding scoring")
	}

	// Lifting the mode resumes scoring.
	mon.SetDegrade(resilience.ModeNormal)
	mon.HandleMessage(superviseMsg("vpe09", "bgp keepalive exchanged with peer 10.0.0.3 hold 90", base.Add(time.Minute)))
	if !mon.hasHost("vpe09") {
		t.Fatal("scoring did not resume after shed mode lifted")
	}
	if st := mon.Stats(); st.DegradeMode != "normal" {
		t.Fatalf("stats mode = %q", st.DegradeMode)
	}
}

// TestQueueFrac pins the overload signal the degradation controller reads.
func TestQueueFrac(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	cfg := DefaultMonitorConfig()
	cfg.ShardQueue = 4
	mon := NewMonitor(cfg, tree, det, nil)
	if f := mon.QueueFrac(); f != 0 {
		t.Fatalf("empty queue frac = %v", f)
	}
	base := time.Date(2018, 5, 3, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		mon.Enqueue(superviseMsg("vpe01", "x", base))
	}
	if f := mon.QueueFrac(); f != 0.75 {
		t.Fatalf("queue frac = %v, want 0.75", f)
	}
}
