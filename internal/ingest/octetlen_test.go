package ingest

import (
	"bufio"
	"bytes"
	"strconv"
	"testing"
)

// refReadOctetLen is the pre-optimization readOctetLen — collect the
// digits into a slice, then strconv.Atoi the string — kept as the
// reference oracle for the in-place parser.
func refReadOctetLen(r *bufio.Reader) (n int, ok bool, err error) {
	var digits []byte
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, false, err
		}
		if b == ' ' {
			break
		}
		if b < '0' || b > '9' || len(digits) >= maxOctetDigits {
			return 0, false, nil
		}
		digits = append(digits, b)
	}
	if len(digits) == 0 || (digits[0] == '0' && len(digits) > 1) {
		return 0, false, nil
	}
	v, convErr := strconv.Atoi(string(digits))
	if convErr != nil {
		return 0, false, nil
	}
	return v, true, nil
}

// FuzzReadOctetLen pins the in-place octet-count parser to the reference
// implementation: same value, same ok/err verdict, same number of bytes
// consumed from the stream (resync depends on it).
func FuzzReadOctetLen(f *testing.F) {
	seeds := []string{
		"123 <28>Mar 14",
		"0 x",
		"00 x",
		"007 x",
		" x",
		"9999999999 x",  // max digits, would overflow int32
		"99999999999 x", // overlong: 11 digits
		"12a x",
		"1",   // EOF before the space
		"123", // EOF mid-count
		"4294967296 x",
		"0123456789 x",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		refR := bufio.NewReader(bytes.NewReader(data))
		gotR := bufio.NewReader(bytes.NewReader(data))
		wantN, wantOK, wantErr := refReadOctetLen(refR)
		gotN, gotOK, gotErr := readOctetLen(gotR)
		if gotN != wantN || gotOK != wantOK || (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("readOctetLen(%q) = (%d, %v, %v), reference = (%d, %v, %v)",
				data, gotN, gotOK, gotErr, wantN, wantOK, wantErr)
		}
		if refR.Buffered() != gotR.Buffered() {
			t.Fatalf("readOctetLen(%q) consumed %d bytes, reference consumed %d",
				data, len(data)-gotR.Buffered(), len(data)-refR.Buffered())
		}
	})
}
