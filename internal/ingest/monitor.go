package ingest

import (
	"container/list"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/faultinject"
	"nfvpredict/internal/features"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/obs"
	"nfvpredict/internal/resilience"
	"nfvpredict/internal/sigtree"
)

// MonitorConfig configures an online Monitor.
type MonitorConfig struct {
	// Threshold is the anomaly-score threshold (negative log-likelihood);
	// pick it from an offline PRC's best-F operating point (§5.2).
	Threshold float64
	// ClusterWindow and MinClusterSize implement the §5.1 warning rule
	// (≥2 anomalies within a minute → warning signature).
	ClusterWindow  time.Duration
	MinClusterSize int
	// MaxHosts caps the number of per-host states (LSTM stream + anomaly
	// cluster) held in memory; 0 means DefaultMaxHosts. When the cap is
	// reached the least-recently-seen host is evicted, so a sender spoofing
	// hostnames can cost at most MaxHosts streams of memory, never
	// unbounded growth. An evicted host that reappears starts a cold
	// stream. With multiple shards the cap is partitioned evenly
	// (ceil(MaxHosts/Shards) per shard), so each shard evicts its own
	// coldest hosts.
	MaxHosts int

	// Shards is the number of independent scoring shards; hosts are hashed
	// onto shards, and each shard owns its hosts' LSTM streams under its
	// own mutex. 0 or 1 means a single shard, which behaves exactly like
	// the historical single-mutex monitor (same eviction, same checkpoint
	// bytes). More shards let HandleMessage calls for different hosts score
	// in parallel, and give the async path (Enqueue/Start) one worker per
	// shard. Use runtime.GOMAXPROCS(0) to match the machine.
	Shards int
	// ShardQueue bounds each shard's async ingest queue (Enqueue); 0 means
	// DefaultShardQueue. When a queue is full, Enqueue reports false and
	// the message is the caller's to drop and count — backpressure must
	// never block a network listener.
	ShardQueue int
	// MaxBatch caps how many queued messages a shard worker scores as one
	// batch (batched LSTM inference); 0 means DefaultMaxBatch. Only the
	// async path batches; HandleMessage always scores synchronously.
	MaxBatch int

	// Watchdog, when > 0, runs a stuck-worker watchdog beside the async
	// workers (Start): each worker stamps a heartbeat per loop iteration,
	// and a shard whose queue has work but whose heartbeat has not moved
	// for Watchdog is force-restarted — a replacement worker is spawned at
	// a bumped generation and the wedged one self-retires after its
	// current batch (goroutines cannot be killed; abandonment is the only
	// forced restart Go has). Workers are also supervised: a worker that
	// panics or exits abnormally is restarted with jittered backoff.
	// 0 disables the watchdog (workers are still supervised).
	Watchdog time.Duration

	// Faults, when set, registers the monitor's chaos fault points
	// (shard.score, shard.worker, heartbeat.skew) in this registry so
	// tests and the /chaos endpoint can inject scoring panics, slow
	// batches, worker crashes, and skewed watchdog clocks. Nil wires no
	// fault points (zero overhead beyond a nil check per batch).
	Faults *faultinject.Registry

	// Precision selects the serving-path inference engine (f64 reference,
	// packed f32, or row-quantized int8) — see internal/nn's quantized
	// serving path. NewMonitor applies it to its detector at construction;
	// NewMonitorWithResolver callers own packing (the monitor cannot
	// enumerate a resolver's detectors), typically by calling SetPrecision
	// on each detector before serving. The zero value is PrecisionF64.
	Precision detect.Precision

	// Metrics, when set, is the registry the monitor reports into
	// (counters mirror Stats(); latency and score histograms are only
	// maintained when a registry is attached, so an uninstrumented
	// monitor never reads the clock per message). Per-shard queue-depth
	// gauges are labelled monitor_shard_queue_depth{shard="i"}. When nil
	// the monitor keeps its counters on a private registry so Stats()
	// still works.
	Metrics *obs.Registry
	// Traces, when set, receives one decision trace per anomaly verdict —
	// the per-window log-probabilities, template IDs, threshold, and
	// cluster/model identity that explain the verdict. Nil disables
	// tracing (and the per-host context windows that feed it).
	Traces *obs.TraceRing
	// TraceWindow is how many recent messages of context each trace
	// carries (including the flagged one); 0 means DefaultTraceWindow.
	TraceWindow int
	// ClusterOf, when set, maps a host to its model's cluster index for
	// trace identity (bundle deployments pass the bundle assignment);
	// unmapped or nil reports cluster -1.
	ClusterOf func(host string) int

	// Tracer, when set, turns on span-based pipeline tracing: messages
	// arriving with a minted TraceCtx (the ingest Server stamps one at
	// frame accept) — or stamped here for direct HandleMessage callers —
	// emit a decision span into the tracer's ring. Sampled messages carry
	// full stage clocks (queue wait, sigtree, batch wait, score, verdict);
	// a warning verdict on an unsampled message still emits a span with
	// the total latency only. Nil disables tracing: the scoring paths pay
	// one branch and zero clock reads.
	Tracer *obs.Tracer
	// LatencySLO, when set, records one good/bad event per traced scored
	// message: good when accept→verdict latency is within LatencyBound.
	LatencySLO *obs.SLO
	// LatencyBound is the accept→verdict latency objective bound; 0 means
	// DefaultLatencyBound.
	LatencyBound time.Duration
	// OnScored, when set, observes every scored message after threshold
	// evaluation: the host, its model cluster (via ClusterOf, clamped to
	// 0 when unmapped), the extracted template event, the anomaly score,
	// whether the score crossed the threshold, and whether the message
	// sits in a warning-sized anomaly cluster (burst — the §5.1 rule, the
	// runtime proxy for "near a fault"). The hook runs synchronously
	// under the host's shard lock: implementations must be O(1)-cheap and
	// must never call back into the Monitor (SwapModel and friends take
	// every shard lock and would deadlock). The lifecycle spool is the
	// intended consumer.
	OnScored func(host string, cluster int, ev features.Event, score float64, anomalous, burst bool)
}

// DefaultMaxHosts bounds per-host monitor state when MonitorConfig.MaxHosts
// is unset. The paper's fleet is ~2.5k vPEs; 8192 leaves generous headroom
// while keeping worst-case memory finite.
const DefaultMaxHosts = 8192

// DefaultTraceWindow is the per-trace context length when
// MonitorConfig.TraceWindow is unset: enough to see the §5.1 one-minute
// anomaly cluster forming without bloating the ring.
const DefaultTraceWindow = 8

// DefaultShardQueue is the per-shard async queue bound when
// MonitorConfig.ShardQueue is unset.
const DefaultShardQueue = 1024

// DefaultMaxBatch is the per-worker batch cap when MonitorConfig.MaxBatch
// is unset. Past ~16 lanes the batched GEMM's per-lane win flattens while
// per-batch latency keeps growing, so this is a latency/throughput balance,
// not a hard ceiling.
const DefaultMaxBatch = 16

// DefaultLatencyBound is the accept→verdict latency objective when
// MonitorConfig.LatencyBound is unset: generous against the µs-scale
// scoring path, so only real queueing or a wedged stage burns budget.
const DefaultLatencyBound = 250 * time.Millisecond

// DefaultMonitorConfig returns the paper's warning-clustering parameters
// with a placeholder threshold of 6 (≈ e^-6 next-template likelihood) and a
// single scoring shard.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{
		Threshold:      6,
		ClusterWindow:  detect.DefaultClusterWindow,
		MinClusterSize: detect.DefaultMinClusterSize,
		MaxHosts:       DefaultMaxHosts,
	}
}

// MonitorStats is a snapshot of the monitor's cumulative counters.
type MonitorStats struct {
	// Messages is the number of messages ingested.
	Messages uint64
	// Anomalies is the number of messages scored above the threshold.
	Anomalies uint64
	// Warnings is the number of warning signatures emitted.
	Warnings uint64
	// EvictedHosts counts least-recently-seen host states dropped to honor
	// MaxHosts.
	EvictedHosts uint64
	// ModelSwaps counts successful SwapModel calls (hot reloads).
	ModelSwaps uint64
	// ShardPanics counts scoring panics recovered by shard workers; the
	// panicking batch is lost, the shard keeps serving.
	ShardPanics uint64
	// WorkerRestarts counts supervised shard-worker restarts (after a
	// panic or abnormal exit).
	WorkerRestarts uint64
	// WatchdogKicks counts stuck workers force-restarted by the watchdog.
	WatchdogKicks uint64
	// ShedMessages counts messages that skipped scoring while the monitor
	// was degraded to shed-scoring mode (templates still learned).
	ShedMessages uint64
	// DegradeMode is the current degradation mode ("normal",
	// "shed-learning", "shed-scoring").
	DegradeMode string
	// ActiveHosts is the number of per-host states currently held.
	ActiveHosts int
	// Shards is the number of scoring shards.
	Shards int
}

// Monitor is the live counterpart of the offline pipeline: it templates
// each incoming syslog message with the signature tree, scores it against
// the trained LSTM with per-vPE streaming state, clusters anomalies, and
// emits warning signatures to a callback.
//
// The monitor is sharded: hosts hash onto Shards independent shards, each
// owning its hosts' recurrent scoring state under its own mutex.
// HandleMessage is safe for concurrent use — calls for hosts on different
// shards score in parallel; calls for the same host serialize on its
// shard's mutex. Warnings, Stats, Checkpoint, and SwapModel may be called
// concurrently with scoring.
//
// Two ingestion paths share the same scoring code:
//
//   - HandleMessage scores synchronously on the caller's goroutine. With a
//     single caller its behavior (scores, warnings, checkpoints) is
//     deterministic and independent of the shard count.
//   - Enqueue routes the message to its shard's bounded queue and returns
//     immediately; shard workers (Start/Stop) drain the queues, batching
//     the LSTM inference of distinct hosts. Per-host scoring is still
//     bit-identical, but cross-host ordering (and thus the interleaving of
//     the warning log) follows worker scheduling.
type Monitor struct {
	cfg MonitorConfig

	onWarning func(detect.Warning)

	// treeMu guards the signature tree, the only scoring structure shared
	// by every shard (template IDs are global). Tokenization happens
	// outside the lock; only match/merge/grow runs under it.
	treeMu sync.Mutex
	tree   *sigtree.Tree

	// warnMu guards the warning history and serializes the onWarning
	// callback across shards.
	warnMu   sync.Mutex
	warnings []detect.Warning

	shards []*shard
	// seq stamps each host touch with a global recency order, so a
	// checkpoint can emit hosts in least-recently-seen order regardless of
	// how they are spread over shards.
	seq atomic.Uint64
	// hostCount mirrors the summed shard LRU lengths for Stats().
	hostCount atomic.Int64

	// now is stubbed by tests that need byte-identical checkpoints.
	now func() time.Time

	// lifeMu guards the async worker lifecycle.
	lifeMu  sync.Mutex
	running bool
	stop    chan struct{}
	wg      sync.WaitGroup

	// degrade holds the current resilience.Mode. Shed-scoring is enforced
	// in the scoring paths (templates keep learning, scores are skipped);
	// shed-learning is the lifecycle manager's to enforce.
	degrade atomic.Int32

	// Chaos fault points; nil (never fired) when cfg.Faults is unset.
	fpScore  *faultinject.Point
	fpWorker *faultinject.Point
	fpSkew   *faultinject.Point

	// Counters live on the registry (cfg.Metrics, or a private one) so the
	// same numbers appear in Stats(), logs, and /metrics with no double
	// bookkeeping; Checkpoint/Restore move their values wholesale.
	messages    *obs.Counter
	anoms       *obs.Counter
	warningsC   *obs.Counter
	evicted     *obs.Counter
	swaps       *obs.Counter
	shardPanics *obs.Counter
	// activeHosts mirrors hostCount for scraping; histograms are nil (and
	// free) when no registry was attached.
	activeHosts    *obs.Gauge
	handleSeconds  *obs.Histogram
	learnSeconds   *obs.Histogram
	scoreHist      *obs.Histogram
	ckptSaves      *obs.Counter
	ckptSeconds    *obs.Histogram
	workerRestarts *obs.Counter
	watchdogKicks  *obs.Counter
	shedMessages   *obs.Counter
	degradeGauge   *obs.Gauge
	hbAgeGauge     *obs.Gauge
}

// hostState is everything the monitor remembers about one vPE: its scoring
// stream and its in-progress anomaly cluster. Stream and cluster live and
// die together under the shard LRU so eviction cannot leave half a host
// behind.
type hostState struct {
	host    string
	model   string
	stream  *detect.LSTMStream
	cluster *clusterState // nil until the host's first anomaly

	// seq is the global recency stamp of the host's last touch (see
	// Monitor.seq); mark is batch wave-scheduling scratch (see
	// processBatchLocked).
	seq  uint64
	mark uint64

	// recent is a fixed ring of the host's latest scored messages, the
	// context window copied into a decision trace when a verdict fires.
	// Only maintained when tracing is enabled.
	recent []obs.TraceStep
	nSeen  int // total steps recorded into recent
}

// clusterState tracks the in-progress anomaly cluster of one vPE.
type clusterState struct {
	first, last time.Time
	size        int
	reported    bool
}

// NewMonitor builds a monitor from a grown signature tree and a trained
// LSTM detector. onWarning (optional) fires once per warning signature.
func NewMonitor(cfg MonitorConfig, tree *sigtree.Tree, det *detect.LSTMDetector, onWarning func(detect.Warning)) *Monitor {
	if det != nil && cfg.Precision != detect.PrecisionF64 {
		det.SetPrecision(cfg.Precision)
	}
	return NewMonitorWithResolver(cfg, tree, func(string) *detect.LSTMDetector { return det }, onWarning)
}

// NewMonitorWithResolver builds a monitor whose detector is chosen per
// host — the multi-cluster deployment mode, where each vPE scores against
// its cluster's model (§4.3). resolve may return nil for hosts that have
// no trained model yet; their messages are counted but not scored.
func NewMonitorWithResolver(cfg MonitorConfig, tree *sigtree.Tree, resolve func(host string) *detect.LSTMDetector, onWarning func(detect.Warning)) *Monitor {
	if cfg.ClusterWindow <= 0 {
		cfg.ClusterWindow = detect.DefaultClusterWindow
	}
	if cfg.MinClusterSize <= 0 {
		cfg.MinClusterSize = detect.DefaultMinClusterSize
	}
	if cfg.MaxHosts <= 0 {
		cfg.MaxHosts = DefaultMaxHosts
	}
	if cfg.TraceWindow <= 0 {
		cfg.TraceWindow = DefaultTraceWindow
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.ShardQueue <= 0 {
		cfg.ShardQueue = DefaultShardQueue
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.LatencyBound <= 0 {
		cfg.LatencyBound = DefaultLatencyBound
	}
	m := &Monitor{
		cfg:       cfg,
		tree:      tree,
		onWarning: onWarning,
		now:       time.Now,
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m.messages = reg.Counter("monitor_messages_total", "Messages ingested by the monitor.")
	m.anoms = reg.Counter("monitor_anomalies_total", "Messages scored above the anomaly threshold.")
	m.warningsC = reg.Counter("monitor_warnings_total", "Warning signatures emitted (§5.1 clustering rule).")
	m.evicted = reg.Counter("monitor_evicted_hosts_total", "Per-host states evicted to honor MaxHosts.")
	m.swaps = reg.Counter("monitor_model_swaps_total", "Successful SwapModel hot reloads.")
	m.shardPanics = reg.Counter("monitor_shard_panics_total", "Scoring panics recovered by shard workers (the batch is lost).")
	m.activeHosts = reg.Gauge("monitor_active_hosts", "Per-host states currently held.")
	m.ckptSaves = reg.Counter("monitor_checkpoint_saves_total", "Successful Checkpoint snapshots written.")
	m.workerRestarts = reg.Counter("monitor_worker_restarts_total", "Supervised shard-worker restarts after a panic or abnormal exit.")
	m.watchdogKicks = reg.Counter("monitor_watchdog_restarts_total", "Stuck shard workers force-restarted by the watchdog.")
	m.shedMessages = reg.Counter("monitor_shed_messages_total", "Messages that skipped scoring while degraded to shed-scoring mode.")
	m.degradeGauge = reg.Gauge("monitor_degrade_mode", "Current degradation mode (0 normal, 1 shed-learning, 2 shed-scoring).")
	m.hbAgeGauge = reg.Gauge("monitor_worker_heartbeat_age_seconds", "Worst shard-worker heartbeat age observed by the watchdog.")
	if cfg.Faults != nil {
		m.fpScore = cfg.Faults.Point("shard.score",
			"Before a shard worker scores a batch: panic loses the batch, slow wedges the worker (watchdog food).")
		m.fpWorker = cfg.Faults.Point("shard.worker",
			"In the shard worker loop before dequeue: panic/error crashes the worker with no message loss (supervisor food).")
		m.fpSkew = cfg.Faults.Point("heartbeat.skew",
			"Skews the watchdog's clock so healthy heartbeats read stale.")
	}
	if cfg.Metrics != nil {
		m.ckptSeconds = reg.Histogram("monitor_checkpoint_seconds",
			"Checkpoint snapshot+encode latency.", obs.DurationBuckets())
		m.handleSeconds = reg.Histogram("monitor_handle_seconds",
			"End-to-end HandleMessage latency (template match + LSTM step + clustering).",
			obs.DurationBuckets())
		m.learnSeconds = reg.Histogram("monitor_sigtree_learn_seconds",
			"Signature-tree Learn (template match/grow) latency.",
			obs.DurationBuckets())
		m.scoreHist = reg.Histogram("monitor_score",
			"Anomaly scores (negative log-likelihood) of scored messages.",
			obs.LinearBuckets(0.5, 0.5, 20))
	}
	perShard := (cfg.MaxHosts + cfg.Shards - 1) / cfg.Shards
	m.shards = make([]*shard, cfg.Shards)
	for i := range m.shards {
		sh := &shard{
			m:         m,
			id:        i,
			queue:     make(chan logfmt.Message, cfg.ShardQueue),
			resolve:   resolve,
			clusterOf: cfg.ClusterOf,
			threshold: cfg.Threshold,
			maxHosts:  perShard,
			hosts:     make(map[string]*list.Element),
			lru:       list.New(),
		}
		if cfg.Metrics != nil {
			sh.depth = reg.Gauge(
				obs.LabelName("monitor_shard_queue_depth", "shard", strconv.Itoa(i)),
				"Messages waiting in this shard's async queue.")
		}
		m.shards[i] = sh
	}
	return m
}

// shardFor hashes a host onto its shard (FNV-1a over the hostname). The
// hash is stable across processes, so a checkpoint restores onto any shard
// count.
func (m *Monitor) shardFor(host string) int {
	if len(m.shards) == 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(host); i++ {
		h = (h ^ uint32(host[i])) * 16777619
	}
	return int(h % uint32(len(m.shards)))
}

// ShardCount returns the number of scoring shards.
func (m *Monitor) ShardCount() int { return len(m.shards) }

// Precision returns the configured serving precision. Model owners (the
// lifecycle manager, SwapModel callers) read it to re-pack incoming
// detectors so a promotion or rollback never downgrades the serving
// engine silently.
func (m *Monitor) Precision() detect.Precision { return m.cfg.Precision }

// hasHost reports whether host currently has live state (a test hook; the
// shard map is otherwise private to its mutex).
func (m *Monitor) hasHost(host string) bool {
	sh := m.shards[m.shardFor(host)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.hosts[host]
	return ok
}

// lockAll acquires every shard mutex in index order — the whole-monitor
// critical section used by Checkpoint and SwapModel. Shard workers only
// ever hold their own shard's mutex, so index order cannot deadlock.
func (m *Monitor) lockAll() {
	for _, sh := range m.shards {
		sh.mu.Lock()
	}
}

// unlockAll releases what lockAll acquired.
func (m *Monitor) unlockAll() {
	for _, sh := range m.shards {
		sh.mu.Unlock()
	}
}

// HandleMessage ingests one parsed syslog message synchronously. It is safe
// for concurrent use: messages for different hosts may score in parallel
// (they serialize only on the shared signature tree), while messages for
// one host serialize on its shard.
func (m *Monitor) HandleMessage(msg logfmt.Message) {
	start := m.handleSeconds.Start()
	tr := &msg.Trace
	if m.cfg.Tracer != nil && tr.ID == 0 {
		// Direct callers (no ingest Server upstream): accept is here.
		id, sampled := m.cfg.Tracer.Accept()
		tr.ID, tr.Sampled = uint64(id), sampled
		tr.Accept = time.Now()
	}
	sh := m.shards[m.shardFor(msg.Host)]
	var sp spanInfo
	if tr.Sampled {
		// On the synchronous path the queue stage is just the lock wait.
		lockStart := time.Now()
		sh.mu.Lock()
		sp.queueNS = int64(time.Since(lockStart))
	} else {
		sh.mu.Lock()
	}
	sh.handleLocked(msg, &sp)
	sh.mu.Unlock()
	if tr.Sampled {
		m.handleSeconds.ObserveDurationExemplar(start, obs.SpanID(tr.ID))
	} else {
		m.handleSeconds.ObserveDuration(start)
	}
}

// Enqueue routes one message to its host's shard queue without blocking.
// It reports false when the shard's queue is full; the caller owns the
// drop accounting (the ingest Server counts these under
// ingest_shard_drops_total). Messages enqueued before Start sit in the
// queue until workers run.
func (m *Monitor) Enqueue(msg logfmt.Message) bool {
	sh := m.shards[m.shardFor(msg.Host)]
	select {
	case sh.queue <- msg:
		if sh.depth != nil {
			sh.depth.SetInt(len(sh.queue))
		}
		return true
	default:
		return false
	}
}

// Start launches one supervised worker per shard to drain the async
// queues, plus (when cfg.Watchdog > 0) the stuck-worker watchdog. It is
// idempotent while running.
func (m *Monitor) Start() {
	m.lifeMu.Lock()
	defer m.lifeMu.Unlock()
	if m.running {
		return
	}
	m.running = true
	m.stop = make(chan struct{})
	for _, sh := range m.shards {
		m.spawnWorker(sh, m.stop)
	}
	if m.cfg.Watchdog > 0 {
		m.wg.Add(1)
		go m.watchdog(m.stop)
	}
}

// spawnWorker launches a supervised worker for sh at its current
// generation: the worker is restarted with jittered backoff after a panic
// or abnormal exit, and retires cleanly when stop closes or a watchdog
// replacement supersedes its generation. The heartbeat is stamped
// synchronously so consecutive watchdog ticks cannot double-kick a shard
// whose replacement has not been scheduled yet.
func (m *Monitor) spawnWorker(sh *shard, stop <-chan struct{}) {
	gen := sh.gen.Load()
	sh.hb.Beat()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		restart := resilience.NewBackoff(time.Millisecond, time.Second, 0.5, 0)
		for {
			if !sh.runOnce(stop, gen) {
				return
			}
			m.workerRestarts.Inc()
			t := time.NewTimer(restart.Next())
			select {
			case <-t.C:
			case <-stop:
				t.Stop()
				// Run one last incarnation to drain the queue on shutdown.
				sh.runOnce(stop, gen)
				return
			}
			t.Stop()
		}
	}()
}

// watchdog force-restarts wedged shard workers: a shard with queued work
// whose heartbeat has not advanced between two consecutive ticks and is
// older than cfg.Watchdog gets a replacement worker at a bumped
// generation. The wedged worker cannot be killed (Go has no goroutine
// kill); it self-retires at its next loop turn, after the batch it is
// stuck on either completes or panics. The heartbeat.skew fault point
// shifts the watchdog's clock to test exactly this machinery.
func (m *Monitor) watchdog(stop <-chan struct{}) {
	defer m.wg.Done()
	tick := time.NewTicker(m.cfg.Watchdog / 2)
	defer tick.Stop()
	lastBeat := make([]int64, len(m.shards))
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			now := time.Now().Add(m.fpSkew.Skew())
			var worst time.Duration
			for i, sh := range m.shards {
				beat := sh.hb.Load()
				age := sh.hb.Age(now)
				if age > worst && beat != 0 {
					worst = age
				}
				stalled := beat == lastBeat[i]
				lastBeat[i] = beat
				if len(sh.queue) == 0 || !stalled || age <= m.cfg.Watchdog {
					continue
				}
				sh.gen.Add(1)
				m.watchdogKicks.Inc()
				m.spawnWorker(sh, stop)
			}
			m.hbAgeGauge.Set(worst.Seconds())
		}
	}
}

// Stop signals the workers, waits for them to drain their queues, and
// returns. Stop the message source (the ingest Server) first, or late
// Enqueues will sit in the queues until the next Start.
func (m *Monitor) Stop() {
	m.lifeMu.Lock()
	if !m.running {
		m.lifeMu.Unlock()
		return
	}
	m.running = false
	close(m.stop)
	m.lifeMu.Unlock()
	m.wg.Wait()
}

// record appends one scored message to the host's fixed context ring.
func (hs *hostState) record(step obs.TraceStep) {
	hs.recent[hs.nSeen%len(hs.recent)] = step
	hs.nSeen++
}

// window copies the host's context ring out, oldest first.
func (hs *hostState) window() []obs.TraceStep {
	n := hs.nSeen
	if n > len(hs.recent) {
		n = len(hs.recent)
	}
	out := make([]obs.TraceStep, n)
	for i := 0; i < n; i++ {
		out[i] = hs.recent[(hs.nSeen-n+i)%len(hs.recent)]
	}
	return out
}

// SwapModel atomically replaces the serving model — signature tree,
// detector resolver, and threshold — with a freshly loaded bundle, the
// runtime half of the paper's monthly retraining loop (§4.4). The swap is
// atomic across shards: every shard mutex is held, so no message scores
// against a half-swapped model. Per-host stream state is reset (the new
// model's recurrent state and vocabulary are not compatible with the old
// one's); warnings and counters carry over. threshold <= 0 keeps the
// current threshold.
func (m *Monitor) SwapModel(tree *sigtree.Tree, resolve func(host string) *detect.LSTMDetector, threshold float64) {
	m.lockAll()
	m.treeMu.Lock()
	m.tree = tree
	m.treeMu.Unlock()
	for _, sh := range m.shards {
		sh.resolve = resolve
		if threshold > 0 {
			sh.threshold = threshold
		}
		sh.hosts = make(map[string]*list.Element)
		sh.lru = list.New()
	}
	m.hostCount.Store(0)
	m.activeHosts.SetInt(0)
	m.swaps.Inc()
	m.unlockAll()
}

// Tree returns the serving signature tree. The tree is shared, mutable,
// and guarded by the monitor's internal lock; the only safe uses of the
// returned pointer are handing it back to SwapModel (a promotion that
// keeps the current template space) and read-only access while scoring is
// stopped.
func (m *Monitor) Tree() *sigtree.Tree {
	m.treeMu.Lock()
	defer m.treeMu.Unlock()
	return m.tree
}

// TreeFingerprint returns the serving tree's lineage fingerprint, computed
// under the tree lock — the stamp persistent artifacts that record
// template IDs (the lifecycle spool) carry, so a restart can verify the
// IDs still mean what they meant when spooled.
func (m *Monitor) TreeFingerprint() uint64 {
	m.treeMu.Lock()
	defer m.treeMu.Unlock()
	return m.tree.Fingerprint()
}

// SetClusterOf replaces the host→cluster mapping used for trace identity,
// typically alongside SwapModel when a reloaded bundle re-clusters the
// fleet.
func (m *Monitor) SetClusterOf(clusterOf func(host string) int) {
	m.lockAll()
	for _, sh := range m.shards {
		sh.clusterOf = clusterOf
	}
	m.unlockAll()
}

// Warnings returns a copy of all warnings emitted so far.
func (m *Monitor) Warnings() []detect.Warning {
	m.warnMu.Lock()
	defer m.warnMu.Unlock()
	out := make([]detect.Warning, len(m.warnings))
	copy(out, m.warnings)
	return out
}

// Counters returns (messages ingested, anomalies flagged).
func (m *Monitor) Counters() (messages, anomalies uint64) {
	return m.messages.Value(), m.anoms.Value()
}

// Threshold returns the current operating threshold (which SwapModel may
// have updated since construction). All shards share one threshold, so
// reading any shard's copy suffices.
func (m *Monitor) Threshold() float64 {
	sh := m.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.threshold
}

// Stats returns a snapshot of all monitor counters — a thin view over the
// same registry counters exported at /metrics.
func (m *Monitor) Stats() MonitorStats {
	return MonitorStats{
		Messages:       m.messages.Value(),
		Anomalies:      m.anoms.Value(),
		Warnings:       m.warningsC.Value(),
		EvictedHosts:   m.evicted.Value(),
		ModelSwaps:     m.swaps.Value(),
		ShardPanics:    m.shardPanics.Value(),
		WorkerRestarts: m.workerRestarts.Value(),
		WatchdogKicks:  m.watchdogKicks.Value(),
		ShedMessages:   m.shedMessages.Value(),
		DegradeMode:    m.DegradeMode().String(),
		ActiveHosts:    int(m.hostCount.Load()),
		Shards:         len(m.shards),
	}
}

// SetDegrade switches the monitor's degradation mode. ModeShedScoring is
// enforced here (messages keep learning templates but skip scoring, so the
// signature tree stays warm for recovery while a faulting scoring path is
// bypassed); ModeShedLearning is informational to the monitor — the
// lifecycle manager is the component that pauses on it.
func (m *Monitor) SetDegrade(mode resilience.Mode) {
	m.degrade.Store(int32(mode))
	m.degradeGauge.SetInt(int(mode))
}

// DegradeMode returns the current degradation mode.
func (m *Monitor) DegradeMode() resilience.Mode {
	return resilience.Mode(m.degrade.Load())
}

// QueueFrac returns the worst shard queue's fill fraction [0,1] — the
// overload signal the degradation controller samples.
func (m *Monitor) QueueFrac() float64 {
	worst := 0.0
	for _, sh := range m.shards {
		if c := cap(sh.queue); c > 0 {
			if f := float64(len(sh.queue)) / float64(c); f > worst {
				worst = f
			}
		}
	}
	return worst
}
