package ingest

import (
	"sync"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/features"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/sigtree"
)

// MonitorConfig configures an online Monitor.
type MonitorConfig struct {
	// Threshold is the anomaly-score threshold (negative log-likelihood);
	// pick it from an offline PRC's best-F operating point (§5.2).
	Threshold float64
	// ClusterWindow and MinClusterSize implement the §5.1 warning rule
	// (≥2 anomalies within a minute → warning signature).
	ClusterWindow  time.Duration
	MinClusterSize int
}

// DefaultMonitorConfig returns the paper's warning-clustering parameters
// with a placeholder threshold of 6 (≈ e^-6 next-template likelihood).
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{
		Threshold:      6,
		ClusterWindow:  detect.DefaultClusterWindow,
		MinClusterSize: detect.DefaultMinClusterSize,
	}
}

// Monitor is the live counterpart of the offline pipeline: it templates
// each incoming syslog message with the signature tree, scores it against
// the trained LSTM with per-vPE streaming state, clusters anomalies, and
// emits warning signatures to a callback.
//
// HandleMessage is safe to call from one goroutine at a time (the ingest
// Server's dispatcher provides exactly that); Warnings and counters may be
// read concurrently.
type Monitor struct {
	cfg     MonitorConfig
	tree    *sigtree.Tree
	resolve func(host string) *detect.LSTMDetector

	onWarning func(detect.Warning)

	mu       sync.Mutex
	streams  map[string]*detect.LSTMStream
	clusters map[string]*clusterState
	warnings []detect.Warning
	messages uint64
	anoms    uint64
}

// clusterState tracks the in-progress anomaly cluster of one vPE.
type clusterState struct {
	first, last time.Time
	size        int
	reported    bool
}

// NewMonitor builds a monitor from a grown signature tree and a trained
// LSTM detector. onWarning (optional) fires once per warning signature.
func NewMonitor(cfg MonitorConfig, tree *sigtree.Tree, det *detect.LSTMDetector, onWarning func(detect.Warning)) *Monitor {
	return NewMonitorWithResolver(cfg, tree, func(string) *detect.LSTMDetector { return det }, onWarning)
}

// NewMonitorWithResolver builds a monitor whose detector is chosen per
// host — the multi-cluster deployment mode, where each vPE scores against
// its cluster's model (§4.3). resolve may return nil for hosts that have
// no trained model yet; their messages are counted but not scored.
func NewMonitorWithResolver(cfg MonitorConfig, tree *sigtree.Tree, resolve func(host string) *detect.LSTMDetector, onWarning func(detect.Warning)) *Monitor {
	if cfg.ClusterWindow <= 0 {
		cfg.ClusterWindow = detect.DefaultClusterWindow
	}
	if cfg.MinClusterSize <= 0 {
		cfg.MinClusterSize = detect.DefaultMinClusterSize
	}
	return &Monitor{
		cfg:       cfg,
		tree:      tree,
		resolve:   resolve,
		onWarning: onWarning,
		streams:   make(map[string]*detect.LSTMStream),
		clusters:  make(map[string]*clusterState),
	}
}

// HandleMessage ingests one parsed syslog message.
func (m *Monitor) HandleMessage(msg logfmt.Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.messages++
	tpl := m.tree.Learn(msg.Text)
	st := m.streams[msg.Host]
	if st == nil {
		det := m.resolve(msg.Host)
		if det == nil {
			return // no model for this host yet
		}
		st = det.NewStream()
		if st == nil {
			return // detector not trained yet
		}
		m.streams[msg.Host] = st
	}
	score := st.Push(features.Event{Time: msg.Time, Template: tpl.ID})
	if score <= m.cfg.Threshold {
		return
	}
	m.anoms++
	m.observeAnomaly(msg.Host, msg.Time)
}

// observeAnomaly advances the per-vPE cluster state and emits a warning
// when a cluster reaches the minimum size (once per cluster).
func (m *Monitor) observeAnomaly(vpe string, at time.Time) {
	cs := m.clusters[vpe]
	if cs == nil || at.Sub(cs.last) > m.cfg.ClusterWindow {
		m.clusters[vpe] = &clusterState{first: at, last: at, size: 1}
		return
	}
	cs.last = at
	cs.size++
	if cs.size >= m.cfg.MinClusterSize && !cs.reported {
		cs.reported = true
		w := detect.Warning{VPE: vpe, Time: cs.first, Size: cs.size}
		m.warnings = append(m.warnings, w)
		if m.onWarning != nil {
			m.onWarning(w)
		}
	}
}

// Warnings returns a copy of all warnings emitted so far.
func (m *Monitor) Warnings() []detect.Warning {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]detect.Warning, len(m.warnings))
	copy(out, m.warnings)
	return out
}

// Counters returns (messages ingested, anomalies flagged).
func (m *Monitor) Counters() (messages, anomalies uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.messages, m.anoms
}
