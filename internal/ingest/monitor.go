package ingest

import (
	"container/list"
	"sync"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/features"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/obs"
	"nfvpredict/internal/sigtree"
)

// MonitorConfig configures an online Monitor.
type MonitorConfig struct {
	// Threshold is the anomaly-score threshold (negative log-likelihood);
	// pick it from an offline PRC's best-F operating point (§5.2).
	Threshold float64
	// ClusterWindow and MinClusterSize implement the §5.1 warning rule
	// (≥2 anomalies within a minute → warning signature).
	ClusterWindow  time.Duration
	MinClusterSize int
	// MaxHosts caps the number of per-host states (LSTM stream + anomaly
	// cluster) held in memory; 0 means DefaultMaxHosts. When the cap is
	// reached the least-recently-seen host is evicted, so a sender spoofing
	// hostnames can cost at most MaxHosts streams of memory, never
	// unbounded growth. An evicted host that reappears starts a cold
	// stream.
	MaxHosts int

	// Metrics, when set, is the registry the monitor reports into
	// (counters mirror Stats(); latency and score histograms are only
	// maintained when a registry is attached, so an uninstrumented
	// monitor never reads the clock per message). When nil the monitor
	// keeps its counters on a private registry so Stats() still works.
	Metrics *obs.Registry
	// Traces, when set, receives one decision trace per anomaly verdict —
	// the per-window log-probabilities, template IDs, threshold, and
	// cluster/model identity that explain the verdict. Nil disables
	// tracing (and the per-host context windows that feed it).
	Traces *obs.TraceRing
	// TraceWindow is how many recent messages of context each trace
	// carries (including the flagged one); 0 means DefaultTraceWindow.
	TraceWindow int
	// ClusterOf, when set, maps a host to its model's cluster index for
	// trace identity (bundle deployments pass the bundle assignment);
	// unmapped or nil reports cluster -1.
	ClusterOf func(host string) int
}

// DefaultMaxHosts bounds per-host monitor state when MonitorConfig.MaxHosts
// is unset. The paper's fleet is ~2.5k vPEs; 8192 leaves generous headroom
// while keeping worst-case memory finite.
const DefaultMaxHosts = 8192

// DefaultTraceWindow is the per-trace context length when
// MonitorConfig.TraceWindow is unset: enough to see the §5.1 one-minute
// anomaly cluster forming without bloating the ring.
const DefaultTraceWindow = 8

// DefaultMonitorConfig returns the paper's warning-clustering parameters
// with a placeholder threshold of 6 (≈ e^-6 next-template likelihood).
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{
		Threshold:      6,
		ClusterWindow:  detect.DefaultClusterWindow,
		MinClusterSize: detect.DefaultMinClusterSize,
		MaxHosts:       DefaultMaxHosts,
	}
}

// MonitorStats is a snapshot of the monitor's cumulative counters.
type MonitorStats struct {
	// Messages is the number of messages ingested.
	Messages uint64
	// Anomalies is the number of messages scored above the threshold.
	Anomalies uint64
	// Warnings is the number of warning signatures emitted.
	Warnings uint64
	// EvictedHosts counts least-recently-seen host states dropped to honor
	// MaxHosts.
	EvictedHosts uint64
	// ModelSwaps counts successful SwapModel calls (hot reloads).
	ModelSwaps uint64
	// ActiveHosts is the number of per-host states currently held.
	ActiveHosts int
}

// Monitor is the live counterpart of the offline pipeline: it templates
// each incoming syslog message with the signature tree, scores it against
// the trained LSTM with per-vPE streaming state, clusters anomalies, and
// emits warning signatures to a callback.
//
// HandleMessage is safe to call from one goroutine at a time (the ingest
// Server's dispatcher provides exactly that); Warnings, Stats, Checkpoint,
// and SwapModel may be called concurrently with it.
type Monitor struct {
	cfg MonitorConfig

	onWarning func(detect.Warning)

	mu       sync.Mutex
	tree     *sigtree.Tree
	resolve  func(host string) *detect.LSTMDetector
	hosts    map[string]*list.Element
	lru      *list.List // of *hostState; front = most recently seen
	warnings []detect.Warning

	// Counters live on the registry (cfg.Metrics, or a private one) so the
	// same numbers appear in Stats(), logs, and /metrics with no double
	// bookkeeping; Checkpoint/Restore move their values wholesale.
	messages  *obs.Counter
	anoms     *obs.Counter
	warningsC *obs.Counter
	evicted   *obs.Counter
	swaps     *obs.Counter
	// activeHosts mirrors lru.Len() for scraping; histograms are nil (and
	// free) when no registry was attached.
	activeHosts   *obs.Gauge
	handleSeconds *obs.Histogram
	learnSeconds  *obs.Histogram
	scoreHist     *obs.Histogram
	ckptSaves     *obs.Counter
	ckptSeconds   *obs.Histogram
}

// hostState is everything the monitor remembers about one vPE: its scoring
// stream and its in-progress anomaly cluster. Stream and cluster live and
// die together under the LRU so eviction cannot leave half a host behind.
type hostState struct {
	host    string
	model   string
	stream  *detect.LSTMStream
	cluster *clusterState // nil until the host's first anomaly

	// recent is a fixed ring of the host's latest scored messages, the
	// context window copied into a decision trace when a verdict fires.
	// Only maintained when tracing is enabled.
	recent []obs.TraceStep
	nSeen  int // total steps recorded into recent
}

// clusterState tracks the in-progress anomaly cluster of one vPE.
type clusterState struct {
	first, last time.Time
	size        int
	reported    bool
}

// NewMonitor builds a monitor from a grown signature tree and a trained
// LSTM detector. onWarning (optional) fires once per warning signature.
func NewMonitor(cfg MonitorConfig, tree *sigtree.Tree, det *detect.LSTMDetector, onWarning func(detect.Warning)) *Monitor {
	return NewMonitorWithResolver(cfg, tree, func(string) *detect.LSTMDetector { return det }, onWarning)
}

// NewMonitorWithResolver builds a monitor whose detector is chosen per
// host — the multi-cluster deployment mode, where each vPE scores against
// its cluster's model (§4.3). resolve may return nil for hosts that have
// no trained model yet; their messages are counted but not scored.
func NewMonitorWithResolver(cfg MonitorConfig, tree *sigtree.Tree, resolve func(host string) *detect.LSTMDetector, onWarning func(detect.Warning)) *Monitor {
	if cfg.ClusterWindow <= 0 {
		cfg.ClusterWindow = detect.DefaultClusterWindow
	}
	if cfg.MinClusterSize <= 0 {
		cfg.MinClusterSize = detect.DefaultMinClusterSize
	}
	if cfg.MaxHosts <= 0 {
		cfg.MaxHosts = DefaultMaxHosts
	}
	if cfg.TraceWindow <= 0 {
		cfg.TraceWindow = DefaultTraceWindow
	}
	m := &Monitor{
		cfg:       cfg,
		tree:      tree,
		resolve:   resolve,
		onWarning: onWarning,
		hosts:     make(map[string]*list.Element),
		lru:       list.New(),
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m.messages = reg.Counter("monitor_messages_total", "Messages ingested by the monitor.")
	m.anoms = reg.Counter("monitor_anomalies_total", "Messages scored above the anomaly threshold.")
	m.warningsC = reg.Counter("monitor_warnings_total", "Warning signatures emitted (§5.1 clustering rule).")
	m.evicted = reg.Counter("monitor_evicted_hosts_total", "Per-host states evicted to honor MaxHosts.")
	m.swaps = reg.Counter("monitor_model_swaps_total", "Successful SwapModel hot reloads.")
	m.activeHosts = reg.Gauge("monitor_active_hosts", "Per-host states currently held.")
	m.ckptSaves = reg.Counter("monitor_checkpoint_saves_total", "Successful Checkpoint snapshots written.")
	if cfg.Metrics != nil {
		m.ckptSeconds = reg.Histogram("monitor_checkpoint_seconds",
			"Checkpoint snapshot+encode latency.", obs.DurationBuckets())
		m.handleSeconds = reg.Histogram("monitor_handle_seconds",
			"End-to-end HandleMessage latency (template match + LSTM step + clustering).",
			obs.DurationBuckets())
		m.learnSeconds = reg.Histogram("monitor_sigtree_learn_seconds",
			"Signature-tree Learn (template match/grow) latency.",
			obs.DurationBuckets())
		m.scoreHist = reg.Histogram("monitor_score",
			"Anomaly scores (negative log-likelihood) of scored messages.",
			obs.LinearBuckets(0.5, 0.5, 20))
	}
	return m
}

// HandleMessage ingests one parsed syslog message.
func (m *Monitor) HandleMessage(msg logfmt.Message) {
	start := m.handleSeconds.Start()
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.handleSeconds.ObserveDuration(start)
	m.messages.Inc()
	t0 := m.learnSeconds.Start()
	tpl := m.tree.Learn(msg.Text)
	m.learnSeconds.ObserveDuration(t0)
	hs := m.hostFor(msg.Host)
	if hs == nil {
		return // no model for this host yet
	}
	score := hs.stream.Push(features.Event{Time: msg.Time, Template: tpl.ID})
	m.scoreHist.Observe(score)
	if m.cfg.Traces != nil {
		hs.record(obs.TraceStep{Time: msg.Time, Template: tpl.ID, LogProb: -score})
	}
	if score <= m.cfg.Threshold {
		return
	}
	m.anoms.Inc()
	size, warned := m.observeAnomaly(hs, msg.Time)
	if m.cfg.Traces != nil {
		cluster := -1
		if m.cfg.ClusterOf != nil {
			cluster = m.cfg.ClusterOf(msg.Host)
		}
		m.cfg.Traces.Add(obs.Trace{
			Time:        msg.Time,
			Host:        msg.Host,
			Cluster:     cluster,
			Model:       hs.model,
			Template:    tpl.ID,
			Score:       score,
			Threshold:   m.cfg.Threshold,
			Window:      hs.window(),
			ClusterSize: size,
			Warning:     warned,
		})
	}
}

// record appends one scored message to the host's fixed context ring.
func (hs *hostState) record(step obs.TraceStep) {
	hs.recent[hs.nSeen%len(hs.recent)] = step
	hs.nSeen++
}

// window copies the host's context ring out, oldest first.
func (hs *hostState) window() []obs.TraceStep {
	n := hs.nSeen
	if n > len(hs.recent) {
		n = len(hs.recent)
	}
	out := make([]obs.TraceStep, n)
	for i := 0; i < n; i++ {
		out[i] = hs.recent[(hs.nSeen-n+i)%len(hs.recent)]
	}
	return out
}

// hostFor returns the (possibly new) state for host, refreshing its LRU
// position and evicting the coldest host when over the cap. It returns nil
// when no detector serves the host yet.
func (m *Monitor) hostFor(host string) *hostState {
	if el, ok := m.hosts[host]; ok {
		m.lru.MoveToFront(el)
		return el.Value.(*hostState)
	}
	det := m.resolve(host)
	if det == nil {
		return nil
	}
	st := det.NewStream()
	if st == nil {
		return nil // detector not trained yet
	}
	hs := &hostState{host: host, model: det.Name(), stream: st}
	if m.cfg.Traces != nil {
		hs.recent = make([]obs.TraceStep, m.cfg.TraceWindow)
	}
	m.hosts[host] = m.lru.PushFront(hs)
	for m.lru.Len() > m.cfg.MaxHosts {
		oldest := m.lru.Back()
		old := oldest.Value.(*hostState)
		m.lru.Remove(oldest)
		delete(m.hosts, old.host)
		m.evicted.Inc()
	}
	m.activeHosts.SetInt(m.lru.Len())
	return hs
}

// observeAnomaly advances the host's cluster state, emitting a warning
// when a cluster reaches the minimum size (once per cluster). It returns
// the cluster size after this anomaly and whether this verdict emitted the
// warning.
func (m *Monitor) observeAnomaly(hs *hostState, at time.Time) (size int, warned bool) {
	cs := hs.cluster
	if cs == nil || at.Sub(cs.last) > m.cfg.ClusterWindow {
		hs.cluster = &clusterState{first: at, last: at, size: 1}
		return 1, false
	}
	cs.last = at
	cs.size++
	if cs.size >= m.cfg.MinClusterSize && !cs.reported {
		cs.reported = true
		w := detect.Warning{VPE: hs.host, Time: cs.first, Size: cs.size}
		m.warnings = append(m.warnings, w)
		m.warningsC.Inc()
		if m.onWarning != nil {
			m.onWarning(w)
		}
		return cs.size, true
	}
	return cs.size, false
}

// SwapModel atomically replaces the serving model — signature tree,
// detector resolver, and threshold — with a freshly loaded bundle, the
// runtime half of the paper's monthly retraining loop (§4.4). Per-host
// stream state is reset (the new model's recurrent state and vocabulary are
// not compatible with the old one's); warnings and counters carry over.
// threshold <= 0 keeps the current threshold.
func (m *Monitor) SwapModel(tree *sigtree.Tree, resolve func(host string) *detect.LSTMDetector, threshold float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tree = tree
	m.resolve = resolve
	if threshold > 0 {
		m.cfg.Threshold = threshold
	}
	m.hosts = make(map[string]*list.Element)
	m.lru = list.New()
	m.activeHosts.SetInt(0)
	m.swaps.Inc()
}

// SetClusterOf replaces the host→cluster mapping used for trace identity,
// typically alongside SwapModel when a reloaded bundle re-clusters the
// fleet.
func (m *Monitor) SetClusterOf(clusterOf func(host string) int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cfg.ClusterOf = clusterOf
}

// Warnings returns a copy of all warnings emitted so far.
func (m *Monitor) Warnings() []detect.Warning {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]detect.Warning, len(m.warnings))
	copy(out, m.warnings)
	return out
}

// Counters returns (messages ingested, anomalies flagged).
func (m *Monitor) Counters() (messages, anomalies uint64) {
	return m.messages.Value(), m.anoms.Value()
}

// Threshold returns the current operating threshold (which SwapModel may
// have updated since construction).
func (m *Monitor) Threshold() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cfg.Threshold
}

// Stats returns a snapshot of all monitor counters — a thin view over the
// same registry counters exported at /metrics.
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MonitorStats{
		Messages:     m.messages.Value(),
		Anomalies:    m.anoms.Value(),
		Warnings:     m.warningsC.Value(),
		EvictedHosts: m.evicted.Value(),
		ModelSwaps:   m.swaps.Value(),
		ActiveHosts:  m.lru.Len(),
	}
}
