package ingest

import (
	"container/list"
	"sync"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/features"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/sigtree"
)

// MonitorConfig configures an online Monitor.
type MonitorConfig struct {
	// Threshold is the anomaly-score threshold (negative log-likelihood);
	// pick it from an offline PRC's best-F operating point (§5.2).
	Threshold float64
	// ClusterWindow and MinClusterSize implement the §5.1 warning rule
	// (≥2 anomalies within a minute → warning signature).
	ClusterWindow  time.Duration
	MinClusterSize int
	// MaxHosts caps the number of per-host states (LSTM stream + anomaly
	// cluster) held in memory; 0 means DefaultMaxHosts. When the cap is
	// reached the least-recently-seen host is evicted, so a sender spoofing
	// hostnames can cost at most MaxHosts streams of memory, never
	// unbounded growth. An evicted host that reappears starts a cold
	// stream.
	MaxHosts int
}

// DefaultMaxHosts bounds per-host monitor state when MonitorConfig.MaxHosts
// is unset. The paper's fleet is ~2.5k vPEs; 8192 leaves generous headroom
// while keeping worst-case memory finite.
const DefaultMaxHosts = 8192

// DefaultMonitorConfig returns the paper's warning-clustering parameters
// with a placeholder threshold of 6 (≈ e^-6 next-template likelihood).
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{
		Threshold:      6,
		ClusterWindow:  detect.DefaultClusterWindow,
		MinClusterSize: detect.DefaultMinClusterSize,
		MaxHosts:       DefaultMaxHosts,
	}
}

// MonitorStats is a snapshot of the monitor's cumulative counters.
type MonitorStats struct {
	// Messages is the number of messages ingested.
	Messages uint64
	// Anomalies is the number of messages scored above the threshold.
	Anomalies uint64
	// Warnings is the number of warning signatures emitted.
	Warnings uint64
	// EvictedHosts counts least-recently-seen host states dropped to honor
	// MaxHosts.
	EvictedHosts uint64
	// ModelSwaps counts successful SwapModel calls (hot reloads).
	ModelSwaps uint64
	// ActiveHosts is the number of per-host states currently held.
	ActiveHosts int
}

// Monitor is the live counterpart of the offline pipeline: it templates
// each incoming syslog message with the signature tree, scores it against
// the trained LSTM with per-vPE streaming state, clusters anomalies, and
// emits warning signatures to a callback.
//
// HandleMessage is safe to call from one goroutine at a time (the ingest
// Server's dispatcher provides exactly that); Warnings, Stats, Checkpoint,
// and SwapModel may be called concurrently with it.
type Monitor struct {
	cfg MonitorConfig

	onWarning func(detect.Warning)

	mu       sync.Mutex
	tree     *sigtree.Tree
	resolve  func(host string) *detect.LSTMDetector
	hosts    map[string]*list.Element
	lru      *list.List // of *hostState; front = most recently seen
	warnings []detect.Warning
	messages uint64
	anoms    uint64
	evicted  uint64
	swaps    uint64
}

// hostState is everything the monitor remembers about one vPE: its scoring
// stream and its in-progress anomaly cluster. Stream and cluster live and
// die together under the LRU so eviction cannot leave half a host behind.
type hostState struct {
	host    string
	stream  *detect.LSTMStream
	cluster *clusterState // nil until the host's first anomaly
}

// clusterState tracks the in-progress anomaly cluster of one vPE.
type clusterState struct {
	first, last time.Time
	size        int
	reported    bool
}

// NewMonitor builds a monitor from a grown signature tree and a trained
// LSTM detector. onWarning (optional) fires once per warning signature.
func NewMonitor(cfg MonitorConfig, tree *sigtree.Tree, det *detect.LSTMDetector, onWarning func(detect.Warning)) *Monitor {
	return NewMonitorWithResolver(cfg, tree, func(string) *detect.LSTMDetector { return det }, onWarning)
}

// NewMonitorWithResolver builds a monitor whose detector is chosen per
// host — the multi-cluster deployment mode, where each vPE scores against
// its cluster's model (§4.3). resolve may return nil for hosts that have
// no trained model yet; their messages are counted but not scored.
func NewMonitorWithResolver(cfg MonitorConfig, tree *sigtree.Tree, resolve func(host string) *detect.LSTMDetector, onWarning func(detect.Warning)) *Monitor {
	if cfg.ClusterWindow <= 0 {
		cfg.ClusterWindow = detect.DefaultClusterWindow
	}
	if cfg.MinClusterSize <= 0 {
		cfg.MinClusterSize = detect.DefaultMinClusterSize
	}
	if cfg.MaxHosts <= 0 {
		cfg.MaxHosts = DefaultMaxHosts
	}
	return &Monitor{
		cfg:       cfg,
		tree:      tree,
		resolve:   resolve,
		onWarning: onWarning,
		hosts:     make(map[string]*list.Element),
		lru:       list.New(),
	}
}

// HandleMessage ingests one parsed syslog message.
func (m *Monitor) HandleMessage(msg logfmt.Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.messages++
	tpl := m.tree.Learn(msg.Text)
	hs := m.hostFor(msg.Host)
	if hs == nil {
		return // no model for this host yet
	}
	score := hs.stream.Push(features.Event{Time: msg.Time, Template: tpl.ID})
	if score <= m.cfg.Threshold {
		return
	}
	m.anoms++
	m.observeAnomaly(hs, msg.Time)
}

// hostFor returns the (possibly new) state for host, refreshing its LRU
// position and evicting the coldest host when over the cap. It returns nil
// when no detector serves the host yet.
func (m *Monitor) hostFor(host string) *hostState {
	if el, ok := m.hosts[host]; ok {
		m.lru.MoveToFront(el)
		return el.Value.(*hostState)
	}
	det := m.resolve(host)
	if det == nil {
		return nil
	}
	st := det.NewStream()
	if st == nil {
		return nil // detector not trained yet
	}
	hs := &hostState{host: host, stream: st}
	m.hosts[host] = m.lru.PushFront(hs)
	for m.lru.Len() > m.cfg.MaxHosts {
		oldest := m.lru.Back()
		old := oldest.Value.(*hostState)
		m.lru.Remove(oldest)
		delete(m.hosts, old.host)
		m.evicted++
	}
	return hs
}

// observeAnomaly advances the host's cluster state and emits a warning
// when a cluster reaches the minimum size (once per cluster).
func (m *Monitor) observeAnomaly(hs *hostState, at time.Time) {
	cs := hs.cluster
	if cs == nil || at.Sub(cs.last) > m.cfg.ClusterWindow {
		hs.cluster = &clusterState{first: at, last: at, size: 1}
		return
	}
	cs.last = at
	cs.size++
	if cs.size >= m.cfg.MinClusterSize && !cs.reported {
		cs.reported = true
		w := detect.Warning{VPE: hs.host, Time: cs.first, Size: cs.size}
		m.warnings = append(m.warnings, w)
		if m.onWarning != nil {
			m.onWarning(w)
		}
	}
}

// SwapModel atomically replaces the serving model — signature tree,
// detector resolver, and threshold — with a freshly loaded bundle, the
// runtime half of the paper's monthly retraining loop (§4.4). Per-host
// stream state is reset (the new model's recurrent state and vocabulary are
// not compatible with the old one's); warnings and counters carry over.
// threshold <= 0 keeps the current threshold.
func (m *Monitor) SwapModel(tree *sigtree.Tree, resolve func(host string) *detect.LSTMDetector, threshold float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tree = tree
	m.resolve = resolve
	if threshold > 0 {
		m.cfg.Threshold = threshold
	}
	m.hosts = make(map[string]*list.Element)
	m.lru = list.New()
	m.swaps++
}

// Warnings returns a copy of all warnings emitted so far.
func (m *Monitor) Warnings() []detect.Warning {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]detect.Warning, len(m.warnings))
	copy(out, m.warnings)
	return out
}

// Counters returns (messages ingested, anomalies flagged).
func (m *Monitor) Counters() (messages, anomalies uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.messages, m.anoms
}

// Stats returns a snapshot of all monitor counters.
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MonitorStats{
		Messages:     m.messages,
		Anomalies:    m.anoms,
		Warnings:     uint64(len(m.warnings)),
		EvictedHosts: m.evicted,
		ModelSwaps:   m.swaps,
		ActiveHosts:  m.lru.Len(),
	}
}
