package ingest

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/features"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/obs"
	"nfvpredict/internal/resilience"
	"nfvpredict/internal/sigtree"
)

// shard owns a disjoint subset of the fleet's hosts: their LSTM scoring
// streams, anomaly clusters, and LRU slice. Host → shard assignment is a
// stable hash of the hostname (shardFor), so one host's messages always land
// on the same shard and its recurrent state is only ever touched under that
// shard's mutex — single-writer discipline without a global lock.
//
// Everything mutable per host lives behind sh.mu. The only state shared
// across shards is the signature tree (template IDs are global; guarded by
// Monitor.treeMu), the warning history (Monitor.warnMu), and the atomic
// counters, each with its own narrow lock or none at all.
type shard struct {
	m  *Monitor
	id int

	// queue feeds the shard's worker in async mode (Enqueue/Start). It is
	// bounded: when full, Enqueue refuses the message and the caller counts
	// the drop — backpressure never blocks a network listener.
	queue chan logfmt.Message
	// depth mirrors len(queue) for scraping; nil when unmetered.
	depth *obs.Gauge

	// hb is the worker's liveness stamp, beaten once per loop turn; the
	// watchdog reads it. gen is the worker generation: the watchdog bumps
	// it when abandoning a wedged worker, and a worker whose generation no
	// longer matches self-retires at its next loop turn.
	hb  resilience.Heartbeat
	gen atomic.Uint64

	mu sync.Mutex
	// resolve/clusterOf/threshold are the swappable serving parameters.
	// SwapModel/SetClusterOf update them on every shard under lockAll, so a
	// hot reload is atomic across the fleet: no message scores against the
	// new model with the old threshold or vice versa.
	resolve   func(host string) *detect.LSTMDetector
	clusterOf func(host string) int
	threshold float64
	maxHosts  int
	hosts     map[string]*list.Element
	lru       *list.List // of *hostState; front = most recently seen

	// waveGen stamps hostState.mark during batch wave scheduling. Guarded
	// by mu (only touched inside processBatchLocked).
	waveGen uint64

	// tb is the synchronous path's tokenize scratch (handleLocked): the
	// symbol and lowercase buffers grow once and are reused per message.
	// Guarded by mu like the rest of the per-shard state; the async path
	// uses the worker-owned batchBuf scratch instead.
	tb sigtree.TokenBuf
}

// batchBuf is one worker incarnation's scratch for batched scoring. It is
// owned by the worker, not the shard: a watchdog replacement can briefly
// overlap the wedged worker it supersedes, and the queue-drain phase of
// consume runs outside the shard mutex, so shared scratch would race. All
// slices grow to the configured MaxBatch once and are reused; after
// warm-up a batch allocates only when the signature tree grows a new
// template.
type batchBuf struct {
	msgs []logfmt.Message
	// syms is one arena of prepared symbols for the whole batch; symOff
	// holds B+1 offsets into it (message i's symbols are
	// syms[symOff[i]:symOff[i+1]]). symOK marks messages whose prepare
	// succeeded on the interned path; the rest fall back to strings.
	syms   []uint32
	symOff []int
	symOK  []bool
	tb     sigtree.TokenBuf

	tpls    []int
	hss     []*hostState
	done    []bool
	lanes   []int
	streams []*detect.LSTMStream
	events  []features.Event
	scores  []float64
	sps     []spanInfo
	sb      detect.StreamBatch
}

// spanInfo is per-message span scratch threaded through the locked scoring
// path: the stage timeline segments measured upstream of the verdict.
// Every field (scoreEnd included) is filled only for sampled messages —
// the latency SLO is sample-aligned, so the 15-in-16 unsampled path pays
// no clock reads at all (the ≤5% overhead gate depends on this).
type spanInfo struct {
	queueNS   int64
	sigtreeNS int64
	batchNS   int64
	scoreNS   int64
	scoreEnd  time.Time
}

// handleLocked ingests one message. Caller holds sh.mu. sp carries the
// span stage clocks measured so far (never nil; zero when untraced).
func (sh *shard) handleLocked(msg logfmt.Message, sp *spanInfo) {
	m := sh.m
	m.messages.Inc()
	sampled := msg.Trace.Sampled
	t0 := m.learnSeconds.Start()
	var s0 time.Time
	if sampled {
		s0 = time.Now()
	}
	// m.tree is stable while sh.mu is held: SwapModel replaces it only
	// with every shard mutex locked, so the unlocked pointer read cannot
	// race, and prepare — which touches only the tree's lock-free symbol
	// table — runs outside treeMu against the same tree learn will use.
	tree := m.tree
	var tpl *sigtree.Template
	if syms, ok := tree.PrepareSyms(msg.Text, &sh.tb); ok {
		m.treeMu.Lock()
		tpl = tree.LearnSyms(syms)
		m.treeMu.Unlock()
	} else {
		// Symbol table full: legacy string path, identical semantics.
		toks := sigtree.PrepareTokens(msg.Text)
		m.treeMu.Lock()
		tpl = tree.LearnTokens(toks)
		m.treeMu.Unlock()
	}
	if sampled {
		sp.sigtreeNS = int64(time.Since(s0))
	}
	m.learnSeconds.ObserveDuration(t0)
	if m.DegradeMode() == resilience.ModeShedScoring {
		// Shed-scoring: the template was learned (the tree stays warm for
		// recovery), the faulting scoring path is bypassed.
		m.shedMessages.Inc()
		return
	}
	hs := sh.hostFor(msg.Host)
	if hs == nil {
		return // no model for this host yet
	}
	var p0 time.Time
	if sampled {
		p0 = time.Now()
	}
	score := hs.stream.Push(features.Event{Time: msg.Time, Template: tpl.ID})
	if sampled {
		sp.scoreEnd = time.Now()
		sp.scoreNS = int64(sp.scoreEnd.Sub(p0))
	}
	sh.afterScore(msg, tpl.ID, hs, score, sp)
}

// afterScore is everything downstream of a score: the score histogram, the
// trace context ring, the threshold check, anomaly clustering, the OnScored
// hook, the decision trace, the latency SLO, and the decision span. Caller
// holds sh.mu.
func (sh *shard) afterScore(msg logfmt.Message, tplID int, hs *hostState, score float64, sp *spanInfo) {
	m := sh.m
	if msg.Trace.Sampled {
		m.scoreHist.ObserveExemplar(score, obs.SpanID(msg.Trace.ID))
	} else {
		m.scoreHist.Observe(score)
	}
	if m.cfg.Traces != nil {
		hs.record(obs.TraceStep{Time: msg.Time, Template: tplID, LogProb: -score})
	}
	anomalous := score > sh.threshold
	size, warned := 0, false
	if anomalous {
		m.anoms.Inc()
		size, warned = sh.observeAnomaly(hs, msg.Time)
	}
	if m.cfg.OnScored != nil {
		m.cfg.OnScored(msg.Host, sh.clusterIndex(msg.Host),
			features.Event{Time: msg.Time, Template: tplID}, score, anomalous,
			anomalous && size >= m.cfg.MinClusterSize)
	}
	if anomalous && m.cfg.Traces != nil {
		cluster := -1
		if sh.clusterOf != nil {
			cluster = sh.clusterOf(msg.Host)
		}
		m.cfg.Traces.Add(obs.Trace{
			Time:        msg.Time,
			Host:        msg.Host,
			Cluster:     cluster,
			Model:       hs.model,
			Template:    tplID,
			Score:       score,
			Threshold:   sh.threshold,
			Window:      hs.window(),
			ClusterSize: size,
			Warning:     warned,
		})
	}
	sh.finishSpan(&msg, tplID, score, anomalous, warned, sp)
}

// finishSpan records the latency SLO event and emits the decision span for
// one traced verdict. Sampled messages get the full stage breakdown and a
// verdict stage measured from scoreEnd to now; an unsampled warning still
// emits a span (always-sample-on-warning) carrying the total only, since
// its stage clocks were never started. Caller holds sh.mu.
func (sh *shard) finishSpan(msg *logfmt.Message, tplID int, score float64, anomalous, warned bool, sp *spanInfo) {
	m := sh.m
	tr := &msg.Trace
	if tr.ID == 0 {
		return
	}
	if tr.Sampled {
		// The latency objective rides the sampling decision: 1-in-N
		// verdicts are measured, which keeps the unsampled hot path free
		// of clock reads and still feeds the burn windows thousands of
		// events per minute at serving rates.
		m.cfg.LatencySLO.Record(sp.scoreEnd.Sub(tr.Accept) <= m.cfg.LatencyBound)
	}
	if m.cfg.Tracer == nil || (!tr.Sampled && !warned) {
		return
	}
	s := obs.Span{
		TraceID:   obs.SpanID(tr.ID),
		Kind:      obs.KindDecision,
		Time:      tr.Accept,
		Host:      msg.Host,
		Template:  tplID,
		Score:     score,
		Anomalous: anomalous,
		Warning:   warned,
		Sampled:   tr.Sampled,
	}
	if tr.Sampled {
		end := time.Now()
		s.Stages = obs.StageDurations{
			DecodeNS:  tr.DecodeNS,
			QueueNS:   sp.queueNS,
			SigtreeNS: sp.sigtreeNS,
			BatchNS:   sp.batchNS,
			ScoreNS:   sp.scoreNS,
			VerdictNS: int64(end.Sub(sp.scoreEnd)),
		}
		s.TotalNS = int64(end.Sub(tr.Accept))
	} else {
		s.TotalNS = int64(time.Since(tr.Accept))
	}
	m.cfg.Tracer.Emit(s)
}

// clusterIndex maps a host to its model cluster for the OnScored hook:
// ClusterOf when set, clamped to 0 for unmapped hosts (which the resolver
// also routes to cluster 0's detector). Caller holds sh.mu.
func (sh *shard) clusterIndex(host string) int {
	if sh.clusterOf != nil {
		if ci := sh.clusterOf(host); ci >= 0 {
			return ci
		}
	}
	return 0
}

// hostFor returns the (possibly new) state for host, refreshing its LRU
// position and evicting the coldest host when over the shard's share of the
// cap. It returns nil when no detector serves the host yet. Caller holds
// sh.mu.
func (sh *shard) hostFor(host string) *hostState {
	m := sh.m
	if el, ok := sh.hosts[host]; ok {
		sh.lru.MoveToFront(el)
		hs := el.Value.(*hostState)
		hs.seq = m.seq.Add(1)
		return hs
	}
	det := sh.resolve(host)
	if det == nil {
		return nil
	}
	st := det.NewStream()
	if st == nil {
		return nil // detector not trained yet
	}
	hs := &hostState{host: host, model: det.Name(), stream: st, seq: m.seq.Add(1)}
	if m.cfg.Traces != nil {
		hs.recent = make([]obs.TraceStep, m.cfg.TraceWindow)
	}
	sh.hosts[host] = sh.lru.PushFront(hs)
	for sh.lru.Len() > sh.maxHosts {
		oldest := sh.lru.Back()
		old := oldest.Value.(*hostState)
		sh.lru.Remove(oldest)
		delete(sh.hosts, old.host)
		m.evicted.Inc()
		m.hostCount.Add(-1)
	}
	m.hostCount.Add(1)
	m.activeHosts.SetInt(int(m.hostCount.Load()))
	return hs
}

// observeAnomaly advances the host's cluster state, emitting a warning when
// a cluster reaches the minimum size (once per cluster). The warning list
// and callback are shared across shards and serialized under warnMu. Caller
// holds sh.mu.
func (sh *shard) observeAnomaly(hs *hostState, at time.Time) (size int, warned bool) {
	m := sh.m
	cs := hs.cluster
	if cs == nil || at.Sub(cs.last) > m.cfg.ClusterWindow {
		hs.cluster = &clusterState{first: at, last: at, size: 1}
		return 1, false
	}
	cs.last = at
	cs.size++
	if cs.size >= m.cfg.MinClusterSize && !cs.reported {
		cs.reported = true
		w := detect.Warning{VPE: hs.host, Time: cs.first, Size: cs.size}
		m.warnMu.Lock()
		m.warnings = append(m.warnings, w)
		m.warningsC.Inc()
		if m.onWarning != nil {
			m.onWarning(w)
		}
		m.warnMu.Unlock()
		return cs.size, true
	}
	return cs.size, false
}

// runOnce is one incarnation of the shard worker: it drains the queue into
// batches until stop (then drains what is left), the shard's generation
// moves past gen (a watchdog replacement took over), or a panic escapes —
// in which case it reports abnormal=true and the supervisor loop in
// Monitor.spawnWorker restarts it with backoff. The stop channel is
// captured at start so a Stop/Start cycle cannot race a worker onto a
// stale channel. An escaped panic here (the shard.worker/shard.score fault
// points, or a bug the per-batch recover in consume cannot see) counts
// into shardPanics: it is a scoring-path fault either way, and the
// degradation controller keys off that counter.
func (sh *shard) runOnce(stop <-chan struct{}, gen uint64) (abnormal bool) {
	defer func() {
		if r := recover(); r != nil {
			sh.m.shardPanics.Inc()
			abnormal = true
		}
	}()
	var b batchBuf // worker-owned scratch; see batchBuf
	for {
		if sh.gen.Load() != gen {
			return false // superseded by a watchdog replacement
		}
		sh.hb.Beat()
		if err := sh.m.fpWorker.Fire(); err != nil {
			return true // injected worker crash; no message was dequeued
		}
		select {
		case msg := <-sh.queue:
			sh.consume(&b, msg)
		case <-stop:
			for {
				select {
				case msg := <-sh.queue:
					sh.consume(&b, msg)
				default:
					return false
				}
			}
		}
	}
}

// consume gathers up to MaxBatch queued messages starting with first and
// scores them as one batch. A panic while scoring (a poisoned message, a
// bug in a hot-swapped model) loses that batch, is counted, and leaves the
// worker — and the other shards — running.
func (sh *shard) consume(b *batchBuf, first logfmt.Message) {
	b.msgs = append(b.msgs[:0], first)
drain:
	for len(b.msgs) < sh.m.cfg.MaxBatch {
		select {
		case msg := <-sh.queue:
			b.msgs = append(b.msgs, msg)
		default:
			break drain
		}
	}
	if sh.depth != nil {
		sh.depth.SetInt(len(sh.queue))
	}
	// The shard.score fault point fires before the lock on purpose: its
	// slow mode must wedge this worker *outside* the shard mutex, so the
	// watchdog's replacement worker can make progress instead of queueing
	// behind the stuck one. Its panic mode escapes to runOnce's recover.
	if err := sh.m.fpScore.Fire(); err != nil {
		sh.m.shardPanics.Inc() // injected scoring fault; the batch is lost
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			sh.m.shardPanics.Inc()
		}
	}()
	sh.processBatchLocked(b)
}

// processBatchLocked scores a batch of same-shard messages. Three phases:
//
//  1. Template every message — tokenization (pure) runs outside the tree
//     lock, then one treeMu section learns all tokens, so B messages cost
//     one global lock acquisition instead of B.
//  2. Resolve host states in arrival order (LRU touches and seq stamps
//     happen here, in the same order a sequential run would make them).
//  3. Wave scheduling: a host's steps are inherently sequential (the LSTM
//     recurrence), so each wave takes at most one message per host, scores
//     the wave in one PushBatch, and repeats until the batch is dry.
//     Per-lane arithmetic is bit-identical to the sequential path.
//
// Caller holds sh.mu.
//
// Span stage clocks on this path are batch-shared: the sigtree section is
// on every batch member's critical path (they all wait on it), so its full
// duration counts into each sampled message's SigtreeNS; a lane's BatchNS
// is the gap from sigtree end to its own inference wave starting, and its
// ScoreNS is that wave's PushBatch duration. All clock reads are per batch
// or per wave — never per message — and skipped entirely when no message
// in the batch is traced.
func (sh *shard) processBatchLocked(b *batchBuf) {
	m := sh.m
	msgs := b.msgs
	B := len(msgs)
	b.tpls = growInts(b.tpls, B)
	b.hss = growHosts(b.hss, B)
	b.done = growBools(b.done, B)
	b.sps = growSpans(b.sps, B)
	traced := false
	for i := range msgs {
		b.sps[i] = spanInfo{}
		if msgs[i].Trace.ID != 0 {
			traced = true
		}
	}
	var batchStart time.Time
	if traced {
		batchStart = time.Now()
		for i := range msgs {
			if tr := &msgs[i].Trace; tr.Sampled {
				// Queue wait: accept → the shard holding the batch, minus
				// the decode time already attributed upstream.
				b.sps[i].queueNS = int64(batchStart.Sub(tr.Accept)) - tr.DecodeNS
			}
		}
	}
	// Prepare the whole batch into one symbol arena outside treeMu (the
	// tree pointer is stable under sh.mu; see handleLocked), then learn
	// every message in a single treeMu section on integer compares.
	tree := m.tree
	b.syms = b.syms[:0]
	b.symOff = growInts(b.symOff, B+1)
	b.symOK = growBools(b.symOK, B)
	for i := range msgs {
		b.symOff[i] = len(b.syms)
		b.syms, b.symOK[i] = tree.AppendSyms(b.syms, msgs[i].Text, &b.tb)
	}
	b.symOff[B] = len(b.syms)
	t0 := m.learnSeconds.Start()
	m.treeMu.Lock()
	for i := range msgs {
		if b.symOK[i] {
			b.tpls[i] = tree.LearnSyms(b.syms[b.symOff[i]:b.symOff[i+1]]).ID
		} else {
			// Symbol table full: string path for this message only.
			b.tpls[i] = tree.LearnTokens(sigtree.PrepareTokens(msgs[i].Text)).ID
		}
	}
	m.treeMu.Unlock()
	m.learnSeconds.ObserveDuration(t0)
	var sigEnd time.Time
	if traced {
		sigEnd = time.Now()
		sigNS := int64(sigEnd.Sub(batchStart))
		for i := range msgs {
			if msgs[i].Trace.Sampled {
				b.sps[i].sigtreeNS = sigNS
			}
		}
	}
	m.messages.Add(uint64(B))
	if m.DegradeMode() == resilience.ModeShedScoring {
		m.shedMessages.Add(uint64(B))
		return
	}

	left := 0
	for i := range msgs {
		b.hss[i] = sh.hostFor(msgs[i].Host)
		b.done[i] = b.hss[i] == nil
		if !b.done[i] {
			left++
		}
	}
	for left > 0 {
		sh.waveGen++
		b.lanes = b.lanes[:0]
		for i := range msgs {
			if b.done[i] || b.hss[i].mark == sh.waveGen {
				continue
			}
			b.hss[i].mark = sh.waveGen
			b.lanes = append(b.lanes, i)
		}
		L := len(b.lanes)
		b.streams = growStreams(b.streams, L)
		b.events = growEvents(b.events, L)
		b.scores = growFloats(b.scores, L)
		for k, i := range b.lanes {
			b.streams[k] = b.hss[i].stream
			b.events[k] = features.Event{Time: msgs[i].Time, Template: b.tpls[i]}
		}
		var waveStart time.Time
		if traced {
			waveStart = time.Now()
		}
		detect.PushBatch(&b.sb, b.streams[:L], b.events[:L], b.scores[:L])
		if traced {
			waveEnd := time.Now()
			for _, i := range b.lanes {
				sp := &b.sps[i]
				sp.scoreEnd = waveEnd
				if msgs[i].Trace.Sampled {
					sp.batchNS = int64(waveStart.Sub(sigEnd))
					sp.scoreNS = int64(waveEnd.Sub(waveStart))
				}
			}
		}
		for k, i := range b.lanes {
			sh.afterScore(msgs[i], b.tpls[i], b.hss[i], b.scores[k], &b.sps[i])
			b.done[i] = true
		}
		left -= L
	}
}

// The grow helpers resize reusable scratch slices without reallocating once
// capacity suffices.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growHosts(s []*hostState, n int) []*hostState {
	if cap(s) < n {
		return make([]*hostState, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growStreams(s []*detect.LSTMStream, n int) []*detect.LSTMStream {
	if cap(s) < n {
		return make([]*detect.LSTMStream, n)
	}
	return s[:n]
}

func growEvents(s []features.Event, n int) []features.Event {
	if cap(s) < n {
		return make([]features.Event, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growSpans(s []spanInfo, n int) []spanInfo {
	if cap(s) < n {
		return make([]spanInfo, n)
	}
	return s[:n]
}
