// Package ingest is the runtime half of the reproduction: a syslog
// ingestion server (UDP datagrams and TCP with RFC 6587 framing) feeding
// an online anomaly monitor, so the predictive-analysis system can run
// "in parallel with existing reactive monitoring systems" (§1) against a
// live vPE fleet instead of an offline trace.
package ingest

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/obs"
	"nfvpredict/internal/resilience"
)

// ServerConfig configures the listeners.
type ServerConfig struct {
	// UDPAddr and TCPAddr are listen addresses ("127.0.0.1:5514");
	// empty disables that listener. Use port 0 for an ephemeral port.
	UDPAddr, TCPAddr string
	// Year resolves RFC 3164 timestamps (which carry no year).
	Year int
	// QueueSize bounds the parsed-message queue; when full, messages are
	// dropped and counted rather than blocking the network readers.
	QueueSize int
	// MaxLine bounds a single TCP-framed message.
	MaxLine int
	// Metrics, when set, is the registry the server reports into: the
	// Stats counters plus a dispatch-latency histogram and a queue-depth
	// gauge (the latter two only exist when a registry is attached, so an
	// uninstrumented server never reads the clock per message). When nil
	// the counters live on a private registry and Stats() still works.
	Metrics *obs.Registry

	// Sharded, when set, routes parsed messages straight from the
	// listener goroutines into the sink's per-shard queues, bypassing the
	// single dispatcher goroutine (and its queue) entirely — the scoring
	// shards become the concurrency, not a serial sink. A refused message
	// (shard queue full) is dropped and counted under
	// ingest_shard_drops_total; listeners never block on a slow scorer.
	// When Sharded is set the sink callback may be nil.
	Sharded ShardSink

	// Tracer, when set, mints a trace ID for every accepted message at the
	// accept boundary (before decode) and stamps the message's TraceCtx —
	// the start of the accept→verdict span the monitor finishes. Nil
	// disables tracing with zero per-message cost beyond one branch.
	Tracer *obs.Tracer
	// DropSLO, when set, records queue admission as an SLO event stream:
	// good on enqueue, bad on a drop (shard-queue or dispatch-queue
	// overflow) — the shard-drop-ratio objective.
	DropSLO *obs.SLO
}

// ShardSink accepts parsed messages into per-shard bounded queues without
// blocking. *ingest.Monitor implements it.
type ShardSink interface {
	// Enqueue reports false when the message's shard queue is full; the
	// caller owns the drop accounting.
	Enqueue(msg logfmt.Message) bool
}

// DefaultServerConfig returns loopback-friendly defaults.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		UDPAddr:   "127.0.0.1:0",
		TCPAddr:   "127.0.0.1:0",
		Year:      2018,
		QueueSize: 4096,
		MaxLine:   8192,
	}
}

// Stats counts server activity; all fields are cumulative.
type Stats struct {
	// Received is the number of well-formed messages accepted.
	Received uint64
	// Malformed is the number of lines that failed to parse.
	Malformed uint64
	// Dropped is the number of messages discarded on queue overflow.
	Dropped uint64
	// ShardDropped is the number of messages refused by a full shard
	// queue (sharded routing only).
	ShardDropped uint64
	// SinkPanics is the number of sink panics recovered by the dispatcher.
	// The message that triggered a panic is lost; the server keeps serving.
	SinkPanics uint64
}

// Server receives syslog over UDP and TCP and hands parsed messages to a
// sink callback from a single dispatcher goroutine (so sinks need no
// internal locking for per-call state).
type Server struct {
	cfg  ServerConfig
	sink func(logfmt.Message)

	udp     *net.UDPConn
	tcp     net.Listener
	queue   chan logfmt.Message
	wg      sync.WaitGroup
	closed  chan struct{}
	closeMu sync.Once

	// connMu guards conns, the set of accepted TCP connections. Close
	// closes them all so serveTCP goroutines blocked mid-frame unblock
	// instead of deadlocking the shutdown.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// Counters live on the registry (cfg.Metrics, or a private one) so
	// Stats(), logs, and /metrics report the same numbers with no double
	// bookkeeping.
	received        *obs.Counter
	malformed       *obs.Counter
	dropped         *obs.Counter
	shardDrops      *obs.Counter
	sinkPanics      *obs.Counter
	dispatchSeconds *obs.Histogram
	queueDepth      *obs.Gauge
}

// NewServer creates a server delivering parsed messages to sink, or — when
// cfg.Sharded is set — straight into per-shard queues.
func NewServer(cfg ServerConfig, sink func(logfmt.Message)) (*Server, error) {
	if sink == nil && cfg.Sharded == nil {
		return nil, errors.New("ingest: sink must not be nil")
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 4096
	}
	if cfg.MaxLine <= 0 {
		cfg.MaxLine = 8192
	}
	if cfg.UDPAddr == "" && cfg.TCPAddr == "" {
		return nil, errors.New("ingest: at least one of UDPAddr/TCPAddr required")
	}
	s := &Server{
		cfg:    cfg,
		sink:   sink,
		queue:  make(chan logfmt.Message, cfg.QueueSize),
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.received = reg.Counter("ingest_received_total", "Well-formed syslog messages accepted.")
	s.malformed = reg.Counter("ingest_malformed_total", "Lines or frames that failed to parse.")
	s.dropped = reg.Counter("ingest_dropped_total", "Messages discarded on queue overflow.")
	s.shardDrops = reg.Counter("ingest_shard_drops_total", "Messages refused by a full shard queue (sharded routing).")
	s.sinkPanics = reg.Counter("ingest_sink_panics_total", "Sink panics recovered by the dispatcher.")
	if cfg.Metrics != nil {
		s.dispatchSeconds = reg.Histogram("ingest_dispatch_seconds",
			"Sink latency per dispatched message.", obs.DurationBuckets())
		s.queueDepth = reg.Gauge("ingest_queue_depth", "Parsed messages waiting in the dispatch queue.")
	}
	if cfg.UDPAddr != "" {
		addr, err := net.ResolveUDPAddr("udp", cfg.UDPAddr)
		if err != nil {
			return nil, fmt.Errorf("ingest: resolving UDP addr: %w", err)
		}
		conn, err := net.ListenUDP("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("ingest: listening UDP: %w", err)
		}
		// Syslog senders burst; a generous kernel buffer absorbs spikes
		// the dispatcher hasn't drained yet. Best-effort: some platforms
		// clamp the size.
		_ = conn.SetReadBuffer(4 << 20)
		s.udp = conn
	}
	if cfg.TCPAddr != "" {
		ln, err := net.Listen("tcp", cfg.TCPAddr)
		if err != nil {
			if s.udp != nil {
				s.udp.Close()
			}
			return nil, fmt.Errorf("ingest: listening TCP: %w", err)
		}
		s.tcp = ln
	}
	return s, nil
}

// UDPAddr returns the bound UDP address, or nil when UDP is disabled.
func (s *Server) UDPAddr() net.Addr {
	if s.udp == nil {
		return nil
	}
	return s.udp.LocalAddr()
}

// TCPAddr returns the bound TCP address, or nil when TCP is disabled.
func (s *Server) TCPAddr() net.Addr {
	if s.tcp == nil {
		return nil
	}
	return s.tcp.Addr()
}

// Stats returns a snapshot of the server counters — a thin view over the
// same registry counters exported at /metrics.
func (s *Server) Stats() Stats {
	return Stats{
		Received:     s.received.Value(),
		Malformed:    s.malformed.Value(),
		Dropped:      s.dropped.Value(),
		ShardDropped: s.shardDrops.Value(),
		SinkPanics:   s.sinkPanics.Value(),
	}
}

// Start launches the reader and dispatcher goroutines; it returns
// immediately. Cancel ctx or call Close to stop.
func (s *Server) Start(ctx context.Context) {
	if s.cfg.Sharded == nil {
		s.wg.Add(1)
		go s.dispatch()
	}
	if s.udp != nil {
		s.wg.Add(1)
		go s.readUDP()
	}
	if s.tcp != nil {
		s.wg.Add(1)
		go s.acceptTCP()
	}
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.Close()
			case <-s.closed:
			}
		}()
	}
}

// Close stops the listeners, interrupts accepted connections (so a handler
// blocked mid-frame cannot stall shutdown), and waits for in-flight work to
// drain.
func (s *Server) Close() {
	s.closeMu.Do(func() {
		close(s.closed)
		if s.udp != nil {
			s.udp.Close()
		}
		if s.tcp != nil {
			s.tcp.Close()
		}
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
	})
	s.wg.Wait()
}

// trackConn registers an accepted connection for shutdown; it reports false
// when the server is already closing (the caller should drop the conn).
func (s *Server) trackConn(c net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	s.conns[c] = struct{}{}
	return true
}

// untrackConn removes a finished connection.
func (s *Server) untrackConn(c net.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

// enqueue parses and queues one raw line.
func (s *Server) enqueue(line []byte) {
	trimmed := bytes.TrimRight(line, "\r\n")
	if len(trimmed) == 0 {
		return
	}
	// Accept is stamped before decode so span totals cover parse time;
	// the clock is only read when a tracer is attached.
	var accept time.Time
	if s.cfg.Tracer != nil {
		accept = time.Now()
	}
	// Byte-slice parse: the frame is copied into the Message exactly once
	// (host onward); PRI and timestamp are decoded in place. The read
	// buffer is free for reuse as soon as this returns.
	msg, err := logfmt.Parse3164Bytes(trimmed, s.cfg.Year)
	if err != nil {
		s.malformed.Add(1)
		return
	}
	if s.cfg.Tracer != nil {
		id, sampled := s.cfg.Tracer.Accept()
		msg.Trace = logfmt.TraceCtx{
			ID:       uint64(id),
			Sampled:  sampled,
			Accept:   accept,
			DecodeNS: int64(time.Since(accept)),
		}
	}
	if s.cfg.Sharded != nil {
		// Sharded routing: hand the message to its shard queue right here
		// on the listener goroutine — no dispatcher hop, no global queue.
		if s.cfg.Sharded.Enqueue(msg) {
			s.received.Add(1)
			s.cfg.DropSLO.Record(true)
		} else {
			s.shardDrops.Add(1)
			s.cfg.DropSLO.Record(false)
		}
		return
	}
	select {
	case s.queue <- msg:
		s.received.Add(1)
		s.cfg.DropSLO.Record(true)
	default:
		s.dropped.Add(1)
		s.cfg.DropSLO.Record(false)
	}
}

// dispatch delivers queued messages to the sink until Close, then drains.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		select {
		case m := <-s.queue:
			s.deliver(m)
		case <-s.closed:
			for {
				select {
				case m := <-s.queue:
					s.deliver(m)
				default:
					return
				}
			}
		}
	}
}

// deliver hands one message to the sink, isolating the server from sink
// panics: a panicking sink loses that one message and bumps SinkPanics, but
// ingestion keeps running — the monitor must degrade, not die (§1 runs the
// system continuously beside reactive monitoring).
func (s *Server) deliver(m logfmt.Message) {
	s.queueDepth.SetInt(len(s.queue))
	start := s.dispatchSeconds.Start()
	defer func() {
		if r := recover(); r != nil {
			s.sinkPanics.Add(1)
		}
		s.dispatchSeconds.ObserveDuration(start)
	}()
	s.sink(m)
}

// listenerBackoff builds the retry pacing for one listener goroutine:
// exponential 1ms→1s with +50% jitter, clock-seeded so a fleet of monitors
// that all saw the same transient error (e.g. EMFILE on accept) de-
// synchronizes instead of retrying in lockstep. Callers Reset after a
// success.
func listenerBackoff() *resilience.Backoff {
	return resilience.NewBackoff(time.Millisecond, time.Second, 0.5, 0)
}

// backoffSleep sleeps the backoff's next delay, interrupted by Close.
func (s *Server) backoffSleep(b *resilience.Backoff) {
	t := time.NewTimer(b.Next())
	defer t.Stop()
	select {
	case <-t.C:
	case <-s.closed:
	}
}

// readUDP treats each datagram as one syslog message.
func (s *Server) readUDP() {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	retry := listenerBackoff()
	for {
		n, _, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.backoffSleep(retry)
			continue
		}
		retry.Reset()
		s.enqueue(buf[:n])
	}
}

// acceptTCP serves each connection with RFC 6587 framing.
func (s *Server) acceptTCP() {
	defer s.wg.Done()
	retry := listenerBackoff()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.backoffSleep(retry)
			continue
		}
		retry.Reset()
		if !s.trackConn(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrackConn(conn)
			defer conn.Close()
			s.serveTCP(conn)
		}()
	}
}

// serveTCP reads RFC 6587 frames: octet counting ("123 <pri>...") when the
// stream starts with a digit, non-transparent LF framing otherwise.
//
// Malformed octet counts do not kill the connection: an oversize but
// parseable length skips exactly that many bytes (frame-level resync), and
// an unparseable or zero/leading-zero length falls back to discarding
// through the next LF. Either way the frame is counted as malformed and the
// peer keeps its connection — one bad sender line must not silently drop a
// vPE from monitoring.
func (s *Server) serveTCP(conn net.Conn) {
	r := bufio.NewReaderSize(conn, s.cfg.MaxLine)
	for {
		select {
		case <-s.closed:
			return
		default:
		}
		b, err := r.Peek(1)
		if err != nil {
			return
		}
		if b[0] >= '0' && b[0] <= '9' {
			// Octet counting: "<len> <msg>".
			n, ok, err := readOctetLen(r)
			if err != nil {
				return
			}
			if !ok || n <= 0 {
				// Unusable length (leading zero, overlong, junk, or "0").
				// Resync on the LF boundary like a non-transparent frame.
				s.malformed.Add(1)
				if _, err := r.ReadBytes('\n'); err != nil {
					return
				}
				continue
			}
			if n > s.cfg.MaxLine {
				// Parseable but oversize: skip the advertised frame so the
				// stream stays in sync, then keep serving the peer.
				s.malformed.Add(1)
				if _, err := io.CopyN(io.Discard, r, int64(n)); err != nil {
					return
				}
				continue
			}
			frame := make([]byte, n)
			if _, err := io.ReadFull(r, frame); err != nil {
				return
			}
			s.enqueue(frame)
			continue
		}
		// LF framing.
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			s.enqueue(line)
		}
		if err != nil {
			return
		}
	}
}

// maxOctetDigits bounds the octet-count field; RFC 6587 lengths fit well
// within it, and the bound keeps a malicious all-digit stream from growing
// an unbounded length token.
const maxOctetDigits = 10

// readOctetLen consumes an octet-count prefix "<digits> " from r. It
// returns ok=false (with the bad digits consumed) when the field is
// syntactically unusable: leading zero, more than maxOctetDigits digits,
// or a non-space after the digits. err is an I/O error from the stream.
// The value accumulates in place as digits stream by — no scratch slice,
// no strconv round-trip through a string — and maxOctetDigits keeps the
// accumulator far from int64 overflow.
func readOctetLen(r *bufio.Reader) (n int, ok bool, err error) {
	v, nd := 0, 0
	leadZero := false
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, false, err
		}
		if b == ' ' {
			break
		}
		if b < '0' || b > '9' || nd >= maxOctetDigits {
			return 0, false, nil
		}
		if nd == 0 && b == '0' {
			leadZero = true
		}
		v = v*10 + int(b-'0')
		nd++
	}
	if nd == 0 || (leadZero && nd > 1) {
		return 0, false, nil
	}
	return v, true, nil
}
