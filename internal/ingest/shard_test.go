package ingest

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/sigtree"
)

// TestShardedSyncEquivalence is the sharding contract for the synchronous
// path: the same message sequence fed through HandleMessage by a single
// caller must yield identical warnings — and byte-identical checkpoints —
// at 1 and at 8 shards. Sharding redistributes state; it must not change a
// single scored bit.
func TestShardedSyncEquivalence(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	msgs := monitorTraffic([]string{"vpe01", "vpe02", "vpe03", "vpe04", "vpe05"}, 40)

	run := func(shards int) (*Monitor, []byte) {
		mcfg := DefaultMonitorConfig()
		mcfg.Threshold = 4
		mcfg.Shards = shards
		mon := NewMonitorWithResolver(mcfg, cloneTree(t, tree), func(string) *detect.LSTMDetector { return det }, nil)
		mon.now = func() time.Time { return time.Date(2018, 4, 1, 0, 0, 0, 0, time.UTC) }
		for _, m := range msgs {
			mon.HandleMessage(m)
		}
		var buf bytes.Buffer
		if err := mon.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		return mon, buf.Bytes()
	}

	mon1, ckpt1 := run(1)
	mon8, ckpt8 := run(8)

	w1, w8 := mon1.Warnings(), mon8.Warnings()
	if len(w1) == 0 {
		t.Fatal("traffic produced no warnings; test has no teeth")
	}
	if len(w1) != len(w8) {
		t.Fatalf("warning counts differ: %d vs %d", len(w1), len(w8))
	}
	for i := range w1 {
		if w1[i] != w8[i] {
			t.Fatalf("warning %d differs: %+v vs %+v", i, w1[i], w8[i])
		}
	}
	s1, s8 := mon1.Stats(), mon8.Stats()
	if s1.Messages != s8.Messages || s1.Anomalies != s8.Anomalies || s1.ActiveHosts != s8.ActiveHosts {
		t.Fatalf("stats diverge: %+v vs %+v", s1, s8)
	}
	if !bytes.Equal(ckpt1, ckpt8) {
		t.Fatalf("checkpoints not byte-identical across shard counts (%d vs %d bytes)", len(ckpt1), len(ckpt8))
	}
}

// TestShardedKillAndRestore runs the kill-and-restore scenario on a sharded
// monitor, restoring onto a different shard count than the checkpoint was
// written at: the host hash is stable, so state redistributes cleanly and
// warnings and counters match an uninterrupted run exactly.
func TestShardedKillAndRestore(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	resolve := func(string) *detect.LSTMDetector { return det }
	msgs := monitorTraffic([]string{"vpe01", "vpe02", "vpe03"}, 60)
	cut := len(msgs) / 2

	mcfg := DefaultMonitorConfig()
	mcfg.Threshold = 4
	mcfg.Shards = 8

	ref := NewMonitorWithResolver(mcfg, cloneTree(t, tree), resolve, nil)
	for _, m := range msgs {
		ref.HandleMessage(m)
	}

	mon := NewMonitorWithResolver(mcfg, cloneTree(t, tree), resolve, nil)
	for _, m := range msgs[:cut] {
		mon.HandleMessage(m)
	}
	var ckpt bytes.Buffer
	if err := mon.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	rcfg := mcfg
	rcfg.Shards = 3 // restore onto a different shard count
	restored, err := RestoreMonitor(bytes.NewReader(ckpt.Bytes()), rcfg, resolve, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs[cut:] {
		restored.HandleMessage(m)
	}

	a, b := ref.Stats(), restored.Stats()
	if a.Messages != b.Messages || a.Anomalies != b.Anomalies || a.Warnings != b.Warnings {
		t.Fatalf("restored sharded run diverged: ref=%+v restored=%+v", a, b)
	}
	wa, wb := ref.Warnings(), restored.Warnings()
	if len(wa) == 0 {
		t.Fatal("no warnings produced")
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("warning %d differs: %+v vs %+v", i, wa[i], wb[i])
		}
	}
}

// TestAsyncShardedCompleteness drives the async path (Enqueue + workers)
// and checks nothing is lost or double-counted: every accepted message is
// scored, and per-host scoring matches the synchronous reference (same
// anomaly and warning totals, same warning set).
func TestAsyncShardedCompleteness(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	resolve := func(string) *detect.LSTMDetector { return det }
	hosts := []string{"vpe01", "vpe02", "vpe03", "vpe04"}
	msgs := monitorTraffic(hosts, 50)

	mcfg := DefaultMonitorConfig()
	mcfg.Threshold = 4
	sync := NewMonitorWithResolver(mcfg, cloneTree(t, tree), resolve, nil)
	for _, m := range msgs {
		sync.HandleMessage(m)
	}

	acfg := mcfg
	acfg.Shards = 4
	acfg.MaxBatch = 8
	async := NewMonitorWithResolver(acfg, cloneTree(t, tree), resolve, nil)
	async.Start()
	for _, m := range msgs {
		for !async.Enqueue(m) {
			time.Sleep(time.Millisecond) // full queue: wait for the worker
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && async.Stats().Messages < uint64(len(msgs)) {
		time.Sleep(2 * time.Millisecond)
	}
	async.Stop()

	sa, aa := sync.Stats(), async.Stats()
	if aa.Messages != uint64(len(msgs)) {
		t.Fatalf("async lost messages: %d of %d", aa.Messages, len(msgs))
	}
	if sa.Anomalies != aa.Anomalies || sa.Warnings != aa.Warnings {
		t.Fatalf("async scoring diverged: sync=%+v async=%+v", sa, aa)
	}
	// Warning order across hosts depends on worker interleaving; the set
	// must match exactly.
	ws, wa := sync.Warnings(), async.Warnings()
	if len(ws) == 0 || len(ws) != len(wa) {
		t.Fatalf("warning sets differ in size: %d vs %d", len(ws), len(wa))
	}
	seen := make(map[detect.Warning]int)
	for _, w := range ws {
		seen[w]++
	}
	for _, w := range wa {
		if seen[w] == 0 {
			t.Fatalf("async produced warning the sync run did not: %+v", w)
		}
		seen[w]--
	}
}

// TestShardLifecycleConcurrency exercises every public entry point
// concurrently with running workers — the -race gate for the shard
// lifecycle (Start/Stop idempotence, Enqueue during Stop, checkpoint and
// hot-swap under load).
func TestShardLifecycleConcurrency(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	resolve := func(string) *detect.LSTMDetector { return det }
	msgs := monitorTraffic([]string{"vpe01", "vpe02", "vpe03", "vpe04"}, 20)
	tree2 := cloneTree(t, tree)

	mcfg := DefaultMonitorConfig()
	mcfg.Threshold = 4
	mcfg.Shards = 4
	mcfg.ShardQueue = 64
	mon := NewMonitorWithResolver(mcfg, cloneTree(t, tree), resolve, nil)
	mon.Start()
	mon.Start() // idempotent while running

	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for _, m := range msgs {
			mon.Enqueue(m) // drops under pressure are fine here
		}
	}()
	go func() {
		defer wg.Done()
		for _, m := range msgs {
			mon.HandleMessage(m)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			mon.Stats()
			mon.Warnings()
			mon.Threshold()
			mon.hasHost("vpe01")
		}
	}()
	go func() {
		defer wg.Done()
		var buf bytes.Buffer
		if err := mon.Checkpoint(&buf); err != nil {
			t.Error(err)
		}
		mon.SwapModel(tree2, resolve, 5)
		mon.SetClusterOf(func(string) int { return 1 })
	}()
	wg.Wait()

	mon.Stop()
	mon.Stop() // idempotent when stopped
	if got := mon.Threshold(); got != 5 {
		t.Fatalf("threshold after swap: %v", got)
	}
	// The monitor restarts cleanly after a full stop.
	mon.Start()
	if !mon.Enqueue(msgs[0]) {
		t.Fatal("enqueue after restart refused")
	}
	before := mon.Stats().Messages
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && mon.Stats().Messages == before {
		time.Sleep(2 * time.Millisecond)
	}
	mon.Stop()
	if mon.Stats().Messages == before {
		t.Fatal("restarted workers not draining")
	}
}

// TestServerShardRouting wires the server's direct-to-shard path end to
// end: UDP datagrams for several hosts land on their shard queues from the
// listener goroutine and are scored by the workers, with no dispatcher in
// between.
func TestServerShardRouting(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	mcfg := DefaultMonitorConfig()
	mcfg.Shards = 4
	mon := NewMonitorWithResolver(mcfg, tree, func(string) *detect.LSTMDetector { return det }, nil)
	mon.Start()
	defer mon.Stop()

	cfg := DefaultServerConfig()
	cfg.Sharded = mon
	srv, err := NewServer(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(context.Background())
	defer srv.Close()

	conn, err := net.Dial("udp", srv.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const total = 40
	at := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < total; i++ {
		m := logfmt.Message{
			Time: at, Host: fmt.Sprintf("vpe%02d", i%8), Tag: "rpd",
			Text: "bgp keepalive exchanged with peer 10.0.0.2 hold 90",
		}
		if _, err := fmt.Fprint(conn, m.Format3164()); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Second)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && mon.Stats().Messages < total {
		time.Sleep(2 * time.Millisecond)
	}
	if got := mon.Stats().Messages; got != total {
		t.Fatalf("scored %d of %d routed messages", got, total)
	}
	st := srv.Stats()
	if st.Received != total || st.ShardDropped != 0 || st.Dropped != 0 {
		t.Fatalf("server stats: %+v", st)
	}
	if mon.Stats().ActiveHosts != 8 {
		t.Fatalf("active hosts: %+v", mon.Stats())
	}
}

// TestServerShardDropAccounting fills a stopped monitor's one-slot shard
// queue and checks the server counts every refused message under the
// dedicated shard-drop counter rather than blocking or losing it silently.
func TestServerShardDropAccounting(t *testing.T) {
	tree, det := trainMonitorDetector(t)
	mcfg := DefaultMonitorConfig()
	mcfg.Shards = 1
	mcfg.ShardQueue = 4
	mon := NewMonitorWithResolver(mcfg, tree, func(string) *detect.LSTMDetector { return det }, nil)
	// Workers intentionally not started: the queue can only fill.

	cfg := DefaultServerConfig()
	cfg.Sharded = mon
	srv, err := NewServer(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for i := 0; i < 10; i++ {
		srv.enqueue([]byte(sampleLine(i)))
	}
	st := srv.Stats()
	if st.Received != 4 || st.ShardDropped != 6 {
		t.Fatalf("drop accounting: %+v (want received=4 shard_dropped=6)", st)
	}
}

// benchmarkMonitorParallel measures concurrent HandleMessage throughput at
// a given shard count: GOMAXPROCS goroutines hammer a 64-host fleet. This
// is the acceptance pair for the sharding tentpole — compare ns/op between
// MonitorParallelShards1 (the old single-mutex behavior) and
// MonitorParallelShards8.
func benchmarkMonitorParallel(b *testing.B, shards int) {
	tree, det := trainMonitorDetector(b)
	mcfg := DefaultMonitorConfig()
	mcfg.Shards = shards
	mon := NewMonitorWithResolver(mcfg, tree, func(string) *detect.LSTMDetector { return det }, nil)
	const hosts = 64
	base := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	msgs := make([]logfmt.Message, hosts)
	for i := range msgs {
		msgs[i] = logfmt.Message{
			Time: base, Host: fmt.Sprintf("vpe%03d", i), Tag: "rpd",
			Text: "bgp keepalive exchanged with peer 10.0.0.1 hold 90",
		}
	}
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			m := msgs[i%hosts]
			m.Time = m.Time.Add(time.Duration(i) * time.Second)
			mon.HandleMessage(m)
		}
	})
}

// BenchmarkShardSerialSection measures the only per-message work the
// sharded path still serializes globally: the signature-tree learn under
// treeMu (tokenization runs outside the lock and is measured separately).
// Its share of BenchmarkMonitorHandleMessage bounds the parallel speedup
// (Amdahl); the rest of the pipeline — LSTM step, clustering, LRU — is
// per-shard and scales with cores.
func BenchmarkShardSerialSection(b *testing.B) {
	tree, _ := trainMonitorDetector(b)
	text := "bgp keepalive exchanged with peer 10.0.0.1 hold 90"
	toks := sigtree.PrepareTokens(text)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.LearnTokens(toks)
	}
}

// BenchmarkShardTokenize is the tokenization half, which shards run
// outside the tree lock.
func BenchmarkShardTokenize(b *testing.B) {
	text := "bgp keepalive exchanged with peer 10.0.0.1 hold 90"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sigtree.PrepareTokens(text)
	}
}

func BenchmarkMonitorParallelShards1(b *testing.B) { benchmarkMonitorParallel(b, 1) }
func BenchmarkMonitorParallelShards4(b *testing.B) { benchmarkMonitorParallel(b, 4) }
func BenchmarkMonitorParallelShards8(b *testing.B) { benchmarkMonitorParallel(b, 8) }
