// Package bundle packages a trained deployment — the grown signature tree
// plus one trained LSTM detector per cluster and the cluster assignment —
// into a single file, closing the offline→online loop: cmd/nfvtrain
// produces a bundle from a recorded trace and cmd/nfvmonitor serves it
// against live syslog.
package bundle

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/sigtree"
)

// Bundle is a deployable trained system.
type Bundle struct {
	// Tree is the signature tree grown during training.
	Tree *sigtree.Tree
	// Detectors holds one trained LSTM detector per cluster.
	Detectors []*detect.LSTMDetector
	// Assign maps each vPE hostname to its cluster index. Hosts not in
	// the map (new routers) fall back to cluster 0.
	Assign map[string]int
	// Threshold is the recommended operating threshold (best-F from the
	// training evaluation).
	Threshold float64
}

// DetectorFor returns the detector responsible for host.
func (b *Bundle) DetectorFor(host string) *detect.LSTMDetector {
	if len(b.Detectors) == 0 {
		return nil
	}
	ci, ok := b.Assign[host]
	if !ok || ci < 0 || ci >= len(b.Detectors) {
		ci = 0
	}
	return b.Detectors[ci]
}

// wire is the gob form: nested gob blobs keep the component formats
// independent of the bundle layout.
type wire struct {
	Tree      []byte
	Detectors [][]byte
	Assign    map[string]int
	Threshold float64
}

// Save serializes the bundle to w.
func (b *Bundle) Save(w io.Writer) error {
	if b.Tree == nil || len(b.Detectors) == 0 {
		return fmt.Errorf("bundle: tree and at least one detector required")
	}
	var wf wire
	var buf bytes.Buffer
	if err := b.Tree.Save(&buf); err != nil {
		return fmt.Errorf("bundle: saving tree: %w", err)
	}
	wf.Tree = append([]byte(nil), buf.Bytes()...)
	for i, d := range b.Detectors {
		buf.Reset()
		if err := d.Save(&buf); err != nil {
			return fmt.Errorf("bundle: saving detector %d: %w", i, err)
		}
		wf.Detectors = append(wf.Detectors, append([]byte(nil), buf.Bytes()...))
	}
	wf.Assign = b.Assign
	wf.Threshold = b.Threshold
	if err := gob.NewEncoder(w).Encode(&wf); err != nil {
		return fmt.Errorf("bundle: encoding: %w", err)
	}
	return nil
}

// Load reconstructs a bundle saved with Save.
func Load(r io.Reader) (*Bundle, error) {
	var wf wire
	if err := gob.NewDecoder(r).Decode(&wf); err != nil {
		return nil, fmt.Errorf("bundle: decoding: %w", err)
	}
	tree, err := sigtree.Load(bytes.NewReader(wf.Tree))
	if err != nil {
		return nil, fmt.Errorf("bundle: loading tree: %w", err)
	}
	b := &Bundle{Tree: tree, Assign: wf.Assign, Threshold: wf.Threshold}
	for i, raw := range wf.Detectors {
		d, err := detect.LoadLSTMDetector(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("bundle: loading detector %d: %w", i, err)
		}
		b.Detectors = append(b.Detectors, d)
	}
	if len(b.Detectors) == 0 {
		return nil, fmt.Errorf("bundle: no detectors")
	}
	return b, nil
}
