// Package bundle packages a trained deployment — the grown signature tree
// plus one trained LSTM detector per cluster and the cluster assignment —
// into a single file, closing the offline→online loop: cmd/nfvtrain
// produces a bundle from a recorded trace and cmd/nfvmonitor serves it
// against live syslog.
//
// The on-disk format is framed for operational safety: a magic header and
// format version, a gob payload, and a CRC32 trailer. A truncated or
// bit-flipped file is rejected with a descriptive error before any of its
// contents are trusted, and Load additionally cross-validates the payload
// (cluster indices in range, sane threshold) so a structurally corrupt
// bundle cannot silently mis-route hosts at serve time. SaveFile writes
// atomically (temp file + fsync + rename), so a crash mid-save never
// leaves a half-written bundle where the monitor expects a good one.
package bundle

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"

	"nfvpredict/internal/atomicfile"
	"nfvpredict/internal/detect"
	"nfvpredict/internal/faultinject"
	"nfvpredict/internal/sigtree"
	"nfvpredict/internal/wireframe"
)

// Format framing constants. Version is bumped whenever the payload layout
// changes incompatibly; Load rejects versions it does not understand.
const (
	// Magic identifies a framed bundle file.
	Magic = "NFVB"
	// Version is the current format version.
	Version uint32 = 2
)

// Bundle is a deployable trained system.
type Bundle struct {
	// Tree is the signature tree grown during training.
	Tree *sigtree.Tree
	// Detectors holds one trained LSTM detector per cluster.
	Detectors []*detect.LSTMDetector
	// Assign maps each vPE hostname to its cluster index. Hosts not in
	// the map (new routers) fall back to cluster 0.
	Assign map[string]int
	// Threshold is the recommended operating threshold (best-F from the
	// training evaluation).
	Threshold float64
	// TrainHist, when present, holds one template-frequency histogram per
	// cluster (template ID → count over that cluster's training data) —
	// the training-time distribution the online lifecycle compares live
	// traffic against for drift detection. Optional: bundles written
	// before this field (or by trainers that skip it) load with a nil
	// slice, and the lifecycle falls back to capturing a live baseline.
	// Gob tolerates the field in both directions, so the format version
	// is unchanged.
	TrainHist []map[int]float64
}

// DetectorFor returns the detector responsible for host.
func (b *Bundle) DetectorFor(host string) *detect.LSTMDetector {
	if len(b.Detectors) == 0 {
		return nil
	}
	ci, ok := b.Assign[host]
	if !ok || ci < 0 || ci >= len(b.Detectors) {
		ci = 0
	}
	return b.Detectors[ci]
}

// Validate cross-checks the bundle's components: the pieces a monitor is
// about to trust must be mutually consistent. It is called by both Save
// (don't ship garbage) and Load (don't serve garbage).
func (b *Bundle) Validate() error {
	if b.Tree == nil {
		return fmt.Errorf("bundle: missing signature tree")
	}
	if len(b.Detectors) == 0 {
		return fmt.Errorf("bundle: no detectors")
	}
	for i, d := range b.Detectors {
		if d == nil {
			return fmt.Errorf("bundle: detector %d is nil", i)
		}
	}
	for host, ci := range b.Assign {
		if ci < 0 || ci >= len(b.Detectors) {
			return fmt.Errorf("bundle: host %q assigned to cluster %d, valid range [0,%d)",
				host, ci, len(b.Detectors))
		}
	}
	if b.Threshold < 0 || math.IsNaN(b.Threshold) {
		return fmt.Errorf("bundle: invalid threshold %v (must be >= 0)", b.Threshold)
	}
	if len(b.TrainHist) != 0 && len(b.TrainHist) != len(b.Detectors) {
		return fmt.Errorf("bundle: %d training histograms for %d detectors (must match or be absent)",
			len(b.TrainHist), len(b.Detectors))
	}
	return nil
}

// wire is the gob form: nested gob blobs keep the component formats
// independent of the bundle layout.
type wire struct {
	Tree      []byte
	Detectors [][]byte
	Assign    map[string]int
	Threshold float64
	TrainHist []map[int]float64
}

// Save serializes the bundle to w in the framed format: magic, version,
// payload length, gob payload, CRC32 (IEEE) of the payload.
func (b *Bundle) Save(w io.Writer) error {
	if err := b.Validate(); err != nil {
		return err
	}
	var wf wire
	var buf bytes.Buffer
	if err := b.Tree.Save(&buf); err != nil {
		return fmt.Errorf("bundle: saving tree: %w", err)
	}
	wf.Tree = append([]byte(nil), buf.Bytes()...)
	for i, d := range b.Detectors {
		buf.Reset()
		if err := d.Save(&buf); err != nil {
			return fmt.Errorf("bundle: saving detector %d: %w", i, err)
		}
		wf.Detectors = append(wf.Detectors, append([]byte(nil), buf.Bytes()...))
	}
	wf.Assign = b.Assign
	wf.Threshold = b.Threshold
	wf.TrainHist = b.TrainHist

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&wf); err != nil {
		return fmt.Errorf("bundle: encoding: %w", err)
	}
	if err := wireframe.Encode(w, Magic, Version, payload.Bytes()); err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	return nil
}

// Load reconstructs and validates a bundle saved with Save. Unframed input
// (a pre-versioning bundle, which starts with a gob header rather than the
// magic) is accepted for compatibility; framed input with a bad magic,
// unknown version, short payload, or checksum mismatch is rejected with an
// error naming the failure.
func Load(r io.Reader) (*Bundle, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("bundle: reading: %w", err)
	}
	payload, framed, err := wireframe.Decode(data, Magic, Version)
	if err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	if !framed {
		// Pre-versioning bundles are raw gob with no frame.
		payload = data
	}
	var wf wire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wf); err != nil {
		return nil, fmt.Errorf("bundle: decoding: %w", err)
	}
	tree, err := sigtree.Load(bytes.NewReader(wf.Tree))
	if err != nil {
		return nil, fmt.Errorf("bundle: loading tree: %w", err)
	}
	b := &Bundle{Tree: tree, Assign: wf.Assign, Threshold: wf.Threshold, TrainHist: wf.TrainHist}
	for i, raw := range wf.Detectors {
		d, err := detect.LoadLSTMDetector(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("bundle: loading detector %d: %w", i, err)
		}
		b.Detectors = append(b.Detectors, d)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// SaveFile writes the bundle to path atomically: a crash at any point
// leaves either the previous file or the complete new one.
func (b *Bundle) SaveFile(path string) error {
	return atomicfile.Write(path, b.Save)
}

// LoadFile loads and validates the bundle at path. The bundle.load fault
// point (process-wide registry) can inject load failures to drill the
// hot-reload rejection path: a failed load must leave the serving model
// untouched and flip readiness, never crash the monitor.
func LoadFile(path string) (*Bundle, error) {
	if err := faultinject.Default.Point("bundle.load",
		"Before reading a model bundle: error/slow failures drill the hot-reload rejection path.").Fire(); err != nil {
		return nil, fmt.Errorf("bundle: load %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
