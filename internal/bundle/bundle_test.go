package bundle

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/features"
	"nfvpredict/internal/sigtree"
)

func trainedBundle(t *testing.T) *Bundle {
	t.Helper()
	tree := sigtree.New()
	texts := []string{
		"bgp keepalive exchanged with peer 10.0.0.1 hold 90",
		"interface statistics poll completed for ge-0/0/1 in 12 ms",
		"fpc 0 cpu utilization 20 percent memory 40 percent",
	}
	base := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	var stream []features.Event
	for i := 0; i < 600; i++ {
		tpl := tree.Learn(texts[i%len(texts)])
		stream = append(stream, features.Event{Time: base.Add(time.Duration(i) * time.Minute), Template: tpl.ID})
	}
	cfg := detect.DefaultLSTMConfig()
	cfg.Hidden = []int{12}
	cfg.MaxVocab = 12
	cfg.Epochs = 2
	cfg.OverSampleRounds = 0
	det := detect.NewLSTMDetector(cfg)
	if err := det.Train([][]features.Event{stream}); err != nil {
		t.Fatal(err)
	}
	return &Bundle{
		Tree:      tree,
		Detectors: []*detect.LSTMDetector{det},
		Assign:    map[string]int{"vpe00": 0},
		Threshold: 5.5,
	}
}

func TestBundleRoundTrip(t *testing.T) {
	b := trainedBundle(t)
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Threshold != 5.5 {
		t.Fatalf("threshold: %v", loaded.Threshold)
	}
	if loaded.Tree.Len() != b.Tree.Len() {
		t.Fatalf("tree size: %d vs %d", loaded.Tree.Len(), b.Tree.Len())
	}
	// Loaded detector scores identically.
	base := time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)
	stream := []features.Event{
		{Time: base, Template: 0}, {Time: base.Add(time.Minute), Template: 1},
		{Time: base.Add(2 * time.Minute), Template: 2}, {Time: base.Add(3 * time.Minute), Template: 0},
	}
	a := b.Detectors[0].Score("v", stream)
	c := loaded.Detectors[0].Score("v", stream)
	for i := range a {
		if math.Abs(a[i].Score-c[i].Score) > 1e-12 {
			t.Fatalf("score %d: %v vs %v", i, a[i].Score, c[i].Score)
		}
	}
}

func TestDetectorFor(t *testing.T) {
	b := trainedBundle(t)
	if b.DetectorFor("vpe00") != b.Detectors[0] {
		t.Fatal("assigned host")
	}
	if b.DetectorFor("unknown-host") != b.Detectors[0] {
		t.Fatal("unknown host should fall back to cluster 0")
	}
	empty := &Bundle{}
	if empty.DetectorFor("x") != nil {
		t.Fatal("empty bundle should return nil")
	}
}

func TestSaveValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Bundle{}).Save(&buf); err == nil {
		t.Fatal("empty bundle should not save")
	}
}

func TestLoadCorrupt(t *testing.T) {
	if _, err := Load(strings.NewReader("garbage")); err == nil {
		t.Fatal("corrupt input should fail")
	}
}
