package bundle

import (
	"bytes"
	"encoding/gob"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/faultinject"
	"nfvpredict/internal/features"
	"nfvpredict/internal/sigtree"
)

func trainedBundle(t *testing.T) *Bundle {
	t.Helper()
	tree := sigtree.New()
	texts := []string{
		"bgp keepalive exchanged with peer 10.0.0.1 hold 90",
		"interface statistics poll completed for ge-0/0/1 in 12 ms",
		"fpc 0 cpu utilization 20 percent memory 40 percent",
	}
	base := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	var stream []features.Event
	for i := 0; i < 600; i++ {
		tpl := tree.Learn(texts[i%len(texts)])
		stream = append(stream, features.Event{Time: base.Add(time.Duration(i) * time.Minute), Template: tpl.ID})
	}
	cfg := detect.DefaultLSTMConfig()
	cfg.Hidden = []int{12}
	cfg.MaxVocab = 12
	cfg.Epochs = 2
	cfg.OverSampleRounds = 0
	det := detect.NewLSTMDetector(cfg)
	if err := det.Train([][]features.Event{stream}); err != nil {
		t.Fatal(err)
	}
	return &Bundle{
		Tree:      tree,
		Detectors: []*detect.LSTMDetector{det},
		Assign:    map[string]int{"vpe00": 0},
		Threshold: 5.5,
	}
}

func TestBundleRoundTrip(t *testing.T) {
	b := trainedBundle(t)
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Threshold != 5.5 {
		t.Fatalf("threshold: %v", loaded.Threshold)
	}
	if loaded.Tree.Len() != b.Tree.Len() {
		t.Fatalf("tree size: %d vs %d", loaded.Tree.Len(), b.Tree.Len())
	}
	// Loaded detector scores identically.
	base := time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)
	stream := []features.Event{
		{Time: base, Template: 0}, {Time: base.Add(time.Minute), Template: 1},
		{Time: base.Add(2 * time.Minute), Template: 2}, {Time: base.Add(3 * time.Minute), Template: 0},
	}
	a := b.Detectors[0].Score("v", stream)
	c := loaded.Detectors[0].Score("v", stream)
	for i := range a {
		if math.Abs(a[i].Score-c[i].Score) > 1e-12 {
			t.Fatalf("score %d: %v vs %v", i, a[i].Score, c[i].Score)
		}
	}
}

func TestDetectorFor(t *testing.T) {
	b := trainedBundle(t)
	if b.DetectorFor("vpe00") != b.Detectors[0] {
		t.Fatal("assigned host")
	}
	if b.DetectorFor("unknown-host") != b.Detectors[0] {
		t.Fatal("unknown host should fall back to cluster 0")
	}
	empty := &Bundle{}
	if empty.DetectorFor("x") != nil {
		t.Fatal("empty bundle should return nil")
	}
}

func TestSaveValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Bundle{}).Save(&buf); err == nil {
		t.Fatal("empty bundle should not save")
	}
}

func TestLoadCorrupt(t *testing.T) {
	if _, err := Load(strings.NewReader("garbage")); err == nil {
		t.Fatal("corrupt input should fail")
	}
}

func TestLoadTruncated(t *testing.T) {
	b := trainedBundle(t)
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut at several depths: inside the header, inside the payload, and
	// inside the checksum trailer. All must be rejected with an error.
	for _, cut := range []int{3, 10, len(full) / 2, len(full) - 2} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes not detected", cut, len(full))
		}
	}
}

func TestLoadBitFlip(t *testing.T) {
	b := trainedBundle(t)
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	headerLen := len(Magic) + 4 + 8
	// Flip single bits at several payload offsets; the CRC must catch each.
	for _, byteOff := range []int{headerLen, headerLen + 100, len(full) - 8} {
		corrupt := append([]byte(nil), full...)
		faultinject.FlipBit(corrupt, byteOff*8+3)
		_, err := Load(bytes.NewReader(corrupt))
		if err == nil {
			t.Fatalf("bit flip at byte %d not detected", byteOff)
		}
		if !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("bit flip at byte %d: want checksum error, got: %v", byteOff, err)
		}
	}
}

func TestLoadBadVersion(t *testing.T) {
	b := trainedBundle(t)
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	full[4] = 99 // version field
	if _, err := Load(bytes.NewReader(full)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("unknown version must be named in the error, got: %v", err)
	}
}

func TestValidateRejectsBadAssign(t *testing.T) {
	b := trainedBundle(t)
	b.Assign["vpe-evil"] = 7 // only 1 detector
	var buf bytes.Buffer
	if err := b.Save(&buf); err == nil {
		t.Fatal("out-of-range cluster index must not save")
	}
	delete(b.Assign, "vpe-evil")
	b.Assign["vpe-neg"] = -1
	if err := b.Save(&buf); err == nil {
		t.Fatal("negative cluster index must not save")
	}
}

func TestValidateRejectsNegativeThreshold(t *testing.T) {
	b := trainedBundle(t)
	b.Threshold = -3
	var buf bytes.Buffer
	if err := b.Save(&buf); err == nil || !strings.Contains(err.Error(), "threshold") {
		t.Fatalf("negative threshold must be rejected by name, got: %v", err)
	}
}

// TestLoadRejectsBadAssignInPayload corrupts the payload the way a buggy
// trainer would (bad index, valid checksum): Load must reject it at load
// time rather than serving cluster-0 fallbacks silently.
func TestLoadRejectsBadAssignInPayload(t *testing.T) {
	b := trainedBundle(t)
	b.Assign["vpe-evil"] = 7
	// Bypass Save's validation by writing the legacy (unframed) payload.
	var wf wire
	var tb bytes.Buffer
	if err := b.Tree.Save(&tb); err != nil {
		t.Fatal(err)
	}
	wf.Tree = tb.Bytes()
	var db bytes.Buffer
	if err := b.Detectors[0].Save(&db); err != nil {
		t.Fatal(err)
	}
	wf.Detectors = [][]byte{db.Bytes()}
	wf.Assign = b.Assign
	wf.Threshold = b.Threshold
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&wf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil || !strings.Contains(err.Error(), "cluster") {
		t.Fatalf("bad assign index in payload must fail load, got: %v", err)
	}
}

// TestLoadLegacyUnframed ensures pre-versioning bundles (raw gob, no magic
// header) still load.
func TestLoadLegacyUnframed(t *testing.T) {
	b := trainedBundle(t)
	var wf wire
	var tb bytes.Buffer
	if err := b.Tree.Save(&tb); err != nil {
		t.Fatal(err)
	}
	wf.Tree = tb.Bytes()
	var db bytes.Buffer
	if err := b.Detectors[0].Save(&db); err != nil {
		t.Fatal(err)
	}
	wf.Detectors = [][]byte{db.Bytes()}
	wf.Assign = b.Assign
	wf.Threshold = b.Threshold
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&wf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Threshold != b.Threshold || loaded.Tree.Len() != b.Tree.Len() {
		t.Fatalf("legacy load mismatch: %+v", loaded)
	}
}

func TestSaveFileAtomicAndLoadFile(t *testing.T) {
	b := trainedBundle(t)
	path := filepath.Join(t.TempDir(), "model.bundle")
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Threshold != b.Threshold {
		t.Fatalf("threshold: %v", loaded.Threshold)
	}
	// Corrupt the file on disk; LoadFile must reject it and a re-save must
	// restore it.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.FlipBit(raw, (len(raw)/2)*8)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("corrupt on-disk bundle must not load")
	}
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestTrainHistRoundTrip: the optional per-cluster training histograms
// survive Save/Load, their absence is accepted (backward compatibility —
// pre-TrainHist bundles decode to a nil slice), and a count mismatched
// against the detectors is rejected.
func TestTrainHistRoundTrip(t *testing.T) {
	b := trainedBundle(t)
	b.TrainHist = []map[int]float64{{0: 200, 1: 200, 2: 199}}
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.TrainHist) != 1 || loaded.TrainHist[0][0] != 200 || loaded.TrainHist[0][2] != 199 {
		t.Fatalf("training histogram did not round-trip: %+v", loaded.TrainHist)
	}

	// Absent histograms stay absent.
	b2 := trainedBundle(t)
	buf.Reset()
	if err := b2.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if loaded, err = Load(&buf); err != nil {
		t.Fatal(err)
	}
	if loaded.TrainHist != nil {
		t.Fatalf("absent TrainHist loaded as %+v", loaded.TrainHist)
	}

	// Mismatched count is a validation error on both Save and Load.
	b3 := trainedBundle(t)
	b3.TrainHist = []map[int]float64{{0: 1}, {1: 1}}
	buf.Reset()
	if err := b3.Save(&buf); err == nil || !strings.Contains(err.Error(), "histograms") {
		t.Fatalf("mismatched TrainHist saved: %v", err)
	}
}
