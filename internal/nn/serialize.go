package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// modelSnapshot is the gob wire form of a SequenceModel.
type modelSnapshot struct {
	Cfg     SeqModelConfig
	Weights map[string][]float64
}

// Save serializes the model's configuration and weights to w using gob.
func (m *SequenceModel) Save(w io.Writer) error {
	snap := modelSnapshot{Cfg: m.cfg, Weights: make(map[string][]float64)}
	for _, p := range m.Params() {
		buf := make([]float64, len(p.W.Data))
		copy(buf, p.W.Data)
		snap.Weights[p.Name] = buf
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("nn: encoding model: %w", err)
	}
	return nil
}

// LoadSequenceModel reconstructs a SequenceModel saved with Save.
func LoadSequenceModel(r io.Reader) (*SequenceModel, error) {
	var snap modelSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("nn: decoding model: %w", err)
	}
	m := NewSequenceModel(snap.Cfg)
	for _, p := range m.Params() {
		data, ok := snap.Weights[p.Name]
		if !ok {
			return nil, fmt.Errorf("nn: snapshot missing parameter %q", p.Name)
		}
		if len(data) != len(p.W.Data) {
			return nil, fmt.Errorf("nn: parameter %q has %d weights, want %d", p.Name, len(data), len(p.W.Data))
		}
		copy(p.W.Data, data)
	}
	return m, nil
}
