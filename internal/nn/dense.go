package nn

import (
	"math/rand"

	"nfvpredict/internal/mat"
)

// Dense is a fully connected layer y = f(W·x + b).
type Dense struct {
	// In and Out are the input and output widths.
	In, Out int
	// Act is the element-wise activation applied to the affine output.
	Act Activation
	// Wp and Bp are the weight ([Out×In]) and bias ([1×Out]) parameters.
	Wp, Bp *Param
}

// DenseCache holds the per-call state Backward needs plus reusable
// scratch. Keeping it external to the layer makes Dense safe to reuse
// across timesteps of a sequence; reusing one cache across calls makes the
// forward/backward pair allocation-free. A cache is owned by one goroutine
// at a time.
type DenseCache struct {
	x mat.Vector // input
	y mat.Vector // activated output
	// Backward scratch, lazily sized.
	dz, dx mat.Vector
}

// NewDense creates a Dense layer with Xavier-initialized weights.
// name prefixes the parameter names (e.g. "out" → "out.W", "out.b").
func NewDense(name string, in, out int, act Activation, rng *rand.Rand) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		Act: act,
		Wp:  newParam(name+".W", out, in),
		Bp:  newParam(name+".b", 1, out),
	}
	if act == ReLU {
		d.Wp.W.HeInit(rng)
	} else {
		d.Wp.W.XavierInit(rng)
	}
	return d
}

// Params returns the layer's trainable parameters.
func (d *Dense) Params() []*Param { return []*Param{d.Wp, d.Bp} }

// Forward computes the layer output for x and a cache for Backward.
func (d *Dense) Forward(x mat.Vector) (mat.Vector, *DenseCache) {
	c := &DenseCache{}
	return d.ForwardInto(c, x), c
}

// ForwardInto is Forward writing into c's reusable buffers: the returned
// output aliases the cache and stays valid until its next ForwardInto.
func (d *Dense) ForwardInto(c *DenseCache, x mat.Vector) mat.Vector {
	c.x = x
	c.y = ensureVec(c.y, d.Out)
	copy(c.y, d.Bp.W.Row(0))
	d.Wp.W.MulVecAdd(c.y, x)
	if d.Act != Identity {
		for i := range c.y {
			c.y[i] = d.Act.Apply(c.y[i])
		}
	}
	return c.y
}

// Infer computes the layer output without building a cache; use it on
// pure-inference paths (anomaly scoring) where no backward pass follows.
func (d *Dense) Infer(x mat.Vector) mat.Vector {
	return d.InferInto(mat.NewVector(d.Out), x)
}

// InferInto is Infer writing into dst (length d.Out), avoiding the
// per-call allocation on streaming-scoring paths.
func (d *Dense) InferInto(dst, x mat.Vector) mat.Vector {
	copy(dst, d.Bp.W.Row(0))
	d.Wp.W.MulVecAdd(dst, x)
	if d.Act != Identity {
		for i := range dst {
			dst[i] = d.Act.Apply(dst[i])
		}
	}
	return dst
}

// InferBatchInto is InferInto over a batch: dst[b] = f(W·x[b] + b) for every
// row b of x, evaluated as one MulMatAdd GEMM so the weight matrix streams
// through the cache once per batch instead of once per lane. dst is
// [B×Out], x is [B×In]. Each lane's arithmetic is bit-identical to
// InferInto on the same input.
func (d *Dense) InferBatchInto(dst, x *mat.Matrix) *mat.Matrix {
	bias := d.Bp.W.Row(0)
	for b := 0; b < dst.Rows; b++ {
		copy(dst.Row(b), bias)
	}
	d.Wp.W.MulMatAdd(dst, x)
	if d.Act != Identity {
		for i := range dst.Data {
			dst.Data[i] = d.Act.Apply(dst.Data[i])
		}
	}
	return dst
}

// Backward consumes dy = ∂loss/∂y, accumulates ∂loss/∂W and ∂loss/∂b into
// the layer's parameter gradients, and returns dx = ∂loss/∂x. The returned
// vector aliases the cache's scratch and stays valid until its next
// Backward.
func (d *Dense) Backward(c *DenseCache, dy mat.Vector) mat.Vector {
	// dz = dy ⊙ f'(y)
	c.dz = ensureVec(c.dz, d.Out)
	dz := c.dz
	if d.Act == Identity {
		copy(dz, dy)
	} else {
		for i := range dy {
			dz[i] = dy[i] * d.Act.DerivFromOutput(c.y[i])
		}
	}
	d.Wp.Grad.AddOuter(1, dz, c.x)
	d.Bp.Grad.Row(0).AddInPlace(dz)
	c.dx = ensureVec(c.dx, d.In)
	c.dx.Zero()
	d.Wp.W.TransMulVecAdd(c.dx, dz)
	return c.dx
}

// clone returns a deep copy of the layer (weights copied, gradients zeroed).
func (d *Dense) clone() *Dense {
	out := &Dense{
		In:  d.In,
		Out: d.Out,
		Act: d.Act,
		Wp:  newParam(d.Wp.Name, d.Wp.W.Rows, d.Wp.W.Cols),
		Bp:  newParam(d.Bp.Name, d.Bp.W.Rows, d.Bp.W.Cols),
	}
	out.Wp.W.CopyFrom(d.Wp.W)
	out.Bp.W.CopyFrom(d.Bp.W)
	out.Wp.Frozen = d.Wp.Frozen
	out.Bp.Frozen = d.Bp.Frozen
	return out
}

// shadow returns a layer sharing d's weight matrices but owning fresh
// gradient accumulators, for data-parallel gradient workers.
func (d *Dense) shadow() *Dense {
	return &Dense{
		In:  d.In,
		Out: d.Out,
		Act: d.Act,
		Wp:  d.Wp.shadow(),
		Bp:  d.Bp.shadow(),
	}
}
