package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nfvpredict/internal/mat"
)

func TestActivationValues(t *testing.T) {
	if Sigmoid.Apply(0) != 0.5 {
		t.Fatalf("sigmoid(0)=%v", Sigmoid.Apply(0))
	}
	if Tanh.Apply(0) != 0 || ReLU.Apply(-3) != 0 || ReLU.Apply(3) != 3 || Identity.Apply(7) != 7 {
		t.Fatal("activation basics broken")
	}
	// Overflow safety.
	if v := Sigmoid.Apply(-1e9); v != 0 || math.IsNaN(v) {
		t.Fatalf("sigmoid(-1e9)=%v", v)
	}
	if v := Sigmoid.Apply(1e9); v != 1 || math.IsNaN(v) {
		t.Fatalf("sigmoid(1e9)=%v", v)
	}
}

func TestActivationDerivFromOutput(t *testing.T) {
	// f'(x) from y must match numeric derivative.
	for _, act := range []Activation{Sigmoid, Tanh, ReLU, Identity} {
		for _, x := range []float64{-2, -0.5, 0.3, 1.7} {
			y := act.Apply(x)
			const eps = 1e-6
			numeric := (act.Apply(x+eps) - act.Apply(x-eps)) / (2 * eps)
			if math.Abs(act.DerivFromOutput(y)-numeric) > 1e-5 {
				t.Errorf("%v deriv at %v: got %v numeric %v", act, x, act.DerivFromOutput(y), numeric)
			}
		}
	}
}

func TestActivationString(t *testing.T) {
	names := map[Activation]string{Identity: "identity", Sigmoid: "sigmoid", Tanh: "tanh", ReLU: "relu", Activation(99): "unknown"}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("String(%d)=%q want %q", a, a.String(), want)
		}
	}
}

func TestSoftmaxCrossEntropyGradientSums(t *testing.T) {
	// The softmax-CE gradient p - onehot must sum to zero.
	f := func(raw []float64, target uint8) bool {
		if len(raw) < 2 || len(raw) > 32 {
			return true
		}
		v := make(mat.Vector, len(raw))
		for i, x := range raw {
			v[i] = math.Mod(x, 30)
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
		}
		tgt := int(target) % len(v)
		loss, grad := SoftmaxCrossEntropy(v, tgt)
		if loss < 0 || math.IsNaN(loss) {
			return false
		}
		return math.Abs(grad.Sum()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over n classes: loss = ln(n).
	v := mat.Vector{0, 0, 0, 0}
	loss, _ := SoftmaxCrossEntropy(v, 2)
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("loss=%v want ln4", loss)
	}
}

func TestMSEKnown(t *testing.T) {
	loss, dy := MSE(mat.Vector{1, 2}, mat.Vector{0, 0})
	// ½·mean(1,4) = 1.25
	if math.Abs(loss-1.25) > 1e-12 {
		t.Fatalf("MSE=%v", loss)
	}
	if dy[0] != 0.5 || dy[1] != 1 {
		t.Fatalf("dMSE=%v", dy)
	}
}

func TestLogSoftmaxNormalized(t *testing.T) {
	lp := LogSoftmax(mat.Vector{1, 2, 3})
	var sum float64
	for _, x := range lp {
		sum += math.Exp(x)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("exp(logsoftmax) sums to %v", sum)
	}
}

func TestGradClipping(t *testing.T) {
	p := newParam("p", 1, 3)
	p.Grad.Data[0], p.Grad.Data[1], p.Grad.Data[2] = 3, 0, 4 // norm 5
	pre := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v", pre)
	}
	if math.Abs(GlobalGradNorm([]*Param{p})-1) > 1e-12 {
		t.Fatalf("post-clip norm %v", GlobalGradNorm([]*Param{p}))
	}
	// Clipping disabled.
	p.Grad.Data[0] = 3
	p.Grad.Data[2] = 4
	ClipGradNorm([]*Param{p}, 0)
	if math.Abs(GlobalGradNorm([]*Param{p})-5) > 1e-9 {
		t.Fatal("clip=0 must not rescale")
	}
}

// A 1-D quadratic: optimizers must descend.
func TestOptimizersDescend(t *testing.T) {
	for name, mk := range map[string]func() Optimizer{
		"sgd":          func() Optimizer { return NewSGD(0.1, 0, 0) },
		"sgd+momentum": func() Optimizer { return NewSGD(0.05, 0.9, 0) },
		"adam":         func() Optimizer { return NewAdam(0.1, 0) },
	} {
		p := newParam("x", 1, 1)
		p.W.Data[0] = 5
		opt := mk()
		for i := 0; i < 200; i++ {
			p.Grad.Data[0] = 2 * p.W.Data[0] // d/dx x²
			opt.Step([]*Param{p})
		}
		if math.Abs(p.W.Data[0]) > 0.05 {
			t.Errorf("%s failed to minimize x²: x=%v", name, p.W.Data[0])
		}
	}
}

func TestOptimizerSkipsFrozen(t *testing.T) {
	for name, opt := range map[string]Optimizer{
		"sgd":  NewSGD(0.5, 0.9, 0),
		"adam": NewAdam(0.5, 0),
	} {
		p := newParam("x", 1, 1)
		p.W.Data[0] = 1
		p.Frozen = true
		p.Grad.Data[0] = 10
		opt.Step([]*Param{p})
		if p.W.Data[0] != 1 {
			t.Errorf("%s updated a frozen param", name)
		}
		if p.Grad.Data[0] != 0 {
			t.Errorf("%s left a frozen param's gradient dirty", name)
		}
	}
}

func TestAdamReset(t *testing.T) {
	a := NewAdam(0.1, 0)
	p := newParam("x", 1, 1)
	p.Grad.Data[0] = 1
	a.Step([]*Param{p})
	if a.t != 1 || len(a.m) != 1 {
		t.Fatal("Adam state not recorded")
	}
	a.Reset()
	if a.t != 0 || len(a.m) != 0 || len(a.v) != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// The headline capability: an LSTM language model must learn a repeating
// template sequence and then assign low probability to a corrupted one.
func TestSequenceModelLearnsCycle(t *testing.T) {
	cfg := SeqModelConfig{Vocab: 5, Hidden: []int{16, 16}, UseGap: false, Seed: 1}
	m := NewSequenceModel(cfg)
	opt := NewAdam(0.01, 5)
	// Cycle 0 1 2 3 0 1 2 3 ...
	seq := make([]Token, 41)
	for i := range seq {
		seq[i] = Token{ID: i % 4}
	}
	var loss float64
	for epoch := 0; epoch < 150; epoch++ {
		loss = m.TrainWindow(seq)
		opt.Step(m.Params())
	}
	if loss > 0.1 {
		t.Fatalf("failed to learn cycle: final loss %v", loss)
	}
	// Prediction check: after 0 1 2 the next must be 3.
	st := m.NewStreamState()
	var lp mat.Vector
	for _, tok := range []Token{{ID: 0}, {ID: 1}, {ID: 2}} {
		lp = m.StepLogProbs(tok, st)
	}
	if lp.ArgMax() != 3 {
		t.Fatalf("predicted %d after 0,1,2, want 3 (logprobs %v)", lp.ArgMax(), lp)
	}
	// Anomalous continuation scores much worse than the normal one.
	normal := m.SequenceLogLoss(seq[:9])
	anomalous := m.SequenceLogLoss([]Token{{ID: 0}, {ID: 1}, {ID: 4}, {ID: 4}, {ID: 2}})
	if anomalous < normal+1 {
		t.Fatalf("anomalous loss %v not clearly above normal %v", anomalous, normal)
	}
}

func TestSequenceModelGapSensitivity(t *testing.T) {
	// With UseGap, the encoded input must differ by gap.
	m := NewSequenceModel(SeqModelConfig{Vocab: 4, Hidden: []int{4}, UseGap: true, Seed: 2})
	a := m.encode(Token{ID: 1, Gap: 0})
	b := m.encode(Token{ID: 1, Gap: 1000})
	if a[4] == b[4] {
		t.Fatal("gap feature not encoded")
	}
	if a[1] != 1 || b[1] != 1 {
		t.Fatal("one-hot broken")
	}
}

func TestSequenceModelUnknownTemplateMapsToLastClass(t *testing.T) {
	m := NewSequenceModel(SeqModelConfig{Vocab: 4, Hidden: []int{4}, Seed: 2})
	x := m.encode(Token{ID: 99})
	if x[3] != 1 {
		t.Fatalf("unknown ID should map to last class: %v", x)
	}
	x = m.encode(Token{ID: -5})
	if x[3] != 1 {
		t.Fatalf("negative ID should map to last class: %v", x)
	}
}

func TestTrainWindowShortInputs(t *testing.T) {
	m := NewSequenceModel(SeqModelConfig{Vocab: 4, Hidden: []int{4}, Seed: 2})
	if m.TrainWindow(nil) != 0 || m.TrainWindow([]Token{{ID: 1}}) != 0 {
		t.Fatal("short windows must be no-ops")
	}
	if m.SequenceLogLoss([]Token{{ID: 1}}) != 0 {
		t.Fatal("short window loss must be 0")
	}
}

func TestSequenceModelCloneIndependence(t *testing.T) {
	m := NewSequenceModel(SeqModelConfig{Vocab: 5, Hidden: []int{6, 4}, Seed: 9})
	c := m.Clone()
	// Same outputs initially.
	window := []Token{{ID: 0}, {ID: 1}, {ID: 2}}
	if math.Abs(m.SequenceLogLoss(window)-c.SequenceLogLoss(window)) > 1e-12 {
		t.Fatal("clone differs from original")
	}
	// Training the clone must not affect the teacher.
	before := m.SequenceLogLoss(window)
	opt := NewAdam(0.05, 0)
	for i := 0; i < 10; i++ {
		c.TrainWindow(window)
		opt.Step(c.Params())
	}
	if math.Abs(m.SequenceLogLoss(window)-before) > 1e-12 {
		t.Fatal("training the student modified the teacher")
	}
	if math.Abs(c.SequenceLogLoss(window)-before) < 1e-9 {
		t.Fatal("student did not train")
	}
}

func TestFreezeBottomLayers(t *testing.T) {
	m := NewSequenceModel(SeqModelConfig{Vocab: 5, Hidden: []int{6, 4}, Seed: 9})
	m.FreezeBottomLayers(1)
	frozen := map[string]bool{}
	for _, p := range m.Params() {
		frozen[p.Name] = p.Frozen
	}
	if !frozen["lstm0.Wx"] || frozen["lstm1.Wx"] || frozen["out.W"] {
		t.Fatalf("unexpected freeze pattern: %v", frozen)
	}
	// Frozen weights must not move under training.
	w0 := m.lstms[0].Wxp.W.Clone()
	opt := NewAdam(0.05, 0)
	window := []Token{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	for i := 0; i < 5; i++ {
		m.TrainWindow(window)
		opt.Step(m.Params())
	}
	if !m.lstms[0].Wxp.W.Equal(w0, 0) {
		t.Fatal("frozen LSTM layer moved")
	}
	m.Unfreeze()
	for _, p := range m.Params() {
		if p.Frozen {
			t.Fatal("Unfreeze failed")
		}
	}
}

func TestSequenceModelSerializationRoundTrip(t *testing.T) {
	m := NewSequenceModel(SeqModelConfig{Vocab: 7, Hidden: []int{8, 5}, UseGap: true, Seed: 21})
	// Train a little so weights are non-trivial.
	opt := NewAdam(0.01, 5)
	window := []Token{{ID: 0, Gap: 1}, {ID: 1, Gap: 2}, {ID: 2, Gap: 3}, {ID: 3, Gap: 4}, {ID: 4, Gap: 5}}
	for i := 0; i < 20; i++ {
		m.TrainWindow(window)
		opt.Step(m.Params())
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSequenceModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Config().Vocab != 7 || !loaded.Config().UseGap {
		t.Fatalf("config not preserved: %+v", loaded.Config())
	}
	if math.Abs(m.SequenceLogLoss(window)-loaded.SequenceLogLoss(window)) > 1e-12 {
		t.Fatal("loaded model disagrees with original")
	}
}

func TestLoadSequenceModelCorrupt(t *testing.T) {
	if _, err := LoadSequenceModel(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("expected error on corrupt input")
	}
}

func TestNewSequenceModelPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewSequenceModel(SeqModelConfig{Vocab: 0, Hidden: []int{4}}) },
		func() { NewSequenceModel(SeqModelConfig{Vocab: 4}) },
		func() { NewMLP(MLPConfig{Sizes: []int{3}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAutoencoderLearnsReconstruction(t *testing.T) {
	// Two-cluster data in 8-D; after training, reconstruction error on
	// in-distribution data must be far below error on novel data.
	rng := rand.New(rand.NewSource(4))
	dim := 8
	proto := [][]float64{
		{1, 1, 0, 0, 1, 0, 0, 0},
		{0, 0, 1, 1, 0, 0, 1, 1},
	}
	sample := func() mat.Vector {
		p := proto[rng.Intn(2)]
		x := make(mat.Vector, dim)
		for i := range x {
			x[i] = p[i] + rng.NormFloat64()*0.05
		}
		return x
	}
	ae := NewAutoencoder(dim, []int{6, 3}, 8)
	opt := NewAdam(0.005, 5)
	for i := 0; i < 3000; i++ {
		ae.TrainReconstruction(sample())
		opt.Step(ae.Params())
	}
	var normalErr float64
	for i := 0; i < 50; i++ {
		normalErr += ae.ReconstructionError(sample())
	}
	normalErr /= 50
	novel := make(mat.Vector, dim)
	for i := range novel {
		novel[i] = 1 - proto[0][i] // far from both prototypes
	}
	novelErr := ae.ReconstructionError(novel)
	if novelErr < normalErr*5 {
		t.Fatalf("autoencoder separation too weak: normal %v novel %v", normalErr, novelErr)
	}
}

func TestAutoencoderShape(t *testing.T) {
	ae := NewAutoencoder(10, []int{6, 2}, 1)
	if ae.InputSize() != 10 || ae.OutputSize() != 10 {
		t.Fatalf("autoencoder must be symmetric, got %d->%d", ae.InputSize(), ae.OutputSize())
	}
	if ae.NumLayers() != 4 { // 10-6-2-6-10
		t.Fatalf("expected 4 dense layers, got %d", ae.NumLayers())
	}
	c := ae.Clone()
	x := make(mat.Vector, 10)
	x[3] = 1
	if math.Abs(ae.ReconstructionError(x)-c.ReconstructionError(x)) > 1e-12 {
		t.Fatal("clone mismatch")
	}
}

func TestMLPFreeze(t *testing.T) {
	ae := NewAutoencoder(6, []int{4}, 1)
	ae.FreezeBottomLayers(1)
	w := ae.layers[0].Wp.W.Clone()
	opt := NewSGD(0.1, 0, 0)
	x := make(mat.Vector, 6)
	x[0] = 1
	for i := 0; i < 5; i++ {
		ae.TrainReconstruction(x)
		opt.Step(ae.Params())
	}
	if !ae.layers[0].Wp.W.Equal(w, 0) {
		t.Fatal("frozen MLP layer moved")
	}
}

func TestNumParams(t *testing.T) {
	m := NewSequenceModel(SeqModelConfig{Vocab: 10, Hidden: []int{8}, Seed: 1})
	// lstm0: Wx 32x10 + Wh 32x8 + b 32 = 320+256+32 = 608; out: 10x8+10 = 90.
	if m.NumParams() != 698 {
		t.Fatalf("NumParams=%d want 698", m.NumParams())
	}
}

func TestLSTMStatefulStreamingMatchesSequence(t *testing.T) {
	// Feeding tokens one at a time through StepLogProbs must match the
	// per-position losses inside SequenceLogLoss.
	m := NewSequenceModel(SeqModelConfig{Vocab: 6, Hidden: []int{5, 4}, Seed: 3})
	window := []Token{{ID: 0}, {ID: 2}, {ID: 4}, {ID: 1}, {ID: 3}}
	st := m.NewStreamState()
	var total float64
	for t2 := 0; t2 < len(window)-1; t2++ {
		lp := m.StepLogProbs(window[t2], st)
		total -= lp[window[t2+1].ID]
	}
	total /= float64(len(window) - 1)
	if math.Abs(total-m.SequenceLogLoss(window)) > 1e-12 {
		t.Fatalf("streaming %v vs sequence %v", total, m.SequenceLogLoss(window))
	}
}

func TestForgetGateBiasInit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLSTM("l", 3, 4, rng)
	b := l.Bp.W.Row(0)
	for j := 0; j < 4; j++ {
		if b[4+j] != 1 {
			t.Fatalf("forget bias not 1: %v", b)
		}
		if b[j] != 0 || b[8+j] != 0 || b[12+j] != 0 {
			t.Fatalf("non-forget biases should start at 0: %v", b)
		}
	}
}

func TestLSTMBackwardSeqMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLSTM("l", 2, 3, rng)
	_, cache := l.ForwardSeq([]mat.Vector{{1, 0}, {0, 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.BackwardSeq(cache, []mat.Vector{{0, 0, 0}})
}

func BenchmarkTrainWindow(b *testing.B) {
	m := NewSequenceModel(SeqModelConfig{Vocab: 64, Hidden: []int{48, 48}, UseGap: true, Seed: 1})
	opt := NewAdam(0.003, 5)
	rng := rand.New(rand.NewSource(1))
	window := make([]Token, 33)
	for i := range window {
		window[i] = Token{ID: rng.Intn(64), Gap: rng.Float64() * 100}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainWindow(window)
		opt.Step(m.Params())
	}
}

func BenchmarkStepLogProbs(b *testing.B) {
	m := NewSequenceModel(SeqModelConfig{Vocab: 64, Hidden: []int{48, 48}, UseGap: true, Seed: 1})
	st := m.NewStreamState()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.StepLogProbs(Token{ID: i % 64, Gap: 5}, st)
	}
}

// Identical seeds must produce bit-identical models and training runs.
func TestSequenceModelDeterminism(t *testing.T) {
	mk := func() float64 {
		m := NewSequenceModel(SeqModelConfig{Vocab: 6, Hidden: []int{8}, UseGap: true, Seed: 77})
		opt := NewAdam(0.01, 5)
		window := []Token{{ID: 0, Gap: 1}, {ID: 1, Gap: 2}, {ID: 2, Gap: 3}, {ID: 3, Gap: 4}}
		var last float64
		for i := 0; i < 20; i++ {
			last = m.TrainWindow(window)
			opt.Step(m.Params())
		}
		return last
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("training not deterministic: %v vs %v", a, b)
	}
}
