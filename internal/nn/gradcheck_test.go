package nn

import (
	"math"
	"math/rand"
	"testing"

	"nfvpredict/internal/mat"
)

// numericGrad perturbs each weight of p and measures the loss change.
func numericGrad(p *Param, loss func() float64) []float64 {
	const eps = 1e-5
	out := make([]float64, len(p.W.Data))
	for i := range p.W.Data {
		orig := p.W.Data[i]
		p.W.Data[i] = orig + eps
		up := loss()
		p.W.Data[i] = orig - eps
		down := loss()
		p.W.Data[i] = orig
		out[i] = (up - down) / (2 * eps)
	}
	return out
}

func maxRelError(analytic, numeric []float64) float64 {
	var worst float64
	for i := range analytic {
		denom := math.Abs(analytic[i]) + math.Abs(numeric[i]) + 1e-8
		rel := math.Abs(analytic[i]-numeric[i]) / denom
		if rel > worst {
			worst = rel
		}
	}
	return worst
}

func TestDenseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, act := range []Activation{Identity, Sigmoid, Tanh, ReLU} {
		d := NewDense("d", 5, 4, act, rng)
		x := mat.NewVector(5)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		target := 2
		loss := func() float64 {
			y := d.Infer(x)
			l, _ := SoftmaxCrossEntropy(y, target)
			return l
		}
		// Analytic gradients.
		ZeroGrads(d.Params())
		y, cache := d.Forward(x)
		_, dy := SoftmaxCrossEntropy(y, target)
		d.Backward(cache, dy)
		for _, p := range d.Params() {
			numeric := numericGrad(p, loss)
			analytic := make([]float64, len(p.Grad.Data))
			copy(analytic, p.Grad.Data)
			if rel := maxRelError(analytic, numeric); rel > 1e-4 {
				t.Errorf("act=%v param=%s: max rel grad error %v", act, p.Name, rel)
			}
		}
	}
}

func TestDenseInputGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	d := NewDense("d", 6, 3, Tanh, rng)
	x := mat.NewVector(6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y, cache := d.Forward(x)
	_, dy := SoftmaxCrossEntropy(y, 1)
	dx := d.Backward(cache, dy)

	const eps = 1e-5
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		up, _ := SoftmaxCrossEntropy(d.Infer(x), 1)
		x[i] = orig - eps
		down, _ := SoftmaxCrossEntropy(d.Infer(x), 1)
		x[i] = orig
		numeric := (up - down) / (2 * eps)
		denom := math.Abs(dx[i]) + math.Abs(numeric) + 1e-8
		if math.Abs(dx[i]-numeric)/denom > 1e-4 {
			t.Fatalf("input grad %d: analytic %v numeric %v", i, dx[i], numeric)
		}
	}
}

// TestLSTMGradientCheck validates full BPTT against numeric differentiation
// through a 2-layer LSTM + dense stack on a short sequence — the exact
// architecture the paper trains.
func TestLSTMGradientCheck(t *testing.T) {
	cfg := SeqModelConfig{Vocab: 6, Hidden: []int{5, 4}, UseGap: true, Seed: 7}
	m := NewSequenceModel(cfg)
	window := []Token{{ID: 1, Gap: 2}, {ID: 3, Gap: 10}, {ID: 0, Gap: 1}, {ID: 5, Gap: 60}, {ID: 2, Gap: 3}}

	loss := func() float64 {
		return m.SequenceLogLoss(window)
	}
	ZeroGrads(m.Params())
	m.TrainWindow(window)
	for _, p := range m.Params() {
		analytic := make([]float64, len(p.Grad.Data))
		copy(analytic, p.Grad.Data)
		numeric := numericGrad(p, loss)
		if rel := maxRelError(analytic, numeric); rel > 1e-3 {
			t.Errorf("param %s: max rel grad error %v", p.Name, rel)
		}
	}
}

// SequenceLogLoss and TrainWindow must agree on the loss value.
func TestTrainWindowLossMatchesSequenceLogLoss(t *testing.T) {
	cfg := SeqModelConfig{Vocab: 8, Hidden: []int{6}, UseGap: false, Seed: 3}
	m := NewSequenceModel(cfg)
	window := []Token{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}}
	want := m.SequenceLogLoss(window)
	got := m.TrainWindow(window)
	ZeroGrads(m.Params())
	if math.Abs(want-got) > 1e-9 {
		t.Fatalf("loss mismatch: TrainWindow=%v SequenceLogLoss=%v", got, want)
	}
}

// denseTrainWindow is a reference BPTT pass that materializes the full
// one-hot input vector for every timestep and feeds it through the dense
// Step kernel, mirroring the seed implementation. The production
// TrainWindow must reproduce its gradients exactly.
func denseTrainWindow(m *SequenceModel, window []Token) float64 {
	T := len(window) - 1
	states := make([]*LSTMState, len(m.lstms))
	caches := make([]*LSTMCache, len(m.lstms))
	for i, l := range m.lstms {
		states[i] = l.NewState()
		caches[i] = &LSTMCache{}
	}
	for t := 0; t < T; t++ {
		h := m.encode(window[t])
		for li, l := range m.lstms {
			h = l.Step(h, states[li], caches[li])
		}
	}
	top := caches[len(m.lstms)-1]
	dhs := make([]mat.Vector, T)
	var total float64
	for t := 0; t < T; t++ {
		logits, c := m.out.Forward(top.steps[t].h)
		loss, dlogits := SoftmaxCrossEntropy(logits, m.targetOf(window[t+1]))
		total += loss
		dlogits.ScaleInPlace(1 / float64(T))
		dhs[t] = m.out.Backward(c, dlogits).Clone()
	}
	grads := dhs
	for li := len(m.lstms) - 1; li >= 0; li-- {
		grads = m.lstms[li].BackwardSeq(caches[li], grads)
	}
	return total / float64(T)
}

// TestSparseMatchesDensePath pins the core perf-path contract: the sparse
// one-hot kernels (ColGatherAdd / Col2GatherAdd / AddOuterOneHot) produce
// bit-identical losses and gradients to the dense one-hot reference, both
// with and without the UseGap input column.
func TestSparseMatchesDensePath(t *testing.T) {
	for _, useGap := range []bool{false, true} {
		cfg := SeqModelConfig{Vocab: 9, Hidden: []int{7, 5}, UseGap: useGap, Seed: 21}
		sparse := NewSequenceModel(cfg)
		dense := NewSequenceModel(cfg) // identical weights via identical seed
		window := []Token{
			{ID: 2, Gap: 0}, {ID: 8, Gap: 5}, {ID: 0, Gap: 300},
			{ID: 4, Gap: 1}, {ID: -3, Gap: 2}, {ID: 42, Gap: 7}, {ID: 1, Gap: 0.5},
		}
		lossSparse := sparse.TrainWindow(window)
		lossDense := denseTrainWindow(dense, window)
		if lossSparse != lossDense {
			t.Fatalf("useGap=%v: loss diverged: sparse=%v dense=%v", useGap, lossSparse, lossDense)
		}
		sp, dp := sparse.Params(), dense.Params()
		for i := range sp {
			for j := range sp[i].Grad.Data {
				if sp[i].Grad.Data[j] != dp[i].Grad.Data[j] {
					t.Fatalf("useGap=%v param %s grad[%d]: sparse=%v dense=%v",
						useGap, sp[i].Name, j, sp[i].Grad.Data[j], dp[i].Grad.Data[j])
				}
			}
		}
	}
}

// TestStreamingMatchesDenseInference pins the same contract for the
// inference path: StepLogits through the sparse kernels must equal feeding
// the materialized one-hot through the dense Step.
func TestStreamingMatchesDenseInference(t *testing.T) {
	cfg := SeqModelConfig{Vocab: 6, Hidden: []int{5, 4}, UseGap: true, Seed: 9}
	m := NewSequenceModel(cfg)
	ref := NewSequenceModel(cfg)
	st := m.NewStreamState()
	refSt := ref.NewStreamState()
	window := []Token{{ID: 1, Gap: 2}, {ID: 3, Gap: 10}, {ID: 0, Gap: 1}, {ID: 5, Gap: 60}}
	for _, tok := range window {
		got := m.StepLogits(tok, st)
		h := ref.encode(tok)
		for li, l := range ref.lstms {
			h = l.Step(h, refSt.layers[li], nil)
		}
		want := ref.out.Infer(h)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tok %+v logit %d: sparse=%v dense=%v", tok, i, got[i], want[i])
			}
		}
	}
}

func TestMLPGradientCheck(t *testing.T) {
	ae := NewAutoencoder(6, []int{4, 2}, 11)
	rng := rand.New(rand.NewSource(5))
	x := mat.NewVector(6)
	for i := range x {
		x[i] = rng.Float64()
	}
	loss := func() float64 { return ae.ReconstructionError(x) }
	ZeroGrads(ae.Params())
	ae.TrainReconstruction(x)
	for _, p := range ae.Params() {
		analytic := make([]float64, len(p.Grad.Data))
		copy(analytic, p.Grad.Data)
		numeric := numericGrad(p, loss)
		if rel := maxRelError(analytic, numeric); rel > 1e-3 {
			t.Errorf("param %s: max rel grad error %v", p.Name, rel)
		}
	}
}
