package nn

import (
	"math"
	"math/rand"
	"testing"

	"nfvpredict/internal/mat"
)

// numericGrad perturbs each weight of p and measures the loss change.
func numericGrad(p *Param, loss func() float64) []float64 {
	const eps = 1e-5
	out := make([]float64, len(p.W.Data))
	for i := range p.W.Data {
		orig := p.W.Data[i]
		p.W.Data[i] = orig + eps
		up := loss()
		p.W.Data[i] = orig - eps
		down := loss()
		p.W.Data[i] = orig
		out[i] = (up - down) / (2 * eps)
	}
	return out
}

func maxRelError(analytic, numeric []float64) float64 {
	var worst float64
	for i := range analytic {
		denom := math.Abs(analytic[i]) + math.Abs(numeric[i]) + 1e-8
		rel := math.Abs(analytic[i]-numeric[i]) / denom
		if rel > worst {
			worst = rel
		}
	}
	return worst
}

func TestDenseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, act := range []Activation{Identity, Sigmoid, Tanh, ReLU} {
		d := NewDense("d", 5, 4, act, rng)
		x := mat.NewVector(5)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		target := 2
		loss := func() float64 {
			y := d.Infer(x)
			l, _ := SoftmaxCrossEntropy(y, target)
			return l
		}
		// Analytic gradients.
		ZeroGrads(d.Params())
		y, cache := d.Forward(x)
		_, dy := SoftmaxCrossEntropy(y, target)
		d.Backward(cache, dy)
		for _, p := range d.Params() {
			numeric := numericGrad(p, loss)
			analytic := make([]float64, len(p.Grad.Data))
			copy(analytic, p.Grad.Data)
			if rel := maxRelError(analytic, numeric); rel > 1e-4 {
				t.Errorf("act=%v param=%s: max rel grad error %v", act, p.Name, rel)
			}
		}
	}
}

func TestDenseInputGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	d := NewDense("d", 6, 3, Tanh, rng)
	x := mat.NewVector(6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y, cache := d.Forward(x)
	_, dy := SoftmaxCrossEntropy(y, 1)
	dx := d.Backward(cache, dy)

	const eps = 1e-5
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		up, _ := SoftmaxCrossEntropy(d.Infer(x), 1)
		x[i] = orig - eps
		down, _ := SoftmaxCrossEntropy(d.Infer(x), 1)
		x[i] = orig
		numeric := (up - down) / (2 * eps)
		denom := math.Abs(dx[i]) + math.Abs(numeric) + 1e-8
		if math.Abs(dx[i]-numeric)/denom > 1e-4 {
			t.Fatalf("input grad %d: analytic %v numeric %v", i, dx[i], numeric)
		}
	}
}

// TestLSTMGradientCheck validates full BPTT against numeric differentiation
// through a 2-layer LSTM + dense stack on a short sequence — the exact
// architecture the paper trains.
func TestLSTMGradientCheck(t *testing.T) {
	cfg := SeqModelConfig{Vocab: 6, Hidden: []int{5, 4}, UseGap: true, Seed: 7}
	m := NewSequenceModel(cfg)
	window := []Token{{ID: 1, Gap: 2}, {ID: 3, Gap: 10}, {ID: 0, Gap: 1}, {ID: 5, Gap: 60}, {ID: 2, Gap: 3}}

	loss := func() float64 {
		return m.SequenceLogLoss(window)
	}
	ZeroGrads(m.Params())
	m.TrainWindow(window)
	for _, p := range m.Params() {
		analytic := make([]float64, len(p.Grad.Data))
		copy(analytic, p.Grad.Data)
		numeric := numericGrad(p, loss)
		if rel := maxRelError(analytic, numeric); rel > 1e-3 {
			t.Errorf("param %s: max rel grad error %v", p.Name, rel)
		}
	}
}

// SequenceLogLoss and TrainWindow must agree on the loss value.
func TestTrainWindowLossMatchesSequenceLogLoss(t *testing.T) {
	cfg := SeqModelConfig{Vocab: 8, Hidden: []int{6}, UseGap: false, Seed: 3}
	m := NewSequenceModel(cfg)
	window := []Token{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}}
	want := m.SequenceLogLoss(window)
	got := m.TrainWindow(window)
	ZeroGrads(m.Params())
	if math.Abs(want-got) > 1e-9 {
		t.Fatalf("loss mismatch: TrainWindow=%v SequenceLogLoss=%v", got, want)
	}
}

func TestMLPGradientCheck(t *testing.T) {
	ae := NewAutoencoder(6, []int{4, 2}, 11)
	rng := rand.New(rand.NewSource(5))
	x := mat.NewVector(6)
	for i := range x {
		x[i] = rng.Float64()
	}
	loss := func() float64 { return ae.ReconstructionError(x) }
	ZeroGrads(ae.Params())
	ae.TrainReconstruction(x)
	for _, p := range ae.Params() {
		analytic := make([]float64, len(p.Grad.Data))
		copy(analytic, p.Grad.Data)
		numeric := numericGrad(p, loss)
		if rel := maxRelError(analytic, numeric); rel > 1e-3 {
			t.Errorf("param %s: max rel grad error %v", p.Name, rel)
		}
	}
}
