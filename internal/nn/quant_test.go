package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestTanh32Bounded pins the error budget of the fast activations: the
// Padé tanh32 within 2e-4 of math.Tanh, sigmoid32 within 1e-4 of the f64
// sigmoid, over a dense sweep well past the clamp point.
func TestTanh32Bounded(t *testing.T) {
	var worstT, worstS float64
	for x := -12.0; x <= 12.0; x += 1e-3 {
		if d := math.Abs(float64(tanh32(float32(x))) - math.Tanh(x)); d > worstT {
			worstT = d
		}
		if d := math.Abs(float64(sigmoid32(float32(x))) - sigmoid(x)); d > worstS {
			worstS = d
		}
	}
	if worstT > 2e-4 {
		t.Fatalf("tanh32 max abs error %.3g exceeds budget 2e-4", worstT)
	}
	if worstS > 1e-4 {
		t.Fatalf("sigmoid32 max abs error %.3g exceeds budget 1e-4", worstS)
	}
	for _, x := range []float32{-1e6, -30, 30, 1e6} {
		v := tanh32(x)
		if v != 1 && v != -1 {
			t.Fatalf("tanh32(%v) = %v, want exact ±1 in the clamp region", x, v)
		}
	}
}

// TestExp32Bounded pins exp32's relative error over the log-softmax input
// range (non-positive after max subtraction) plus a positive margin.
func TestExp32Bounded(t *testing.T) {
	for x := -87.0; x <= 5.0; x += 7e-3 {
		want := math.Exp(x)
		got := float64(exp32(float32(x)))
		if math.Abs(got-want) > 1e-5*want+1e-38 {
			t.Fatalf("exp32(%v) = %v, want %v (rel err %.3g)", x, got, want, math.Abs(got-want)/want)
		}
	}
	if exp32(-100) != 0 {
		t.Fatalf("exp32 underflow should flush to zero")
	}
}

func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
	}{{"f64", PrecisionF64}, {"", PrecisionF64}, {"f32", PrecisionF32}, {"float32", PrecisionF32}, {"int8", PrecisionInt8}, {"i8", PrecisionInt8}} {
		got, err := ParsePrecision(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePrecision(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePrecision("f16"); err == nil {
		t.Fatalf("ParsePrecision accepted unknown mode")
	}
}

func TestSetPrecisionPackInvalidate(t *testing.T) {
	m := NewSequenceModel(SeqModelConfig{Vocab: 16, Hidden: []int{12, 8}, UseGap: true, Seed: 3})
	if m.Precision() != PrecisionF64 || m.PackedBytes() != 0 {
		t.Fatalf("fresh model should serve f64 with no packed engine")
	}
	m.SetPrecision(PrecisionF32)
	f32Bytes := m.PackedBytes()
	if m.Precision() != PrecisionF32 || f32Bytes == 0 {
		t.Fatalf("f32 pack: precision %v bytes %d", m.Precision(), f32Bytes)
	}
	m.SetPrecision(PrecisionInt8)
	i8Bytes := m.PackedBytes()
	if m.Precision() != PrecisionInt8 || i8Bytes == 0 || i8Bytes >= f32Bytes {
		t.Fatalf("int8 pack should be smaller than f32: %d vs %d", i8Bytes, f32Bytes)
	}
	m.InvalidatePacked()
	if m.Precision() != PrecisionF64 || m.PackedBytes() != 0 {
		t.Fatalf("InvalidatePacked should revert to the f64 reference path")
	}
	// Clones never inherit a packed engine: the engine mirrors weights the
	// clone is about to fine-tune.
	m.SetPrecision(PrecisionF32)
	if c := m.Clone(); c.Precision() != PrecisionF64 {
		t.Fatalf("Clone inherited a packed engine")
	}
}

// driftTokens is a deterministic token stream shared by the closeness and
// bit-identity tests.
func driftTokens(vocab, n int, seed int64) []Token {
	rng := rand.New(rand.NewSource(seed))
	toks := make([]Token, n)
	for i := range toks {
		toks[i] = Token{ID: rng.Intn(vocab), Gap: rng.Float64() * 60}
	}
	return toks
}

// TestQuantStepCloseToF64 bounds the drift of the quantized engines
// against the f64 reference over a long stream: f32 stays within a few
// milli-nats on every log-probability, int8 within a fraction of a nat —
// both far inside the anomaly threshold margins (scores differ by ≥ 2
// nats between normal and anomalous traffic in the seed scenarios).
func TestQuantStepCloseToF64(t *testing.T) {
	cfg := SeqModelConfig{Vocab: 32, Hidden: []int{24, 16}, UseGap: true, Seed: 9}
	for _, tc := range []struct {
		prec   Precision
		budget float64
	}{{PrecisionF32, 2e-2}, {PrecisionInt8, 0.5}} {
		ref := NewSequenceModel(cfg)
		qm := NewSequenceModel(cfg) // identical seed ⇒ identical weights
		qm.SetPrecision(tc.prec)
		stR, stQ := ref.NewStreamState(), qm.NewStreamState()
		var worst float64
		for _, tok := range driftTokens(cfg.Vocab, 400, 41) {
			lpR := ref.StepLogProbs(tok, stR)
			lpQ := qm.StepLogProbs(tok, stQ)
			for i := range lpR {
				if d := math.Abs(lpR[i] - lpQ[i]); d > worst {
					worst = d
				}
			}
		}
		if worst > tc.budget {
			t.Fatalf("%v: max |Δlogp| %.4g exceeds budget %.3g", tc.prec, worst, tc.budget)
		}
		t.Logf("%v: max |Δlogp| over 400 steps = %.4g", tc.prec, worst)
	}
}

// TestQuantBatchBitIdenticalToSequential is the quantized mirror of the
// f64 batch invariant: every lane of the batched quantized step must be
// bit-identical to a sequential quantized step on the same token and
// state, for both f32 and int8 engines.
func TestQuantBatchBitIdenticalToSequential(t *testing.T) {
	cfg := SeqModelConfig{Vocab: 20, Hidden: []int{16, 12}, UseGap: true, Seed: 5}
	for _, prec := range []Precision{PrecisionF32, PrecisionInt8} {
		m := NewSequenceModel(cfg)
		m.SetPrecision(prec)
		const B = 7
		seqSts := make([]*StreamState, B)
		batSts := make([]*StreamState, B)
		for b := range seqSts {
			seqSts[b] = m.NewStreamState()
			batSts[b] = m.NewStreamState()
		}
		sc := &BatchScratch{}
		toks := make([]Token, B)
		rng := rand.New(rand.NewSource(61))
		for step := 0; step < 50; step++ {
			for b := range toks {
				toks[b] = Token{ID: rng.Intn(cfg.Vocab + 2), Gap: rng.Float64() * 30}
			}
			want := make([][]float64, B)
			for b := range toks {
				want[b] = append([]float64(nil), m.StepLogProbs(toks[b], seqSts[b])...)
			}
			got := m.StepLogProbsBatch(toks, batSts, sc)
			for b := range toks {
				for i := range want[b] {
					if want[b][i] != got[b][i] {
						t.Fatalf("%v step %d lane %d logp[%d]: sequential %v != batched %v",
							prec, step, b, i, want[b][i], got[b][i])
					}
				}
				for li := range seqSts[b].layers {
					for j := range seqSts[b].layers[li].H {
						if seqSts[b].layers[li].H[j] != batSts[b].layers[li].H[j] ||
							seqSts[b].layers[li].C[j] != batSts[b].layers[li].C[j] {
							t.Fatalf("%v step %d lane %d layer %d unit %d: state diverged", prec, step, b, li, j)
						}
					}
				}
			}
		}
	}
}

// TestQuantStepAllocFree verifies the quantized hot paths allocate nothing
// after scratch warm-up, matching the f64 serving contract.
func TestQuantStepAllocFree(t *testing.T) {
	m := NewSequenceModel(SeqModelConfig{Vocab: 24, Hidden: []int{16, 16}, UseGap: true, Seed: 2})
	m.SetPrecision(PrecisionInt8)
	st := m.NewStreamState()
	m.StepLogProbs(Token{ID: 1, Gap: 2}, st) // warm scratch
	if avg := testing.AllocsPerRun(50, func() {
		m.StepLogProbs(Token{ID: 3, Gap: 1}, st)
	}); avg != 0 {
		t.Fatalf("quantized StepLogProbs allocates %.1f/op after warm-up", avg)
	}
	sts := []*StreamState{m.NewStreamState(), m.NewStreamState(), m.NewStreamState()}
	toks := []Token{{ID: 1}, {ID: 2}, {ID: 3}}
	sc := &BatchScratch{}
	m.StepLogProbsBatch(toks, sts, sc)
	if avg := testing.AllocsPerRun(50, func() {
		m.StepLogProbsBatch(toks, sts, sc)
	}); avg != 0 {
		t.Fatalf("quantized StepLogProbsBatch allocates %.1f/op after warm-up", avg)
	}
}

// benchModel32 mirrors BenchmarkStepLogProbs's model shape exactly so the
// F32/Int8 rows in BENCH_serving.json are directly comparable.
func benchQuantModel(b *testing.B, p Precision) (*SequenceModel, *StreamState) {
	m := NewSequenceModel(SeqModelConfig{Vocab: 64, Hidden: []int{48, 48}, UseGap: true, Seed: 1})
	m.SetPrecision(p)
	return m, m.NewStreamState()
}

func BenchmarkStepLogProbsF32(b *testing.B) {
	m, st := benchQuantModel(b, PrecisionF32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.StepLogProbs(Token{ID: i % 64, Gap: 5}, st)
	}
}

func BenchmarkStepLogProbsInt8(b *testing.B) {
	m, st := benchQuantModel(b, PrecisionInt8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.StepLogProbs(Token{ID: i % 64, Gap: 5}, st)
	}
}
