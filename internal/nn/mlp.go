package nn

import (
	"fmt"
	"math/rand"

	"nfvpredict/internal/mat"
)

// MLP is a feed-forward multi-layer perceptron built from Dense layers.
// With a symmetric bottleneck layout and MSE against the input it is the
// paper's Autoencoder baseline (Deng et al. 2010; Zhang et al. 2016): the
// reconstruction error of a model trained on normal data is the anomaly
// indicator.
type MLP struct {
	layers []*Dense
	// Training scratch, lazily built and reused across examples. Owned by
	// one training goroutine at a time.
	caches []*DenseCache
	dy     mat.Vector
}

// MLPConfig configures an MLP.
type MLPConfig struct {
	// Sizes lists layer widths input-first, e.g. [F, 32, 8, 32, F] for a
	// bottleneck autoencoder over F-dimensional features.
	Sizes []int
	// HiddenAct is the activation for all layers except the last.
	HiddenAct Activation
	// OutAct is the activation of the final layer (Identity for
	// real-valued reconstruction, Sigmoid for [0,1] features).
	OutAct Activation
	// Seed makes weight initialization deterministic.
	Seed int64
}

// NewMLP builds an MLP per cfg. It panics if fewer than two sizes are given.
func NewMLP(cfg MLPConfig) *MLP {
	if len(cfg.Sizes) < 2 {
		panic("nn: MLP requires at least input and output sizes")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &MLP{}
	for i := 0; i+1 < len(cfg.Sizes); i++ {
		act := cfg.HiddenAct
		if i+2 == len(cfg.Sizes) {
			act = cfg.OutAct
		}
		m.layers = append(m.layers, NewDense(fmt.Sprintf("fc%d", i), cfg.Sizes[i], cfg.Sizes[i+1], act, rng))
	}
	return m
}

// NewAutoencoder builds a symmetric bottleneck autoencoder over dim-wide
// inputs with the given encoder widths, e.g. dim=64, hidden=[32, 8] yields
// 64→32→8→32→64. Hidden layers use ReLU and the output is linear.
func NewAutoencoder(dim int, hidden []int, seed int64) *MLP {
	sizes := []int{dim}
	sizes = append(sizes, hidden...)
	for i := len(hidden) - 2; i >= 0; i-- {
		sizes = append(sizes, hidden[i])
	}
	sizes = append(sizes, dim)
	return NewMLP(MLPConfig{Sizes: sizes, HiddenAct: ReLU, OutAct: Identity, Seed: seed})
}

// Params returns all trainable parameters.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// InputSize returns the width the network expects.
func (m *MLP) InputSize() int { return m.layers[0].In }

// OutputSize returns the width the network produces.
func (m *MLP) OutputSize() int { return m.layers[len(m.layers)-1].Out }

// Forward runs x through the network and returns the output plus the
// caches needed by Backward.
func (m *MLP) Forward(x mat.Vector) (mat.Vector, []*DenseCache) {
	caches := make([]*DenseCache, len(m.layers))
	h := x
	for i, l := range m.layers {
		h, caches[i] = l.Forward(h)
	}
	return h, caches
}

// Infer runs x through the network without recording caches.
func (m *MLP) Infer(x mat.Vector) mat.Vector {
	h := x
	for _, l := range m.layers {
		h = l.Infer(h)
	}
	return h
}

// Backward propagates dy through the network, accumulating parameter
// gradients, and returns the input gradient.
func (m *MLP) Backward(caches []*DenseCache, dy mat.Vector) mat.Vector {
	for i := len(m.layers) - 1; i >= 0; i-- {
		dy = m.layers[i].Backward(caches[i], dy)
	}
	return dy
}

// TrainReconstruction accumulates gradients for one autoencoder example
// (target = input) and returns the reconstruction loss. Allocation-free
// after the first call: the forward caches and loss gradient live in the
// network's reusable scratch. Not safe for concurrent use on one MLP.
func (m *MLP) TrainReconstruction(x mat.Vector) float64 {
	if m.caches == nil {
		m.caches = make([]*DenseCache, len(m.layers))
		for i := range m.caches {
			m.caches[i] = &DenseCache{}
		}
	}
	h := x
	for i, l := range m.layers {
		h = l.ForwardInto(m.caches[i], h)
	}
	m.dy = ensureVec(m.dy, len(h))
	loss := MSEInto(m.dy, h, x)
	m.Backward(m.caches, m.dy)
	return loss
}

// ReconstructionError returns ½·mean((f(x)−x)²) without touching gradients.
func (m *MLP) ReconstructionError(x mat.Vector) float64 {
	y := m.Infer(x)
	loss, _ := MSE(y, x)
	return loss
}

// Clone returns a deep copy of the network.
func (m *MLP) Clone() *MLP {
	out := &MLP{}
	for _, l := range m.layers {
		out.layers = append(out.layers, l.clone())
	}
	return out
}

// FreezeBottomLayers freezes the lowest n Dense layers for fine-tuning.
func (m *MLP) FreezeBottomLayers(n int) {
	for i, l := range m.layers {
		frozen := i < n
		for _, p := range l.Params() {
			p.Frozen = frozen
		}
	}
}

// NumLayers returns the number of Dense layers.
func (m *MLP) NumLayers() int { return len(m.layers) }
