package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"nfvpredict/internal/mat"
)

// Token is one structured syslog event as consumed by the sequence model:
// the template ID produced by the signature tree plus the time gap to the
// previous message, the (m_i, t_i − t_{i−1}) tuple of §4.2 of the paper.
type Token struct {
	// ID is the template (signature) index in [0, Vocab).
	ID int
	// Gap is the time since the previous message in seconds.
	Gap float64
}

// SeqModelConfig configures a SequenceModel.
type SeqModelConfig struct {
	// Vocab is the number of log templates (output classes).
	Vocab int
	// Hidden lists the width of each LSTM layer; the paper uses two
	// LSTM layers followed by one dense layer.
	Hidden []int
	// UseGap adds the log-scaled inter-arrival gap as an extra input
	// dimension alongside the one-hot template encoding.
	UseGap bool
	// Seed makes weight initialization deterministic.
	Seed int64
}

// SequenceModel is the paper's LSTM next-template language model: a one-hot
// template (plus optional time-gap feature) feeds a stack of LSTM layers
// whose final hidden state feeds one dense layer producing logits over the
// template vocabulary (§4.2, §5.1: "2 LSTM layers and 1 dense layer").
//
// Because the input is one-hot by construction, the model never
// materializes the vocab-sized input vector: tokens flow through the
// layers' sparse kernels (StepOneHot, AddOuterOneHot), which removes the
// O(Vocab·4H) term from every timestep of both training and inference.
//
// A model may be scored concurrently (each goroutine with its own
// StreamState), but TrainWindow must not run concurrently on the same
// model — data-parallel trainers use ShadowClone for that.
type SequenceModel struct {
	cfg   SeqModelConfig
	lstms []*LSTM
	out   *Dense
	tr    *trainArena
	// quant holds the packed reduced-precision serving engine, nil when
	// serving float64. Atomic so packing/invalidation is race-free
	// against concurrent scorers; see quant.go.
	quant atomic.Pointer[quantEngine]
}

// trainArena holds every reusable buffer one TrainWindow pass needs, so
// repeated windows allocate nothing. A model owns one arena; shadow clones
// own their own, which is what makes data-parallel gradient workers
// race-free.
type trainArena struct {
	states   []*LSTMState
	caches   []*LSTMCache
	outCache DenseCache
	dlogits  mat.Vector
	dhs      []mat.Vector // per-timestep ∂loss/∂h over the top layer
}

// NewSequenceModel builds a model per cfg. It panics on a non-positive
// vocabulary or an empty hidden-layer list, which are programming errors.
func NewSequenceModel(cfg SeqModelConfig) *SequenceModel {
	if cfg.Vocab <= 0 {
		panic("nn: SequenceModel requires positive vocab")
	}
	if len(cfg.Hidden) == 0 {
		panic("nn: SequenceModel requires at least one LSTM layer")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &SequenceModel{cfg: cfg}
	in := cfg.Vocab
	if cfg.UseGap {
		in++
	}
	for i, h := range cfg.Hidden {
		m.lstms = append(m.lstms, NewLSTM(fmt.Sprintf("lstm%d", i), in, h, rng))
		in = h
	}
	m.out = NewDense("out", in, cfg.Vocab, Identity, rng)
	return m
}

// Config returns the model's configuration.
func (m *SequenceModel) Config() SeqModelConfig { return m.cfg }

// InputSize returns the width of the model's input vectors.
func (m *SequenceModel) InputSize() int {
	if m.cfg.UseGap {
		return m.cfg.Vocab + 1
	}
	return m.cfg.Vocab
}

// Params returns all trainable parameters, bottom layer first.
func (m *SequenceModel) Params() []*Param {
	var ps []*Param
	for _, l := range m.lstms {
		ps = append(ps, l.Params()...)
	}
	ps = append(ps, m.out.Params()...)
	return ps
}

// NumParams returns the total number of scalar weights.
func (m *SequenceModel) NumParams() int {
	var n int
	for _, p := range m.Params() {
		n += len(p.W.Data)
	}
	return n
}

// encode converts a token into the model's dense input vector. The hot
// paths never call this — they use the sparse oneHotOf form — but it
// remains the reference encoding for tests and the dense fallback.
func (m *SequenceModel) encode(tok Token) mat.Vector {
	x := mat.NewVector(m.InputSize())
	in := m.oneHotOf(tok)
	x[in.id] = 1
	if in.gapCol >= 0 {
		x[in.gapCol] = in.gap
	}
	return x
}

// oneHotOf converts a token into the sparse input the layer kernels
// consume, clamping unknown templates to the last ("other") class.
func (m *SequenceModel) oneHotOf(tok Token) oneHot {
	id := tok.ID
	if id < 0 || id >= m.cfg.Vocab {
		// Unknown templates map to the last class; the signature tree
		// reserves it for "other".
		id = m.cfg.Vocab - 1
	}
	in := oneHot{id: id, gapCol: -1}
	if m.cfg.UseGap {
		in.gapCol = m.cfg.Vocab
		in.gap = normalizeGap(tok.Gap)
	}
	return in
}

// targetOf clamps a next-token ID into the class space.
func (m *SequenceModel) targetOf(tok Token) int {
	if tok.ID < 0 || tok.ID >= m.cfg.Vocab {
		return m.cfg.Vocab - 1
	}
	return tok.ID
}

// normalizeGap maps a non-negative gap in seconds to roughly [0, 1.5] via
// log scaling; gaps beyond roughly a day saturate.
func normalizeGap(gap float64) float64 {
	if gap < 0 {
		gap = 0
	}
	return math.Log1p(gap) / 8.0
}

// arena returns the model's training arena, building it on first use.
func (m *SequenceModel) arena() *trainArena {
	if m.tr == nil {
		a := &trainArena{}
		for _, l := range m.lstms {
			a.states = append(a.states, l.NewState())
			a.caches = append(a.caches, &LSTMCache{})
		}
		m.tr = a
	}
	return m.tr
}

// TrainWindow performs one BPTT pass over window, predicting window[t+1].ID
// from window[0..t] at every position, accumulates gradients, and returns
// the mean cross-entropy. The caller applies an Optimizer afterwards; this
// split lets trainers batch several windows per optimizer step.
// Windows shorter than 2 tokens contribute nothing and return 0.
//
// The pass is allocation-free after the first call: inputs stay in their
// sparse one-hot form and every intermediate lives in the model's arena.
// Not safe for concurrent use on one model; see ShadowClone.
func (m *SequenceModel) TrainWindow(window []Token) float64 {
	if len(window) < 2 {
		return 0
	}
	T := len(window) - 1
	a := m.arena()
	// Forward through the LSTM stack, layer by layer, keeping every
	// layer's tape. The bottom layer consumes sparse tokens directly.
	for li := range m.lstms {
		a.states[li].Reset()
		a.caches[li].reset()
	}
	bottom := m.lstms[0]
	for t := 0; t < T; t++ {
		bottom.StepOneHot(m.oneHotOf(window[t]), a.states[0], a.caches[0])
	}
	for li := 1; li < len(m.lstms); li++ {
		l, prev := m.lstms[li], a.caches[li-1]
		for t := 0; t < T; t++ {
			l.Step(prev.steps[t].h, a.states[li], a.caches[li])
		}
	}
	// Output layer + loss per timestep.
	top := a.caches[len(m.lstms)-1]
	if cap(a.dhs) < T {
		next := make([]mat.Vector, T)
		copy(next, a.dhs)
		a.dhs = next
	}
	a.dhs = a.dhs[:T]
	a.dlogits = ensureVec(a.dlogits, m.cfg.Vocab)
	var total float64
	for t := 0; t < T; t++ {
		logits := m.out.ForwardInto(&a.outCache, top.steps[t].h)
		loss := SoftmaxCrossEntropyInto(a.dlogits, logits, m.targetOf(window[t+1]))
		total += loss
		// Scale so gradients are means over the window.
		a.dlogits.ScaleInPlace(1 / float64(T))
		dh := m.out.Backward(&a.outCache, a.dlogits)
		a.dhs[t] = ensureVec(a.dhs[t], len(dh))
		copy(a.dhs[t], dh)
	}
	// Backward through the LSTM stack, top layer first.
	grads := a.dhs
	for li := len(m.lstms) - 1; li >= 0; li-- {
		grads = m.lstms[li].BackwardSeq(a.caches[li], grads)
	}
	return total / float64(T)
}

// StreamState carries the per-layer recurrent state for online scoring,
// plus the output scratch that makes scoring allocation-free. Each
// concurrent scorer needs its own StreamState.
type StreamState struct {
	layers []*LSTMState
	logits mat.Vector
	logp   mat.Vector
	// qs is the quantized-path scratch, lazily built per engine; it holds
	// no recurrent state (that stays in layers), only step buffers.
	qs *quantScratch
}

// NewStreamState returns a zeroed streaming state.
func (m *SequenceModel) NewStreamState() *StreamState {
	st := &StreamState{layers: make([]*LSTMState, len(m.lstms))}
	for i, l := range m.lstms {
		st.layers[i] = l.NewState()
	}
	return st
}

// StreamSnapshot is the portable form of a StreamState: the per-layer
// hidden and cell vectors, copied out of the live state. It is plain data
// (gob-friendly) so monitors can checkpoint mid-stream scoring state and
// resume bit-identically after a restart.
type StreamSnapshot struct {
	H, C [][]float64
}

// Snapshot copies the recurrent state out of st.
func (st *StreamState) Snapshot() StreamSnapshot {
	snap := StreamSnapshot{
		H: make([][]float64, len(st.layers)),
		C: make([][]float64, len(st.layers)),
	}
	for i, l := range st.layers {
		snap.H[i] = append([]float64(nil), l.H...)
		snap.C[i] = append([]float64(nil), l.C...)
	}
	return snap
}

// RestoreStreamState rebuilds a StreamState from a snapshot taken against a
// model of the same architecture. It validates layer count and widths so a
// checkpoint replayed against a different (e.g. hot-reloaded) model fails
// loudly instead of scoring garbage.
func (m *SequenceModel) RestoreStreamState(snap StreamSnapshot) (*StreamState, error) {
	if len(snap.H) != len(m.lstms) || len(snap.C) != len(m.lstms) {
		return nil, fmt.Errorf("nn: stream snapshot has %d/%d layers, model has %d",
			len(snap.H), len(snap.C), len(m.lstms))
	}
	st := m.NewStreamState()
	for i, l := range m.lstms {
		if len(snap.H[i]) != l.Hidden || len(snap.C[i]) != l.Hidden {
			return nil, fmt.Errorf("nn: stream snapshot layer %d is %dx%d wide, model wants %d",
				i, len(snap.H[i]), len(snap.C[i]), l.Hidden)
		}
		copy(st.layers[i].H, snap.H[i])
		copy(st.layers[i].C, snap.C[i])
	}
	return st, nil
}

// StepLogits feeds one token through the model, advancing st, and returns
// the logits over the next template. The returned vector aliases st's
// scratch and stays valid until the next step on the same state.
func (m *SequenceModel) StepLogits(tok Token, st *StreamState) mat.Vector {
	h := m.lstms[0].StepOneHot(m.oneHotOf(tok), st.layers[0], nil)
	for i := 1; i < len(m.lstms); i++ {
		h = m.lstms[i].Step(h, st.layers[i], nil)
	}
	st.logits = ensureVec(st.logits, m.cfg.Vocab)
	return m.out.InferInto(st.logits, h)
}

// StepLogProbs feeds one token and returns log-probabilities over the next
// template, the quantity thresholded by the anomaly detector. The returned
// vector aliases st's scratch and stays valid until the next step on the
// same state.
func (m *SequenceModel) StepLogProbs(tok Token, st *StreamState) mat.Vector {
	if e := m.quant.Load(); e != nil {
		return m.stepQuant(e, tok, st)
	}
	st.logp = ensureVec(st.logp, m.cfg.Vocab)
	return LogSoftmaxInto(st.logp, m.StepLogits(tok, st))
}

// BatchScratch holds every reusable buffer a StepLogProbsBatch caller
// needs: the lane-major gate, hidden-gather, and logit matrices plus the
// sparse-input and result slices. One scratch per scoring worker; after the
// first call at a given batch size, batched scoring allocates nothing. The
// zero value is ready to use.
type BatchScratch struct {
	ins    []oneHot
	states []*LSTMState
	x      *mat.Matrix // gathered below-layer hidden inputs [B×In]
	z      *mat.Matrix // gate pre-activations [B×4H]
	hp     *mat.Matrix // gathered previous hidden states [B×H]
	logits *mat.Matrix // output logits [B×Vocab]
	out    []mat.Vector
	q      *quantBatchScratch // quantized-path lane buffers, lazily built
}

// ensureMat returns m resliced to rows×cols, reallocating only when the
// backing capacity is insufficient. The contents are unspecified.
func ensureMat(m *mat.Matrix, rows, cols int) *mat.Matrix {
	if m == nil || cap(m.Data) < rows*cols {
		return mat.NewMatrix(rows, cols)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:rows*cols]
	return m
}

// StepLogProbsBatch is StepLogProbs over B independent streams at once:
// lane b feeds toks[b] through sts[b], and the returned slice holds each
// lane's log-probabilities (aliasing sts[b]'s scratch, like StepLogProbs).
// All lanes step through the layer stack together, so each layer costs one
// MulMatAdd GEMM per projection instead of B MulVecAdd calls — the batched
// RNN inference trick, applied to serving.
//
// The states must be distinct (one pending step per stream; shard workers
// wave-schedule repeats of the same host into later batches). Every lane is
// bit-identical to a sequential StepLogProbs on the same token and state.
func (m *SequenceModel) StepLogProbsBatch(toks []Token, sts []*StreamState, sc *BatchScratch) []mat.Vector {
	if e := m.quant.Load(); e != nil {
		return m.stepQuantBatch(e, toks, sts, sc)
	}
	B := len(toks)
	if len(sts) != B {
		panic("nn: StepLogProbsBatch lane count mismatch")
	}
	if cap(sc.out) < B {
		sc.out = make([]mat.Vector, B)
	}
	sc.out = sc.out[:B]
	if B == 0 {
		return sc.out
	}
	if cap(sc.ins) < B {
		sc.ins = make([]oneHot, B)
	}
	sc.ins = sc.ins[:B]
	for b, tok := range toks {
		sc.ins[b] = m.oneHotOf(tok)
	}
	if cap(sc.states) < B {
		sc.states = make([]*LSTMState, B)
	}
	sc.states = sc.states[:B]
	for li, l := range m.lstms {
		for b := 0; b < B; b++ {
			sc.states[b] = sts[b].layers[li]
		}
		sc.z = ensureMat(sc.z, B, 4*l.Hidden)
		sc.hp = ensureMat(sc.hp, B, l.Hidden)
		if li == 0 {
			l.stepBatch(sc.ins, nil, sc.states, sc.z, sc.hp)
			continue
		}
		sc.x = ensureMat(sc.x, B, l.In)
		for b := 0; b < B; b++ {
			copy(sc.x.Row(b), sts[b].layers[li-1].H)
		}
		l.stepBatch(nil, sc.x, sc.states, sc.z, sc.hp)
	}
	top := len(m.lstms) - 1
	sc.x = ensureMat(sc.x, B, m.out.In)
	for b := 0; b < B; b++ {
		copy(sc.x.Row(b), sts[b].layers[top].H)
	}
	sc.logits = ensureMat(sc.logits, B, m.cfg.Vocab)
	m.out.InferBatchInto(sc.logits, sc.x)
	for b := 0; b < B; b++ {
		st := sts[b]
		st.logp = ensureVec(st.logp, m.cfg.Vocab)
		sc.out[b] = LogSoftmaxInto(st.logp, sc.logits.Row(b))
	}
	return sc.out
}

// SequenceLogLoss returns the mean next-token negative log-likelihood of
// window under the model (no gradients). Used by validation loops and the
// over-sampling trainer to find poorly modeled normal windows. Safe to
// call concurrently.
func (m *SequenceModel) SequenceLogLoss(window []Token) float64 {
	if len(window) < 2 {
		return 0
	}
	st := m.NewStreamState()
	var total float64
	for t := 0; t < len(window)-1; t++ {
		lp := m.StepLogProbs(window[t], st)
		total -= lp[m.targetOf(window[t+1])]
	}
	return total / float64(len(window)-1)
}

// Clone returns a deep copy of the model: the teacher→student copy step of
// the paper's transfer-learning adaptation (§4.3).
func (m *SequenceModel) Clone() *SequenceModel {
	out := &SequenceModel{cfg: m.cfg}
	for _, l := range m.lstms {
		out.lstms = append(out.lstms, l.clone())
	}
	out.out = m.out.clone()
	return out
}

// Fingerprint returns an FNV-1a hash over the model's configuration and
// every weight's exact bit pattern — a cheap stable identity for "is this
// the same trained model". Two models fingerprint equal iff they have the
// same architecture and bit-identical weights, so the online lifecycle can
// tell generations apart (and prove a rejected candidate left the serving
// model untouched) without diffing whole weight matrices in logs.
func (m *SequenceModel) Fingerprint() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * 1099511628211
			v >>= 8
		}
	}
	mix(uint64(m.cfg.Vocab))
	for _, w := range m.cfg.Hidden {
		mix(uint64(w))
	}
	if m.cfg.UseGap {
		mix(1)
	}
	for _, p := range m.Params() {
		for _, b := range []byte(p.Name) {
			h = (h ^ uint64(b)) * 1099511628211
		}
		for _, v := range p.W.Data {
			mix(math.Float64bits(v))
		}
	}
	return h
}

// ShadowClone returns a model that shares m's weight matrices but owns
// fresh gradient accumulators and scratch. Shadows are the unit of
// data-parallel training: workers run TrainWindow on disjoint shadows
// against the shared (read-only during the batch) weights, and the trainer
// merges the shadow gradients into m's in a deterministic order.
func (m *SequenceModel) ShadowClone() *SequenceModel {
	out := &SequenceModel{cfg: m.cfg}
	for _, l := range m.lstms {
		out.lstms = append(out.lstms, l.shadow())
	}
	out.out = m.out.shadow()
	return out
}

// FreezeBottomLayers freezes the lowest n LSTM layers so that fine-tuning
// updates only the top of the network, per §4.3 ("train the student model
// … to fine tune top layers"). n is clamped to the layer count.
func (m *SequenceModel) FreezeBottomLayers(n int) {
	for i, l := range m.lstms {
		frozen := i < n
		for _, p := range l.Params() {
			p.Frozen = frozen
		}
	}
}

// Unfreeze clears all freeze flags.
func (m *SequenceModel) Unfreeze() {
	for _, p := range m.Params() {
		p.Frozen = false
	}
}
