package nn

import (
	"fmt"
	"math"
	"math/rand"

	"nfvpredict/internal/mat"
)

// Token is one structured syslog event as consumed by the sequence model:
// the template ID produced by the signature tree plus the time gap to the
// previous message, the (m_i, t_i − t_{i−1}) tuple of §4.2 of the paper.
type Token struct {
	// ID is the template (signature) index in [0, Vocab).
	ID int
	// Gap is the time since the previous message in seconds.
	Gap float64
}

// SeqModelConfig configures a SequenceModel.
type SeqModelConfig struct {
	// Vocab is the number of log templates (output classes).
	Vocab int
	// Hidden lists the width of each LSTM layer; the paper uses two
	// LSTM layers followed by one dense layer.
	Hidden []int
	// UseGap adds the log-scaled inter-arrival gap as an extra input
	// dimension alongside the one-hot template encoding.
	UseGap bool
	// Seed makes weight initialization deterministic.
	Seed int64
}

// SequenceModel is the paper's LSTM next-template language model: a one-hot
// template (plus optional time-gap feature) feeds a stack of LSTM layers
// whose final hidden state feeds one dense layer producing logits over the
// template vocabulary (§4.2, §5.1: "2 LSTM layers and 1 dense layer").
type SequenceModel struct {
	cfg   SeqModelConfig
	lstms []*LSTM
	out   *Dense
}

// NewSequenceModel builds a model per cfg. It panics on a non-positive
// vocabulary or an empty hidden-layer list, which are programming errors.
func NewSequenceModel(cfg SeqModelConfig) *SequenceModel {
	if cfg.Vocab <= 0 {
		panic("nn: SequenceModel requires positive vocab")
	}
	if len(cfg.Hidden) == 0 {
		panic("nn: SequenceModel requires at least one LSTM layer")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &SequenceModel{cfg: cfg}
	in := cfg.Vocab
	if cfg.UseGap {
		in++
	}
	for i, h := range cfg.Hidden {
		m.lstms = append(m.lstms, NewLSTM(fmt.Sprintf("lstm%d", i), in, h, rng))
		in = h
	}
	m.out = NewDense("out", in, cfg.Vocab, Identity, rng)
	return m
}

// Config returns the model's configuration.
func (m *SequenceModel) Config() SeqModelConfig { return m.cfg }

// InputSize returns the width of the model's input vectors.
func (m *SequenceModel) InputSize() int {
	if m.cfg.UseGap {
		return m.cfg.Vocab + 1
	}
	return m.cfg.Vocab
}

// Params returns all trainable parameters, bottom layer first.
func (m *SequenceModel) Params() []*Param {
	var ps []*Param
	for _, l := range m.lstms {
		ps = append(ps, l.Params()...)
	}
	ps = append(ps, m.out.Params()...)
	return ps
}

// NumParams returns the total number of scalar weights.
func (m *SequenceModel) NumParams() int {
	var n int
	for _, p := range m.Params() {
		n += len(p.W.Data)
	}
	return n
}

// encode converts a token into the model's input vector.
func (m *SequenceModel) encode(tok Token) mat.Vector {
	x := mat.NewVector(m.InputSize())
	id := tok.ID
	if id < 0 || id >= m.cfg.Vocab {
		// Unknown templates map to the last class; the signature tree
		// reserves it for "other".
		id = m.cfg.Vocab - 1
	}
	x[id] = 1
	if m.cfg.UseGap {
		x[m.cfg.Vocab] = normalizeGap(tok.Gap)
	}
	return x
}

// normalizeGap maps a non-negative gap in seconds to roughly [0, 1.5] via
// log scaling; gaps beyond roughly a day saturate.
func normalizeGap(gap float64) float64 {
	if gap < 0 {
		gap = 0
	}
	return math.Log1p(gap) / 8.0
}

// TrainWindow performs one BPTT pass over window, predicting window[t+1].ID
// from window[0..t] at every position, accumulates gradients, and returns
// the mean cross-entropy. The caller applies an Optimizer afterwards; this
// split lets trainers batch several windows per optimizer step.
// Windows shorter than 2 tokens contribute nothing and return 0.
func (m *SequenceModel) TrainWindow(window []Token) float64 {
	if len(window) < 2 {
		return 0
	}
	T := len(window) - 1
	xs := make([]mat.Vector, T)
	for t := 0; t < T; t++ {
		xs[t] = m.encode(window[t])
	}
	// Forward through LSTM stack, keeping every layer's tape.
	caches := make([]*LSTMCache, len(m.lstms))
	hs := xs
	for li, l := range m.lstms {
		hs, caches[li] = l.ForwardSeq(hs)
	}
	// Output layer + loss per timestep.
	var total float64
	denseCaches := make([]*DenseCache, T)
	dhs := make([]mat.Vector, T)
	for t := 0; t < T; t++ {
		logits, dc := m.out.Forward(hs[t])
		denseCaches[t] = dc
		target := window[t+1].ID
		if target < 0 || target >= m.cfg.Vocab {
			target = m.cfg.Vocab - 1
		}
		loss, dlogits := SoftmaxCrossEntropy(logits, target)
		total += loss
		// Scale so gradients are means over the window.
		dlogits.ScaleInPlace(1 / float64(T))
		dhs[t] = m.out.Backward(denseCaches[t], dlogits)
	}
	// Backward through the LSTM stack, top layer first.
	grads := dhs
	for li := len(m.lstms) - 1; li >= 0; li-- {
		grads = m.lstms[li].BackwardSeq(caches[li], grads)
	}
	return total / float64(T)
}

// StreamState carries the per-layer recurrent state for online scoring.
type StreamState struct {
	layers []*LSTMState
}

// NewStreamState returns a zeroed streaming state.
func (m *SequenceModel) NewStreamState() *StreamState {
	st := &StreamState{layers: make([]*LSTMState, len(m.lstms))}
	for i, l := range m.lstms {
		st.layers[i] = l.NewState()
	}
	return st
}

// StepLogits feeds one token through the model, advancing st, and returns
// the logits over the next template.
func (m *SequenceModel) StepLogits(tok Token, st *StreamState) mat.Vector {
	h := m.encode(tok)
	for i, l := range m.lstms {
		h = l.Step(h, st.layers[i], nil)
	}
	return m.out.Infer(h)
}

// StepLogProbs feeds one token and returns log-probabilities over the next
// template, the quantity thresholded by the anomaly detector.
func (m *SequenceModel) StepLogProbs(tok Token, st *StreamState) mat.Vector {
	return LogSoftmax(m.StepLogits(tok, st))
}

// SequenceLogLoss returns the mean next-token negative log-likelihood of
// window under the model (no gradients). Used by validation loops and the
// over-sampling trainer to find poorly modeled normal windows.
func (m *SequenceModel) SequenceLogLoss(window []Token) float64 {
	if len(window) < 2 {
		return 0
	}
	st := m.NewStreamState()
	var total float64
	for t := 0; t < len(window)-1; t++ {
		lp := m.StepLogProbs(window[t], st)
		target := window[t+1].ID
		if target < 0 || target >= m.cfg.Vocab {
			target = m.cfg.Vocab - 1
		}
		total -= lp[target]
	}
	return total / float64(len(window)-1)
}

// Clone returns a deep copy of the model: the teacher→student copy step of
// the paper's transfer-learning adaptation (§4.3).
func (m *SequenceModel) Clone() *SequenceModel {
	out := &SequenceModel{cfg: m.cfg}
	for _, l := range m.lstms {
		out.lstms = append(out.lstms, l.clone())
	}
	out.out = m.out.clone()
	return out
}

// FreezeBottomLayers freezes the lowest n LSTM layers so that fine-tuning
// updates only the top of the network, per §4.3 ("train the student model
// … to fine tune top layers"). n is clamped to the layer count.
func (m *SequenceModel) FreezeBottomLayers(n int) {
	for i, l := range m.lstms {
		frozen := i < n
		for _, p := range l.Params() {
			p.Frozen = frozen
		}
	}
}

// Unfreeze clears all freeze flags.
func (m *SequenceModel) Unfreeze() {
	for _, p := range m.Params() {
		p.Frozen = false
	}
}
