package nn

import (
	"math/rand"
	"testing"

	"nfvpredict/internal/mat"
)

// benchLSTM builds a paper-scale layer: 64-template vocab + gap column in,
// 48 hidden units.
func benchLSTM() *LSTM {
	rng := rand.New(rand.NewSource(1))
	return NewLSTM("l", 65, 48, rng)
}

// BenchmarkLSTMStep compares the dense one-hot step (materialized
// vocab-sized input) against the sparse kernel path, for both inference
// (no cache) and training (tape recording).
func BenchmarkLSTMStep(b *testing.B) {
	l := benchLSTM()
	x := mat.NewVector(65)
	x[7] = 1
	x[64] = 0.5
	in := oneHot{id: 7, gapCol: 64, gap: 0.5}

	b.Run("dense-infer", func(b *testing.B) {
		st := l.NewState()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Step(x, st, nil)
		}
	})
	b.Run("sparse-infer", func(b *testing.B) {
		st := l.NewState()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.StepOneHot(in, st, nil)
		}
	})
	b.Run("dense-train", func(b *testing.B) {
		st, cache := l.NewState(), &LSTMCache{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if i%32 == 0 { // bound the tape like a BPTT window would
				st.Reset()
				cache.reset()
			}
			l.Step(x, st, cache)
		}
	})
	b.Run("sparse-train", func(b *testing.B) {
		st, cache := l.NewState(), &LSTMCache{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if i%32 == 0 {
				st.Reset()
				cache.reset()
			}
			l.StepOneHot(in, st, cache)
		}
	})
}

// BenchmarkBatchTrainer measures one full pass over 32 windows at the
// configured batch/worker shape.
func BenchmarkBatchTrainer(b *testing.B) {
	for _, shape := range []struct {
		name           string
		batch, workers int
	}{
		{"batch1-serial", 1, 1},
		{"batch8-serial", 8, 1},
		{"batch8-workers4", 8, 4},
	} {
		b.Run(shape.name, func(b *testing.B) {
			m := NewSequenceModel(SeqModelConfig{Vocab: 64, Hidden: []int{48, 48}, UseGap: true, Seed: 1})
			bt := NewBatchTrainer(m, NewAdam(0.003, 5), shape.batch, shape.workers)
			wins := trainerWindows(32, 64, 33, 7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bt.Train(wins)
			}
		})
	}
}
