package nn

import (
	"math"
	"math/rand"

	"nfvpredict/internal/mat"
)

// LSTM is a single Long Short-Term Memory layer (Hochreiter & Schmidhuber,
// 1997) with the standard i/f/g/o gate parameterization:
//
//	z = Wx·x_t + Wh·h_{t-1} + b            (z ∈ R^{4H})
//	i = σ(z[0:H])   input gate
//	f = σ(z[H:2H])  forget gate
//	g = tanh(z[2H:3H]) candidate cell
//	o = σ(z[3H:4H]) output gate
//	c_t = f ⊙ c_{t-1} + i ⊙ g
//	h_t = o ⊙ tanh(c_t)
//
// Forget-gate biases are initialized to 1, the usual trick that lets fresh
// models carry state across early training steps.
type LSTM struct {
	// In and Hidden are the input and hidden widths.
	In, Hidden int
	// Wxp is the input projection [4H×In], Whp the recurrent projection
	// [4H×H], and Bp the gate bias [1×4H], ordered i, f, g, o.
	Wxp, Whp, Bp *Param
}

// oneHot is the sparse encoding of a sequence-model input: column id
// carries 1 and, when gapCol >= 0, column gapCol carries the normalized
// time gap. The signature-tree tokenization guarantees model inputs have
// exactly this shape, so threading it through Step and BackwardSeq makes
// the sparse fast path exact: the vocab-sized one-hot vector is never
// materialized and the O(In·4H) input product collapses to O(4H).
type oneHot struct {
	id     int
	gapCol int
	gap    float64
}

// LSTMState is the recurrent state (h, c) carried between timesteps, plus
// the state-owned scratch that makes cache-free (inference) steps
// allocation-free. The zero value is not usable; obtain fresh state from
// NewState. A state is owned by one goroutine at a time.
type LSTMState struct {
	H, C mat.Vector
	// h0 and c0 are the state-owned buffers H and C point at initially and
	// after Reset; z is the gate pre-activation scratch for inference steps.
	h0, c0, z mat.Vector
}

// NewLSTM creates an LSTM layer with Xavier-initialized projections and
// forget biases set to 1. name prefixes parameter names.
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		In:     in,
		Hidden: hidden,
		Wxp:    newParam(name+".Wx", 4*hidden, in),
		Whp:    newParam(name+".Wh", 4*hidden, hidden),
		Bp:     newParam(name+".b", 1, 4*hidden),
	}
	l.Wxp.W.XavierInit(rng)
	l.Whp.W.XavierInit(rng)
	b := l.Bp.W.Row(0)
	for j := hidden; j < 2*hidden; j++ {
		b[j] = 1 // forget-gate bias
	}
	return l
}

// Params returns the layer's trainable parameters.
func (l *LSTM) Params() []*Param { return []*Param{l.Wxp, l.Whp, l.Bp} }

// NewState returns a zeroed recurrent state for this layer.
func (l *LSTM) NewState() *LSTMState {
	h := mat.NewVector(l.Hidden)
	c := mat.NewVector(l.Hidden)
	return &LSTMState{H: h, C: c, h0: h, c0: c}
}

// Reset rewinds the state to zero without allocating, detaching it from
// any BPTT tape vectors a previous training window bound it to.
func (st *LSTMState) Reset() {
	st.h0.Zero()
	st.c0.Zero()
	st.H, st.C = st.h0, st.c0
}

// lstmStep holds everything the backward pass needs for one timestep.
type lstmStep struct {
	x            mat.Vector // dense input; nil when the step was sparse
	in           oneHot     // sparse input, used when x == nil
	hPrev, cPrev mat.Vector
	i, f, g, o   mat.Vector
	c, tanhC, h  mat.Vector
}

// LSTMCache is the BPTT tape produced by the forward pass. The cache owns
// its step buffers and backward scratch: resetting and replaying it across
// windows makes training allocation-free after the first window. A cache
// is owned by one goroutine at a time.
type LSTMCache struct {
	steps []lstmStep
	// Backward scratch, lazily sized on first BackwardSeq.
	dh, dhNext, dcNext, dz mat.Vector
	dxs                    []mat.Vector
}

// reset rewinds the tape for a new sequence, keeping every buffer.
func (c *LSTMCache) reset() { c.steps = c.steps[:0] }

// nextStep appends a (possibly recycled) step with buffers sized for H.
func (c *LSTMCache) nextStep(h int) *lstmStep {
	if len(c.steps) < cap(c.steps) {
		c.steps = c.steps[:len(c.steps)+1]
	} else {
		c.steps = append(c.steps, lstmStep{})
	}
	s := &c.steps[len(c.steps)-1]
	s.i = ensureVec(s.i, h)
	s.f = ensureVec(s.f, h)
	s.g = ensureVec(s.g, h)
	s.o = ensureVec(s.o, h)
	s.c = ensureVec(s.c, h)
	s.tanhC = ensureVec(s.tanhC, h)
	s.h = ensureVec(s.h, h)
	return s
}

// ensureVec returns v resliced to length n, reallocating only when the
// capacity is insufficient. The contents are unspecified.
func ensureVec(v mat.Vector, n int) mat.Vector {
	if cap(v) < n {
		return mat.NewVector(n)
	}
	return v[:n]
}

// Step advances the recurrent state by one dense input and returns the new
// hidden output. When cache is non-nil the step is recorded for BPTT and
// the returned vector aliases the tape; with a nil cache (inference) the
// state is updated in place using state-owned scratch and no allocation
// occurs.
func (l *LSTM) Step(x mat.Vector, st *LSTMState, cache *LSTMCache) mat.Vector {
	return l.step(x, oneHot{gapCol: -1}, st, cache)
}

// StepOneHot is Step for a sparse one-hot (+ optional gap) input: the
// input product Wx·x reduces to a column gather of Wx, removing the
// O(In·4H) term from the timestep. The arithmetic matches the dense path
// bit for bit.
func (l *LSTM) StepOneHot(in oneHot, st *LSTMState, cache *LSTMCache) mat.Vector {
	return l.step(nil, in, st, cache)
}

func (l *LSTM) step(x mat.Vector, in oneHot, st *LSTMState, cache *LSTMCache) mat.Vector {
	H := l.Hidden
	st.z = ensureVec(st.z, 4*H)
	z := st.z
	copy(z, l.Bp.W.Row(0))
	switch {
	case x != nil:
		l.Wxp.W.MulVecAdd(z, x)
	case in.gapCol >= 0:
		l.Wxp.W.Col2GatherAdd(z, in.id, 1, in.gapCol, in.gap)
	default:
		l.Wxp.W.ColGatherAdd(z, in.id, 1)
	}
	l.Whp.W.MulVecAdd(z, st.H)
	if cache == nil {
		// Inference: fold the gates straight into the state, in place.
		for j := 0; j < H; j++ {
			i := sigmoid(z[j])
			f := sigmoid(z[H+j])
			g := math.Tanh(z[2*H+j])
			o := sigmoid(z[3*H+j])
			c := f*st.C[j] + i*g
			st.C[j] = c
			st.H[j] = o * math.Tanh(c)
		}
		return st.H
	}
	s := cache.nextStep(H)
	s.x, s.in = x, in
	s.hPrev, s.cPrev = st.H, st.C
	for j := 0; j < H; j++ {
		s.i[j] = sigmoid(z[j])
		s.f[j] = sigmoid(z[H+j])
		s.g[j] = math.Tanh(z[2*H+j])
		s.o[j] = sigmoid(z[3*H+j])
		s.c[j] = s.f[j]*s.cPrev[j] + s.i[j]*s.g[j]
		s.tanhC[j] = math.Tanh(s.c[j])
		s.h[j] = s.o[j] * s.tanhC[j]
	}
	st.H, st.C = s.h, s.c
	return s.h
}

// stepBatch advances B independent recurrent states by one inference
// timestep each, evaluating the gate pre-activations of all lanes as one
// MulMatAdd GEMM per projection instead of B MulVecAdd calls. Lane b
// consumes ins[b] (sparse path, xs == nil) or row b of xs (dense path) and
// updates states[b] in place. z ([B×4H]) and hp ([B×H]) are caller-owned
// scratch. States must be distinct — two lanes sharing a state is the
// caller's bug (shard workers wave-schedule per-host steps to guarantee it).
//
// Per lane the arithmetic — bias copy, input product, recurrent product,
// gate fold — replays the cache-free step() exactly, including the
// j-summation order inside each dot product, so batched outputs are
// bit-identical to B sequential steps.
func (l *LSTM) stepBatch(ins []oneHot, xs *mat.Matrix, states []*LSTMState, z, hp *mat.Matrix) {
	H := l.Hidden
	B := len(states)
	bias := l.Bp.W.Row(0)
	for b := 0; b < B; b++ {
		copy(z.Row(b), bias)
	}
	if xs != nil {
		l.Wxp.W.MulMatAdd(z, xs)
	} else {
		for b := 0; b < B; b++ {
			zr := z.Row(b)
			if in := ins[b]; in.gapCol >= 0 {
				l.Wxp.W.Col2GatherAdd(zr, in.id, 1, in.gapCol, in.gap)
			} else {
				l.Wxp.W.ColGatherAdd(zr, in.id, 1)
			}
		}
	}
	for b := 0; b < B; b++ {
		copy(hp.Row(b), states[b].H)
	}
	l.Whp.W.MulMatAdd(z, hp)
	for b := 0; b < B; b++ {
		st := states[b]
		zr := z.Row(b)
		for j := 0; j < H; j++ {
			i := sigmoid(zr[j])
			f := sigmoid(zr[H+j])
			g := math.Tanh(zr[2*H+j])
			o := sigmoid(zr[3*H+j])
			c := f*st.C[j] + i*g
			st.C[j] = c
			st.H[j] = o * math.Tanh(c)
		}
	}
}

// ForwardSeq runs the layer over xs starting from a zero state and returns
// the hidden output at every timestep plus the BPTT tape.
func (l *LSTM) ForwardSeq(xs []mat.Vector) ([]mat.Vector, *LSTMCache) {
	st := l.NewState()
	cache := &LSTMCache{steps: make([]lstmStep, 0, len(xs))}
	hs := make([]mat.Vector, len(xs))
	for t, x := range xs {
		hs[t] = l.Step(x, st, cache)
	}
	return hs, cache
}

// BackwardSeq consumes dhs[t] = ∂loss/∂h_t for every timestep, accumulates
// the parameter gradients, and returns dxs[t] = ∂loss/∂x_t. dhs must have
// the same length as the forward sequence. The returned vectors alias the
// cache's scratch and stay valid until its next BackwardSeq; entries for
// sparse (one-hot) steps are nil — nothing consumes input gradients below
// the input layer, and skipping them removes the second O(In·4H) term.
func (l *LSTM) BackwardSeq(cache *LSTMCache, dhs []mat.Vector) []mat.Vector {
	H := l.Hidden
	T := len(cache.steps)
	if len(dhs) != T {
		panic("nn: BackwardSeq gradient count mismatch")
	}
	if cap(cache.dxs) < T {
		next := make([]mat.Vector, T)
		copy(next, cache.dxs)
		cache.dxs = next
	}
	cache.dxs = cache.dxs[:T]
	dxs := cache.dxs
	cache.dh = ensureVec(cache.dh, H)
	cache.dhNext = ensureVec(cache.dhNext, H)
	cache.dcNext = ensureVec(cache.dcNext, H)
	cache.dz = ensureVec(cache.dz, 4*H)
	dh, dhNext, dcNext, dz := cache.dh, cache.dhNext, cache.dcNext, cache.dz
	dhNext.Zero() // gradient flowing from t+1 into h_t
	dcNext.Zero() // gradient flowing from t+1 into c_t
	for t := T - 1; t >= 0; t-- {
		s := &cache.steps[t]
		for j := 0; j < H; j++ {
			dh[j] = dhs[t][j] + dhNext[j]
		}
		for j := 0; j < H; j++ {
			// h = o ⊙ tanh(c)
			do := dh[j] * s.tanhC[j]
			dc := dh[j]*s.o[j]*(1-s.tanhC[j]*s.tanhC[j]) + dcNext[j]
			di := dc * s.g[j]
			df := dc * s.cPrev[j]
			dg := dc * s.i[j]
			dcNext[j] = dc * s.f[j] // safe in place: index j is done with
			// Gate pre-activation gradients.
			dz[j] = di * s.i[j] * (1 - s.i[j])
			dz[H+j] = df * s.f[j] * (1 - s.f[j])
			dz[2*H+j] = dg * (1 - s.g[j]*s.g[j])
			dz[3*H+j] = do * s.o[j] * (1 - s.o[j])
		}
		if s.x != nil {
			l.Wxp.Grad.AddOuter(1, dz, s.x)
			dx := ensureVec(dxs[t], l.In)
			dx.Zero()
			l.Wxp.W.TransMulVecAdd(dx, dz)
			dxs[t] = dx
		} else {
			// Sparse one-hot input: the weight-gradient outer product
			// touches only the id (and gap) columns, and the input
			// gradient is never consumed.
			l.Wxp.Grad.AddOuterOneHot(1, dz, s.in.id)
			if s.in.gapCol >= 0 && s.in.gap != 0 {
				l.Wxp.Grad.AddOuterOneHot(s.in.gap, dz, s.in.gapCol)
			}
			dxs[t] = nil
		}
		l.Whp.Grad.AddOuter(1, dz, s.hPrev)
		l.Bp.Grad.Row(0).AddInPlace(dz)

		dhNext.Zero()
		l.Whp.W.TransMulVecAdd(dhNext, dz)
	}
	return dxs
}

// clone returns a deep copy of the layer (weights copied, gradients zeroed).
func (l *LSTM) clone() *LSTM {
	out := &LSTM{
		In:     l.In,
		Hidden: l.Hidden,
		Wxp:    newParam(l.Wxp.Name, l.Wxp.W.Rows, l.Wxp.W.Cols),
		Whp:    newParam(l.Whp.Name, l.Whp.W.Rows, l.Whp.W.Cols),
		Bp:     newParam(l.Bp.Name, l.Bp.W.Rows, l.Bp.W.Cols),
	}
	out.Wxp.W.CopyFrom(l.Wxp.W)
	out.Whp.W.CopyFrom(l.Whp.W)
	out.Bp.W.CopyFrom(l.Bp.W)
	out.Wxp.Frozen = l.Wxp.Frozen
	out.Whp.Frozen = l.Whp.Frozen
	out.Bp.Frozen = l.Bp.Frozen
	return out
}

// shadow returns a layer sharing l's weight matrices but owning fresh
// gradient accumulators, for data-parallel gradient workers.
func (l *LSTM) shadow() *LSTM {
	return &LSTM{
		In:     l.In,
		Hidden: l.Hidden,
		Wxp:    l.Wxp.shadow(),
		Whp:    l.Whp.shadow(),
		Bp:     l.Bp.shadow(),
	}
}
