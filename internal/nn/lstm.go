package nn

import (
	"math"
	"math/rand"

	"nfvpredict/internal/mat"
)

// LSTM is a single Long Short-Term Memory layer (Hochreiter & Schmidhuber,
// 1997) with the standard i/f/g/o gate parameterization:
//
//	z = Wx·x_t + Wh·h_{t-1} + b            (z ∈ R^{4H})
//	i = σ(z[0:H])   input gate
//	f = σ(z[H:2H])  forget gate
//	g = tanh(z[2H:3H]) candidate cell
//	o = σ(z[3H:4H]) output gate
//	c_t = f ⊙ c_{t-1} + i ⊙ g
//	h_t = o ⊙ tanh(c_t)
//
// Forget-gate biases are initialized to 1, the usual trick that lets fresh
// models carry state across early training steps.
type LSTM struct {
	// In and Hidden are the input and hidden widths.
	In, Hidden int
	// Wxp is the input projection [4H×In], Whp the recurrent projection
	// [4H×H], and Bp the gate bias [1×4H], ordered i, f, g, o.
	Wxp, Whp, Bp *Param
}

// LSTMState is the recurrent state (h, c) carried between timesteps.
// The zero value is not usable; obtain fresh state from NewState.
type LSTMState struct {
	H, C mat.Vector
}

// NewLSTM creates an LSTM layer with Xavier-initialized projections and
// forget biases set to 1. name prefixes parameter names.
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		In:     in,
		Hidden: hidden,
		Wxp:    newParam(name+".Wx", 4*hidden, in),
		Whp:    newParam(name+".Wh", 4*hidden, hidden),
		Bp:     newParam(name+".b", 1, 4*hidden),
	}
	l.Wxp.W.XavierInit(rng)
	l.Whp.W.XavierInit(rng)
	b := l.Bp.W.Row(0)
	for j := hidden; j < 2*hidden; j++ {
		b[j] = 1 // forget-gate bias
	}
	return l
}

// Params returns the layer's trainable parameters.
func (l *LSTM) Params() []*Param { return []*Param{l.Wxp, l.Whp, l.Bp} }

// NewState returns a zeroed recurrent state for this layer.
func (l *LSTM) NewState() *LSTMState {
	return &LSTMState{H: mat.NewVector(l.Hidden), C: mat.NewVector(l.Hidden)}
}

// lstmStep holds everything the backward pass needs for one timestep.
type lstmStep struct {
	x            mat.Vector
	hPrev, cPrev mat.Vector
	i, f, g, o   mat.Vector
	c, tanhC, h  mat.Vector
}

// LSTMCache is the BPTT tape produced by ForwardSeq.
type LSTMCache struct {
	steps []lstmStep
}

// Step advances the recurrent state by one input and returns the new
// hidden output. When cache is non-nil the step is recorded for BPTT;
// pass nil on inference paths.
func (l *LSTM) Step(x mat.Vector, st *LSTMState, cache *LSTMCache) mat.Vector {
	H := l.Hidden
	z := make(mat.Vector, 4*H)
	copy(z, l.Bp.W.Row(0))
	l.Wxp.W.MulVecAdd(z, x)
	l.Whp.W.MulVecAdd(z, st.H)

	i := make(mat.Vector, H)
	f := make(mat.Vector, H)
	g := make(mat.Vector, H)
	o := make(mat.Vector, H)
	c := make(mat.Vector, H)
	tc := make(mat.Vector, H)
	h := make(mat.Vector, H)
	for j := 0; j < H; j++ {
		i[j] = sigmoid(z[j])
		f[j] = sigmoid(z[H+j])
		g[j] = math.Tanh(z[2*H+j])
		o[j] = sigmoid(z[3*H+j])
		c[j] = f[j]*st.C[j] + i[j]*g[j]
		tc[j] = math.Tanh(c[j])
		h[j] = o[j] * tc[j]
	}
	if cache != nil {
		cache.steps = append(cache.steps, lstmStep{
			x: x, hPrev: st.H, cPrev: st.C,
			i: i, f: f, g: g, o: o, c: c, tanhC: tc, h: h,
		})
	}
	st.H, st.C = h, c
	return h
}

// ForwardSeq runs the layer over xs starting from a zero state and returns
// the hidden output at every timestep plus the BPTT tape.
func (l *LSTM) ForwardSeq(xs []mat.Vector) ([]mat.Vector, *LSTMCache) {
	st := l.NewState()
	cache := &LSTMCache{steps: make([]lstmStep, 0, len(xs))}
	hs := make([]mat.Vector, len(xs))
	for t, x := range xs {
		hs[t] = l.Step(x, st, cache)
	}
	return hs, cache
}

// BackwardSeq consumes dhs[t] = ∂loss/∂h_t for every timestep, accumulates
// the parameter gradients, and returns dxs[t] = ∂loss/∂x_t. dhs must have
// the same length as the forward sequence.
func (l *LSTM) BackwardSeq(cache *LSTMCache, dhs []mat.Vector) []mat.Vector {
	H := l.Hidden
	T := len(cache.steps)
	if len(dhs) != T {
		panic("nn: BackwardSeq gradient count mismatch")
	}
	dxs := make([]mat.Vector, T)
	dhNext := mat.NewVector(H) // gradient flowing from t+1 into h_t
	dcNext := mat.NewVector(H) // gradient flowing from t+1 into c_t
	dz := make(mat.Vector, 4*H)
	for t := T - 1; t >= 0; t-- {
		s := &cache.steps[t]
		dh := make(mat.Vector, H)
		for j := 0; j < H; j++ {
			dh[j] = dhs[t][j] + dhNext[j]
		}
		dcNew := make(mat.Vector, H)
		for j := 0; j < H; j++ {
			// h = o ⊙ tanh(c)
			do := dh[j] * s.tanhC[j]
			dc := dh[j]*s.o[j]*(1-s.tanhC[j]*s.tanhC[j]) + dcNext[j]
			di := dc * s.g[j]
			df := dc * s.cPrev[j]
			dg := dc * s.i[j]
			dcNew[j] = dc * s.f[j]
			// Gate pre-activation gradients.
			dz[j] = di * s.i[j] * (1 - s.i[j])
			dz[H+j] = df * s.f[j] * (1 - s.f[j])
			dz[2*H+j] = dg * (1 - s.g[j]*s.g[j])
			dz[3*H+j] = do * s.o[j] * (1 - s.o[j])
		}
		l.Wxp.Grad.AddOuter(1, dz, s.x)
		l.Whp.Grad.AddOuter(1, dz, s.hPrev)
		l.Bp.Grad.Row(0).AddInPlace(dz)

		dx := make(mat.Vector, l.In)
		l.Wxp.W.TransMulVecAdd(dx, dz)
		dxs[t] = dx

		dhNext.Zero()
		l.Whp.W.TransMulVecAdd(dhNext, dz)
		dcNext = dcNew
	}
	return dxs
}

// clone returns a deep copy of the layer (weights copied, gradients zeroed).
func (l *LSTM) clone() *LSTM {
	out := &LSTM{
		In:     l.In,
		Hidden: l.Hidden,
		Wxp:    newParam(l.Wxp.Name, l.Wxp.W.Rows, l.Wxp.W.Cols),
		Whp:    newParam(l.Whp.Name, l.Whp.W.Rows, l.Whp.W.Cols),
		Bp:     newParam(l.Bp.Name, l.Bp.W.Rows, l.Bp.W.Cols),
	}
	out.Wxp.W.CopyFrom(l.Wxp.W)
	out.Whp.W.CopyFrom(l.Whp.W)
	out.Bp.W.CopyFrom(l.Bp.W)
	out.Wxp.Frozen = l.Wxp.Frozen
	out.Whp.Frozen = l.Whp.Frozen
	out.Bp.Frozen = l.Bp.Frozen
	return out
}
