package nn

import (
	"math/rand"
	"testing"
)

func trainerWindows(n, vocab, length int, seed int64) [][]Token {
	rng := rand.New(rand.NewSource(seed))
	wins := make([][]Token, n)
	for i := range wins {
		w := make([]Token, length)
		for j := range w {
			w[j] = Token{ID: rng.Intn(vocab), Gap: rng.Float64() * 50}
		}
		wins[i] = w
	}
	return wins
}

func trainWith(batch, workers int) *SequenceModel {
	m := NewSequenceModel(SeqModelConfig{Vocab: 12, Hidden: []int{10, 8}, UseGap: true, Seed: 5})
	bt := NewBatchTrainer(m, NewAdam(0.003, 5), batch, workers)
	wins := trainerWindows(17, 12, 9, 99) // 17 windows → a final short batch
	for epoch := 0; epoch < 2; epoch++ {
		bt.Train(wins)
	}
	return m
}

func assertSameWeights(t *testing.T, a, b *SequenceModel, label string) {
	t.Helper()
	ap, bp := a.Params(), b.Params()
	for i := range ap {
		for j := range ap[i].W.Data {
			if ap[i].W.Data[j] != bp[i].W.Data[j] {
				t.Fatalf("%s: param %s weight[%d] diverged: %v vs %v",
					label, ap[i].Name, j, ap[i].W.Data[j], bp[i].W.Data[j])
			}
		}
	}
}

// The determinism contract: for a fixed window order and batch size, the
// trained weights are bit-identical regardless of the worker count.
func TestBatchTrainerWorkerCountInvariant(t *testing.T) {
	ref := trainWith(4, 1)
	assertSameWeights(t, ref, trainWith(4, 2), "workers 1 vs 2")
	assertSameWeights(t, ref, trainWith(4, 4), "workers 1 vs 4")
	assertSameWeights(t, ref, trainWith(4, 16), "workers 1 vs 16 (clamped)")
}

// With BatchWindows=1 the trainer must reproduce the seed semantics
// exactly: one optimizer step per window, applied directly to the model.
func TestBatchTrainerSingleWindowMatchesDirect(t *testing.T) {
	direct := NewSequenceModel(SeqModelConfig{Vocab: 12, Hidden: []int{10, 8}, UseGap: true, Seed: 5})
	opt := NewAdam(0.003, 5)
	wins := trainerWindows(17, 12, 9, 99)
	for epoch := 0; epoch < 2; epoch++ {
		for _, w := range wins {
			if direct.TrainWindow(w) > 0 {
				opt.Step(direct.Params())
			}
		}
	}
	assertSameWeights(t, direct, trainWith(1, 1), "direct vs trainer batch=1")
	// Worker count must not matter even at batch 1 (it is clamped).
	assertSameWeights(t, direct, trainWith(1, 8), "direct vs trainer batch=1 workers=8")
}

// Shadow clones must share weights with the primary and keep gradient
// accumulation fully private.
func TestShadowCloneSharesWeightsOwnsGrads(t *testing.T) {
	m := NewSequenceModel(SeqModelConfig{Vocab: 8, Hidden: []int{6}, UseGap: true, Seed: 2})
	sh := m.ShadowClone()
	mp, sp := m.Params(), sh.Params()
	for i := range mp {
		if &mp[i].W.Data[0] != &sp[i].W.Data[0] {
			t.Fatalf("param %s: shadow does not share weights", mp[i].Name)
		}
		if &mp[i].Grad.Data[0] == &sp[i].Grad.Data[0] {
			t.Fatalf("param %s: shadow shares gradient buffer", mp[i].Name)
		}
	}
	window := []Token{{ID: 0, Gap: 1}, {ID: 1, Gap: 2}, {ID: 2, Gap: 3}}
	sh.TrainWindow(window)
	for i := range mp {
		for _, g := range mp[i].Grad.Data {
			if g != 0 {
				t.Fatalf("param %s: shadow training leaked into primary grads", mp[i].Name)
			}
		}
	}
}
