package nn

import (
	"math"

	"nfvpredict/internal/mat"
)

// Param is one trainable weight matrix (biases are 1×N matrices) together
// with its gradient accumulator. Optimizers update W from Grad and then
// zero Grad. A frozen Param keeps accumulating gradients (they are cheap
// and simplify the layer code) but is skipped by optimizers — this is the
// mechanism behind the paper's transfer-learning adaptation, which
// fine-tunes only the top layers of a copied teacher model (§4.3).
type Param struct {
	// Name identifies the parameter for serialization and debugging,
	// e.g. "lstm0.Wx" or "out.b".
	Name string
	// W holds the weights.
	W *mat.Matrix
	// Grad accumulates ∂loss/∂W between optimizer steps.
	Grad *mat.Matrix
	// Frozen marks the parameter as excluded from optimizer updates.
	Frozen bool
}

func newParam(name string, rows, cols int) *Param {
	return &Param{
		Name: name,
		W:    mat.NewMatrix(rows, cols),
		Grad: mat.NewMatrix(rows, cols),
	}
}

// shadow returns a Param sharing p's weight matrix but owning a fresh
// gradient accumulator. Data-parallel trainers hand each worker a shadow
// so gradient writes never race; the shadows' accumulators are merged into
// the primary in a deterministic order before each optimizer step.
func (p *Param) shadow() *Param {
	return &Param{
		Name:   p.Name,
		W:      p.W,
		Grad:   mat.NewMatrix(p.W.Rows, p.W.Cols),
		Frozen: p.Frozen,
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// ZeroGrads clears every gradient in params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// GlobalGradNorm returns the L2 norm of all gradients in params viewed as
// one flat vector, the quantity used for global-norm gradient clipping.
func GlobalGradNorm(params []*Param) float64 {
	var s float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// ClipGradNorm rescales all gradients so their global norm is at most max.
// It returns the pre-clip norm. A non-positive max disables clipping.
func ClipGradNorm(params []*Param, max float64) float64 {
	norm := GlobalGradNorm(params)
	if max <= 0 || norm <= max || norm == 0 {
		return norm
	}
	scale := max / norm
	for _, p := range params {
		p.Grad.Scale(scale)
	}
	return norm
}
