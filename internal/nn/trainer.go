package nn

import "sync"

// BatchTrainer runs TrainWindow over a stream of windows, applying one
// optimizer step per batch of BatchWindows windows, optionally computing
// the per-window gradients on Workers goroutines.
//
// Determinism contract: for a fixed model, optimizer state, and window
// order, the resulting weights are bit-identical regardless of Workers.
// This holds because (a) each window's gradients accumulate into its own
// shadow buffer, (b) shadows are merged into the primary gradients in
// window index order, and (c) the batch size never depends on Workers.
// With BatchWindows == 1 (the default used by the detector) the trainer
// degenerates to exactly the seed semantics: one optimizer step per
// window, gradients computed directly on the primary model.
type BatchTrainer struct {
	model   *SequenceModel
	opt     Optimizer
	params  []*Param
	batch   int
	workers int
	// shadows[i] computes gradients for the i-th window of a batch;
	// lazily grown, reused across batches.
	shadows []*SequenceModel
	losses  []float64
}

// NewBatchTrainer wraps model and opt. batch is clamped to at least 1;
// workers is clamped to [1, batch] (more workers than windows per batch
// cannot help).
func NewBatchTrainer(model *SequenceModel, opt Optimizer, batch, workers int) *BatchTrainer {
	if batch < 1 {
		batch = 1
	}
	if workers < 1 {
		workers = 1
	}
	if workers > batch {
		workers = batch
	}
	return &BatchTrainer{
		model:   model,
		opt:     opt,
		params:  model.Params(),
		batch:   batch,
		workers: workers,
	}
}

// Train runs one pass over windows in order, stepping the optimizer after
// every batch (including a final short batch), and returns the total loss.
func (bt *BatchTrainer) Train(windows [][]Token) float64 {
	var total float64
	for start := 0; start < len(windows); start += bt.batch {
		end := start + bt.batch
		if end > len(windows) {
			end = len(windows)
		}
		total += bt.trainBatch(windows[start:end])
	}
	return total
}

// trainBatch accumulates gradients for one batch and applies one optimizer
// step (skipped if no window produced a loss, mirroring the seed's
// per-window skip of empty windows).
func (bt *BatchTrainer) trainBatch(batch [][]Token) float64 {
	if len(batch) == 1 && bt.workers <= 1 {
		// Fast path, and exactly the seed training semantics.
		loss := bt.model.TrainWindow(batch[0])
		if loss > 0 {
			bt.opt.Step(bt.params)
		}
		return loss
	}
	for len(bt.shadows) < len(batch) {
		bt.shadows = append(bt.shadows, bt.model.ShadowClone())
	}
	if cap(bt.losses) < len(batch) {
		bt.losses = make([]float64, len(batch))
	}
	bt.losses = bt.losses[:len(batch)]
	var wg sync.WaitGroup
	for w := 0; w < bt.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(batch); i += bt.workers {
				bt.losses[i] = bt.shadows[i].TrainWindow(batch[i])
			}
		}(w)
	}
	wg.Wait()
	// Merge shadow gradients in window index order so the floating-point
	// summation order is independent of the worker count.
	var total float64
	any := false
	for i := range batch {
		total += bt.losses[i]
		if bt.losses[i] > 0 {
			any = true
		}
		sp := bt.shadows[i].Params()
		for pi, p := range bt.params {
			p.Grad.AddScaled(1, sp[pi].Grad)
			sp[pi].Grad.Zero()
		}
	}
	if any {
		bt.opt.Step(bt.params)
	}
	return total
}
