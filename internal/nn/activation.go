// Package nn is a from-scratch neural-network library sized for the models
// in "Predictive Analysis in Network Function Virtualization" (IMC 2018):
// stacked LSTM next-template language models trained with BPTT and softmax
// cross-entropy, dense feed-forward autoencoders trained with MSE, SGD and
// Adam optimizers with gradient clipping, weight serialization, and the
// teacher→student transfer-learning mechanics (deep copy + layer freezing)
// the paper uses to recover from NFV system updates with one week of data.
//
// The package substitutes for the paper's Keras/TensorFlow stack (see
// DESIGN.md §2): no external dependencies, deterministic given a seed, and
// fast enough at the paper's scale (vocabulary ~10² templates, 2 LSTM
// layers + 1 dense layer) to run full 18-month walk-forward evaluations in
// test and benchmark time.
package nn

import "math"

// Activation identifies an element-wise activation function.
type Activation int

// Supported activations.
const (
	// Identity is the linear activation f(x) = x.
	Identity Activation = iota
	// Sigmoid is the logistic function 1/(1+e^-x).
	Sigmoid
	// Tanh is the hyperbolic tangent.
	Tanh
	// ReLU is max(0, x).
	ReLU
)

// String returns the activation's name.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case ReLU:
		return "relu"
	default:
		return "unknown"
	}
}

// Apply returns f(x) for the activation.
func (a Activation) Apply(x float64) float64 {
	switch a {
	case Sigmoid:
		return sigmoid(x)
	case Tanh:
		return math.Tanh(x)
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	default:
		return x
	}
}

// DerivFromOutput returns f'(x) expressed in terms of y = f(x). All four
// supported activations admit this form, which lets backprop reuse cached
// forward outputs instead of re-evaluating the activation.
func (a Activation) DerivFromOutput(y float64) float64 {
	switch a {
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	default:
		return 1
	}
}

// sigmoid computes the logistic function with guard rails against overflow
// in exp for very large |x|.
func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
