package nn

import (
	"math"

	"nfvpredict/internal/mat"
)

// Optimizer applies accumulated gradients to parameters. Implementations
// must skip frozen parameters and zero every gradient (frozen or not)
// after the step so the next accumulation starts clean.
type Optimizer interface {
	// Step applies one update from the accumulated gradients.
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional classical momentum and
// global-norm gradient clipping.
type SGD struct {
	// LR is the learning rate.
	LR float64
	// Momentum is the classical momentum coefficient; 0 disables it.
	Momentum float64
	// Clip is the max global gradient norm; ≤0 disables clipping.
	Clip float64

	velocity map[*Param]*mat.Matrix
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum, clip float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, Clip: clip, velocity: make(map[*Param]*mat.Matrix)}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	ClipGradNorm(params, s.Clip)
	for _, p := range params {
		if p.Frozen {
			p.ZeroGrad()
			continue
		}
		if s.Momentum > 0 {
			v := s.velocity[p]
			if v == nil {
				v = mat.NewMatrix(p.W.Rows, p.W.Cols)
				s.velocity[p] = v
			}
			for i := range v.Data {
				v.Data[i] = s.Momentum*v.Data[i] - s.LR*p.Grad.Data[i]
				p.W.Data[i] += v.Data[i]
			}
		} else {
			p.W.AddScaled(-s.LR, p.Grad)
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction and
// global-norm gradient clipping.
type Adam struct {
	// LR is the learning rate (paper-typical default 1e-3).
	LR float64
	// Beta1 and Beta2 are the first/second moment decay rates.
	Beta1, Beta2 float64
	// Eps is the denominator fuzz term.
	Eps float64
	// Clip is the max global gradient norm; ≤0 disables clipping.
	Clip float64

	t int
	m map[*Param]*mat.Matrix
	v map[*Param]*mat.Matrix
}

// NewAdam returns an Adam optimizer with the conventional β₁=0.9,
// β₂=0.999, ε=1e-8 defaults.
func NewAdam(lr, clip float64) *Adam {
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		Clip:  clip,
		m:     make(map[*Param]*mat.Matrix),
		v:     make(map[*Param]*mat.Matrix),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	ClipGradNorm(params, a.Clip)
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		if p.Frozen {
			p.ZeroGrad()
			continue
		}
		m := a.m[p]
		if m == nil {
			m = mat.NewMatrix(p.W.Rows, p.W.Cols)
			a.m[p] = m
		}
		v := a.v[p]
		if v == nil {
			v = mat.NewMatrix(p.W.Rows, p.W.Cols)
			a.v[p] = v
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i]
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mHat := m.Data[i] / c1
			vHat := v.Data[i] / c2
			p.W.Data[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// Reset clears the optimizer's moment estimates and step counter. Call it
// when re-targeting the optimizer at a different model, e.g. a transfer-
// learning student cloned from a teacher.
func (a *Adam) Reset() {
	a.t = 0
	a.m = make(map[*Param]*mat.Matrix)
	a.v = make(map[*Param]*mat.Matrix)
}
