// Quantized serving-path inference: a read-only reduced-precision mirror
// of a trained float64 SequenceModel, packed once and swapped in behind
// StepLogProbs/StepLogProbsBatch.
//
// The split mirrors the paper's offline/online architecture: training,
// checkpointing, and transfer-learning adaptation always run against the
// float64 master (bit-compatible with every existing test and checkpoint),
// while the serving hot path may run f32 or int8. The warning decision
// thresholds a log-probability, so serving precision only has to keep the
// warning sequence (f32) or the false-alarm rate (int8) within budget —
// the calibration tests in internal/ingest and the repo root pin both.
//
// Recurrent state stays in the float64 StreamState. Every quantized step
// narrows H/C on read and widens them on write; since float32→float64 is
// exact, the round trip reproduces the f32 recurrence bit for bit while
// checkpoints, snapshots, and the shard workers' batch gathers keep
// working untouched.
package nn

import (
	"fmt"
	"math"

	"nfvpredict/internal/mat"
)

// Precision selects the serving-path inference engine of a SequenceModel.
// It is a runtime knob, never serialized: bundles always store float64
// weights and the owner re-packs after load.
type Precision uint8

const (
	// PrecisionF64 is the reference engine: the float64 model itself.
	PrecisionF64 Precision = iota
	// PrecisionF32 packs weights to float32 and serves through the
	// multi-accumulator f32 kernels with polynomial activations.
	PrecisionF32
	// PrecisionInt8 additionally row-quantizes the dense Wx/Wh/output
	// GEMM weights to int8 with i32 accumulation; the sparse layer-0
	// input projection and all biases stay f32.
	PrecisionInt8
)

// String returns the flag-friendly name of the precision mode.
func (p Precision) String() string {
	switch p {
	case PrecisionF32:
		return "f32"
	case PrecisionInt8:
		return "int8"
	default:
		return "f64"
	}
}

// ParsePrecision parses a -precision flag value.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "float64", "":
		return PrecisionF64, nil
	case "f32", "float32":
		return PrecisionF32, nil
	case "int8", "i8":
		return PrecisionInt8, nil
	}
	return PrecisionF64, fmt.Errorf("nn: unknown precision %q (want f64, f32, or int8)", s)
}

// Fast float32 activations. The f64 path pays ~450 math.Exp/math.Tanh
// calls per step at the benchmark shape; these polynomial forms are the
// second half of the serving speedup. Error budgets are pinned by
// TestTanh32Bounded and friends: |tanh32−tanh| ≤ 2e-4, |sigmoid32−σ| ≤
// 1e-4, exp32 relative error ≤ 1e-5 — all far below the warning margin.

// tanh32Clamp is where the Padé form is abandoned for ±1; beyond it the
// true tanh is within 1.2e-4 of ±1 anyway.
const tanh32Clamp = 4.97

// tanh32 approximates tanh with the (7,6) Padé form
// x·(135135+17325x²+378x⁴+x⁶)/(135135+62370x²+3150x⁴+28x⁶), clamped to
// [-1, 1] so gate outputs never leave their mathematical range.
func tanh32(x float32) float32 {
	if x > tanh32Clamp {
		return 1
	}
	if x < -tanh32Clamp {
		return -1
	}
	x2 := x * x
	p := x * (135135 + x2*(17325+x2*(378+x2)))
	q := 135135 + x2*(62370+x2*(3150+28*x2))
	r := p / q
	if r > 1 {
		return 1
	}
	if r < -1 {
		return -1
	}
	return r
}

// sigmoid32 is σ(x) via the tanh identity σ(x) = ½(1 + tanh(x/2)).
func sigmoid32(x float32) float32 {
	return 0.5 + 0.5*tanh32(0.5*x)
}

const (
	log2e32 = 1.4426950408889634
	ln2f32  = 0.6931471805599453
)

// exp32 approximates e^x with the standard 2^n·e^r split: n = round(x/ln2)
// becomes the float exponent via a bit trick, and e^r (|r| ≤ ln2/2) is a
// degree-5 polynomial. Used by the quantized log-softmax, where inputs are
// ≤ 0 after max subtraction.
func exp32(x float32) float32 {
	if x < -87 {
		return 0
	}
	if x > 88 {
		x = 88
	}
	nf := float32(math.Floor(float64(x*log2e32) + 0.5))
	r := x - nf*ln2f32
	p := 1 + r*(1+r*(0.5+r*(1.0/6+r*(1.0/24+r*(1.0/120)))))
	return p * math.Float32frombits(uint32(int32(nf)+127)<<23)
}

// logSoftmax32Into computes float64 log-probabilities from float32 logits:
// a single-pass max, an exp32 sum, and one float64 math.Log for the
// normalizer. dst and logits must have the model's vocab length.
func logSoftmax32Into(dst mat.Vector, logits []float32) mat.Vector {
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float32
	for _, v := range logits {
		sum += exp32(v - maxv)
	}
	lse := float64(maxv) + math.Log(float64(sum))
	for i, v := range logits {
		dst[i] = float64(v) - lse
	}
	return dst
}

// quantLSTM is the packed serving form of one LSTM layer. wx is always
// present in f32 for layer 0, whose input product is a sparse one-hot
// column gather that an int8 layout cannot serve; at int8 the dense
// projections live only in wxq/whq and the f32 copies are dropped.
type quantLSTM struct {
	in, hidden int
	bias       []float32
	wx, wh     *mat.Matrix32
	wxq, whq   *mat.MatrixI8
}

// quantDense is the packed output layer (always Identity activation).
type quantDense struct {
	in, out int
	bias    []float32
	w       *mat.Matrix32
	wq      *mat.MatrixI8
}

// quantEngine is one immutable packed model. A SequenceModel holds it
// behind an atomic pointer: repacking after adaptation or invalidating
// after a weight mutation is a single pointer store, safe against
// concurrent scorers mid-step (they finish on the engine they loaded).
type quantEngine struct {
	prec  Precision
	lstms []quantLSTM
	out   quantDense
	bytes int // packed weight footprint
	maxW  int // widest input/hidden width, for scratch sizing
	maxH  int
	vocab int
}

// packEngine builds a fresh engine from the model's current float64
// weights.
func (m *SequenceModel) packEngine(p Precision) *quantEngine {
	e := &quantEngine{prec: p, vocab: m.cfg.Vocab}
	bias32 := func(row mat.Vector) []float32 {
		out := make([]float32, len(row))
		mat.Vector32(out).FromF64(row)
		e.bytes += 4 * len(out)
		return out
	}
	for li, l := range m.lstms {
		q := quantLSTM{in: l.In, hidden: l.Hidden, bias: bias32(l.Bp.W.Row(0))}
		if p == PrecisionInt8 && li > 0 {
			q.wxq = mat.QuantizeMatrixI8(l.Wxp.W)
			e.bytes += q.wxq.Bytes()
		} else {
			q.wx = mat.PackMatrix32(l.Wxp.W)
			e.bytes += q.wx.Bytes()
		}
		if p == PrecisionInt8 {
			q.whq = mat.QuantizeMatrixI8(l.Whp.W)
			e.bytes += q.whq.Bytes()
		} else {
			q.wh = mat.PackMatrix32(l.Whp.W)
			e.bytes += q.wh.Bytes()
		}
		e.lstms = append(e.lstms, q)
		if l.In > e.maxW {
			e.maxW = l.In
		}
		if l.Hidden > e.maxW {
			e.maxW = l.Hidden
		}
		if l.Hidden > e.maxH {
			e.maxH = l.Hidden
		}
	}
	e.out = quantDense{in: m.out.In, out: m.out.Out, bias: bias32(m.out.Bp.W.Row(0))}
	if p == PrecisionInt8 {
		e.out.wq = mat.QuantizeMatrixI8(m.out.Wp.W)
		e.bytes += e.out.wq.Bytes()
	} else {
		e.out.w = mat.PackMatrix32(m.out.Wp.W)
		e.bytes += e.out.w.Bytes()
	}
	return e
}

// SetPrecision selects the model's serving inference engine, packing the
// current float64 weights when p is a reduced precision. PrecisionF64
// drops any packed engine (a no-op fast path when none is attached).
// Safe to call on a model being scored concurrently: scorers atomically
// pick up the new engine at their next step.
func (m *SequenceModel) SetPrecision(p Precision) {
	if p == PrecisionF64 {
		m.quant.Store(nil)
		return
	}
	m.quant.Store(m.packEngine(p))
}

// Precision reports the currently packed serving precision.
func (m *SequenceModel) Precision() Precision {
	if e := m.quant.Load(); e != nil {
		return e.prec
	}
	return PrecisionF64
}

// PackedBytes returns the packed-weight footprint of the active quantized
// engine, or 0 when serving float64.
func (m *SequenceModel) PackedBytes() int {
	if e := m.quant.Load(); e != nil {
		return e.bytes
	}
	return 0
}

// InvalidatePacked drops any packed engine, reverting the model to the
// float64 reference path. Callers that mutate weights in place (training,
// adaptation) invalidate first so a stale quantized mirror can never
// serve, then re-pack when the mutation is complete.
func (m *SequenceModel) InvalidatePacked() { m.quant.Store(nil) }

// quantScratch is the per-StreamState buffer set of the quantized
// sequential step: f32 views of the recurrent state, the gate
// pre-activation vector, and the int8 staging buffers. Lazily built and
// keyed on the engine pointer, so scoring is allocation-free after the
// first step on a given engine.
type quantScratch struct {
	gen        *quantEngine
	x, h, c, z []float32
	logits     []float32
	xq, hq     []int8
	dots       []int32
}

// dotsLen is the integer-dot scratch size: enough rows for the widest
// gate block (4·maxH) or the output layer (vocab), whichever is larger.
func (e *quantEngine) dotsLen() int {
	n := 4 * e.maxH
	if e.vocab > n {
		n = e.vocab
	}
	return n
}

func (st *StreamState) ensureQuant(e *quantEngine) *quantScratch {
	qs := st.qs
	if qs != nil && qs.gen == e {
		return qs
	}
	qs = &quantScratch{
		gen:    e,
		x:      make([]float32, e.maxW),
		h:      make([]float32, e.maxH),
		c:      make([]float32, e.maxH),
		z:      make([]float32, 4*e.maxH),
		logits: make([]float32, e.vocab),
	}
	if e.prec == PrecisionInt8 {
		qs.xq = make([]int8, e.maxW)
		qs.hq = make([]int8, e.maxH)
		qs.dots = make([]int32, e.dotsLen())
	}
	st.qs = qs
	return qs
}

// stepQuant is the quantized StepLogProbs: per layer, the bias copy and
// both packed products build the full gate pre-activation vector z, then
// one fused epilogue pass applies sigmoid/tanh and folds the cell/hidden
// state in the same sweep over z — no separate activation buffers, no
// second traversal. The layer's new hidden output lands in qs.x, which is
// the next layer's input, and is widened back into the float64
// StreamState so snapshots and the f64 path stay coherent.
func (m *SequenceModel) stepQuant(e *quantEngine, tok Token, st *StreamState) mat.Vector {
	qs := st.ensureQuant(e)
	in := m.oneHotOf(tok)
	for li := range e.lstms {
		q := &e.lstms[li]
		ls := st.layers[li]
		H := q.hidden
		hPrev, c32 := qs.h[:H], qs.c[:H]
		for j := 0; j < H; j++ {
			hPrev[j] = float32(ls.H[j])
			c32[j] = float32(ls.C[j])
		}
		z := qs.z[:4*H]
		copy(z, q.bias)
		// Input product: sparse gather at layer 0, packed matvec above.
		if li == 0 {
			if in.gapCol >= 0 {
				q.wx.Col2GatherAdd32(z, in.id, 1, in.gapCol, float32(in.gap))
			} else {
				q.wx.ColGatherAdd32(z, in.id, 1)
			}
		} else {
			x32 := qs.x[:q.in]
			if q.wxq != nil {
				xs, xsum := mat.QuantizeVecI8(qs.xq[:q.in], x32)
				q.wxq.MulVecAddI8(z, qs.xq[:q.in], xs, xsum, qs.dots)
			} else {
				q.wx.MulVecAdd32(z, x32)
			}
		}
		// Recurrent product: one whole-gate-block matvec against h_{t-1}.
		if q.whq != nil {
			hq := qs.hq[:H]
			hs, hsum := mat.QuantizeVecI8(hq, hPrev)
			q.whq.MulVecAddI8(z, hq, hs, hsum, qs.dots)
		} else {
			q.wh.MulVecAdd32(z, hPrev)
		}
		// Fused epilogue: gate activations and the c/h fold in a single
		// pass over z.
		hNew := qs.x[:H]
		for j := 0; j < H; j++ {
			i, f := sigmoid32(z[j]), sigmoid32(z[H+j])
			g, o := tanh32(z[2*H+j]), sigmoid32(z[3*H+j])
			c := f*c32[j] + i*g
			hNew[j] = o * tanh32(c)
			ls.C[j] = float64(c)
			ls.H[j] = float64(hNew[j])
		}
	}
	// Output layer: packed matvec into f32 logits, then log-softmax.
	top := qs.x[:e.out.in]
	logits := qs.logits[:e.out.out]
	copy(logits, e.out.bias)
	if e.out.wq != nil {
		xs, xsum := mat.QuantizeVecI8(qs.xq[:e.out.in], top)
		e.out.wq.MulVecAddI8(logits, qs.xq[:e.out.in], xs, xsum, qs.dots)
	} else {
		e.out.w.MulVecAdd32(logits, top)
	}
	st.logp = ensureVec(st.logp, m.cfg.Vocab)
	return logSoftmax32Into(st.logp, logits)
}

// quantBatchScratch is the lane-major buffer set of the quantized batched
// step, lazily sized like BatchScratch's f64 matrices.
type quantBatchScratch struct {
	gen      *quantEngine
	z, hp, x *mat.Matrix32
	logits   *mat.Matrix32
	xq       []int8
	xscale   []float32
	xsum     []int32
	dots     []int32
}

// ensureMat32 is ensureMat for Matrix32.
func ensureMat32(m *mat.Matrix32, rows, cols int) *mat.Matrix32 {
	if m == nil || cap(m.Data) < rows*cols {
		return mat.NewMatrix32(rows, cols)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:rows*cols]
	return m
}

// quantizeLanes quantizes every row of x into qb's int8 staging buffer,
// returning the lane-major codes plus per-lane scales and code sums.
func (qb *quantBatchScratch) quantizeLanes(x *mat.Matrix32) ([]int8, []float32, []int32) {
	B, n := x.Rows, x.Cols
	if cap(qb.xq) < B*n {
		qb.xq = make([]int8, B*n)
	}
	if cap(qb.xscale) < B {
		qb.xscale = make([]float32, B)
		qb.xsum = make([]int32, B)
	}
	qb.xq, qb.xscale, qb.xsum = qb.xq[:B*n], qb.xscale[:B], qb.xsum[:B]
	for b := 0; b < B; b++ {
		qb.xscale[b], qb.xsum[b] = mat.QuantizeVecI8(qb.xq[b*n:(b+1)*n], x.Row(b))
	}
	return qb.xq, qb.xscale, qb.xsum
}

// stepQuantBatch is the quantized StepLogProbsBatch: per layer, one packed
// GEMM per projection (f32 MulMatAdd32 or int8 MulMatAddI8) followed by a
// per-lane gate fold. Lane arithmetic replays stepQuant exactly — the
// float64 state round-trips through float32 losslessly and every kernel
// shares the sequential path's summation schedule — so batched quantized
// scoring is bit-identical to sequential quantized scoring, the same
// invariant the f64 batch path provides.
func (m *SequenceModel) stepQuantBatch(e *quantEngine, toks []Token, sts []*StreamState, sc *BatchScratch) []mat.Vector {
	B := len(toks)
	if len(sts) != B {
		panic("nn: StepLogProbsBatch lane count mismatch")
	}
	if cap(sc.out) < B {
		sc.out = make([]mat.Vector, B)
	}
	sc.out = sc.out[:B]
	if B == 0 {
		return sc.out
	}
	if cap(sc.ins) < B {
		sc.ins = make([]oneHot, B)
	}
	sc.ins = sc.ins[:B]
	for b, tok := range toks {
		sc.ins[b] = m.oneHotOf(tok)
	}
	qb := sc.q
	if qb == nil || qb.gen != e {
		qb = &quantBatchScratch{gen: e}
		if e.prec == PrecisionInt8 {
			qb.dots = make([]int32, e.dotsLen())
		}
		sc.q = qb
	}
	for li := range e.lstms {
		q := &e.lstms[li]
		H := q.hidden
		qb.z = ensureMat32(qb.z, B, 4*H)
		for b := 0; b < B; b++ {
			copy(qb.z.Row(b), q.bias)
		}
		if li == 0 {
			for b := 0; b < B; b++ {
				zr := qb.z.Row(b)
				if in := sc.ins[b]; in.gapCol >= 0 {
					q.wx.Col2GatherAdd32(zr, in.id, 1, in.gapCol, float32(in.gap))
				} else {
					q.wx.ColGatherAdd32(zr, in.id, 1)
				}
			}
		} else {
			qb.x = ensureMat32(qb.x, B, q.in)
			for b := 0; b < B; b++ {
				hprev := sts[b].layers[li-1].H
				xr := qb.x.Row(b)
				for j := range xr {
					xr[j] = float32(hprev[j])
				}
			}
			if q.wxq != nil {
				xq, xs, xsum := qb.quantizeLanes(qb.x)
				q.wxq.MulMatAddI8(qb.z, xq, xs, xsum, qb.dots)
			} else {
				q.wx.MulMatAdd32(qb.z, qb.x)
			}
		}
		qb.hp = ensureMat32(qb.hp, B, H)
		for b := 0; b < B; b++ {
			hprev := sts[b].layers[li].H
			hr := qb.hp.Row(b)
			for j := range hr {
				hr[j] = float32(hprev[j])
			}
		}
		if q.whq != nil {
			hq, hs, hsum := qb.quantizeLanes(qb.hp)
			q.whq.MulMatAddI8(qb.z, hq, hs, hsum, qb.dots)
		} else {
			q.wh.MulMatAdd32(qb.z, qb.hp)
		}
		for b := 0; b < B; b++ {
			ls := sts[b].layers[li]
			zr := qb.z.Row(b)
			for j := 0; j < H; j++ {
				i, f := sigmoid32(zr[j]), sigmoid32(zr[H+j])
				g, o := tanh32(zr[2*H+j]), sigmoid32(zr[3*H+j])
				c := f*float32(ls.C[j]) + i*g
				ls.C[j] = float64(c)
				ls.H[j] = float64(o * tanh32(c))
			}
		}
	}
	top := len(m.lstms) - 1
	qb.x = ensureMat32(qb.x, B, e.out.in)
	for b := 0; b < B; b++ {
		hprev := sts[b].layers[top].H
		xr := qb.x.Row(b)
		for j := range xr {
			xr[j] = float32(hprev[j])
		}
	}
	qb.logits = ensureMat32(qb.logits, B, e.out.out)
	for b := 0; b < B; b++ {
		copy(qb.logits.Row(b), e.out.bias)
	}
	if e.out.wq != nil {
		xq, xs, xsum := qb.quantizeLanes(qb.x)
		e.out.wq.MulMatAddI8(qb.logits, xq, xs, xsum, qb.dots)
	} else {
		e.out.w.MulMatAdd32(qb.logits, qb.x)
	}
	for b := 0; b < B; b++ {
		st := sts[b]
		st.logp = ensureVec(st.logp, m.cfg.Vocab)
		sc.out[b] = logSoftmax32Into(st.logp, qb.logits.Row(b))
	}
	return sc.out
}
