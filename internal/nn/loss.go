package nn

import (
	"math"

	"nfvpredict/internal/mat"
)

// SoftmaxCrossEntropy returns the categorical cross-entropy loss of logits
// against the integer target class, together with ∂loss/∂logits. The loss
// and gradient are computed jointly (softmax folded into the loss) for the
// standard numerically stable gradient p − onehot(target).
func SoftmaxCrossEntropy(logits mat.Vector, target int) (loss float64, dlogits mat.Vector) {
	if target < 0 || target >= len(logits) {
		panic("nn: SoftmaxCrossEntropy target out of range")
	}
	lse := mat.LogSumExp(logits)
	loss = lse - logits[target]
	dlogits = make(mat.Vector, len(logits))
	m := logits.Max()
	var sum float64
	for i, x := range logits {
		e := math.Exp(x - m)
		dlogits[i] = e
		sum += e
	}
	for i := range dlogits {
		dlogits[i] /= sum
	}
	dlogits[target] -= 1
	return loss, dlogits
}

// LogSoftmax returns log(softmax(logits)) computed stably.
func LogSoftmax(logits mat.Vector) mat.Vector {
	lse := mat.LogSumExp(logits)
	out := make(mat.Vector, len(logits))
	for i, x := range logits {
		out[i] = x - lse
	}
	return out
}

// MSE returns the mean squared error ½·mean((y−target)²) and ∂loss/∂y.
// The ½ keeps the gradient free of a factor of 2, matching the classic
// autoencoder reconstruction objective.
func MSE(y, target mat.Vector) (loss float64, dy mat.Vector) {
	if len(y) != len(target) {
		panic("nn: MSE length mismatch")
	}
	dy = make(mat.Vector, len(y))
	n := float64(len(y))
	for i := range y {
		d := y[i] - target[i]
		loss += d * d
		dy[i] = d / n
	}
	return loss / (2 * n), dy
}
