package nn

import (
	"math"

	"nfvpredict/internal/mat"
)

// SoftmaxCrossEntropy returns the categorical cross-entropy loss of logits
// against the integer target class, together with ∂loss/∂logits. The loss
// and gradient are computed jointly (softmax folded into the loss) for the
// standard numerically stable gradient p − onehot(target).
func SoftmaxCrossEntropy(logits mat.Vector, target int) (loss float64, dlogits mat.Vector) {
	dlogits = make(mat.Vector, len(logits))
	loss = SoftmaxCrossEntropyInto(dlogits, logits, target)
	return loss, dlogits
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing the gradient into
// dst (length len(logits)), avoiding the per-timestep allocation on the
// training hot path.
func SoftmaxCrossEntropyInto(dst, logits mat.Vector, target int) (loss float64) {
	if target < 0 || target >= len(logits) {
		panic("nn: SoftmaxCrossEntropy target out of range")
	}
	lse := mat.LogSumExp(logits)
	loss = lse - logits[target]
	m := logits.Max()
	var sum float64
	for i, x := range logits {
		e := math.Exp(x - m)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
	dst[target] -= 1
	return loss
}

// LogSoftmax returns log(softmax(logits)) computed stably.
func LogSoftmax(logits mat.Vector) mat.Vector {
	return LogSoftmaxInto(make(mat.Vector, len(logits)), logits)
}

// LogSoftmaxInto is LogSoftmax writing into dst (length len(logits)); dst
// may alias logits.
func LogSoftmaxInto(dst, logits mat.Vector) mat.Vector {
	lse := mat.LogSumExp(logits)
	for i, x := range logits {
		dst[i] = x - lse
	}
	return dst
}

// MSE returns the mean squared error ½·mean((y−target)²) and ∂loss/∂y.
// The ½ keeps the gradient free of a factor of 2, matching the classic
// autoencoder reconstruction objective.
func MSE(y, target mat.Vector) (loss float64, dy mat.Vector) {
	dy = make(mat.Vector, len(y))
	return MSEInto(dy, y, target), dy
}

// MSEInto is MSE writing the gradient into dst (length len(y)).
func MSEInto(dst, y, target mat.Vector) (loss float64) {
	if len(y) != len(target) {
		panic("nn: MSE length mismatch")
	}
	n := float64(len(y))
	for i := range y {
		d := y[i] - target[i]
		loss += d * d
		dst[i] = d / n
	}
	return loss / (2 * n)
}
