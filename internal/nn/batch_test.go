package nn

import (
	"math"
	"math/rand"
	"testing"

	"nfvpredict/internal/mat"
)

// batchTestModel builds a two-layer model shaped like the serving detector.
func batchTestModel() *SequenceModel {
	return NewSequenceModel(SeqModelConfig{Vocab: 20, Hidden: []int{16, 12}, UseGap: true, Seed: 3})
}

// randToks produces a deterministic token stream (IDs within and beyond the
// vocab, varying gaps) for batch-equivalence tests.
func randToks(rng *rand.Rand, n, vocab int) []Token {
	toks := make([]Token, n)
	for i := range toks {
		toks[i] = Token{ID: rng.Intn(vocab + 2), Gap: rng.Float64() * 120}
	}
	return toks
}

func bitsEqual(t *testing.T, what string, a, b mat.Vector) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s length %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s[%d]: %v != %v", what, i, a[i], b[i])
		}
	}
}

// TestStepLogProbsBatchBitIdentical is the batched-inference contract: for
// batch sizes 1, 3, and 8, stepping B independent streams through
// StepLogProbsBatch for many timesteps must produce, at every step, the
// exact bits a sequential StepLogProbs produces on twin streams — for the
// log-probs and for the recurrent state they leave behind.
func TestStepLogProbsBatchBitIdentical(t *testing.T) {
	m := batchTestModel()
	for _, B := range []int{1, 3, 8} {
		rng := rand.New(rand.NewSource(int64(B)))
		seq := make([]*StreamState, B)
		bat := make([]*StreamState, B)
		for b := 0; b < B; b++ {
			seq[b] = m.NewStreamState()
			bat[b] = m.NewStreamState()
		}
		var sc BatchScratch
		toks := make([]Token, B)
		for step := 0; step < 40; step++ {
			for b := 0; b < B; b++ {
				toks[b] = randToks(rng, 1, m.cfg.Vocab)[0]
			}
			lps := m.StepLogProbsBatch(toks, bat, &sc)
			for b := 0; b < B; b++ {
				want := m.StepLogProbs(toks[b], seq[b])
				bitsEqual(t, "logp", lps[b], want)
				for li := range seq[b].layers {
					bitsEqual(t, "H", bat[b].layers[li].H, seq[b].layers[li].H)
					bitsEqual(t, "C", bat[b].layers[li].C, seq[b].layers[li].C)
				}
			}
		}
	}
}

// TestStepLogProbsBatchAllocFree pins the hot-path allocation budget: after
// warm-up, a batched step allocates nothing.
func TestStepLogProbsBatchAllocFree(t *testing.T) {
	m := batchTestModel()
	const B = 8
	sts := make([]*StreamState, B)
	toks := make([]Token, B)
	for b := 0; b < B; b++ {
		sts[b] = m.NewStreamState()
		toks[b] = Token{ID: b % m.cfg.Vocab, Gap: 30}
	}
	var sc BatchScratch
	m.StepLogProbsBatch(toks, sts, &sc) // warm the scratch
	if n := testing.AllocsPerRun(50, func() {
		m.StepLogProbsBatch(toks, sts, &sc)
	}); n != 0 {
		t.Fatalf("batched step allocates %v per run, want 0", n)
	}
}

// TestInferBatchIntoBitIdentical checks the dense batched forward against
// per-lane InferInto, with a non-identity activation to cover the apply
// loop.
func TestInferBatchIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, act := range []Activation{Identity, Tanh} {
		d := NewDense("t", 12, 7, act, rng)
		const B = 5
		x := mat.NewMatrix(B, 12)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		dst := mat.NewMatrix(B, 7)
		d.InferBatchInto(dst, x)
		for b := 0; b < B; b++ {
			want := d.Infer(x.Row(b))
			bitsEqual(t, "dense", dst.Row(b), want)
		}
	}
}

// BenchmarkStepLogProbsSequential8 scores 8 streams one step each with the
// per-stream path; pair with BenchmarkStepLogProbsBatch8 for the batching
// win at the serving model's default shape.
func BenchmarkStepLogProbsSequential8(b *testing.B) {
	m := NewSequenceModel(SeqModelConfig{Vocab: 80, Hidden: []int{32, 32}, UseGap: true, Seed: 1})
	const B = 8
	sts := make([]*StreamState, B)
	toks := make([]Token, B)
	for i := 0; i < B; i++ {
		sts[i] = m.NewStreamState()
		toks[i] = Token{ID: i, Gap: 30}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < B; k++ {
			m.StepLogProbs(toks[k], sts[k])
		}
	}
}

// BenchmarkStepLogProbsBatch8 is the batched counterpart: one GEMM per
// gate across 8 lanes.
func BenchmarkStepLogProbsBatch8(b *testing.B) {
	m := NewSequenceModel(SeqModelConfig{Vocab: 80, Hidden: []int{32, 32}, UseGap: true, Seed: 1})
	const B = 8
	sts := make([]*StreamState, B)
	toks := make([]Token, B)
	for i := 0; i < B; i++ {
		sts[i] = m.NewStreamState()
		toks[i] = Token{ID: i, Gap: 30}
	}
	var sc BatchScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.StepLogProbsBatch(toks, sts, &sc)
	}
}
