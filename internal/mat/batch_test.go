package mat

import (
	"math"
	"math/rand"
	"testing"
)

// naiveMulVecAdd is the reference rolled kernel the unrolled fast paths
// must reproduce bit for bit.
func naiveMulVecAdd(m *Matrix, dst, v Vector) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		dst[i] += s
	}
}

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randVector(rng *rand.Rand, n int) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestMulVecAddUnrollBitIdentical exercises every tail length of the
// 4x-unrolled loop (cols 1..9 plus larger shapes) against the rolled
// reference. Bit identity, not tolerance: the unroll must not change the
// summation order.
func TestMulVecAddUnrollBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, cols := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 33, 128} {
		m := randMatrix(rng, 17, cols)
		v := randVector(rng, cols)
		got := randVector(rng, 17) // nonzero dst: the += must also agree
		want := got.Clone()
		m.MulVecAdd(got, v)
		naiveMulVecAdd(m, want, v)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("cols=%d row %d: %v != %v", cols, i, got[i], want[i])
			}
		}
	}
}

// TestTransMulVecAddUnrollBitIdentical checks the transposed kernel against
// a rolled reference across tail lengths, including zero entries in v
// (which the kernel skips).
func TestTransMulVecAddUnrollBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, cols := range []int{1, 3, 4, 7, 8, 33} {
		m := randMatrix(rng, 12, cols)
		v := randVector(rng, 12)
		v[3], v[7] = 0, 0
		got := randVector(rng, cols)
		want := got.Clone()
		m.TransMulVecAdd(got, v)
		for i := 0; i < m.Rows; i++ {
			a := v[i]
			if a == 0 {
				continue
			}
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			for j, x := range row {
				want[j] += a * x
			}
		}
		for j := range got {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("cols=%d col %d: %v != %v", cols, j, got[j], want[j])
			}
		}
	}
}

// TestMulMatAddBitIdenticalToMulVecAdd is the batched-kernel contract: one
// MulMatAdd over B lanes must equal B independent MulVecAdd calls bit for
// bit, for batch sizes spanning the shard worker's range.
func TestMulMatAddBitIdenticalToMulVecAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, B := range []int{1, 3, 8, 16} {
		w := randMatrix(rng, 24, 33)
		x := randMatrix(rng, B, 33)
		dst := randMatrix(rng, B, 24)
		want := dst.Clone()
		w.MulMatAdd(dst, x)
		for b := 0; b < B; b++ {
			w.MulVecAdd(want.Row(b), x.Row(b))
		}
		for i := range dst.Data {
			if math.Float64bits(dst.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("B=%d element %d: %v != %v", B, i, dst.Data[i], want.Data[i])
			}
		}
	}
}

// TestMulMatAddShapePanics pins the shape contract: mismatched lanes or
// widths must panic, not corrupt.
func TestMulMatAddShapePanics(t *testing.T) {
	w := NewMatrix(4, 5)
	for _, tc := range []struct {
		name   string
		dst, x *Matrix
	}{
		{"input cols", NewMatrix(2, 4), NewMatrix(2, 6)},
		{"output cols", NewMatrix(2, 3), NewMatrix(2, 5)},
		{"lanes", NewMatrix(3, 4), NewMatrix(2, 5)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s mismatch did not panic", tc.name)
				}
			}()
			w.MulMatAdd(tc.dst, tc.x)
		}()
	}
}

// BenchmarkMulVecAdd measures the unrolled single-lane kernel at the
// serving model's gate shape (4H×In with H=32, vocab 80 + gap).
func BenchmarkMulVecAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 128, 81)
	v := randVector(rng, 81)
	dst := NewVector(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MulVecAdd(dst, v)
	}
}

// BenchmarkMulMatAdd8 measures the batched kernel at 8 lanes against the
// same weights; compare ns/op per lane with BenchmarkMulVecAdd to see the
// cache win of reusing each weight row across the batch.
func BenchmarkMulMatAdd8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 128, 81)
	x := randMatrix(rng, 8, 81)
	dst := NewMatrix(8, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MulMatAdd(dst, x)
	}
}
