package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	sum := v.Add(w)
	want := Vector{5, 7, 9}
	for i := range want {
		if sum[i] != want[i] {
			t.Fatalf("Add: got %v want %v", sum, want)
		}
	}
	diff := w.Sub(v)
	for i := range diff {
		if diff[i] != 3 {
			t.Fatalf("Sub: got %v", diff)
		}
	}
}

func TestVectorAddInPlace(t *testing.T) {
	v := Vector{1, 2}
	v.AddInPlace(Vector{10, 20})
	if v[0] != 11 || v[1] != 22 {
		t.Fatalf("AddInPlace: got %v", v)
	}
}

func TestVectorScaleAxpy(t *testing.T) {
	v := Vector{1, -2, 3}
	s := v.Scale(2)
	if s[0] != 2 || s[1] != -4 || s[2] != 6 {
		t.Fatalf("Scale: got %v", s)
	}
	y := Vector{1, 1, 1}
	y.Axpy(3, v)
	if y[0] != 4 || y[1] != -5 || y[2] != 10 {
		t.Fatalf("Axpy: got %v", y)
	}
}

func TestVectorDotNorm(t *testing.T) {
	v := Vector{3, 4}
	if v.Dot(v) != 25 {
		t.Fatalf("Dot: got %v", v.Dot(v))
	}
	if v.Norm2() != 5 {
		t.Fatalf("Norm2: got %v", v.Norm2())
	}
	if v.Norm1() != 7 {
		t.Fatalf("Norm1: got %v", v.Norm1())
	}
}

func TestVectorHadamard(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{2, 3, 4}
	h := v.Hadamard(w)
	if h[0] != 2 || h[1] != 6 || h[2] != 12 {
		t.Fatalf("Hadamard: got %v", h)
	}
	v.HadamardInPlace(w)
	if v[2] != 12 {
		t.Fatalf("HadamardInPlace: got %v", v)
	}
}

func TestVectorArgMax(t *testing.T) {
	v := Vector{-1, 5, 3, 5}
	if v.ArgMax() != 1 {
		t.Fatalf("ArgMax should return first max index, got %d", v.ArgMax())
	}
	if v.Max() != 5 {
		t.Fatalf("Max: got %v", v.Max())
	}
}

func TestVectorArgMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Vector{}.ArgMax()
}

func TestVectorMapSumFill(t *testing.T) {
	v := Vector{1, 2, 3}
	sq := v.Map(func(x float64) float64 { return x * x })
	if sq.Sum() != 14 {
		t.Fatalf("Map/Sum: got %v", sq.Sum())
	}
	v.Fill(7)
	if v.Sum() != 21 {
		t.Fatalf("Fill: got %v", v)
	}
	v.Zero()
	if v.Sum() != 0 {
		t.Fatalf("Zero: got %v", v)
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone must not share backing array")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		v := make(Vector, len(raw))
		for i, x := range raw {
			// Clamp to a sane range; quick can generate huge values.
			v[i] = math.Mod(x, 50)
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
		}
		p := Softmax(v)
		var sum float64
		for _, x := range p {
			if x < 0 || x > 1 || math.IsNaN(x) {
				return false
			}
			sum += x
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	v := Vector{1, 2, 3}
	p1 := Softmax(v)
	p2 := Softmax(v.Map(func(x float64) float64 { return x + 1000 }))
	for i := range p1 {
		if !almostEqual(p1[i], p2[i], 1e-9) {
			t.Fatalf("softmax not shift-invariant: %v vs %v", p1, p2)
		}
	}
}

func TestSoftmaxExtremeValues(t *testing.T) {
	p := Softmax(Vector{-1e300, 0, 1e300})
	if math.IsNaN(p[0]) || math.IsNaN(p[2]) {
		t.Fatalf("softmax produced NaN: %v", p)
	}
	if !almostEqual(p[2], 1, 1e-9) {
		t.Fatalf("expected all mass on max element, got %v", p)
	}
}

func TestLogSumExp(t *testing.T) {
	v := Vector{math.Log(1), math.Log(2), math.Log(3)}
	if !almostEqual(LogSumExp(v), math.Log(6), 1e-9) {
		t.Fatalf("LogSumExp: got %v want %v", LogSumExp(v), math.Log(6))
	}
	if !math.IsInf(LogSumExp(Vector{}), -1) {
		t.Fatal("LogSumExp of empty should be -Inf")
	}
}

func TestCosineSimilarity(t *testing.T) {
	if !almostEqual(CosineSimilarity(Vector{1, 0}, Vector{1, 0}), 1, 1e-12) {
		t.Fatal("identical vectors should have cosine 1")
	}
	if !almostEqual(CosineSimilarity(Vector{1, 0}, Vector{0, 1}), 0, 1e-12) {
		t.Fatal("orthogonal vectors should have cosine 0")
	}
	if !almostEqual(CosineSimilarity(Vector{1, 1}, Vector{-1, -1}), -1, 1e-12) {
		t.Fatal("opposite vectors should have cosine -1")
	}
	if CosineSimilarity(Vector{0, 0}, Vector{1, 2}) != 0 {
		t.Fatal("zero vector should yield cosine 0")
	}
}

func TestCosineSimilarityBounds(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 || n > 32 {
			return true
		}
		v := make(Vector, n)
		w := make(Vector, n)
		for i := 0; i < n; i++ {
			v[i] = math.Mod(a[i], 1e6)
			w[i] = math.Mod(b[i], 1e6)
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
			if math.IsNaN(w[i]) {
				w[i] = 0
			}
		}
		c := CosineSimilarity(v, w)
		return c >= -1-1e-9 && c <= 1+1e-9 && !math.IsNaN(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 {
		t.Fatalf("At/Set broken: %v", m.Data)
	}
	r := m.Row(1)
	r[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row must alias backing array")
	}
	c := m.Clone()
	c.Set(0, 0, 100)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows != 2 || m.Cols != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows: %+v", m)
	}
	empty := FromRows(nil)
	if empty.Rows != 0 || empty.Cols != 0 {
		t.Fatal("FromRows(nil) should be 0x0")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	out := m.MulVec(Vector{1, 1})
	want := Vector{3, 7, 11}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("MulVec: got %v want %v", out, want)
		}
	}
}

func TestMulVecAdd(t *testing.T) {
	m := FromRows([][]float64{{1, 0}, {0, 1}})
	dst := Vector{10, 20}
	m.MulVecAdd(dst, Vector{1, 2})
	if dst[0] != 11 || dst[1] != 22 {
		t.Fatalf("MulVecAdd: got %v", dst)
	}
}

// The sparse one-hot kernels must agree with MulVecAdd on a materialized
// one-hot vector — bit for bit, since the training path relies on exact
// equivalence between the sparse and dense forms.
func TestColGatherAddMatchesOneHotMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(8), 2+rng.Intn(8)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		bias := NewVector(rows)
		for i := range bias {
			bias[i] = rng.NormFloat64()
		}
		j1, j2 := rng.Intn(cols), rng.Intn(cols)
		for j2 == j1 {
			j2 = rng.Intn(cols)
		}
		a2 := rng.NormFloat64()

		x := NewVector(cols)
		x[j1] = 1
		want := bias.Clone()
		m.MulVecAdd(want, x)
		got := bias.Clone()
		m.ColGatherAdd(got, j1, 1)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ColGatherAdd: got %v want %v", got, want)
			}
		}

		x[j2] = a2
		want = bias.Clone()
		m.MulVecAdd(want, x)
		got = bias.Clone()
		m.Col2GatherAdd(got, j1, 1, j2, a2)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Col2GatherAdd: got %v want %v", got, want)
			}
		}
	}
}

func TestAddOuterOneHotMatchesAddOuter(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows, cols := 5, 7
	a, b := NewMatrix(rows, cols), NewMatrix(rows, cols)
	u := NewVector(rows)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	j := 3
	onehot := NewVector(cols)
	onehot[j] = 1
	a.AddOuter(2.5, u, onehot)
	b.AddOuterOneHot(2.5, u, j)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("AddOuterOneHot: %v vs %v", a.Data, b.Data)
		}
	}
}

func TestTransMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	out := m.TransMulVec(Vector{1, 1, 1})
	if out[0] != 9 || out[1] != 12 {
		t.Fatalf("TransMulVec: got %v", out)
	}
	dst := Vector{1, 1}
	m.TransMulVecAdd(dst, Vector{1, 0, 0})
	if dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("TransMulVecAdd: got %v", dst)
	}
}

// TransMulVec must agree with explicitly transposing then multiplying.
func TestTransMulVecMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMatrix(rows, cols)
		m.XavierInit(rng)
		v := NewVector(rows)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		got := m.TransMulVec(v)
		// Explicit transpose.
		tr := NewMatrix(cols, rows)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				tr.Set(j, i, m.At(i, j))
			}
		}
		want := tr.MulVec(v)
		for j := range want {
			if !almostEqual(got[j], want[j], 1e-12) {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuter(2, Vector{1, 3}, Vector{4, 5})
	// m[i][j] = 2*u[i]*v[j]
	if m.At(0, 0) != 8 || m.At(0, 1) != 10 || m.At(1, 0) != 24 || m.At(1, 1) != 30 {
		t.Fatalf("AddOuter: %v", m.Data)
	}
}

func TestAddScaledAndScale(t *testing.T) {
	m := FromRows([][]float64{{1, 1}})
	w := FromRows([][]float64{{2, 4}})
	m.AddScaled(0.5, w)
	if m.At(0, 0) != 2 || m.At(0, 1) != 3 {
		t.Fatalf("AddScaled: %v", m.Data)
	}
	m.Scale(2)
	if m.At(0, 0) != 4 || m.At(0, 1) != 6 {
		t.Fatalf("Scale: %v", m.Data)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 4}})
	if !almostEqual(m.FrobeniusNorm(), 5, 1e-12) {
		t.Fatalf("Frobenius: got %v", m.FrobeniusNorm())
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(10, 20)
	m.XavierInit(rng)
	r := math.Sqrt(6.0 / 30.0)
	var nonZero int
	for _, x := range m.Data {
		if math.Abs(x) > r {
			t.Fatalf("Xavier value %v outside ±%v", x, r)
		}
		if x != 0 {
			nonZero++
		}
	}
	if nonZero < len(m.Data)/2 {
		t.Fatal("Xavier init suspiciously sparse")
	}
}

func TestHeInitVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMatrix(200, 100)
	m.HeInit(rng)
	var sum, sumSq float64
	for _, x := range m.Data {
		sum += x
		sumSq += x * x
	}
	n := float64(len(m.Data))
	mean := sum / n
	variance := sumSq/n - mean*mean
	want := 2.0 / 100.0
	if math.Abs(variance-want) > want*0.2 {
		t.Fatalf("He variance %v, want ~%v", variance, want)
	}
}

func TestMatrixEqual(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1, 2.0000001}})
	if !a.Equal(b, 1e-3) {
		t.Fatal("should be equal within tol")
	}
	if a.Equal(b, 1e-12) {
		t.Fatal("should differ at tight tol")
	}
	c := NewMatrix(2, 1)
	if a.Equal(c, 1) {
		t.Fatal("shape mismatch should not be equal")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	cases := []func(){
		func() { Vector{1}.Add(Vector{1, 2}) },
		func() { Vector{1}.Dot(Vector{1, 2}) },
		func() { NewMatrix(2, 2).MulVec(Vector{1}) },
		func() { NewMatrix(2, 2).TransMulVec(Vector{1}) },
		func() { NewMatrix(2, 2).AddOuter(1, Vector{1}, Vector{1, 2}) },
		func() { NewMatrix(2, 2).AddScaled(1, NewMatrix(1, 2)) },
		func() { NewMatrix(2, 2).CopyFrom(NewMatrix(2, 3)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDotCommutes(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 || n > 32 {
			return true
		}
		v, w := make(Vector, n), make(Vector, n)
		for i := 0; i < n; i++ {
			v[i], w[i] = math.Mod(a[i], 1e3), math.Mod(b[i], 1e3)
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
			if math.IsNaN(w[i]) {
				w[i] = 0
			}
		}
		return almostEqual(v.Dot(w), w.Dot(v), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(256, 256)
	m.XavierInit(rng)
	v := NewVector(256)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	dst := NewVector(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Zero()
		m.MulVecAdd(dst, v)
	}
}

func BenchmarkSoftmax(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := NewVector(512)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Softmax(v)
	}
}
