package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randMatrix32Pair returns a random f64 matrix and its packed f32 form.
func randMatrix32Pair(rng *rand.Rand, rows, cols int, scale float64) (*Matrix, *Matrix32) {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = scale * (rng.Float64()*2 - 1)
	}
	return m, PackMatrix32(m)
}

func randVec32Pair(rng *rand.Rand, n int, scale float64) (Vector, Vector32) {
	v := NewVector(n)
	for i := range v {
		v[i] = scale * (rng.Float64()*2 - 1)
	}
	v32 := NewVector32(n)
	v32.FromF64(v)
	return v, v32
}

// checkF32VsF64 asserts |got−want| ≤ absTol + relTol·(Σ|terms| scale).
func checkF32VsF64(t *testing.T, ctx string, got float32, want, tol float64) {
	t.Helper()
	if diff := math.Abs(float64(got) - want); diff > tol {
		t.Fatalf("%s: got %v want %v (|diff| %.3g > tol %.3g)", ctx, got, want, diff, tol)
	}
}

// f32Tol bounds the f32 accumulation error of a dot product whose exact
// value is want and whose absolute-term sum is absSum: input narrowing
// contributes ~2⁻²⁴ per term and the 4-accumulator sum grows error with
// n/4 roundings; 16 ulps of the term sum is a comfortable envelope.
func f32Tol(absSum float64) float64 {
	return 16 * absSum * (1.0 / (1 << 24)) * 4
}

func TestMulVecAdd32AgainstF64Reference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		rows, cols := 1+rng.Intn(70), 1+rng.Intn(90)
		m, m32 := randMatrix32Pair(rng, rows, cols, 2)
		v, v32 := randVec32Pair(rng, cols, 3)
		want := NewVector(rows)
		m.MulVecAdd(want, v)
		got := NewVector32(rows)
		m32.MulVecAdd32(got, v32)
		for i := 0; i < rows; i++ {
			var absSum float64
			for j := 0; j < cols; j++ {
				absSum += math.Abs(m.At(i, j) * v[j])
			}
			checkF32VsF64(t, "MulVecAdd32", got[i], want[i], 1e-8+f32Tol(absSum))
		}
	}
}

func TestMulMatAdd32BitIdenticalToMulVecAdd32(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(50) // exercises the j-tail (cols % 4 != 0)
		B := 1 + rng.Intn(9)     // exercises the lane tail (B odd)
		_, m32 := randMatrix32Pair(rng, rows, cols, 1.5)
		x := NewMatrix32(B, cols)
		for i := range x.Data {
			x.Data[i] = float32(rng.Float64()*2 - 1)
		}
		batch := NewMatrix32(B, rows)
		for i := range batch.Data {
			batch.Data[i] = float32(rng.NormFloat64())
		}
		seq := NewMatrix32(B, rows)
		copy(seq.Data, batch.Data)
		m32.MulMatAdd32(batch, x)
		for b := 0; b < B; b++ {
			m32.MulVecAdd32(seq.Row(b), x.Row(b))
		}
		for i, got := range batch.Data {
			if got != seq.Data[i] {
				t.Fatalf("trial %d (%dx%d B=%d): lane %d unit %d: batch %v != sequential %v",
					trial, rows, cols, B, i/rows, i%rows, got, seq.Data[i])
			}
		}
	}
}

func TestGather32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, m32 := randMatrix32Pair(rng, 32, 17, 2)
	want := NewVector(32)
	got := NewVector32(32)
	m.Col2GatherAdd(want, 3, 1, 16, 0.42)
	m32.Col2GatherAdd32(got, 3, 1, 16, 0.42)
	for i := range want {
		checkF32VsF64(t, "Col2GatherAdd32", got[i], want[i], 1e-6)
	}
	m.ColGatherAdd(want, 9, 1)
	m32.ColGatherAdd32(got, 9, 1)
	for i := range want {
		checkF32VsF64(t, "ColGatherAdd32", got[i], want[i], 2e-6)
	}
}

// TestQuantizeDequantizeRoundTrip is the property test of the int8 layout:
// every reconstructed weight must sit within half a quantization step of
// the original, per row.
func TestQuantizeDequantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		rows, cols := 1+rng.Intn(60), 1+rng.Intn(80)
		scale := math.Pow(10, rng.Float64()*4-2) // spans 1e-2 .. 1e2
		m, _ := randMatrix32Pair(rng, rows, cols, scale)
		if trial%7 == 0 {
			for j := 0; j < cols; j++ { // exercise the constant-row path
				m.Set(0, j, 0)
				if rows > 1 {
					m.Set(1, j, 0.25*scale)
				}
			}
		}
		q := QuantizeMatrixI8(m)
		d := q.Dequantize()
		for i := 0; i < rows; i++ {
			step := float64(q.Scale[i])
			for j := 0; j < cols; j++ {
				diff := math.Abs(d.At(i, j) - m.At(i, j))
				if diff > 0.5*step*1.0001+1e-12 {
					t.Fatalf("trial %d row %d col %d: |%v − %v| = %.3g exceeds step/2 = %.3g",
						trial, i, j, d.At(i, j), m.At(i, j), diff, 0.5*step)
				}
			}
		}
	}
}

func TestQuantizeVecI8Properties(t *testing.T) {
	// All-zero input is exact: scale 0, zero codes.
	zq := make([]int8, 5)
	s, sum := QuantizeVecI8(zq, NewVector32(5))
	if s != 0 || sum != 0 {
		t.Fatalf("zero vector: scale %v sum %d, want 0, 0", s, sum)
	}
	// The max-magnitude element maps to ±127 exactly.
	v := Vector32{0.5, -2, 1, 0}
	q := make([]int8, len(v))
	s, sum = QuantizeVecI8(q, v)
	if q[1] != -127 {
		t.Fatalf("max-magnitude element quantized to %d, want -127", q[1])
	}
	var wantSum int32
	for i, x := range v {
		re := float64(s) * float64(q[i])
		if math.Abs(re-float64(x)) > float64(s)/2+1e-9 {
			t.Fatalf("element %d: dequantized %v vs %v exceeds half step", i, re, x)
		}
		wantSum += int32(q[i])
	}
	if sum != wantSum {
		t.Fatalf("code sum %d, want %d", sum, wantSum)
	}
}

// i8MatVecTol bounds the error of one int8 matvec output element against
// the exact f64 product: half a weight step times Σ|x̂| plus half an input
// step times Σ|w|, with slack for f32 rounding of the dequant arithmetic.
func i8MatVecTol(wRow Vector, xhat []float64, wStep, xStep float64) float64 {
	var sumW, sumX float64
	for _, w := range wRow {
		sumW += math.Abs(w)
	}
	for _, x := range xhat {
		sumX += math.Abs(x)
	}
	return 1.05*(0.5*wStep*sumX+0.5*xStep*sumW) + 1e-4
}

func TestMulVecAddI8AgainstF64Reference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		rows, cols := 1+rng.Intn(60), 1+rng.Intn(80)
		m, _ := randMatrix32Pair(rng, rows, cols, 1.2)
		q := QuantizeMatrixI8(m)
		v, v32 := randVec32Pair(rng, cols, 2)
		xq := make([]int8, cols)
		xs, xsum := QuantizeVecI8(xq, v32)
		got := NewVector32(rows)
		q.MulVecAddI8(got, xq, xs, xsum, nil)
		want := NewVector(rows)
		m.MulVecAdd(want, v)
		xhat := make([]float64, cols)
		for j := range xhat {
			xhat[j] = float64(xs) * float64(xq[j])
		}
		for i := 0; i < rows; i++ {
			tol := i8MatVecTol(m.Row(i), xhat, float64(q.Scale[i]), float64(xs))
			checkF32VsF64(t, "MulVecAddI8", got[i], want[i], tol)
		}
	}
}

func TestMulMatAddI8BitIdenticalToMulVecAddI8(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(50)
		B := 1 + rng.Intn(7)
		m, _ := randMatrix32Pair(rng, rows, cols, 1)
		q := QuantizeMatrixI8(m)
		xq := make([]int8, B*cols)
		scales := make([]float32, B)
		sums := make([]int32, B)
		for b := 0; b < B; b++ {
			_, v32 := randVec32Pair(rng, cols, 1.5)
			if b == 0 && trial%5 == 0 {
				for j := range v32 { // a zero lane must stay untouched
					v32[j] = 0
				}
			}
			scales[b], sums[b] = QuantizeVecI8(xq[b*cols:(b+1)*cols], v32)
		}
		batch := NewMatrix32(B, rows)
		for i := range batch.Data {
			batch.Data[i] = float32(rng.NormFloat64())
		}
		seq := NewMatrix32(B, rows)
		copy(seq.Data, batch.Data)
		q.MulMatAddI8(batch, xq, scales, sums, nil)
		for b := 0; b < B; b++ {
			q.MulVecAddI8(seq.Row(b), xq[b*cols:(b+1)*cols], scales[b], sums[b], nil)
		}
		for i, got := range batch.Data {
			if got != seq.Data[i] {
				t.Fatalf("trial %d: element %d: batch %v != sequential %v", trial, i, got, seq.Data[i])
			}
		}
	}
}

// FuzzMulVecAdd32 cross-checks the f32 matvec against the f64 reference on
// fuzz-chosen shapes and value scales with a per-element error bound.
func FuzzMulVecAdd32(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(4), float64(1))
	f.Add(int64(2), uint8(1), uint8(97), float64(50))
	f.Add(int64(3), uint8(81), uint8(3), float64(0.01))
	f.Fuzz(func(t *testing.T, seed int64, r8, c8 uint8, scale float64) {
		rows, cols := 1+int(r8)%96, 1+int(c8)%128
		if !(scale > 1e-6 && scale < 1e6) {
			scale = 1
		}
		rng := rand.New(rand.NewSource(seed))
		m, m32 := randMatrix32Pair(rng, rows, cols, scale)
		v, v32 := randVec32Pair(rng, cols, scale)
		want := NewVector(rows)
		m.MulVecAdd(want, v)
		got := NewVector32(rows)
		m32.MulVecAdd32(got, v32)
		for i := 0; i < rows; i++ {
			var absSum float64
			for j := 0; j < cols; j++ {
				absSum += math.Abs(m.At(i, j) * v[j])
			}
			checkF32VsF64(t, "fuzz MulVecAdd32", got[i], want[i], 1e-8+f32Tol(absSum))
		}
	})
}

// FuzzQuantI8 fuzzes the int8 pipeline end to end: round-trip bound on the
// weights and the matvec error envelope against the f64 reference.
func FuzzQuantI8(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(8), float64(1))
	f.Add(int64(4), uint8(64), uint8(48), float64(4))
	f.Add(int64(9), uint8(1), uint8(1), float64(1e3))
	f.Fuzz(func(t *testing.T, seed int64, r8, c8 uint8, scale float64) {
		rows, cols := 1+int(r8)%96, 1+int(c8)%96
		if !(scale > 1e-6 && scale < 1e6) {
			scale = 1
		}
		rng := rand.New(rand.NewSource(seed))
		m, _ := randMatrix32Pair(rng, rows, cols, scale)
		q := QuantizeMatrixI8(m)
		d := q.Dequantize()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if diff := math.Abs(d.At(i, j) - m.At(i, j)); diff > 0.5*float64(q.Scale[i])*1.0001+1e-12 {
					t.Fatalf("round trip row %d col %d: diff %.3g > half step %.3g", i, j, diff, 0.5*float64(q.Scale[i]))
				}
			}
		}
		v, v32 := randVec32Pair(rng, cols, scale)
		xq := make([]int8, cols)
		xs, xsum := QuantizeVecI8(xq, v32)
		got := NewVector32(rows)
		q.MulVecAddI8(got, xq, xs, xsum, nil)
		want := NewVector(rows)
		m.MulVecAdd(want, v)
		xhat := make([]float64, cols)
		for j := range xhat {
			xhat[j] = float64(xs) * float64(xq[j])
		}
		for i := 0; i < rows; i++ {
			tol := i8MatVecTol(m.Row(i), xhat, float64(q.Scale[i]), float64(xs))
			// The f32 input narrowing itself costs up to |x|·2⁻²⁴ per term.
			var sumWX float64
			for j := 0; j < cols; j++ {
				sumWX += math.Abs(m.At(i, j) * v[j])
			}
			checkF32VsF64(t, "fuzz MulVecAddI8", got[i], want[i], tol+f32Tol(sumWX))
		}
	})
}
