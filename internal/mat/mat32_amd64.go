//go:build amd64

package mat

// gemv32 dispatches the f32 matvec core to the SSE2 kernel: four 4-wide
// vector accumulators per row (16 floats in flight), reduced in a fixed
// order, with a sequential scalar tail. SSE2 is part of the amd64
// baseline, so no CPU feature detection is needed. Callers guarantee
// rows > 0 and cols > 0.
func gemv32(dst Vector32, w []float32, x Vector32, rows, cols int) {
	gemv32SSE(&dst[0], &w[0], &x[0], rows, cols)
}

// dotsI8 dispatches the int8 row-dot core to the SSE2 kernel, which
// sign-extends 16 codes at a time and multiply-accumulates them pairwise
// into int32 lanes via PMADDWD. Integer arithmetic is exact, so results
// are identical to the portable loop. Callers guarantee rows > 0 and
// cols > 0.
func dotsI8(dots []int32, w, x []int8, rows, cols int) {
	dotsI8SSE(&dots[0], &w[0], &x[0], rows, cols)
}

//go:noescape
func gemv32SSE(dst, w, x *float32, rows, cols int)

//go:noescape
func dotsI8SSE(dots *int32, w, x *int8, rows, cols int)
