// Package mat provides the small dense linear-algebra kernel used by the
// neural-network, clustering and SVM substrates in this repository.
//
// The package is deliberately minimal: float64 vectors and row-major
// matrices with the handful of operations a from-scratch LSTM needs —
// matrix-vector products, outer products, element-wise maps, numerically
// stable softmax / log-sum-exp, and Xavier/He initialization. There is no
// BLAS dependency; everything is written against plain slices so the module
// builds offline with the standard library only.
//
// All operations that could silently corrupt results on shape mismatch
// panic instead: shape errors are programmer errors, not runtime conditions
// a caller should handle.
package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Zero sets every element of v to 0 in place.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to x in place.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Add returns v + w as a new vector.
func (v Vector) Add(w Vector) Vector {
	mustSameLen(len(v), len(w), "Vector.Add")
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// AddInPlace sets v = v + w.
func (v Vector) AddInPlace(w Vector) {
	mustSameLen(len(v), len(w), "Vector.AddInPlace")
	for i := range v {
		v[i] += w[i]
	}
}

// Sub returns v - w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	mustSameLen(len(v), len(w), "Vector.Sub")
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns a*v as a new vector.
func (v Vector) Scale(a float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// ScaleInPlace sets v = a*v.
func (v Vector) ScaleInPlace(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// Axpy sets v = v + a*w (the classic "a x plus y" kernel).
func (v Vector) Axpy(a float64, w Vector) {
	mustSameLen(len(v), len(w), "Vector.Axpy")
	for i := range v {
		v[i] += a * w[i]
	}
}

// Hadamard returns the element-wise product v ⊙ w.
func (v Vector) Hadamard(w Vector) Vector {
	mustSameLen(len(v), len(w), "Vector.Hadamard")
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] * w[i]
	}
	return out
}

// HadamardInPlace sets v = v ⊙ w.
func (v Vector) HadamardInPlace(w Vector) {
	mustSameLen(len(v), len(w), "Vector.HadamardInPlace")
	for i := range v {
		v[i] *= w[i]
	}
}

// Dot returns the inner product <v, w>.
func (v Vector) Dot(w Vector) float64 {
	mustSameLen(len(v), len(w), "Vector.Dot")
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// Norm1 returns the L1 norm of v.
func (v Vector) Norm1() float64 {
	var s float64
	for i := range v {
		s += math.Abs(v[i])
	}
	return s
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for i := range v {
		s += v[i]
	}
	return s
}

// Map returns a new vector with f applied to every element.
func (v Vector) Map(f func(float64) float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = f(v[i])
	}
	return out
}

// MapInPlace applies f to every element of v in place.
func (v Vector) MapInPlace(f func(float64) float64) {
	for i := range v {
		v[i] = f(v[i])
	}
}

// ArgMax returns the index of the largest element of v. It panics on an
// empty vector.
func (v Vector) ArgMax() int {
	if len(v) == 0 {
		panic("mat: ArgMax of empty vector")
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Max returns the largest element of v. It panics on an empty vector.
func (v Vector) Max() float64 { return v[v.ArgMax()] }

// CosineSimilarity returns the cosine of the angle between v and w,
// i.e. <v,w> / (|v||w|). If either vector is all-zero it returns 0.
func CosineSimilarity(v, w Vector) float64 {
	mustSameLen(len(v), len(w), "CosineSimilarity")
	var dot, nv, nw float64
	for i := range v {
		dot += v[i] * w[i]
		nv += v[i] * v[i]
		nw += w[i] * w[i]
	}
	if nv == 0 || nw == 0 {
		return 0
	}
	return dot / math.Sqrt(nv*nw)
}

// Softmax returns the softmax of v computed with the max-subtraction trick
// for numerical stability. The result sums to 1 for any finite input.
func Softmax(v Vector) Vector {
	if len(v) == 0 {
		return Vector{}
	}
	m := v.Max()
	out := make(Vector, len(v))
	var sum float64
	for i := range v {
		e := math.Exp(v[i] - m)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// LogSumExp returns log(Σ exp(v_i)) computed stably.
func LogSumExp(v Vector) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	m := v.Max()
	var sum float64
	for i := range v {
		sum += math.Exp(v[i] - m)
	}
	return m + math.Log(sum)
}

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set writes x to row i, column j.
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a Vector sharing the matrix's backing array.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element of m to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CopyFrom copies the contents of src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: CopyFrom shape mismatch %dx%d <- %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// MulVec returns m·v. v's length must equal m.Cols.
func (m *Matrix) MulVec(v Vector) Vector {
	mustSameLen(m.Cols, len(v), "Matrix.MulVec")
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// MulVecAdd sets dst = dst + m·v without allocating. dst's length must equal
// m.Rows; v's length must equal m.Cols.
//
// The inner loop is 4x-unrolled with a single accumulator and strictly
// sequential adds, so the summation order — and therefore every result
// bit — is identical to the plain rolled loop; the unroll only amortizes
// loop and bounds-check overhead.
func (m *Matrix) MulVecAdd(dst, v Vector) {
	mustSameLen(m.Cols, len(v), "Matrix.MulVecAdd input")
	mustSameLen(m.Rows, len(dst), "Matrix.MulVecAdd output")
	n := m.Cols
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*n : i*n+n]
		dst[i] += dotUnrolled(row, v, n)
	}
}

// dotUnrolled is the shared 4x-unrolled dot product of the matvec kernels.
// One accumulator, sequential adds: bit-identical to the naive loop for
// every n, including the tail.
func dotUnrolled(row []float64, v Vector, n int) float64 {
	var s float64
	j := 0
	for ; j+4 <= n; j += 4 {
		s += row[j] * v[j]
		s += row[j+1] * v[j+1]
		s += row[j+2] * v[j+2]
		s += row[j+3] * v[j+3]
	}
	for ; j < n; j++ {
		s += row[j] * v[j]
	}
	return s
}

// MulMatAdd sets dst[b][i] += Σ_j m[i][j]·x[b][j] for every lane b — the
// batched form of MulVecAdd, evaluating B concurrent inputs (the rows of x)
// against the same weight matrix in one call. dst is [B×Rows], x is
// [B×Cols].
//
// Iteration is blocked weight-row-major with 4-lane register blocking:
// each weight row m[i] streams through the cache once per batch (instead of
// once per lane), and within the row each element is loaded once and fed to
// four lanes' accumulators. Each lane keeps its own accumulator and sums j
// strictly sequentially — exactly MulVecAdd's order — so the batched result
// is bit-identical to B separate MulVecAdd calls.
func (m *Matrix) MulMatAdd(dst, x *Matrix) {
	mustSameLen(m.Cols, x.Cols, "Matrix.MulMatAdd input cols")
	mustSameLen(m.Rows, dst.Cols, "Matrix.MulMatAdd output cols")
	mustSameLen(x.Rows, dst.Rows, "Matrix.MulMatAdd lanes")
	n, B, oc := m.Cols, x.Rows, dst.Cols
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*n : i*n+n]
		b := 0
		for ; b+4 <= B; b += 4 {
			x0 := x.Data[b*n : b*n+n]
			x1 := x.Data[(b+1)*n : (b+1)*n+n]
			x2 := x.Data[(b+2)*n : (b+2)*n+n]
			x3 := x.Data[(b+3)*n : (b+3)*n+n]
			var s0, s1, s2, s3 float64
			for j, r := range row {
				s0 += r * x0[j]
				s1 += r * x1[j]
				s2 += r * x2[j]
				s3 += r * x3[j]
			}
			dst.Data[b*oc+i] += s0
			dst.Data[(b+1)*oc+i] += s1
			dst.Data[(b+2)*oc+i] += s2
			dst.Data[(b+3)*oc+i] += s3
		}
		for ; b < B; b++ {
			dst.Data[b*oc+i] += dotUnrolled(row, Vector(x.Data[b*n:b*n+n]), n)
		}
	}
}

// TransMulVec returns mᵀ·v. v's length must equal m.Rows.
func (m *Matrix) TransMulVec(v Vector) Vector {
	mustSameLen(m.Rows, len(v), "Matrix.TransMulVec")
	out := make(Vector, m.Cols)
	for i := 0; i < m.Rows; i++ {
		a := v[i]
		if a == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			out[j] += a * x
		}
	}
	return out
}

// TransMulVecAdd sets dst = dst + mᵀ·v without allocating.
//
// The inner axpy is 4x-unrolled; each dst element still receives exactly
// one add per nonzero v[i], in i order, so results stay bit-identical to
// the rolled loop.
func (m *Matrix) TransMulVecAdd(dst, v Vector) {
	mustSameLen(m.Rows, len(v), "Matrix.TransMulVecAdd input")
	mustSameLen(m.Cols, len(dst), "Matrix.TransMulVecAdd output")
	n := m.Cols
	for i := 0; i < m.Rows; i++ {
		a := v[i]
		if a == 0 {
			continue
		}
		row := m.Data[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			dst[j] += a * row[j]
			dst[j+1] += a * row[j+1]
			dst[j+2] += a * row[j+2]
			dst[j+3] += a * row[j+3]
		}
		for ; j < n; j++ {
			dst[j] += a * row[j]
		}
	}
}

// ColGatherAdd sets dst = dst + a * m[:,j], i.e. dst[i] += a * m[i][j].
// It is the sparse form of MulVec for a one-hot input: when x is zero
// except x[j] = a, m·x is exactly a gather of column j scaled by a, so the
// O(Rows·Cols) product collapses to O(Rows).
func (m *Matrix) ColGatherAdd(dst Vector, j int, a float64) {
	mustSameLen(m.Rows, len(dst), "Matrix.ColGatherAdd output")
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: ColGatherAdd column %d out of range [0,%d)", j, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] += a * m.Data[i*m.Cols+j]
	}
}

// Col2GatherAdd sets dst[i] += a1*m[i][j1] + a2*m[i][j2], the two-column
// gather for a one-hot-plus-scalar input (template one-hot + time gap).
// The two terms are summed before being added to dst, reproducing the
// floating-point association of a dense MulVecAdd over the same sparse
// vector bit for bit.
func (m *Matrix) Col2GatherAdd(dst Vector, j1 int, a1 float64, j2 int, a2 float64) {
	mustSameLen(m.Rows, len(dst), "Matrix.Col2GatherAdd output")
	if j1 < 0 || j1 >= m.Cols || j2 < 0 || j2 >= m.Cols {
		panic(fmt.Sprintf("mat: Col2GatherAdd columns %d,%d out of range [0,%d)", j1, j2, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols:]
		dst[i] += a1*row[j1] + a2*row[j2]
	}
}

// AddOuterOneHot sets m[i][j] += a * u[i] for every i: the outer-product
// gradient update m += (a·u) ⊗ onehot(j) touching only column j. This is
// the sparse form of AddOuter when v is one-hot, turning the O(Rows·Cols)
// update into O(Rows).
func (m *Matrix) AddOuterOneHot(a float64, u Vector, j int) {
	mustSameLen(m.Rows, len(u), "Matrix.AddOuterOneHot rows")
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: AddOuterOneHot column %d out of range [0,%d)", j, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] += a * u[i]
	}
}

// AddOuter sets m = m + a * (u ⊗ v), i.e. m[i][j] += a * u[i] * v[j].
// This is the weight-gradient accumulation kernel used by backprop.
func (m *Matrix) AddOuter(a float64, u, v Vector) {
	mustSameLen(m.Rows, len(u), "Matrix.AddOuter rows")
	mustSameLen(m.Cols, len(v), "Matrix.AddOuter cols")
	for i := 0; i < m.Rows; i++ {
		s := a * u[i]
		if s == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range v {
			row[j] += s * x
		}
	}
}

// AddScaled sets m = m + a*w. Shapes must match.
func (m *Matrix) AddScaled(a float64, w *Matrix) {
	if m.Rows != w.Rows || m.Cols != w.Cols {
		panic(fmt.Sprintf("mat: AddScaled shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, w.Rows, w.Cols))
	}
	for i := range m.Data {
		m.Data[i] += a * w.Data[i]
	}
}

// Scale multiplies every element of m by a in place.
func (m *Matrix) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, x := range m.Data {
		s += x * x
	}
	return math.Sqrt(s)
}

// XavierInit fills m with samples from U(-r, r) where r = sqrt(6/(in+out)),
// the Glorot uniform initializer. fanIn/fanOut default to Cols/Rows.
func (m *Matrix) XavierInit(rng *rand.Rand) {
	r := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * r
	}
}

// HeInit fills m with samples from N(0, sqrt(2/fanIn)), the He-normal
// initializer appropriate for ReLU layers.
func (m *Matrix) HeInit(rng *rand.Rand) {
	sd := math.Sqrt(2.0 / float64(m.Cols))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * sd
	}
}

// Equal reports whether m and w have identical shape and all elements within
// tol of each other.
func (m *Matrix) Equal(w *Matrix, tol float64) bool {
	if m.Rows != w.Rows || m.Cols != w.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-w.Data[i]) > tol {
			return false
		}
	}
	return true
}

func mustSameLen(a, b int, op string) {
	if a != b {
		panic(fmt.Sprintf("mat: %s length mismatch: %d vs %d", op, a, b))
	}
}
