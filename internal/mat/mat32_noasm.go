//go:build !amd64

package mat

// gemv32 is the portable f32 matvec core: dst[i] += Dot32(w row i, x).
// Dot32's 4-accumulator schedule is the platform summation schedule.
func gemv32(dst Vector32, w []float32, x Vector32, rows, cols int) {
	for i := 0; i < rows; i++ {
		dst[i] += Dot32(w[i*cols:i*cols+cols], x)
	}
}

// dotsI8 computes dots[i] = Σ_j w[i][j]·x[j] with int32 accumulation for
// every row of the [rows×cols] int8 matrix w.
func dotsI8(dots []int32, w, x []int8, rows, cols int) {
	for i := 0; i < rows; i++ {
		dots[i] = dotI8(w[i*cols:i*cols+cols], x)
	}
}
