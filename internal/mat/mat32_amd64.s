//go:build amd64

#include "textflag.h"

// func gemv32SSE(dst, w, x *float32, rows, cols int)
//
// dst[i] += dot(w[i*cols : (i+1)*cols], x[:cols]) for every row i.
//
// Schedule (fixed; the per-platform determinism contract of the f32
// kernels): four 4-wide accumulators X0..X3 consume 16 elements per
// iteration, a 4-wide loop drains remaining quads into X0, the vector
// accumulators reduce as (X0+X1)+(X2+X3) then horizontally as
// (l0+l2)+(l1+l3), and a scalar tail folds the last <4 elements in
// sequentially. SSE2 only — part of the amd64 baseline.
TEXT ·gemv32SSE(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ w+8(FP), SI
	MOVQ x+16(FP), R8
	MOVQ rows+24(FP), R9
	MOVQ cols+32(FP), R10

rowloop:
	TESTQ R9, R9
	JE    done
	MOVQ  R8, DX  // x cursor rewinds per row
	MOVQ  R10, CX // remaining elements
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3

blk16:
	CMPQ   CX, $16
	JL     blk4
	MOVUPS (SI), X4
	MOVUPS (DX), X5
	MULPS  X5, X4
	ADDPS  X4, X0
	MOVUPS 16(SI), X5
	MOVUPS 16(DX), X6
	MULPS  X6, X5
	ADDPS  X5, X1
	MOVUPS 32(SI), X6
	MOVUPS 32(DX), X7
	MULPS  X7, X6
	ADDPS  X6, X2
	MOVUPS 48(SI), X7
	MOVUPS 48(DX), X8
	MULPS  X8, X7
	ADDPS  X7, X3
	ADDQ   $64, SI
	ADDQ   $64, DX
	SUBQ   $16, CX
	JMP    blk16

blk4:
	CMPQ   CX, $4
	JL     reduce
	MOVUPS (SI), X4
	MOVUPS (DX), X5
	MULPS  X5, X4
	ADDPS  X4, X0
	ADDQ   $16, SI
	ADDQ   $16, DX
	SUBQ   $4, CX
	JMP    blk4

reduce:
	ADDPS  X1, X0
	ADDPS  X3, X2
	ADDPS  X2, X0
	PSHUFD $0x4E, X0, X1 // lanes [2,3,0,1]
	ADDPS  X1, X0        // lane0 = l0+l2, lane1 = l1+l3
	PSHUFD $0x01, X0, X1 // lane0 = lane1
	ADDSS  X1, X0        // lane0 = (l0+l2)+(l1+l3)

tail:
	TESTQ CX, CX
	JE    store
	MOVSS (SI), X4
	MOVSS (DX), X5
	MULSS X5, X4
	ADDSS X4, X0
	ADDQ  $4, SI
	ADDQ  $4, DX
	DECQ  CX
	JMP   tail

store:
	MOVSS (DI), X4
	ADDSS X4, X0
	MOVSS X0, (DI)
	ADDQ  $4, DI
	DECQ  R9
	JMP   rowloop

done:
	RET

// func dotsI8SSE(dots *int32, w, x *int8, rows, cols int)
//
// dots[i] = Σ_j w[i][j]·x[j] with int32 accumulation, one row at a time.
// 16 int8 codes per iteration: sign-extend both operands to int16 via the
// PCMPGTB/PUNPCK idiom, multiply-accumulate pairs into 4 int32 lanes with
// PMADDWL (products are ≤ 127², so pair sums cannot overflow int16×2 in
// int32), reduce lanes, and fold a scalar tail. Integer arithmetic is
// exact, so the result equals the portable loop bit for bit.
TEXT ·dotsI8SSE(SB), NOSPLIT, $0-40
	MOVQ dots+0(FP), DI
	MOVQ w+8(FP), SI
	MOVQ x+16(FP), R8
	MOVQ rows+24(FP), R9
	MOVQ cols+32(FP), R10

i8rowloop:
	TESTQ R9, R9
	JE    i8done
	MOVQ  R8, DX
	MOVQ  R10, CX
	PXOR  X0, X0 // 4-lane int32 accumulator
	XORQ  AX, AX // scalar tail accumulator

i8blk16:
	CMPQ      CX, $16
	JL        i8tail
	MOVOU     (SI), X1 // 16 weight codes
	MOVOU     (DX), X2 // 16 input codes
	PXOR      X3, X3
	PCMPGTB   X1, X3   // X3 = 0xFF where w byte < 0
	PXOR      X4, X4
	PCMPGTB   X2, X4   // X4 = 0xFF where x byte < 0
	MOVOU     X1, X5
	PUNPCKLBW X3, X1   // low 8 w codes → int16
	PUNPCKHBW X3, X5   // high 8 w codes → int16
	MOVOU     X2, X6
	PUNPCKLBW X4, X2   // low 8 x codes → int16
	PUNPCKHBW X4, X6   // high 8 x codes → int16
	PMADDWL   X2, X1   // 4 int32 pair-sums of low products
	PMADDWL   X6, X5   // 4 int32 pair-sums of high products
	PADDD     X1, X0
	PADDD     X5, X0
	ADDQ      $16, SI
	ADDQ      $16, DX
	SUBQ      $16, CX
	JMP       i8blk16

i8tail:
	TESTQ   CX, CX
	JE      i8reduce
	MOVBQSX (SI), BX
	MOVBQSX (DX), R11
	IMULQ   R11, BX
	ADDQ    BX, AX
	INCQ    SI
	INCQ    DX
	DECQ    CX
	JMP     i8tail

i8reduce:
	PSHUFD $0x4E, X0, X1
	PADDD  X1, X0
	PSHUFD $0x01, X0, X1
	PADDD  X1, X0
	MOVQ   X0, BX      // low 32 bits hold the lane sum
	ADDL   BX, AX
	MOVL   AX, (DI)
	ADDQ   $4, DI
	DECQ   R9
	JMP    i8rowloop

i8done:
	RET
