// Reduced-precision serving kernels: a float32 mirror of the float64
// matvec family plus an int8 row-quantized layout, used by the quantized
// inference engine in internal/nn.
//
// These kernels serve a different contract than the float64 ones. The f64
// kernels are bit-compatibility-bound: training, checkpoints, and the
// batched scoring path all promise results identical to the naive rolled
// loop, which forces a single sequential accumulator and leaves every dot
// product latency-bound on the FP add chain. The serving-path quantized
// engine only promises bounded error against the f64 reference (the
// warning decision thresholds a log-probability; it does not need exact
// bits), so the f32 kernels are free to reorder the summation: wide
// register blocking on the portable path, 4-wide SSE with four vector
// accumulators on amd64 (mat32_amd64.s).
//
// What IS promised: one fixed summation schedule per platform, shared by
// the single-stream and batched kernels. MulMatAdd32 evaluates each lane
// with exactly the schedule MulVecAdd32 uses, so batched quantized scoring
// is bit-identical to sequential quantized scoring — the same invariant
// the shard workers' wave scheduling relies on at f64. (Unlike the f64
// kernels, quantized results may differ in final bits across
// architectures; the calibration tests bound quantized-vs-f64 drift
// dynamically, so they hold on every platform.)
package mat

import "math"

// Vector32 is a dense float32 vector.
type Vector32 []float32

// NewVector32 returns a zero vector of length n.
func NewVector32(n int) Vector32 { return make(Vector32, n) }

// FromF64 narrows src into v (lengths must match).
func (v Vector32) FromF64(src Vector) {
	mustSameLen(len(v), len(src), "Vector32.FromF64")
	for i, x := range src {
		v[i] = float32(x)
	}
}

// Matrix32 is a dense row-major float32 matrix: the packed serving form of
// a float64 Matrix, built once at engine-pack time.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// NewMatrix32 returns a zero matrix with the given shape.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimension")
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// PackMatrix32 narrows m into a freshly allocated Matrix32.
func PackMatrix32(m *Matrix) *Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = float32(x)
	}
	return out
}

// Row returns row i sharing the matrix's backing array.
func (m *Matrix32) Row(i int) Vector32 { return Vector32(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Bytes returns the packed weight footprint in bytes.
func (m *Matrix32) Bytes() int { return 4 * len(m.Data) }

// Dot32 is the portable reference dot product and the schedule the
// non-amd64 kernels use: four scalar accumulators over 4-element blocks
// (accumulator k consumes offsets j+k), combined as (s0+s1)+(s2+s3), with
// the tail folded into s0 sequentially. On amd64 the matvec kernels use
// the SSE schedule in mat32_amd64.s instead; within one platform every
// f32 kernel shares a single schedule.
func Dot32(row, v []float32) float32 {
	n := len(row)
	_ = v[n-1]
	var s0, s1, s2, s3 float32
	j := 0
	for ; j+4 <= n; j += 4 {
		s0 += row[j] * v[j]
		s1 += row[j+1] * v[j+1]
		s2 += row[j+2] * v[j+2]
		s3 += row[j+3] * v[j+3]
	}
	for ; j < n; j++ {
		s0 += row[j] * v[j]
	}
	return (s0 + s1) + (s2 + s3)
}

// MulVecAdd32 sets dst = dst + m·v without allocating.
func (m *Matrix32) MulVecAdd32(dst, v Vector32) {
	mustSameLen(m.Cols, len(v), "Matrix32.MulVecAdd32 input")
	mustSameLen(m.Rows, len(dst), "Matrix32.MulVecAdd32 output")
	if m.Rows == 0 || m.Cols == 0 {
		return
	}
	gemv32(dst, m.Data, v, m.Rows, m.Cols)
}

// MulMatAdd32 sets dst[b][i] += Σ_j m[i][j]·x[b][j] for every lane b — the
// batched float32 GEMM of the quantized serving path. dst is [B×Rows], x
// is [B×Cols]. Per-lane arithmetic is bit-identical to MulVecAdd32: both
// route every (row, lane) pair through the platform's gemv kernel.
func (m *Matrix32) MulMatAdd32(dst, x *Matrix32) {
	mustSameLen(m.Cols, x.Cols, "Matrix32.MulMatAdd32 input cols")
	mustSameLen(m.Rows, dst.Cols, "Matrix32.MulMatAdd32 output cols")
	mustSameLen(x.Rows, dst.Rows, "Matrix32.MulMatAdd32 lanes")
	if m.Rows == 0 || m.Cols == 0 {
		return
	}
	n := m.Cols
	for b := 0; b < x.Rows; b++ {
		gemv32(dst.Row(b), m.Data, x.Data[b*n:b*n+n], m.Rows, n)
	}
}

// ColGatherAdd32 sets dst[i] += a * m[i][j]: the sparse one-hot input
// product, mirroring Matrix.ColGatherAdd.
func (m *Matrix32) ColGatherAdd32(dst Vector32, j int, a float32) {
	mustSameLen(m.Rows, len(dst), "Matrix32.ColGatherAdd32 output")
	if j < 0 || j >= m.Cols {
		panic("mat: ColGatherAdd32 column out of range")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] += a * m.Data[i*m.Cols+j]
	}
}

// Col2GatherAdd32 sets dst[i] += a1*m[i][j1] + a2*m[i][j2], the two-column
// gather for a one-hot-plus-gap input, mirroring Matrix.Col2GatherAdd.
func (m *Matrix32) Col2GatherAdd32(dst Vector32, j1 int, a1 float32, j2 int, a2 float32) {
	mustSameLen(m.Rows, len(dst), "Matrix32.Col2GatherAdd32 output")
	if j1 < 0 || j1 >= m.Cols || j2 < 0 || j2 >= m.Cols {
		panic("mat: Col2GatherAdd32 column out of range")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols:]
		dst[i] += a1*row[j1] + a2*row[j2]
	}
}

// MatrixI8 is a row-quantized int8 matrix: each row of the source float64
// matrix is affine-quantized with its own scale and zero point, so one
// badly scaled row (LSTM gate blocks have very different weight ranges)
// cannot destroy the resolution of the others. The represented value is
//
//	real[i][j] ≈ Scale[i] * (Data[i][j] - Zero[i])
//
// RowSum caches Σ_j Data[i][j] so the zero-point correction of a matvec
// costs one multiply per row instead of a second pass over the data.
type MatrixI8 struct {
	Rows, Cols int
	Data       []int8 // row-major quantized weights
	Scale      []float32
	Zero       []int32
	RowSum     []int32
}

// i8Lim is the symmetric quantized range limit. ±127 (not -128) keeps the
// code point space symmetric so negating a quantized value stays in range.
const i8Lim = 127

// QuantizeMatrixI8 builds the int8 row-quantized form of m.
func QuantizeMatrixI8(m *Matrix) *MatrixI8 {
	q := &MatrixI8{
		Rows:   m.Rows,
		Cols:   m.Cols,
		Data:   make([]int8, m.Rows*m.Cols),
		Scale:  make([]float32, m.Rows),
		Zero:   make([]int32, m.Rows),
		RowSum: make([]int32, m.Rows),
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		lo, hi := 0.0, 0.0 // include 0 so the zero point is representable
		for _, x := range row {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		scale := (hi - lo) / (2 * i8Lim)
		var zero int32
		if scale == 0 {
			scale = 1 // all-zero row: any scale represents it exactly
		} else {
			zero = int32(math.Round(-i8Lim - lo/scale))
		}
		q.Scale[i] = float32(scale)
		q.Zero[i] = zero
		var sum int32
		for j, x := range row {
			v := int32(math.Round(x/scale)) + zero
			if v > i8Lim {
				v = i8Lim
			}
			if v < -i8Lim {
				v = -i8Lim
			}
			q.Data[i*m.Cols+j] = int8(v)
			sum += v
		}
		q.RowSum[i] = sum
	}
	return q
}

// Dequantize reconstructs the float64 matrix the quantized form
// represents, used by round-trip tests and error-budget analysis.
func (q *MatrixI8) Dequantize() *Matrix {
	out := NewMatrix(q.Rows, q.Cols)
	for i := 0; i < q.Rows; i++ {
		s, z := float64(q.Scale[i]), float64(q.Zero[i])
		for j := 0; j < q.Cols; j++ {
			out.Data[i*q.Cols+j] = s * (float64(q.Data[i*q.Cols+j]) - z)
		}
	}
	return out
}

// Bytes returns the packed weight footprint in bytes (data + per-row
// metadata).
func (q *MatrixI8) Bytes() int { return len(q.Data) + 12*q.Rows }

// QuantizeVecI8 symmetrically quantizes v into dst (same length) and
// returns the scale (real ≈ scale·q) and the sum of the quantized codes,
// the per-input half of the int8 matvec. An all-zero input returns scale 0
// and an all-zero dst, which MulVecAddI8 treats as an exact zero product.
func QuantizeVecI8(dst []int8, v Vector32) (scale float32, sum int32) {
	mustSameLen(len(dst), len(v), "QuantizeVecI8")
	var maxAbs float32
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		if x > maxAbs {
			maxAbs = x
		}
	}
	if maxAbs == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 0, 0
	}
	scale = maxAbs / i8Lim
	inv := i8Lim / maxAbs
	for i, x := range v {
		q := int32(math.Round(float64(x * inv)))
		if q > i8Lim {
			q = i8Lim
		}
		if q < -i8Lim {
			q = -i8Lim
		}
		dst[i] = int8(q)
		sum += q
	}
	return scale, sum
}

// dotI8 is the portable int8 dot product with int32 accumulation. Integer
// arithmetic is exact, so the amd64 PMADDWD kernel produces identical
// results despite its different evaluation order.
func dotI8(row, x []int8) int32 {
	var s int32
	_ = x[len(row)-1]
	for j, r := range row {
		s += int32(r) * int32(x[j])
	}
	return s
}

// dequantI8 converts an integer dot product into the real-valued
// contribution: Scale_i·xScale·(dotq − Zero_i·Σxq). Shared by the single
// and batched kernels so both produce identical bits.
func dequantI8(scale, xScale float32, dotq, zero, xSum int32) float32 {
	return (scale * xScale) * float32(dotq-zero*xSum)
}

// ensureI32 returns scratch resliced to n, reallocating when too small.
func ensureI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// MulVecAddI8 sets dst[i] += Scale[i]·xScale·Σ_j (Data[i][j]−Zero[i])·xq[j]
// — the quantized matvec with i32 accumulation and a cached-row-sum
// zero-point correction. xq/xScale/xSum come from QuantizeVecI8. dots is
// caller scratch of length ≥ Rows for the integer dot products; pass nil
// to allocate (hot paths reuse a scratch to stay allocation-free).
func (q *MatrixI8) MulVecAddI8(dst Vector32, xq []int8, xScale float32, xSum int32, dots []int32) {
	mustSameLen(q.Cols, len(xq), "MatrixI8.MulVecAddI8 input")
	mustSameLen(q.Rows, len(dst), "MatrixI8.MulVecAddI8 output")
	if xScale == 0 || q.Cols == 0 || q.Rows == 0 {
		return // exact zero input ⇒ exact zero product
	}
	dots = ensureI32(dots, q.Rows)
	dotsI8(dots, q.Data, xq, q.Rows, q.Cols)
	for i := 0; i < q.Rows; i++ {
		dst[i] += dequantI8(q.Scale[i], xScale, dots[i], q.Zero[i], xSum)
	}
}

// MulMatAddI8 is the batched int8 GEMM: dst[b][i] += the quantized product
// of weight row i against lane b of xq ([B×Cols] row-major), with per-lane
// scales and code sums from QuantizeVecI8. dots is scratch as in
// MulVecAddI8. Per-lane arithmetic is bit-identical to MulVecAddI8.
func (q *MatrixI8) MulMatAddI8(dst *Matrix32, xq []int8, scales []float32, sums []int32, dots []int32) {
	B := dst.Rows
	mustSameLen(q.Rows, dst.Cols, "MatrixI8.MulMatAddI8 output cols")
	mustSameLen(B*q.Cols, len(xq), "MatrixI8.MulMatAddI8 input")
	mustSameLen(B, len(scales), "MatrixI8.MulMatAddI8 scales")
	mustSameLen(B, len(sums), "MatrixI8.MulMatAddI8 sums")
	if q.Cols == 0 || q.Rows == 0 {
		return
	}
	n := q.Cols
	dots = ensureI32(dots, q.Rows)
	for b := 0; b < B; b++ {
		if scales[b] == 0 {
			continue
		}
		dotsI8(dots, q.Data, xq[b*n:b*n+n], q.Rows, n)
		out := dst.Row(b)
		for i := 0; i < q.Rows; i++ {
			out[i] += dequantI8(q.Scale[i], scales[b], dots[i], q.Zero[i], sums[b])
		}
	}
}
