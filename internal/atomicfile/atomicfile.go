// Package atomicfile writes files atomically: the content goes to a
// temporary file in the destination directory, is fsynced, and is renamed
// over the target only when every byte is durably on disk. A crash — or an
// injected fault — at any point leaves either the old file or the new one,
// never a torn mixture, which is the property the runtime's checkpoint and
// bundle writers depend on.
package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Write atomically replaces path with the bytes produced by fn. fn receives
// the temporary file as its writer; any error from fn (or from sync/rename)
// aborts the operation, removes the temporary file, and leaves an existing
// path untouched.
func Write(path string, fn func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: creating temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = fn(tmp); err != nil {
		return fmt.Errorf("atomicfile: writing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicfile: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicfile: closing temp file: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicfile: renaming into place: %w", err)
	}
	// Persist the rename itself. Directory fsync is best-effort: some
	// filesystems refuse to sync directories, and the rename already
	// guarantees atomicity — only durability of the name is at stake.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
