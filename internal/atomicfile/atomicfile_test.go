package atomicfile

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nfvpredict/internal/faultinject"
)

func TestWriteCreates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	err := Write(path, func(w io.Writer) error {
		_, err := w.Write([]byte("hello"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back: %q, %v", got, err)
	}
}

func TestWriteReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Write(path, func(w io.Writer) error {
		_, err := io.Copy(w, strings.NewReader("new contents"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new contents" {
		t.Fatalf("replace: %q", got)
	}
}

// TestTornWriteLeavesOldFile is the crash-mid-save scenario: the writer
// dies partway through and the previous file must survive unchanged, with
// no temp-file residue.
func TestTornWriteLeavesOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(path, []byte("the good copy"), 0o644); err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan(faultinject.FailAfterBytes(7))
	err := Write(path, func(w io.Writer) error {
		fw := faultinject.NewWriter(w, plan)
		_, err := fw.Write([]byte("a much longer replacement payload"))
		return err
	})
	if err == nil {
		t.Fatal("torn write should surface the error")
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "the good copy" {
		t.Fatalf("old file damaged: %q, %v", got, rerr)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp residue left behind: %v", entries)
	}
}

func TestWriteFnErrorPropagates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "never.bin")
	err := Write(path, func(io.Writer) error { return io.ErrUnexpectedEOF })
	if err == nil {
		t.Fatal("fn error must propagate")
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatal("failed write must not create the target")
	}
}
