package resilience

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestBackoffBounds pins the jittered-backoff envelope: every delay stays
// within [base·2ⁿ, base·2ⁿ·(1+jitter)] capped at max — the bound the ingest
// listeners' accept-retry loop relies on.
func TestBackoffBounds(t *testing.T) {
	base, max, jitter := 10*time.Millisecond, 80*time.Millisecond, 0.5
	b := NewBackoff(base, max, jitter, 42)
	want := base
	for i := 0; i < 12; i++ {
		d := b.Next()
		lo := want
		hi := time.Duration(float64(want) * (1 + jitter))
		if d < lo || d > hi {
			t.Fatalf("delay %d: got %v, want within [%v, %v]", i, d, lo, hi)
		}
		if want < max {
			want *= 2
			if want > max {
				want = max
			}
		}
	}
	// After many steps the un-jittered component is pinned at max.
	if d := b.Next(); d < max || d > time.Duration(float64(max)*(1+jitter)) {
		t.Fatalf("steady-state delay %v escaped [%v, %v]", d, max, time.Duration(float64(max)*(1+jitter)))
	}
}

// TestBackoffJitterDeterministic pins that a fixed seed yields a fixed
// sequence (tests depend on it) and that distinct seeds de-synchronize.
func TestBackoffJitterDeterministic(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		b := NewBackoff(time.Millisecond, time.Second, 0.5, seed)
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = b.Next()
		}
		return out
	}
	a, b2 := seq(7), seq(7)
	for i := range a {
		if a[i] != b2[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b2[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct seeds produced identical jitter sequences")
	}
}

func TestBackoffReset(t *testing.T) {
	b := NewBackoff(time.Millisecond, time.Second, 0, 1)
	b.Next()
	b.Next()
	if d := b.Next(); d != 4*time.Millisecond {
		t.Fatalf("third delay = %v, want 4ms", d)
	}
	b.Reset()
	if d := b.Next(); d != time.Millisecond {
		t.Fatalf("post-reset delay = %v, want 1ms", d)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Retry(nil, RetryPolicy{Attempts: 5, Base: time.Microsecond, Seed: 1}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	sentinel := errors.New("persistent")
	calls := 0
	err := Retry(nil, RetryPolicy{Attempts: 4, Base: time.Microsecond, Seed: 1}, func() error {
		calls++
		return sentinel
	})
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap the last attempt's error", err)
	}
	if !strings.Contains(err.Error(), "4 attempt(s)") {
		t.Fatalf("error %q lacks attempt count", err)
	}
}

func TestRetryStopInterrupts(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	calls := 0
	err := Retry(stop, RetryPolicy{Attempts: 100, Base: time.Hour, Seed: 1}, func() error {
		calls++
		return errors.New("nope")
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (stop should interrupt the first backoff)", calls)
	}
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("error %v, want interruption error", err)
	}
}

func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "spool.nfvs")
	for i, want := range []string{p + ".corrupt", p + ".corrupt.1", p + ".corrupt.2"} {
		if err := os.WriteFile(p, []byte{byte(i)}, 0o644); err != nil {
			t.Fatal(err)
		}
		q, err := Quarantine(p)
		if err != nil {
			t.Fatalf("quarantine %d: %v", i, err)
		}
		if q != want {
			t.Fatalf("quarantine %d landed at %s, want %s", i, q, want)
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("quarantine %d left the original in place", i)
		}
		body, err := os.ReadFile(q)
		if err != nil || len(body) != 1 || body[0] != byte(i) {
			t.Fatalf("quarantine %d lost the evidence: %v %v", i, body, err)
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := &Breaker{Threshold: 3, Cooldown: time.Minute, now: func() time.Time { return clock }}

	// Closed: failures below the threshold keep admitting.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Failure()
	}
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", st)
	}
	b.Failure() // third consecutive failure opens
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", st)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}

	// Cooldown elapses → exactly one half-open probe.
	clock = clock.Add(time.Minute)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second call alongside the probe")
	}

	// Probe fails → re-open, another full cooldown.
	b.Failure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call immediately")
	}
	clock = clock.Add(time.Minute)
	if !b.Allow() {
		t.Fatal("breaker refused the second probe")
	}
	b.Success()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if !b.Allow() {
		t.Fatal("recovered breaker rejected a call")
	}
	if st := b.Status(); st.Opens != 2 || st.StateName != "closed" {
		t.Fatalf("status = %+v, want 2 opens, closed", st)
	}
}

func TestBreakerNilAdmitsEverything(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker rejected a call")
	}
	b.Success()
	b.Failure()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("nil breaker state = %v", st)
	}
	if st := b.Status(); st.StateName != "closed" {
		t.Fatalf("nil breaker status = %+v", st)
	}
}

func TestSupervisorRestartsPanickingWorker(t *testing.T) {
	var runs atomic.Int64
	causes := make(chan string, 16)
	healthy := make(chan struct{}, 1)
	sup := &Supervisor{
		Name:    "test-worker",
		Backoff: NewBackoff(time.Microsecond, time.Microsecond, 0, 1),
		OnRestart: func(_, cause string) {
			select {
			case causes <- cause:
			default:
			}
		},
		Run: func(stop <-chan struct{}) {
			if runs.Add(1) <= 2 {
				panic("injected worker panic")
			}
			select {
			case healthy <- struct{}{}:
			default:
			}
			<-stop // healthy from the third incarnation on
		},
	}
	sup.Start()
	deadline := time.After(5 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case cause := <-causes:
			if !strings.Contains(cause, "injected worker panic") {
				t.Fatalf("restart cause %q, want the panic value", cause)
			}
		case <-deadline:
			t.Fatal("timed out waiting for supervisor restarts")
		}
	}
	select {
	case <-healthy:
	case <-deadline:
		t.Fatal("timed out waiting for the healthy incarnation")
	}
	sup.Stop()
	if got := sup.Restarts(); got < 2 {
		t.Fatalf("restarts = %d, want >= 2", got)
	}
	if got := runs.Load(); got < 3 {
		t.Fatalf("runs = %d, want >= 3", got)
	}
}

func TestSupervisorStopIsCleanAndIdempotent(t *testing.T) {
	started := make(chan struct{})
	sup := &Supervisor{
		Name:    "stopper",
		Backoff: NewBackoff(time.Microsecond, time.Microsecond, 0, 1),
		Run: func(stop <-chan struct{}) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-stop
		},
	}
	sup.Start()
	sup.Start() // idempotent
	<-started
	sup.Stop()
	sup.Stop() // idempotent
	if got := sup.Restarts(); got != 0 {
		t.Fatalf("clean stop recorded %d restarts", got)
	}
}

func TestHeartbeatAge(t *testing.T) {
	var hb Heartbeat
	now := time.Unix(2000, 0)
	if age := hb.Age(now); age < 100*365*24*time.Hour {
		t.Fatalf("never-beat heartbeat age = %v, want enormous", age)
	}
	hb.BeatAt(now.Add(-3 * time.Second))
	if age := hb.Age(now); age != 3*time.Second {
		t.Fatalf("age = %v, want 3s", age)
	}
	hb.Beat()
	if age := hb.Age(time.Now()); age > time.Minute {
		t.Fatalf("fresh beat reads stale: %v", age)
	}
}

func TestDegraderEscalatesAndRecovers(t *testing.T) {
	var transitions []string
	d := NewDegrader(DegraderConfig{
		ShedLearningAt:    0.75,
		RecoverAt:         0.25,
		ScoringFaultBurst: 3,
		IOFaultBurst:      3,
		RecoverEvals:      2,
	}, func(from, to Mode, reason string) {
		transitions = append(transitions, from.String()+"->"+to.String()+":"+reason)
	})

	// Prime with a calm sample.
	if m := d.Eval(Sample{QueueFrac: 0.1}); m != ModeNormal {
		t.Fatalf("calm sample => %v", m)
	}
	// Queue overload sheds learning immediately.
	if m := d.Eval(Sample{QueueFrac: 0.9}); m != ModeShedLearning {
		t.Fatalf("overload sample => %v, want shed-learning", m)
	}
	// A scoring-fault burst escalates straight to shed-scoring.
	if m := d.Eval(Sample{QueueFrac: 0.1, ScoringFaults: 5}); m != ModeShedScoring {
		t.Fatalf("scoring burst => %v, want shed-scoring", m)
	}
	// One clean sample is not enough (RecoverEvals 2).
	if m := d.Eval(Sample{QueueFrac: 0.1, ScoringFaults: 5}); m != ModeShedScoring {
		t.Fatalf("first clean sample already recovered: %v", m)
	}
	// Second clean sample steps back one level only.
	if m := d.Eval(Sample{QueueFrac: 0.1, ScoringFaults: 5}); m != ModeShedLearning {
		t.Fatalf("recovery step => %v, want shed-learning", m)
	}
	// A dirty sample (queue above RecoverAt) resets the clean streak.
	if m := d.Eval(Sample{QueueFrac: 0.5, ScoringFaults: 5}); m != ModeShedLearning {
		t.Fatalf("mid-pressure sample => %v, want shed-learning held", m)
	}
	if m := d.Eval(Sample{QueueFrac: 0.1, ScoringFaults: 5}); m != ModeShedLearning {
		t.Fatalf("clean streak restarted too fast: %v", m)
	}
	if m := d.Eval(Sample{QueueFrac: 0.1, ScoringFaults: 5}); m != ModeNormal {
		t.Fatalf("final recovery => %v, want normal", m)
	}
	want := []string{
		"normal->shed-learning:shard queues backed up",
		"shed-learning->shed-scoring:scoring faults bursting",
		"shed-scoring->shed-learning:recovered",
		"shed-learning->normal:recovered",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, transitions[i], want[i])
		}
	}
}

func TestDegraderIOFaultBurstShedsLearning(t *testing.T) {
	d := NewDegrader(DegraderConfig{IOFaultBurst: 3, RecoverEvals: 1}, nil)
	d.Eval(Sample{}) // prime
	if m := d.Eval(Sample{IOFaults: 4}); m != ModeShedLearning {
		t.Fatalf("I/O burst => %v, want shed-learning", m)
	}
	if r := d.Reason(); r != "durable I/O faulting" {
		t.Fatalf("reason = %q", r)
	}
	// Counter reset (process restart semantics) reads as zero delta.
	if m := d.Eval(Sample{IOFaults: 1}); m != ModeNormal {
		t.Fatalf("counter reset sample => %v, want normal (recovered)", m)
	}
}
