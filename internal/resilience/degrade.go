package resilience

import "sync"

// Mode is a runtime degradation mode. The monitor's duties rank: emitting
// warnings (scoring) outranks improving the model (learning/adaptation),
// so under pressure the system sheds learning first and scoring only when
// scoring itself is the thing failing.
type Mode int32

const (
	// ModeNormal: full service — scoring, template learning, adaptation.
	ModeNormal Mode = iota
	// ModeShedLearning: keep scoring (warnings still flow), pause the
	// adaptation machinery (spooling, drift checks, candidate training).
	// Entered under overload — when shard queues back up, background
	// training is the load worth shedding — or when durable I/O keeps
	// faulting (an adaptation the process cannot persist is wasted work).
	ModeShedLearning
	// ModeShedScoring: keep learning templates (the signature tree stays
	// warm for the recovery), stop pushing messages through the scoring
	// path. Entered when scoring itself faults repeatedly (a poisoned
	// model panicking batch after batch); warnings can no longer be
	// emitted, so readiness must go red while this mode holds.
	ModeShedScoring
)

// String renders the mode for status surfaces.
func (m Mode) String() string {
	switch m {
	case ModeShedLearning:
		return "shed-learning"
	case ModeShedScoring:
		return "shed-scoring"
	default:
		return "normal"
	}
}

// Sample is one periodic observation of the pressure signals.
type Sample struct {
	// QueueFrac is the worst shard queue's fill fraction [0,1].
	QueueFrac float64
	// ScoringFaults is the cumulative scoring-fault count (shard panics);
	// the controller reacts to its per-evaluation delta.
	ScoringFaults uint64
	// IOFaults is the cumulative durable-I/O failure count (checkpoint +
	// spool write failures); per-evaluation delta, like ScoringFaults.
	IOFaults uint64
	// SLOFastBurn reports that at least one SLO's fast window is burning
	// above its threshold — the budget-spend early-warning the obs layer
	// evaluates; the controller sheds learning on it (scoring is the duty
	// the SLOs protect).
	SLOFastBurn bool
}

// DegraderConfig tunes the controller; zero values take the defaults.
type DegraderConfig struct {
	// ShedLearningAt is the queue fill fraction that sheds learning
	// (default 0.75).
	ShedLearningAt float64
	// RecoverAt is the queue fill fraction below which an evaluation
	// counts as clean (default 0.25) — hysteresis against flapping.
	RecoverAt float64
	// ScoringFaultBurst is the per-evaluation scoring-fault delta that
	// sheds scoring (default 3).
	ScoringFaultBurst uint64
	// IOFaultBurst is the per-evaluation I/O-fault delta that sheds
	// learning (default 3).
	IOFaultBurst uint64
	// RecoverEvals is how many consecutive clean evaluations step the
	// mode back one level (default 3).
	RecoverEvals int
}

func (c DegraderConfig) withDefaults() DegraderConfig {
	if c.ShedLearningAt <= 0 {
		c.ShedLearningAt = 0.75
	}
	if c.RecoverAt <= 0 {
		c.RecoverAt = 0.25
	}
	if c.ScoringFaultBurst == 0 {
		c.ScoringFaultBurst = 3
	}
	if c.IOFaultBurst == 0 {
		c.IOFaultBurst = 3
	}
	if c.RecoverEvals <= 0 {
		c.RecoverEvals = 3
	}
	return c
}

// Degrader turns periodic pressure samples into a degradation mode with
// hysteresis: escalation is immediate (one bad sample), recovery is
// stepwise (RecoverEvals consecutive clean samples walk the mode back one
// level at a time), so a flapping signal cannot oscillate the system
// between modes every tick.
type Degrader struct {
	cfg DegraderConfig
	// OnChange, when set, observes each transition.
	OnChange func(from, to Mode, reason string)

	mu         sync.Mutex
	mode       Mode
	clean      int
	primed     bool
	lastScoreF uint64
	lastIOF    uint64
	lastReason string
}

// NewDegrader builds a controller starting in ModeNormal.
func NewDegrader(cfg DegraderConfig, onChange func(from, to Mode, reason string)) *Degrader {
	return &Degrader{cfg: cfg.withDefaults(), OnChange: onChange}
}

// Mode returns the current mode.
func (d *Degrader) Mode() Mode {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mode
}

// Reason returns what caused the last transition ("" at startup).
func (d *Degrader) Reason() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastReason
}

// Eval folds one sample in and returns the (possibly new) mode. Call it on
// a fixed cadence; the fault-burst thresholds are per-call deltas.
func (d *Degrader) Eval(s Sample) Mode {
	d.mu.Lock()
	defer d.mu.Unlock()
	var scoreDelta, ioDelta uint64
	if d.primed {
		// Counters are cumulative and monotone; a restart-reset shows as a
		// smaller value and reads as a zero delta.
		if s.ScoringFaults > d.lastScoreF {
			scoreDelta = s.ScoringFaults - d.lastScoreF
		}
		if s.IOFaults > d.lastIOF {
			ioDelta = s.IOFaults - d.lastIOF
		}
	}
	d.primed = true
	d.lastScoreF, d.lastIOF = s.ScoringFaults, s.IOFaults

	// The pressure this sample calls for, independent of history.
	want, reason := ModeNormal, ""
	switch {
	case scoreDelta >= d.cfg.ScoringFaultBurst:
		want = ModeShedScoring
		reason = "scoring faults bursting"
	case s.QueueFrac >= d.cfg.ShedLearningAt:
		want = ModeShedLearning
		reason = "shard queues backed up"
	case ioDelta >= d.cfg.IOFaultBurst:
		want = ModeShedLearning
		reason = "durable I/O faulting"
	case s.SLOFastBurn:
		want = ModeShedLearning
		reason = "SLO fast window burning"
	}

	switch {
	case want > d.mode:
		d.transition(want, reason)
	case want == d.mode:
		d.clean = 0
	default:
		// Recovery: only samples that are clean for the *current* mode's
		// trigger count, and the queue must actually have drained.
		if s.QueueFrac <= d.cfg.RecoverAt && scoreDelta == 0 && ioDelta == 0 && !s.SLOFastBurn {
			d.clean++
			if d.clean >= d.cfg.RecoverEvals {
				d.transition(d.mode-1, "recovered")
			}
		} else {
			d.clean = 0
		}
	}
	return d.mode
}

// transition applies a mode change. Caller holds d.mu.
func (d *Degrader) transition(to Mode, reason string) {
	from := d.mode
	d.mode = to
	d.clean = 0
	d.lastReason = reason
	if d.OnChange != nil && from != to {
		d.OnChange(from, to, reason)
	}
}
