package resilience

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed admits every call (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects every call until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen has admitted one probe and is waiting on its
	// outcome; further calls are rejected until the probe reports.
	BreakerHalfOpen
)

// String returns the conventional lowercase state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a consecutive-failure circuit breaker for background control
// loops: Threshold consecutive failures open it, every call is rejected
// for Cooldown, then exactly one probe is admitted (half-open) — success
// closes the breaker, failure re-opens it for another cooldown. It exists
// so a persistently failing subsystem (the adaptation cycle hitting a
// lifecycle bug, a wedged dependency) costs one skipped call per cooldown
// instead of a crash loop inside the serving process.
//
// All methods are safe for concurrent use. A nil Breaker admits everything.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the breaker
	// (values below 1 read as 1).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (0 reads as 1 minute).
	Cooldown time.Duration

	mu       sync.Mutex
	state    BreakerState
	failures int // consecutive failures while closed
	openedAt time.Time
	opens    uint64
	now      func() time.Time // test hook; nil means time.Now
}

// BreakerStatus is a snapshot for status surfaces.
type BreakerStatus struct {
	State BreakerState `json:"-"`
	// StateName is State rendered for JSON consumers.
	StateName string `json:"state"`
	// ConsecutiveFailures is the current closed-state failure streak.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Opens counts closed→open (and half-open→open) transitions.
	Opens uint64 `json:"opens"`
	// OpenFor is how long the breaker has been open (0 unless open).
	OpenFor time.Duration `json:"-"`
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

// Allow reports whether a call may proceed, transitioning open→half-open
// once the cooldown has elapsed (the admitted call is the probe). Callers
// that proceed must report the outcome via Success or Failure.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		cd := b.Cooldown
		if cd <= 0 {
			cd = time.Minute
		}
		if b.clock().Sub(b.openedAt) >= cd {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // half-open: one probe is already in flight
		return false
	}
}

// Success reports a successful call: the failure streak resets and a
// half-open breaker closes.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.failures = 0
	b.state = BreakerClosed
	b.mu.Unlock()
}

// Failure reports a failed call: a half-open probe re-opens the breaker
// immediately, a closed breaker opens once the streak reaches Threshold.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	threshold := b.Threshold
	if threshold < 1 {
		threshold = 1
	}
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		b.failures++
		if b.failures >= threshold {
			b.open()
		}
	default: // already open (a straggling in-flight call): leave the clock alone
	}
}

// open transitions to the open state. Caller holds b.mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.failures = 0
	b.openedAt = b.clock()
	b.opens++
}

// State returns the current position without side effects (it does not
// perform the open→half-open cooldown transition; Allow does).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Status returns a snapshot for /statusz-style surfaces.
func (b *Breaker) Status() BreakerStatus {
	if b == nil {
		return BreakerStatus{StateName: BreakerClosed.String()}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStatus{
		State:               b.state,
		StateName:           b.state.String(),
		ConsecutiveFailures: b.failures,
		Opens:               b.opens,
	}
	if b.state == BreakerOpen {
		st.OpenFor = b.clock().Sub(b.openedAt)
	}
	return st
}
