// Package resilience is the runtime's self-healing toolkit: exponential
// backoff with jitter, a deadline-bounded retrier for durable I/O, a
// circuit breaker for background control loops, a supervisor/heartbeat
// pair for long-lived workers, quarantine of corrupt artifacts, and a
// degradation-mode controller. The paper's monitor is only useful if it
// keeps emitting warnings *through* the failure episodes it predicts; this
// package is the machinery that keeps a partially-failing monitor process
// degraded instead of dead. It depends only on the standard library so
// every layer (ingest, lifecycle, cmd) can use it without cycles.
package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff produces an exponentially growing delay sequence with
// multiplicative jitter: the n-th delay is uniform in
// [base·factorⁿ, base·factorⁿ·(1+Jitter)], capped at Max. Jitter breaks
// the reconnect stampede after a fleet-wide blip — a thousand monitors
// that all saw the same outage must not all retry on the same tick.
//
// The zero value is unusable; construct with NewBackoff. A Backoff is safe
// for concurrent use, though each retry loop usually owns its own.
type Backoff struct {
	// Base is the first delay (default 1ms).
	Base time.Duration
	// Max caps the un-jittered delay (default 1s). With jitter the
	// returned delay is at most Max·(1+Jitter).
	Max time.Duration
	// Factor is the growth multiplier (default 2).
	Factor float64
	// Jitter is the uniform jitter fraction added on top of the
	// deterministic delay: 0.5 means up to +50%. Negative reads as 0.
	Jitter float64

	mu  sync.Mutex
	cur time.Duration
	rng *rand.Rand
}

// NewBackoff builds a backoff; zero fields take the defaults above. seed
// fixes the jitter sequence — tests pass a constant, production callers
// pass something process-unique (0 means "seed from the clock"), because a
// shared seed would re-synchronize the very stampede jitter exists to
// break.
func NewBackoff(base, max time.Duration, jitter float64, seed int64) *Backoff {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	b := &Backoff{Base: base, Max: max, Factor: 2, Jitter: jitter}
	b.rng = rand.New(rand.NewSource(seed))
	return b
}

// Next returns the next delay in the sequence and advances it.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	base, max, factor, jitter := b.Base, b.Max, b.Factor, b.Jitter
	if base <= 0 {
		base = time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	if factor < 1 {
		factor = 2
	}
	if jitter < 0 {
		jitter = 0
	}
	if b.cur <= 0 {
		b.cur = base
	}
	d := b.cur
	if d > max {
		d = max
	}
	next := time.Duration(float64(b.cur) * factor)
	if next > max {
		next = max
	}
	b.cur = next
	if jitter > 0 && b.rng != nil {
		d += time.Duration(b.rng.Float64() * jitter * float64(d))
	}
	return d
}

// Reset restarts the sequence from Base, the call a retry loop makes after
// a success.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.cur = 0
	b.mu.Unlock()
}
