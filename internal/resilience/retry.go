package resilience

import (
	"fmt"
	"os"
	"time"
)

// RetryPolicy bounds a Retry loop.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first
	// (default 3; values below 1 read as 1).
	Attempts int
	// Base, Max, and Jitter parameterize the inter-attempt backoff
	// (NewBackoff defaults apply to zero values).
	Base, Max time.Duration
	Jitter    float64
	// Seed fixes the jitter sequence; 0 seeds from the clock.
	Seed int64
}

// Retry runs fn until it succeeds, the policy's attempts are exhausted, or
// stop closes (nil stop never interrupts). Between attempts it sleeps the
// policy's jittered backoff. The returned error is the last attempt's,
// annotated with the attempt count; a stop-interrupted retry returns the
// last error seen (or nil when fn never ran to failure).
//
// Retry is the wrapper every durable I/O path goes through: a checkpoint
// or spool write that fails on a transient condition (disk briefly full,
// injected torn write) retries instead of abandoning the snapshot, and the
// atomic-write discipline underneath guarantees the previous artifact
// survives every failed attempt — last-known-good is never at risk.
func Retry(stop <-chan struct{}, pol RetryPolicy, fn func() error) error {
	attempts := pol.Attempts
	if attempts < 1 {
		attempts = 3
	}
	b := NewBackoff(pol.Base, pol.Max, pol.Jitter, pol.Seed)
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil {
			return nil
		}
		if i == attempts-1 {
			break
		}
		t := time.NewTimer(b.Next())
		select {
		case <-t.C:
		case <-stop:
			t.Stop()
			return fmt.Errorf("resilience: retry interrupted after %d attempt(s): %w", i+1, err)
		}
		t.Stop()
	}
	return fmt.Errorf("resilience: %d attempt(s) failed: %w", attempts, err)
}

// Quarantine moves a corrupt artifact aside (path → path.corrupt, or
// .corrupt.N when earlier quarantines exist) so the process can cold-start
// past it without destroying the evidence — and without the next startup
// tripping over the same bad bytes. It returns the quarantine path.
func Quarantine(path string) (string, error) {
	for i := 0; ; i++ {
		q := path + ".corrupt"
		if i > 0 {
			q = fmt.Sprintf("%s.corrupt.%d", path, i)
		}
		if _, err := os.Lstat(q); err == nil {
			continue // occupied by an earlier quarantine
		} else if !os.IsNotExist(err) {
			return "", fmt.Errorf("resilience: probing quarantine slot %s: %w", q, err)
		}
		if err := os.Rename(path, q); err != nil {
			return "", fmt.Errorf("resilience: quarantining %s: %w", path, err)
		}
		return q, nil
	}
}
