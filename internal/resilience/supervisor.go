package resilience

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Heartbeat is a lock-free liveness stamp a worker beats on every unit of
// progress and a watchdog reads to detect a wedged worker. The zero value
// reads as "never beat".
type Heartbeat struct {
	ns atomic.Int64
}

// Beat stamps the heartbeat with the current time.
func (h *Heartbeat) Beat() { h.ns.Store(time.Now().UnixNano()) }

// BeatAt stamps the heartbeat with an explicit time (tests, replay).
func (h *Heartbeat) BeatAt(t time.Time) { h.ns.Store(t.UnixNano()) }

// Load returns the raw beat stamp (nanoseconds since the epoch; 0 means
// never beat) — watchdogs compare stamps across ticks to distinguish a
// stalled worker from an idle one.
func (h *Heartbeat) Load() int64 { return h.ns.Load() }

// Age returns how long ago the last beat was, relative to now. A heartbeat
// that never beat reports a very large age — an unstarted worker with
// pending work is exactly what a watchdog should flag.
func (h *Heartbeat) Age(now time.Time) time.Duration {
	ns := h.ns.Load()
	if ns == 0 {
		return time.Duration(1<<63 - 1)
	}
	return now.Sub(time.Unix(0, ns))
}

// Supervisor keeps one worker function alive: it runs fn on its own
// goroutine, recovers panics, and restarts with jittered exponential
// backoff until Stop. fn receives the stop channel and must return when it
// closes; any other return (or a panic) is an abnormal exit and triggers a
// restart. This is the wrapper around shard workers and the adaptation
// loop: a panicking worker costs a restart and a counter increment, never
// the process.
type Supervisor struct {
	// Name labels restart events.
	Name string
	// Run is the supervised body. It must honor stop.
	Run func(stop <-chan struct{})
	// Backoff paces restarts; nil gets NewBackoff defaults (1ms→1s, +50%
	// jitter, clock-seeded).
	Backoff *Backoff
	// OnRestart, when set, observes each restart with the recovered panic
	// value ("" for a non-panic abnormal return). It runs on the
	// supervisor goroutine; keep it cheap.
	OnRestart func(name, cause string)

	mu       sync.Mutex
	running  bool
	stop     chan struct{}
	done     chan struct{}
	restarts atomic.Uint64
}

// Start launches the supervised worker; idempotent while running.
func (s *Supervisor) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return
	}
	s.running = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	if s.Backoff == nil {
		s.Backoff = NewBackoff(0, 0, 0.5, 0)
	}
	go s.loop(s.stop, s.done)
}

// Stop signals the worker and waits for it to exit. Idempotent.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	stop, done := s.stop, s.done
	s.mu.Unlock()
	close(stop)
	<-done
}

// Restarts returns how many times the worker has been restarted.
func (s *Supervisor) Restarts() uint64 { return s.restarts.Load() }

func (s *Supervisor) loop(stop chan struct{}, done chan struct{}) {
	defer close(done)
	for {
		cause := s.runOnce(stop)
		select {
		case <-stop:
			return
		default:
		}
		s.restarts.Add(1)
		if s.OnRestart != nil {
			s.OnRestart(s.Name, cause)
		}
		t := time.NewTimer(s.Backoff.Next())
		select {
		case <-t.C:
		case <-stop:
			t.Stop()
			return
		}
		t.Stop()
	}
}

// runOnce runs the body once, converting a panic into a restart cause.
func (s *Supervisor) runOnce(stop <-chan struct{}) (cause string) {
	defer func() {
		if r := recover(); r != nil {
			cause = fmt.Sprint(r)
		}
	}()
	s.Run(stop)
	return ""
}
