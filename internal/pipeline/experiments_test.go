package pipeline

import (
	"testing"
	"time"

	"nfvpredict/internal/nfvsim"
)

func TestTrainingDataSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	ds := testDataset(t, func(c *nfvsim.Config) {
		c.NumVPEs = 8
		c.Months = 5
		c.UpdateMonth = -1
		c.MeanFaultGapHours = 200
	})
	rows, err := TrainingDataSweep(ds, fastConfig(Customized, MethodLSTM), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %+v", rows)
	}
	byLabel := map[string]ExperimentRow{}
	for _, r := range rows {
		t.Logf("%-20s trainEvents=%6d F=%.2f P=%.2f R=%.2f", r.Label, r.TrainEvents, r.Best.F, r.Best.Precision, r.Best.Recall)
		byLabel[r.Label] = r
	}
	// The §5.2 claim in shape: clustered 1 month must beat per-vPE 1 month
	// and come close to (or beat) per-vPE 3 months.
	solo1 := byLabel["per-vPE 1mo"]
	solo3 := byLabel["per-vPE 3mo"]
	var clustered ExperimentRow
	for label, r := range byLabel {
		if len(label) > 9 && label[:9] == "clustered" {
			clustered = r
		}
	}
	if clustered.Label == "" {
		t.Fatal("no clustered row")
	}
	if clustered.Best.F <= solo1.Best.F {
		t.Errorf("clustered 1mo F=%.2f should beat per-vPE 1mo F=%.2f", clustered.Best.F, solo1.Best.F)
	}
	if clustered.Best.F < solo3.Best.F-0.12 {
		t.Errorf("clustered 1mo F=%.2f should be near per-vPE 3mo F=%.2f", clustered.Best.F, solo3.Best.F)
	}
	if clustered.TrainEvents >= solo3.TrainEvents {
		t.Errorf("clustered 1mo should use less data than per-vPE 3mo: %d vs %d", clustered.TrainEvents, solo3.TrainEvents)
	}
}

func TestTrainingDataSweepValidation(t *testing.T) {
	ds := testDataset(t, func(c *nfvsim.Config) { c.Months = 2; c.UpdateMonth = -1; c.NumVPEs = 2 })
	if _, err := TrainingDataSweep(ds, fastConfig(Customized, MethodLSTM), 1); err == nil {
		t.Fatal("expected error: not enough prior months")
	}
	if _, err := TrainingDataSweep(ds, fastConfig(Customized, MethodLSTM), 9); err == nil {
		t.Fatal("expected error: eval month outside horizon")
	}
}

func TestAdaptRecoverySweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	ds := testDataset(t, func(c *nfvsim.Config) {
		c.NumVPEs = 8
		c.Months = 7
		c.UpdateMonth = 2
		c.UpdateFraction = 1.0
		c.MeanFaultGapHours = 200
	})
	rows, err := AdaptRecoverySweep(ds, fastConfig(CustomizedAdaptive, MethodLSTM), 2)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]ExperimentRow{}
	for _, r := range rows {
		t.Logf("%-22s trainEvents=%6d F=%.2f P=%.2f R=%.2f", r.Label, r.TrainEvents, r.Best.F, r.Best.Precision, r.Best.Recall)
		byLabel[r.Label] = r
	}
	adapt := byLabel["transfer adapt 1wk"]
	teacher := byLabel["teacher (no recovery)"]
	retrain1wk := byLabel["retrain 1wk"]
	retrain2mo := byLabel["retrain 2mo"]
	// Shape of the §5.2 claim: adaptation with one week of data must beat
	// both the obsolete teacher and scratch retraining on the same week,
	// and come close to scratch retraining on two months.
	if adapt.Best.F <= teacher.Best.F {
		t.Errorf("adapt F=%.2f should beat obsolete teacher F=%.2f", adapt.Best.F, teacher.Best.F)
	}
	if adapt.Best.F <= retrain1wk.Best.F-0.06 {
		t.Errorf("adapt F=%.2f should be at least on par with 1wk scratch retrain F=%.2f", adapt.Best.F, retrain1wk.Best.F)
	}
	if adapt.Best.F < retrain2mo.Best.F-0.15 {
		t.Errorf("adapt F=%.2f should be near 2mo retrain F=%.2f", adapt.Best.F, retrain2mo.Best.F)
	}
}

func TestAdaptRecoverySweepValidation(t *testing.T) {
	ds := testDataset(t, func(c *nfvsim.Config) { c.Months = 3; c.UpdateMonth = 1 })
	if _, err := AdaptRecoverySweep(ds, fastConfig(CustomizedAdaptive, MethodLSTM), 1); err == nil {
		t.Fatal("expected error: not enough following months")
	}
}

func TestPredictiveWindowSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	ds := testDataset(t, func(c *nfvsim.Config) { c.Months = 3; c.UpdateMonth = -1; c.NumVPEs = 5 })
	cfg := fastConfig(Customized, MethodLSTM)
	res, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	windows := []time.Duration{time.Hour, 24 * time.Hour, 48 * time.Hour}
	curves := PredictiveWindowSweep(ds, res, cfg, windows)
	if len(curves) != 3 {
		t.Fatalf("curves: %d", len(curves))
	}
	var f1h, f1d, f2d float64
	for w, curve := range curves {
		best := 0.0
		for _, p := range curve {
			if p.F > best {
				best = p.F
			}
		}
		switch w {
		case time.Hour:
			f1h = best
		case 24 * time.Hour:
			f1d = best
		case 48 * time.Hour:
			f2d = best
		}
		t.Logf("window %v: best F=%.2f", w, best)
	}
	// Figure 5's shape: 1-day and 2-day windows converge; both at least
	// match the 1-hour window.
	if f1d < f1h-0.05 || f2d < f1h-0.05 {
		t.Errorf("longer windows should not be worse: 1h=%.2f 1d=%.2f 2d=%.2f", f1h, f1d, f2d)
	}
	if diff := f2d - f1d; diff > 0.1 || diff < -0.1 {
		t.Errorf("1d and 2d should converge: 1d=%.2f 2d=%.2f", f1d, f2d)
	}
}
