// Package pipeline orchestrates the paper's end-to-end protocol on a
// simulated deployment trace: signature-tree template extraction, vPE
// clustering (§4.3), per-cluster model training with the month-1 data,
// monthly incremental updates with walk-forward testing (§5.1), drift
// detection and transfer-learning adaptation after system updates (§4.3),
// and evaluation against trouble tickets (§5.2-5.3). The three system
// variants of Figure 7 — baseline single model, per-cluster customization,
// and customization + adaptation — differ only in configuration.
package pipeline

import (
	"sort"
	"time"

	"nfvpredict/internal/cluster"
	"nfvpredict/internal/features"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/nfvsim"
	"nfvpredict/internal/sigtree"
	"nfvpredict/internal/ticket"
)

// Dataset is a trace transformed for analysis: per-vPE template event
// streams (via the signature tree), month boundaries, and ticket data.
type Dataset struct {
	// VPEs lists vPE names in stable order.
	VPEs []string
	// Start is the first month boundary; Months the horizon length.
	Start  time.Time
	Months int
	// Streams holds each vPE's full-horizon template events in time order.
	Streams map[string][]features.Event
	// Tickets holds all tickets sorted by report time.
	Tickets []ticket.Ticket
	// Tree is the signature tree grown over the whole trace.
	Tree *sigtree.Tree
}

// BuildDataset scans the trace once in time order, growing the signature
// tree (§4.2's template extraction) and emitting per-vPE event streams.
// pPE hosts (if present) are excluded: the paper's detector runs on vPE
// syslogs.
func BuildDataset(tr *nfvsim.Trace, start time.Time, months int) *Dataset {
	ds := &Dataset{
		VPEs:    append([]string(nil), tr.VPENames...),
		Start:   start,
		Months:  months,
		Streams: make(map[string][]features.Event),
		Tickets: append([]ticket.Ticket(nil), tr.Tickets...),
		Tree:    sigtree.New(),
	}
	sort.Strings(ds.VPEs)
	isVPE := make(map[string]bool, len(ds.VPEs))
	for _, v := range ds.VPEs {
		isVPE[v] = true
	}
	for i := range tr.Messages {
		m := &tr.Messages[i]
		if !isVPE[m.Host] {
			continue
		}
		tpl := ds.Tree.Learn(m.Text)
		ds.Streams[m.Host] = append(ds.Streams[m.Host], features.Event{Time: m.Time, Template: tpl.ID})
	}
	return ds
}

// BuildDatasetFromMessages is BuildDataset for a raw message slice (e.g.
// loaded from JSONL) with an explicit vPE list.
func BuildDatasetFromMessages(msgs []logfmt.Message, tickets []ticket.Ticket, vpes []string, start time.Time, months int) *Dataset {
	tr := &nfvsim.Trace{Messages: msgs, Tickets: tickets, VPENames: vpes}
	return BuildDataset(tr, start, months)
}

// MonthStart returns the first instant of month m (0-based).
func (ds *Dataset) MonthStart(m int) time.Time { return ds.Start.AddDate(0, m, 0) }

// sliceRange returns the events of vpe within [from, to).
func (ds *Dataset) sliceRange(vpe string, from, to time.Time) []features.Event {
	s := ds.Streams[vpe]
	lo := sort.Search(len(s), func(i int) bool { return !s[i].Time.Before(from) })
	hi := sort.Search(len(s), func(i int) bool { return !s[i].Time.Before(to) })
	return s[lo:hi]
}

// MonthEvents returns vpe's events during month m.
func (ds *Dataset) MonthEvents(vpe string, m int) []features.Event {
	return ds.sliceRange(vpe, ds.MonthStart(m), ds.MonthStart(m+1))
}

// RangeEvents returns vpe's events in [from, to).
func (ds *Dataset) RangeEvents(vpe string, from, to time.Time) []features.Event {
	return ds.sliceRange(vpe, from, to)
}

// CleanEvents returns vpe's events in [from, to) with the paper's training
// exclusion applied: anything within exclusion before a ticket's report
// through its repair finish is removed (§4.2: 3 days).
func (ds *Dataset) CleanEvents(vpe string, from, to time.Time, exclusion time.Duration) []features.Event {
	events := ds.sliceRange(vpe, from, to)
	if len(events) == 0 {
		return nil
	}
	// Collect exclusion intervals for this vPE overlapping [from, to).
	type span struct{ lo, hi time.Time }
	var spans []span
	for _, tk := range ds.Tickets {
		if tk.VPE != vpe {
			continue
		}
		lo := tk.Report.Add(-exclusion)
		hi := tk.Repair
		if hi.Before(from) || lo.After(to) {
			continue
		}
		spans = append(spans, span{lo, hi})
	}
	if len(spans) == 0 {
		return events
	}
	out := make([]features.Event, 0, len(events))
	for _, e := range events {
		excluded := false
		for _, sp := range spans {
			if !e.Time.Before(sp.lo) && !e.Time.After(sp.hi) {
				excluded = true
				break
			}
		}
		if !excluded {
			out = append(out, e)
		}
	}
	return out
}

// CleanMonthStreams returns the per-vPE clean streams of month m for the
// given vPEs — the training unit of the walk-forward protocol.
func (ds *Dataset) CleanMonthStreams(vpes []string, m int, exclusion time.Duration) [][]features.Event {
	var out [][]features.Event
	for _, v := range vpes {
		if ev := ds.CleanEvents(v, ds.MonthStart(m), ds.MonthStart(m+1), exclusion); len(ev) > 0 {
			out = append(out, ev)
		}
	}
	return out
}

// MonthHistogram returns vpe's template histogram for month m, the
// clustering and drift-detection feature (§3.3, §4.3).
func (ds *Dataset) MonthHistogram(vpe string, m int) cluster.Histogram {
	h := cluster.Histogram{}
	for _, e := range ds.MonthEvents(vpe, m) {
		h.Add(e.Template)
	}
	return h
}

// RangeHistogram returns vpe's template histogram over [from, to).
func (ds *Dataset) RangeHistogram(vpe string, from, to time.Time) cluster.Histogram {
	h := cluster.Histogram{}
	for _, e := range ds.sliceRange(vpe, from, to) {
		h.Add(e.Template)
	}
	return h
}
