package pipeline

import (
	"fmt"
	"sync"
	"time"

	"nfvpredict/internal/cluster"
	"nfvpredict/internal/detect"
	"nfvpredict/internal/eval"
	"nfvpredict/internal/features"
	"nfvpredict/internal/obs"
)

// Variant selects one of the Figure 7 system configurations.
type Variant int

// The three variants compared in Figure 7.
const (
	// Baseline trains a single model over all vPEs (K=1), with monthly
	// incremental updates but no fast adaptation.
	Baseline Variant = iota
	// Customized clusters vPEs and trains one model per cluster (§4.3).
	Customized
	// CustomizedAdaptive adds drift detection and transfer-learning
	// adaptation after system updates (§4.3).
	CustomizedAdaptive
)

// String names the variant as in Figure 7's legend.
func (v Variant) String() string {
	switch v {
	case Baseline:
		return "Baseline"
	case Customized:
		return "vPE cust"
	case CustomizedAdaptive:
		return "vPE cust + adapt"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Method selects the detector family (Figure 6).
type Method string

// The three methods of Figure 6.
const (
	MethodLSTM        Method = "lstm"
	MethodAutoencoder Method = "autoencoder"
	MethodOCSVM       Method = "ocsvm"
)

// Config parameterizes a pipeline run.
type Config struct {
	// Variant picks the Figure 7 system configuration.
	Variant Variant
	// Method picks the detector family.
	Method Method
	// LSTM, AE, OCSVM configure the respective detectors; only the one
	// matching Method is used.
	LSTM  detect.LSTMConfig
	AE    detect.AEConfig
	OCSVM detect.OCSVMConfig
	// Eval sets the anomaly→ticket mapping parameters.
	Eval eval.Config
	// TrainExclusion is the §4.2 training-data exclusion around tickets.
	TrainExclusion time.Duration
	// KMin/KMax bound the modularity-based cluster-count search.
	KMin, KMax int
	// ClusterDim is the dense histogram dimension for K-means.
	ClusterDim int
	// DriftThreshold is the per-vPE month-over-month cosine below which
	// a vPE counts as drifted (§3.3: normal months stay above 0.8;
	// system updates drop below ~0.4; rollout staggering inside a month
	// dilutes the drop, so the default sits between the two regimes).
	DriftThreshold float64
	// DriftFraction is the fraction of a cluster's vPEs that must drift
	// in one month to trigger transfer-learning adaptation.
	DriftFraction float64
	// AdaptWindow is how much fresh data adaptation uses (§4.3: 1 week).
	AdaptWindow time.Duration
	// RetrainLagMonths is the non-adaptive fallback: after drift is
	// detected, a full from-scratch retrain happens once this many
	// months of fresh data have accumulated (§4.3: "rebuilding a
	// reasonable training dataset takes a long time, e.g. 3 months").
	RetrainLagMonths int
	// SweepPoints is the PRC threshold-sweep resolution.
	SweepPoints int
	// Parallelism bounds concurrent per-vPE scoring; ≤0 = serial.
	Parallelism int
	// Metrics, when set, makes the run observable: per-cluster LSTM
	// detectors report epochs/loss/throughput under a cluster<i>_ prefix,
	// and the walk-forward loop counts trainings, updates, adaptations,
	// and retrains. Nil (the default) keeps the run entirely
	// uninstrumented.
	Metrics *obs.Registry
}

// DefaultConfig returns the paper-faithful configuration for the
// customization+adaptation LSTM system.
func DefaultConfig() Config {
	return Config{
		Variant:          CustomizedAdaptive,
		Method:           MethodLSTM,
		LSTM:             detect.DefaultLSTMConfig(),
		AE:               detect.DefaultAEConfig(),
		OCSVM:            detect.DefaultOCSVMConfig(),
		Eval:             eval.DefaultConfig(),
		TrainExclusion:   72 * time.Hour,
		KMin:             1,
		KMax:             8,
		ClusterDim:       128,
		DriftThreshold:   0.7,
		DriftFraction:    0.3,
		AdaptWindow:      7 * 24 * time.Hour,
		RetrainLagMonths: 3,
		SweepPoints:      40,
		Parallelism:      8,
	}
}

// MonthMetrics is one month's evaluation in the walk-forward protocol.
type MonthMetrics struct {
	// Month is the test month start.
	Month time.Time
	// Index is the 0-based month index.
	Index int
	// Best is the month's best-F operating point.
	Best eval.PRPoint
	// Warnings and FalseAlarms are counts at the month's best threshold.
	Warnings, FalseAlarms int
	// Adapted records whether transfer-learning adaptation ran before
	// this month's model was used.
	Adapted bool
}

// Result is a full pipeline run outcome.
type Result struct {
	// Clusters is the vPE grouping used (K=1 for Baseline).
	Clusters *cluster.Result
	// Events holds every scored event from the test months (1..Months-1).
	Events []detect.ScoredEvent
	// Monthly holds the Figure 7 series.
	Monthly []MonthMetrics
	// Curve is the PRC over the full test period (Figures 5-6).
	Curve []eval.PRPoint
	// Best is the overall best-F operating point (§5.2's P=0.80/R=0.81).
	Best eval.PRPoint
	// Outcome is the full mapping at the best threshold (Figure 8 input).
	Outcome *eval.Outcome
}

// newDetector builds a fresh detector for one cluster, with a
// cluster-specific seed so models are independent.
func (c *Config) newDetector(clusterIdx int) (detect.Detector, error) {
	switch c.Method {
	case MethodLSTM, "":
		cfg := c.LSTM
		cfg.Seed += int64(clusterIdx) * 101
		if cfg.Parallelism <= 0 {
			// Inherit the pipeline's worker budget for in-training
			// parallelism (batch gradients, loss evaluation).
			cfg.Parallelism = c.Parallelism
		}
		d := detect.NewLSTMDetector(cfg)
		if c.Metrics != nil {
			d.SetMetrics(c.Metrics, fmt.Sprintf("cluster%d_", clusterIdx))
		}
		return d, nil
	case MethodAutoencoder:
		cfg := c.AE
		cfg.Seed += int64(clusterIdx) * 101
		return detect.NewAEDetector(cfg), nil
	case MethodOCSVM:
		cfg := c.OCSVM
		cfg.Seed += int64(clusterIdx) * 101
		return detect.NewOCSVMDetector(cfg), nil
	default:
		return nil, fmt.Errorf("pipeline: unknown method %q", c.Method)
	}
}

// Run executes the walk-forward protocol: train on month 0, then for each
// month m ≥ 1 score month m with the models trained through month m−1,
// update (or adapt) with month m, and continue (§5.1 "Training and
// Testing").
func Run(ds *Dataset, cfg Config) (*Result, error) {
	if ds.Months < 2 {
		return nil, fmt.Errorf("pipeline: need at least 2 months, got %d", ds.Months)
	}
	res := &Result{}

	// Walk-forward phase counters; all handles are nil (no-op) when
	// cfg.Metrics is nil.
	trainings := cfg.Metrics.Counter("pipeline_trainings_total", "Per-cluster initial trainings completed.")
	updates := cfg.Metrics.Counter("pipeline_updates_total", "Per-cluster monthly incremental updates completed.")
	adapts := cfg.Metrics.Counter("pipeline_adaptations_total", "Transfer-learning adaptations run after drift detection.")
	retrains := cfg.Metrics.Counter("pipeline_retrains_total", "Full from-scratch retrains (non-adaptive drift fallback).")
	monthGauge := cfg.Metrics.Gauge("pipeline_month", "Walk-forward month currently being scored.")
	trainSeconds := cfg.Metrics.Histogram("pipeline_train_seconds",
		"Wall time of per-cluster training phases (train/retrain).", obs.ExpBuckets(0.01, 4, 10))

	// --- Clustering on month-0 histograms (§4.3) -----------------------
	hists := make(map[string]cluster.Histogram, len(ds.VPEs))
	for _, v := range ds.VPEs {
		hists[v] = ds.MonthHistogram(v, 0)
	}
	switch cfg.Variant {
	case Baseline:
		res.Clusters = cluster.KMeans(hists, 1, cfg.ClusterDim, cfg.LSTM.Seed)
	default:
		r, err := cluster.SelectK(hists, cfg.KMin, cfg.KMax, cfg.ClusterDim, cfg.LSTM.Seed)
		if err != nil {
			return nil, err
		}
		res.Clusters = r
	}
	members := make([][]string, res.Clusters.K)
	for ci := 0; ci < res.Clusters.K; ci++ {
		members[ci] = res.Clusters.Members(ci)
	}

	// --- Initial training on month 0 -----------------------------------
	// Detectors are independent (cluster-specific seeds and disjoint
	// training streams; the dataset is immutable), so the K trainings run
	// concurrently. Results are identical to the sequential order.
	dets := make([]detect.Detector, res.Clusters.K)
	for ci := range dets {
		d, err := cfg.newDetector(ci)
		if err != nil {
			return nil, err
		}
		dets[ci] = d
	}
	err := forEachCluster(res.Clusters.K, cfg.Parallelism, func(ci int) error {
		streams := ds.CleanMonthStreams(members[ci], 0, cfg.TrainExclusion)
		if len(streams) == 0 {
			return nil
		}
		start := trainSeconds.Start()
		if err := dets[ci].Train(streams); err != nil {
			return fmt.Errorf("pipeline: initial training cluster %d: %w", ci, err)
		}
		trainSeconds.ObserveDuration(start)
		trainings.Inc()
		return nil
	})
	if err != nil {
		return nil, err
	}

	// --- Walk forward ---------------------------------------------------
	adaptedPrev := make([]bool, res.Clusters.K)
	retrainAt := make([]int, res.Clusters.K) // month of scheduled full retrain (0 = none)
	for m := 1; m < ds.Months; m++ {
		monthFrom, monthTo := ds.MonthStart(m), ds.MonthStart(m+1)
		monthGauge.SetInt(m)
		adaptsThisMonth := make([]int, res.Clusters.K)

		// Score month m in ~3.5-day segments. The adaptive variant checks
		// for drift after each segment over a trailing one-week histogram
		// and, on detection, immediately runs transfer-learning recovery
		// on up to AdaptWindow of the freshest data — the paper's "one
		// week of new training data is sufficient to quickly bootstrap
		// the model after software update" (§4.3). Scoring the following
		// segments with the student bounds the false-alarm storm to
		// under a week, as in the paper's Figure 7 recovery.
		const segment = 84 * time.Hour
		var monthEvents []detect.ScoredEvent
		for wFrom := monthFrom; wFrom.Before(monthTo); {
			wTo := wFrom.Add(segment)
			if monthTo.Sub(wTo) < segment/2 {
				wTo = monthTo // absorb the short month tail
			}
			monthEvents = append(monthEvents, scoreRange(ds, dets, res.Clusters, wFrom, wTo, cfg.Parallelism)...)
			if cfg.Variant == CustomizedAdaptive {
				histFrom := wTo.Add(-cfg.AdaptWindow)
				if histFrom.Before(monthFrom) {
					histFrom = monthFrom
				}
				err := forEachCluster(res.Clusters.K, cfg.Parallelism, func(ci int) error {
					// Rollouts stagger across a cluster, so allow
					// repeated adaptation within the month when drift
					// persists for late-updated members.
					if adaptsThisMonth[ci] >= 2 || len(members[ci]) == 0 {
						return nil
					}
					if !clusterDriftedWeek(ds, members[ci], histFrom, wTo, m-1, cfg.DriftThreshold, cfg.DriftFraction) {
						return nil
					}
					var streams [][]features.Event
					for _, v := range members[ci] {
						if ev := ds.CleanEvents(v, wTo.Add(-cfg.AdaptWindow), wTo, cfg.TrainExclusion); len(ev) > 0 {
							streams = append(streams, ev)
						}
					}
					if len(streams) == 0 {
						return nil
					}
					if err := dets[ci].Adapt(streams); err != nil {
						return fmt.Errorf("pipeline: adapt cluster %d month %d: %w", ci, m, err)
					}
					adapts.Inc()
					adaptsThisMonth[ci]++
					return nil
				})
				if err != nil {
					return nil, err
				}
			}
			wFrom = wTo
		}
		res.Events = append(res.Events, monthEvents...)

		// Month metrics at the month's best threshold (Figure 7 series).
		thrs := detect.ThresholdSweep(monthEvents, cfg.SweepPoints)
		curve := eval.PRCurve(monthEvents, ds.Tickets, thrs, cfg.Eval, monthFrom, monthTo)
		best := eval.BestF(curve)
		anoms := detect.Threshold(monthEvents, best.Threshold)
		warns := detect.ClusterWarnings(anoms, cfg.Eval.ClusterWindow, cfg.Eval.MinClusterSize)
		o := eval.MapWarnings(warns, ds.Tickets, cfg.Eval, monthFrom, monthTo)
		mm := MonthMetrics{
			Month:       monthFrom,
			Index:       m,
			Best:        best,
			Warnings:    len(warns),
			FalseAlarms: o.FalseAlarms,
		}
		for ci := range adaptedPrev {
			if adaptedPrev[ci] || adaptsThisMonth[ci] > 0 {
				mm.Adapted = true
			}
		}
		res.Monthly = append(res.Monthly, mm)
		for ci := range adaptedPrev {
			adaptedPrev[ci] = adaptsThisMonth[ci] > 0
		}

		// Prepare models for month m+1: the monthly incremental update
		// (§4.3 online learning). Clusters that adapted mid-month skip
		// it — their student already absorbed the freshest regime, and a
		// full-month pass would mix pre-update data back in. Without
		// adaptation, drift instead schedules the paper's naive fallback:
		// a full retrain once RetrainLagMonths of fresh data exist.
		if m == ds.Months-1 {
			break
		}
		err := forEachCluster(res.Clusters.K, cfg.Parallelism, func(ci int) error {
			if adaptsThisMonth[ci] > 0 || len(members[ci]) == 0 {
				return nil
			}
			if cfg.Variant != CustomizedAdaptive && cfg.RetrainLagMonths > 0 {
				if retrainAt[ci] == 0 && clusterDriftedWeek(ds, members[ci], monthFrom, monthTo, m-1, cfg.DriftThreshold, cfg.DriftFraction) {
					retrainAt[ci] = m + cfg.RetrainLagMonths
				}
				if retrainAt[ci] == m {
					retrainAt[ci] = 0
					var streams [][]features.Event
					for _, v := range members[ci] {
						lo := m - cfg.RetrainLagMonths + 1
						if lo < 0 {
							lo = 0
						}
						if ev := ds.CleanEvents(v, ds.MonthStart(lo), monthTo, cfg.TrainExclusion); len(ev) > 0 {
							streams = append(streams, ev)
						}
					}
					if len(streams) > 0 {
						start := trainSeconds.Start()
						if err := dets[ci].Train(streams); err != nil {
							return fmt.Errorf("pipeline: retrain cluster %d month %d: %w", ci, m, err)
						}
						trainSeconds.ObserveDuration(start)
						retrains.Inc()
						return nil
					}
				}
			}
			streams := ds.CleanMonthStreams(members[ci], m, cfg.TrainExclusion)
			if len(streams) == 0 {
				return nil
			}
			if err := dets[ci].Update(streams); err != nil {
				return fmt.Errorf("pipeline: update cluster %d month %d: %w", ci, m, err)
			}
			updates.Inc()
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// --- Full-period PRC and operating point (Figures 5, 6, 8) ---------
	evalFrom, evalTo := ds.MonthStart(1), ds.MonthStart(ds.Months)
	thrs := detect.ThresholdSweep(res.Events, cfg.SweepPoints)
	res.Curve = eval.PRCurve(res.Events, ds.Tickets, thrs, cfg.Eval, evalFrom, evalTo)
	res.Best = eval.BestF(res.Curve)
	anoms := detect.Threshold(res.Events, res.Best.Threshold)
	warns := detect.ClusterWarnings(anoms, cfg.Eval.ClusterWindow, cfg.Eval.MinClusterSize)
	res.Outcome = eval.MapWarnings(warns, ds.Tickets, cfg.Eval, evalFrom, evalTo)
	return res, nil
}

// forEachCluster runs fn(ci) for ci in [0, k), fanning out across at most
// parallelism goroutines. Cluster detectors are mutually independent, so
// concurrent training produces exactly the sequential results; fn must
// only touch per-cluster state (indexed writes). The first error by
// cluster index is returned, making error selection deterministic too.
func forEachCluster(k, parallelism int, fn func(ci int) error) error {
	if parallelism > k {
		parallelism = k
	}
	if parallelism <= 1 || k <= 1 {
		for ci := 0; ci < k; ci++ {
			if err := fn(ci); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, k)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ci := w; ci < k; ci += parallelism {
				errs[ci] = fn(ci)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// scoreRange scores every vPE's [from, to) stream with its cluster's
// model, fanning out across vPEs.
func scoreRange(ds *Dataset, dets []detect.Detector, cl *cluster.Result, from, to time.Time, parallelism int) []detect.ScoredEvent {
	type job struct {
		vpe string
		det detect.Detector
	}
	var jobs []job
	for _, v := range ds.VPEs {
		ci := cl.Assign[v]
		if ci < 0 || ci >= len(dets) || dets[ci] == nil {
			continue
		}
		jobs = append(jobs, job{vpe: v, det: dets[ci]})
	}
	results := make([][]detect.ScoredEvent, len(jobs))
	if parallelism <= 1 {
		for i, j := range jobs {
			results[i] = j.det.Score(j.vpe, ds.RangeEvents(j.vpe, from, to))
		}
	} else {
		sem := make(chan struct{}, parallelism)
		var wg sync.WaitGroup
		for i, j := range jobs {
			wg.Add(1)
			go func(i int, j job) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i] = j.det.Score(j.vpe, ds.RangeEvents(j.vpe, from, to))
			}(i, j)
		}
		wg.Wait()
	}
	var out []detect.ScoredEvent
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// clusterDriftedWeek reports whether enough of a cluster's vPEs changed
// their syslog distribution in the week [wFrom, wTo) relative to their
// baseline month to declare the cluster's model obsolete (§3.3: the
// month-over-month cosine drops from >0.8 to <0.4 on a system update).
// Drift is judged per vPE because update rollouts stagger across the
// fleet and a cluster-aggregate histogram dilutes the signal.
func clusterDriftedWeek(ds *Dataset, vpes []string, wFrom, wTo time.Time, baselineMonth int, threshold, fraction float64) bool {
	if len(vpes) == 0 {
		return false
	}
	drifted := 0
	for _, v := range vpes {
		base := ds.MonthHistogram(v, baselineMonth)
		cur := ds.RangeHistogram(v, wFrom, wTo)
		if base.Total() == 0 || cur.Total() < 20 {
			continue // too little data for a stable histogram
		}
		if cluster.Cosine(base, cur) < threshold {
			drifted++
		}
	}
	return float64(drifted) >= fraction*float64(len(vpes))
}
