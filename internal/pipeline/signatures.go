package pipeline

import (
	"sort"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/eval"
)

// SignatureStat aggregates the anomalies behind warning signatures by log
// template — the §5.3 "operational findings" view, where conditions like
// "invalid response from peer chassis-control" emerge as predictive
// signatures and "BGP UNUSABLE ASPATH" storms as early-detection ones.
type SignatureStat struct {
	// TemplateID is the signature-tree template.
	TemplateID int
	// Template is its rendered form ("invalid response from peer
	// chassis-control session * retries *").
	Template string
	// Anomalies is how many warning-cluster anomalies used the template.
	Anomalies int
	// Mapped is how many of those fell inside a ticket's predictive or
	// infected period (the rest are the paper's "coincidental" fourth
	// scenario, to be suppressed via ticket-processing rules).
	Mapped int
}

// MappedFraction returns Mapped/Anomalies.
func (s *SignatureStat) MappedFraction() float64 {
	if s.Anomalies == 0 {
		return 0
	}
	return float64(s.Mapped) / float64(s.Anomalies)
}

// SignatureSummary recovers, for the run's operating threshold, which log
// templates the warning-cluster anomalies correspond to and how often each
// template's anomalies mapped to tickets. Results are sorted by anomaly
// count, descending.
func SignatureSummary(ds *Dataset, res *Result, cfg Config) []SignatureStat {
	anoms := detect.Threshold(res.Events, res.Best.Threshold)
	warns := detect.ClusterWarnings(anoms, cfg.Eval.ClusterWindow, cfg.Eval.MinClusterSize)

	// Warning intervals per vPE, with mapped/unmapped resolved by the
	// same rules as the evaluation.
	type span struct {
		lo, hi time.Time
		mapped bool
	}
	spansByVPE := make(map[string][]span)
	evalFrom, evalTo := ds.MonthStart(1), ds.MonthStart(ds.Months)
	for _, w := range warns {
		o := eval.MapWarnings([]detect.Warning{w}, ds.Tickets, cfg.Eval, evalFrom, evalTo)
		spansByVPE[w.VPE] = append(spansByVPE[w.VPE], span{
			lo:     w.Time,
			hi:     w.Time.Add(cfg.Eval.ClusterWindow * 8), // generous cluster extent
			mapped: o.MappedWarnings > 0,
		})
	}

	stats := make(map[int]*SignatureStat)
	for _, a := range anoms {
		spans := spansByVPE[a.VPE]
		var hit *span
		for i := range spans {
			if !a.Time.Before(spans[i].lo) && !a.Time.After(spans[i].hi) {
				hit = &spans[i]
				break
			}
		}
		if hit == nil {
			continue // isolated anomaly, not part of a warning
		}
		// Recover the anomaly's template by looking up the event.
		tid, ok := ds.templateAt(a.VPE, a.Time)
		if !ok {
			continue
		}
		st := stats[tid]
		if st == nil {
			st = &SignatureStat{TemplateID: tid}
			if tpl := ds.Tree.TemplateByID(tid); tpl != nil {
				st.Template = tpl.String()
			}
			stats[tid] = st
		}
		st.Anomalies++
		if hit.mapped {
			st.Mapped++
		}
	}
	out := make([]SignatureStat, 0, len(stats))
	for _, st := range stats {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Anomalies != out[j].Anomalies {
			return out[i].Anomalies > out[j].Anomalies
		}
		return out[i].TemplateID < out[j].TemplateID
	})
	return out
}

// templateAt finds the template of vpe's event at exactly time t (scored
// events carry the original message timestamps).
func (ds *Dataset) templateAt(vpe string, t time.Time) (int, bool) {
	s := ds.Streams[vpe]
	lo := sort.Search(len(s), func(i int) bool { return !s[i].Time.Before(t) })
	for i := lo; i < len(s) && s[i].Time.Equal(t); i++ {
		return s[i].Template, true
	}
	return 0, false
}
