package pipeline

import (
	"testing"

	"nfvpredict/internal/cluster"
	"nfvpredict/internal/nfvsim"
)

// parallelConfig enables every concurrency knob: parallel per-cluster
// training, batched data-parallel gradients, and parallel scoring.
func parallelConfig(parallelism int) Config {
	cfg := fastConfig(CustomizedAdaptive, MethodLSTM)
	cfg.Parallelism = parallelism
	cfg.LSTM.BatchWindows = 4
	return cfg
}

// The acceptance contract for parallel training: a fixed-seed walk-forward
// run produces identical detection results whether everything runs on one
// goroutine or many.
func TestRunParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("two full pipeline runs in -short mode")
	}
	ds := testDataset(t, func(c *nfvsim.Config) { c.NumVPEs = 6; c.Months = 3; c.UpdateMonth = 2 })
	serial, err := Run(ds, parallelConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(ds, parallelConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Events) != len(parallel.Events) {
		t.Fatalf("event counts diverged: %d vs %d", len(serial.Events), len(parallel.Events))
	}
	for i := range serial.Events {
		if serial.Events[i] != parallel.Events[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, serial.Events[i], parallel.Events[i])
		}
	}
	if serial.Best != parallel.Best {
		t.Fatalf("best operating point diverged: %+v vs %+v", serial.Best, parallel.Best)
	}
	for i := range serial.Monthly {
		if serial.Monthly[i] != parallel.Monthly[i] {
			t.Fatalf("month %d diverged: %+v vs %+v", i, serial.Monthly[i], parallel.Monthly[i])
		}
	}
}

// TestRunParallelTrainingRace exists to be run under the race detector
// (make test-race): it drives concurrent per-cluster training, batched
// gradient workers, mid-month adaptation, and concurrent scoring on the
// shared detectors in one walk-forward run.
func TestRunParallelTrainingRace(t *testing.T) {
	ds := testDataset(t, func(c *nfvsim.Config) { c.NumVPEs = 6; c.Months = 3; c.UpdateMonth = 2 })
	cfg := parallelConfig(4)
	cfg.LSTM.Epochs = 1
	cfg.LSTM.MaxWindowsPerEpoch = 300
	res, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no scored events")
	}
}

// BenchmarkPipelineInitialTrain isolates the per-cluster initial-training
// stage (clustering excluded), the dominant cost of a pipeline run.
func BenchmarkPipelineInitialTrain(b *testing.B) {
	ds := testDataset(b, func(c *nfvsim.Config) { c.Months = 2; c.NumVPEs = 8; c.UpdateMonth = -1 })
	cfg := fastConfig(Customized, MethodLSTM)
	hists := make(map[string]cluster.Histogram, len(ds.VPEs))
	for _, v := range ds.VPEs {
		hists[v] = ds.MonthHistogram(v, 0)
	}
	cl, err := cluster.SelectK(hists, cfg.KMin, cfg.KMax, cfg.ClusterDim, cfg.LSTM.Seed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := forEachCluster(cl.K, cfg.Parallelism, func(ci int) error {
			d, err := cfg.newDetector(ci)
			if err != nil {
				return err
			}
			s := ds.CleanMonthStreams(cl.Members(ci), 0, cfg.TrainExclusion)
			if len(s) == 0 {
				return nil
			}
			return d.Train(s)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
