package pipeline

import (
	"testing"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/eval"
	"nfvpredict/internal/nfvsim"
	"nfvpredict/internal/ticket"
)

// testDataset builds a small but non-trivial dataset once per test run.
func testDataset(t testing.TB, mutate func(*nfvsim.Config)) *Dataset {
	t.Helper()
	cfg := nfvsim.TestConfig()
	cfg.NumVPEs = 8
	cfg.Months = 5
	cfg.MeanFaultGapHours = 300
	cfg.UpdateMonth = 3
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := nfvsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := d.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return BuildDataset(tr, cfg.Start, cfg.Months)
}

// fastLSTM returns an LSTM config sized for tests.
func fastLSTM() detect.LSTMConfig {
	cfg := detect.DefaultLSTMConfig()
	cfg.Hidden = []int{20}
	cfg.MaxVocab = 64
	cfg.WindowLen = 20
	cfg.Stride = 10
	cfg.Epochs = 2
	cfg.OverSampleRounds = 1
	cfg.MaxWindowsPerEpoch = 1200
	return cfg
}

func fastConfig(v Variant, m Method) Config {
	cfg := DefaultConfig()
	cfg.Variant = v
	cfg.Method = m
	cfg.LSTM = fastLSTM()
	cfg.KMax = 6
	cfg.SweepPoints = 25
	return cfg
}

func TestBuildDataset(t *testing.T) {
	ds := testDataset(t, nil)
	if len(ds.VPEs) != 8 {
		t.Fatalf("VPEs: %v", ds.VPEs)
	}
	if ds.Tree.Len() == 0 {
		t.Fatal("no templates learned")
	}
	total := 0
	for _, v := range ds.VPEs {
		s := ds.Streams[v]
		total += len(s)
		for i := 1; i < len(s); i++ {
			if s[i].Time.Before(s[i-1].Time) {
				t.Fatalf("stream %s not sorted", v)
			}
		}
	}
	if total == 0 {
		t.Fatal("no events")
	}
}

func TestMonthSlicing(t *testing.T) {
	ds := testDataset(t, nil)
	v := ds.VPEs[0]
	var sum int
	for m := 0; m < ds.Months; m++ {
		sum += len(ds.MonthEvents(v, m))
	}
	// Episode messages may spill slightly past the horizon; month slices
	// must cover at least everything inside it.
	inHorizon := len(ds.RangeEvents(v, ds.Start, ds.MonthStart(ds.Months)))
	if sum != inHorizon {
		t.Fatalf("month slices %d != horizon events %d", sum, inHorizon)
	}
}

func TestCleanEventsExcludesTicketWindows(t *testing.T) {
	ds := testDataset(t, nil)
	excl := 72 * time.Hour
	for _, v := range ds.VPEs {
		clean := ds.CleanEvents(v, ds.Start, ds.MonthStart(ds.Months), excl)
		for _, tk := range ds.Tickets {
			if tk.VPE != v {
				continue
			}
			lo, hi := tk.Report.Add(-excl), tk.Repair
			for _, e := range clean {
				if !e.Time.Before(lo) && !e.Time.After(hi) {
					t.Fatalf("clean event at %v inside exclusion [%v, %v] of ticket %d", e.Time, lo, hi, tk.ID)
				}
			}
		}
		dirty := ds.RangeEvents(v, ds.Start, ds.MonthStart(ds.Months))
		if len(clean) >= len(dirty) && len(ds.Tickets) > 0 {
			// At least some vPE must lose events; checked fleet-wide below.
			continue
		}
	}
}

func TestMonthHistogram(t *testing.T) {
	ds := testDataset(t, nil)
	h := ds.MonthHistogram(ds.VPEs[0], 0)
	if h.Total() != float64(len(ds.MonthEvents(ds.VPEs[0], 0))) {
		t.Fatal("histogram total mismatch")
	}
}

// The headline end-to-end test: the full walk-forward LSTM pipeline on a
// simulated fleet must reach a useful operating point — precision and
// recall both well above chance — and detect circuit tickets before their
// report time.
func TestRunLSTMCustomizedAdaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run in -short mode")
	}
	ds := testDataset(t, nil)
	res, err := Run(ds, fastConfig(CustomizedAdaptive, MethodLSTM))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 || len(res.Curve) == 0 {
		t.Fatal("no scored events or curve")
	}
	if len(res.Monthly) != ds.Months-1 {
		t.Fatalf("monthly series: %d", len(res.Monthly))
	}
	t.Logf("clusters K=%d best: P=%.2f R=%.2f F=%.2f fa/day=%.2f",
		res.Clusters.K, res.Best.Precision, res.Best.Recall, res.Best.F, res.Best.FalseAlarmsPerDay)
	for _, mm := range res.Monthly {
		t.Logf("month %d: F=%.2f P=%.2f R=%.2f warns=%d fa=%d adapted=%v",
			mm.Index, mm.Best.F, mm.Best.Precision, mm.Best.Recall, mm.Warnings, mm.FalseAlarms, mm.Adapted)
	}
	// The global operating point on this small config is dragged down by
	// the update-month storm (1 of only 4 test months — at paper scale the
	// storm is ~1 of 17). Require a working system, not the headline
	// numbers, which the model-scale benches report.
	if res.Best.F < 0.45 {
		t.Errorf("operating F=%.2f too low for a working reproduction", res.Best.F)
	}
	if res.Best.Precision < 0.35 || res.Best.Recall < 0.4 {
		t.Errorf("operating point P=%.2f R=%.2f too weak", res.Best.Precision, res.Best.Recall)
	}
	// Pre-update months must be strong, and the post-update month must
	// recover to at least near pre-update levels (the Figure 7 shape).
	if res.Monthly[0].Best.F < 0.7 || res.Monthly[1].Best.F < 0.7 {
		t.Errorf("pre-update months too weak: %+v", res.Monthly[:2])
	}
	last := res.Monthly[len(res.Monthly)-1]
	if !last.Adapted || last.Best.F < 0.6 {
		t.Errorf("post-update month did not recover via adaptation: %+v", last)
	}
	// Early warnings must exist: some hits with negative offsets.
	early := 0
	for _, hit := range res.Outcome.Hits {
		if hit.EarliestOffset < 0 {
			early++
		}
	}
	if early == 0 {
		t.Error("no ticket detected before its report time")
	}
}

func TestRunBaselineVariantSingleModel(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run in -short mode")
	}
	ds := testDataset(t, func(c *nfvsim.Config) { c.Months = 3; c.UpdateMonth = -1 })
	res, err := Run(ds, fastConfig(Baseline, MethodLSTM))
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters.K != 1 {
		t.Fatalf("baseline must use one cluster, got %d", res.Clusters.K)
	}
}

func TestRunRequiresTwoMonths(t *testing.T) {
	ds := testDataset(t, func(c *nfvsim.Config) { c.Months = 1; c.UpdateMonth = -1 })
	if _, err := Run(ds, fastConfig(Baseline, MethodLSTM)); err == nil {
		t.Fatal("expected error for single-month dataset")
	}
}

func TestRunUnknownMethod(t *testing.T) {
	ds := testDataset(t, func(c *nfvsim.Config) { c.Months = 2; c.UpdateMonth = -1 })
	cfg := fastConfig(Baseline, "nonsense")
	if _, err := Run(ds, cfg); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestVariantString(t *testing.T) {
	if Baseline.String() != "Baseline" || Customized.String() != "vPE cust" ||
		CustomizedAdaptive.String() != "vPE cust + adapt" {
		t.Fatal("variant names must match Figure 7's legend")
	}
	if Variant(9).String() == "" {
		t.Fatal("unknown variant should still format")
	}
}

func TestRunAutoencoderMethod(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run in -short mode")
	}
	ds := testDataset(t, func(c *nfvsim.Config) { c.Months = 3; c.UpdateMonth = -1; c.NumVPEs = 4 })
	cfg := fastConfig(Customized, MethodAutoencoder)
	cfg.AE.Epochs = 3
	res, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no AE events")
	}
}

func TestRunOCSVMMethod(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run in -short mode")
	}
	ds := testDataset(t, func(c *nfvsim.Config) { c.Months = 3; c.UpdateMonth = -1; c.NumVPEs = 4 })
	cfg := fastConfig(Customized, MethodOCSVM)
	cfg.OCSVM.Iters = 1500
	res, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no OCSVM events")
	}
}

// DetectionByType must report circuit tickets found before report time
// more often than hardware ones — the Figure 8 ordering planted by the
// simulator's calibration.
func TestFig8OrderingOnPipelineOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run in -short mode")
	}
	ds := testDataset(t, func(c *nfvsim.Config) {
		c.NumVPEs = 14
		c.Months = 8
		// Sparse faults and few duplicates/glitches: dense regimes let
		// neighbouring tickets' anomalies fall inside each other's
		// predictive windows, blurring per-type lead attribution.
		c.MeanFaultGapHours = 400
		c.DupProb = 0.1
		c.GlitchesPerDay = 0.05
		c.UpdateMonth = -1
	})
	res, err := Run(ds, fastConfig(Customized, MethodLSTM))
	if err != nil {
		t.Fatal(err)
	}
	// Note: eval window is months 1..end.
	tds := eval.DetectionByType(res.Outcome, ds.Tickets, ds.MonthStart(1), ds.MonthStart(ds.Months))
	var circuit, hardware float64
	var nCir, nHw int
	for _, td := range tds {
		if td.All {
			continue
		}
		switch td.Cause {
		case ticket.Circuit:
			circuit, nCir = td.Rates[2], td.Tickets
		case ticket.Hardware:
			hardware, nHw = td.Rates[2], td.Tickets
		}
	}
	t.Logf("before-report detection: circuit=%.2f (n=%d) hardware=%.2f (n=%d)", circuit, nCir, hardware, nHw)
	if nCir < 10 || nHw < 3 {
		t.Skipf("too few tickets for a stable comparison: %d/%d", nCir, nHw)
	}
	if circuit <= hardware {
		t.Errorf("circuit early-detection %.2f should exceed hardware %.2f", circuit, hardware)
	}
}

func BenchmarkRunSmallPipeline(b *testing.B) {
	ds := testDataset(b, func(c *nfvsim.Config) { c.Months = 3; c.NumVPEs = 4; c.UpdateMonth = -1 })
	cfg := fastConfig(Customized, MethodLSTM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// SignatureSummary must surface omen templates (the §5.3 operational
// findings) with high mapped fractions, and recover real template text.
func TestSignatureSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run in -short mode")
	}
	ds := testDataset(t, func(c *nfvsim.Config) { c.Months = 3; c.UpdateMonth = -1 })
	cfg := fastConfig(Customized, MethodLSTM)
	res, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := SignatureSummary(ds, res, cfg)
	if len(stats) == 0 {
		t.Fatal("no signatures recovered")
	}
	var sawText bool
	totalMapped := 0
	for _, st := range stats {
		if st.Template != "" {
			sawText = true
		}
		if st.Mapped > st.Anomalies {
			t.Fatalf("mapped exceeds anomalies: %+v", st)
		}
		totalMapped += st.Mapped
		if f := st.MappedFraction(); f < 0 || f > 1 {
			t.Fatalf("bad mapped fraction: %+v", st)
		}
	}
	if !sawText {
		t.Fatal("no template text recovered")
	}
	if totalMapped == 0 {
		t.Fatal("no anomaly mapped to a ticket")
	}
	// Sorted by anomaly count descending.
	for i := 1; i < len(stats); i++ {
		if stats[i].Anomalies > stats[i-1].Anomalies {
			t.Fatal("not sorted by anomaly count")
		}
	}
}
