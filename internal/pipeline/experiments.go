package pipeline

import (
	"fmt"
	"time"

	"nfvpredict/internal/cluster"
	"nfvpredict/internal/detect"
	"nfvpredict/internal/eval"
	"nfvpredict/internal/features"
)

// ExperimentRow is one configuration's outcome in a §5.2 micro-benchmark.
type ExperimentRow struct {
	// Label names the configuration, e.g. "per-vPE 3mo" or "adapt 1wk".
	Label string
	// TrainEvents is how many events the configuration trained on — the
	// data-collection cost the paper's reductions are about.
	TrainEvents int
	// ReadyMonth is the first month index the configuration could serve
	// (0 when irrelevant): a scratch retrain needing three months of
	// fresh data is ready three months later than a one-week adaptation,
	// which is the §5.2 recovery-latency claim.
	ReadyMonth int
	// Best is the best-F operating point on the evaluation month.
	Best eval.PRPoint
}

// trainGroups trains one fresh detector per group on [from, to) and
// returns the detectors (nil entries for groups with no data).
func trainGroups(ds *Dataset, cfg Config, groups [][]string, from, to time.Time) ([]detect.Detector, int, error) {
	dets := make([]detect.Detector, len(groups))
	events := 0
	for gi, members := range groups {
		var streams [][]features.Event
		for _, v := range members {
			if ev := ds.CleanEvents(v, from, to, cfg.TrainExclusion); len(ev) > 0 {
				streams = append(streams, ev)
				events += len(ev)
			}
		}
		if len(streams) == 0 {
			continue
		}
		d, err := cfg.newDetector(gi)
		if err != nil {
			return nil, 0, err
		}
		if err := d.Train(streams); err != nil {
			return nil, 0, fmt.Errorf("pipeline: training group %d: %w", gi, err)
		}
		dets[gi] = d
	}
	return dets, events, nil
}

// evalGroups scores [from, to) with the given detectors and returns the
// best-F operating point.
func evalGroups(ds *Dataset, cfg Config, groups [][]string, dets []detect.Detector, from, to time.Time) eval.PRPoint {
	assign := map[string]int{}
	for gi, members := range groups {
		for _, v := range members {
			assign[v] = gi
		}
	}
	cl := &cluster.Result{K: len(groups), Assign: assign}
	events := scoreRange(ds, dets, cl, from, to, cfg.Parallelism)
	thrs := detect.ThresholdSweep(events, cfg.SweepPoints)
	curve := eval.PRCurve(events, ds.Tickets, thrs, cfg.Eval, from, to)
	return eval.BestF(curve)
}

// TrainingDataSweep reproduces the §5.2 clustering claim ("reduce the
// amount of initial training data from 3 months to 1 month"): per-vPE
// models trained on 1–3 months of their own data versus per-cluster
// models trained on 1 month of pooled data, all evaluated on evalMonth.
// evalMonth must leave room for 3 training months before it.
func TrainingDataSweep(ds *Dataset, cfg Config, evalMonth int) ([]ExperimentRow, error) {
	if evalMonth < 3 || evalMonth >= ds.Months {
		return nil, fmt.Errorf("pipeline: evalMonth %d needs 3 prior months inside the horizon", evalMonth)
	}
	evalFrom, evalTo := ds.MonthStart(evalMonth), ds.MonthStart(evalMonth+1)

	// Per-vPE grouping: every vPE trains alone (full customization, full
	// data-collection cost).
	solo := make([][]string, len(ds.VPEs))
	for i, v := range ds.VPEs {
		solo[i] = []string{v}
	}
	var rows []ExperimentRow
	for months := 1; months <= 3; months++ {
		from := ds.MonthStart(evalMonth - months)
		dets, n, err := trainGroups(ds, cfg, solo, from, evalFrom)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ExperimentRow{
			Label:       fmt.Sprintf("per-vPE %dmo", months),
			TrainEvents: n,
			Best:        evalGroups(ds, cfg, solo, dets, evalFrom, evalTo),
		})
	}

	// Clustered grouping on the histograms of the single training month.
	hists := make(map[string]cluster.Histogram, len(ds.VPEs))
	for _, v := range ds.VPEs {
		hists[v] = ds.MonthHistogram(v, evalMonth-1)
	}
	cl, err := cluster.SelectK(hists, cfg.KMin, cfg.KMax, cfg.ClusterDim, cfg.LSTM.Seed)
	if err != nil {
		return nil, err
	}
	groups := make([][]string, cl.K)
	for gi := 0; gi < cl.K; gi++ {
		groups[gi] = cl.Members(gi)
	}
	dets, n, err := trainGroups(ds, cfg, groups, ds.MonthStart(evalMonth-1), evalFrom)
	if err != nil {
		return nil, err
	}
	rows = append(rows, ExperimentRow{
		Label:       fmt.Sprintf("clustered(K=%d) 1mo", cl.K),
		TrainEvents: n,
		Best:        evalGroups(ds, cfg, groups, dets, evalFrom, evalTo),
	})
	return rows, nil
}

// AdaptRecoverySweep reproduces the §5.2 transfer-learning claim ("reduce
// the recover time from software updates from 3 months down to 1 week"):
// after the system update in updateMonth U, it compares
//
//   - keeping the obsolete teacher (no recovery),
//   - transfer-learning adaptation on 1 week of post-update data,
//   - retraining from scratch on 1 week, 1 month, and 2 months of
//     post-update data,
//
// each evaluated on the first month it could actually serve: the
// one-week arms on month U+1, the 1-month retrain on U+2, the 2-month
// retrain on U+3. The comparison is therefore about recovery LATENCY —
// a scratch retrain eventually matches the adapted student, but only
// after months of data collection the adaptation does not need. The
// dataset must extend at least 4 months past updateMonth.
func AdaptRecoverySweep(ds *Dataset, cfg Config, updateMonth int) ([]ExperimentRow, error) {
	if updateMonth < 1 || updateMonth+4 > ds.Months {
		return nil, fmt.Errorf("pipeline: updateMonth %d needs 4 following months inside the horizon", updateMonth)
	}

	// Cluster on pre-update data and train the teacher on the months
	// before the update.
	hists := make(map[string]cluster.Histogram, len(ds.VPEs))
	for _, v := range ds.VPEs {
		hists[v] = ds.MonthHistogram(v, 0)
	}
	cl, err := cluster.SelectK(hists, cfg.KMin, cfg.KMax, cfg.ClusterDim, cfg.LSTM.Seed)
	if err != nil {
		return nil, err
	}
	groups := make([][]string, cl.K)
	for gi := 0; gi < cl.K; gi++ {
		groups[gi] = cl.Members(gi)
	}
	teacherFrom := ds.MonthStart(0)
	teacherTo := ds.MonthStart(updateMonth)
	var rows []ExperimentRow

	// Post-update windows. The rollout spans the first half of
	// updateMonth, so its last week is fully post-update.
	weekFrom := ds.MonthStart(updateMonth + 1).Add(-7 * 24 * time.Hour)
	weekTo := ds.MonthStart(updateMonth + 1)

	evalAt := func(month int) (time.Time, time.Time) {
		return ds.MonthStart(month), ds.MonthStart(month + 1)
	}

	// (a) Obsolete teacher, no recovery: serving month U+1.
	teacher, _, err := trainGroups(ds, cfg, groups, teacherFrom, teacherTo)
	if err != nil {
		return nil, err
	}
	eFrom, eTo := evalAt(updateMonth + 1)
	rows = append(rows, ExperimentRow{
		Label:      "teacher (no recovery)",
		ReadyMonth: updateMonth + 1,
		Best:       evalGroups(ds, cfg, groups, teacher, eFrom, eTo),
	})

	// (b) Transfer-learning adaptation on one week of fresh data.
	adapted, _, err := trainGroups(ds, cfg, groups, teacherFrom, teacherTo)
	if err != nil {
		return nil, err
	}
	var adaptEvents int
	for gi, members := range groups {
		if adapted[gi] == nil {
			continue
		}
		var streams [][]features.Event
		for _, v := range members {
			if ev := ds.CleanEvents(v, weekFrom, weekTo, cfg.TrainExclusion); len(ev) > 0 {
				streams = append(streams, ev)
				adaptEvents += len(ev)
			}
		}
		if len(streams) == 0 {
			continue
		}
		if err := adapted[gi].Adapt(streams); err != nil {
			return nil, err
		}
	}
	eFrom, eTo = evalAt(updateMonth + 1)
	rows = append(rows, ExperimentRow{
		Label:       "transfer adapt 1wk",
		TrainEvents: adaptEvents,
		ReadyMonth:  updateMonth + 1,
		Best:        evalGroups(ds, cfg, groups, adapted, eFrom, eTo),
	})

	// (c) Retrain from scratch on increasing post-update budgets, each
	// evaluated on the first month after its data window closes.
	budgets := []struct {
		label      string
		from, to   time.Time
		readyMonth int
	}{
		{"retrain 1wk", weekFrom, weekTo, updateMonth + 1},
		{"retrain 1mo", ds.MonthStart(updateMonth + 1), ds.MonthStart(updateMonth + 2), updateMonth + 2},
		{"retrain 2mo", ds.MonthStart(updateMonth + 1), ds.MonthStart(updateMonth + 3), updateMonth + 3},
	}
	for _, b := range budgets {
		dets, n, err := trainGroups(ds, cfg, groups, b.from, b.to)
		if err != nil {
			return nil, err
		}
		eFrom, eTo := evalAt(b.readyMonth)
		rows = append(rows, ExperimentRow{
			Label:       b.label,
			TrainEvents: n,
			ReadyMonth:  b.readyMonth,
			Best:        evalGroups(ds, cfg, groups, dets, eFrom, eTo),
		})
	}
	return rows, nil
}

// PredictiveWindowSweep reproduces Figure 5: PRCs for predictive periods
// of 1 hour, 1 day, and 2 days over an already scored event set. The
// paper finds performance converges at 1 day.
func PredictiveWindowSweep(ds *Dataset, res *Result, cfg Config, windows []time.Duration) map[time.Duration][]eval.PRPoint {
	out := make(map[time.Duration][]eval.PRPoint, len(windows))
	evalFrom, evalTo := ds.MonthStart(1), ds.MonthStart(ds.Months)
	thrs := detect.ThresholdSweep(res.Events, cfg.SweepPoints)
	for _, w := range windows {
		ecfg := cfg.Eval
		ecfg.PredictivePeriod = w
		out[w] = eval.PRCurve(res.Events, ds.Tickets, thrs, ecfg, evalFrom, evalTo)
	}
	return out
}
