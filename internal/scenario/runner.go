package scenario

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"nfvpredict/internal/cluster"
	"nfvpredict/internal/detect"
	"nfvpredict/internal/eval"
	"nfvpredict/internal/faultinject"
	"nfvpredict/internal/features"
	"nfvpredict/internal/ingest"
	"nfvpredict/internal/lifecycle"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/nfvsim"
	"nfvpredict/internal/obs"
	"nfvpredict/internal/pipeline"
	"nfvpredict/internal/resilience"
)

// Options tunes a scenario run without changing its outcome.
type Options struct {
	// Log, when set, receives one line per phase and timeline event.
	Log *log.Logger
	// Dir is where checkpoint artifacts live; "" uses a temp dir removed
	// when Run returns.
	Dir string
	// AdminAddr overrides the admin listen address when the scenario
	// enables the admin surface (default "127.0.0.1:0").
	AdminAddr string
	// AdminUp, when set, is called with the admin listener's address once
	// /statusz is live (the serve phase), before any traffic flows.
	AdminUp func(addr net.Addr)
	// DumpTrace, when set, writes the generated trace as logfmt JSONL to
	// this path — the format cmd/replaylog replays.
	DumpTrace string
}

// Report is the machine-readable result of a scenario run.
type Report struct {
	Scenario    string        `json:"scenario"`
	Description string        `json:"description,omitempty"`
	File        string        `json:"file,omitempty"`
	Seed        int64         `json:"seed"`
	Passed      bool          `json:"passed"`
	Phases      []PhaseTiming `json:"phases"`

	Sim       SimReport        `json:"sim"`
	Serve     ServeReport      `json:"serve"`
	Eval      *eval.Summary    `json:"eval,omitempty"`
	Lifecycle *LifecycleReport `json:"lifecycle,omitempty"`
	Chaos     []PointReport    `json:"chaos,omitempty"`

	Events     []EventReport     `json:"events,omitempty"`
	Assertions []AssertionResult `json:"assertions"`
}

// PhaseTiming is one phase's wall-clock cost.
type PhaseTiming struct {
	Name   string `json:"name"`
	Millis int64  `json:"ms"`
}

// SimReport describes the generated trace.
type SimReport struct {
	Messages   int `json:"messages"`
	Tickets    int `json:"tickets"`
	VPEs       int `json:"vpes"`
	Injections int `json:"injections"`
}

// ServeReport snapshots the serving stack after the replay.
type ServeReport struct {
	Received        uint64 `json:"received"`
	Malformed       uint64 `json:"malformed"`
	Dropped         uint64 `json:"dropped"`
	ShardDropped    uint64 `json:"shard_dropped"`
	Messages        uint64 `json:"messages"`
	Anomalies       uint64 `json:"anomalies"`
	Warnings        uint64 `json:"warnings"`
	ShardPanics     uint64 `json:"shard_panics"`
	WorkerRestarts  uint64 `json:"worker_restarts"`
	WatchdogKicks   uint64 `json:"watchdog_kicks"`
	ShedMessages    uint64 `json:"shed_messages"`
	EvictedHosts    uint64 `json:"evicted_hosts"`
	Shards          int    `json:"shards"`
	CheckpointSaves int    `json:"checkpoint_saves"`
	// CheckpointParity is false if any checkpoint event's restore diverged
	// from the live monitor (counters or warning set).
	CheckpointParity bool `json:"checkpoint_parity"`
}

// LifecycleReport summarizes adaptation activity.
type LifecycleReport struct {
	Cycles     int    `json:"cycles"`
	Promotions int    `json:"promotions"`
	Generation int    `json:"generation"`
	Breaker    string `json:"breaker"`
}

// PointReport is one fault point's injection counters.
type PointReport struct {
	Point string `json:"point"`
	Hits  uint64 `json:"hits"`
	Fired uint64 `json:"fired"`
}

// EventReport records one executed timeline event.
type EventReport struct {
	At     string `json:"at"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// AssertionResult is one declarative assertion's verdict.
type AssertionResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// GenerateTrace compiles the spec and generates its deployment trace.
func (s *Spec) GenerateTrace() (*nfvsim.Trace, error) {
	cfg, err := s.SimConfig()
	if err != nil {
		return nil, err
	}
	d, err := nfvsim.New(cfg)
	if err != nil {
		return nil, err
	}
	return d.Generate()
}

// WriteTrace writes a trace's messages as logfmt JSONL — the format
// cmd/replaylog replays against a live monitor.
func WriteTrace(w io.Writer, tr *nfvsim.Trace) error {
	bw := bufio.NewWriter(w)
	lw := logfmt.NewWriter(bw)
	for i := range tr.Messages {
		if err := lw.Write(&tr.Messages[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// runState is the mutable status behind /statusz during a run.
type runState struct {
	mu     sync.Mutex
	phase  string
	events []EventReport
}

func (rs *runState) setPhase(p string) {
	rs.mu.Lock()
	rs.phase = p
	rs.mu.Unlock()
}

func (rs *runState) addEvent(e EventReport) {
	rs.mu.Lock()
	rs.events = append(rs.events, e)
	rs.mu.Unlock()
}

func (rs *runState) snapshot() (string, []EventReport) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.phase, append([]EventReport(nil), rs.events...)
}

// Run executes a scenario end-to-end: simulate the fleet, train the
// serving models on the leading months, replay the rest over the wire
// through the full serving stack while executing the timeline, evaluate
// warnings against the ticket store, and check the declared assertions.
//
// A non-nil error means the harness itself failed (listener, training,
// drain deadline); assertion failures are reported via Report.Passed and
// Report.Assertions.
func Run(spec *Spec, opts Options) (*Report, error) {
	rep := &Report{
		Scenario:    spec.Name,
		Description: spec.Description,
		File:        spec.File,
		Seed:        spec.Seed,
	}
	rep.Serve.CheckpointParity = true
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			opts.Log.Printf(format, args...)
		}
	}
	timed := func(name string, f func() error) error {
		logf("scenario %s: phase %s", spec.Name, name)
		t0 := time.Now()
		err := f()
		rep.Phases = append(rep.Phases, PhaseTiming{Name: name, Millis: time.Since(t0).Milliseconds()})
		return err
	}

	dir := opts.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "nfvscen-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	// Phase 1: simulate.
	var tr *nfvsim.Trace
	if err := timed("simulate", func() error {
		var err error
		tr, err = spec.GenerateTrace()
		return err
	}); err != nil {
		return nil, err
	}
	rep.Sim = SimReport{
		Messages:   len(tr.Messages),
		Tickets:    len(tr.Tickets),
		VPEs:       len(tr.VPENames),
		Injections: countSimEvents(spec),
	}
	if opts.DumpTrace != "" {
		f, err := os.Create(opts.DumpTrace)
		if err != nil {
			return nil, err
		}
		if err := WriteTrace(f, tr); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		logf("scenario %s: trace dumped to %s (%d messages)", spec.Name, opts.DumpTrace, len(tr.Messages))
	}

	// Phase 2: train.
	var ms *lifecycle.ModelSet
	var ds *pipeline.Dataset
	if err := timed("train", func() error {
		var err error
		ds, ms, err = trainModels(spec, tr)
		return err
	}); err != nil {
		return nil, err
	}

	// Phase 3: serve.
	var summary *eval.Summary
	if err := timed("serve", func() error {
		var err error
		summary, err = serve(spec, opts, rep, tr, ds, ms, dir, logf)
		return err
	}); err != nil {
		return nil, err
	}
	rep.Eval = summary

	// Phase 4: assert.
	if err := timed("assert", func() error {
		rep.Assertions = evaluate(spec, rep)
		rep.Passed = true
		for _, a := range rep.Assertions {
			if !a.OK {
				rep.Passed = false
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	logf("scenario %s: %s (%d assertions)", spec.Name, passFail(rep.Passed), len(rep.Assertions))
	return rep, nil
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

func countSimEvents(spec *Spec) int {
	n := 0
	for i := range spec.Timeline {
		if k := spec.Timeline[i].Kind; k == EventFault || k == EventBurst {
			n++
		}
	}
	return n
}

// trainModels builds the dataset and trains the per-cluster serving set
// on the leading train.months of clean traffic.
func trainModels(spec *Spec, tr *nfvsim.Trace) (*pipeline.Dataset, *lifecycle.ModelSet, error) {
	ds := pipeline.BuildDataset(tr, spec.Fleet.Start, spec.Fleet.Months)
	trainStart := ds.MonthStart(0)
	trainEnd := ds.MonthStart(spec.Train.Months)

	k := spec.Train.Clusters
	var assign map[string]int
	if k > 1 {
		hists := make(map[string]cluster.Histogram, len(ds.VPEs))
		for _, v := range ds.VPEs {
			h := cluster.Histogram{}
			for _, e := range ds.RangeEvents(v, trainStart, trainEnd) {
				h.Add(e.Template)
			}
			hists[v] = h
		}
		res := cluster.KMeans(hists, k, 64, spec.Seed)
		assign, k = res.Assign, res.K
	}

	lcfg := detect.DefaultLSTMConfig()
	lcfg.Hidden = spec.Train.Hidden
	lcfg.Epochs = spec.Train.Epochs
	lcfg.MaxVocab = spec.Train.MaxVocab
	dets := make([]*detect.LSTMDetector, k)
	for ci := 0; ci < k; ci++ {
		var streams [][]features.Event
		for _, v := range ds.VPEs {
			if assign[v] != ci {
				continue
			}
			if ev := ds.CleanEvents(v, trainStart, trainEnd, spec.Train.Exclusion); len(ev) > 0 {
				streams = append(streams, ev)
			}
		}
		if len(streams) == 0 {
			return nil, nil, fmt.Errorf("scenario: cluster %d has no clean training data in the first %d month(s)", ci, spec.Train.Months)
		}
		det := detect.NewLSTMDetector(lcfg)
		if err := det.Train(streams); err != nil {
			return nil, nil, fmt.Errorf("scenario: training cluster %d: %w", ci, err)
		}
		dets[ci] = det
	}
	return ds, &lifecycle.ModelSet{Detectors: dets, Assign: assign, Threshold: spec.Serve.Threshold}, nil
}

// serve replays the post-training trace over TCP through the full stack,
// executing runner-side timeline events at their trace offsets.
func serve(spec *Spec, opts Options, rep *Report, tr *nfvsim.Trace, ds *pipeline.Dataset, ms *lifecycle.ModelSet, dir string, logf func(string, ...any)) (*eval.Summary, error) {
	serveStart := spec.ServeStart()
	end := spec.End()
	first := sort.Search(len(tr.Messages), func(i int) bool {
		return !tr.Messages[i].Time.Before(serveStart)
	})
	msgs := tr.Messages[first:]

	reg := faultinject.NewRegistry()
	oreg := obs.NewRegistry()

	var lm *lifecycle.Manager
	mcfg := ingest.DefaultMonitorConfig()
	mcfg.Threshold = spec.Serve.Threshold
	mcfg.Shards = spec.Serve.Shards
	mcfg.Metrics = oreg
	mcfg.ClusterOf = ms.ClusterOf()
	mcfg.Faults = reg
	if spec.Lifecycle.Enabled {
		lcfg := lifecycle.DefaultConfig()
		lcfg.Interval = 0 // cycles driven only by adapt events
		lcfg.GateBudget = spec.Lifecycle.GateBudget
		lcfg.WindowLen = spec.Lifecycle.WindowLen
		lcfg.SpoolPerCluster = spec.Lifecycle.SpoolPerCluster
		lcfg.MinWindows = spec.Lifecycle.MinWindows
		lcfg.DriftThreshold = spec.Lifecycle.DriftThreshold
		lcfg.Faults = reg
		lcfg.Metrics = oreg
		lm = lifecycle.New(lcfg, ms)
		mcfg.OnScored = lm.Observe
	}
	mon := ingest.NewMonitorWithResolver(mcfg, ds.Tree, ms.Resolver(), nil)
	if lm != nil {
		lm.Attach(mon)
	}
	mon.Start()
	defer mon.Stop()

	scfg := ingest.DefaultServerConfig()
	scfg.UDPAddr = ""
	scfg.TCPAddr = "127.0.0.1:0"
	scfg.Year = serveStart.Year()
	scfg.Metrics = oreg
	scfg.Sharded = mon
	srv, err := ingest.NewServer(scfg, nil)
	if err != nil {
		return nil, err
	}
	srv.Start(nil)
	defer srv.Close()

	// Admin surface: /statusz carries the scenario-run metadata (name,
	// phase, executed events) next to the live stack counters.
	rs := &runState{phase: "serve"}
	if spec.Serve.Admin {
		addr := opts.AdminAddr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		ln, lerr := net.Listen("tcp", addr)
		if lerr != nil {
			return nil, fmt.Errorf("scenario: admin listener: %w", lerr)
		}
		mux := obs.NewAdminMux(obs.AdminConfig{
			Registry: oreg,
			Traces:   obs.NewTraceRing(8),
			Spans:    obs.NewSpanRing(8),
			SLO:      obs.NewSLOSet(),
			Health:   obs.NewHealth(),
			Status: func() any {
				phase, events := rs.snapshot()
				doc := map[string]any{
					"scenario": spec.Name,
					"seed":     spec.Seed,
					"phase":    phase,
					"events":   events,
					"monitor":  mon.Stats(),
					"ingest":   srv.Stats(),
				}
				if lm != nil {
					doc["lifecycle"] = lm.Status()
				}
				return doc
			},
		})
		admin := &http.Server{Handler: mux}
		go admin.Serve(ln)
		defer admin.Close()
		logf("scenario %s: admin surface on %s", spec.Name, ln.Addr())
		if opts.AdminUp != nil {
			opts.AdminUp(ln.Addr())
		}
	}

	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	feeder := &wireFeeder{w: bufio.NewWriter(conn), srv: srv, mon: mon}

	// Runner-side events split the serve stream into segments; each event
	// executes against a fully drained stack.
	ckptPath := filepath.Join(dir, "monitor.nfvc")
	retryPol := resilience.RetryPolicy{Attempts: 5, Base: time.Millisecond, Max: 20 * time.Millisecond, Seed: 1}
	baseGen := 0
	if lm != nil {
		baseGen = lm.Generation()
	}
	cursor := 0
	for i := range spec.Timeline {
		ev := &spec.Timeline[i]
		switch ev.Kind {
		case EventChaos, EventAdapt, EventCheckpoint, EventDegrade:
		default:
			continue
		}
		cut := spec.Fleet.Start.Add(ev.At)
		upTo := sort.Search(len(msgs), func(j int) bool { return !msgs[j].Time.Before(cut) })
		if err := feeder.send(msgs[cursor:upTo]); err != nil {
			return nil, err
		}
		cursor = upTo
		if err := feeder.drain(); err != nil {
			return nil, err
		}
		detail, err := execEvent(ev, reg, mon, lm, ms, rep, ckptPath, retryPol)
		if err != nil {
			return nil, err
		}
		er := EventReport{At: ev.At.String(), Kind: ev.Kind, Detail: detail}
		rep.Events = append(rep.Events, er)
		rs.addEvent(er)
		logf("scenario %s: event %s at %s: %s", spec.Name, ev.Kind, ev.At, detail)
	}
	if err := feeder.send(msgs[cursor:]); err != nil {
		return nil, err
	}
	if err := feeder.drain(); err != nil {
		return nil, err
	}
	rs.setPhase("eval")

	sst := srv.Stats()
	mst := mon.Stats()
	rep.Serve.Received = sst.Received
	rep.Serve.Malformed = sst.Malformed
	rep.Serve.Dropped = sst.Dropped
	rep.Serve.ShardDropped = sst.ShardDropped
	rep.Serve.Messages = mst.Messages
	rep.Serve.Anomalies = mst.Anomalies
	rep.Serve.Warnings = mst.Warnings
	rep.Serve.ShardPanics = mst.ShardPanics
	rep.Serve.WorkerRestarts = mst.WorkerRestarts
	rep.Serve.WatchdogKicks = mst.WatchdogKicks
	rep.Serve.ShedMessages = mst.ShedMessages
	rep.Serve.EvictedHosts = mst.EvictedHosts
	rep.Serve.Shards = mst.Shards
	if lm != nil {
		st := lm.Status()
		rep.Lifecycle = &LifecycleReport{
			Cycles:     st.Cycles,
			Promotions: lm.Generation() - baseGen,
			Generation: lm.Generation(),
			Breaker:    st.Breaker.StateName,
		}
	}
	for _, ps := range reg.Snapshot() {
		if ps.Hits > 0 || ps.Fired > 0 {
			rep.Chaos = append(rep.Chaos, PointReport{Point: ps.Name, Hits: ps.Hits, Fired: ps.Fired})
		}
	}

	out := eval.MapWarnings(mon.Warnings(), tr.Tickets, eval.DefaultConfig(), serveStart, end)
	summary := out.Summary()
	return &summary, nil
}

// execEvent runs one runner-side timeline event against the drained stack.
func execEvent(ev *Event, reg *faultinject.Registry, mon *ingest.Monitor, lm *lifecycle.Manager, ms *lifecycle.ModelSet, rep *Report, ckptPath string, retryPol resilience.RetryPolicy) (string, error) {
	switch ev.Kind {
	case EventChaos:
		err := reg.Arm(ev.Point, faultinject.Arming{
			Mode:  faultinject.Mode(ev.Mode),
			Count: int64(ev.Count),
			Delay: ev.Delay,
			Bytes: int64(ev.Bytes),
			Skew:  ev.Skew,
		})
		if err != nil {
			return "", fmt.Errorf("scenario: arming %s: %w", ev.Point, err)
		}
		return fmt.Sprintf("armed %s mode=%s count=%d", ev.Point, ev.Mode, ev.Count), nil
	case EventAdapt:
		if lm == nil {
			return "", fmt.Errorf("scenario: adapt event without lifecycle")
		}
		res := lm.TriggerCycle(ev.Forced)
		if res.Skipped {
			return fmt.Sprintf("cycle skipped: %s", res.SkipReason), nil
		}
		return fmt.Sprintf("cycle ran: promoted=%v", res.Promoted), nil
	case EventCheckpoint:
		liveMsgs, _ := mon.Counters()
		liveWarn := mon.Warnings()
		if err := resilience.Retry(nil, retryPol, func() error {
			return mon.CheckpointFile(ckptPath)
		}); err != nil {
			return "", fmt.Errorf("scenario: checkpoint exhausted retries: %w", err)
		}
		rep.Serve.CheckpointSaves++
		rcfg := ingest.DefaultMonitorConfig()
		rcfg.Threshold = ms.Threshold
		rcfg.ClusterOf = ms.ClusterOf()
		resolve := ms.Resolver()
		if lm != nil {
			if serving := lm.Serving(); serving != nil {
				resolve = serving.Resolver()
			}
		}
		restored, err := ingest.RestoreMonitorFile(ckptPath, rcfg, resolve, nil)
		if err != nil {
			return "", fmt.Errorf("scenario: checkpoint on disk unrestorable: %w", err)
		}
		rMsgs, _ := restored.Counters()
		parity := rMsgs == liveMsgs && warningsEqual(liveWarn, restored.Warnings())
		if !parity {
			rep.Serve.CheckpointParity = false
		}
		return fmt.Sprintf("saved+restored: messages=%d parity=%v", rMsgs, parity), nil
	case EventDegrade:
		var mode resilience.Mode
		switch ev.DegradeMode {
		case "shed-learning":
			mode = resilience.ModeShedLearning
		case "shed-scoring":
			mode = resilience.ModeShedScoring
		default:
			mode = resilience.ModeNormal
		}
		mon.SetDegrade(mode)
		if lm != nil {
			lm.SetShedLearning(mode >= resilience.ModeShedLearning, "scenario degrade event")
		}
		return "mode=" + ev.DegradeMode, nil
	}
	return "", fmt.Errorf("scenario: unexpected runner event kind %q", ev.Kind)
}

// warningsEqual compares two warning sets ignoring order.
func warningsEqual(a, b []detect.Warning) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(w detect.Warning) string {
		return fmt.Sprintf("%s|%d|%d", w.VPE, w.Time.UnixNano(), w.Size)
	}
	counts := make(map[string]int, len(a))
	for _, w := range a {
		counts[key(w)]++
	}
	for _, w := range b {
		counts[key(w)]--
		if counts[key(w)] < 0 {
			return false
		}
	}
	return true
}

// wireFeeder pushes messages over the TCP listener with RFC 6587 octet
// framing, pacing so the shard queues can never overflow: after each chunk
// it waits until the server has accepted everything sent and the shard
// queues are empty. Zero drops is a harness invariant, not luck.
type wireFeeder struct {
	w    *bufio.Writer
	srv  *ingest.Server
	mon  *ingest.Monitor
	sent uint64
}

// chunkSize is well under DefaultShardQueue so even a pathological
// all-one-host chunk fits in a single shard queue.
const chunkSize = 256

func (f *wireFeeder) send(msgs []logfmt.Message) error {
	for i := range msgs {
		line := msgs[i].Format3164()
		if _, err := fmt.Fprintf(f.w, "%d %s", len(line), line); err != nil {
			return err
		}
		f.sent++
		if f.sent%chunkSize == 0 {
			if err := f.flushAndSettle(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushAndSettle waits until the server has consumed every sent frame and
// the shard queues are empty again.
func (f *wireFeeder) flushAndSettle() error {
	if err := f.w.Flush(); err != nil {
		return err
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := f.srv.Stats()
		if st.Received+st.Malformed >= f.sent && f.mon.QueueFrac() == 0 {
			return nil
		}
		time.Sleep(200 * time.Microsecond)
	}
	return fmt.Errorf("scenario: wire feed never settled: sent=%d stats=%+v", f.sent, f.srv.Stats())
}

// drain settles the wire and then waits for the monitor's processed count
// to go stable — chaos faults can wedge a worker for hundreds of ms, so
// the deadline is generous.
func (f *wireFeeder) drain() error {
	if err := f.flushAndSettle(); err != nil {
		return err
	}
	deadline := time.Now().Add(30 * time.Second)
	stable := 0
	var last uint64
	for time.Now().Before(deadline) {
		msgs, _ := f.mon.Counters()
		if f.mon.QueueFrac() == 0 && msgs == last {
			stable++
			if stable >= 3 {
				return nil
			}
		} else {
			stable = 0
		}
		last = msgs
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("scenario: queues never drained: stats %+v", f.mon.Stats())
}
