// Package scenario is the declarative scenario harness: a YAML DSL for
// full-stack failure scenarios (fleet definition, a timed event timeline,
// and assertions) plus a runner that drives nfvsim → ingest.Server →
// sharded Monitor (→ lifecycle) → eval end-to-end and checks the declared
// assertions. See the repository README's "Scenario harness" section for
// the DSL reference and DESIGN.md §16 for the architecture.
//
// The module is dependency-free, so this file implements the YAML subset
// the DSL needs by hand: block mappings and sequences, compact "- key: v"
// sequence entries, flow lists ("[a, b]"), single- and double-quoted
// scalars, and "#" comments. Anchors, multi-line scalars, flow mappings,
// and tab indentation are rejected with positioned errors.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// yKind discriminates parsed YAML nodes.
type yKind int

const (
	yScalar yKind = iota
	yMap
	ySeq
)

// yNode is one parsed YAML value, tagged with its source line for error
// messages (the validate lint reports "file:line: message").
type yNode struct {
	line    int
	kind    yKind
	scalar  string
	quoted  bool // scalar came from a quoted literal ("06" stays a string)
	entries []yEntry
	items   []*yNode
}

// yEntry is one mapping entry, in document order.
type yEntry struct {
	key  string
	line int
	val  *yNode
}

// get returns the value for key, or nil.
func (n *yNode) get(key string) *yNode {
	for i := range n.entries {
		if n.entries[i].key == key {
			return n.entries[i].val
		}
	}
	return nil
}

// yLine is one significant source line.
type yLine struct {
	num    int
	indent int
	text   string
}

// yParser consumes the significant lines of a document.
type yParser struct {
	lines []yLine
	pos   int
}

// parseYAML parses a document into its root mapping.
func parseYAML(src []byte) (*yNode, error) {
	lines, err := splitLines(string(src))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("line 1: empty document")
	}
	p := &yParser{lines: lines}
	root, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("line %d: unexpected indentation (outdent below document root?)", l.num)
	}
	if root.kind != yMap {
		return nil, fmt.Errorf("line %d: document root must be a mapping", lines[0].num)
	}
	return root, nil
}

// splitLines strips comments and blanks, computes indents, rejects tabs.
func splitLines(src string) ([]yLine, error) {
	var out []yLine
	for i, raw := range strings.Split(src, "\n") {
		num := i + 1
		if strings.Contains(raw, "\t") {
			trimmed := strings.TrimLeft(raw, " ")
			if strings.HasPrefix(trimmed, "\t") || strings.Contains(raw[:len(raw)-len(strings.TrimLeft(raw, " \t"))], "\t") {
				return nil, fmt.Errorf("line %d: tab in indentation (use spaces)", num)
			}
		}
		text := stripComment(raw)
		trimmed := strings.TrimRight(text, " \r")
		body := strings.TrimLeft(trimmed, " ")
		if body == "" || body == "---" {
			continue
		}
		out = append(out, yLine{num: num, indent: len(trimmed) - len(body), text: body})
	}
	return out, nil
}

// stripComment removes a trailing "#"-comment, respecting quoted spans.
func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			// Skip escaped quotes inside double-quoted spans.
			if inD && i > 0 && s[i-1] == '\\' {
				continue
			}
			inD = !inD
		case c == '#' && !inS && !inD:
			if i == 0 || s[i-1] == ' ' {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses the mapping or sequence starting at the current line,
// which must sit at exactly the given indent.
func (p *yParser) parseBlock(indent int) (*yNode, error) {
	l := p.lines[p.pos]
	if l.indent != indent {
		return nil, fmt.Errorf("line %d: bad indentation (got %d spaces, expected %d)", l.num, l.indent, indent)
	}
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseSeq(indent)
	}
	return p.parseMap(indent)
}

// parseMap parses consecutive "key: value" lines at the given indent.
func (p *yParser) parseMap(indent int) (*yNode, error) {
	node := &yNode{line: p.lines[p.pos].num, kind: yMap}
	seen := make(map[string]int)
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
			}
			break
		}
		if l.text == "-" || strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("line %d: sequence item inside a mapping", l.num)
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q (first on line %d)", l.num, key, prev)
		}
		seen[key] = l.num
		p.pos++
		var val *yNode
		if rest != "" {
			val, err = scalarNode(rest, l.num)
			if err != nil {
				return nil, err
			}
		} else if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			val, err = p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
		} else {
			val = &yNode{line: l.num, kind: yScalar, scalar: ""}
		}
		node.entries = append(node.entries, yEntry{key: key, line: l.num, val: val})
	}
	return node, nil
}

// parseSeq parses consecutive "- item" lines at the given indent.
func (p *yParser) parseSeq(indent int) (*yNode, error) {
	node := &yNode{line: p.lines[p.pos].num, kind: ySeq}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || !(l.text == "-" || strings.HasPrefix(l.text, "- ")) {
			if l.indent > indent {
				return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
			}
			break
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		rest = strings.TrimLeft(rest, " ")
		switch {
		case rest == "":
			// "-" alone: nested block on the following deeper lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				node.items = append(node.items, &yNode{line: l.num, kind: yScalar, scalar: ""})
				continue
			}
			item, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			node.items = append(node.items, item)
		case isMappingStart(rest):
			// Compact entry: "- key: v" opens a mapping whose further keys
			// sit at the column where "key" starts.
			childIndent := l.indent + (len(l.text) - len(rest))
			p.lines[p.pos] = yLine{num: l.num, indent: childIndent, text: rest}
			item, err := p.parseMap(childIndent)
			if err != nil {
				return nil, err
			}
			node.items = append(node.items, item)
		default:
			p.pos++
			item, err := scalarNode(rest, l.num)
			if err != nil {
				return nil, err
			}
			node.items = append(node.items, item)
		}
	}
	return node, nil
}

// isMappingStart reports whether a sequence item body opens a mapping.
func isMappingStart(s string) bool {
	if strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "'") || strings.HasPrefix(s, "[") {
		return false
	}
	if strings.HasSuffix(s, ":") {
		return !strings.Contains(s[:len(s)-1], " ")
	}
	i := strings.Index(s, ": ")
	return i > 0 && !strings.Contains(s[:i], " ")
}

// splitKey splits "key: value" / "key:", validating the key.
func splitKey(l yLine) (key, rest string, err error) {
	s := l.text
	if strings.HasSuffix(s, ":") && !strings.Contains(s[:len(s)-1], ": ") {
		key = s[:len(s)-1]
	} else if i := strings.Index(s, ": "); i > 0 {
		key, rest = s[:i], strings.TrimSpace(s[i+2:])
	} else {
		return "", "", fmt.Errorf("line %d: expected \"key: value\", got %q", l.num, s)
	}
	key = strings.TrimSpace(key)
	if key == "" {
		return "", "", fmt.Errorf("line %d: empty mapping key", l.num)
	}
	if strings.ContainsAny(key, "\"'[]{}") {
		return "", "", fmt.Errorf("line %d: unsupported key syntax %q", l.num, key)
	}
	return key, rest, nil
}

// scalarNode builds a scalar (or flow-list) node from an inline value.
func scalarNode(s string, line int) (*yNode, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("line %d: unterminated flow list %q", line, s)
		}
		node := &yNode{line: line, kind: ySeq}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return node, nil
		}
		for _, part := range strings.Split(inner, ",") {
			item, err := scalarNode(strings.TrimSpace(part), line)
			if err != nil {
				return nil, err
			}
			if item.kind != yScalar {
				return nil, fmt.Errorf("line %d: nested flow lists are not supported", line)
			}
			node.items = append(node.items, item)
		}
		return node, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("line %d: flow mappings ({...}) are not supported; use block form", line)
	}
	switch {
	case strings.HasPrefix(s, "\""):
		unq, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad quoted scalar %s: %v", line, s, err)
		}
		return &yNode{line: line, kind: yScalar, scalar: unq, quoted: true}, nil
	case strings.HasPrefix(s, "'"):
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return nil, fmt.Errorf("line %d: unterminated single-quoted scalar %s", line, s)
		}
		return &yNode{line: line, kind: yScalar, scalar: strings.ReplaceAll(s[1:len(s)-1], "''", "'"), quoted: true}, nil
	case strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">") || strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*"):
		return nil, fmt.Errorf("line %d: unsupported YAML feature in %q (block scalars and anchors are out of the subset)", line, s)
	}
	return &yNode{line: line, kind: yScalar, scalar: s}, nil
}
