package scenario

import (
	"strings"
	"testing"
	"time"
)

const specDoc = `
name: spec-test
description: exercises every DSL block
seed: 7
fleet:
  vpes: 6
  months: 3
  start: 2017-01-01
  base_rate_per_hour: 1.2
  mean_fault_gap_hours: 250
train:
  months: 1
  clusters: 1
  hidden: [16]
  epochs: 2
  max_vocab: 32
serve:
  shards: 4
  threshold: 5
  admin: true
lifecycle:
  enabled: true
  min_windows: 2
timeline:
  - at: 40d
    fault:
      cause: circuit
      fraction: 0.5
      duration: 3h
      duplicates: 2
  - at: 45d
    burst:
      vpes: vpe01
      messages: 5
      repeat: 3
      every: 2h
  - at: 50d
    chaos:
      point: shard.score
      mode: panic
      count: 1
  - at: 55d
    adapt:
      forced: true
  - at: 60d
    checkpoint:
  - at: 65d
    degrade:
      mode: shed-scoring
assert:
  min_warnings: 1
  max_far_per_day: 100
  checkpoint_parity: true
  lifecycle:
    min_cycles: 1
  chaos:
    - point: shard.score
      min_fired: 1
  metrics:
    - name: monitor_shard_panics
      min: 1
`

func TestLoadSpec(t *testing.T) {
	spec, err := Load([]byte(specDoc))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if spec.Name != "spec-test" || spec.Seed != 7 {
		t.Fatalf("header: %+v", spec)
	}
	if spec.Fleet.VPEs != 6 || spec.Fleet.Months != 3 {
		t.Fatalf("fleet: %+v", spec.Fleet)
	}
	if !spec.Fleet.Start.Equal(time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)) {
		t.Fatalf("start: %v", spec.Fleet.Start)
	}
	if spec.Train.Months != 1 || spec.Train.Epochs != 2 || len(spec.Train.Hidden) != 1 || spec.Train.Hidden[0] != 16 {
		t.Fatalf("train: %+v", spec.Train)
	}
	if !spec.Serve.Admin || spec.Serve.Shards != 4 || spec.Serve.Threshold != 5 {
		t.Fatalf("serve: %+v", spec.Serve)
	}
	if !spec.Lifecycle.Enabled || spec.Lifecycle.MinWindows != 2 {
		t.Fatalf("lifecycle: %+v", spec.Lifecycle)
	}
	if len(spec.Timeline) != 6 {
		t.Fatalf("timeline len %d: %+v", len(spec.Timeline), spec.Timeline)
	}
	kinds := make([]string, len(spec.Timeline))
	for i, ev := range spec.Timeline {
		kinds[i] = ev.Kind
	}
	want := []string{EventFault, EventBurst, EventChaos, EventAdapt, EventCheckpoint, EventDegrade}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("timeline order %v, want %v", kinds, want)
		}
	}
	if spec.Timeline[0].At != 40*24*time.Hour || spec.Timeline[0].Cause != "circuit" || spec.Timeline[0].Duplicates != 2 {
		t.Fatalf("fault event: %+v", spec.Timeline[0])
	}
	if spec.Timeline[1].Repeat != 3 || spec.Timeline[1].Every != 2*time.Hour || len(spec.Timeline[1].VPEs) != 1 {
		t.Fatalf("burst event: %+v", spec.Timeline[1])
	}
	if spec.Timeline[2].Point != "shard.score" || spec.Timeline[2].Mode != "panic" {
		t.Fatalf("chaos event: %+v", spec.Timeline[2])
	}
	if !spec.Timeline[3].Forced {
		t.Fatalf("adapt event: %+v", spec.Timeline[3])
	}
	if spec.Timeline[5].DegradeMode != "shed-scoring" {
		t.Fatalf("degrade event: %+v", spec.Timeline[5])
	}
	if spec.Assert.MinWarnings == nil || *spec.Assert.MinWarnings != 1 {
		t.Fatalf("assert: %+v", spec.Assert)
	}
	if !spec.Assert.CheckpointParity || spec.Assert.Lifecycle == nil || len(spec.Assert.Chaos) != 1 || len(spec.Assert.Metrics) != 1 {
		t.Fatalf("assert blocks: %+v", spec.Assert)
	}

	cfg, err := spec.SimConfig()
	if err != nil {
		t.Fatalf("sim config: %v", err)
	}
	if len(cfg.Injections) != 2 {
		t.Fatalf("injections %d, want 2 (fault + burst)", len(cfg.Injections))
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("compiled config invalid: %v", err)
	}
	if got := spec.ServeStart(); !got.Equal(time.Date(2017, 2, 1, 0, 0, 0, 0, time.UTC)) {
		t.Fatalf("serve start: %v", got)
	}
}

func TestSpecErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"unknown top key", "name: x\nflee:\n  vpes: 3\n", "unknown key \"flee\""},
		{"unknown fleet key", "name: x\nfleet:\n  vpe_count: 3\n", "unknown key \"vpe_count\""},
		{"missing name", "seed: 1\n", "must have a name"},
		{"bad cause", "name: x\ntimeline:\n  - at: 40d\n    fault:\n      cause: gremlins\n", "unknown fault cause"},
		{"two kinds", "name: x\ntimeline:\n  - at: 40d\n    checkpoint:\n    degrade:\n      mode: normal\n", "one event kind per entry"},
		{"no at", "name: x\ntimeline:\n  - checkpoint:\n", "needs an \"at:\""},
		{"bad duration", "name: x\ntimeline:\n  - at: soon\n    checkpoint:\n", "not a duration"},
		{"bad chaos point", "name: x\ntimeline:\n  - at: 40d\n    chaos:\n      point: nope\n      mode: panic\n", "unknown chaos point"},
		{"year boundary", "name: x\nfleet:\n  start: 2017-11-01\n  months: 3\n", "crosses a calendar year"},
		{"train too long", "name: x\nfleet:\n  months: 3\ntrain:\n  months: 3\n", "train.months"},
		{"adapt without lifecycle", "name: x\ntimeline:\n  - at: 40d\n    adapt:\n      forced: true\n", "requires lifecycle.enabled"},
		{"event in training window", "name: x\ntimeline:\n  - at: 1d\n    checkpoint:\n", "inside the training window"},
		{"event past horizon", "name: x\ntimeline:\n  - at: 1000d\n    checkpoint:\n", "outside the"},
		{"parity without checkpoint", "name: x\nassert:\n  checkpoint_parity: true\n", "requires at least one checkpoint event"},
		{"bad metric", "name: x\nassert:\n  metrics:\n    - name: bogus\n      min: 1\n", "unknown metric"},
		{"bad vpe name", "name: x\ntimeline:\n  - at: 40d\n    fault:\n      cause: circuit\n      vpes: [vpe99]\n", "vpe99"},
		{"degrade bad mode", "name: x\ntimeline:\n  - at: 40d\n    degrade:\n      mode: sideways\n", "degrade.mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load([]byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
