package scenario

import (
	"strings"
	"testing"
)

func TestYAMLBasics(t *testing.T) {
	src := `
# a comment
name: demo
seed: 42
fleet:
  vpes: 6
  start: 2017-01-01
list:
  - one
  - "two three"
  - 'it''s'
flow: [a, b, c]
timeline:
  - at: 30d
    fault:
      cause: circuit
      vpes: [vpe00, vpe01]
  - at: 45d
    checkpoint:
`
	root, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := root.get("name").scalar; got != "demo" {
		t.Fatalf("name = %q", got)
	}
	fleet := root.get("fleet")
	if fleet == nil || fleet.kind != yMap || fleet.get("vpes").scalar != "6" {
		t.Fatalf("fleet not decoded: %+v", fleet)
	}
	list := root.get("list")
	if list.kind != ySeq || len(list.items) != 3 {
		t.Fatalf("list: %+v", list)
	}
	if list.items[1].scalar != "two three" || list.items[2].scalar != "it's" {
		t.Fatalf("quoted scalars: %q %q", list.items[1].scalar, list.items[2].scalar)
	}
	flow := root.get("flow")
	if flow.kind != ySeq || len(flow.items) != 3 || flow.items[2].scalar != "c" {
		t.Fatalf("flow list: %+v", flow)
	}
	tl := root.get("timeline")
	if tl.kind != ySeq || len(tl.items) != 2 {
		t.Fatalf("timeline: %+v", tl)
	}
	first := tl.items[0]
	if first.kind != yMap || first.get("at").scalar != "30d" {
		t.Fatalf("compact entry: %+v", first)
	}
	fault := first.get("fault")
	if fault.kind != yMap || fault.get("cause").scalar != "circuit" {
		t.Fatalf("nested map under compact entry: %+v", fault)
	}
	if vpes := fault.get("vpes"); vpes.kind != ySeq || len(vpes.items) != 2 {
		t.Fatalf("flow list in nested map: %+v", vpes)
	}
	// Bare "checkpoint:" decodes as an empty scalar.
	if cp := tl.items[1].get("checkpoint"); cp == nil || cp.kind != yScalar || cp.scalar != "" {
		t.Fatalf("empty value: %+v", cp)
	}
}

func TestYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"tab indent", "a:\n\tb: 1\n", "tab in indentation"},
		{"duplicate key", "a: 1\na: 2\n", "duplicate key"},
		{"bad outdent", "a:\n    b: 1\n  c: 2\n", "unexpected indentation"},
		{"flow map", "a: {b: 1}\n", "flow mappings"},
		{"anchor", "a: &x 1\n", "unsupported YAML feature"},
		{"block scalar", "a: |\n  text\n", "unsupported YAML feature"},
		{"root seq", "- a\n- b\n", "root must be a mapping"},
		{"empty", "\n# only comments\n", "empty document"},
		{"bad line", "just words\n", "expected \"key: value\""},
		{"unterminated flow", "a: [1, 2\n", "unterminated flow list"},
		{"unterminated quote", "a: 'oops\n", "unterminated single-quoted"},
		{"seq in map", "a: 1\n- b\n", "sequence item inside a mapping"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestYAMLCommentsAndQuotes(t *testing.T) {
	src := `
a: value # trailing comment
b: "quoted # not a comment"
c: 'single # also kept'
d: url#fragment
`
	root, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := root.get("a").scalar; got != "value" {
		t.Fatalf("a = %q", got)
	}
	if got := root.get("b").scalar; got != "quoted # not a comment" {
		t.Fatalf("b = %q", got)
	}
	if got := root.get("c").scalar; got != "single # also kept" {
		t.Fatalf("c = %q", got)
	}
	// '#' not preceded by a space is part of the scalar.
	if got := root.get("d").scalar; got != "url#fragment" {
		t.Fatalf("d = %q", got)
	}
}

func TestYAMLNestedSeqOfMaps(t *testing.T) {
	src := `
metrics:
  -
    name: a
    min: 1
  - name: b
    max: 2
`
	root, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m := root.get("metrics")
	if m.kind != ySeq || len(m.items) != 2 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.items[0].get("name").scalar != "a" || m.items[0].get("min").scalar != "1" {
		t.Fatalf("dash-alone item: %+v", m.items[0])
	}
	if m.items[1].get("name").scalar != "b" || m.items[1].get("max").scalar != "2" {
		t.Fatalf("compact item: %+v", m.items[1])
	}
}
