package scenario

import "fmt"

// evaluate checks every declared assertion against the run report and
// returns the verdicts in a stable order.
func evaluate(spec *Spec, rep *Report) []AssertionResult {
	var out []AssertionResult
	add := func(name string, ok bool, format string, args ...any) {
		out = append(out, AssertionResult{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
	}
	a := &spec.Assert
	s := rep.Eval

	if a.ZeroDrops {
		ok := rep.Serve.Malformed == 0 && rep.Serve.Dropped == 0 && rep.Serve.ShardDropped == 0
		add("zero_drops", ok, "malformed=%d dropped=%d shard_dropped=%d",
			rep.Serve.Malformed, rep.Serve.Dropped, rep.Serve.ShardDropped)
	}
	if a.MinWarnings != nil {
		add("min_warnings", s.Warnings >= *a.MinWarnings, "warnings=%d want>=%d", s.Warnings, *a.MinWarnings)
	}
	if a.MaxWarnings != nil {
		add("max_warnings", s.Warnings <= *a.MaxWarnings, "warnings=%d want<=%d", s.Warnings, *a.MaxWarnings)
	}
	if a.MaxFARPerDay != nil {
		add("max_far_per_day", s.FalseAlarmsPerDay <= *a.MaxFARPerDay,
			"far=%.3f/day want<=%.3f", s.FalseAlarmsPerDay, *a.MaxFARPerDay)
	}
	if a.MinPrecision != nil {
		add("min_precision", s.Precision >= *a.MinPrecision, "precision=%.3f want>=%.3f", s.Precision, *a.MinPrecision)
	}
	if a.MinRecall != nil {
		add("min_recall", s.Recall >= *a.MinRecall, "recall=%.3f want>=%.3f", s.Recall, *a.MinRecall)
	}
	if a.MinDetected != nil {
		add("min_detected", s.DetectedTickets >= *a.MinDetected,
			"detected=%d/%d want>=%d", s.DetectedTickets, s.Tickets, *a.MinDetected)
	}
	if a.MinEarlyTickets != nil {
		add("min_early_tickets", s.EarlyTickets >= *a.MinEarlyTickets,
			"early=%d want>=%d", s.EarlyTickets, *a.MinEarlyTickets)
	}
	if a.MinMeanLeadMinutes != nil {
		add("min_mean_lead_minutes", s.MeanLeadMinutes >= *a.MinMeanLeadMinutes,
			"mean_lead=%.1fmin want>=%.1f", s.MeanLeadMinutes, *a.MinMeanLeadMinutes)
	}
	if a.MinFalseAlarms != nil {
		add("min_false_alarms", s.FalseAlarms >= *a.MinFalseAlarms,
			"false_alarms=%d want>=%d", s.FalseAlarms, *a.MinFalseAlarms)
	}
	if a.MaxFalseAlarms != nil {
		add("max_false_alarms", s.FalseAlarms <= *a.MaxFalseAlarms,
			"false_alarms=%d want<=%d", s.FalseAlarms, *a.MaxFalseAlarms)
	}
	if a.CheckpointParity {
		ok := rep.Serve.CheckpointSaves > 0 && rep.Serve.CheckpointParity
		add("checkpoint_parity", ok, "saves=%d parity=%v", rep.Serve.CheckpointSaves, rep.Serve.CheckpointParity)
	}
	if la := a.Lifecycle; la != nil {
		lr := rep.Lifecycle
		if lr == nil {
			add("lifecycle", false, "no lifecycle ran")
		} else {
			if la.MinCycles != nil {
				add("lifecycle.min_cycles", lr.Cycles >= *la.MinCycles, "cycles=%d want>=%d", lr.Cycles, *la.MinCycles)
			}
			if la.MinPromotions != nil {
				add("lifecycle.min_promotions", lr.Promotions >= *la.MinPromotions,
					"promotions=%d want>=%d", lr.Promotions, *la.MinPromotions)
			}
			if la.Breaker != "" {
				add("lifecycle.breaker", lr.Breaker == la.Breaker, "breaker=%s want=%s", lr.Breaker, la.Breaker)
			}
		}
	}
	for _, ca := range a.Chaos {
		var fired uint64
		for _, pr := range rep.Chaos {
			if pr.Point == ca.Point {
				fired = pr.Fired
			}
		}
		add("chaos."+ca.Point, fired >= ca.MinFired, "fired=%d want>=%d", fired, ca.MinFired)
	}
	for _, ma := range a.Metrics {
		v, ok := metricValue(rep, ma.Name)
		if !ok {
			add("metric."+ma.Name, false, "metric unavailable")
			continue
		}
		pass := true
		detail := fmt.Sprintf("%s=%.3f", ma.Name, v)
		if ma.Min != nil {
			pass = pass && v >= *ma.Min
			detail += fmt.Sprintf(" want>=%.3f", *ma.Min)
		}
		if ma.Max != nil {
			pass = pass && v <= *ma.Max
			detail += fmt.Sprintf(" want<=%.3f", *ma.Max)
		}
		add("metric."+ma.Name, pass, "%s", detail)
	}
	return out
}

// metricValue resolves one MetricNames identifier against the report.
func metricValue(rep *Report, name string) (float64, bool) {
	s := rep.Eval
	switch name {
	case "sim_messages":
		return float64(rep.Sim.Messages), true
	case "sim_tickets":
		return float64(rep.Sim.Tickets), true
	case "serve_received":
		return float64(rep.Serve.Received), true
	case "serve_malformed":
		return float64(rep.Serve.Malformed), true
	case "serve_dropped":
		return float64(rep.Serve.Dropped), true
	case "serve_shard_dropped":
		return float64(rep.Serve.ShardDropped), true
	case "monitor_messages":
		return float64(rep.Serve.Messages), true
	case "monitor_anomalies":
		return float64(rep.Serve.Anomalies), true
	case "monitor_warnings":
		return float64(rep.Serve.Warnings), true
	case "monitor_shard_panics":
		return float64(rep.Serve.ShardPanics), true
	case "monitor_worker_restarts":
		return float64(rep.Serve.WorkerRestarts), true
	case "monitor_watchdog_kicks":
		return float64(rep.Serve.WatchdogKicks), true
	case "monitor_evicted_hosts":
		return float64(rep.Serve.EvictedHosts), true
	case "monitor_shed_messages":
		return float64(rep.Serve.ShedMessages), true
	case "checkpoint_saves":
		return float64(rep.Serve.CheckpointSaves), true
	case "lifecycle_cycles":
		if rep.Lifecycle == nil {
			return 0, false
		}
		return float64(rep.Lifecycle.Cycles), true
	case "lifecycle_generation":
		if rep.Lifecycle == nil {
			return 0, false
		}
		return float64(rep.Lifecycle.Generation), true
	}
	if s == nil {
		return 0, false
	}
	switch name {
	case "eval_warnings":
		return float64(s.Warnings), true
	case "eval_false_alarms":
		return float64(s.FalseAlarms), true
	case "eval_detected":
		return float64(s.DetectedTickets), true
	case "precision":
		return s.Precision, true
	case "recall":
		return s.Recall, true
	case "f_measure":
		return s.F, true
	case "far_per_day":
		return s.FalseAlarmsPerDay, true
	}
	return 0, false
}
