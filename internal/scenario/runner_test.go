package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nfvpredict/internal/logfmt"
)

// e2eDoc is a compact full-stack scenario: a small fleet, an injected
// regional fault plus a ticketless burst, a chaos panic, a checkpoint
// parity probe, and a degrade excursion. Tuned to run in seconds.
const e2eDoc = `
name: e2e-test
description: runner end-to-end exercise
seed: 11
fleet:
  vpes: 4
  months: 2
  start: 2017-01-01
  base_rate_per_hour: 1.0
  mean_fault_gap_hours: 2000
train:
  months: 1
  epochs: 2
  max_vocab: 32
serve:
  shards: 2
  threshold: 5
  admin: true
timeline:
  - at: 38d
    fault:
      cause: circuit
      fraction: 0.5
      duration: 3h
      duplicates: 1
  - at: 42d
    burst:
      vpes: vpe01
      messages: 6
  - at: 45d
    chaos:
      point: shard.score
      mode: panic
      count: 1
  - at: 50d
    checkpoint:
  - at: 54d
    degrade:
      mode: shed-learning
  - at: 55d
    degrade:
      mode: normal
assert:
  min_warnings: 1
  checkpoint_parity: true
  chaos:
    - point: shard.score
      min_fired: 1
  metrics:
    - name: serve_received
      min: 1000
`

func TestRunnerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack scenario run")
	}
	spec, err := Load([]byte(e2eDoc))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	dump := filepath.Join(t.TempDir(), "trace.jsonl")
	var statusBody []byte
	rep, err := Run(spec, Options{
		DumpTrace: dump,
		AdminUp: func(addr net.Addr) {
			resp, aerr := http.Get(fmt.Sprintf("http://%s/statusz", addr))
			if aerr != nil {
				t.Errorf("statusz: %v", aerr)
				return
			}
			defer resp.Body.Close()
			statusBody, _ = io.ReadAll(resp.Body)
		},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.Passed {
		t.Fatalf("scenario failed: %+v", rep.Assertions)
	}
	if rep.Sim.Injections != 2 {
		t.Fatalf("injections %d, want 2", rep.Sim.Injections)
	}
	if rep.Serve.Received == 0 || rep.Serve.Messages == 0 {
		t.Fatalf("nothing served: %+v", rep.Serve)
	}
	if rep.Serve.Malformed != 0 || rep.Serve.ShardDropped != 0 {
		t.Fatalf("lossy serve: %+v", rep.Serve)
	}
	if rep.Serve.CheckpointSaves != 1 || !rep.Serve.CheckpointParity {
		t.Fatalf("checkpoint: %+v", rep.Serve)
	}
	if rep.Eval == nil || rep.Eval.Warnings < 1 {
		t.Fatalf("eval: %+v", rep.Eval)
	}
	if len(rep.Events) != 4 {
		t.Fatalf("runner events %d, want 4 (chaos, checkpoint, 2 degrade): %+v", len(rep.Events), rep.Events)
	}
	// /statusz carried the scenario metadata while the run was live.
	var status struct {
		Scenario string `json:"scenario"`
		Phase    string `json:"phase"`
	}
	if err := json.Unmarshal(statusBody, &status); err != nil {
		t.Fatalf("statusz decode: %v (%s)", err, statusBody)
	}
	if status.Scenario != "e2e-test" || status.Phase != "serve" {
		t.Fatalf("statusz metadata: %+v", status)
	}
	// The dumped trace is replaylog's input format.
	f, err := os.Open(dump)
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	defer f.Close()
	msgs, err := logfmt.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("dump read: %v", err)
	}
	if len(msgs) != rep.Sim.Messages {
		t.Fatalf("dump has %d messages, trace had %d", len(msgs), rep.Sim.Messages)
	}
	// The report is the -json surface: it must round-trip.
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report marshal: %v", err)
	}
	if !strings.Contains(string(b), `"scenario":"e2e-test"`) {
		t.Fatalf("report JSON missing name: %s", b)
	}
}

// determinismDoc avoids chaos faults (panics can eat in-flight batches)
// and the lifecycle (spool interleaving varies) so two runs must agree on
// every eval number.
const determinismDoc = `
name: determinism-test
seed: 23
fleet:
  vpes: 4
  months: 2
  start: 2017-01-01
  base_rate_per_hour: 1.0
  mean_fault_gap_hours: 2000
train:
  months: 1
  epochs: 2
  max_vocab: 32
serve:
  shards: 3
  threshold: 5
timeline:
  - at: 40d
    fault:
      cause: software
      fraction: 0.5
      duration: 2h
assert:
  min_warnings: 1
`

func TestRunnerDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack scenario run")
	}
	spec, err := Load([]byte(determinismDoc))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	run := func() string {
		rep, rerr := Run(spec, Options{})
		if rerr != nil {
			t.Fatalf("run: %v", rerr)
		}
		if !rep.Passed {
			t.Fatalf("scenario failed: %+v", rep.Assertions)
		}
		b, merr := json.Marshal(rep.Eval)
		if merr != nil {
			t.Fatalf("marshal: %v", merr)
		}
		return string(b)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("eval summaries diverge across identical runs:\n%s\n%s", a, b)
	}
}
