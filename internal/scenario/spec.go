package scenario

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"nfvpredict/internal/nfvsim"
	"nfvpredict/internal/ticket"
)

// Spec is a parsed, validated scenario.
type Spec struct {
	// Name identifies the scenario in reports and /statusz.
	Name string
	// Description is a one-line human summary.
	Description string
	// Seed drives every random choice (simulation and training).
	Seed int64
	// File is the source path when loaded from disk ("" for inline specs).
	File string

	Fleet     FleetSpec
	Train     TrainSpec
	Serve     ServeSpec
	Lifecycle LifecycleSpec
	Timeline  []Event
	Assert    AssertSpec
}

// FleetSpec mirrors the nfvsim Config knobs the DSL exposes.
type FleetSpec struct {
	VPEs                  int
	Months                int
	Start                 time.Time
	BaseRatePerHour       float64
	Roles                 int
	MeanFaultGapHours     float64
	MaintenanceEvery      time.Duration
	DupProb               float64
	CoreIncidentsPerMonth float64
	UpdateMonth           int
	UpdateFraction        float64
	GlitchesPerDay        float64
}

// TrainSpec controls the bootstrap-training phase.
type TrainSpec struct {
	// Months is the number of leading months used for training; the
	// serve phase replays the rest of the horizon.
	Months int
	// Clusters is the per-role model count (1 = single fleet model).
	Clusters int
	// Hidden, Epochs, MaxVocab override the LSTM configuration.
	Hidden   []int
	Epochs   int
	MaxVocab int
	// Exclusion is the ticket-exclusion window for clean training data.
	Exclusion time.Duration
}

// ServeSpec controls the serving stack.
type ServeSpec struct {
	// Shards is the monitor's shard count.
	Shards int
	// Threshold is the anomaly threshold.
	Threshold float64
	// Admin enables the obs admin surface (/statusz scenario metadata)
	// on a loopback listener for the duration of the run.
	Admin bool
}

// LifecycleSpec enables and tunes online adaptation.
type LifecycleSpec struct {
	Enabled         bool
	GateBudget      float64
	WindowLen       int
	SpoolPerCluster int
	MinWindows      int
	DriftThreshold  float64
}

// Event kinds. Sim-side kinds compile to nfvsim.Injections; runner-side
// kinds execute at their trace-time offset during the serve phase.
const (
	EventFault      = "fault"      // sim: fault episode(s) with ticket(s)
	EventBurst      = "burst"      // sim: ticketless anomaly burst
	EventChaos      = "chaos"      // runner: arm a faultinject point
	EventAdapt      = "adapt"      // runner: trigger a lifecycle cycle
	EventCheckpoint = "checkpoint" // runner: checkpoint + restore parity
	EventDegrade    = "degrade"    // runner: switch monitor degrade mode
)

// Event is one timeline entry.
type Event struct {
	// At is the offset from trace start.
	At time.Duration
	// Kind is one of the Event* constants.
	Kind string
	// Line is the source line (error messages and reports).
	Line int

	// fault / burst
	Cause      string
	VPEs       []string
	Fraction   float64
	Duration   time.Duration
	Duplicates int
	Messages   int
	Repeat     int
	Every      time.Duration

	// chaos
	Point string
	Mode  string
	Count int
	Delay time.Duration
	Bytes int
	Skew  time.Duration

	// adapt
	Forced bool

	// degrade
	DegradeMode string
}

// AssertSpec is the declarative assertion block. Nil pointers mean
// "not asserted".
type AssertSpec struct {
	MinWarnings        *int
	MaxWarnings        *int
	MaxFARPerDay       *float64
	MinPrecision       *float64
	MinRecall          *float64
	MinDetected        *int
	MinEarlyTickets    *int
	MinMeanLeadMinutes *float64
	MinFalseAlarms     *int
	MaxFalseAlarms     *int
	// CheckpointParity requires at least one checkpoint event, all with
	// restore parity intact.
	CheckpointParity bool
	// ZeroDrops asserts the serving path dropped nothing (default true —
	// the runner paces feeding so drops indicate a harness bug).
	ZeroDrops bool
	Lifecycle *LifecycleAssert
	Chaos     []ChaosAssert
	Metrics   []MetricAssert
}

// LifecycleAssert checks adaptation outcomes.
type LifecycleAssert struct {
	MinCycles     *int
	MinPromotions *int
	Breaker       string // "", "closed", "open"
}

// ChaosAssert checks a fault point's injected-failure count.
type ChaosAssert struct {
	Point    string
	MinFired uint64
}

// MetricAssert checks one runner-exported metric value (see MetricNames).
type MetricAssert struct {
	Name string
	Min  *float64
	Max  *float64
}

// knownPoints are the fault points a chaos event may arm — the registry
// names used across ingest and lifecycle.
var knownPoints = map[string]bool{
	"checkpoint.write": true,
	"spool.write":      true,
	"spool.read":       true,
	"bundle.load":      true,
	"shard.score":      true,
	"shard.worker":     true,
	"heartbeat.skew":   true,
	"lifecycle.cycle":  true,
}

// knownModes are the faultinject arming modes.
var knownModes = map[string]bool{
	"error": true, "disk-full": true, "torn": true,
	"panic": true, "slow": true, "skew": true,
}

// MetricNames lists the metric identifiers a `metrics:` assertion may
// reference, resolved against the run report.
var MetricNames = []string{
	"sim_messages", "sim_tickets",
	"serve_received", "serve_malformed", "serve_dropped", "serve_shard_dropped",
	"monitor_messages", "monitor_anomalies", "monitor_warnings",
	"monitor_shard_panics", "monitor_worker_restarts", "monitor_watchdog_kicks",
	"monitor_evicted_hosts", "monitor_shed_messages",
	"eval_warnings", "eval_false_alarms", "eval_detected",
	"precision", "recall", "f_measure", "far_per_day",
	"lifecycle_cycles", "lifecycle_generation",
	"checkpoint_saves",
}

var metricNameSet = func() map[string]bool {
	m := make(map[string]bool, len(MetricNames))
	for _, n := range MetricNames {
		m[n] = true
	}
	return m
}()

// causeByName maps DSL cause names to ticket root causes.
var causeByName = map[string]ticket.RootCause{
	"circuit":  ticket.Circuit,
	"software": ticket.Software,
	"cable":    ticket.Cable,
	"hardware": ticket.Hardware,
}

// Load parses and validates a scenario document.
func Load(src []byte) (*Spec, error) {
	root, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	d := &dec{}
	spec := d.decodeSpec(root)
	if err := d.err(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// LoadFile loads a scenario from disk.
func LoadFile(path string) (*Spec, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	spec, err := Load(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	spec.File = path
	return spec, nil
}

// dec accumulates positioned decode errors.
type dec struct {
	errs []string
}

func (d *dec) errf(line int, format string, args ...any) {
	d.errs = append(d.errs, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (d *dec) err() error {
	if len(d.errs) == 0 {
		return nil
	}
	return errors.New(strings.Join(d.errs, "\n"))
}

// want checks node kind, reporting an error and returning false on
// mismatch (nil nodes fail silently: the caller reported the miss).
func (d *dec) want(n *yNode, kind yKind, what string) bool {
	if n == nil {
		return false
	}
	if n.kind != kind {
		names := map[yKind]string{yScalar: "a scalar", yMap: "a mapping", ySeq: "a list"}
		d.errf(n.line, "%s must be %s", what, names[kind])
		return false
	}
	return true
}

func (d *dec) str(n *yNode, what string) string {
	if !d.want(n, yScalar, what) {
		return ""
	}
	return n.scalar
}

func (d *dec) integer(n *yNode, what string) int {
	if !d.want(n, yScalar, what) {
		return 0
	}
	v, err := strconv.Atoi(n.scalar)
	if err != nil {
		d.errf(n.line, "%s: not an integer: %q", what, n.scalar)
		return 0
	}
	return v
}

func (d *dec) float(n *yNode, what string) float64 {
	if !d.want(n, yScalar, what) {
		return 0
	}
	v, err := strconv.ParseFloat(n.scalar, 64)
	if err != nil {
		d.errf(n.line, "%s: not a number: %q", what, n.scalar)
		return 0
	}
	return v
}

func (d *dec) boolean(n *yNode, what string) bool {
	if !d.want(n, yScalar, what) {
		return false
	}
	switch n.scalar {
	case "true", "yes", "on":
		return true
	case "false", "no", "off":
		return false
	}
	d.errf(n.line, "%s: not a boolean: %q", what, n.scalar)
	return false
}

// duration parses "90m", "3h", or the day extension "45d" / "2.5d".
func (d *dec) duration(n *yNode, what string) time.Duration {
	if !d.want(n, yScalar, what) {
		return 0
	}
	s := n.scalar
	if strings.HasSuffix(s, "d") {
		days, err := strconv.ParseFloat(strings.TrimSuffix(s, "d"), 64)
		if err == nil {
			return time.Duration(days * 24 * float64(time.Hour))
		}
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		d.errf(n.line, "%s: not a duration (use 30m/3h/45d): %q", what, s)
		return 0
	}
	return v
}

func (d *dec) strList(n *yNode, what string) []string {
	if n == nil {
		return nil
	}
	if n.kind == yScalar {
		return []string{n.scalar}
	}
	if !d.want(n, ySeq, what) {
		return nil
	}
	out := make([]string, 0, len(n.items))
	for _, it := range n.items {
		out = append(out, d.str(it, what+" item"))
	}
	return out
}

func (d *dec) intList(n *yNode, what string) []int {
	if !d.want(n, ySeq, what) {
		return nil
	}
	out := make([]int, 0, len(n.items))
	for _, it := range n.items {
		out = append(out, d.integer(it, what+" item"))
	}
	return out
}

func (d *dec) intPtr(n *yNode, what string) *int   { v := d.integer(n, what); return &v }
func (d *dec) f64Ptr(n *yNode, what string) *float64 { v := d.float(n, what); return &v }

// checkKeys reports unknown keys — the heart of `nfvscen validate`.
func (d *dec) checkKeys(n *yNode, what string, allowed ...string) {
	ok := make(map[string]bool, len(allowed))
	for _, k := range allowed {
		ok[k] = true
	}
	for _, e := range n.entries {
		if !ok[e.key] {
			sorted := append([]string(nil), allowed...)
			sort.Strings(sorted)
			d.errf(e.line, "unknown key %q in %s (known: %s)", e.key, what, strings.Join(sorted, ", "))
		}
	}
}

// decodeSpec decodes the document root.
func (d *dec) decodeSpec(root *yNode) *Spec {
	spec := &Spec{
		Seed: 1,
		Fleet: FleetSpec{
			VPEs:              6,
			Months:            3,
			Start:             time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
			BaseRatePerHour:   1.2,
			Roles:             4,
			MeanFaultGapHours: 300,
			MaintenanceEvery:  35 * 24 * time.Hour,
			DupProb:           0.25,
			UpdateMonth:       -1,
			UpdateFraction:    0.8,
			GlitchesPerDay:    0.08,
		},
		Train: TrainSpec{
			Months:    1,
			Clusters:  1,
			Hidden:    []int{16},
			Epochs:    4,
			MaxVocab:  48,
			Exclusion: 72 * time.Hour,
		},
		Serve: ServeSpec{
			Shards:    4,
			Threshold: 6,
		},
		Lifecycle: LifecycleSpec{
			GateBudget:      1.0,
			WindowLen:       16,
			SpoolPerCluster: 64,
			MinWindows:      4,
			DriftThreshold:  0.7,
		},
		Assert: AssertSpec{ZeroDrops: true},
	}
	d.checkKeys(root, "scenario", "name", "description", "seed", "fleet", "train", "serve", "lifecycle", "timeline", "assert")
	for _, e := range root.entries {
		switch e.key {
		case "name":
			spec.Name = d.str(e.val, "name")
		case "description":
			spec.Description = d.str(e.val, "description")
		case "seed":
			spec.Seed = int64(d.integer(e.val, "seed"))
		case "fleet":
			d.decodeFleet(e.val, &spec.Fleet)
		case "train":
			d.decodeTrain(e.val, &spec.Train)
		case "serve":
			d.decodeServe(e.val, &spec.Serve)
		case "lifecycle":
			d.decodeLifecycle(e.val, &spec.Lifecycle)
		case "timeline":
			d.decodeTimeline(e.val, spec)
		case "assert":
			d.decodeAssert(e.val, &spec.Assert)
		}
	}
	if spec.Name == "" {
		d.errf(root.line, "scenario must have a name")
	}
	return spec
}

func (d *dec) decodeFleet(n *yNode, f *FleetSpec) {
	if !d.want(n, yMap, "fleet") {
		return
	}
	d.checkKeys(n, "fleet", "vpes", "months", "start", "base_rate_per_hour", "roles",
		"mean_fault_gap_hours", "maintenance_every", "dup_prob", "core_incidents_per_month",
		"update_month", "update_fraction", "glitches_per_day")
	for _, e := range n.entries {
		switch e.key {
		case "vpes":
			f.VPEs = d.integer(e.val, "fleet.vpes")
		case "months":
			f.Months = d.integer(e.val, "fleet.months")
		case "start":
			s := d.str(e.val, "fleet.start")
			t, err := time.Parse("2006-01-02", s)
			if err != nil {
				d.errf(e.line, "fleet.start: not a date (YYYY-MM-DD): %q", s)
			} else {
				f.Start = t
			}
		case "base_rate_per_hour":
			f.BaseRatePerHour = d.float(e.val, "fleet.base_rate_per_hour")
		case "roles":
			f.Roles = d.integer(e.val, "fleet.roles")
		case "mean_fault_gap_hours":
			f.MeanFaultGapHours = d.float(e.val, "fleet.mean_fault_gap_hours")
		case "maintenance_every":
			f.MaintenanceEvery = d.duration(e.val, "fleet.maintenance_every")
		case "dup_prob":
			f.DupProb = d.float(e.val, "fleet.dup_prob")
		case "core_incidents_per_month":
			f.CoreIncidentsPerMonth = d.float(e.val, "fleet.core_incidents_per_month")
		case "update_month":
			f.UpdateMonth = d.integer(e.val, "fleet.update_month")
		case "update_fraction":
			f.UpdateFraction = d.float(e.val, "fleet.update_fraction")
		case "glitches_per_day":
			f.GlitchesPerDay = d.float(e.val, "fleet.glitches_per_day")
		}
	}
}

func (d *dec) decodeTrain(n *yNode, t *TrainSpec) {
	if !d.want(n, yMap, "train") {
		return
	}
	d.checkKeys(n, "train", "months", "clusters", "hidden", "epochs", "max_vocab", "exclusion")
	for _, e := range n.entries {
		switch e.key {
		case "months":
			t.Months = d.integer(e.val, "train.months")
		case "clusters":
			t.Clusters = d.integer(e.val, "train.clusters")
		case "hidden":
			t.Hidden = d.intList(e.val, "train.hidden")
		case "epochs":
			t.Epochs = d.integer(e.val, "train.epochs")
		case "max_vocab":
			t.MaxVocab = d.integer(e.val, "train.max_vocab")
		case "exclusion":
			t.Exclusion = d.duration(e.val, "train.exclusion")
		}
	}
}

func (d *dec) decodeServe(n *yNode, s *ServeSpec) {
	if !d.want(n, yMap, "serve") {
		return
	}
	d.checkKeys(n, "serve", "shards", "threshold", "admin")
	for _, e := range n.entries {
		switch e.key {
		case "shards":
			s.Shards = d.integer(e.val, "serve.shards")
		case "threshold":
			s.Threshold = d.float(e.val, "serve.threshold")
		case "admin":
			s.Admin = d.boolean(e.val, "serve.admin")
		}
	}
}

func (d *dec) decodeLifecycle(n *yNode, l *LifecycleSpec) {
	if !d.want(n, yMap, "lifecycle") {
		return
	}
	d.checkKeys(n, "lifecycle", "enabled", "gate_budget", "window_len", "spool_per_cluster", "min_windows", "drift_threshold")
	for _, e := range n.entries {
		switch e.key {
		case "enabled":
			l.Enabled = d.boolean(e.val, "lifecycle.enabled")
		case "gate_budget":
			l.GateBudget = d.float(e.val, "lifecycle.gate_budget")
		case "window_len":
			l.WindowLen = d.integer(e.val, "lifecycle.window_len")
		case "spool_per_cluster":
			l.SpoolPerCluster = d.integer(e.val, "lifecycle.spool_per_cluster")
		case "min_windows":
			l.MinWindows = d.integer(e.val, "lifecycle.min_windows")
		case "drift_threshold":
			l.DriftThreshold = d.float(e.val, "lifecycle.drift_threshold")
		}
	}
}

func (d *dec) decodeTimeline(n *yNode, spec *Spec) {
	if !d.want(n, ySeq, "timeline") {
		return
	}
	for _, item := range n.items {
		if !d.want(item, yMap, "timeline entry") {
			continue
		}
		d.checkKeys(item, "timeline entry", "at", EventFault, EventBurst, EventChaos, EventAdapt, EventCheckpoint, EventDegrade)
		ev := Event{Line: item.line, Repeat: 1}
		haveAt := false
		for _, e := range item.entries {
			if e.key == "at" {
				ev.At = d.duration(e.val, "at")
				haveAt = true
				continue
			}
			if ev.Kind != "" {
				d.errf(e.line, "timeline entry has both %q and %q — one event kind per entry", ev.Kind, e.key)
				continue
			}
			ev.Kind = e.key
			d.decodeEventBody(e.val, e.line, &ev)
		}
		if !haveAt {
			d.errf(item.line, "timeline entry needs an \"at:\" offset")
		}
		if ev.Kind == "" {
			d.errf(item.line, "timeline entry needs an event (fault/burst/chaos/adapt/checkpoint/degrade)")
		}
		spec.Timeline = append(spec.Timeline, ev)
	}
	sort.SliceStable(spec.Timeline, func(i, j int) bool { return spec.Timeline[i].At < spec.Timeline[j].At })
}

// decodeEventBody fills kind-specific fields. An empty scalar body (bare
// "checkpoint:") is allowed for kinds with no parameters.
func (d *dec) decodeEventBody(n *yNode, line int, ev *Event) {
	if n != nil && n.kind == yScalar && n.scalar == "" {
		n = &yNode{line: line, kind: yMap}
	}
	if !d.want(n, yMap, ev.Kind) {
		return
	}
	switch ev.Kind {
	case EventFault:
		d.checkKeys(n, "fault", "cause", "vpes", "fraction", "duration", "duplicates", "repeat", "every")
		for _, e := range n.entries {
			switch e.key {
			case "cause":
				ev.Cause = d.str(e.val, "fault.cause")
			case "vpes":
				ev.VPEs = d.strList(e.val, "fault.vpes")
			case "fraction":
				ev.Fraction = d.float(e.val, "fault.fraction")
			case "duration":
				ev.Duration = d.duration(e.val, "fault.duration")
			case "duplicates":
				ev.Duplicates = d.integer(e.val, "fault.duplicates")
			case "repeat":
				ev.Repeat = d.integer(e.val, "fault.repeat")
			case "every":
				ev.Every = d.duration(e.val, "fault.every")
			}
		}
		if ev.Cause == "" {
			d.errf(line, "fault needs a cause (circuit/software/cable/hardware)")
		} else if _, ok := causeByName[ev.Cause]; !ok {
			d.errf(line, "unknown fault cause %q (circuit/software/cable/hardware)", ev.Cause)
		}
	case EventBurst:
		d.checkKeys(n, "burst", "cause", "vpes", "fraction", "messages", "repeat", "every")
		for _, e := range n.entries {
			switch e.key {
			case "cause":
				ev.Cause = d.str(e.val, "burst.cause")
			case "vpes":
				ev.VPEs = d.strList(e.val, "burst.vpes")
			case "fraction":
				ev.Fraction = d.float(e.val, "burst.fraction")
			case "messages":
				ev.Messages = d.integer(e.val, "burst.messages")
			case "repeat":
				ev.Repeat = d.integer(e.val, "burst.repeat")
			case "every":
				ev.Every = d.duration(e.val, "burst.every")
			}
		}
		if ev.Cause != "" {
			if _, ok := causeByName[ev.Cause]; !ok {
				d.errf(line, "unknown burst cause %q (circuit/software/cable/hardware)", ev.Cause)
			}
		}
	case EventChaos:
		d.checkKeys(n, "chaos", "point", "mode", "count", "delay", "bytes", "skew")
		for _, e := range n.entries {
			switch e.key {
			case "point":
				ev.Point = d.str(e.val, "chaos.point")
			case "mode":
				ev.Mode = d.str(e.val, "chaos.mode")
			case "count":
				ev.Count = d.integer(e.val, "chaos.count")
			case "delay":
				ev.Delay = d.duration(e.val, "chaos.delay")
			case "bytes":
				ev.Bytes = d.integer(e.val, "chaos.bytes")
			case "skew":
				ev.Skew = d.duration(e.val, "chaos.skew")
			}
		}
		if !knownPoints[ev.Point] {
			d.errf(line, "unknown chaos point %q", ev.Point)
		}
		if !knownModes[ev.Mode] {
			d.errf(line, "unknown chaos mode %q (error/disk-full/torn/panic/slow/skew)", ev.Mode)
		}
	case EventAdapt:
		d.checkKeys(n, "adapt", "forced")
		for _, e := range n.entries {
			if e.key == "forced" {
				ev.Forced = d.boolean(e.val, "adapt.forced")
			}
		}
	case EventCheckpoint:
		d.checkKeys(n, "checkpoint")
	case EventDegrade:
		d.checkKeys(n, "degrade", "mode")
		for _, e := range n.entries {
			if e.key == "mode" {
				ev.DegradeMode = d.str(e.val, "degrade.mode")
			}
		}
		switch ev.DegradeMode {
		case "normal", "shed-scoring", "shed-learning":
		default:
			d.errf(line, "degrade.mode must be normal/shed-scoring/shed-learning, got %q", ev.DegradeMode)
		}
	}
}

func (d *dec) decodeAssert(n *yNode, a *AssertSpec) {
	if !d.want(n, yMap, "assert") {
		return
	}
	d.checkKeys(n, "assert", "min_warnings", "max_warnings", "max_far_per_day",
		"min_precision", "min_recall", "min_detected", "min_early_tickets",
		"min_mean_lead_minutes", "min_false_alarms", "max_false_alarms",
		"checkpoint_parity", "zero_drops", "lifecycle", "chaos", "metrics")
	for _, e := range n.entries {
		switch e.key {
		case "min_warnings":
			a.MinWarnings = d.intPtr(e.val, "assert.min_warnings")
		case "max_warnings":
			a.MaxWarnings = d.intPtr(e.val, "assert.max_warnings")
		case "max_far_per_day":
			a.MaxFARPerDay = d.f64Ptr(e.val, "assert.max_far_per_day")
		case "min_precision":
			a.MinPrecision = d.f64Ptr(e.val, "assert.min_precision")
		case "min_recall":
			a.MinRecall = d.f64Ptr(e.val, "assert.min_recall")
		case "min_detected":
			a.MinDetected = d.intPtr(e.val, "assert.min_detected")
		case "min_early_tickets":
			a.MinEarlyTickets = d.intPtr(e.val, "assert.min_early_tickets")
		case "min_mean_lead_minutes":
			a.MinMeanLeadMinutes = d.f64Ptr(e.val, "assert.min_mean_lead_minutes")
		case "min_false_alarms":
			a.MinFalseAlarms = d.intPtr(e.val, "assert.min_false_alarms")
		case "max_false_alarms":
			a.MaxFalseAlarms = d.intPtr(e.val, "assert.max_false_alarms")
		case "checkpoint_parity":
			a.CheckpointParity = d.boolean(e.val, "assert.checkpoint_parity")
		case "zero_drops":
			a.ZeroDrops = d.boolean(e.val, "assert.zero_drops")
		case "lifecycle":
			a.Lifecycle = d.decodeLifecycleAssert(e.val)
		case "chaos":
			a.Chaos = d.decodeChaosAsserts(e.val)
		case "metrics":
			a.Metrics = d.decodeMetricAsserts(e.val)
		}
	}
}

func (d *dec) decodeLifecycleAssert(n *yNode) *LifecycleAssert {
	la := &LifecycleAssert{}
	if !d.want(n, yMap, "assert.lifecycle") {
		return la
	}
	d.checkKeys(n, "assert.lifecycle", "min_cycles", "min_promotions", "breaker")
	for _, e := range n.entries {
		switch e.key {
		case "min_cycles":
			la.MinCycles = d.intPtr(e.val, "min_cycles")
		case "min_promotions":
			la.MinPromotions = d.intPtr(e.val, "min_promotions")
		case "breaker":
			la.Breaker = d.str(e.val, "breaker")
			if la.Breaker != "closed" && la.Breaker != "open" {
				d.errf(e.line, "assert.lifecycle.breaker must be closed or open, got %q", la.Breaker)
			}
		}
	}
	return la
}

func (d *dec) decodeChaosAsserts(n *yNode) []ChaosAssert {
	if !d.want(n, ySeq, "assert.chaos") {
		return nil
	}
	var out []ChaosAssert
	for _, item := range n.items {
		if !d.want(item, yMap, "assert.chaos entry") {
			continue
		}
		d.checkKeys(item, "assert.chaos entry", "point", "min_fired")
		ca := ChaosAssert{MinFired: 1}
		for _, e := range item.entries {
			switch e.key {
			case "point":
				ca.Point = d.str(e.val, "point")
			case "min_fired":
				ca.MinFired = uint64(d.integer(e.val, "min_fired"))
			}
		}
		if !knownPoints[ca.Point] {
			d.errf(item.line, "unknown chaos point %q", ca.Point)
		}
		out = append(out, ca)
	}
	return out
}

func (d *dec) decodeMetricAsserts(n *yNode) []MetricAssert {
	if !d.want(n, ySeq, "assert.metrics") {
		return nil
	}
	var out []MetricAssert
	for _, item := range n.items {
		if !d.want(item, yMap, "assert.metrics entry") {
			continue
		}
		d.checkKeys(item, "assert.metrics entry", "name", "min", "max")
		var ma MetricAssert
		for _, e := range item.entries {
			switch e.key {
			case "name":
				ma.Name = d.str(e.val, "name")
			case "min":
				ma.Min = d.f64Ptr(e.val, "min")
			case "max":
				ma.Max = d.f64Ptr(e.val, "max")
			}
		}
		if !metricNameSet[ma.Name] {
			d.errf(item.line, "unknown metric %q (known: %s)", ma.Name, strings.Join(MetricNames, ", "))
		}
		if ma.Min == nil && ma.Max == nil {
			d.errf(item.line, "metric assertion needs min and/or max")
		}
		out = append(out, ma)
	}
	return out
}

// Validate checks cross-field consistency and compiles the fleet config
// once to reuse nfvsim's own validation.
func (s *Spec) Validate() error {
	f := &s.Fleet
	switch {
	case s.Name == "":
		return errors.New("scenario: name is required")
	case f.Months < 2:
		return fmt.Errorf("scenario: fleet.months must be ≥ 2 (train + serve), got %d", f.Months)
	case s.Train.Months < 1 || s.Train.Months >= f.Months:
		return fmt.Errorf("scenario: train.months must be in [1, fleet.months), got %d", s.Train.Months)
	case s.Train.Clusters < 1:
		return fmt.Errorf("scenario: train.clusters must be ≥ 1, got %d", s.Train.Clusters)
	case s.Serve.Shards < 1:
		return fmt.Errorf("scenario: serve.shards must be ≥ 1, got %d", s.Serve.Shards)
	case s.Serve.Threshold <= 0:
		return fmt.Errorf("scenario: serve.threshold must be positive, got %v", s.Serve.Threshold)
	}
	// The serve phase replays RFC 3164 wire lines, whose timestamps carry
	// no year; keep the horizon inside one calendar year so the ingest
	// server's year resolution cannot misdate messages.
	if end := f.Start.AddDate(0, f.Months, 0).Add(-time.Nanosecond); end.Year() != f.Start.Year() {
		return fmt.Errorf("scenario: horizon %s + %d months crosses a calendar year; start in January or shorten the horizon", f.Start.Format("2006-01-02"), f.Months)
	}
	serveOffset := s.ServeStart().Sub(f.Start)
	horizon := s.End().Sub(f.Start)
	for i := range s.Timeline {
		ev := &s.Timeline[i]
		if ev.At < 0 || ev.At >= horizon {
			return fmt.Errorf("scenario: line %d: event at %s is outside the %s horizon", ev.Line, ev.At, horizon)
		}
		switch ev.Kind {
		case EventChaos, EventAdapt, EventCheckpoint, EventDegrade:
			if ev.At < serveOffset {
				return fmt.Errorf("scenario: line %d: %s event at %s is inside the training window (serve starts at %s)", ev.Line, ev.Kind, ev.At, serveOffset)
			}
		}
		if (ev.Kind == EventAdapt) && !s.Lifecycle.Enabled {
			return fmt.Errorf("scenario: line %d: adapt event requires lifecycle.enabled", ev.Line)
		}
	}
	if s.Assert.Lifecycle != nil && !s.Lifecycle.Enabled {
		return errors.New("scenario: assert.lifecycle requires lifecycle.enabled")
	}
	if s.Assert.CheckpointParity {
		any := false
		for i := range s.Timeline {
			if s.Timeline[i].Kind == EventCheckpoint {
				any = true
			}
		}
		if !any {
			return errors.New("scenario: assert.checkpoint_parity requires at least one checkpoint event in the timeline")
		}
	}
	// Compile and let nfvsim validate fleet parameters and injections
	// (unknown vPE names, bad fractions, ...).
	cfg, err := s.SimConfig()
	if err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}

// ServeStart returns the first instant of the serve phase.
func (s *Spec) ServeStart() time.Time { return s.Fleet.Start.AddDate(0, s.Train.Months, 0) }

// End returns the first instant after the horizon.
func (s *Spec) End() time.Time { return s.Fleet.Start.AddDate(0, s.Fleet.Months, 0) }

// SimConfig compiles the fleet plus the timeline's sim-side events into
// an nfvsim configuration.
func (s *Spec) SimConfig() (nfvsim.Config, error) {
	f := &s.Fleet
	cfg := nfvsim.Config{
		Seed:                  s.Seed,
		NumVPEs:               f.VPEs,
		Start:                 f.Start,
		Months:                f.Months,
		BaseRatePerHour:       f.BaseRatePerHour,
		RoleCount:             f.Roles,
		MeanFaultGapHours:     f.MeanFaultGapHours,
		MaintenanceEvery:      f.MaintenanceEvery,
		DupProb:               f.DupProb,
		CoreIncidentsPerMonth: f.CoreIncidentsPerMonth,
		UpdateMonth:           f.UpdateMonth,
		UpdateFraction:        f.UpdateFraction,
		PPERateMultiplier:     4.3,
		GlitchesPerDay:        f.GlitchesPerDay,
	}
	for i := range s.Timeline {
		ev := &s.Timeline[i]
		switch ev.Kind {
		case EventFault, EventBurst:
			inj := nfvsim.Injection{
				At:         f.Start.Add(ev.At),
				VPEs:       ev.VPEs,
				Fraction:   ev.Fraction,
				Duration:   ev.Duration,
				Duplicates: ev.Duplicates,
				Messages:   ev.Messages,
				Repeat:     ev.Repeat,
				Every:      ev.Every,
			}
			if ev.Kind == EventFault {
				inj.Kind = nfvsim.InjectFault
			} else {
				inj.Kind = nfvsim.InjectBurst
			}
			if ev.Cause != "" {
				c, ok := causeByName[ev.Cause]
				if !ok {
					return cfg, fmt.Errorf("scenario: line %d: unknown cause %q", ev.Line, ev.Cause)
				}
				inj.Cause = c
			} else if ev.Kind == EventBurst {
				inj.Cause = ticket.Software
			}
			cfg.Injections = append(cfg.Injections, inj)
		}
	}
	return cfg, nil
}
