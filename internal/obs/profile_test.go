package obs

import (
	"io"
	"os"
	"testing"
	"time"
)

func TestBurnProfilerCapture(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	p := NewBurnProfiler(dir, 50*time.Millisecond, time.Hour, NewLogger(io.Discard, LevelError))
	p.Export(reg)

	path := p.MaybeCapture("accept_verdict_latency")
	if path == "" {
		t.Fatal("first capture skipped")
	}
	// Single-flight + cooldown: a second trigger during or right after the
	// capture is a no-op.
	if again := p.MaybeCapture("accept_verdict_latency"); again != "" {
		t.Fatalf("second capture started: %s", again)
	}

	// The capture goroutine stops the profile and closes the file.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
			p.mu.Lock()
			active := p.active
			p.mu.Unlock()
			if !active {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("profile %s never finished", path)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if reg.Snapshot().Counters["slo_burn_profiles_total"] != 1 {
		t.Fatal("capture counter not incremented")
	}

	var nilP *BurnProfiler
	if nilP.MaybeCapture("x") != "" {
		t.Fatal("nil profiler captured")
	}
}
