package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestLabelName(t *testing.T) {
	got := LabelName("monitor_shard_queue_depth", "shard", "3")
	want := `monitor_shard_queue_depth{shard="3"}`
	if got != want {
		t.Fatalf("LabelName = %q, want %q", got, want)
	}
}

// TestLabeledSeriesShareFamily checks the exposition contract for labeled
// metrics: series that differ only in labels must appear under a single
// HELP/TYPE header for the base family, adjacent in the output, and the
// unlabeled neighbours keep their own headers.
func TestLabeledSeriesShareFamily(t *testing.T) {
	r := NewRegistry()
	for _, s := range []string{"0", "1", "2"} {
		g := r.Gauge(LabelName("shard_queue_depth", "shard", s), "Messages queued per shard.")
		g.SetInt(5)
	}
	r.Counter("zz_total", "Unrelated counter.").Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	if n := strings.Count(out, "# HELP shard_queue_depth "); n != 1 {
		t.Errorf("HELP emitted %d times for the labeled family, want 1\n%s", n, out)
	}
	if n := strings.Count(out, "# TYPE shard_queue_depth gauge"); n != 1 {
		t.Errorf("TYPE emitted %d times for the labeled family, want 1\n%s", n, out)
	}
	for _, s := range []string{"0", "1", "2"} {
		line := `shard_queue_depth{shard="` + s + `"} 5`
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing sample %q in:\n%s", line, out)
		}
	}
	if n := strings.Count(out, "# TYPE zz_total counter"); n != 1 {
		t.Errorf("unlabeled counter lost its header:\n%s", out)
	}
	// Labeled series must be grouped: no other family's header may sit
	// between the first and last shard sample.
	first := strings.Index(out, `shard_queue_depth{shard="0"}`)
	last := strings.Index(out, `shard_queue_depth{shard="2"}`)
	if first < 0 || last < 0 || strings.Contains(out[first:last], "# HELP") {
		t.Errorf("labeled series not adjacent:\n%s", out)
	}
}
