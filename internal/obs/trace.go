package obs

import (
	"sync"
	"time"
)

// TraceStep is one message in the context window that led to a verdict:
// the template the signature tree matched and the log-probability the
// model assigned it given the preceding stream (score = -LogProb; the
// stream's first message has no context and carries LogProb 0).
type TraceStep struct {
	Time     time.Time `json:"time"`
	Template int       `json:"template"`
	LogProb  float64   `json:"log_prob"`
}

// Trace explains one anomaly verdict after the fact: which host, which
// template, which cluster's model, the score against which threshold, and
// the per-window log-probabilities of the messages leading up to (and
// including) the flagged one. It is what /traces serves and what an
// operator reads to answer "why was this message flagged?".
type Trace struct {
	// Seq is a monotonically increasing sequence number (1-based) over
	// the monitor's lifetime, so operators can spot drops between polls.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Host string    `json:"host"`
	// Cluster is the model's cluster index (-1 when the deployment has a
	// single unclustered model); Model names the detector family.
	Cluster  int    `json:"cluster"`
	Model    string `json:"model,omitempty"`
	Template int    `json:"template"`
	// Score is the flagged message's anomaly score (negative
	// log-likelihood), strictly above Threshold.
	Score     float64 `json:"score"`
	Threshold float64 `json:"threshold"`
	// Window holds the most recent scored messages on this host, oldest
	// first, ending with the flagged message itself.
	Window []TraceStep `json:"window"`
	// ClusterSize is the size of the host's in-progress anomaly cluster
	// after this verdict; Warning marks the verdict that tipped the
	// cluster into an emitted warning signature.
	ClusterSize int  `json:"cluster_size"`
	Warning     bool `json:"warning"`
}

// TraceRing is a fixed-capacity ring buffer of decision traces: cheap to
// append, bounded in memory, and queryable newest-first. A nil TraceRing
// drops every Add — instrumented code never checks.
type TraceRing struct {
	mu   sync.Mutex
	buf  []Trace
	next uint64 // total traces ever added
}

// NewTraceRing returns a ring holding the last n traces (n >= 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]Trace, n)}
}

// Add appends one trace, stamping its sequence number, evicting the oldest
// when full.
func (r *TraceRing) Add(t Trace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.next++
	t.Seq = r.next
	r.buf[(r.next-1)%uint64(len(r.buf))] = t
	r.mu.Unlock()
}

// Total returns how many traces were ever added (including evicted ones).
func (r *TraceRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Recent returns up to n traces, newest first. n <= 0 means everything
// retained.
func (r *TraceRing) Recent(n int) []Trace { return r.Filtered(n, "", false) }

// Filtered returns up to n traces newest first, keeping only those for
// host (when non-empty) and, with warningsOnly, only verdicts that
// emitted a warning. n <= 0 means every match retained.
func (r *TraceRing) Filtered(n int, host string, warningsOnly bool) []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	have := int(r.next)
	if have > len(r.buf) {
		have = len(r.buf)
	}
	var out []Trace
	for i := 0; i < have; i++ {
		t := &r.buf[(r.next-1-uint64(i))%uint64(len(r.buf))]
		if host != "" && t.Host != host {
			continue
		}
		if warningsOnly && !t.Warning {
			continue
		}
		out = append(out, *t)
		if n > 0 && len(out) >= n {
			break
		}
	}
	return out
}
