package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// LabelName renders a per-instance series name, name{key="value"}, for
// registering one metric handle per instance of a replicated component
// (e.g. monitor_shard_queue_depth{shard="3"}). The registry treats the
// whole string as the metric name; exposition emits HELP/TYPE once per
// base name and one sample line per labelled series. Use it for counters
// and gauges only — histograms expand into their own le-labelled series.
func LabelName(name, key, value string) string {
	return fmt.Sprintf("%s{%s=%q}", name, key, value)
}

// baseName strips a LabelName label block, returning the Prometheus metric
// family name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// formatValue renders a float the way Prometheus text exposition expects:
// integers without a decimal point, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// formatExemplar renders a bucket exemplar as an OpenMetrics suffix:
//
//	monitor_handle_seconds_bucket{le="0.001"} 5 # {trace_id="00ab..."} 0.00093 1520012345.123
//
// The classic 0.0.4 text format has no exemplar syntax — its parser
// treats a mid-line '#' as an error — so exemplars render only in the
// OpenMetrics exposition (WriteOpenMetrics), never in WritePrometheus.
// Buckets without a recorded exemplar render nothing.
func formatExemplar(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s %.3f",
		e.TraceID.String(), formatValue(e.Value), float64(e.Time.UnixNano())/1e9)
}

// counterNames returns the family and sample names for a counter in the
// OpenMetrics exposition, where a counter family is named without the
// _total suffix and its sample carries it: a registered
// foo_total{k="v"} becomes family foo, sample foo_total{k="v"}, and a
// counter registered without the suffix gains it on the sample line. The
// strict OpenMetrics parser rejects counter samples not suffixed _total
// relative to their TYPE line, so this rewrite is what keeps a
// negotiated scrape parseable.
func counterNames(name string) (family, sample string) {
	base := baseName(name)
	family = strings.TrimSuffix(base, "_total")
	return family, family + "_total" + name[len(base):]
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4), in name order. Histograms emit
// cumulative le-labelled buckets plus _sum and _count, matching what a
// Prometheus scraper expects of a native histogram series. LabelName
// series share one HELP/TYPE header per family (name order keeps a
// family's labelled series adjacent: '{' sorts after every valid metric
// name character). The 0.0.4 exposition is exemplar-free; clients that
// negotiate OpenMetrics (see WriteOpenMetrics) get exemplars.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeText(w, false)
}

// WriteOpenMetrics writes the OpenMetrics exposition: counter families
// named without their _total suffix, histogram buckets carrying their
// trace-ID exemplars, and the mandatory terminal # EOF. Serve it only
// under Content-Type application/openmetrics-text (negotiated via the
// Accept header); the 0.0.4 parser cannot read exemplar suffixes.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if err := r.writeText(w, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func (r *Registry) writeText(w io.Writer, openMetrics bool) error {
	if r == nil {
		return nil
	}
	lastFamily := ""
	for _, m := range r.sorted() {
		family := baseName(m.name)
		sample := m.name
		if openMetrics && m.kind == kindCounter {
			family, sample = counterNames(m.name)
		}
		if family != lastFamily {
			lastFamily = family
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, m.help); err != nil {
					return err
				}
			}
			var kind string
			switch m.kind {
			case kindCounter:
				kind = "counter"
			case kindGauge:
				kind = "gauge"
			case kindHistogram:
				kind = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, kind); err != nil {
				return err
			}
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", sample, m.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, formatValue(m.g.Value()))
		case kindHistogram:
			bounds, counts := m.h.Buckets()
			var exemplars []*Exemplar
			if openMetrics {
				exemplars = m.h.Exemplars()
			}
			exemplar := func(i int) string {
				if exemplars == nil {
					return ""
				}
				return formatExemplar(exemplars[i])
			}
			var cum uint64
			for i, b := range bounds {
				cum += counts[i]
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n",
					m.name, formatValue(b), cum, exemplar(i)); err != nil {
					return err
				}
			}
			cum += counts[len(counts)-1]
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n",
				m.name, cum, exemplar(len(counts)-1)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
				m.name, formatValue(m.h.Sum()), m.name, m.h.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra trailing
	// element, the +Inf overflow bucket. Counts are per-bucket, not
	// cumulative.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
	// Exemplars, when any landed, has one entry per Counts slot (nil
	// where that bucket has no exemplar).
	Exemplars []*Exemplar `json:"exemplars,omitempty"`
}

// Snapshot is a point-in-time copy of every registered metric, the JSON
// exposition and the programmatic view behind /statusz.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric out of the registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for _, m := range r.sorted() {
		switch m.kind {
		case kindCounter:
			if s.Counters == nil {
				s.Counters = make(map[string]uint64)
			}
			s.Counters[m.name] = m.c.Value()
		case kindGauge:
			if s.Gauges == nil {
				s.Gauges = make(map[string]float64)
			}
			s.Gauges[m.name] = m.g.Value()
		case kindHistogram:
			if s.Histograms == nil {
				s.Histograms = make(map[string]HistogramSnapshot)
			}
			bounds, counts := m.h.Buckets()
			hs := HistogramSnapshot{
				Bounds: bounds,
				Counts: counts,
				Sum:    m.h.Sum(),
				Count:  m.h.Count(),
			}
			exemplars := m.h.Exemplars()
			for _, e := range exemplars {
				if e != nil {
					hs.Exemplars = exemplars
					break
				}
			}
			s.Histograms[m.name] = hs
		}
	}
	return s
}

// WriteJSON writes the Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
