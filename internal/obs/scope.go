package obs

// Scope is a name-prefixing view of a Registry, the namespacing device for
// components that are constructed repeatedly against one registry — e.g.
// the lifecycle manager's candidate detectors, which are rebuilt every
// adaptation cycle. Because Registry registration is idempotent by name, a
// metric created through the same scope twice returns the same handle, so
// a freshly built candidate inherits (and keeps incrementing) the counters
// of its predecessors instead of colliding with them.
//
// A nil Scope, like a nil Registry, hands out nil (no-op) handles, so
// "observability off" composes through scoped components unchanged.
type Scope struct {
	r      *Registry
	prefix string
}

// Scope returns a view of the registry that prefixes every metric name
// with prefix. A nil registry returns a nil scope.
func (r *Registry) Scope(prefix string) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{r: r, prefix: prefix}
}

// Scope narrows an existing scope with a further prefix (prefixes
// concatenate outer-first).
func (s *Scope) Scope(prefix string) *Scope {
	if s == nil {
		return nil
	}
	return &Scope{r: s.r, prefix: s.prefix + prefix}
}

// Registry returns the underlying registry (nil on a nil scope), for
// components that need to pass it on unscoped.
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.r
}

// Counter registers (or fetches) a counter named prefix+name.
func (s *Scope) Counter(name, help string) *Counter {
	if s == nil {
		return nil
	}
	return s.r.Counter(s.prefix+name, help)
}

// Gauge registers (or fetches) a gauge named prefix+name.
func (s *Scope) Gauge(name, help string) *Gauge {
	if s == nil {
		return nil
	}
	return s.r.Gauge(s.prefix+name, help)
}

// Histogram registers (or fetches) a histogram named prefix+name.
func (s *Scope) Histogram(name, help string, bounds []float64) *Histogram {
	if s == nil {
		return nil
	}
	return s.r.Histogram(s.prefix+name, help, bounds)
}
