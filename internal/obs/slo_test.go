package obs

import (
	"testing"
	"time"
)

// fakeClock is a controllable monotonic clock for SLO tests.
type fakeClock struct{ ns int64 }

func (c *fakeClock) now() int64            { return c.ns }
func (c *fakeClock) advance(d time.Duration) { c.ns += int64(d) }

func TestSLOBurnMath(t *testing.T) {
	clk := &fakeClock{ns: int64(time.Hour)} // away from epoch edge effects
	s := NewSLO(SLOConfig{Name: "latency", Target: 0.99, NowNS: clk.now})

	// 98 good + 2 bad: badRatio 0.02 over a 0.01 budget = burn 2.0 on both
	// windows — above nothing.
	s.RecordN(98, 2)
	st := s.Status()
	if st.Name != "latency" || st.Target != 0.99 {
		t.Fatalf("status header = %+v", st)
	}
	if st.Fast.Good != 98 || st.Fast.Bad != 2 {
		t.Fatalf("fast counts = %+v", st.Fast)
	}
	if got := st.Fast.BurnRate; got < 1.99 || got > 2.01 {
		t.Fatalf("fast burn = %v, want 2.0", got)
	}
	if st.Fast.Burning || st.Slow.Burning || st.Burning {
		t.Fatalf("burning at burn 2.0: %+v", st)
	}
	if st.Fast.BurnThreshold != DefaultFastBurn || st.Slow.BurnThreshold != DefaultSlowBurn {
		t.Fatalf("thresholds = %v/%v", st.Fast.BurnThreshold, st.Slow.BurnThreshold)
	}

	// Push the bad ratio to 0.2: burn 20 > 14.4 fast and > 6 slow.
	s.RecordN(0, 23)
	st = s.Status()
	if !st.Fast.Burning || !st.Slow.Burning || !st.Burning {
		t.Fatalf("not burning at ratio 0.2: %+v", st)
	}
	if !s.FastBurning() {
		t.Fatal("FastBurning() = false while fast window burns")
	}

	// The fast window forgets: advance past it and the fast burn clears
	// while the slow window still remembers.
	clk.advance(6 * time.Minute)
	s.RecordN(100, 0)
	st = s.Status()
	if st.Fast.Burning {
		t.Fatalf("fast window did not expire: %+v", st.Fast)
	}
	if !st.Slow.Burning {
		t.Fatalf("slow window forgot too early: %+v", st.Slow)
	}
	if st.Burning {
		t.Fatal("paging condition needs both windows")
	}
}

func TestSLOEmptyWindow(t *testing.T) {
	s := NewSLO(SLOConfig{Name: "empty"})
	st := s.Status()
	if st.Fast.BadRatio != 0 || st.Fast.BurnRate != 0 || st.Fast.Burning {
		t.Fatalf("empty window = %+v", st.Fast)
	}
	// Zero events is marked inactive — "burn 0" here means "measuring
	// nothing" (e.g. the latency SLO with -span-sample 0), not healthy.
	if !st.Inactive {
		t.Fatalf("zero-event objective not marked inactive: %+v", st)
	}
	s.Record(true)
	if st := s.Status(); st.Inactive {
		t.Fatalf("objective with events marked inactive: %+v", st)
	}
	var nilS *SLO
	nilS.Record(true)
	nilS.RecordN(1, 2)
	if nilS.FastBurning() || nilS.Name() != "" {
		t.Fatal("nil SLO not inert")
	}
	if got := nilS.Status(); got.Name != "" {
		t.Fatalf("nil status = %+v", got)
	}
}

func TestSLOBucketRotation(t *testing.T) {
	clk := &fakeClock{ns: int64(time.Hour)}
	s := NewSLO(SLOConfig{Name: "rot", FastWindow: time.Second, BucketsPerWindow: 10, NowNS: clk.now})
	s.RecordN(0, 10)
	if st := s.Status(); st.Fast.Bad != 10 {
		t.Fatalf("bad = %d", st.Fast.Bad)
	}
	// A full window later the old bucket is outside the range even before
	// any recorder recycles it.
	clk.advance(2 * time.Second)
	if st := s.Status(); st.Fast.Bad != 0 {
		t.Fatalf("expired bad = %d", st.Fast.Bad)
	}
	// Recycling the same ring slot resets its counts.
	s.RecordN(5, 0)
	if st := s.Status(); st.Fast.Good != 5 || st.Fast.Bad != 0 {
		t.Fatalf("recycled bucket = %+v", st.Fast)
	}
}

func TestSLOSet(t *testing.T) {
	clk := &fakeClock{ns: int64(time.Hour)}
	reg := NewRegistry()
	ss := NewSLOSet()
	ss.Export(reg)
	lat := ss.Add(SLOConfig{Name: "latency", NowNS: clk.now})
	drop := ss.Add(SLOConfig{Name: "drops", NowNS: clk.now})
	if ss.Get("latency") != lat || ss.Get("nope") != nil {
		t.Fatal("Get mismatch")
	}

	lat.RecordN(50, 50) // burn 50 — burning
	drop.RecordN(100, 0)
	sts := ss.Statuses()
	if len(sts) != 2 || sts[0].Name != "latency" || sts[1].Name != "drops" {
		t.Fatalf("statuses = %+v", sts)
	}
	if !sts[0].Fast.Burning || sts[1].Fast.Burning {
		t.Fatalf("burning flags = %v/%v", sts[0].Fast.Burning, sts[1].Fast.Burning)
	}
	if got := ss.FastBurning(); len(got) != 1 || got[0] != "latency" {
		t.Fatalf("FastBurning = %v", got)
	}

	// Statuses refreshed the exported burn gauges.
	snap := reg.Snapshot()
	if v := snap.Gauges[`latency_slo_burn_rate{window="fast"}`]; v < 49 || v > 51 {
		t.Fatalf("burn gauge = %v", v)
	}
	if v := snap.Gauges["latency_slo_fast_burning"]; v != 1 {
		t.Fatalf("burning gauge = %v", v)
	}
	if v := snap.Gauges["drops_slo_fast_burning"]; v != 0 {
		t.Fatalf("drops burning gauge = %v", v)
	}

	var nilSet *SLOSet
	if nilSet.Add(SLOConfig{}) != nil || nilSet.Statuses() != nil || nilSet.FastBurning() != nil {
		t.Fatal("nil set not inert")
	}
}

func TestSLODefaults(t *testing.T) {
	cfg := SLOConfig{}.withDefaults()
	if cfg.Target != 0.99 || cfg.FastWindow != 5*time.Minute || cfg.SlowWindow != time.Hour {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.FastBurn != 14.4 || cfg.SlowBurn != 6.0 || cfg.BucketsPerWindow != 30 {
		t.Fatalf("defaults = %+v", cfg)
	}
}
