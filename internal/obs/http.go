package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Condition is one named readiness/degradation signal. Critical conditions
// (set via SetCondition) gate readiness: any failing one makes /readyz
// return 503. Informational conditions (set via SetDegraded) never fail
// readiness — they describe degraded-but-still-serving states (learning
// shed, breaker open) that an operator should see but a load balancer
// should not route around, because warnings are still being emitted.
type Condition struct {
	Name string `json:"name"`
	// OK is false when a critical condition is failing readiness.
	OK bool `json:"ok"`
	// Degraded marks an informational condition that is currently active.
	Degraded bool `json:"degraded,omitempty"`
	// Reason explains a failing or degraded condition.
	Reason string `json:"reason,omitempty"`
}

// Health tracks the process's liveness/readiness for the admin endpoints as
// a set of named conditions. Liveness means "the process is serving" (true
// from construction); readiness fails — with the failing conditions named —
// only when the process can no longer do its one critical job: emitting
// warnings (a rejected model bundle with nothing to serve, scoring shed).
// All methods are safe for concurrent use; a nil Health reads as alive,
// ready, and condition-free.
type Health struct {
	mu    sync.Mutex
	conds map[string]*Condition
}

// defaultCondition is the name SetReady writes, keeping the one-flag API
// working for callers that predate named conditions.
const defaultCondition = "serving"

// NewHealth returns a Health that starts ready with no conditions.
func NewHealth() *Health { return &Health{conds: make(map[string]*Condition)} }

// SetReady marks the process ready (reason ignored) or unready for the
// given reason. It is shorthand for SetCondition(defaultCondition, ...).
func (h *Health) SetReady(ready bool, reason string) {
	h.SetCondition(defaultCondition, ready, reason)
}

// SetCondition records a critical condition: while any critical condition
// has ok=false, /readyz fails with every failing condition's name and
// reason. Setting ok=true clears it.
func (h *Health) SetCondition(name string, ok bool, reason string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.conds == nil {
		h.conds = make(map[string]*Condition)
	}
	if ok {
		reason = ""
	}
	h.conds[name] = &Condition{Name: name, OK: ok, Reason: reason}
}

// SetDegraded records an informational condition: it is surfaced on
// /readyz and /statusz but never fails readiness. Setting degraded=false
// clears it.
func (h *Health) SetDegraded(name string, degraded bool, reason string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.conds == nil {
		h.conds = make(map[string]*Condition)
	}
	if !degraded {
		reason = ""
	}
	h.conds[name] = &Condition{Name: name, OK: true, Degraded: degraded, Reason: reason}
}

// Conditions returns every recorded condition, sorted by name.
func (h *Health) Conditions() []Condition {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Condition, 0, len(h.conds))
	for _, c := range h.conds {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Ready returns the readiness state and, when unready, the failing
// conditions joined as "name: reason" (single-condition failures keep the
// bare reason for backward compatibility with log/alert matchers).
func (h *Health) Ready() (bool, string) {
	if h == nil {
		return true, ""
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var failing []string
	for _, c := range h.conds {
		if !c.OK {
			failing = append(failing, c.Name+": "+c.Reason)
		}
	}
	if len(failing) == 0 {
		return true, ""
	}
	sort.Strings(failing)
	if len(failing) == 1 {
		// Preserve the single-reason body shape: "name: reason" reads
		// naturally and still contains the raw reason substring.
		return false, failing[0]
	}
	return false, strings.Join(failing, "; ")
}

// Degradations returns the active informational conditions, sorted by name.
func (h *Health) Degradations() []Condition {
	var out []Condition
	for _, c := range h.Conditions() {
		if c.Degraded {
			out = append(out, c)
		}
	}
	return out
}

// AdminConfig assembles the admin surface. Any field may be nil/zero; the
// corresponding endpoint degrades gracefully (empty metrics, empty traces,
// always-ready health, `{}` status).
type AdminConfig struct {
	// Registry backs /metrics (Prometheus text; ?format=json for the JSON
	// exposition).
	Registry *Registry
	// Traces backs /traces (?n=50 limits the count, newest first;
	// ?host= and ?warnings=1 filter).
	Traces *TraceRing
	// Spans backs /spans (?n=, ?host=, ?warnings=1, ?trace=<hex id>,
	// ?kind= filters, newest first) — the stage-latency counterpart of
	// /traces, and the resolver for histogram exemplar trace IDs.
	Spans *SpanRing
	// SLO backs /slo: every objective's multi-window burn evaluation.
	SLO *SLOSet
	// Health backs /healthz and /readyz: both return 503 with the reason
	// while unready, 200 otherwise. /healthz answers "is the process
	// serving and not degraded"; /readyz is the load-balancer form of the
	// same state.
	Health *Health
	// Status returns the /statusz document; it is JSON-marshaled per
	// request so the snapshot is always current.
	Status func() any
}

// queryCount parses an ?n= style count parameter; on a bad value it writes
// a 400 and reports ok=false.
func queryCount(w http.ResponseWriter, raw, endpoint string) (int, bool) {
	if raw == "" {
		return 0, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		http.Error(w, endpoint+": n must be a non-negative integer", http.StatusBadRequest)
		return 0, false
	}
	return v, true
}

// boolParam interprets a filter flag: present and not explicitly off.
func boolParam(raw string) bool {
	return raw != "" && raw != "0" && !strings.EqualFold(raw, "false")
}

// wantsOpenMetrics reports whether a /metrics scrape negotiated the
// OpenMetrics exposition — an Accept header naming
// application/openmetrics-text (what Prometheus sends when exemplar
// scraping is on) or an explicit ?format=openmetrics for curl use. The
// 0.0.4 text parser has no exemplar syntax, so exemplars render only
// when the client asked for a format whose parser can read them.
func wantsOpenMetrics(r *http.Request) bool {
	if r.URL.Query().Get("format") == "openmetrics" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
}

// NewAdminMux builds the admin HTTP handler: /metrics, /statusz, /traces,
// /spans, /slo, /healthz, /readyz, and the pprof suite under
// /debug/pprof/. It is its own mux (never http.DefaultServeMux) so
// importing this package does not leak handlers into unrelated servers.
func NewAdminMux(cfg AdminConfig) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Query().Get("format") == "json":
			w.Header().Set("Content-Type", "application/json")
			cfg.Registry.WriteJSON(w)
		case wantsOpenMetrics(r):
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			cfg.Registry.WriteOpenMetrics(w)
		default:
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			cfg.Registry.WritePrometheus(w)
		}
	})

	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var doc any = struct{}{}
		if cfg.Status != nil {
			doc = cfg.Status()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		n, ok := queryCount(w, q.Get("n"), "traces")
		if !ok {
			return
		}
		traces := cfg.Traces.Filtered(n, q.Get("host"), boolParam(q.Get("warnings")))
		if traces == nil {
			traces = []Trace{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Total  uint64  `json:"total"`
			Traces []Trace `json:"traces"`
		}{cfg.Traces.Total(), traces})
	})

	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		n, ok := queryCount(w, q.Get("n"), "spans")
		if !ok {
			return
		}
		sq := SpanQuery{
			N:            n,
			Host:         q.Get("host"),
			WarningsOnly: boolParam(q.Get("warnings")),
			Kind:         q.Get("kind"),
		}
		if t := q.Get("trace"); t != "" {
			if sq.TraceID = ParseSpanID(t); sq.TraceID == 0 {
				http.Error(w, "spans: trace must be a hex span id", http.StatusBadRequest)
				return
			}
		}
		spans := cfg.Spans.Query(sq)
		if spans == nil {
			spans = []Span{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Total uint64 `json:"total"`
			Spans []Span `json:"spans"`
		}{cfg.Spans.Total(), spans})
	})

	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		statuses := cfg.SLO.Statuses()
		if statuses == nil {
			statuses = []SLOStatus{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			SLOs []SLOStatus `json:"slos"`
		}{statuses})
	})

	health := func(w http.ResponseWriter, r *http.Request) {
		ok, reason := cfg.Health.Ready()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if !ok {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			json.NewEncoder(w).Encode(struct {
				Ready      bool        `json:"ready"`
				Reason     string      `json:"reason,omitempty"`
				Conditions []Condition `json:"conditions"`
			}{ok, reason, cfg.Health.Conditions()})
			return
		}
		if !ok {
			http.Error(w, "unready: "+reason, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
		for _, c := range cfg.Health.Degradations() {
			fmt.Fprintf(w, "degraded: %s: %s\n", c.Name, c.Reason)
		}
	}
	mux.HandleFunc("/healthz", health)
	mux.HandleFunc("/readyz", health)

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}
