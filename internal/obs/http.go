package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
)

// Health tracks the process's liveness/readiness for the admin endpoints.
// Liveness means "the process is serving" (true from construction);
// readiness can be flipped off — with a reason — when the serving state is
// degraded, e.g. a bundle hot-reload failed validation and the monitor is
// still serving the previous model. All methods are safe for concurrent
// use; a nil Health reads as alive and ready.
type Health struct {
	mu     sync.Mutex
	ready  bool
	reason string
}

// NewHealth returns a Health that starts ready.
func NewHealth() *Health { return &Health{ready: true} }

// SetReady marks the process ready (reason ignored) or unready for the
// given reason.
func (h *Health) SetReady(ready bool, reason string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.ready = ready
	if ready {
		reason = ""
	}
	h.reason = reason
	h.mu.Unlock()
}

// Ready returns the readiness state and, when unready, the reason.
func (h *Health) Ready() (bool, string) {
	if h == nil {
		return true, ""
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ready, h.reason
}

// AdminConfig assembles the admin surface. Any field may be nil/zero; the
// corresponding endpoint degrades gracefully (empty metrics, empty traces,
// always-ready health, `{}` status).
type AdminConfig struct {
	// Registry backs /metrics (Prometheus text; ?format=json for the JSON
	// exposition).
	Registry *Registry
	// Traces backs /traces (?n=50 limits the count, newest first).
	Traces *TraceRing
	// Health backs /healthz and /readyz: both return 503 with the reason
	// while unready, 200 otherwise. /healthz answers "is the process
	// serving and not degraded"; /readyz is the load-balancer form of the
	// same state.
	Health *Health
	// Status returns the /statusz document; it is JSON-marshaled per
	// request so the snapshot is always current.
	Status func() any
}

// NewAdminMux builds the admin HTTP handler: /metrics, /statusz, /traces,
// /healthz, /readyz, and the pprof suite under /debug/pprof/. It is its
// own mux (never http.DefaultServeMux) so importing this package does not
// leak handlers into unrelated servers.
func NewAdminMux(cfg AdminConfig) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			cfg.Registry.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		cfg.Registry.WritePrometheus(w)
	})

	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var doc any = struct{}{}
		if cfg.Status != nil {
			doc = cfg.Status()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "traces: n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		traces := cfg.Traces.Recent(n)
		if traces == nil {
			traces = []Trace{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Total  uint64  `json:"total"`
			Traces []Trace `json:"traces"`
		}{cfg.Traces.Total(), traces})
	})

	health := func(w http.ResponseWriter, r *http.Request) {
		if ok, reason := cfg.Health.Ready(); !ok {
			http.Error(w, "unready: "+reason, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	}
	mux.HandleFunc("/healthz", health)
	mux.HandleFunc("/readyz", health)

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}
