package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the SLO engine: declarative service-level objectives
// evaluated over multi-window burn rates, the surface behind /slo.
//
// An SLO is a named objective over a good/bad event stream with a target
// good-ratio (e.g. "99% of messages reach a verdict within 250ms"). The
// error budget is 1-target; the burn rate over a window is
//
//	burn = badRatio(window) / (1 - target)
//
// so burn 1.0 spends the budget exactly at the sustainable rate, and burn
// 14.4 over a 5-minute window — the classic fast-page threshold — spends a
// 30-day budget in ~2 days. Each SLO tracks two windows: a fast window
// (default 5m) that catches sharp regressions within seconds, and a slow
// window (default 1h) that confirms sustained ones; the degradation
// controller keys off the fast window, alert policy off both.
//
// Windows are rings of fixed-duration buckets in monotonic time (the
// process clock, immune to wall-clock steps). Recording is lock-free —
// one atomic epoch check plus two atomic adds — so the per-message
// latency objective can be recorded from every shard worker without a
// shared mutex. Bucket rotation is racy by design: two recorders hitting
// a stale bucket can each reset it, losing a handful of counts at a
// bucket boundary; burn rates are ratios over thousands of events and do
// not care.

// processEpoch anchors the package's monotonic clock; time.Since on a
// single base time.Time uses the runtime's monotonic reading.
var processEpoch = time.Now()

// monotonicNS returns nanoseconds since process start.
func monotonicNS() int64 { return int64(time.Since(processEpoch)) }

// SLOConfig declares one objective; zero fields take defaults.
type SLOConfig struct {
	// Name identifies the objective ("accept_verdict_latency").
	Name string
	// Description explains what good/bad mean for this objective.
	Description string
	// Target is the objective's good-ratio target in (0,1), e.g. 0.99.
	Target float64
	// FastWindow/SlowWindow are the burn evaluation windows
	// (defaults 5m / 1h).
	FastWindow, SlowWindow time.Duration
	// FastBurn/SlowBurn are the burn-rate thresholds above which each
	// window reads as burning (defaults 14.4 / 6 — the SRE-workbook
	// multiwindow pair).
	FastBurn, SlowBurn float64
	// BucketsPerWindow sets ring resolution (default 30: 10s buckets on
	// a 5m fast window).
	BucketsPerWindow int
	// NowNS overrides the monotonic clock (tests).
	NowNS func() int64
}

// DefaultFastBurn and DefaultSlowBurn are the burn-rate thresholds when
// the config leaves them zero.
const (
	DefaultFastBurn = 14.4
	DefaultSlowBurn = 6.0
)

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Target <= 0 || c.Target >= 1 {
		c.Target = 0.99
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	if c.FastBurn <= 0 {
		c.FastBurn = DefaultFastBurn
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = DefaultSlowBurn
	}
	if c.BucketsPerWindow <= 0 {
		c.BucketsPerWindow = 30
	}
	if c.NowNS == nil {
		c.NowNS = monotonicNS
	}
	return c
}

// sloBucket is one time slice of a burn window. epoch is the absolute
// bucket index it currently holds counts for; a recorder that observes a
// stale epoch resets the counts before adding.
type sloBucket struct {
	epoch     atomic.Int64
	good, bad atomic.Uint64
}

// burnWindow is a ring of buckets spanning one evaluation window.
type burnWindow struct {
	bucketNS int64
	buckets  []sloBucket
}

func newBurnWindow(window time.Duration, buckets int) *burnWindow {
	bNS := int64(window) / int64(buckets)
	if bNS < int64(time.Millisecond) {
		bNS = int64(time.Millisecond)
	}
	return &burnWindow{bucketNS: bNS, buckets: make([]sloBucket, buckets)}
}

// record adds counts into the current bucket.
func (w *burnWindow) record(nowNS int64, good, bad uint64) {
	e := nowNS / w.bucketNS
	b := &w.buckets[e%int64(len(w.buckets))]
	if old := b.epoch.Load(); old != e {
		// Rotate: first recorder into a recycled bucket resets it. A
		// racing recorder may add into the bucket between the swap and
		// the stores — the loss is one bucket boundary's worth of counts.
		if b.epoch.CompareAndSwap(old, e) {
			b.good.Store(0)
			b.bad.Store(0)
		}
	}
	if good > 0 {
		b.good.Add(good)
	}
	if bad > 0 {
		b.bad.Add(bad)
	}
}

// totals sums the buckets still inside the window ending at nowNS.
func (w *burnWindow) totals(nowNS int64) (good, bad uint64) {
	e := nowNS / w.bucketNS
	min := e - int64(len(w.buckets)) + 1
	for i := range w.buckets {
		b := &w.buckets[i]
		be := b.epoch.Load()
		if be >= min && be <= e {
			good += b.good.Load()
			bad += b.bad.Load()
		}
	}
	return good, bad
}

// SLO is one live objective. Record* methods are safe for concurrent use
// and cheap enough for per-message paths; a nil SLO is a no-op.
type SLO struct {
	cfg        SLOConfig
	fast, slow *burnWindow
}

// NewSLO builds one objective outside a set (tests, ad-hoc use).
func NewSLO(cfg SLOConfig) *SLO {
	cfg = cfg.withDefaults()
	return &SLO{
		cfg:  cfg,
		fast: newBurnWindow(cfg.FastWindow, cfg.BucketsPerWindow),
		slow: newBurnWindow(cfg.SlowWindow, cfg.BucketsPerWindow),
	}
}

// Name returns the objective's name ("" on nil).
func (s *SLO) Name() string {
	if s == nil {
		return ""
	}
	return s.cfg.Name
}

// Record counts one event.
func (s *SLO) Record(good bool) {
	if good {
		s.RecordN(1, 0)
	} else {
		s.RecordN(0, 1)
	}
}

// RecordN counts a batch of events in one clock read.
func (s *SLO) RecordN(good, bad uint64) {
	if s == nil || (good == 0 && bad == 0) {
		return
	}
	now := s.cfg.NowNS()
	s.fast.record(now, good, bad)
	s.slow.record(now, good, bad)
}

// WindowStatus reports one evaluation window of an objective.
type WindowStatus struct {
	// Window is the evaluation span ("5m0s").
	Window string `json:"window"`
	Good   uint64 `json:"good"`
	Bad    uint64 `json:"bad"`
	// BadRatio is bad/(good+bad), 0 when the window is empty.
	BadRatio float64 `json:"bad_ratio"`
	// BurnRate is BadRatio over the error budget (1-target).
	BurnRate float64 `json:"burn_rate"`
	// BurnThreshold is the configured burning cutoff for this window.
	BurnThreshold float64 `json:"burn_threshold"`
	// Burning reports BurnRate >= BurnThreshold.
	Burning bool `json:"burning"`
}

// SLOStatus is one objective's full evaluation, the /slo document entry.
type SLOStatus struct {
	Name        string       `json:"name"`
	Description string       `json:"description,omitempty"`
	Target      float64      `json:"target"`
	Fast        WindowStatus `json:"fast"`
	Slow        WindowStatus `json:"slow"`
	// Burning is the paging condition: both windows burning at once
	// (fast alone can be a blip; slow alone is an old burn draining).
	Burning bool `json:"burning"`
	// Inactive marks an objective whose windows saw zero events: it is
	// measuring nothing, not reporting health. The latency objective goes
	// inactive when span sampling is off (-span-sample 0), since only
	// sampled verdicts feed it.
	Inactive bool `json:"inactive,omitempty"`
}

func (s *SLO) windowStatus(w *burnWindow, span time.Duration, threshold, budget float64, nowNS int64) WindowStatus {
	good, bad := w.totals(nowNS)
	st := WindowStatus{Window: span.String(), Good: good, Bad: bad, BurnThreshold: threshold}
	if total := good + bad; total > 0 {
		st.BadRatio = float64(bad) / float64(total)
	}
	st.BurnRate = st.BadRatio / budget
	st.Burning = st.BurnRate >= threshold
	return st
}

// Status evaluates the objective now.
func (s *SLO) Status() SLOStatus {
	if s == nil {
		return SLOStatus{}
	}
	now := s.cfg.NowNS()
	budget := 1 - s.cfg.Target
	st := SLOStatus{
		Name:        s.cfg.Name,
		Description: s.cfg.Description,
		Target:      s.cfg.Target,
		Fast:        s.windowStatus(s.fast, s.cfg.FastWindow, s.cfg.FastBurn, budget, now),
		Slow:        s.windowStatus(s.slow, s.cfg.SlowWindow, s.cfg.SlowBurn, budget, now),
	}
	st.Burning = st.Fast.Burning && st.Slow.Burning
	st.Inactive = st.Fast.Good+st.Fast.Bad+st.Slow.Good+st.Slow.Bad == 0
	return st
}

// FastBurning reports whether the fast window alone is burning — the
// earliest signal, what the degradation controller consumes.
func (s *SLO) FastBurning() bool {
	if s == nil {
		return false
	}
	now := s.cfg.NowNS()
	st := s.windowStatus(s.fast, s.cfg.FastWindow, s.cfg.FastBurn, 1-s.cfg.Target, now)
	return st.Burning
}

// SLOSet is the process's objective collection: what /slo serves and the
// degradation controller polls. A nil set is empty and inert.
type SLOSet struct {
	mu   sync.Mutex
	slos []*SLO

	// Per-objective labelled gauges, refreshed on Statuses; nil when the
	// set is not exported into a registry.
	reg *Registry
}

// NewSLOSet returns an empty set.
func NewSLOSet() *SLOSet { return &SLOSet{} }

// Export attaches a registry: every objective (present and future) gets
// slo_burn_rate{slo,window} and slo_burning{slo} gauges, refreshed on
// each Statuses call (i.e. each /slo or degradation-controller poll).
func (ss *SLOSet) Export(reg *Registry) {
	if ss == nil {
		return
	}
	ss.mu.Lock()
	ss.reg = reg
	ss.mu.Unlock()
}

// Add registers one objective and returns its live handle.
func (ss *SLOSet) Add(cfg SLOConfig) *SLO {
	if ss == nil {
		return nil
	}
	s := NewSLO(cfg)
	ss.mu.Lock()
	ss.slos = append(ss.slos, s)
	ss.mu.Unlock()
	return s
}

// Get returns the named objective, or nil.
func (ss *SLOSet) Get(name string) *SLO {
	if ss == nil {
		return nil
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for _, s := range ss.slos {
		if s.cfg.Name == name {
			return s
		}
	}
	return nil
}

// Statuses evaluates every objective (registration order) and refreshes
// the exported gauges.
func (ss *SLOSet) Statuses() []SLOStatus {
	if ss == nil {
		return nil
	}
	ss.mu.Lock()
	slos := append([]*SLO(nil), ss.slos...)
	reg := ss.reg
	ss.mu.Unlock()
	out := make([]SLOStatus, 0, len(slos))
	for _, s := range slos {
		st := s.Status()
		out = append(out, st)
		if reg != nil {
			reg.Gauge(LabelName(st.Name+"_slo_burn_rate", "window", "fast"),
				"SLO burn rate (bad ratio over error budget) per window.").Set(st.Fast.BurnRate)
			reg.Gauge(LabelName(st.Name+"_slo_burn_rate", "window", "slow"),
				"SLO burn rate (bad ratio over error budget) per window.").Set(st.Slow.BurnRate)
			burning := 0.0
			if st.Fast.Burning {
				burning = 1
			}
			reg.Gauge(st.Name+"_slo_fast_burning",
				"1 while the SLO's fast window burns above threshold.").Set(burning)
		}
	}
	return out
}

// FastBurning returns the names of objectives whose fast window is
// burning — the degradation controller's shed signal.
func (ss *SLOSet) FastBurning() []string {
	if ss == nil {
		return nil
	}
	ss.mu.Lock()
	slos := append([]*SLO(nil), ss.slos...)
	ss.mu.Unlock()
	var out []string
	for _, s := range slos {
		if s.FastBurning() {
			out = append(out, s.cfg.Name)
		}
	}
	return out
}
