package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"
)

// BurnProfiler captures a CPU profile to disk when an SLO fast window
// starts burning, so the cause of a latency regression is on disk before
// anyone is paged — by the time an operator looks, the burst is usually
// over. Captures are single-flight (Go allows one CPU profile at a time)
// and rate-limited by a cooldown so a sustained burn produces one profile
// per cooldown, not one per evaluation tick.
type BurnProfiler struct {
	dir      string
	duration time.Duration
	cooldown time.Duration
	log      *Logger

	// captures/failures are exported via Export; nil-safe no-ops.
	captures *Counter
	failures *Counter

	mu     sync.Mutex
	active bool
	last   time.Time
	seq    int
}

// NewBurnProfiler writes duration-long CPU profiles into dir, at most one
// per cooldown. duration <= 0 defaults to 5s, cooldown <= 0 to 10m.
func NewBurnProfiler(dir string, duration, cooldown time.Duration, log *Logger) *BurnProfiler {
	if duration <= 0 {
		duration = 5 * time.Second
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Minute
	}
	return &BurnProfiler{dir: dir, duration: duration, cooldown: cooldown, log: log}
}

// Export registers the profiler's counters in reg.
func (p *BurnProfiler) Export(reg *Registry) {
	if p == nil || reg == nil {
		return
	}
	p.captures = reg.Counter("slo_burn_profiles_total", "CPU profiles captured on SLO fast-window burn.")
	p.failures = reg.Counter("slo_burn_profile_failures_total", "Burn-profile captures that failed to start or write.")
}

// MaybeCapture starts a capture if none is active and the cooldown has
// passed; it returns the profile path when a capture was started ("" when
// skipped). The capture runs on its own goroutine and stops itself after
// the configured duration — callers never block on it. A nil profiler
// skips everything.
func (p *BurnProfiler) MaybeCapture(reason string) string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	if p.active || (!p.last.IsZero() && time.Since(p.last) < p.cooldown) {
		p.mu.Unlock()
		return ""
	}
	p.active = true
	p.last = time.Now()
	p.seq++
	path := filepath.Join(p.dir, fmt.Sprintf("burn-%03d-%d.pprof", p.seq, p.last.Unix()))
	p.mu.Unlock()

	release := func() {
		p.mu.Lock()
		p.active = false
		p.mu.Unlock()
	}
	if err := os.MkdirAll(p.dir, 0o755); err != nil {
		p.failures.Inc()
		p.log.Error("burn profile: mkdir failed", "dir", p.dir, "err", err)
		release()
		return ""
	}
	f, err := os.Create(path)
	if err != nil {
		p.failures.Inc()
		p.log.Error("burn profile: create failed", "path", path, "err", err)
		release()
		return ""
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another profile is already running (e.g. /debug/pprof/profile);
		// theirs will show the burn too.
		p.failures.Inc()
		p.log.Warn("burn profile: start refused", "path", path, "err", err)
		f.Close()
		os.Remove(path)
		release()
		return ""
	}
	p.captures.Inc()
	p.log.Warn("burn profile: capturing", "path", path, "duration", p.duration, "reason", reason)
	go func() {
		defer release()
		time.Sleep(p.duration)
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			p.failures.Inc()
			p.log.Error("burn profile: close failed", "path", path, "err", err)
			return
		}
		p.log.Info("burn profile: written", "path", path)
	}()
	return path
}
