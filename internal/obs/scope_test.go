package obs

import (
	"strings"
	"testing"
)

// TestScopeIdempotentHandles is the property the lifecycle manager relies
// on: building the "same" scoped metric twice (as repeated candidate
// detectors do) returns the same handle, and values accumulate instead of
// colliding or panicking.
func TestScopeIdempotentHandles(t *testing.T) {
	reg := NewRegistry()
	s1 := reg.Scope("candidate_")
	s2 := reg.Scope("candidate_")

	c1 := s1.Counter("epochs_total", "help")
	c2 := s2.Counter("epochs_total", "help")
	if c1 != c2 {
		t.Fatal("same scope+name produced distinct counter handles")
	}
	c1.Inc()
	c2.Inc()
	if got := c1.Value(); got != 2 {
		t.Fatalf("accumulated value = %d, want 2", got)
	}

	h1 := s1.Histogram("gate_delta", "help", LinearBuckets(0, 0.1, 4))
	h2 := s2.Histogram("gate_delta", "help", LinearBuckets(0, 0.1, 4))
	if h1 != h2 {
		t.Fatal("same scope+name produced distinct histogram handles")
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "candidate_epochs_total 2") {
		t.Fatalf("exposition missing prefixed counter:\n%s", sb.String())
	}
}

// TestScopeNesting checks prefixes concatenate outer-first and that
// distinct prefixes produce distinct metrics.
func TestScopeNesting(t *testing.T) {
	reg := NewRegistry()
	lc := reg.Scope("lifecycle_")
	g := lc.Scope("cluster0_").Gauge("spool_windows", "help")
	g.SetInt(7)
	if got := reg.Gauge("lifecycle_cluster0_spool_windows", "help").Value(); got != 7 {
		t.Fatalf("nested scope gauge = %v, want 7", got)
	}
	other := lc.Scope("cluster1_").Gauge("spool_windows", "help")
	if other == g {
		t.Fatal("distinct prefixes share a handle")
	}
}

// TestScopeNilSafety: a nil registry yields a nil scope whose handles are
// the usual no-op nils.
func TestScopeNilSafety(t *testing.T) {
	var reg *Registry
	s := reg.Scope("x_")
	if s != nil {
		t.Fatal("nil registry produced a non-nil scope")
	}
	s.Counter("a", "h").Inc() // must not panic
	s.Gauge("b", "h").Set(1)
	s.Histogram("c", "h", LinearBuckets(0, 1, 2)).Observe(1)
	if s.Scope("y_") != nil || s.Registry() != nil {
		t.Fatal("nil scope leaked non-nil children")
	}
}
