package obs

import (
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary — the fields a fleet control
// plane needs to tell instances apart before canarying or draining one:
// which module version is serving, which VCS revision it was cut from,
// and whether the working tree was dirty at build time.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	// ModuleVersion is "(devel)" for plain `go build` trees and a
	// semantic version for released module builds.
	ModuleVersion string `json:"module_version,omitempty"`
	VCSRevision   string `json:"vcs_revision,omitempty"`
	VCSTime       string `json:"vcs_time,omitempty"`
	VCSModified   bool   `json:"vcs_modified,omitempty"`
}

var (
	buildInfoOnce sync.Once
	buildInfo     BuildInfo
)

// GetBuildInfo reads the binary's embedded build metadata once and caches
// it (debug.ReadBuildInfo walks the embedded module data on every call).
// Binaries built without module support report only the Go version.
func GetBuildInfo() BuildInfo {
	buildInfoOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.GoVersion = bi.GoVersion
		buildInfo.Module = bi.Main.Path
		buildInfo.ModuleVersion = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.VCSRevision = s.Value
			case "vcs.time":
				buildInfo.VCSTime = s.Value
			case "vcs.modified":
				buildInfo.VCSModified = s.Value == "true"
			}
		}
	})
	return buildInfo
}
